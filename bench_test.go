// Benchmark harness: one benchmark per paper table/figure plus
// micro-benchmarks of the hot paths. The figure benchmarks run the
// corresponding experiment at a reduced-but-meaningful scale and report the
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates (a scaled version of) every row/series the paper reports and
// prints its shape next to the timing.
package nostop

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"nostop/internal/baselines"
	"nostop/internal/broker"
	"nostop/internal/engine"
	"nostop/internal/experiments"
	"nostop/internal/linalg"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/spsa"
	"nostop/internal/workload"
)

// benchCfg is the experiment scale used by the figure benchmarks: large
// enough for every qualitative shape, small enough for a fast -bench run.
func benchCfg(seed uint64) experiments.Config {
	return experiments.Config{Seed: seed, Repetitions: 1, Horizon: 40 * time.Minute, Warmup: 0.6}
}

// cellMean parses the numeric head of a table cell ("12.34 ± 0.56" → 12.34).
func cellMean(cell string) float64 {
	head := strings.TrimSpace(strings.SplitN(cell, "±", 2)[0])
	head = strings.TrimSuffix(head, "x")
	v, _ := strconv.ParseFloat(strings.TrimSpace(head), 64)
	return v
}

func BenchmarkTable2Cluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if len(t.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig2BatchInterval(b *testing.B) {
	var knee float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		// First stable row's interval: the measured knee.
		for _, row := range t.Rows {
			if row[4] == "true" {
				knee = cellMean(row[0])
				break
			}
		}
	}
	b.ReportMetric(knee, "knee_interval_s")
}

func BenchmarkFig3Executors(b *testing.B) {
	var bestProc float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig3(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		bestProc = 1e18
		for _, row := range t.Rows {
			if p := cellMean(row[1]); p < bestProc {
				bestProc = p
			}
		}
	}
	b.ReportMetric(bestProc, "best_proc_s")
}

func BenchmarkFig5Rates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig6Evolution(b *testing.B) {
	var iters float64
	for i := 0; i < b.N; i++ {
		interval, _, err := experiments.Fig6Series(benchCfg(uint64(i+1)), "logreg")
		if err != nil {
			b.Fatal(err)
		}
		iters = float64(interval.Len())
	}
	b.ReportMetric(iters, "iterations")
}

func BenchmarkFig7Improvement(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig7(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		improvement = 0
		for _, row := range t.Rows {
			improvement += cellMean(row[3])
		}
		improvement /= float64(len(t.Rows))
	}
	b.ReportMetric(improvement, "mean_improvement_x")
}

func BenchmarkFig8SPSAvsBO(b *testing.B) {
	var spsaSteps, boSteps float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		spsaSteps, boSteps = 0, 0
		for _, row := range t.Rows {
			if strings.HasPrefix(row[1], "SPSA") {
				spsaSteps += cellMean(row[4])
			} else {
				boSteps += cellMean(row[4])
			}
		}
	}
	b.ReportMetric(spsaSteps/4, "spsa_config_steps")
	b.ReportMetric(boSteps/4, "bo_config_steps")
}

func BenchmarkBackPressure(b *testing.B) {
	var nostopTput float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.BackPressure(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		nostopTput = cellMean(t.Rows[2][4])
	}
	b.ReportMetric(nostopTput, "nostop_throughput_rec_s")
}

// --- Ablation benchmarks (DESIGN.md §4) ---

func benchAblation(b *testing.B, fn func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn(benchCfg(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) < 2 {
			b.Fatal("ablation produced too few rows")
		}
	}
}

func BenchmarkAblationPenaltyRamp(b *testing.B) { benchAblation(b, experiments.AblationPenaltyRamp) }
func BenchmarkAblationFirstBatch(b *testing.B)  { benchAblation(b, experiments.AblationFirstBatch) }
func BenchmarkAblationWindow(b *testing.B)      { benchAblation(b, experiments.AblationWindow) }
func BenchmarkAblationReset(b *testing.B)       { benchAblation(b, experiments.AblationReset) }
func BenchmarkAblationGains(b *testing.B)       { benchAblation(b, experiments.AblationGains) }
func BenchmarkAblationScaling(b *testing.B)     { benchAblation(b, experiments.AblationScaling) }
func BenchmarkAblationStepClip(b *testing.B)    { benchAblation(b, experiments.AblationStepClip) }
func BenchmarkAblationObjective(b *testing.B)   { benchAblation(b, experiments.AblationObjective) }

// --- Micro-benchmarks of the substrates ---

// BenchmarkEngineHour measures simulating one virtual hour of a tuned
// streaming system (the unit of work behind every figure above).
func BenchmarkEngineHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clock := sim.NewClock()
		seed := rng.New(uint64(i + 1))
		wl := workload.NewWordCount()
		min, max := wl.RateBand()
		eng, err := engine.New(clock, engine.Options{
			Workload: wl,
			Trace:    ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("t")),
			Seed:     seed.Split("e"),
			Initial:  engine.Config{BatchInterval: 10 * time.Second, Executors: 12},
		})
		if err != nil {
			b.Fatal(err)
		}
		eng.Start()
		clock.RunUntil(sim.Time(time.Hour))
		if len(eng.History()) == 0 {
			b.Fatal("no batches")
		}
	}
}

func BenchmarkSPSAIteration(b *testing.B) {
	opt, err := spsa.New([]float64{10, 10}, []float64{1, 1}, []float64{20, 20},
		spsa.DefaultParams(19, 2), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plus, minus, err := opt.Perturb()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Update(plus[0]+plus[1], minus[0]+minus[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPFitPredict(b *testing.B) {
	r := rng.New(9)
	xs := make([][]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64()}
		ys[i] = r.Norm(10, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp, err := baselines.NewGP(0.2, 9, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := gp.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
		if _, v := gp.Predict([]float64{0.5, 0.5}); v <= 0 {
			b.Fatal("bad variance")
		}
	}
}

func BenchmarkCholesky32(b *testing.B) {
	r := rng.New(4)
	n := 32
	base := linalg.NewMatrix(n, n)
	for i := range base.Data {
		base.Data[i] = r.Norm(0, 1)
	}
	a := base.Transpose().Mul(base)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordCountBatch(b *testing.B) {
	wl := workload.NewWordCount()
	recs := genRecords(wl, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := wl.ProcessBatch(recs); res.Records == 0 {
			b.Fatal("no records")
		}
	}
}

func BenchmarkLogRegSGDBatch(b *testing.B) {
	wl := workload.NewLogisticRegression()
	recs := genRecords(wl, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := wl.ProcessBatch(recs); res.Records == 0 {
			b.Fatal("no records")
		}
	}
}

func BenchmarkPageAnalyzeBatch(b *testing.B) {
	wl := workload.NewPageAnalyze()
	recs := genRecords(wl, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := wl.ProcessBatch(recs); res.Records == 0 {
			b.Fatal("no records")
		}
	}
}

func genRecords(wl workload.Workload, n int) []broker.Record {
	r := rng.New(3)
	out := make([]broker.Record, n)
	for i := range out {
		out[i] = broker.Record{Offset: int64(i), Value: wl.GenValue(int64(i), r)}
	}
	return out
}

// --- Extension benchmarks (the paper's §7 future work, implemented) ---

func BenchmarkExtension3Param(b *testing.B)    { benchAblation(b, experiments.Extension3Param) }
func BenchmarkExtensionAutoGains(b *testing.B) { benchAblation(b, experiments.ExtensionAutoGains) }
func BenchmarkExtensionFailure(b *testing.B)   { benchAblation(b, experiments.ExtensionNodeFailure) }
