package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nostop/internal/broker"
	"nostop/internal/rng"
)

// logRegDim is the feature dimensionality of the synthetic classification
// stream.
const logRegDim = 8

// hidden separating hyperplane used by the record generator; the streaming
// model should recover it.
var logRegTruth = [logRegDim]float64{1.2, -0.8, 0.5, 2.0, -1.5, 0.3, -0.6, 0.9}

// LogisticRegression is the paper's Streaming Logistic Regression workload:
// an iterative ML job that fits a binary classifier with SGD on every batch.
// Iterative processing makes its batch times the most variable of the four
// workloads (§6.3).
type LogisticRegression struct {
	model   *CostModel
	weights [logRegDim]float64
	bias    float64
	lr      float64
	epochs  int
}

// NewLogisticRegression returns a fresh workload with an untrained model.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{
		model: &CostModel{
			Name:            "LogisticRegression",
			RecordCost:      0.0004,
			InitBase:        0.5,
			PerExecOverhead: 0.21,
			IOWeight:        0.1,
			NoiseCV:         0.10,
			IterInitial:     2.0,
			IterTau:         30,
			IterJitter:      0.15,
		},
		lr:     0.05,
		epochs: 2,
	}
}

// Name implements Workload.
func (w *LogisticRegression) Name() string { return "LogisticRegression" }

// Model implements Workload.
func (w *LogisticRegression) Model() *CostModel { return w.model }

// RateBand implements Workload (§6.2.2: [7000, 13000] records/second).
func (w *LogisticRegression) RateBand() (float64, float64) { return 7000, 13000 }

// GenValue synthesises "label,f1,...,f8": features are standard normal and
// the label follows the hidden hyperplane with 5% label noise.
func (w *LogisticRegression) GenValue(i int64, r *rng.Stream) string {
	var sb strings.Builder
	var score float64
	feats := make([]float64, logRegDim)
	for d := 0; d < logRegDim; d++ {
		feats[d] = r.Norm(0, 1)
		score += feats[d] * logRegTruth[d]
	}
	label := 0
	if score > 0 {
		label = 1
	}
	if r.Float64() < 0.05 { // label noise
		label = 1 - label
	}
	sb.WriteString(strconv.Itoa(label))
	for d := 0; d < logRegDim; d++ {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(feats[d], 'f', 4, 64))
	}
	return sb.String()
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// ProcessBatch parses labelled points and runs SGD epochs over them,
// updating the persistent model. The result reports log-loss and accuracy
// on the batch (evaluated before the update, i.e. progressive validation).
func (w *LogisticRegression) ProcessBatch(recs []broker.Record) Result {
	var parsed [][logRegDim + 1]float64 // label + features
	for _, rec := range recs {
		fields := strings.Split(rec.Value, ",")
		if len(fields) != logRegDim+1 {
			continue
		}
		var row [logRegDim + 1]float64
		ok := true
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			row[i] = v
		}
		if ok {
			parsed = append(parsed, row)
		}
	}
	if len(parsed) == 0 {
		return Result{Note: "logreg: empty batch"}
	}
	// Progressive validation with the pre-update model.
	correct := 0
	loss := 0.0
	for _, row := range parsed {
		p := w.predict(row)
		y := row[0]
		if (p >= 0.5) == (y >= 0.5) {
			correct++
		}
		const eps = 1e-12
		loss += -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
	}
	// SGD update.
	for e := 0; e < w.epochs; e++ {
		for _, row := range parsed {
			p := w.predict(row)
			g := p - row[0]
			for d := 0; d < logRegDim; d++ {
				w.weights[d] -= w.lr * g * row[d+1]
			}
			w.bias -= w.lr * g
		}
	}
	acc := float64(correct) / float64(len(parsed))
	return Result{
		Records: len(parsed),
		Output: map[string]float64{
			"accuracy": acc,
			"logloss":  loss / float64(len(parsed)),
		},
		Note: fmt.Sprintf("logreg: %d points, acc %.3f", len(parsed), acc),
	}
}

func (w *LogisticRegression) predict(row [logRegDim + 1]float64) float64 {
	z := w.bias
	for d := 0; d < logRegDim; d++ {
		z += w.weights[d] * row[d+1]
	}
	return sigmoid(z)
}

// Weights returns a copy of the current model weights (for tests).
func (w *LogisticRegression) Weights() []float64 {
	out := make([]float64, logRegDim)
	copy(out, w.weights[:])
	return out
}
