package workload

import (
	"fmt"
	"strconv"
	"strings"

	"nostop/internal/broker"
	"nostop/internal/linalg"
	"nostop/internal/rng"
)

// linRegDim is the feature dimensionality of the synthetic regression stream.
const linRegDim = 5

// hidden coefficients (plus intercept 2.0) used by the generator.
var linRegTruth = [linRegDim]float64{3.0, -1.5, 0.7, 2.2, -0.4}

const linRegIntercept = 2.0

// LinearRegression is the paper's Streaming Linear Regression workload. It
// maintains sufficient statistics (XᵀX, Xᵀy) across batches and re-solves
// the normal equations each batch — a realistic streaming least-squares.
type LinearRegression struct {
	model *CostModel
	xtx   *linalg.Matrix // (dim+1) x (dim+1), includes intercept column
	xty   linalg.Vector
	n     int64
	beta  linalg.Vector
}

// NewLinearRegression returns a fresh workload with empty statistics.
func NewLinearRegression() *LinearRegression {
	d := linRegDim + 1
	return &LinearRegression{
		model: &CostModel{
			Name:            "LinearRegression",
			RecordCost:      0.00005,
			InitBase:        0.5,
			PerExecOverhead: 0.10,
			IOWeight:        0.1,
			NoiseCV:         0.08,
			IterInitial:     1.8,
			IterTau:         25,
			IterJitter:      0.12,
		},
		xtx: linalg.NewMatrix(d, d),
		xty: linalg.NewVector(d),
	}
}

// Name implements Workload.
func (w *LinearRegression) Name() string { return "LinearRegression" }

// Model implements Workload.
func (w *LinearRegression) Model() *CostModel { return w.model }

// RateBand implements Workload (§6.2.2: [80000, 120000] records/second).
func (w *LinearRegression) RateBand() (float64, float64) { return 80000, 120000 }

// GenValue synthesises "y,x1,...,x5" with y = 2 + β·x + N(0, 0.5).
func (w *LinearRegression) GenValue(i int64, r *rng.Stream) string {
	var sb strings.Builder
	y := linRegIntercept
	feats := make([]float64, linRegDim)
	for d := 0; d < linRegDim; d++ {
		feats[d] = r.Norm(0, 1)
		y += feats[d] * linRegTruth[d]
	}
	y += r.Norm(0, 0.5)
	sb.WriteString(strconv.FormatFloat(y, 'f', 4, 64))
	for d := 0; d < linRegDim; d++ {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(feats[d], 'f', 4, 64))
	}
	return sb.String()
}

// ProcessBatch parses points, accumulates normal-equation statistics, and
// solves for the coefficients. Reports batch MSE under the updated model.
func (w *LinearRegression) ProcessBatch(recs []broker.Record) Result {
	d := linRegDim + 1
	type point struct {
		y float64
		x [linRegDim + 1]float64
	}
	var pts []point
	for _, rec := range recs {
		fields := strings.Split(rec.Value, ",")
		if len(fields) != linRegDim+1 {
			continue
		}
		var p point
		p.x[0] = 1 // intercept
		ok := true
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			if i == 0 {
				p.y = v
			} else {
				p.x[i] = v
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return Result{Note: "linreg: empty batch"}
	}
	for _, p := range pts {
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				w.xtx.Set(i, j, w.xtx.At(i, j)+p.x[i]*p.x[j])
			}
			w.xty[i] += p.x[i] * p.y
		}
	}
	w.n += int64(len(pts))
	beta, err := linalg.SolveSPD(w.xtx, w.xty)
	if err != nil {
		return Result{Records: len(pts), Note: "linreg: singular system"}
	}
	w.beta = beta
	mse := 0.0
	for _, p := range pts {
		pred := 0.0
		for i := 0; i < d; i++ {
			pred += beta[i] * p.x[i]
		}
		diff := pred - p.y
		mse += diff * diff
	}
	mse /= float64(len(pts))
	return Result{
		Records: len(pts),
		Output:  map[string]float64{"mse": mse, "n_total": float64(w.n)},
		Note:    fmt.Sprintf("linreg: %d points, mse %.4f", len(pts), mse),
	}
}

// Coefficients returns the latest solved coefficients (intercept first), or
// nil before the first successful solve.
func (w *LinearRegression) Coefficients() []float64 {
	if w.beta == nil {
		return nil
	}
	return append([]float64(nil), w.beta...)
}
