package workload

import (
	"math"
	"strings"
	"testing"

	"nostop/internal/broker"
	"nostop/internal/rng"
)

// genBatch synthesises n records for a workload.
func genBatch(w Workload, n int, seed uint64) []broker.Record {
	r := rng.New(seed)
	recs := make([]broker.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = broker.Record{Offset: int64(i), Value: w.GenValue(int64(i), r)}
	}
	return recs
}

func TestLogRegLearnsSeparator(t *testing.T) {
	w := NewLogisticRegression()
	var lastAcc float64
	for b := 0; b < 20; b++ {
		res := w.ProcessBatch(genBatch(w, 500, uint64(b+1)))
		lastAcc = res.Output["accuracy"]
	}
	// With 5% label noise, a fitted model should reach ~90%+ progressive
	// accuracy; an unfitted one starts near 50%.
	if lastAcc < 0.85 {
		t.Fatalf("accuracy %.3f after 20 batches, want > 0.85", lastAcc)
	}
	// Learned weights must correlate with the hidden truth in sign.
	weights := w.Weights()
	agree := 0
	for i, truth := range logRegTruth {
		if (weights[i] > 0) == (truth > 0) {
			agree++
		}
	}
	if agree < logRegDim-1 {
		t.Fatalf("only %d/%d weight signs recovered", agree, logRegDim)
	}
}

func TestLogRegFirstBatchWorseThanLater(t *testing.T) {
	w := NewLogisticRegression()
	first := w.ProcessBatch(genBatch(w, 500, 1)).Output["accuracy"]
	for b := 0; b < 10; b++ {
		w.ProcessBatch(genBatch(w, 500, uint64(b+2)))
	}
	later := w.ProcessBatch(genBatch(w, 500, 99)).Output["accuracy"]
	if later <= first {
		t.Fatalf("accuracy did not improve: first %.3f later %.3f", first, later)
	}
}

func TestLogRegSkipsMalformed(t *testing.T) {
	w := NewLogisticRegression()
	recs := []broker.Record{
		{Value: "garbage"},
		{Value: "1,0.1,0.2"},                    // too few fields
		{Value: "1,a,b,c,d,e,f,g,h"},            // non-numeric
		{Value: w.GenValue(0, rng.New(1))},      // valid
		{Value: strings.Repeat(",", logRegDim)}, // empty fields
	}
	res := w.ProcessBatch(recs)
	if res.Records != 1 {
		t.Fatalf("parsed %d records, want 1", res.Records)
	}
}

func TestLogRegEmptyBatch(t *testing.T) {
	w := NewLogisticRegression()
	res := w.ProcessBatch(nil)
	if res.Records != 0 || res.Note == "" {
		t.Fatalf("empty batch result %+v", res)
	}
}

func TestLinRegRecoversCoefficients(t *testing.T) {
	w := NewLinearRegression()
	for b := 0; b < 10; b++ {
		w.ProcessBatch(genBatch(w, 800, uint64(b+1)))
	}
	beta := w.Coefficients()
	if beta == nil {
		t.Fatal("no coefficients after 10 batches")
	}
	if math.Abs(beta[0]-linRegIntercept) > 0.1 {
		t.Fatalf("intercept %.3f, want ~%.1f", beta[0], linRegIntercept)
	}
	for i, truth := range linRegTruth {
		if math.Abs(beta[i+1]-truth) > 0.1 {
			t.Fatalf("beta[%d]=%.3f, want ~%.2f (all: %v)", i+1, beta[i+1], truth, beta)
		}
	}
}

func TestLinRegMSEDecreasesToNoiseFloor(t *testing.T) {
	w := NewLinearRegression()
	var mse float64
	for b := 0; b < 10; b++ {
		mse = w.ProcessBatch(genBatch(w, 800, uint64(b+1))).Output["mse"]
	}
	// Generator noise is N(0, 0.5): MSE floor ≈ 0.25.
	if mse > 0.35 {
		t.Fatalf("mse %.3f, want near the 0.25 noise floor", mse)
	}
}

func TestLinRegEmptyAndMalformed(t *testing.T) {
	w := NewLinearRegression()
	if res := w.ProcessBatch(nil); res.Records != 0 {
		t.Fatal("empty batch parsed records")
	}
	res := w.ProcessBatch([]broker.Record{{Value: "nope"}, {Value: "1,2"}})
	if res.Records != 0 {
		t.Fatalf("malformed batch parsed %d records", res.Records)
	}
}

func TestWordCountCounts(t *testing.T) {
	w := NewWordCount()
	recs := []broker.Record{
		{Value: "spark streaming spark"},
		{Value: "the spark engine"},
	}
	res := w.ProcessBatch(recs)
	if res.Output["tokens"] != 6 {
		t.Fatalf("tokens=%v, want 6", res.Output["tokens"])
	}
	if res.Output["distinct"] != 4 {
		t.Fatalf("distinct=%v, want 4", res.Output["distinct"])
	}
	if res.Output["top"] != 3 {
		t.Fatalf("top=%v, want 3 (spark)", res.Output["top"])
	}
	if w.Total("spark") != 3 {
		t.Fatalf("Total(spark)=%d", w.Total("spark"))
	}
}

func TestWordCountStatePersistsAcrossBatches(t *testing.T) {
	w := NewWordCount()
	w.ProcessBatch([]broker.Record{{Value: "alpha beta"}})
	w.ProcessBatch([]broker.Record{{Value: "alpha gamma"}})
	if w.Total("alpha") != 2 {
		t.Fatalf("Total(alpha)=%d, want 2", w.Total("alpha"))
	}
	top := w.TopK(1)
	if len(top) != 1 || !strings.HasPrefix(top[0], "alpha ") {
		t.Fatalf("TopK=%v", top)
	}
}

func TestWordCountNormalisesTokens(t *testing.T) {
	w := NewWordCount()
	res := w.ProcessBatch([]broker.Record{{Value: `Spark, "spark" SPARK!`}})
	if res.Output["distinct"] != 1 {
		t.Fatalf("distinct=%v, want 1 after normalisation", res.Output["distinct"])
	}
}

func TestWordCountEmptyBatch(t *testing.T) {
	w := NewWordCount()
	res := w.ProcessBatch([]broker.Record{{Value: "   "}})
	if res.Records != 0 {
		t.Fatalf("blank-line batch counted records: %+v", res)
	}
}

func TestWordCountGeneratorSkewed(t *testing.T) {
	w := NewWordCount()
	res := w.ProcessBatch(genBatch(w, 2000, 7))
	// Zipf skew: "the" (rank 0) must appear far more often than a deep
	// tail word.
	if w.Total("the") < 10*w.Total("core") {
		t.Fatalf("vocabulary not skewed: the=%d core=%d", w.Total("the"), w.Total("core"))
	}
	if res.Output["distinct"] < 30 {
		t.Fatalf("generator only produced %v distinct words", res.Output["distinct"])
	}
}

func TestParseLogLine(t *testing.T) {
	line := `10.0.0.1 - - [04/Jul/2026:12:30:45 +0000] "GET /cart HTTP/1.1" 200 5120 "-" "curl/7.68.0"`
	e, ok := parseLogLine(line)
	if !ok {
		t.Fatal("valid line rejected")
	}
	if e.ip != "10.0.0.1" || e.method != "GET" || e.path != "/cart" || e.status != 200 || e.bytes != 5120 {
		t.Fatalf("parsed %+v", e)
	}
}

func TestParseLogLineRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"no-quotes here 200 123",
		`1.2.3.4 - - [t] "GET" 200 10 "-" "ua"`, // request too short
		`1.2.3.4 - - [t] "GET / HTTP/1.1" abc 10`,  // bad status
		`1.2.3.4 - - [t] "GET / HTTP/1.1" 200 xyz`, // bad bytes
		`1.2.3.4 - - [t] "GET / HTTP/1.1`,          // unterminated quote
	}
	for _, line := range bad {
		if _, ok := parseLogLine(line); ok {
			t.Errorf("garbage accepted: %q", line)
		}
	}
}

func TestPageAnalyzeAggregates(t *testing.T) {
	w := NewPageAnalyze()
	recs := []broker.Record{
		{Value: `1.1.1.1 - - [t] "GET /cart HTTP/1.1" 200 1000 "-" "ua"`},
		{Value: `1.1.1.2 - - [t] "GET /cart HTTP/1.1" 500 2000 "-" "ua"`},
		{Value: `1.1.1.3 - - [t] "POST /login HTTP/1.1" 200 3000 "-" "ua"`},
		{Value: "garbage line"},
	}
	res := w.ProcessBatch(recs)
	if res.Output["parsed"] != 3 || res.Output["malformed"] != 1 {
		t.Fatalf("parsed/malformed: %+v", res.Output)
	}
	if res.Output["bytes"] != 6000 {
		t.Fatalf("bytes=%v", res.Output["bytes"])
	}
	if math.Abs(res.Output["error_rate"]-1.0/3.0) > 1e-9 {
		t.Fatalf("error_rate=%v", res.Output["error_rate"])
	}
	if w.PathHits("/cart") != 2 || w.StatusTotal(500) != 1 {
		t.Fatalf("cumulative state wrong: cart=%d 500s=%d", w.PathHits("/cart"), w.StatusTotal(500))
	}
}

func TestPageAnalyzeGeneratedLinesParse(t *testing.T) {
	w := NewPageAnalyze()
	res := w.ProcessBatch(genBatch(w, 1000, 9))
	if res.Output["malformed"] != 0 {
		t.Fatalf("%v generated lines failed to parse", res.Output["malformed"])
	}
	if res.Output["parsed"] != 1000 {
		t.Fatalf("parsed=%v", res.Output["parsed"])
	}
	// Error rate should be near the generator's 2% 5xx share.
	if er := res.Output["error_rate"]; er < 0.005 || er > 0.05 {
		t.Fatalf("error_rate=%v, want ≈0.02", er)
	}
}

func TestPageAnalyzeAllGarbage(t *testing.T) {
	w := NewPageAnalyze()
	res := w.ProcessBatch([]broker.Record{{Value: "x"}, {Value: "y"}})
	if res.Output != nil {
		t.Fatalf("all-garbage batch produced output %+v", res.Output)
	}
}

func TestGenValueDeterministicPerStream(t *testing.T) {
	for _, w := range All() {
		a := w.GenValue(3, rng.New(55))
		b := w.GenValue(3, rng.New(55))
		if a != b {
			t.Errorf("%s: GenValue not deterministic for same stream", w.Name())
		}
	}
}
