// Package workload defines the four streaming applications the paper
// evaluates (§6.1) — Logistic Regression, Linear Regression, WordCount, and
// Page/Log Analyze — at two levels:
//
//   - A CostModel that maps (batch size, executor allocation) to a simulated
//     batch processing time with workload-specific overheads, parallelism
//     behaviour, and noise. The constants are calibrated so the measured
//     curves have the shapes of Fig 2a/2b and Fig 3a/3b.
//   - A semantic implementation that actually processes record payloads
//     (SGD classification, least-squares regression, word counting, Nginx
//     log analysis), used by examples and by the engine's payload path.
//
// The ML workloads additionally carry fit state: a freshly reset model runs
// more optimization iterations per batch than a converged one, which is the
// paper's explanation for why the machine-learning workloads show the most
// dynamic optimization traces (§6.3).
package workload

import (
	"fmt"
	"math"
	"time"

	"nostop/internal/broker"
	"nostop/internal/rng"
)

// CostModel converts batch characteristics into simulated processing time.
//
// ProcessingTime(n, E, P) =
//
//	noise · [ InitBase + PerExecOverhead·E + n·RecordCost·iter(k)·jitter / P ]
//
// where P is the effective parallelism of the executor set (speed and disk
// factors applied by the caller), iter(k) = 1 + (IterInitial−1)·e^(−k/IterTau)
// models ML convergence across the k batches processed since the last fit
// reset, jitter is per-batch lognormal spread of iteration counts, and noise
// is lognormal system noise (network jitter, contention).
type CostModel struct {
	Name string
	// RecordCost is reference-core-seconds of work per record.
	RecordCost float64
	// InitBase is the fixed job submission/setup time per batch, seconds.
	InitBase float64
	// PerExecOverhead is seconds of per-batch coordination cost added for
	// each executor (task serialisation, shuffle coordination, heartbeats).
	// This term creates the Fig 3a upturn at high executor counts.
	PerExecOverhead float64
	// IOWeight in [0,1] is the fraction of the work that is disk-bound;
	// the engine blends node disk factors into parallelism with it.
	IOWeight float64
	// NoiseCV is the coefficient of variation of whole-batch system noise.
	NoiseCV float64
	// IterInitial (>= 1) is the iteration multiplier of an unfitted model;
	// 1 for non-iterative workloads.
	IterInitial float64
	// IterTau is the convergence time constant in batches.
	IterTau float64
	// IterJitter is the per-batch CV of the iteration count (ML only).
	IterJitter float64

	batchesSinceReset int
}

// ProcessingTime returns the simulated processing time of a batch with n
// records on executors executors whose effective parallelism is parallelism.
// It does not advance fit state; call NoteBatch once per completed batch.
func (m *CostModel) ProcessingTime(n int64, executors int, parallelism float64, noise *rng.Stream) time.Duration {
	if executors <= 0 {
		panic(fmt.Sprintf("workload %s: non-positive executors %d", m.Name, executors))
	}
	if parallelism <= 0 {
		panic(fmt.Sprintf("workload %s: non-positive parallelism %v", m.Name, parallelism))
	}
	work := float64(n) * m.RecordCost * m.iterFactor()
	if m.IterJitter > 0 {
		work *= noise.NoiseFactor(m.IterJitter)
	}
	secs := m.InitBase + m.PerExecOverhead*float64(executors) + work/parallelism
	secs *= noise.NoiseFactor(m.NoiseCV)
	if secs < 0.001 {
		secs = 0.001
	}
	return time.Duration(secs * float64(time.Second))
}

// iterFactor returns the current ML iteration multiplier.
func (m *CostModel) iterFactor() float64 {
	if m.IterInitial <= 1 || m.IterTau <= 0 {
		return 1
	}
	return 1 + (m.IterInitial-1)*math.Exp(-float64(m.batchesSinceReset)/m.IterTau)
}

// IterFactor exposes the current iteration multiplier for tests and reports.
func (m *CostModel) IterFactor() float64 { return m.iterFactor() }

// NoteBatch records that one more batch was processed, advancing model fit.
func (m *CostModel) NoteBatch() { m.batchesSinceReset++ }

// ResetFit models concept drift: the model becomes unfitted again and
// per-batch iteration counts jump back up.
func (m *CostModel) ResetFit() { m.batchesSinceReset = 0 }

// BatchesSinceReset returns the fit-state counter.
func (m *CostModel) BatchesSinceReset() int { return m.batchesSinceReset }

// Result is the output of semantically processing one batch.
type Result struct {
	Records int
	// Output is a small map of named aggregates (counts, losses, top keys).
	Output map[string]float64
	// Note is a one-line human-readable summary.
	Note string
}

// Workload couples a cost model with a semantic implementation and the
// paper's experimental input-rate band for that application (§6.2.2).
type Workload interface {
	// Name returns the workload's display name.
	Name() string
	// Model returns the (stateful) cost model instance.
	Model() *CostModel
	// RateBand returns the paper's [min, max] input rate in records/second.
	RateBand() (min, max float64)
	// GenValue synthesises the payload of the i-th record.
	GenValue(i int64, r *rng.Stream) string
	// ProcessBatch semantically processes concrete records.
	ProcessBatch(recs []broker.Record) Result
}

// New returns a fresh instance of the named workload. Valid names:
// "logreg", "linreg", "wordcount", "pageanalyze".
func New(name string) (Workload, error) {
	switch name {
	case "logreg":
		return NewLogisticRegression(), nil
	case "linreg":
		return NewLinearRegression(), nil
	case "wordcount":
		return NewWordCount(), nil
	case "pageanalyze":
		return NewPageAnalyze(), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// All returns fresh instances of the paper's four workloads, in the order
// they appear in §6.1.
func All() []Workload {
	return []Workload{
		NewLogisticRegression(),
		NewLinearRegression(),
		NewWordCount(),
		NewPageAnalyze(),
	}
}

// Names lists the valid workload names accepted by New.
func Names() []string { return []string{"logreg", "linreg", "wordcount", "pageanalyze"} }
