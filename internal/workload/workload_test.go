package workload

import (
	"math"
	"testing"
	"time"

	"nostop/internal/rng"
)

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		w, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if w.Name() == "" || w.Model() == nil {
			t.Fatalf("New(%q) returned incomplete workload", name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAllReturnsFourPaperWorkloads(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All()=%d workloads, want 4", len(all))
	}
	want := []string{"LogisticRegression", "LinearRegression", "WordCount", "PageAnalyze"}
	for i, w := range all {
		if w.Name() != want[i] {
			t.Errorf("All()[%d]=%s, want %s", i, w.Name(), want[i])
		}
	}
}

func TestRateBandsMatchPaper(t *testing.T) {
	want := map[string][2]float64{
		"LogisticRegression": {7000, 13000},
		"LinearRegression":   {80000, 120000},
		"WordCount":          {110000, 190000},
		"PageAnalyze":        {170000, 230000},
	}
	for _, w := range All() {
		min, max := w.RateBand()
		b := want[w.Name()]
		if min != b[0] || max != b[1] {
			t.Errorf("%s band [%v,%v], want %v", w.Name(), min, max, b)
		}
	}
}

func TestProcessingTimeIncreasesWithRecords(t *testing.T) {
	for _, w := range All() {
		m := w.Model()
		m.NoiseCV, m.IterJitter = 0, 0 // deterministic for the shape check
		noise := rng.New(1)
		small := m.ProcessingTime(10_000, 10, 9.4, noise)
		large := m.ProcessingTime(1_000_000, 10, 9.4, noise)
		if large <= small {
			t.Errorf("%s: time not increasing with batch size (%v vs %v)", w.Name(), small, large)
		}
	}
}

func TestProcessingTimeUShapeInExecutors(t *testing.T) {
	// Fig 3a: with a big enough batch, adding executors first helps then
	// hurts (coordination overhead). Verify decreasing at the left edge,
	// increasing at the right edge for a batch at the workload's rate.
	for _, w := range All() {
		m := w.Model()
		m.NoiseCV, m.IterJitter = 0, 0
		noise := rng.New(2)
		min, max := w.RateBand()
		n := int64((min + max) / 2 * 10) // 10-second batch
		at := func(e int) float64 {
			return m.ProcessingTime(n, e, 0.94*float64(e), noise).Seconds()
		}
		if at(2) <= at(6) {
			t.Errorf("%s: no speedup from 2→6 executors (%v vs %v)", w.Name(), at(2), at(6))
		}
		if at(60) <= at(30) {
			t.Errorf("%s: no overhead growth at high executor counts", w.Name())
		}
	}
}

func TestProcessingTimeFloor(t *testing.T) {
	m := &CostModel{Name: "tiny", RecordCost: 1e-12}
	d := m.ProcessingTime(1, 1, 1, rng.New(3))
	if d < time.Millisecond {
		t.Fatalf("processing time %v below 1ms floor", d)
	}
}

func TestProcessingTimePanicsOnBadArgs(t *testing.T) {
	m := NewWordCount().Model()
	for _, fn := range []func(){
		func() { m.ProcessingTime(1, 0, 1, rng.New(1)) },
		func() { m.ProcessingTime(1, 1, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestIterFactorConvergesAndResets(t *testing.T) {
	m := NewLogisticRegression().Model()
	initial := m.IterFactor()
	if math.Abs(initial-2.0) > 1e-9 {
		t.Fatalf("initial iter factor %v, want 2.0", initial)
	}
	for i := 0; i < 200; i++ {
		m.NoteBatch()
	}
	converged := m.IterFactor()
	if converged > 1.01 {
		t.Fatalf("iter factor %v after 200 batches, want ≈1", converged)
	}
	m.ResetFit()
	if m.IterFactor() != initial {
		t.Fatalf("ResetFit did not restore initial factor: %v", m.IterFactor())
	}
	if m.BatchesSinceReset() != 0 {
		t.Fatal("BatchesSinceReset not cleared")
	}
}

func TestIterFactorMonotoneDecreasing(t *testing.T) {
	m := NewLinearRegression().Model()
	prev := m.IterFactor()
	for i := 0; i < 50; i++ {
		m.NoteBatch()
		cur := m.IterFactor()
		if cur > prev {
			t.Fatalf("iter factor increased at batch %d: %v > %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestNonIterativeWorkloadsHaveUnitFactor(t *testing.T) {
	for _, w := range []Workload{NewWordCount(), NewPageAnalyze()} {
		if f := w.Model().IterFactor(); f != 1 {
			t.Errorf("%s iter factor %v, want 1", w.Name(), f)
		}
	}
}

func TestMLBatchTimesShrinkAsModelFits(t *testing.T) {
	// §6.3: unfitted models take longer per batch. Compare the first and
	// the 100th batch at identical size/config without noise.
	m := NewLogisticRegression().Model()
	m.NoiseCV, m.IterJitter = 0, 0
	noise := rng.New(5)
	first := m.ProcessingTime(100_000, 10, 9.4, noise)
	for i := 0; i < 100; i++ {
		m.NoteBatch()
	}
	later := m.ProcessingTime(100_000, 10, 9.4, noise)
	if later >= first {
		t.Fatalf("fitted batch %v not faster than unfitted %v", later, first)
	}
	// Work term halves when iter factor goes 2→1, so the total should
	// drop noticeably (more than 20%).
	if later.Seconds() > 0.8*first.Seconds() {
		t.Fatalf("fitted speedup too small: %v vs %v", later, first)
	}
}

func TestNoiseProducesSpread(t *testing.T) {
	m := NewLogisticRegression().Model()
	noise := rng.New(6)
	seen := map[time.Duration]bool{}
	for i := 0; i < 20; i++ {
		seen[m.ProcessingTime(50_000, 10, 9.4, noise)] = true
	}
	if len(seen) < 15 {
		t.Fatalf("noisy processing times too repetitive: %d distinct of 20", len(seen))
	}
}

func TestWordCountMostStable(t *testing.T) {
	// §6.3: WordCount has the most stable processing times. Its modelled
	// noise must be the smallest of the four workloads.
	wc := NewWordCount().Model().NoiseCV
	for _, w := range All() {
		if w.Name() == "WordCount" {
			continue
		}
		if w.Model().NoiseCV <= wc {
			t.Errorf("%s NoiseCV %v not above WordCount's %v", w.Name(), w.Model().NoiseCV, wc)
		}
	}
}

func TestPageAnalyzeMostIOBound(t *testing.T) {
	pa := NewPageAnalyze().Model().IOWeight
	for _, w := range All() {
		if w.Name() == "PageAnalyze" {
			continue
		}
		if w.Model().IOWeight >= pa {
			t.Errorf("%s IOWeight %v not below PageAnalyze's %v", w.Name(), w.Model().IOWeight, pa)
		}
	}
}
