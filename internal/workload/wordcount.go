package workload

import (
	"fmt"
	"sort"
	"strings"

	"nostop/internal/broker"
	"nostop/internal/rng"
)

// wcVocabulary is the word pool the generator draws from with a skewed
// (roughly Zipfian) distribution, so counts are realistic: a few very common
// words and a long tail.
var wcVocabulary = []string{
	"the", "of", "and", "to", "in", "a", "is", "that", "for", "it",
	"stream", "data", "batch", "spark", "system", "node", "latency", "delay",
	"executor", "interval", "record", "queue", "rate", "time", "process",
	"cluster", "kafka", "topic", "partition", "offset", "window", "state",
	"shuffle", "stage", "task", "job", "driver", "worker", "memory", "core",
}

// WordCount is the paper's CPU-intensive WordCount workload: two map/reduce
// operations with a fixed processing flow, making its batch times the most
// stable of the four (§6.3).
type WordCount struct {
	model *CostModel
	// totals persists cumulative counts across batches (updateStateByKey
	// style), so the workload carries streaming state like a real app.
	totals map[string]int64
}

// NewWordCount returns a fresh workload.
func NewWordCount() *WordCount {
	return &WordCount{
		model: &CostModel{
			Name:            "WordCount",
			RecordCost:      0.00003,
			InitBase:        0.4,
			PerExecOverhead: 0.12,
			IOWeight:        0.2,
			NoiseCV:         0.04,
			IterInitial:     1,
		},
		totals: make(map[string]int64),
	}
}

// Name implements Workload.
func (w *WordCount) Name() string { return "WordCount" }

// Model implements Workload.
func (w *WordCount) Model() *CostModel { return w.model }

// RateBand implements Workload (§6.2.2: [110000, 190000] records/second).
func (w *WordCount) RateBand() (float64, float64) { return 110000, 190000 }

// GenValue synthesises a short sentence with a skewed word distribution:
// rank r is chosen with probability ∝ 1/(r+1).
func (w *WordCount) GenValue(i int64, r *rng.Stream) string {
	n := 4 + r.Intn(8)
	words := make([]string, n)
	for k := 0; k < n; k++ {
		words[k] = wcVocabulary[zipfIndex(r, len(wcVocabulary))]
	}
	return strings.Join(words, " ")
}

// zipfIndex draws an index in [0, n) with P(i) ∝ 1/(i+1) by inverse CDF.
func zipfIndex(r *rng.Stream, n int) int {
	// Harmonic normaliser H(n); n is small so compute directly.
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	u := r.Float64() * h
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / float64(i)
		if u <= acc {
			return i - 1
		}
	}
	return n - 1
}

// ProcessBatch tokenises the lines, counts words (the "map" and "reduce"
// phases), and folds the counts into the running totals.
func (w *WordCount) ProcessBatch(recs []broker.Record) Result {
	batch := make(map[string]int64)
	var tokens int64
	for _, rec := range recs {
		for _, word := range strings.Fields(rec.Value) {
			word = strings.ToLower(strings.Trim(word, ".,!?;:\"'"))
			if word == "" {
				continue
			}
			batch[word]++
			tokens++
		}
	}
	if tokens == 0 {
		return Result{Note: "wordcount: empty batch"}
	}
	for word, c := range batch {
		w.totals[word] += c
	}
	topWord, topCount := "", int64(-1)
	for word, c := range batch {
		if c > topCount || (c == topCount && word < topWord) {
			topWord, topCount = word, c
		}
	}
	return Result{
		Records: len(recs),
		Output: map[string]float64{
			"tokens":   float64(tokens),
			"distinct": float64(len(batch)),
			"top":      float64(topCount),
		},
		Note: fmt.Sprintf("wordcount: %d tokens, %d distinct, top %q×%d", tokens, len(batch), topWord, topCount),
	}
}

// TopK returns the k highest cumulative counts as "word count" strings,
// sorted descending then lexicographically.
func (w *WordCount) TopK(k int) []string {
	type wc struct {
		word  string
		count int64
	}
	all := make([]wc, 0, len(w.totals))
	for word, c := range w.totals {
		all = append(all, wc{word, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].word < all[j].word
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = fmt.Sprintf("%s %d", all[i].word, all[i].count)
	}
	return out
}

// Total returns the cumulative count for a word.
func (w *WordCount) Total(word string) int64 { return w.totals[word] }
