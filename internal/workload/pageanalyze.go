package workload

import (
	"fmt"
	"strconv"
	"strings"

	"nostop/internal/broker"
	"nostop/internal/rng"
)

// paPaths are the site paths the synthetic Nginx access log draws from.
var paPaths = []string{
	"/", "/index.html", "/cart", "/checkout", "/login", "/logout",
	"/api/items", "/api/items/42", "/api/search", "/static/app.js",
	"/static/site.css", "/img/banner.png", "/profile", "/orders", "/help",
}

// paAgents are user-agent strings for the generator.
var paAgents = []string{
	"Mozilla/5.0 (X11; Linux x86_64)",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7)",
	"curl/7.68.0",
	"Googlebot/2.1 (+http://www.google.com/bot.html)",
}

var paMethods = []string{"GET", "GET", "GET", "GET", "POST", "PUT"}

// PageAnalyze is the paper's Log/Page Analyze workload: it receives Nginx
// access-log lines from the broker, washes and parses them, and computes
// traffic analytics (status mix, bytes, error rate, top paths) whose results
// would be written back to HDFS in the original system. The heavy output
// path gives it the largest IOWeight of the four workloads.
type PageAnalyze struct {
	model     *CostModel
	pathHits  map[string]int64
	statusTot map[int]int64
}

// NewPageAnalyze returns a fresh workload.
func NewPageAnalyze() *PageAnalyze {
	return &PageAnalyze{
		model: &CostModel{
			Name:            "PageAnalyze",
			RecordCost:      0.000025,
			InitBase:        0.6,
			PerExecOverhead: 0.15,
			IOWeight:        0.6,
			NoiseCV:         0.06,
			IterInitial:     1,
		},
		pathHits:  make(map[string]int64),
		statusTot: make(map[int]int64),
	}
}

// Name implements Workload.
func (w *PageAnalyze) Name() string { return "PageAnalyze" }

// Model implements Workload.
func (w *PageAnalyze) Model() *CostModel { return w.model }

// RateBand implements Workload (§6.2.2: [170000, 230000] records/second).
func (w *PageAnalyze) RateBand() (float64, float64) { return 170000, 230000 }

// GenValue synthesises one Nginx "combined" log line.
func (w *PageAnalyze) GenValue(i int64, r *rng.Stream) string {
	ip := fmt.Sprintf("10.%d.%d.%d", r.Intn(256), r.Intn(256), 1+r.Intn(254))
	method := paMethods[r.Intn(len(paMethods))]
	path := paPaths[zipfIndex(r, len(paPaths))]
	status := 200
	switch roll := r.Float64(); {
	case roll < 0.02:
		status = 500
	case roll < 0.07:
		status = 404
	case roll < 0.10:
		status = 302
	}
	bytes := 200 + r.Intn(40000)
	agent := paAgents[r.Intn(len(paAgents))]
	return fmt.Sprintf(`%s - - [04/Jul/2026:12:%02d:%02d +0000] "%s %s HTTP/1.1" %d %d "-" "%s"`,
		ip, r.Intn(60), r.Intn(60), method, path, status, bytes, agent)
}

// logEntry is one parsed access-log line.
type logEntry struct {
	ip     string
	method string
	path   string
	status int
	bytes  int64
}

// parseLogLine parses an Nginx combined log line; ok is false for garbage
// lines (the "washing" step).
func parseLogLine(line string) (logEntry, bool) {
	var e logEntry
	// IP is the first field.
	sp := strings.IndexByte(line, ' ')
	if sp <= 0 {
		return e, false
	}
	e.ip = line[:sp]
	// Request is the first quoted section: "METHOD path HTTP/x.y".
	q1 := strings.IndexByte(line, '"')
	if q1 < 0 {
		return e, false
	}
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return e, false
	}
	req := line[q1+1 : q1+1+q2]
	parts := strings.Fields(req)
	if len(parts) < 2 {
		return e, false
	}
	e.method, e.path = parts[0], parts[1]
	// Status and bytes follow the closing quote.
	rest := strings.Fields(line[q1+q2+2:])
	if len(rest) < 2 {
		return e, false
	}
	status, err := strconv.Atoi(rest[0])
	if err != nil {
		return e, false
	}
	e.status = status
	bytes, err := strconv.ParseInt(rest[1], 10, 64)
	if err != nil {
		return e, false
	}
	e.bytes = bytes
	return e, true
}

// ProcessBatch washes and analyses log lines: per-status counts, byte
// volume, error rate, and top-path tracking across batches.
func (w *PageAnalyze) ProcessBatch(recs []broker.Record) Result {
	var parsed, malformed int
	var totalBytes int64
	statuses := map[int]int{}
	for _, rec := range recs {
		e, ok := parseLogLine(rec.Value)
		if !ok {
			malformed++
			continue
		}
		parsed++
		totalBytes += e.bytes
		statuses[e.status]++
		w.pathHits[e.path]++
		w.statusTot[e.status]++
	}
	if parsed == 0 {
		return Result{Records: len(recs), Note: "pageanalyze: no parsable lines"}
	}
	errors := 0
	for status, n := range statuses {
		if status >= 500 {
			errors += n
		}
	}
	errRate := float64(errors) / float64(parsed)
	return Result{
		Records: len(recs),
		Output: map[string]float64{
			"parsed":     float64(parsed),
			"malformed":  float64(malformed),
			"bytes":      float64(totalBytes),
			"error_rate": errRate,
			"avg_bytes":  float64(totalBytes) / float64(parsed),
		},
		Note: fmt.Sprintf("pageanalyze: %d lines, %.2f%% 5xx, %.0fB avg",
			parsed, 100*errRate, float64(totalBytes)/float64(parsed)),
	}
}

// PathHits returns the cumulative hit count of a path.
func (w *PageAnalyze) PathHits(path string) int64 { return w.pathHits[path] }

// StatusTotal returns the cumulative count of a status code.
func (w *PageAnalyze) StatusTotal(code int) int64 { return w.statusTot[code] }
