package listener

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func newRunningEngine(t *testing.T, horizon float64) (*engine.Engine, *Collector) {
	t.Helper()
	clock := sim.NewClock()
	eng, err := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 50000},
		Seed:     rng.New(3),
		Initial:  engine.Config{BatchInterval: 5 * time.Second, Executors: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(time.Duration(horizon * float64(time.Second))))
	return eng, col
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil, 0); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestReportFields(t *testing.T) {
	bs := engine.BatchStats{
		ID:                 7,
		Records:            1234,
		Config:             engine.Config{BatchInterval: 5 * time.Second, Executors: 9},
		CutAt:              sim.Time(10 * time.Second),
		SchedulingDelay:    500 * time.Millisecond,
		ProcessingTime:     2 * time.Second,
		EndToEndDelay:      5 * time.Second,
		FirstAfterReconfig: true,
		QueueLen:           2,
	}
	r := Report(bs)
	if r.BatchID != 7 || r.NumRecords != 1234 || r.Executors != 9 {
		t.Fatalf("report %+v", r)
	}
	if r.BatchIntervalMs != 5000 || r.ProcessingDelayMs != 2000 || r.SchedulingDelayMs != 500 {
		t.Fatalf("delays wrong: %+v", r)
	}
	if r.TotalDelayMs != 2500 {
		t.Fatalf("TotalDelayMs=%d, want 2500", r.TotalDelayMs)
	}
	if !r.FirstAfterChange || r.QueueLength != 2 || r.SubmissionTimeSec != 10 {
		t.Fatalf("flags wrong: %+v", r)
	}
}

func TestCollectorAccumulates(t *testing.T) {
	eng, col := newRunningEngine(t, 120)
	reports := col.Reports()
	if len(reports) != len(eng.History()) {
		t.Fatalf("collector has %d, engine %d", len(reports), len(eng.History()))
	}
	latest, ok := col.Latest()
	if !ok || latest.BatchID != reports[len(reports)-1].BatchID {
		t.Fatalf("Latest mismatch: %+v", latest)
	}
	// Reports must be JSON-serialisable with the expected keys.
	blob, err := json.Marshal(latest)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"batchId", "numRecords", "processingDelayMs", "schedulingDelayMs", "totalDelayMs"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("JSON missing key %q: %s", key, blob)
		}
	}
}

func TestCollectorEviction(t *testing.T) {
	clock := sim.NewClock()
	eng, _ := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
		Seed:     rng.New(4),
		Initial:  engine.Config{BatchInterval: 2 * time.Second, Executors: 4},
	})
	col, _ := NewCollector(eng, 5)
	eng.Start()
	clock.RunUntil(sim.Time(60 * time.Second))
	reports := col.Reports()
	if len(reports) != 5 {
		t.Fatalf("kept %d reports, want 5", len(reports))
	}
	// Must be the most recent five, in order.
	for i := 1; i < len(reports); i++ {
		if reports[i].BatchID != reports[i-1].BatchID+1 {
			t.Fatalf("eviction broke ordering: %+v", reports)
		}
	}
	if last := eng.History()[len(eng.History())-1]; reports[4].BatchID != last.ID {
		t.Fatalf("newest report %d != newest batch %d", reports[4].BatchID, last.ID)
	}
}

func TestLatestEmpty(t *testing.T) {
	clock := sim.NewClock()
	eng, _ := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	col, _ := NewCollector(eng, 0)
	if _, ok := col.Latest(); ok {
		t.Fatal("Latest on empty collector")
	}
}

func TestStatusSummary(t *testing.T) {
	eng, col := newRunningEngine(t, 300)
	st := col.Status()
	if st.Batches != len(eng.History()) {
		t.Fatalf("Batches=%d, want %d", st.Batches, len(eng.History()))
	}
	if st.BatchIntervalMs != 5000 || st.Executors != 8 {
		t.Fatalf("config in status wrong: %+v", st)
	}
	if st.RateMean < 45000 || st.RateMean > 55000 {
		t.Fatalf("RateMean=%v, want ≈50000", st.RateMean)
	}
	if st.MeanProcMs <= 0 || st.MeanE2EMs <= st.MeanProcMs {
		t.Fatalf("delay summary inconsistent: %+v", st)
	}
	if st.P95E2EMs < st.MeanE2EMs*0.5 {
		t.Fatalf("p95 %v below half the mean %v", st.P95E2EMs, st.MeanE2EMs)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	_, col := newRunningEngine(t, 120)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var st Status
	if code := getJSON("/status", &st); code != 200 {
		t.Fatalf("/status code %d", code)
	}
	if st.Batches == 0 {
		t.Fatal("/status shows no batches")
	}

	var all []BatchReport
	if code := getJSON("/batches", &all); code != 200 {
		t.Fatal("bad /batches")
	}
	if len(all) != st.Batches {
		t.Fatalf("/batches returned %d, status says %d", len(all), st.Batches)
	}

	var tail []BatchReport
	if code := getJSON("/batches?last=3", &tail); code != 200 {
		t.Fatal("bad /batches?last=3")
	}
	if len(tail) != 3 {
		t.Fatalf("last=3 returned %d", len(tail))
	}
	if tail[2].BatchID != all[len(all)-1].BatchID {
		t.Fatal("tail not aligned with newest")
	}

	var latest BatchReport
	if code := getJSON("/batches/latest", &latest); code != 200 {
		t.Fatal("bad /batches/latest")
	}
	if latest.BatchID != all[len(all)-1].BatchID {
		t.Fatal("latest mismatch")
	}

	var junk any
	if code := getJSON("/batches?last=x", &junk); code != 400 {
		t.Fatalf("bad last parameter gave %d, want 400", code)
	}
}

func TestHTTPLatestEmpty404(t *testing.T) {
	clock := sim.NewClock()
	eng, _ := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	col, _ := NewCollector(eng, 0)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/batches/latest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("code %d, want 404", resp.StatusCode)
	}
}

// TestMetricsStatusAgree asserts the synchronisation contract in the package
// comment: with the clock stopped, /status Batches, the legacy
// nostop_batches_total gauge, and the attached registry's
// nostop_batches_completed_total counter report the same batch count.
func TestMetricsStatusAgree(t *testing.T) {
	clock := sim.NewClock()
	reg := metrics.NewRegistry()
	eng, err := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 50000},
		Seed:     rng.New(3),
		Initial:  engine.Config{BatchInterval: 5 * time.Second, Executors: 8},
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	col.SetRegistry(reg)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(120 * time.Second))

	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	var st Status
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Batches == 0 {
		t.Fatal("/status shows no batches")
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Pull a sample value out of the exposition by metric name.
	sample := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(string(body), "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("unparsable sample %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("/metrics missing %s:\n%s", name, body)
		return 0
	}

	if legacy := sample("nostop_batches_total"); legacy != float64(st.Batches) {
		t.Errorf("legacy gauge %v != status batches %d", legacy, st.Batches)
	}
	if completed := sample("nostop_batches_completed_total"); completed != float64(st.Batches) {
		t.Errorf("registry counter %v != status batches %d", completed, st.Batches)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, col := newRunningEngine(t, 120)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics code %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"nostop_batches_total", "nostop_queue_length", "nostop_input_rate_mean",
		"# TYPE nostop_executors gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The gauge values must reflect the live system.
	if !strings.Contains(text, "nostop_executors 8") {
		t.Fatalf("executors gauge wrong:\n%s", text)
	}
}
