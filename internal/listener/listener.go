// Package listener implements the "Spark Streaming Listener" of the NoStop
// architecture (Fig 4): it observes completed batches, renders each as a
// JSON status report, and serves live system status over HTTP so external
// tooling can watch the optimization without touching the engine.
//
// # Synchronisation contract
//
// The Collector sits between two worlds: the single-threaded simulation
// kernel appends reports from its thread via the engine Listener callback,
// while HTTP handlers read from server goroutines. The report buffer is
// guarded by an RWMutex, so Reports, Latest, and the report-derived half of
// Status are always internally consistent. Status additionally reads live
// engine state (Config, QueueLen, Lag, rate window) WITHOUT holding the
// engine still: callers that need the engine frozen while serving — any
// real HTTP deployment against a running simulation — must serialise
// handler execution against clock advancement externally, as
// cmd/nostop-listen does with a lock middleware around every request.
// Under that discipline /status and /metrics observe identical state:
// Status.Batches, the legacy nostop_batches_total gauge, and the attached
// registry's nostop_batches_completed_total counter all agree after every
// batch (asserted by TestMetricsStatusAgree).
package listener

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/stats"
)

// BatchReport is the JSON document emitted per completed batch. Field names
// follow the Spark Streaming listener vocabulary.
type BatchReport struct {
	BatchID           int64   `json:"batchId"`
	NumRecords        int64   `json:"numRecords"`
	BatchIntervalMs   int64   `json:"batchIntervalMs"`
	Executors         int     `json:"numExecutors"`
	SubmissionTimeSec float64 `json:"submissionTime"`
	ProcessingDelayMs int64   `json:"processingDelayMs"`
	SchedulingDelayMs int64   `json:"schedulingDelayMs"`
	TotalDelayMs      int64   `json:"totalDelayMs"`
	EndToEndDelayMs   int64   `json:"endToEndDelayMs"`
	FirstAfterChange  bool    `json:"firstAfterReconfig"`
	// FaultActive mirrors BatchStats.FaultActive so a remote controller
	// (service mode) can apply the same failure-aware measurement
	// admission a co-located one does.
	FaultActive bool `json:"faultActive"`
	QueueLength int  `json:"queueLength"`
}

// Report converts engine batch stats into the JSON report form.
func Report(bs engine.BatchStats) BatchReport {
	return BatchReport{
		BatchID:           bs.ID,
		NumRecords:        bs.Records,
		BatchIntervalMs:   bs.Config.BatchInterval.Milliseconds(),
		Executors:         bs.Config.Executors,
		SubmissionTimeSec: bs.CutAt.Seconds(),
		ProcessingDelayMs: bs.ProcessingTime.Milliseconds(),
		SchedulingDelayMs: bs.SchedulingDelay.Milliseconds(),
		TotalDelayMs:      (bs.ProcessingTime + bs.SchedulingDelay).Milliseconds(),
		EndToEndDelayMs:   bs.EndToEndDelay.Milliseconds(),
		FirstAfterChange:  bs.FirstAfterReconfig,
		FaultActive:       bs.FaultActive,
		QueueLength:       bs.QueueLen,
	}
}

// Status summarises the live system for the /status endpoint.
type Status struct {
	Batches         int     `json:"batches"`
	BatchIntervalMs int64   `json:"batchIntervalMs"`
	Executors       int     `json:"numExecutors"`
	QueueLength     int     `json:"queueLength"`
	LagRecords      int64   `json:"lagRecords"`
	RateMean        float64 `json:"inputRateMean"`
	RateStd         float64 `json:"inputRateStd"`
	MeanProcMs      float64 `json:"meanProcessingMs"`
	MeanE2EMs       float64 `json:"meanEndToEndMs"`
	P95E2EMs        float64 `json:"p95EndToEndMs"`
}

// Collector subscribes to an engine, retains reports, and serves them over
// HTTP. It is safe for concurrent use: the simulation appends from its
// thread while HTTP handlers read from server goroutines.
type Collector struct {
	eng *engine.Engine

	mu      sync.RWMutex
	reports []BatchReport
	maxKeep int
	reg     *metrics.Registry
}

// NewCollector attaches a collector to the engine. maxKeep bounds retained
// reports (0 means 100000).
func NewCollector(eng *engine.Engine, maxKeep int) (*Collector, error) {
	if eng == nil {
		return nil, fmt.Errorf("listener: nil engine")
	}
	if maxKeep == 0 {
		maxKeep = 100000
	}
	c := &Collector{eng: eng, maxKeep: maxKeep}
	eng.AddListener(engine.ListenerFunc(c.onBatch))
	return c, nil
}

// SetRegistry attaches a metrics registry whose full Prometheus exposition
// is prepended to /metrics ahead of the collector's legacy summary gauges.
// Attach the same registry the engine and controller write to (their
// Options.Metrics) so /metrics covers batch delay histograms, task
// retries, broker redeliveries, and SPSA step metrics; nil detaches.
func (c *Collector) SetRegistry(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
}

// Registry returns the attached metrics registry (nil when detached).
func (c *Collector) Registry() *metrics.Registry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.reg
}

func (c *Collector) onBatch(bs engine.BatchStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.reports) == c.maxKeep {
		copy(c.reports, c.reports[1:])
		c.reports = c.reports[:len(c.reports)-1]
	}
	c.reports = append(c.reports, Report(bs))
}

// Reports returns a copy of the retained reports.
func (c *Collector) Reports() []BatchReport {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]BatchReport(nil), c.reports...)
}

// ReportsSince returns the retained reports with BatchID strictly greater
// than after, in completion order — the incremental-poll primitive a remote
// controller uses to tail the batch stream without re-reading history.
// Batch IDs are monotone, so a binary search finds the cut point.
func (c *Collector) ReportsSince(after int64) []BatchReport {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lo, hi := 0, len(c.reports)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.reports[mid].BatchID <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.reports) {
		return nil
	}
	return append([]BatchReport(nil), c.reports[lo:]...)
}

// Latest returns the most recent report; ok is false when none exist.
func (c *Collector) Latest() (BatchReport, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.reports) == 0 {
		return BatchReport{}, false
	}
	return c.reports[len(c.reports)-1], true
}

// Status computes the live summary.
func (c *Collector) Status() Status {
	c.mu.RLock()
	var proc, e2e []float64
	for _, r := range c.reports {
		proc = append(proc, float64(r.ProcessingDelayMs))
		e2e = append(e2e, float64(r.EndToEndDelayMs))
	}
	n := len(c.reports)
	c.mu.RUnlock()

	cfg := c.eng.Config()
	e2eSum := stats.Summarize(e2e)
	return Status{
		Batches:         n,
		BatchIntervalMs: cfg.BatchInterval.Milliseconds(),
		Executors:       cfg.Executors,
		QueueLength:     c.eng.QueueLen(),
		LagRecords:      c.eng.Lag(),
		RateMean:        c.eng.RecentRateMean(),
		RateStd:         c.eng.RecentRateStd(),
		MeanProcMs:      stats.Mean(proc),
		MeanE2EMs:       e2eSum.Mean,
		P95E2EMs:        e2eSum.P95,
	}
}

// Handler returns an http.Handler exposing:
//
//	GET /status          live Status JSON
//	GET /batches         all retained reports (?last=N for the tail,
//	                     ?since=ID for reports with BatchID > ID)
//	GET /batches/latest  the most recent report
//	GET /metrics         Prometheus text exposition: the attached registry
//	                     (SetRegistry) followed by the legacy summary gauges
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st := c.Status()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if reg := c.Registry(); reg != nil {
			if err := reg.WritePrometheus(w); err != nil {
				return // client went away mid-write; nothing to salvage
			}
		}
		for _, m := range []struct {
			name, help string
			value      float64
		}{
			{"nostop_batches_total", "Completed batches", float64(st.Batches)},
			{"nostop_batch_interval_ms", "Live batch interval", float64(st.BatchIntervalMs)},
			{"nostop_executors", "Live executor count", float64(st.Executors)},
			{"nostop_queue_length", "Waiting batches", float64(st.QueueLength)},
			{"nostop_lag_records", "Unconsumed broker records", float64(st.LagRecords)},
			{"nostop_input_rate_mean", "Mean input rate (rec/s)", st.RateMean},
			{"nostop_input_rate_std", "Input rate std (rec/s)", st.RateStd},
			{"nostop_processing_ms_mean", "Mean batch processing time", st.MeanProcMs},
			{"nostop_end_to_end_ms_mean", "Mean end-to-end delay", st.MeanE2EMs},
			{"nostop_end_to_end_ms_p95", "p95 end-to-end delay", st.P95E2EMs},
		} {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
				m.name, m.help, m.name, m.name, m.value)
		}
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("GET /batches", func(w http.ResponseWriter, r *http.Request) {
		if sinceStr := r.URL.Query().Get("since"); sinceStr != "" {
			since, err := strconv.ParseInt(sinceStr, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			writeJSON(w, c.ReportsSince(since))
			return
		}
		reports := c.Reports()
		if lastStr := r.URL.Query().Get("last"); lastStr != "" {
			last, err := strconv.Atoi(lastStr)
			if err != nil || last < 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			if last < len(reports) {
				reports = reports[len(reports)-last:]
			}
		}
		writeJSON(w, reports)
	})
	mux.HandleFunc("GET /batches/latest", func(w http.ResponseWriter, r *http.Request) {
		latest, ok := c.Latest()
		if !ok {
			http.Error(w, "no batches yet", http.StatusNotFound)
			return
		}
		writeJSON(w, latest)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
