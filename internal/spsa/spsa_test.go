package spsa

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"nostop/internal/rng"
)

func mustNew(t *testing.T) *Optimizer {
	t.Helper()
	o, err := New([]float64{10, 10}, []float64{1, 1}, []float64{20, 20},
		DefaultParams(19, 2), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	lo, hi := []float64{0, 0}, []float64{1, 1}
	p := DefaultParams(1, 1)
	if _, err := New(nil, nil, nil, p, nil); err == nil {
		t.Error("empty initial accepted")
	}
	if _, err := New([]float64{0.5}, lo, hi, p, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("dim mismatch err=%v", err)
	}
	if _, err := New([]float64{0.5, 0.5}, []float64{1, 0}, []float64{0, 1}, p, nil); err == nil {
		t.Error("inverted bounds accepted")
	}
	bad := p
	bad.Aa = 0
	if _, err := New([]float64{0.5, 0.5}, lo, hi, bad, nil); err == nil {
		t.Error("zero a accepted")
	}
	bad = p
	bad.Alpha, bad.Gamma = 0.1, 0.6
	if _, err := New([]float64{0.5, 0.5}, lo, hi, bad, nil); err == nil {
		t.Error("alpha <= gamma accepted")
	}
}

func TestInitialClampedIntoBox(t *testing.T) {
	o, err := New([]float64{100, -5}, []float64{1, 1}, []float64{20, 20}, DefaultParams(19, 2), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	th := o.Theta()
	if th[0] != 20 || th[1] != 1 {
		t.Fatalf("Theta=%v, want clamped [20 1]", th)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams(20, 2)
	if p.A != 1 {
		t.Errorf("A=%v, want 1 (§5.6)", p.A)
	}
	if p.Aa != 10 {
		t.Errorf("a=%v, want half the range (§5.6)", p.Aa)
	}
	if p.C != 2 {
		t.Errorf("c=%v, want measurement std (§5.6)", p.C)
	}
	if p.Alpha != 0.602 || p.Gamma != 0.101 {
		t.Errorf("exponents %v/%v, want 0.602/0.101", p.Alpha, p.Gamma)
	}
}

func TestGainsMatchAlgorithmOne(t *testing.T) {
	o := mustNew(t) // A=1, a=9.5, c=2
	ak, ck := o.Gains()
	// First iteration (k=1 after Algorithm 1's k++): a/(1+1+1)^0.602.
	wantAk := 9.5 / math.Pow(3, 0.602)
	wantCk := 2.0 / math.Pow(2, 0.101)
	if math.Abs(ak-wantAk) > 1e-12 || math.Abs(ck-wantCk) > 1e-12 {
		t.Fatalf("gains (%v, %v), want (%v, %v)", ak, ck, wantAk, wantCk)
	}
}

func TestGainsDecayAndConditions(t *testing.T) {
	o := mustNew(t)
	var prevA, prevC float64 = math.Inf(1), math.Inf(1)
	sumA, sumRatioSq := 0.0, 0.0
	for i := 0; i < 2000; i++ {
		ak, ck := o.Gains()
		if ak >= prevA || ck >= prevC {
			t.Fatalf("gains not strictly decreasing at k=%d", i)
		}
		prevA, prevC = ak, ck
		sumA += ak
		sumRatioSq += (ak / ck) * (ak / ck)
		plus, minus, _ := o.Perturb()
		_, _ = plus, minus
		if _, err := o.Update(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Σak diverges (grows with horizon) while Σ(ak/ck)² converges: the
	// tail terms must become negligible.
	ak, ck := o.Gains()
	if ak <= 0 || ck <= 0 {
		t.Fatal("gains must stay positive")
	}
	tail := (ak / ck) * (ak / ck)
	if tail > sumRatioSq/100 {
		t.Fatalf("(ak/ck)² tail %v not vanishing vs sum %v", tail, sumRatioSq)
	}
	if sumA < 100*prevA {
		t.Fatalf("Σak %v does not dominate its last term %v", sumA, prevA)
	}
}

func TestPerturbGeometry(t *testing.T) {
	o := mustNew(t)
	_, ck := o.Gains()
	plus, minus, err := o.Perturb()
	if err != nil {
		t.Fatal(err)
	}
	th := o.Theta()
	for i := range th {
		dp := plus[i] - th[i]
		dm := th[i] - minus[i]
		if math.Abs(math.Abs(dp)-ck) > 1e-12 {
			t.Fatalf("component %d offset %v, want ±ck=%v", i, dp, ck)
		}
		if math.Abs(dp-dm) > 1e-12 {
			t.Fatalf("perturbation not symmetric: +%v -%v", dp, dm)
		}
	}
}

func TestPerturbTwiceFails(t *testing.T) {
	o := mustNew(t)
	if _, _, err := o.Perturb(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Perturb(); !errors.Is(err, ErrPerturbTwice) {
		t.Fatalf("err=%v", err)
	}
}

func TestUpdateWithoutPerturbFails(t *testing.T) {
	o := mustNew(t)
	if _, err := o.Update(1, 2); !errors.Is(err, ErrNoPendingPerturb) {
		t.Fatalf("err=%v", err)
	}
}

func TestUpdateMovesDownhill(t *testing.T) {
	// Objective increasing in both coordinates: y⁺ > y⁻ whenever the probe
	// moved up; SPSA must step down.
	o, err := New([]float64{10, 10}, []float64{0, 0}, []float64{20, 20}, DefaultParams(20, 1), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x []float64) float64 { return x[0] + x[1] }
	start := o.Theta()
	for i := 0; i < 10; i++ {
		plus, minus, _ := o.Perturb()
		if _, err := o.Update(obj(plus), obj(minus)); err != nil {
			t.Fatal(err)
		}
	}
	end := o.Theta()
	if end[0] >= start[0] || end[1] >= start[1] {
		t.Fatalf("did not move downhill: %v → %v", start, end)
	}
}

func TestBoundsNeverViolatedProperty(t *testing.T) {
	// Property: for any noisy measurements, every probe and every estimate
	// stays inside the box.
	f := func(seed uint64, noise []float64) bool {
		o, err := New([]float64{5, 15}, []float64{1, 1}, []float64{20, 20}, DefaultParams(19, 3), rng.New(seed))
		if err != nil {
			return false
		}
		inBox := func(v []float64) bool {
			for _, x := range v {
				if x < 1 || x > 20 {
					return false
				}
			}
			return true
		}
		for i := 0; i < len(noise)/2; i++ {
			plus, minus, err := o.Perturb()
			if err != nil || !inBox(plus) || !inBox(minus) {
				return false
			}
			th, err := o.Update(noise[2*i]*100, noise[2*i+1]*100)
			if err != nil || !inBox(th) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeNoisyQuadratic(t *testing.T) {
	// G(x) = (x0-3)² + (x1+2)² + noise; SPSA should land near (3, -2).
	noise := rng.New(11).Split("obj")
	obj := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2) + noise.Norm(0, 0.1)
	}
	got, err := Minimize(obj, []float64{8, 8}, []float64{-10, -10}, []float64{10, 10},
		DefaultParams(20, 0.5), rng.New(12), 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-3) > 0.7 || math.Abs(got[1]+2) > 0.7 {
		t.Fatalf("converged to %v, want ≈(3,-2)", got)
	}
}

func TestMinimizeConstrainedOptimum(t *testing.T) {
	// Optimum outside the box: SPSA must converge to the boundary.
	obj := func(x []float64) float64 { return (x[0] - 100) * (x[0] - 100) }
	got, err := Minimize(obj, []float64{5}, []float64{0}, []float64{10},
		DefaultParams(10, 1), rng.New(13), 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 9.5 {
		t.Fatalf("converged to %v, want near upper bound 10", got)
	}
}

func TestMinimizeTrajectoryObserved(t *testing.T) {
	var steps []Step
	_, err := Minimize(func(x []float64) float64 { return x[0] * x[0] },
		[]float64{5}, []float64{-10}, []float64{10},
		DefaultParams(20, 1), rng.New(14), 25,
		func(s Step) { steps = append(steps, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 25 {
		t.Fatalf("observed %d steps, want 25", len(steps))
	}
	for i, s := range steps {
		if s.K != i+1 {
			t.Fatalf("step %d has K=%d", i, s.K)
		}
		if len(s.Theta) != 1 || len(s.ThetaPlus) != 1 || len(s.ThetaMinus) != 1 {
			t.Fatal("step vectors missing")
		}
	}
}

func TestResetRestartsGains(t *testing.T) {
	o := mustNew(t)
	for i := 0; i < 50; i++ {
		o.Perturb()
		o.Update(1, 0)
	}
	akLate, _ := o.Gains()
	if err := o.Reset([]float64{10, 10}); err != nil {
		t.Fatal(err)
	}
	if o.K() != 0 {
		t.Fatalf("K=%d after reset", o.K())
	}
	akFresh, _ := o.Gains()
	if akFresh <= akLate {
		t.Fatalf("reset did not restore large steps: %v vs %v", akFresh, akLate)
	}
	th := o.Theta()
	if th[0] != 10 || th[1] != 10 {
		t.Fatalf("reset Theta=%v", th)
	}
	// A pending perturbation must be discarded by Reset.
	o.Perturb()
	o.Reset([]float64{5, 5})
	if _, _, err := o.Perturb(); err != nil {
		t.Fatalf("Perturb after reset: %v", err)
	}
	if err := o.Reset([]float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad reset err=%v", err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		got, _ := Minimize(func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
			[]float64{4, -4}, []float64{-5, -5}, []float64{5, 5},
			DefaultParams(10, 1), rng.New(77), 50, nil)
		return got
	}
	a, b := run(), run()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestScaleRoundTrip(t *testing.T) {
	s, err := NewScale(1000, 40000, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ToNorm(1000); got != 1 {
		t.Fatalf("ToNorm(lo)=%v", got)
	}
	if got := s.ToNorm(40000); got != 20 {
		t.Fatalf("ToNorm(hi)=%v", got)
	}
	if got := s.FromNorm(s.ToNorm(17500)); math.Abs(got-17500) > 1e-9 {
		t.Fatalf("round trip: %v", got)
	}
	// Clamping outside physical/normalised ranges.
	if s.ToNorm(-5) != 1 || s.ToNorm(1e9) != 20 {
		t.Error("ToNorm not clamped")
	}
	if s.FromNorm(0) != 1000 || s.FromNorm(25) != 40000 {
		t.Error("FromNorm not clamped")
	}
	if _, err := NewScale(5, 5, 0, 1); err == nil {
		t.Error("degenerate scale accepted")
	}
}

func TestScaleRoundTripProperty(t *testing.T) {
	s, _ := NewScale(1, 20, 1, 20) // §6.2.1 scales executors into [1,20]
	f := func(raw float64) bool {
		v := 1 + math.Abs(math.Mod(raw, 19))
		back := s.FromNorm(s.ToNorm(v))
		return math.Abs(back-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxStepClipsUpdates(t *testing.T) {
	params := DefaultParams(19, 2)
	params.MaxStep = 0.5
	o, err := New([]float64{10, 10}, []float64{1, 1}, []float64{20, 20}, params, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		before := o.Theta()
		o.Perturb()
		// Enormous measurement gap: unclipped, the step would cross the box.
		if _, err := o.Update(1e6, 0); err != nil {
			t.Fatal(err)
		}
		after := o.Theta()
		var d2 float64
		for j := range before {
			d := after[j] - before[j]
			d2 += d * d
		}
		if math.Sqrt(d2) > 0.5+1e-9 {
			t.Fatalf("step length %v exceeds MaxStep 0.5", math.Sqrt(d2))
		}
	}
}

func TestNoClipWithoutMaxStep(t *testing.T) {
	o, err := New([]float64{10, 10}, []float64{1, 1}, []float64{20, 20}, DefaultParams(19, 2), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	o.Perturb()
	o.Update(1e6, 0)
	th := o.Theta()
	// With such a gap the unclipped step slams into a bound.
	atBound := false
	for _, v := range th {
		if v == 1 || v == 20 {
			atBound = true
		}
	}
	if !atBound {
		t.Fatalf("unclipped huge step did not reach a bound: %v", th)
	}
}

func TestResetAtWarmRestart(t *testing.T) {
	o, _ := New([]float64{10, 10}, []float64{1, 1}, []float64{20, 20}, DefaultParams(19, 2), rng.New(23))
	for i := 0; i < 40; i++ {
		o.Perturb()
		o.Update(1, 0)
	}
	if err := o.ResetAt([]float64{5, 5}, 4); err != nil {
		t.Fatal(err)
	}
	if o.K() != 4 {
		t.Fatalf("K=%d after warm restart, want 4", o.K())
	}
	akWarm, _ := o.Gains()
	o2, _ := New([]float64{5, 5}, []float64{1, 1}, []float64{20, 20}, DefaultParams(19, 2), rng.New(23))
	akFresh, _ := o2.Gains()
	if akWarm >= akFresh {
		t.Fatalf("warm ak %v not below fresh ak %v", akWarm, akFresh)
	}
	if err := o.ResetAt([]float64{5, 5}, -1); err == nil {
		t.Fatal("negative warm restart accepted")
	}
}
