// Package spsa implements Simultaneous Perturbation Stochastic Approximation
// (Spall 1998), the optimization core of NoStop (§4.2).
//
// SPSA minimises a function G(θ) observable only through noisy measurements
// y(θ) = G(θ) + ξ. Each iteration perturbs all p components of θ
// simultaneously with a Rademacher (±1) vector Δk and estimates the gradient
// from just two measurements, regardless of dimension:
//
//	ĝk(θk)[i] = (y(θk + ck·Δk) − y(θk − ck·Δk)) / (2·ck·Δk[i])
//	θk+1 = θk − ak·ĝk(θk)
//
// with gain sequences ak = a/(A+k+1)^α and ck = c/(k+1)^γ. The α = 0.602,
// γ = 0.101 defaults are Spall's practically-effective values, and the
// convergence conditions B.1”–B.6” discussed in §4.2.4 hold for these
// sequences with symmetric Bernoulli perturbations.
//
// The package is generic: nothing here knows about Spark, batches, or
// streaming. NoStop's controller (internal/core) drives it against the
// streaming engine, and examples/custombox drives it against an arbitrary
// user-defined black box — the portability the paper claims in §1.
package spsa

import (
	"errors"
	"fmt"
	"math"

	"nostop/internal/approx"
	"nostop/internal/rng"
)

// Params are the gain-sequence coefficients.
type Params struct {
	// A is the stability constant; §5.6 recommends ≤10% of the expected
	// iteration count and the paper uses A = 1.
	A float64
	// Aa is the numerator a of the step-size sequence ak; §5.6 recommends
	// half the (normalised) configuration range.
	Aa float64
	// C is the numerator c of the perturbation sequence ck; §5.6
	// recommends roughly the standard deviation of the measurements y(θ).
	C float64
	// Alpha is the ak decay exponent (default 0.602).
	Alpha float64
	// Gamma is the ck decay exponent (default 0.101).
	Gamma float64
	// MaxStep, when positive, caps the Euclidean length of each update
	// step. This is Spall's practical "blocking" safeguard: early
	// iterations combine a large ak with potentially huge noisy gradient
	// estimates, and one unlucky step can otherwise fling θ across the
	// entire feasible region. 0 disables clipping.
	MaxStep float64
}

// DefaultParams returns the paper's recommended coefficients for a given
// normalised configuration span and measurement noise scale: A = 1,
// a = span/2, c = max(noiseStd, a small floor), α = 0.602, γ = 0.101.
func DefaultParams(span, noiseStd float64) Params {
	c := noiseStd
	if c < 1e-6 {
		c = 1e-6
	}
	return Params{A: 1, Aa: span / 2, C: c, Alpha: 0.602, Gamma: 0.101}
}

// validate fills zero exponents with defaults and checks signs.
func (p *Params) validate() error {
	if approx.Unset(p.Alpha) {
		p.Alpha = 0.602
	}
	if approx.Unset(p.Gamma) {
		p.Gamma = 0.101
	}
	if p.Aa <= 0 || p.C <= 0 || p.A < 0 {
		return fmt.Errorf("spsa: non-positive gain coefficients a=%v c=%v A=%v", p.Aa, p.C, p.A)
	}
	if p.Alpha <= p.Gamma {
		return fmt.Errorf("spsa: alpha %v must exceed gamma %v for convergence", p.Alpha, p.Gamma)
	}
	return nil
}

// Optimizer carries SPSA state over a box-constrained domain.
type Optimizer struct {
	params Params
	lo, hi []float64
	x      []float64
	k      int // completed iterations
	r      *rng.Stream

	pendingDelta []float64
	pendingCk    float64
}

// Common errors.
var (
	ErrDimensionMismatch = errors.New("spsa: dimension mismatch")
	ErrNoPendingPerturb  = errors.New("spsa: Update called without a pending Perturb")
	ErrPerturbTwice      = errors.New("spsa: Perturb called with one already pending")
)

// New returns an optimizer starting at initial within the box [lo, hi].
func New(initial, lo, hi []float64, params Params, r *rng.Stream) (*Optimizer, error) {
	if len(initial) == 0 {
		return nil, errors.New("spsa: empty initial point")
	}
	if len(lo) != len(initial) || len(hi) != len(initial) {
		return nil, ErrDimensionMismatch
	}
	for i := range lo {
		if lo[i] >= hi[i] {
			return nil, fmt.Errorf("spsa: bound %d inverted: [%v, %v]", i, lo[i], hi[i])
		}
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		r = rng.New(1)
	}
	o := &Optimizer{
		params: params,
		lo:     append([]float64(nil), lo...),
		hi:     append([]float64(nil), hi...),
		x:      clampVec(append([]float64(nil), initial...), lo, hi),
		r:      r,
	}
	return o, nil
}

// Dim returns the problem dimension.
func (o *Optimizer) Dim() int { return len(o.x) }

// K returns the number of completed iterations.
func (o *Optimizer) K() int { return o.k }

// Theta returns a copy of the current estimate.
func (o *Optimizer) Theta() []float64 { return append([]float64(nil), o.x...) }

// Gains returns (ak, ck) for the iteration about to run (Algorithm 1's
// values after its k++).
func (o *Optimizer) Gains() (ak, ck float64) {
	i := float64(o.k + 1)
	ak = o.params.Aa / math.Pow(i+1+o.params.A, o.params.Alpha)
	ck = o.params.C / math.Pow(i+1, o.params.Gamma)
	return ak, ck
}

// Perturb draws a Rademacher vector Δ and returns the two bounded probe
// points θ⁺ = B(θ + ck·Δ) and θ⁻ = B(θ − ck·Δ) (B = checkBound, Algorithm 1).
// The caller measures the objective at both and passes the results to
// Update. Calling Perturb again before Update is an error.
func (o *Optimizer) Perturb() (plus, minus []float64, err error) {
	if o.pendingDelta != nil {
		return nil, nil, ErrPerturbTwice
	}
	_, ck := o.Gains()
	delta := make([]float64, len(o.x))
	plus = make([]float64, len(o.x))
	minus = make([]float64, len(o.x))
	for i := range o.x {
		delta[i] = o.r.Rademacher()
		plus[i] = o.x[i] + ck*delta[i]
		minus[i] = o.x[i] - ck*delta[i]
	}
	plus = clampVec(plus, o.lo, o.hi)
	minus = clampVec(minus, o.lo, o.hi)
	o.pendingDelta = delta
	o.pendingCk = ck
	return plus, minus, nil
}

// Update consumes the two measurements from the pending perturbation,
// applies the SPSA step θ ← B(θ − ak·ĝ), advances the iteration counter,
// and returns a copy of the new estimate.
func (o *Optimizer) Update(yPlus, yMinus float64) ([]float64, error) {
	if o.pendingDelta == nil {
		return nil, ErrNoPendingPerturb
	}
	ak, _ := o.Gains()
	diff := yPlus - yMinus
	step := make([]float64, len(o.x))
	var norm2 float64
	for i := range o.x {
		ghat := diff / (2 * o.pendingCk * o.pendingDelta[i])
		step[i] = -ak * ghat
		norm2 += step[i] * step[i]
	}
	if o.params.MaxStep > 0 {
		if norm := math.Sqrt(norm2); norm > o.params.MaxStep {
			scale := o.params.MaxStep / norm
			for i := range step {
				step[i] *= scale
			}
		}
	}
	for i := range o.x {
		o.x[i] += step[i]
	}
	o.x = clampVec(o.x, o.lo, o.hi)
	o.pendingDelta = nil
	o.k++
	return o.Theta(), nil
}

// Reset implements §5.5's resetCoefficient: restart the gain sequences
// (k = 0) and move back to the given starting point so a traffic surge gets
// fresh, large steps. A pending perturbation is discarded.
func (o *Optimizer) Reset(initial []float64) error {
	return o.ResetAt(initial, 0)
}

// ResetAt moves to the given starting point and restarts the gain sequences
// at iteration k — a warm restart. k > 0 resumes with moderated steps, for
// situations where conditions shifted slightly rather than wholesale (e.g.
// a held optimum drifting out of feasibility). A pending perturbation is
// discarded.
func (o *Optimizer) ResetAt(initial []float64, k int) error {
	if len(initial) != len(o.x) {
		return ErrDimensionMismatch
	}
	if k < 0 {
		return fmt.Errorf("spsa: negative restart iteration %d", k)
	}
	o.x = clampVec(append([]float64(nil), initial...), o.lo, o.hi)
	o.k = k
	o.pendingDelta = nil
	return nil
}

func clampVec(v, lo, hi []float64) []float64 {
	for i := range v {
		if v[i] < lo[i] {
			v[i] = lo[i]
		}
		if v[i] > hi[i] {
			v[i] = hi[i]
		}
	}
	return v
}

// Step is one record in a Minimize trajectory.
type Step struct {
	K          int
	Theta      []float64
	ThetaPlus  []float64
	ThetaMinus []float64
	YPlus      float64
	YMinus     float64
}

// Minimize runs n SPSA iterations against objective, which is evaluated
// exactly twice per iteration, and returns the final estimate plus the full
// trajectory. A nil observe callback is allowed.
func Minimize(objective func([]float64) float64, initial, lo, hi []float64,
	params Params, r *rng.Stream, n int, observe func(Step)) ([]float64, error) {
	o, err := New(initial, lo, hi, params, r)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		plus, minus, err := o.Perturb()
		if err != nil {
			return nil, err
		}
		yp, ym := objective(plus), objective(minus)
		theta, err := o.Update(yp, ym)
		if err != nil {
			return nil, err
		}
		if observe != nil {
			observe(Step{K: o.K(), Theta: theta, ThetaPlus: plus, ThetaMinus: minus, YPlus: yp, YMinus: ym})
		}
	}
	return o.Theta(), nil
}

// Scale maps values between a physical range [lo, hi] and the normalised
// optimization range [outLo, outHi] (§5.1's min-max normalisation: both
// control parameters are scaled into the same range so one step size suits
// both).
type Scale struct {
	Lo, Hi       float64 // physical range
	OutLo, OutHi float64 // normalised range
}

// NewScale builds a scale; ranges must be non-degenerate.
func NewScale(lo, hi, outLo, outHi float64) (Scale, error) {
	if hi <= lo || outHi <= outLo {
		return Scale{}, fmt.Errorf("spsa: degenerate scale [%v,%v]→[%v,%v]", lo, hi, outLo, outHi)
	}
	return Scale{Lo: lo, Hi: hi, OutLo: outLo, OutHi: outHi}, nil
}

// ToNorm maps a physical value into the normalised range (clamped).
func (s Scale) ToNorm(v float64) float64 {
	t := (v - s.Lo) / (s.Hi - s.Lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return s.OutLo + t*(s.OutHi-s.OutLo)
}

// FromNorm maps a normalised value back to the physical range (clamped).
func (s Scale) FromNorm(v float64) float64 {
	t := (v - s.OutLo) / (s.OutHi - s.OutLo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return s.Lo + t*(s.Hi-s.Lo)
}
