package metrics

import "testing"

// Nil instruments are the disabled-observability hot path: every engine and
// broker call site invokes them unconditionally, so they must not allocate.
func TestAllocsNilInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(-1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("nil-instrument ops allocate %.1f/op, want 0", allocs)
	}
}

// Live instruments sit on the same per-record path; after registration they
// must also be allocation-free.
func TestAllocsLiveInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	h := r.Histogram("h_seconds", "test histogram", DelaySecondsBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(4)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("live-instrument ops allocate %.1f/op, want 0", allocs)
	}
}
