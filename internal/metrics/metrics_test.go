package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (`le`)
// semantics of the exposition format: a sample exactly on a bound counts
// into that bound's bucket, and samples above the last bound appear only
// in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{1, 2.5, 5})

	for _, v := range []float64{0.5, 1, 1.0001, 2.5, 5, 5.0001} {
		h.Observe(v)
	}

	out := r.String()
	for _, want := range []string{
		`test_seconds_bucket{le="1"} 2`,    // 0.5, 1
		`test_seconds_bucket{le="2.5"} 4`,  // + 1.0001, 2.5
		`test_seconds_bucket{le="5"} 5`,    // + 5
		`test_seconds_bucket{le="+Inf"} 6`, // + 5.0001
		"test_seconds_sum 15.0002",
		"test_seconds_count 6",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count() = %d, want 6", h.Count())
	}
}

// TestHistogramExactDecimalBounds checks that the standard ladders render
// with exact decimal bounds — 1000000 must print as "1000000", never in
// scientific notation, or the le labels stop matching PromQL queries.
func TestHistogramExactDecimalBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_records", "help", RecordCountBuckets())
	h.Observe(1e6) // exactly on the 1000000 bound

	out := r.String()
	for _, want := range []string{
		`test_records_bucket{le="1000000"} 1`,
		`test_records_bucket{le="10000000"} 1`,
		`test_records_bucket{le="500000"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "e+") {
		t.Errorf("exposition uses scientific notation:\n%s", out)
	}
}

// TestHistogramDropsNaN checks NaN observations are discarded rather than
// poisoning the sum.
func TestHistogramDropsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_nan", "help", []float64{1})
	h.Observe(math.NaN())
	h.Observe(0.5)
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Errorf("after NaN + 0.5: count=%d sum=%v, want 1, 0.5", h.Count(), h.Sum())
	}
}

// TestExpositionDeterministic registers families and labeled children in a
// scrambled order and checks the rendered text is sorted and stable.
func TestExpositionDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zz_total", "z", L("kind", "b")).Inc()
		r.Gauge("aa_gauge", "a").Set(3)
		r.Counter("zz_total", "z", L("kind", "a")).Add(2)
		r.Counter("mm_total", "m").Inc()
		return r
	}
	out1, out2 := build().String(), build().String()
	if out1 != out2 {
		t.Fatalf("same registrations rendered differently:\n%s\nvs\n%s", out1, out2)
	}
	// Families in name order, children in label-signature order.
	aa := strings.Index(out1, "aa_gauge")
	mm := strings.Index(out1, "mm_total")
	zz := strings.Index(out1, "zz_total")
	if !(aa < mm && mm < zz) {
		t.Errorf("families not sorted by name:\n%s", out1)
	}
	ka := strings.Index(out1, `zz_total{kind="a"} 2`)
	kb := strings.Index(out1, `zz_total{kind="b"} 1`)
	if ka < 0 || kb < 0 || ka > kb {
		t.Errorf("children not sorted by label signature:\n%s", out1)
	}
}

// TestLabelEscaping checks backslash, quote, and newline escaping in label
// values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("v", "a\\b\"c\nd")).Inc()
	want := `esc_total{v="a\\b\"c\nd"} 1`
	if out := r.String(); !strings.Contains(out, want+"\n") {
		t.Errorf("want %q in:\n%s", want, out)
	}
}

// TestHelpAndTypeHeaders checks the exposition carries HELP/TYPE per family.
func TestHelpAndTypeHeaders(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "counts things").Inc()
	r.Gauge("g_now", "gauges things").Set(1)
	r.Histogram("h_seconds", "buckets things", []float64{1}).Observe(0.5)
	out := r.String()
	for _, want := range []string{
		"# HELP c_total counts things\n# TYPE c_total counter\n",
		"# HELP g_now gauges things\n# TYPE g_now gauge\n",
		"# HELP h_seconds buckets things\n# TYPE h_seconds histogram\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistrationConflictsPanic pins the fail-fast contract for programming
// errors: kind clashes, bucket clashes, malformed buckets, and counter
// decrements all panic.
func TestRegistrationConflictsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("x_total", "h")
	mustPanic("kind clash", func() { r.Gauge("x_total", "h") })
	r.Histogram("y_seconds", "h", []float64{1, 2})
	mustPanic("bucket clash", func() { r.Histogram("y_seconds", "h", []float64{1, 3}) })
	mustPanic("non-ascending buckets", func() { r.Histogram("z_seconds", "h", []float64{2, 1}) })
	mustPanic("empty buckets", func() { r.Histogram("w_seconds", "h", nil) })
	mustPanic("counter decrease", func() { r.Counter("x_total", "h").Add(-1) })
}

// TestNilRegistryIsNoop checks the nil-sink contract instrumented code
// relies on: every constructor and method works on nil.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "h").Inc()
	r.Gauge("b_now", "h").Set(5)
	r.Histogram("c_seconds", "h", []float64{1}).Observe(2)
	if got := r.String(); got != "" {
		t.Errorf("nil registry rendered %q", got)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has state")
	}
}

// TestInstrumentIdentity checks that re-registering the same (name, labels)
// returns a handle onto the same underlying state.
func TestInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	r.Counter("same_total", "h", L("k", "v")).Add(2)
	if got := r.Counter("same_total", "h", L("k", "v")).Value(); got != 2 {
		t.Errorf("second handle sees %v, want 2", got)
	}
}

// TestFormatValue pins the rendering rules the bucket bounds depend on.
func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{12, "12"},
		{0.5, "0.5"},
		{2.5, "2.5"},
		{1000000, "1000000"},
		{-3, "-3"},
		{0.1, "0.1"},
	} {
		if got := FormatValue(tc.in); got != tc.want {
			t.Errorf("FormatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
