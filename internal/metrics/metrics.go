// Package metrics implements a deterministic, simulation-friendly metrics
// registry: counters, gauges, and fixed-bucket histograms with exact decimal
// bucket bounds, exported in the Prometheus text exposition format.
//
// The registry is the substrate-side half of the paper's observability
// argument: NoStop only works because delay, processing time, and queue
// state are continuously observable through the Spark StreamingListener
// (§4.3, Fig 4). Every runtime layer of the simulator (broker, engine,
// fault injector, controller) registers its instruments here, and the
// listener package serves the result over HTTP `/metrics`.
//
// Determinism contract (DESIGN.md §5d): nothing in this package reads the
// wall clock or draws randomness, all values advance only when simulation
// events fire, and the exposition is rendered in sorted (family name, label
// signature) order — so two same-seed runs export byte-identical text. The
// registry itself is mutex-guarded because HTTP export goroutines read it
// while the simulation thread writes; the values observed are whatever the
// simulation had produced when the exporting request was serialised (see
// the listener package for the locking contract).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key="value" pair attached to a metric instrument.
type Label struct {
	// Key is the Prometheus label name.
	Key string
	// Value is the label value; it is escaped on export.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the metric families a Registry can hold.
type Kind int

// Metric family kinds.
const (
	// KindCounter is a monotonically non-decreasing cumulative value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket cumulative histogram.
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// family is one named metric with its children (one per label signature).
type family struct {
	name     string
	help     string
	kind     Kind
	buckets  []float64 // histogram upper bounds, ascending; +Inf implicit
	children map[string]*child
}

// child is the concrete instrument state for one label signature.
type child struct {
	labels []Label
	value  float64 // counter / gauge

	bucketCounts []uint64 // histogram: per-bucket (non-cumulative) counts
	count        uint64   // histogram: total observations
	sum          float64  // histogram: sum of observed values
}

// DelaySecondsBuckets is the standard bucket ladder for batch-delay
// histograms (seconds). The bounds are exact decimals spanning the §6
// operating range: sub-second receiver work up through the multi-minute
// scheduling delays an unstable probe accumulates (Fig 2's knee).
func DelaySecondsBuckets() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 20, 40, 60, 120, 300, 600}
}

// RecordCountBuckets is the standard bucket ladder for per-batch record
// counts, covering the paper's 10⁴–10⁵ records/s bands times 1–40 s
// intervals.
func RecordCountBuckets() []float64 {
	return []float64{1000, 10000, 50000, 100000, 500000, 1000000, 5000000, 10000000}
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; use NewRegistry. A nil *Registry is a
// valid no-op sink for every constructor on it, so instrumented code can
// run unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or looks up) a counter with the given name, help text,
// and label set, returning the instrument. Registering the same name with a
// different kind panics: metric names are a static vocabulary and a clash
// is a programming error. A nil registry returns a no-op instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{c: r.instrument(name, help, KindCounter, nil, labels), r: r}
}

// Gauge registers (or looks up) a gauge instrument. A nil registry returns
// a no-op instrument.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{c: r.instrument(name, help, KindGauge, nil, labels), r: r}
}

// Histogram registers (or looks up) a fixed-bucket histogram. buckets are
// the upper bounds (`le`, inclusive) in strictly ascending order; a +Inf
// bucket is implicit. Re-registering the same name with different buckets
// panics. A nil registry returns a no-op instrument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic("metrics: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bucket bounds not ascending at %v", name, buckets[i]))
		}
	}
	c := r.instrument(name, help, KindHistogram, buckets, labels)
	r.mu.Lock()
	b := r.families[name].buckets
	r.mu.Unlock()
	return &Histogram{c: c, r: r, b: b}
}

// instrument finds or creates the (family, child) pair under the lock.
func (r *Registry) instrument(name, help string, kind Kind, buckets []float64, labels []Label) *child {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			buckets:  append([]float64(nil), buckets...),
			children: make(map[string]*child),
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	if kind == KindHistogram && !equalBounds(f.buckets, buckets) {
		panic(fmt.Sprintf("metrics: histogram %s re-registered with different buckets", name))
	}
	c, ok := f.children[sig]
	if !ok {
		c = &child{labels: append([]Label(nil), labels...)}
		if kind == KindHistogram {
			c.bucketCounts = make([]uint64, len(f.buckets))
		}
		f.children[sig] = c
	}
	return c
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically non-decreasing cumulative metric. A nil
// *Counter is a no-op.
type Counter struct {
	c *child
	r *Registry
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative v panics (counters only go up).
//nostop:hotpath
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	if v < 0 {
		panic("metrics: counter decreased")
	}
	c.r.mu.Lock()
	c.c.value += v
	c.r.mu.Unlock()
}

// Value returns the current counter value.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.c.value
}

// Gauge is a metric that can move in both directions. A nil *Gauge is a
// no-op.
type Gauge struct {
	c *child
	r *Registry
}

// Set replaces the gauge value.
//nostop:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.c.value = v
	g.r.mu.Unlock()
}

// Add shifts the gauge by v (may be negative).
//nostop:hotpath
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.c.value += v
	g.r.mu.Unlock()
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.c.value
}

// Histogram is a fixed-bucket cumulative histogram. A nil *Histogram is a
// no-op.
type Histogram struct {
	c *child
	r *Registry
	b []float64 // the owning family's bucket bounds (shared, read-only)
}

// Observe records one sample. Bucket bounds are inclusive upper bounds
// (Prometheus `le` semantics): a sample exactly on a bound counts into that
// bound's bucket. Samples above the last bound only count toward +Inf.
// NaN observations are dropped — they would poison the sum forever.
//nostop:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	f := h.c
	f.count++
	f.sum += v
	// First bound >= v is the owning bucket (le is inclusive).
	i := sort.SearchFloat64s(h.b, v)
	if i < len(f.bucketCounts) {
		f.bucketCounts[i]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.c.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.c.sum
}

// labelSignature renders labels in sorted-key order as a stable map key.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

// FormatValue renders a float the way the exposition does: integral values
// as plain decimals ("12", "0.5" stays "0.5"), everything else via the
// shortest round-trip representation. The output is deterministic for a
// given bit pattern.
func FormatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders {k="v",...} in sorted key order ("" when empty).
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the whole registry in the Prometheus text
// exposition format (version 0.0.4), sorted by family name and label
// signature so the output is byte-stable across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		var sigs []string
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			c := f.children[sig]
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeChild renders one instrument's sample lines. Callers hold r.mu.
func writeChild(w io.Writer, f *family, c *child) error {
	switch f.kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(c.labels), FormatValue(c.value))
		return err
	case KindHistogram:
		var cum uint64
		for i, bound := range f.buckets {
			cum += c.bucketCounts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, renderLabels(c.labels, L("le", FormatValue(bound))), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, renderLabels(c.labels, L("le", "+Inf")), c.count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			f.name, renderLabels(c.labels), FormatValue(c.sum),
			f.name, renderLabels(c.labels), c.count); err != nil {
			return err
		}
	}
	return nil
}

// String renders the exposition into a string (convenience for tests and
// file dumps).
func (r *Registry) String() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}
