package tenant

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// smallMix is a fast two-tenant mix with contended capacity: steady demands
// 6 and bursty 6 on 8 cores, so the allocator's policy visibly decides who
// gets what.
func smallMix(allocator string) MixSpec {
	return MixSpec{
		Name:         "small",
		Nodes:        4,
		CoresPerNode: 2,
		Partitions:   8,
		Allocator:    allocator,
		Horizon:      Duration(6 * time.Minute),
		Tenants: []TenantSpec{
			{
				Name: "steady", Workload: "wordcount", Controller: "static",
				Priority: 2, SLOClass: "interactive",
				Trace:            TraceSpec{Kind: "constant", Rate: 3000},
				InitialExecutors: 6, BatchInterval: Duration(8 * time.Second),
			},
			{
				Name: "bursty", Workload: "pageanalyze", Controller: "static",
				Priority: 0, SLOClass: "batch",
				Trace:            TraceSpec{Kind: "surge", Base: 1000, Peak: 8000, Start: Duration(time.Minute), Length: Duration(3 * time.Minute)},
				InitialExecutors: 6, BatchInterval: Duration(8 * time.Second),
			},
		},
	}
}

// The headline determinism contract at the target scale: a 1000-node,
// 32-tenant, 100-partition run encodes to byte-identical reports under the
// same seed.
func TestSameSeedByteIdenticalAtScale(t *testing.T) {
	mix := Synthetic(32, 1000, 4, AllocFairShare, Duration(15*time.Minute))
	mix.Partitions = 100
	rep1, err := Run(mix, 7, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(mix, 7, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rep1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed 1000-node/32-tenant reports differ")
	}
	if got := len(rep1.Tenants); got != 32 {
		t.Fatalf("report has %d tenants, want 32", got)
	}
	if rep1.Cluster.TotalBatches == 0 || rep1.Cluster.TotalRecords == 0 {
		t.Fatalf("degenerate run: %+v", rep1.Cluster)
	}
	if rep1.Alloc.Rounds == 0 {
		t.Fatal("allocator never reconciled")
	}
}

// Different seeds must actually change the run (the determinism test above
// would pass vacuously if the seed were ignored).
func TestSeedChangesReport(t *testing.T) {
	mix := smallMix(AllocFairShare)
	rep1, err := Run(mix, 1, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(mix, 2, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rep1.Encode()
	b, _ := rep2.Encode()
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical reports")
	}
}

// The allocator must demonstrably change outcomes: under priority the
// high-priority steady tenant keeps its full demand; under fair-share the
// equal-weight split caps it below demand while the bursty tenant gains.
func TestAllocatorPolicyChangesGrants(t *testing.T) {
	byName := func(rep *Report, name string) TenantReport {
		for _, tr := range rep.Tenants {
			if tr.Name == name {
				return tr
			}
		}
		t.Fatalf("tenant %q missing from report", name)
		return TenantReport{}
	}
	prio, err := Run(smallMix(AllocPriority), 3, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Run(smallMix(AllocFairShare), 3, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	if g := byName(prio, "steady").Grant; g != 6 {
		t.Errorf("priority grants steady %d executors, want its full demand 6", g)
	}
	if g := byName(prio, "bursty").Grant; g != 2 {
		t.Errorf("priority grants bursty %d executors, want the 2 leftover", g)
	}
	if g := byName(fair, "steady").Grant; g != 4 {
		t.Errorf("fair-share grants steady %d executors, want the even split 4", g)
	}
	if g := byName(fair, "bursty").Grant; g != 4 {
		t.Errorf("fair-share grants bursty %d executors, want the even split 4", g)
	}
}

// Reports list tenants in canonical (name-sorted) order regardless of spec
// order — the order every deterministic loop in the subsystem shares.
func TestReportCanonicalTenantOrder(t *testing.T) {
	mix := smallMix(AllocFairShare)
	mix.Tenants[0], mix.Tenants[1] = mix.Tenants[1], mix.Tenants[0]
	rep, err := Run(mix, 1, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Tenants); i++ {
		if rep.Tenants[i-1].Name >= rep.Tenants[i].Name {
			t.Fatalf("tenants out of canonical order: %s before %s", rep.Tenants[i-1].Name, rep.Tenants[i].Name)
		}
	}
}

func TestMixValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MixSpec)
		want string
	}{
		{"no tenants", func(m *MixSpec) { m.Tenants = nil }, "no tenants"},
		{"capacity", func(m *MixSpec) { m.Nodes, m.CoresPerNode = 1, 1 }, "worker cores"},
		{"allocator", func(m *MixSpec) { m.Allocator = "lottery" }, "unknown allocator"},
		{"dup name", func(m *MixSpec) { m.Tenants[1].Name = m.Tenants[0].Name }, "duplicate"},
		{"max below initial", func(m *MixSpec) { m.Tenants[0].MaxExecutors = 2; m.Tenants[0].InitialExecutors = 6 }, "below initial"},
		{"controller", func(m *MixSpec) { m.Tenants[0].Controller = "pid" }, "unknown controller"},
		{"trace", func(m *MixSpec) { m.Tenants[0].Trace = TraceSpec{Kind: "constant"} }, "positive rate"},
	}
	for _, tc := range cases {
		mix := smallMix(AllocFairShare)
		tc.mut(&mix)
		if _, err := mix.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// Synthetic mixes must validate at every size used by the CLI, tests, and
// the benchmark.
func TestSyntheticValidates(t *testing.T) {
	for _, n := range []int{1, 4, 8, 32} {
		mix := Synthetic(n, 1000, 4, AllocPriority, Duration(10*time.Minute))
		if _, err := mix.Validate(); err != nil {
			t.Errorf("Synthetic(%d): %v", n, err)
		}
	}
}
