package tenant

import "testing"

func dm(name string, pri int, w float64, want int) demand {
	return demand{name: name, priority: pri, weight: w, want: want}
}

// Every policy must keep every tenant alive: one executor each, even when
// capacity is exactly the tenant count.
func TestAllocateLivenessFloor(t *testing.T) {
	demands := []demand{dm("a", 0, 1, 10), dm("b", 5, 1, 10), dm("c", 9, 1, 10)}
	for _, policy := range []string{AllocPriority, AllocFairShare, AllocStatic} {
		grants := allocate(policy, demands, 3)
		for i, g := range grants {
			if g != 1 {
				t.Errorf("%s: tenant %s granted %d with capacity == tenants, want 1", policy, demands[i].name, g)
			}
		}
	}
}

// Priority serves tiers strictly: the top tier takes its full residual
// demand before the next tier sees any capacity.
func TestAllocatePriorityStrictTiers(t *testing.T) {
	demands := []demand{dm("a", 0, 1, 10), dm("b", 2, 1, 10), dm("c", 1, 1, 10)}
	grants := allocate(AllocPriority, demands, 15)
	// Floor: 1 each (12 left). b (pri 2) takes 9 more -> 10; c (pri 1)
	// takes the remaining 3 -> 4; a stays at the floor.
	want := []int{1, 10, 4}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("priority grants %v, want %v", grants, want)
		}
	}
}

// Equal priorities resolve by name order (the demand slice is name-sorted),
// keeping the grant vector independent of map iteration or arrival order.
func TestAllocatePriorityTieByName(t *testing.T) {
	demands := []demand{dm("a", 1, 1, 8), dm("b", 1, 1, 8)}
	grants := allocate(AllocPriority, demands, 9)
	if grants[0] != 8 || grants[1] != 1 {
		t.Fatalf("tie grants %v, want [8 1] (name order wins)", grants)
	}
}

// Fair share water-fills proportionally to weight.
func TestAllocateFairShareWeights(t *testing.T) {
	demands := []demand{dm("a", 0, 1, 10), dm("b", 0, 2, 10)}
	grants := allocate(AllocFairShare, demands, 9)
	if grants[0] != 3 || grants[1] != 6 {
		t.Fatalf("weighted fair-share grants %v, want [3 6]", grants)
	}
}

// A tenant that caps out at its demand releases its share to the rest —
// the headroom-absorption property behind the noisy-neighbor scenario.
func TestAllocateFairShareRedistributesHeadroom(t *testing.T) {
	demands := []demand{dm("a", 0, 1, 2), dm("b", 0, 1, 10)}
	grants := allocate(AllocFairShare, demands, 12)
	if grants[0] != 2 || grants[1] != 10 {
		t.Fatalf("fair-share grants %v, want [2 10] (a's headroom flows to b)", grants)
	}
}

// Static quotas never rebalance: a's unused quota is stranded, not given
// to b.
func TestAllocateStaticStrandsSurplus(t *testing.T) {
	demands := []demand{dm("a", 0, 1, 1), dm("b", 0, 1, 10)}
	grants := allocate(AllocStatic, demands, 12)
	if grants[0] != 1 || grants[1] != 6 {
		t.Fatalf("static grants %v, want [1 6] (a's quota stranded)", grants)
	}
}

// Invariants that hold for every policy: grants conserve capacity, respect
// the liveness floor, and never exceed demand (beyond the floor).
func TestAllocateInvariants(t *testing.T) {
	demands := []demand{
		dm("a", 2, 1, 3), dm("b", 0, 2, 17), dm("c", 1, 0.5, 1), dm("d", 2, 3, 9),
	}
	for _, policy := range []string{AllocPriority, AllocFairShare, AllocStatic} {
		for _, capacity := range []int{4, 10, 30, 100} {
			grants := allocate(policy, demands, capacity)
			sum := 0
			for i, g := range grants {
				sum += g
				if g < 1 {
					t.Errorf("%s/cap=%d: tenant %s granted %d, floor is 1", policy, capacity, demands[i].name, g)
				}
				if max := demands[i].want; g > max && g != 1 {
					t.Errorf("%s/cap=%d: tenant %s granted %d beyond demand %d", policy, capacity, demands[i].name, g, max)
				}
			}
			if sum > capacity {
				t.Errorf("%s/cap=%d: grants %v exceed capacity", policy, capacity, grants)
			}
		}
	}
}
