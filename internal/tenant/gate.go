package tenant

import (
	"nostop/internal/engine"
	"nostop/internal/sim"
)

// Gate sits between a tenant's controller and its engine, implementing
// core.System. It records the controller's executor demand and clamps the
// forwarded configuration to the allocator's current grant, so a per-app
// SPSA controller keeps optimizing freely in its own configuration space
// while the cluster-level allocator retains the final say over capacity.
// The controller still observes real batch completions (through
// AddListener on the engine), so it learns the performance of the granted
// configuration, not the requested one — which is what makes competing
// tuners coexist without fighting the allocator.
type Gate struct {
	eng    *engine.Engine
	demand int // executors the controller last asked for
	grant  int // executors the allocator currently allows
}

// NewGate wraps an engine with an initial grant. The initial demand is the
// engine's starting executor count.
func NewGate(eng *engine.Engine, grant int) *Gate {
	return &Gate{eng: eng, demand: eng.Config().Executors, grant: grant}
}

// AddListener implements core.System.
func (g *Gate) AddListener(l engine.Listener) { g.eng.AddListener(l) }

// Clock implements core.System.
func (g *Gate) Clock() *sim.Clock { return g.eng.Clock() }

// Config implements core.System.
func (g *Gate) Config() engine.Config { return g.eng.Config() }

// ConfigBounds implements core.System.
func (g *Gate) ConfigBounds() engine.Bounds { return g.eng.ConfigBounds() }

// QueueLen implements core.System.
func (g *Gate) QueueLen() int { return g.eng.QueueLen() }

// RecentRateMean implements core.System.
func (g *Gate) RecentRateMean() float64 { return g.eng.RecentRateMean() }

// RecentRateStd implements core.System.
func (g *Gate) RecentRateStd() float64 { return g.eng.RecentRateStd() }

// Reconfigure implements core.System: the requested executor count is
// recorded as the tenant's demand, then clamped to the live grant before
// reaching the engine. Interval and block changes pass through untouched.
func (g *Gate) Reconfigure(cfg engine.Config) error {
	g.demand = cfg.Executors
	if cfg.Executors > g.grant {
		cfg.Executors = g.grant
	}
	if cfg.Executors < 1 {
		cfg.Executors = 1
	}
	return g.eng.Reconfigure(cfg)
}

// Demand returns the controller's standing executor request.
func (g *Gate) Demand() int { return g.demand }

// Grant returns the allocator's current grant.
func (g *Gate) Grant() int { return g.grant }

// Engine returns the wrapped engine.
func (g *Gate) Engine() *engine.Engine { return g.eng }

// setGrant installs a new grant and reconciles the engine toward it: a
// shrink preempts immediately (the engine applies it at its next batch
// boundary, freeing cores for other tenants); a raise re-submits the
// clamped standing demand so a previously-throttled tenant grows into its
// new allowance without waiting for its controller's next move. Returns
// true when the call preempted live executors.
func (g *Gate) setGrant(grant int) bool {
	if grant < 1 {
		grant = 1
	}
	prev := g.grant
	g.grant = grant
	cfg := g.eng.Config()
	preempted := false
	switch {
	case cfg.Executors > grant:
		preempted = true
		cfg.Executors = grant
		_ = g.eng.Reconfigure(cfg) // within bounds by construction
	case grant > prev && g.demand > cfg.Executors:
		want := g.demand
		if want > grant {
			want = grant
		}
		if want != cfg.Executors {
			cfg.Executors = want
			_ = g.eng.Reconfigure(cfg)
		}
	}
	// Allocation may have come up short earlier (another tenant held the
	// cores); now that grants moved, retry toward configured strength.
	g.eng.EnsureLiveExecutors()
	return preempted
}
