// Package tenant implements the multi-tenant cluster subsystem: N
// independent streaming apps — each with its own topic, workload, arrival
// trace, SLO class, and per-app SPSA controller — sharing one cluster
// scaled to O(1000) nodes, with a cluster-level allocator arbitrating
// executor grants between the competing controllers.
//
// This is the shape the ROADMAP north star calls for: the paper evaluates
// one app on the 5-node Table 2 testbed, but a production deployment
// serving millions of users runs many streaming apps against one big
// cluster, and their online tuners compete for the same executors. The
// subsystem stays entirely on the discrete-event sim clock, so a 1000-node,
// 32-tenant run is deterministic: same seed, byte-identical report.
package tenant

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("30s") and accepts both strings and nanosecond integers. Local to this
// package so tenant does not import fleet (fleet imports tenant for the
// mix sweep axis).
type Duration time.Duration

// D converts back to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the underlying duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("tenant: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// Allocator policies.
const (
	// AllocPriority grants strictly by priority: higher-priority tenants
	// take their full demand before lower priorities see any capacity.
	AllocPriority = "priority"
	// AllocFairShare is weighted max-min fairness (water-filling): capacity
	// is divided by weight, and headroom left by low-demand tenants is
	// redistributed among the still-hungry.
	AllocFairShare = "fair-share"
	// AllocStatic carves fixed weight-proportional quotas, ignoring demand;
	// unused quota is stranded. The no-arbitration baseline.
	AllocStatic = "static"
)

// TraceSpec describes a tenant's arrival trace declaratively.
type TraceSpec struct {
	// Kind selects the shape: "constant", "uniform", "surge", or "users".
	Kind string `json:"kind"`
	// Rate is the constant rate (records/second) for kind "constant".
	Rate float64 `json:"rate,omitempty"`
	// Min/Max/Dwell configure kind "uniform" (the paper's §6.2.2 band).
	Min   float64  `json:"min,omitempty"`
	Max   float64  `json:"max,omitempty"`
	Dwell Duration `json:"dwell,omitempty"`
	// Base/Peak/Start/Length configure kind "surge".
	Base   float64  `json:"base,omitempty"`
	Peak   float64  `json:"peak,omitempty"`
	Start  Duration `json:"start,omitempty"`
	Length Duration `json:"length,omitempty"`
	// PerUserRate/Users configure kind "users": an evolving user population
	// times a per-user event rate, the millions-of-users denomination.
	PerUserRate float64        `json:"per_user_rate,omitempty"`
	Users       []UserStepSpec `json:"users,omitempty"`
}

// UserStepSpec is one population segment of a "users" trace.
type UserStepSpec struct {
	At    Duration `json:"at"`
	Users float64  `json:"users"`
}

// Build constructs the concrete trace. Uniform traces draw from the given
// seed stream; other kinds are seed-free.
func (ts TraceSpec) Build(seed *rng.Stream) (ratetrace.Trace, error) {
	switch ts.Kind {
	case "constant":
		if ts.Rate <= 0 {
			return nil, fmt.Errorf("tenant: constant trace needs positive rate")
		}
		return ratetrace.Constant{Rate: ts.Rate}, nil
	case "uniform":
		if ts.Max < ts.Min || ts.Min < 0 {
			return nil, fmt.Errorf("tenant: uniform trace needs 0 <= min <= max")
		}
		dwell := ts.Dwell.D()
		if dwell <= 0 {
			dwell = 30 * time.Second
		}
		return ratetrace.NewUniformBand(ts.Min, ts.Max, dwell, seed), nil
	case "surge":
		if ts.Base < 0 || ts.Peak < ts.Base {
			return nil, fmt.Errorf("tenant: surge trace needs 0 <= base <= peak")
		}
		length := ts.Length.D()
		if length <= 0 {
			length = 5 * time.Minute
		}
		return ratetrace.Surge{
			Base: ts.Base, Peak: ts.Peak,
			Start: sim.Time(ts.Start.D()), Duration: length,
		}, nil
	case "users":
		steps := make([]ratetrace.UserStep, len(ts.Users))
		for i, u := range ts.Users {
			steps[i] = ratetrace.UserStep{From: sim.Time(u.At.D()), Users: u.Users}
		}
		return ratetrace.NewUsers(ts.PerUserRate, steps)
	default:
		return nil, fmt.Errorf("tenant: unknown trace kind %q", ts.Kind)
	}
}

// describe is the report-facing trace label.
func (ts TraceSpec) describe(seed *rng.Stream) string {
	tr, err := ts.Build(seed)
	if err != nil {
		return "invalid"
	}
	return tr.Describe()
}

// TenantSpec declares one streaming app in the mix.
type TenantSpec struct {
	// Name identifies the tenant; it becomes the topic name, the metric
	// label value, and the report key. Must be unique in the mix.
	Name string `json:"name"`
	// Workload is a workload.New name (logreg, linreg, wordcount,
	// pageanalyze).
	Workload string `json:"workload"`
	// Controller is "static" (pinned initial config) or "nostop" (per-app
	// SPSA). Defaults to "nostop".
	Controller string `json:"controller,omitempty"`
	// Priority orders tenants under the priority allocator: higher wins.
	Priority int `json:"priority,omitempty"`
	// Weight scales the fair-share and static allocators; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// SLOClass is an informational tier label ("interactive", "batch", …)
	// carried into reports.
	SLOClass string `json:"slo_class,omitempty"`
	// Trace is the tenant's arrival trace.
	Trace TraceSpec `json:"trace"`
	// InitialExecutors is the starting demand; 0 means 4.
	InitialExecutors int `json:"initial_executors,omitempty"`
	// MaxExecutors caps the tenant's demand (its bounds ceiling); 0 means
	// 4× the initial demand.
	MaxExecutors int `json:"max_executors,omitempty"`
	// BatchInterval is the initial batch interval; 0 means 10s.
	BatchInterval Duration `json:"batch_interval,omitempty"`
}

// MixSpec declares a full multi-tenant run: the shared cluster, the
// allocator policy, and the tenant list.
type MixSpec struct {
	// Name labels the mix in reports and fleet cell keys.
	Name string `json:"name"`
	// Nodes is the worker-node count of the shared cluster (a master is
	// added implicitly). 0 means 16.
	Nodes int `json:"nodes,omitempty"`
	// CoresPerNode is the executor capacity per worker. 0 means 4.
	CoresPerNode int `json:"cores_per_node,omitempty"`
	// Partitions is the per-topic partition count. 0 means 8.
	Partitions int `json:"partitions,omitempty"`
	// Allocator is the arbitration policy: "priority", "fair-share", or
	// "static". Defaults to "fair-share".
	Allocator string `json:"allocator,omitempty"`
	// ReconcileEvery is the allocator's reconcile period on the sim clock.
	// 0 means 10s.
	ReconcileEvery Duration `json:"reconcile_every,omitempty"`
	// Horizon is the run length. 0 means 30m.
	Horizon Duration `json:"horizon,omitempty"`
	// Warmup is excluded from steady-state statistics. 0 means Horizon/5.
	Warmup Duration `json:"warmup,omitempty"`
	// Tenants is the app list; at least one, unique names.
	Tenants []TenantSpec `json:"tenants"`
}

// normalized fills defaults without mutating the receiver.
func (m MixSpec) normalized() MixSpec {
	if m.Name == "" {
		m.Name = "mix"
	}
	if m.Nodes == 0 {
		m.Nodes = 16
	}
	if m.CoresPerNode == 0 {
		m.CoresPerNode = 4
	}
	if m.Partitions == 0 {
		m.Partitions = 8
	}
	if m.Allocator == "" {
		m.Allocator = AllocFairShare
	}
	if m.ReconcileEvery == 0 {
		m.ReconcileEvery = Duration(10 * time.Second)
	}
	if m.Horizon == 0 {
		m.Horizon = Duration(30 * time.Minute)
	}
	if m.Warmup == 0 {
		m.Warmup = m.Horizon / 5
	}
	tenants := make([]TenantSpec, len(m.Tenants))
	copy(tenants, m.Tenants)
	for i := range tenants {
		t := &tenants[i]
		if t.Controller == "" {
			t.Controller = "nostop"
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.InitialExecutors == 0 {
			t.InitialExecutors = 4
		}
		if t.MaxExecutors == 0 {
			t.MaxExecutors = 4 * t.InitialExecutors
		}
		if t.BatchInterval == 0 {
			t.BatchInterval = Duration(10 * time.Second)
		}
	}
	// Tenants sort by name once here; every later loop (allocation,
	// reconcile, reporting) iterates this canonical order, which is what
	// makes the whole subsystem deterministic without further care.
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	m.Tenants = tenants
	return m
}

// Validate checks the mix after normalization and returns the normalized
// copy.
func (m MixSpec) Validate() (MixSpec, error) {
	n := m.normalized()
	if len(n.Tenants) == 0 {
		return n, fmt.Errorf("tenant: mix %q has no tenants", n.Name)
	}
	capacity := n.Nodes * n.CoresPerNode
	if capacity < len(n.Tenants) {
		return n, fmt.Errorf("tenant: mix %q has %d worker cores for %d tenants (need >= 1 core each)",
			n.Name, capacity, len(n.Tenants))
	}
	switch n.Allocator {
	case AllocPriority, AllocFairShare, AllocStatic:
	default:
		return n, fmt.Errorf("tenant: unknown allocator %q", n.Allocator)
	}
	seen := make(map[string]bool, len(n.Tenants))
	for _, t := range n.Tenants {
		if t.Name == "" {
			return n, fmt.Errorf("tenant: mix %q has an unnamed tenant", n.Name)
		}
		if seen[t.Name] {
			return n, fmt.Errorf("tenant: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight < 0 {
			return n, fmt.Errorf("tenant: %q has negative weight", t.Name)
		}
		if t.MaxExecutors < t.InitialExecutors {
			return n, fmt.Errorf("tenant: %q max_executors %d below initial %d",
				t.Name, t.MaxExecutors, t.InitialExecutors)
		}
		switch t.Controller {
		case "static", "nostop":
		default:
			return n, fmt.Errorf("tenant: %q has unknown controller %q", t.Name, t.Controller)
		}
		if _, err := t.Trace.Build(rng.New(1)); err != nil {
			return n, fmt.Errorf("tenant: %q trace: %w", t.Name, err)
		}
	}
	return n, nil
}

// TenantNames returns the spec'd tenant names in canonical (sorted) order —
// the bounded label universe the metric family is restricted to.
func (m MixSpec) TenantNames() []string {
	names := make([]string, 0, len(m.Tenants))
	for _, t := range m.Tenants {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Synthetic builds a deterministic n-tenant mix over a nodes×coresPerNode
// cluster — the generator behind `cmd/nostop-tenants -tenants N`, the
// 1000-node determinism test, and the tenants benchmark. Tenants cycle
// through the four workloads, three trace shapes (including a
// millions-of-users population trace), both controllers, and a spread of
// priorities and weights, so even a large synthetic mix exercises every
// allocator code path.
func Synthetic(n, nodes, coresPerNode int, allocator string, horizon Duration) MixSpec {
	m := MixSpec{
		Name:         fmt.Sprintf("synthetic-%d", n),
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		Allocator:    allocator,
		Horizon:      horizon,
	}
	workloads := []string{"logreg", "wordcount", "linreg", "pageanalyze"}
	for i := 0; i < n; i++ {
		t := TenantSpec{
			Name:     fmt.Sprintf("t%03d", i),
			Workload: workloads[i%len(workloads)],
			Priority: i % 3,
			Weight:   float64(1 + i%2),
			SLOClass: []string{"interactive", "standard", "batch"}[i%3],
		}
		switch i % 3 {
		case 0:
			t.Trace = TraceSpec{Kind: "constant", Rate: 4000 + 500*float64(i%5)}
		case 1:
			t.Trace = TraceSpec{Kind: "uniform", Min: 2000, Max: 6000,
				Dwell: Duration(30 * time.Second)}
		default:
			// A population trace: i-dependent millions of users at a small
			// per-user event rate, stepping up mid-run.
			base := 1e6 * float64(1+i%4)
			t.Trace = TraceSpec{Kind: "users", PerUserRate: 0.004,
				Users: []UserStepSpec{
					{At: 0, Users: base},
					{At: Duration(10 * time.Minute), Users: 1.5 * base},
				}}
		}
		if i%4 == 3 {
			t.Controller = "static"
		}
		m.Tenants = append(m.Tenants, t)
	}
	return m
}
