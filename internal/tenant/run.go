package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"nostop/internal/broker"
	"nostop/internal/cluster"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// Observe configures the optional passive sinks of a tenant run. The zero
// value disables everything; attaching sinks never perturbs the run.
type Observe struct {
	// Metrics receives the nostop_tenant_* family plus every per-engine
	// instrument set.
	Metrics *metrics.Registry
	// Trace enables a Chrome trace_event tracer on the run's virtual
	// clock, exposed through Detail.Tracer.
	Trace bool
	// TraceMaxEvents bounds the tracer (0: tracing.DefaultMaxEvents).
	TraceMaxEvents int
	// OnBatch, when non-nil, is called for every completed batch of every
	// tenant (after the metric family). It must be passive.
	OnBatch func(engine.BatchStats)
}

// Detail exposes the live objects of a completed run for callers that need
// more than the Report: the scenario harness reads per-tenant batch
// histories for SLO percentiles and the tracer for span references.
type Detail struct {
	// Engines maps tenant name to its engine.
	Engines map[string]*engine.Engine
	// Gates maps tenant name to its allocator gate.
	Gates map[string]*Gate
	// Tracer is non-nil iff Observe.Trace was set.
	Tracer *tracing.Tracer
}

// TenantReport summarizes one tenant's run.
type TenantReport struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"`
	Controller string  `json:"controller"`
	SLOClass   string  `json:"slo_class,omitempty"`
	Priority   int     `json:"priority"`
	Weight     float64 `json:"weight"`
	Trace      string  `json:"trace"`

	Batches       int   `json:"batches"`
	SteadyBatches int   `json:"steady_batches"`
	Records       int64 `json:"records"`

	DelayMeanSec float64 `json:"delay_mean_sec"`
	DelayP95Sec  float64 `json:"delay_p95_sec"`
	DelayMaxSec  float64 `json:"delay_max_sec"`
	ProcMeanSec  float64 `json:"proc_mean_sec"`
	SchedMeanSec float64 `json:"sched_mean_sec"`

	Reconfigs      int    `json:"reconfigs"`
	FinalInterval  string `json:"final_interval"`
	FinalExecutors int    `json:"final_executors"`
	LiveExecutors  int    `json:"live_executors"`
	Demand         int    `json:"demand"`
	Grant          int    `json:"grant"`
	Preemptions    int    `json:"preemptions"`

	Lag           int64 `json:"lag"`
	CommittedLag  int64 `json:"committed_lag"`
	Redelivered   int64 `json:"redelivered"`
	FailedBatches int64 `json:"failed_batches"`
	ShedEvents    int   `json:"shed_events"`
}

// ClusterReport aggregates the shared cluster's view of the run.
type ClusterReport struct {
	Nodes       int    `json:"nodes"`
	WorkerCores int    `json:"worker_cores"`
	UsedCores   int    `json:"used_cores"`
	FreeCores   int    `json:"free_cores"`
	TotalBatches int   `json:"total_batches"`
	TotalRecords int64 `json:"total_records"`
	MeanDelaySec float64 `json:"mean_delay_sec"`
}

// AllocReport summarizes the allocator's activity.
type AllocReport struct {
	Policy      string `json:"policy"`
	Rounds      int    `json:"rounds"`
	Preemptions int    `json:"preemptions"`
	Regrants    int    `json:"regrants"`
}

// Report is the full outcome of a multi-tenant run. Encode renders it
// byte-stably, so same-seed runs are comparable with cmp.
type Report struct {
	Mix        string         `json:"mix"`
	Seed       uint64         `json:"seed"`
	Allocator  string         `json:"allocator"`
	Nodes      int            `json:"nodes"`
	Cores      int            `json:"cores_per_node"`
	Partitions int            `json:"partitions"`
	Horizon    string         `json:"horizon"`
	Warmup     string         `json:"warmup"`
	Tenants    []TenantReport `json:"tenants"`
	Cluster    ClusterReport  `json:"cluster"`
	Alloc      AllocReport    `json:"alloc"`
}

// Encode renders the report as stable, indented JSON with a trailing
// newline.
func (r *Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runTenant is the live state of one tenant during a run.
type runTenant struct {
	spec TenantSpec
	gate *Gate
	ctl  *core.Controller
	trace ratetrace.Trace
	preemptions int
}

// Run executes a full multi-tenant simulation: one shared cluster and
// broker bus, one engine + controller per tenant, and the allocator
// reconciling grants every ReconcileEvery on the shared sim clock. The
// returned report is a pure function of (mix, seed).
func Run(mix MixSpec, seed uint64, obs Observe) (*Report, error) {
	rep, _, err := RunDetailed(mix, seed, obs)
	return rep, err
}

// RunDetailed is Run exposing the live post-run state alongside the report.
func RunDetailed(mix MixSpec, seed uint64, obs Observe) (*Report, *Detail, error) {
	m, err := mix.Validate()
	if err != nil {
		return nil, nil, err
	}
	clock := sim.NewClock()
	var tracer *tracing.Tracer
	if obs.Trace {
		tracer = tracing.New(clock, obs.TraceMaxEvents)
	}
	cl := cluster.Homogeneous(m.Nodes, m.CoresPerNode)
	capacity := cl.TotalWorkerCores()

	var nodeIDs []int
	for _, n := range cl.Nodes() {
		nodeIDs = append(nodeIDs, n.ID)
	}
	bus, err := broker.NewBus(nodeIDs)
	if err != nil {
		return nil, nil, err
	}

	fam := NewMetrics(obs.Metrics, m.TenantNames())

	// Initial grants come from the allocator before any engine exists:
	// engine.New allocates its Initial.Executors eagerly, so under scarcity
	// the initial demands must already be arbitrated or construction fails.
	demands := make([]demand, len(m.Tenants))
	for i, t := range m.Tenants {
		demands[i] = demand{name: t.Name, priority: t.Priority, weight: t.Weight, want: t.InitialExecutors}
	}
	grants := allocate(m.Allocator, demands, capacity)

	root := rng.New(seed)
	tenants := make([]*runTenant, len(m.Tenants))
	for i, spec := range m.Tenants {
		ts := root.Split("tenant/" + spec.Name)
		wl, err := workload.New(spec.Workload)
		if err != nil {
			return nil, nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
		}
		trace, err := spec.Trace.Build(ts.Split("trace"))
		if err != nil {
			return nil, nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
		}
		initial := engine.Config{
			BatchInterval: spec.BatchInterval.D(),
			Executors:     grants[i],
		}
		maxExec := spec.MaxExecutors
		if maxExec > capacity {
			maxExec = capacity
		}
		eng, err := engine.New(clock, engine.Options{
			Workload:   wl,
			Trace:      trace,
			Cluster:    cl,
			Bus:        bus,
			TopicName:  spec.Name,
			Tenant:     spec.Name,
			Partitions: m.Partitions,
			Seed:       ts.Split("engine"),
			Initial:    initial,
			Bounds: engine.Bounds{
				MinInterval: 1 * time.Second, MaxInterval: 40 * time.Second,
				MinExecutors: 1, MaxExecutors: maxExec,
			},
			Metrics: obs.Metrics,
			Tracer:  tracer,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
		}
		gate := NewGate(eng, grants[i])
		gate.demand = spec.InitialExecutors
		rt := &runTenant{spec: spec, gate: gate, trace: trace}
		eng.AddListener(engine.ListenerFunc(func(bs engine.BatchStats) {
			fam.OnBatch(bs)
			if obs.OnBatch != nil {
				obs.OnBatch(bs)
			}
		}))
		if err := eng.Start(); err != nil {
			return nil, nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
		}
		if spec.Controller == "nostop" {
			ctl, err := core.New(gate, core.Options{
				Initial: initial,
				Seed:    ts.Split("controller"),
				Metrics: obs.Metrics,
				Tracer:  tracer,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
			}
			if err := ctl.Attach(); err != nil {
				return nil, nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
			}
			rt.ctl = ctl
		}
		tenants[i] = rt
	}

	// The reconcile loop: gather standing demands in canonical (name)
	// order, recompute grants, push them through the gates. Shrinks free
	// cores at the victims' next batch boundaries; EnsureLiveExecutors in
	// setGrant lets beneficiaries claim them over subsequent rounds, so the
	// vector converges within a few reconcile periods of any demand shift.
	alloc := AllocReport{Policy: m.Allocator}
	var reconcile func()
	reconcile = func() {
		alloc.Rounds++
		for i, rt := range tenants {
			demands[i].want = rt.gate.Demand()
			if demands[i].want < 1 {
				demands[i].want = 1
			}
		}
		next := allocate(m.Allocator, demands, capacity)
		for i, rt := range tenants {
			if next[i] != rt.gate.Grant() {
				alloc.Regrants++
			}
			preempted := rt.gate.setGrant(next[i])
			if preempted {
				alloc.Preemptions++
				rt.preemptions++
			}
			fam.OnGrant(rt.spec.Name, rt.gate.Demand(), next[i], preempted)
		}
		clock.After(m.ReconcileEvery.D(), reconcile)
	}
	clock.After(m.ReconcileEvery.D(), reconcile)

	clock.RunUntil(sim.Time(m.Horizon.D()))

	// Reports iterate the canonical tenant order; all floats derive from
	// the deterministic batch history, so Encode is byte-stable per seed.
	rep := &Report{
		Mix:        m.Name,
		Seed:       seed,
		Allocator:  m.Allocator,
		Nodes:      m.Nodes,
		Cores:      m.CoresPerNode,
		Partitions: m.Partitions,
		Horizon:    m.Horizon.String(),
		Warmup:     m.Warmup.String(),
		Alloc:      alloc,
	}
	warmup := sim.Time(m.Warmup.D())
	totalDelay, totalSteady := 0.0, 0
	for _, rt := range tenants {
		eng := rt.gate.Engine()
		hist := eng.History()
		tr := TenantReport{
			Name:           rt.spec.Name,
			Workload:       rt.spec.Workload,
			Controller:     rt.spec.Controller,
			SLOClass:       rt.spec.SLOClass,
			Priority:       rt.spec.Priority,
			Weight:         rt.spec.Weight,
			Trace:          rt.trace.Describe(),
			Batches:        len(hist),
			Reconfigs:      eng.Reconfigs(),
			FinalInterval:  eng.Config().BatchInterval.String(),
			FinalExecutors: eng.Config().Executors,
			LiveExecutors:  eng.LiveExecutors(),
			Demand:         rt.gate.Demand(),
			Grant:          rt.gate.Grant(),
			Preemptions:    rt.preemptions,
			Lag:            eng.Lag(),
			CommittedLag:   eng.CommittedLag(),
			Redelivered:    eng.Redelivered(),
			FailedBatches:  eng.FailedBatches(),
			ShedEvents:     eng.ShedEvents(),
		}
		var delays, procs, scheds []float64
		for _, bs := range hist {
			tr.Records += bs.Records
			if bs.CutAt < warmup || bs.FirstAfterReconfig {
				continue
			}
			delays = append(delays, bs.EndToEndDelay.Seconds())
			procs = append(procs, bs.ProcessingTime.Seconds())
			scheds = append(scheds, bs.SchedulingDelay.Seconds())
		}
		tr.SteadyBatches = len(delays)
		if len(delays) > 0 {
			sort.Float64s(delays)
			tr.DelayMeanSec = stats.Mean(delays)
			tr.DelayP95Sec = stats.Percentile(delays, 0.95)
			tr.DelayMaxSec = delays[len(delays)-1]
			tr.ProcMeanSec = stats.Mean(procs)
			tr.SchedMeanSec = stats.Mean(scheds)
			totalDelay += tr.DelayMeanSec * float64(len(delays))
			totalSteady += len(delays)
		}
		rep.Cluster.TotalBatches += tr.Batches
		rep.Cluster.TotalRecords += tr.Records
		rep.Tenants = append(rep.Tenants, tr)
	}
	rep.Cluster.Nodes = m.Nodes
	rep.Cluster.WorkerCores = capacity
	rep.Cluster.UsedCores = cl.UsedCores()
	rep.Cluster.FreeCores = cl.FreeCores()
	if totalSteady > 0 {
		rep.Cluster.MeanDelaySec = totalDelay / float64(totalSteady)
	}
	det := &Detail{
		Engines: make(map[string]*engine.Engine, len(tenants)),
		Gates:   make(map[string]*Gate, len(tenants)),
		Tracer:  tracer,
	}
	for _, rt := range tenants {
		det.Engines[rt.spec.Name] = rt.gate.Engine()
		det.Gates[rt.spec.Name] = rt.gate
	}
	return rep, det, nil
}
