package tenant

// The cluster-level allocator arbitrates executor grants between competing
// per-tenant controllers. Each reconcile round collects every tenant's
// demand (the executor count its controller last asked for), computes a
// grant vector under the mix's policy, and pushes the grants through the
// tenants' gates. Everything is a pure function of the sorted demand list,
// so grants are deterministic regardless of which tenant's controller moved
// last.

// demand is one tenant's standing in an allocation round.
type demand struct {
	name     string
	priority int
	weight   float64
	want     int // executors the tenant's controller asked for (>= 1)
}

// allocate computes the grant vector for the given demands under the policy.
// Demands must be sorted by name (the canonical mix order); every tenant is
// granted at least 1 executor (the mix validator guarantees capacity >=
// len(demands)), and no tenant is granted more than it wants. Returns
// grants aligned with the input slice.
func allocate(policy string, demands []demand, capacity int) []int {
	grants := make([]int, len(demands))
	if len(demands) == 0 {
		return grants
	}
	// Liveness floor: one executor each, so no policy can starve a tenant
	// into a dead engine. Policies distribute the remainder.
	remaining := capacity
	for i := range demands {
		grants[i] = 1
		remaining--
	}
	switch policy {
	case AllocPriority:
		allocatePriority(demands, grants, remaining)
	case AllocStatic:
		allocateStatic(demands, grants, remaining)
	default: // AllocFairShare
		allocateFairShare(demands, grants, remaining)
	}
	return grants
}

// allocatePriority serves strictly by (priority desc, name asc): each tier
// takes its full residual demand before the next tier sees capacity.
func allocatePriority(demands []demand, grants []int, remaining int) {
	// Order indices by priority; the input is name-sorted, so ties resolve
	// by name without a secondary key (stable selection below).
	for remaining > 0 {
		best := -1
		for i, d := range demands {
			if grants[i] >= d.want {
				continue
			}
			if best == -1 || d.priority > demands[best].priority {
				best = i
			}
		}
		if best == -1 {
			return // everyone satisfied
		}
		take := demands[best].want - grants[best]
		if take > remaining {
			take = remaining
		}
		grants[best] += take
		remaining -= take
	}
}

// allocateFairShare is weighted max-min water-filling: capacity is handed
// out one executor at a time to the tenant with the lowest
// grant-per-weight ratio among the still-hungry (ties: lowest index, i.e.
// name order). Low-demand tenants cap out early and their share flows to
// the rest — the property that lets a bursty tenant absorb a steady
// tenant's headroom, which is exactly the noisy-neighbor failure mode the
// priority policy prevents.
func allocateFairShare(demands []demand, grants []int, remaining int) {
	for remaining > 0 {
		best := -1
		// Compare grant/weight as cross-products to stay in integers ×
		// float64 without division (weight > 0 by validation; 0 weights
		// were normalized to 1).
		for i, d := range demands {
			if grants[i] >= d.want {
				continue
			}
			if best == -1 ||
				float64(grants[i])*demands[best].weight < float64(grants[best])*d.weight {
				best = i
			}
		}
		if best == -1 {
			return
		}
		grants[best]++
		remaining--
	}
}

// allocateStatic carves weight-proportional quotas up front and never
// rebalances: unused quota is stranded, modeling per-team static
// reservations. Rounding remainders go to earlier (name-ordered) tenants.
func allocateStatic(demands []demand, grants []int, remaining int) {
	totalW := 0.0
	for _, d := range demands {
		totalW += d.weight
	}
	if totalW <= 0 {
		return
	}
	// Integer largest-remainder apportionment of `remaining` by weight.
	quota := make([]int, len(demands))
	assigned := 0
	for i, d := range demands {
		q := int(float64(remaining) * d.weight / totalW)
		quota[i] = q
		assigned += q
	}
	for i := 0; assigned < remaining && i < len(demands); i++ {
		quota[i]++
		assigned++
	}
	for i, d := range demands {
		g := grants[i] + quota[i]
		if g > d.want {
			g = d.want // demand-capped; the surplus is stranded by design
		}
		grants[i] = g
	}
}
