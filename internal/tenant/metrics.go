package tenant

import (
	"nostop/internal/engine"
	"nostop/internal/metrics"
)

// Metrics is the nostop_tenant_* instrument family. Cardinality is bounded
// by construction: every per-tenant instrument is created up front from the
// mix's spec'd tenant list, and emissions for any tenant outside that list
// are counted on an unlabeled rejection counter instead of minting a new
// series. A compromised or buggy producer therefore cannot explode the
// registry no matter what strings it supplies — the registry's series set
// is fixed the moment the mix is validated.
type Metrics struct {
	batches   map[string]*metrics.Counter
	records   map[string]*metrics.Counter
	granted   map[string]*metrics.Gauge
	demanded  map[string]*metrics.Gauge
	preempted map[string]*metrics.Counter
	delay     map[string]*metrics.Histogram
	rejected  *metrics.Counter
}

// delayBuckets spans interactive SLOs (1s) through queue collapse (10m).
var delayBuckets = []float64{1, 2, 5, 10, 20, 40, 80, 160, 320, 600}

// NewMetrics creates the family on r for exactly the given tenants. A nil
// registry returns nil; all methods are nil-safe, preserving the
// zero-perturbation guarantee for unobserved runs.
func NewMetrics(r *metrics.Registry, tenants []string) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		batches:   make(map[string]*metrics.Counter, len(tenants)),
		records:   make(map[string]*metrics.Counter, len(tenants)),
		granted:   make(map[string]*metrics.Gauge, len(tenants)),
		demanded:  make(map[string]*metrics.Gauge, len(tenants)),
		preempted: make(map[string]*metrics.Counter, len(tenants)),
		delay:     make(map[string]*metrics.Histogram, len(tenants)),
		rejected: r.Counter("nostop_tenant_label_rejected_total",
			"Emissions naming a tenant outside the spec'd list (cardinality guard)."),
	}
	for _, t := range tenants {
		l := metrics.L("tenant", t)
		m.batches[t] = r.Counter("nostop_tenant_batches_total",
			"Completed batches per tenant.", l)
		m.records[t] = r.Counter("nostop_tenant_records_total",
			"Records processed in completed batches per tenant.", l)
		m.granted[t] = r.Gauge("nostop_tenant_executors_granted",
			"Executors the cluster allocator currently grants the tenant.", l)
		m.demanded[t] = r.Gauge("nostop_tenant_executors_demanded",
			"Executors the tenant's controller currently asks for.", l)
		m.preempted[t] = r.Counter("nostop_tenant_preemptions_total",
			"Reconcile rounds that preempted live executors from the tenant.", l)
		m.delay[t] = r.Histogram("nostop_tenant_delay_seconds",
			"End-to-end delay of the tenant's completed batches.", delayBuckets, l)
	}
	return m
}

// OnBatch records one completed batch for its tenant. Unknown tenants hit
// the rejection counter — the runtime half of the bounded-cardinality
// guard (the static half is obscontract's constant-name rule).
func (m *Metrics) OnBatch(bs engine.BatchStats) {
	if m == nil {
		return
	}
	c, ok := m.batches[bs.Tenant]
	if !ok {
		m.rejected.Inc()
		return
	}
	c.Inc()
	m.records[bs.Tenant].Add(float64(bs.Records))
	m.delay[bs.Tenant].Observe(bs.EndToEndDelay.Seconds())
}

// OnGrant records a reconcile round's outcome for one tenant.
func (m *Metrics) OnGrant(tenant string, demand, grant int, preempted bool) {
	if m == nil {
		return
	}
	g, ok := m.granted[tenant]
	if !ok {
		m.rejected.Inc()
		return
	}
	g.Set(float64(grant))
	m.demanded[tenant].Set(float64(demand))
	if preempted {
		m.preempted[tenant].Inc()
	}
}
