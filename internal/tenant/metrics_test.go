package tenant

import (
	"strings"
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/metrics"
)

// snapshot renders the registry's Prometheus exposition for inspection.
func snapshot(t *testing.T, r *metrics.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The runtime half of the bounded-cardinality guard: an emission naming a
// tenant outside the spec'd list must increment the rejection counter and
// must NOT mint a new labeled series.
func TestMetricsCardinalityGuard(t *testing.T) {
	reg := metrics.NewRegistry()
	fam := NewMetrics(reg, []string{"alpha", "beta"})

	fam.OnBatch(engine.BatchStats{Tenant: "alpha", Records: 10, EndToEndDelay: 3 * time.Second})
	before := snapshot(t, reg)

	fam.OnBatch(engine.BatchStats{Tenant: "evil-$(rm -rf)", Records: 1})
	fam.OnGrant("another-intruder", 4, 4, false)
	after := snapshot(t, reg)

	if got := fam.rejected.Value(); got != 2 {
		t.Fatalf("rejected counter = %v after two unknown-tenant emissions, want 2", got)
	}
	for _, bad := range []string{"evil", "intruder"} {
		if strings.Contains(after, bad) {
			t.Fatalf("unknown tenant %q leaked into the exposition:\n%s", bad, after)
		}
	}
	// Series count must be unchanged: only the pre-created family plus the
	// unlabeled rejection counter may appear.
	if a, b := strings.Count(before, "nostop_tenant_"), strings.Count(after, "nostop_tenant_"); b != a {
		t.Fatalf("unknown-tenant emission changed the series set: %d lines -> %d", a, b)
	}
}

func TestMetricsKnownTenantCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	fam := NewMetrics(reg, []string{"alpha"})
	fam.OnBatch(engine.BatchStats{Tenant: "alpha", Records: 7, EndToEndDelay: 2 * time.Second})
	fam.OnBatch(engine.BatchStats{Tenant: "alpha", Records: 5, EndToEndDelay: 4 * time.Second})
	fam.OnGrant("alpha", 6, 4, true)

	if got := fam.batches["alpha"].Value(); got != 2 {
		t.Errorf("batches = %v, want 2", got)
	}
	if got := fam.records["alpha"].Value(); got != 12 {
		t.Errorf("records = %v, want 12", got)
	}
	if got := fam.preempted["alpha"].Value(); got != 1 {
		t.Errorf("preemptions = %v, want 1", got)
	}
	out := snapshot(t, reg)
	for _, series := range []string{
		`nostop_tenant_batches_total{tenant="alpha"} 2`,
		`nostop_tenant_executors_granted{tenant="alpha"} 4`,
		`nostop_tenant_executors_demanded{tenant="alpha"} 6`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q:\n%s", series, out)
		}
	}
}

// A nil registry disables the family without nil-panics anywhere — the
// zero-perturbation contract for unobserved runs.
func TestMetricsNilSafe(t *testing.T) {
	var fam *Metrics = NewMetrics(nil, []string{"a"})
	if fam != nil {
		t.Fatal("NewMetrics(nil, ...) should return nil")
	}
	fam.OnBatch(engine.BatchStats{Tenant: "a"})
	fam.OnGrant("a", 1, 1, false)
}
