package rltuner

import (
	"math"
	"testing"

	"nostop/internal/rng"
)

// refQTable is the obviously-correct reference model (the
// internal/sim/property_test.go idiom): a map-based Q store updated with
// the same rule, written with no eye on performance. The real table must
// agree with it exactly — same inputs, same arithmetic, same floats.
type refQTable struct {
	alpha, gamma float64
	actions      int
	q            map[[2]int]float64
}

func (r *refQTable) max(s int) float64 {
	best := math.Inf(-1)
	for a := 0; a < r.actions; a++ {
		if v := r.q[[2]int{s, a}]; v > best {
			best = v
		}
	}
	return best
}

func (r *refQTable) update(s, a int, reward float64, next int) {
	key := [2]int{s, a}
	r.q[key] += r.alpha * (reward + r.gamma*r.max(next) - r.q[key])
}

// TestQTableBoundedProperty drives 10k randomized transitions with bounded
// rewards through the table and checks the invariants: every entry stays
// finite, every entry stays within R/(1-gamma) (the contraction bound for
// zero-initialized Q-learning), and the fast dense table agrees with the
// map-based reference exactly.
func TestQTableBoundedProperty(t *testing.T) {
	const (
		states  = 20
		actions = 13
		alpha   = 0.3
		gamma   = 0.6
		rBound  = 3.0
		steps   = 10000
	)
	seed := rng.New(99).Split("qtable-property")
	table, err := NewQTable(states, actions, alpha, gamma)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refQTable{alpha: alpha, gamma: gamma, actions: actions, q: map[[2]int]float64{}}
	bound := rBound/(1-gamma) + 1e-9

	s := seed.Intn(states)
	for i := 0; i < steps; i++ {
		a := seed.Intn(actions)
		r := seed.Uniform(-rBound, rBound)
		next := seed.Intn(states)
		table.Update(s, a, r, next)
		ref.update(s, a, r, next)
		if v := table.Value(s, a); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("step %d: Q(%d,%d)=%v not finite", i, s, a, v)
		}
		if v := math.Abs(table.Value(s, a)); v > bound {
			t.Fatalf("step %d: |Q(%d,%d)|=%v exceeds contraction bound %v", i, s, a, v, bound)
		}
		if got, want := table.Value(s, a), ref.q[[2]int{s, a}]; got != want {
			t.Fatalf("step %d: table %v diverged from reference %v", i, got, want)
		}
		s = next
	}
	// Full-table sweep: the invariants hold everywhere, not just on the
	// visited path, and Best/Max agree with the reference.
	for s := 0; s < states; s++ {
		if got, want := table.Max(s), ref.max(s); got != want {
			t.Fatalf("Max(%d)=%v, reference %v", s, got, want)
		}
		best := table.Best(s)
		if table.Value(s, best) != table.Max(s) {
			t.Fatalf("Best(%d)=%d does not attain Max", s, best)
		}
		for a := 0; a < actions; a++ {
			v := table.Value(s, a)
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > bound {
				t.Fatalf("Q(%d,%d)=%v violates the bound after %d steps", s, a, v, steps)
			}
		}
	}
}

// TestQTableBestTieBreak pins deterministic greedy selection: with an
// all-zero row, the first action wins.
func TestQTableBestTieBreak(t *testing.T) {
	table, err := NewQTable(2, 5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Best(0); got != 0 {
		t.Fatalf("Best on a tied row = %d, want 0", got)
	}
	table.Update(1, 3, 1, 0) // positive reward lifts action 3
	if got := table.Best(1); got != 3 {
		t.Fatalf("Best = %d, want 3", got)
	}
}

func TestQTableValidation(t *testing.T) {
	if _, err := NewQTable(0, 3, 0.5, 0.5); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := NewQTable(3, 0, 0.5, 0.5); err == nil {
		t.Error("zero actions accepted")
	}
	if _, err := NewQTable(3, 3, 0, 0.5); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := NewQTable(3, 3, 1.5, 0.5); err == nil {
		t.Error("alpha above 1 accepted")
	}
	if _, err := NewQTable(3, 3, 0.5, 1); err == nil {
		t.Error("gamma of 1 accepted")
	}
	if _, err := NewQTable(3, 3, 0.5, -0.1); err == nil {
		t.Error("negative gamma accepted")
	}
}
