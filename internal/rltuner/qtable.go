package rltuner

import "fmt"

// QTable is a dense tabular action-value store with the standard one-step
// Q-learning update. It is deliberately free of any engine dependency so
// the property suite can drive it against randomized transition streams and
// check its invariants in isolation.
//
// With zero initialization, a learning rate in (0, 1], a discount in
// [0, 1), and rewards bounded by R, every entry stays within
// R / (1 - gamma) forever: the update is a convex combination of the old
// value and r + gamma*max Q, and that bound is a fixed point of the
// combination. TestQTableBounded pins this over 10k randomized steps.
type QTable struct {
	states  int
	actions int
	alpha   float64
	gamma   float64
	q       []float64 // row-major states x actions
}

// NewQTable builds a zero-initialized table. alpha must be in (0, 1] and
// gamma in [0, 1) — gamma = 1 would let values diverge under cyclic
// visitation.
func NewQTable(states, actions int, alpha, gamma float64) (*QTable, error) {
	if states < 1 || actions < 1 {
		return nil, fmt.Errorf("rltuner: table shape %dx%d must be positive", states, actions)
	}
	if !(alpha > 0) || alpha > 1 {
		return nil, fmt.Errorf("rltuner: alpha %v outside (0, 1]", alpha)
	}
	if gamma < 0 || !(gamma < 1) {
		return nil, fmt.Errorf("rltuner: gamma %v outside [0, 1)", gamma)
	}
	return &QTable{
		states:  states,
		actions: actions,
		alpha:   alpha,
		gamma:   gamma,
		q:       make([]float64, states*actions),
	}, nil
}

// States returns the state-space size.
func (t *QTable) States() int { return t.states }

// Actions returns the action-space size.
func (t *QTable) Actions() int { return t.actions }

// Value returns Q(s, a).
func (t *QTable) Value(s, a int) float64 { return t.q[s*t.actions+a] }

// Max returns max_a Q(s, a) — the bootstrap target's value estimate.
func (t *QTable) Max(s int) float64 {
	row := t.q[s*t.actions : (s+1)*t.actions]
	best := row[0]
	for _, v := range row[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// Best returns argmax_a Q(s, a), breaking ties toward the lowest action
// index so greedy selection is deterministic.
func (t *QTable) Best(s int) int {
	row := t.q[s*t.actions : (s+1)*t.actions]
	best, bestV := 0, row[0]
	for a, v := range row[1:] {
		if v > bestV {
			best, bestV = a+1, v
		}
	}
	return best
}

// Update applies the Q-learning rule for the transition (s, a) -> next with
// reward r:
//
//	Q(s,a) += alpha * (r + gamma*max_a' Q(next,a') - Q(s,a))
func (t *QTable) Update(s, a int, r float64, next int) {
	i := s*t.actions + a
	t.q[i] += t.alpha * (r + t.gamma*t.Max(next) - t.q[i])
}
