package rltuner

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func newEngine(t *testing.T, mutate func(*engine.Options)) (*sim.Clock, *engine.Engine) {
	t.Helper()
	clock := sim.NewClock()
	opts := engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 150000},
		Seed:     rng.New(21),
		Initial:  engine.Config{BatchInterval: 20 * time.Second, Executors: 10},
	}
	if mutate != nil {
		mutate(&opts)
	}
	eng, err := engine.New(clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return clock, eng
}

func TestTunerLearnsWithinBounds(t *testing.T) {
	clock, eng := newEngine(t, nil)
	tuner, err := New(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := tuner.Space().EngineBounds()
	violations := 0
	eng.AddListener(engine.ListenerFunc(func(bs engine.BatchStats) {
		if !bounds.Contains(bs.Config) {
			violations++
		}
	}))
	if err := tuner.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(7200)))

	if violations > 0 {
		t.Errorf("%d batches ran outside the space's engine bounds", violations)
	}
	if tuner.Steps() == 0 {
		t.Error("no Q updates over a 2h run")
	}
	if tuner.ConfigureSteps() < 2 {
		t.Errorf("ConfigureSteps=%d: expected the initial alignment plus at least one move", tuner.ConfigureSteps())
	}
	if eps := tuner.Epsilon(); !(eps < 0.25) {
		t.Errorf("epsilon %v did not decay from its default", eps)
	}
	// Rewards live in [-3, 0] and gamma is 0.6, so the contraction bound is
	// 3/(1-0.6) = 7.5 for every table entry.
	table := tuner.Table()
	for s := 0; s < numStates; s++ {
		for a := 0; a < table.Actions(); a++ {
			v := table.Value(s, a)
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 7.5+1e-9 {
				t.Fatalf("Q(%d,%d)=%v escapes the reward-derived bound", s, a, v)
			}
		}
	}
}

func TestTunerSameSeedSameTrajectory(t *testing.T) {
	run := func() (cfg []byte, steps, applied, drains int) {
		clock, eng := newEngine(t, nil)
		tuner, err := New(eng, Options{Seed: rng.New(77)})
		if err != nil {
			t.Fatal(err)
		}
		if err := tuner.Attach(); err != nil {
			t.Fatal(err)
		}
		clock.RunUntil(sim.Time(sec(3600)))
		b, err := json.Marshal(eng.Config())
		if err != nil {
			t.Fatal(err)
		}
		return b, tuner.Steps(), tuner.ConfigureSteps(), tuner.Drains()
	}
	c1, s1, a1, d1 := run()
	c2, s2, a2, d2 := run()
	if string(c1) != string(c2) || s1 != s2 || a1 != a2 || d1 != d2 {
		t.Fatalf("same seed diverged: cfg %s vs %s, steps %d/%d, applied %d/%d, drains %d/%d",
			c1, c2, s1, s2, a1, a2, d1, d2)
	}
}

func TestTunerIntersectsSuppliedSpace(t *testing.T) {
	_, eng := newEngine(t, nil)
	// A space wider than the engine's bounds must be narrowed at New time.
	space := core.ConfigSpace{Version: core.SpaceVersion, Axes: []core.AxisSpec{
		{Param: core.ParamBatchInterval, Min: 0.5, Max: 120},
		{Param: core.ParamExecutors, Min: 1, Max: 500},
	}}
	tuner, err := New(eng, Options{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	b := eng.ConfigBounds()
	got := tuner.Space()
	ba, ok := got.Axis(core.ParamBatchInterval)
	if !ok {
		t.Fatal("batch axis lost in intersection")
	}
	if ba.Min < b.MinInterval.Seconds()-1e-9 || ba.Max > b.MaxInterval.Seconds()+1e-9 {
		t.Errorf("batch axis [%v, %v] escapes engine bounds", ba.Min, ba.Max)
	}
	ea, ok := got.Axis(core.ParamExecutors)
	if !ok {
		t.Fatal("executors axis lost in intersection")
	}
	if int(ea.Max) > b.MaxExecutors {
		t.Errorf("executors axis max %v above engine cap %d", ea.Max, b.MaxExecutors)
	}
}

func TestTunerDoubleAttach(t *testing.T) {
	_, eng := newEngine(t, nil)
	tuner, err := New(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := tuner.Attach(); err == nil {
		t.Error("second Attach accepted")
	}
}
