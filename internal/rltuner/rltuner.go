// Package rltuner implements a tabular Q-learning configuration tuner over
// the discretized widened config space — the reinforcement-learning peer of
// the paper's SPSA controller, after "Auto-tuning Distributed Stream
// Processing Systems using Reinforcement Learning" (Vaquero & Cuadrado).
//
// The agent observes a coarse system state (delay-to-interval ratio bucket
// x queue-depth bucket), acts by moving one axis of the config lattice one
// step up or down (or holding), and receives an episodic reward from the
// failure-aware objective: the negative of the paper's Eq. 3 cost of the
// measurement window, scaled and clipped so rewards are bounded (which in
// turn bounds the Q-table — see QTable).
//
// Determinism contract: exploration draws come from a dedicated rng.Stream
// in a fixed call order, greedy selection breaks ties by lowest action
// index, and measurement windows are driven purely by batch-completion
// callbacks. Same seed, same engine history, same decisions. Failure
// awareness mirrors the §5.4 controller: fault-window and
// first-after-reconfigure batches never enter a measurement window, and the
// tuner holds (defers reconfiguration) while a fault is in effect.
package rltuner

import (
	"errors"
	"fmt"
	"math"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/rng"
	"nostop/internal/stats"
)

// state-space geometry: delay-ratio buckets x queue buckets.
const (
	delayBuckets = 5
	queueBuckets = 4
	numStates    = delayBuckets * queueBuckets
)

// Options configure the tuner. Zero values mean defaults.
type Options struct {
	// Space is the configuration lattice to explore. Zero: the canonical
	// widened space over the engine's bounds and the workload's peak
	// nominal rate. The space is intersected with the engine's bounds at
	// construction, so every proposed point is admissible.
	Space core.ConfigSpace
	// Seed drives epsilon-greedy exploration. Nil: rng.New(11).
	Seed *rng.Stream
	// MeasureBatches is the clean-batch window per decision (default 3).
	MeasureBatches int
	// Alpha is the Q-learning rate (default 0.3).
	Alpha float64
	// Gamma is the discount factor (default 0.6).
	Gamma float64
	// Epsilon is the initial exploration probability (default 0.25); it
	// decays multiplicatively by EpsilonDecay (default 0.99) per decision
	// down to EpsilonMin (default 0.02).
	Epsilon      float64
	EpsilonDecay float64
	EpsilonMin   float64
	// Rho is Eq. 3's delay-overrun weight (default 2, the paper's value).
	Rho float64
	// RewardScale divides the Eq. 3 cost before clipping (default 30s, so
	// a window costing one default batch interval scores about -1).
	RewardScale float64
	// DrainThreshold is the queue depth that triggers an emergency jump to
	// the safest lattice point (default 10, matching the §5.4 controller).
	// Negative disables draining.
	DrainThreshold int
}

// withDefaults resolves zero options.
func (o Options) withDefaults() Options {
	if o.Seed == nil {
		o.Seed = rng.New(11)
	}
	if o.MeasureBatches == 0 {
		o.MeasureBatches = 3
	}
	if o.Alpha == 0 {
		o.Alpha = 0.3
	}
	if o.Gamma == 0 {
		o.Gamma = 0.6
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.25
	}
	if o.EpsilonDecay == 0 {
		o.EpsilonDecay = 0.99
	}
	if o.EpsilonMin == 0 {
		o.EpsilonMin = 0.02
	}
	if o.Rho == 0 {
		o.Rho = 2
	}
	if o.RewardScale == 0 {
		o.RewardScale = 30
	}
	if o.DrainThreshold == 0 {
		o.DrainThreshold = 10
	}
	return o
}

// Tuner is the attached Q-learning controller.
type Tuner struct {
	eng   *engine.Engine
	opts  Options
	space core.ConfigSpace
	vals  [][]float64 // per-axis lattice values
	idx   []int       // current lattice coordinate
	table *QTable
	seed  *rng.Stream
	eps   float64

	state  int // state of the pending decision; -1 before the first window
	action int
	acc    []float64 // total delay (proc + sched) of clean window batches

	attached bool
	steps    int // completed Q updates
	applied  int // configuration changes requested
	holds    int // decisions deferred because a fault was in effect
	drains   int // emergency safe-point jumps
}

// New builds a tuner for eng. The options' space (or the default widened
// space) is intersected with the engine's bounds and validated.
func New(eng *engine.Engine, opts Options) (*Tuner, error) {
	opts = opts.withDefaults()
	space := opts.Space
	if len(space.Axes) == 0 {
		_, peak := eng.Workload().RateBand()
		space = core.WidenedSpace(eng.ConfigBounds(), peak)
	}
	space = space.Intersect(eng.ConfigBounds())
	if err := space.Validate(); err != nil {
		return nil, err
	}
	t := &Tuner{
		eng:    eng,
		opts:   opts,
		space:  space,
		vals:   space.Lattice(),
		table:  nil,
		seed:   opts.Seed.Split("rl"),
		eps:    opts.Epsilon,
		state:  -1,
		action: -1,
	}
	table, err := NewQTable(numStates, 2*len(space.Axes)+1, opts.Alpha, opts.Gamma)
	if err != nil {
		return nil, err
	}
	t.table = table
	t.idx = t.initialCoord()
	return t, nil
}

// initialCoord snaps the engine's live configuration onto the lattice: the
// nearest value per axis, except an unset ingest cap (0 = uncapped), which
// maps to the top of its axis — the least-throttling lattice point.
func (t *Tuner) initialCoord() []int {
	cur := core.FullConfig{
		BatchInterval: t.eng.Config().BatchInterval,
		Executors:     t.eng.Config().Executors,
		BlockInterval: t.eng.Config().BlockInterval,
		IngestCap:     t.eng.IngestCap(),
		RetryBudget:   t.eng.TaskMaxFailures(),
		SpecThreshold: t.eng.SpeculativeMultiplier(),
	}
	x := t.space.Norm(cur)
	idx := make([]int, len(t.space.Axes))
	for i, a := range t.space.Axes {
		n := len(t.vals[i])
		if a.Param == core.ParamIngestCap && !(cur.IngestCap > 0) {
			idx[i] = n - 1
			continue
		}
		j := int(math.Round(x[i] * float64(n-1)))
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		idx[i] = j
	}
	return idx
}

// Attach registers the batch listener and aligns the engine onto the
// initial lattice point.
func (t *Tuner) Attach() error {
	if t.attached {
		return errors.New("rltuner: already attached")
	}
	t.attached = true
	t.eng.AddListener(engine.ListenerFunc(t.onBatch))
	return t.apply()
}

// apply pushes the current lattice coordinate onto the engine.
func (t *Tuner) apply() error {
	t.applied++
	if err := t.space.Apply(t.eng, t.space.At(t.idx)); err != nil {
		return fmt.Errorf("rltuner: applying %v: %v", t.idx, err)
	}
	return nil
}

// stateOf buckets the observed delay ratio and queue depth.
func (t *Tuner) stateOf(ratio float64, queue int) int {
	var d int
	switch {
	case ratio < 0.8:
		d = 0
	case ratio < 1.0:
		d = 1
	case ratio < 1.5:
		d = 2
	case ratio < 3.0:
		d = 3
	default:
		d = 4
	}
	var q int
	switch {
	case queue <= 0:
		q = 0
	case queue <= 3:
		q = 1
	case queue <= 10:
		q = 2
	default:
		q = 3
	}
	return d*queueBuckets + q
}

// onBatch is the engine callback: failure-aware admission, measurement
// accumulation, reward, and the next epsilon-greedy move.
func (t *Tuner) onBatch(bs engine.BatchStats) {
	// §5.4 admission: batches overlapping a fault window or the first
	// batch after a reconfiguration never enter a measurement window.
	if bs.FaultActive || bs.FirstAfterReconfig {
		return
	}
	queue := t.eng.QueueLen()
	if t.opts.DrainThreshold > 0 && queue > t.opts.DrainThreshold && !t.eng.FaultInEffect() {
		t.drain(queue)
		return
	}
	t.acc = append(t.acc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	if len(t.acc) < t.opts.MeasureBatches {
		return
	}
	interval := bs.Config.BatchInterval.Seconds()
	measured := stats.Mean(t.acc)
	reward := t.reward(interval, measured)
	next := t.stateOf(measured/interval, queue)
	if t.state >= 0 {
		t.table.Update(t.state, t.action, reward, next)
		t.steps++
	}
	t.acc = t.acc[:0]
	if t.eng.FaultInEffect() {
		// A fault window opened mid-callback chain: bank the update but
		// hold the configuration until the system is clean again.
		t.holds++
		t.state = -1
		return
	}
	t.decide(next)
}

// reward maps the window's Eq. 3 cost to a bounded reward in [-3, 0].
func (t *Tuner) reward(interval, measured float64) float64 {
	y := interval + t.opts.Rho*math.Max(0, measured-interval)
	r := -y / t.opts.RewardScale
	if r < -3 {
		r = -3
	}
	if r > 0 {
		r = 0
	}
	return r
}

// decide picks the next action epsilon-greedily and applies it.
func (t *Tuner) decide(state int) {
	var a int
	if t.seed.Float64() < t.eps {
		a = t.seed.Intn(t.table.Actions())
	} else {
		a = t.table.Best(state)
	}
	t.state, t.action = state, a
	if t.eps > t.opts.EpsilonMin {
		t.eps *= t.opts.EpsilonDecay
		if t.eps < t.opts.EpsilonMin {
			t.eps = t.opts.EpsilonMin
		}
	}
	if a == 0 {
		return // hold: keep the current point, no reconfiguration
	}
	axis := (a - 1) / 2
	dir := 1
	if (a-1)%2 == 0 {
		dir = -1
	}
	j := t.idx[axis] + dir
	if j < 0 {
		j = 0
	}
	if j >= len(t.vals[axis]) {
		j = len(t.vals[axis]) - 1
	}
	if j == t.idx[axis] {
		return // move clamped at the lattice edge: nothing to apply
	}
	t.idx[axis] = j
	_ = t.apply()
}

// drain is the emergency episode: the live action (if any) is punished with
// the worst reward, and the system jumps to the safest lattice point — max
// batch interval, max executors — to shed the backlog. Mirrors §5.4's
// drain but through the lattice, so the bounds contract still holds.
func (t *Tuner) drain(queue int) {
	if t.state >= 0 {
		t.table.Update(t.state, t.action, -3, t.stateOf(4, queue))
		t.steps++
	}
	t.state = -1
	t.acc = t.acc[:0]
	t.drains++
	changed := false
	for i, a := range t.space.Axes {
		if a.Param == core.ParamBatchInterval || a.Param == core.ParamExecutors {
			if j := len(t.vals[i]) - 1; t.idx[i] != j {
				t.idx[i] = j
				changed = true
			}
		}
	}
	if changed {
		_ = t.apply()
	}
}

// Space returns the (intersected) space the tuner explores.
func (t *Tuner) Space() core.ConfigSpace { return t.space }

// Table exposes the Q-table for inspection and tests.
func (t *Tuner) Table() *QTable { return t.table }

// Steps returns completed Q-learning updates.
func (t *Tuner) Steps() int { return t.steps }

// ConfigureSteps returns configuration changes requested.
func (t *Tuner) ConfigureSteps() int { return t.applied }

// Holds returns decisions deferred because a fault was in effect.
func (t *Tuner) Holds() int { return t.holds }

// Drains returns emergency safe-point episodes.
func (t *Tuner) Drains() int { return t.drains }

// Epsilon returns the current exploration probability.
func (t *Tuner) Epsilon() float64 { return t.eps }
