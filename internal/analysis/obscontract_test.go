package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestObsContract(t *testing.T) {
	analysistest.Run(t, analysis.ObsContract, "obscontract", nil)
}

// TestObsContractScope: the observability contract fences to
// nostop/internal/... under DefaultConfig; commands may label ad-hoc series.
func TestObsContractScope(t *testing.T) {
	cfg := analysis.DefaultConfig()
	cases := []struct {
		path string
		want bool
	}{
		{"nostop/internal/engine", true},
		{"nostop/cmd/nostop-sim", false},
	}
	for _, tc := range cases {
		diags := analysistest.Diagnostics(t, analysis.ObsContract, "obscontract", tc.path, cfg)
		if tc.want && len(diags) == 0 {
			t.Errorf("%s: contract violations produced no finding", tc.path)
		}
		if !tc.want && len(diags) != 0 {
			t.Errorf("%s: package outside the fence still flagged: %v", tc.path, diags)
		}
	}
}
