package analysis

// Scope restricts where an analyzer runs, by package import path. Patterns
// are exact paths or subtree patterns ending in "/..." (Go tool style).
type Scope struct {
	// Only, when non-empty, limits the analyzer to matching packages.
	Only []string
	// Exempt removes matching packages even when Only matches.
	Exempt []string
}

// Config carries the package-allowlist configuration for a run.
type Config struct {
	// Scopes maps analyzer name -> where it applies. Analyzers without an
	// entry run everywhere.
	Scopes map[string]Scope
	// Lists holds named sub-rule allowlists, keyed "<analyzer>.<list>",
	// e.g. "randsource.imports" -> packages allowed to import math/rand.
	Lists map[string][]string
}

// Applies reports whether the named analyzer should run on pkgPath. A nil
// Config applies everything everywhere.
func (c *Config) Applies(analyzer, pkgPath string) bool {
	if c == nil {
		return true
	}
	s := c.Scopes[analyzer]
	if len(s.Only) > 0 && !MatchAny(pkgPath, s.Only) {
		return false
	}
	return !MatchAny(pkgPath, s.Exempt)
}

// List returns the allowlist stored under key, or nil.
func (c *Config) List(key string) []string {
	if c == nil {
		return nil
	}
	return c.Lists[key]
}

// MatchAny reports whether path matches any of the patterns. An external
// test package ("pkg_test", as the loader names them) matches wherever its
// library package does: the contract does not change across the test split.
func MatchAny(path string, patterns []string) bool {
	base, isExtTest := cutSuffix(path, "_test")
	for _, pat := range patterns {
		if matchPattern(path, pat) || isExtTest && matchPattern(base, pat) {
			return true
		}
	}
	return false
}

// matchPattern matches an import path against an exact path or a "dir/..."
// subtree pattern ("dir/..." also matches "dir" itself).
func matchPattern(path, pat string) bool {
	if base, ok := cutSuffix(pat, "/..."); ok {
		return path == base || len(path) > len(base) && path[len(base)] == '/' && path[:len(base)] == base
	}
	return path == pat
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// DefaultConfig encodes the repository's determinism contract:
//
//   - wallclock: all internal packages route time through sim.Clock; the cmd/
//     binaries and examples/ may read the wall clock (they talk to humans).
//   - randsource: only internal/rng may import math/rand (it owns the seeded
//     streams); the implicitly seeded global rand functions are banned
//     everywhere, including there.
//   - maporder and the global-rand ban run over every package, tests included:
//     a nondeterministic test is as flaky as a nondeterministic simulator.
//   - floateq: the numeric decision-making packages (core, spsa, engine) may
//     not steer control flow on exact float equality; use internal/approx.
//   - simgoroutine: internal packages stay single-threaded on the event loop;
//     internal/listener and internal/metrics are the allowlisted exceptions
//     (both serve concurrent HTTP readers behind their own locks, off the
//     simulation's critical path — the simulation side only ever touches
//     them from the event loop). internal/fleet and cmd/nostop-fleet are also
//     exempt: the fleet runner's worker pool lives *outside* the simulation —
//     each worker goroutine runs a complete, independent single-threaded
//     simulation on its own clock, and results merge deterministically by
//     job index, so fleet concurrency can never reorder events inside a run.
//   - internal/service is exempt from both wallclock and simgoroutine: its
//     wall mode runs real HTTP servers with real deadlines and pacer
//     goroutines, all behind the Timebase seam. Sim mode never reaches those
//     code paths — the deterministic soak tests replay byte-identically,
//     which is the property the analyzers exist to protect. No other
//     sim-core package gains wall-clock access (see the allowlist tests).
//   - hotalloc and obscontract: only internal packages carry the zero-alloc
//     and bounded-cardinality contracts — the cmd/ binaries and examples/
//     format human output, where an allocation or a Sprintf label is fine.
//   - lockguard runs everywhere: it only fires on fields that opt in with a
//     '// guarded by <mu>' annotation, so an unannotated package is free.
func DefaultConfig() *Config {
	return &Config{
		Scopes: map[string]Scope{
			"hotalloc":    {Only: []string{"nostop/internal/..."}},
			"obscontract": {Only: []string{"nostop/internal/..."}},
			"wallclock": {
				Only:   []string{"nostop/internal/..."},
				Exempt: []string{"nostop/internal/service/..."},
			},
			"floateq": {Only: []string{
				"nostop/internal/core/...",
				"nostop/internal/spsa/...",
				"nostop/internal/engine/...",
			}},
			"simgoroutine": {
				Only: []string{"nostop/internal/..."},
				Exempt: []string{
					"nostop/internal/listener/...",
					"nostop/internal/metrics/...",
					"nostop/internal/fleet/...",
					"nostop/internal/service/...",
					// cmd packages sit outside Only already; the explicit
					// entry documents that the fleet CLI's concurrency is
					// sanctioned, not merely unchecked.
					"nostop/cmd/nostop-fleet/...",
				},
			},
		},
		Lists: map[string][]string{
			"randsource.imports": {"nostop/internal/rng/..."},
		},
	}
}
