// Package simgoroutinefixture exercises the simgoroutine analyzer.
package simgoroutinefixture

import (
	"sync"        // want "import of sync in a single-threaded simulation package"
	"sync/atomic" // want "import of sync/atomic in a single-threaded simulation package"
)

func bad() {
	go func() {}() // want "goroutine launched in a single-threaded simulation package"
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	var n int64
	atomic.AddInt64(&n, 1)
}

func good(events []func()) {
	// The single-threaded alternative: run callbacks inline, in order.
	for _, fn := range events {
		fn()
	}
}

func suppressed() {
	go func() {}() //nostop:allow simgoroutine -- fixture: deliberate escape hatch
}
