// Package lockguardfixture exercises the lockguard analyzer: held and
// deferred-held accesses, branch-scoped acquisitions, instance and mutex
// mismatches, the constructor hatch, closures, and both allow levels.
package lockguardfixture

import "sync"

type box struct {
	mu    sync.Mutex
	other sync.Mutex
	val   int // guarded by mu
	free  int
}

type rwbox struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

func locked(b *box) int {
	b.mu.Lock()
	v := b.val // held: fine
	b.mu.Unlock()
	return v
}

func deferred(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val // deferred unlock keeps the lock held to function end: fine
}

func rlocked(b *rwbox) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val // read lock counts: fine
}

func unlocked(b *box) int {
	return b.val // want "field val is guarded by b.mu but accessed without holding it"
}

func afterUnlock(b *box) int {
	b.mu.Lock()
	b.mu.Unlock()
	return b.val // want "field val is guarded by b.mu but accessed without holding it"
}

func branchScoped(b *box, cond bool) int {
	if cond {
		b.mu.Lock()
		b.val = 1 // acquired earlier in this branch: fine
		b.mu.Unlock()
	}
	return b.val // want "field val is guarded by b.mu but accessed without holding it"
}

func branchLeak(b *box, cond bool) int {
	if cond {
		b.mu.Lock()
	}
	// The acquisition above must not leak past the join point.
	return b.val // want "field val is guarded by b.mu but accessed without holding it"
}

func wrongInstance(a, b *box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.val // want "field val is guarded by b.mu but accessed without holding it"
}

func wrongMutex(b *box) int {
	b.other.Lock()
	defer b.other.Unlock()
	return b.val // want "field val is guarded by b.mu but accessed without holding it"
}

func closure(b *box) func() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() int {
		// A closure may run anywhere: it starts with an empty held set.
		return b.val // want "field val is guarded by b.mu but accessed without holding it"
	}
}

// NewBox publishes before sharing: the constructor hatch skips it.
func NewBox() *box {
	b := &box{}
	b.val = 7 // constructor: fine
	return b
}

// simOnly runs on the single-threaded event loop.
//
//nostop:allow lockguard -- fixture: sim-mode path, mutex unused by design
func simOnly(b *box) int { return b.val }

func lineAllowed(b *box) int {
	//nostop:allow lockguard -- fixture: documented exception
	return b.val
}

func freeAccess(b *box) int { return b.free } // unguarded field: fine
