// Package floateqfixture exercises the floateq analyzer.
package floateqfixture

type celsius float64

func conds(a, b float64, t celsius, n int) int {
	if a == b { // want "exact floating-point == in a control-flow condition"
		return 1
	}
	if a != 0 { // want "exact floating-point != in a control-flow condition"
		return 2
	}
	if n == 3 { // integer comparison: fine
		return 3
	}
	if a < b || a >= b { // ordered comparisons: fine
		return 4
	}
	if n > 0 && a == 0 { // want "exact floating-point == in a control-flow condition"
		return 5
	}
	if t == 0 { // want "exact floating-point == in a control-flow condition"
		return 6 // named float types count
	}
	for a == b { // want "exact floating-point == in a control-flow condition"
		break
	}
	switch {
	case a == b: // want "exact floating-point == in a control-flow condition"
		return 7
	}
	switch a { // want "switch on a floating-point value"
	case 1:
		return 8
	}
	_ = a == b // plain expression, not control flow: fine
	return 0
}

func suppressed(a float64) bool {
	if a == 0 { //nostop:allow floateq -- fixture: zero is an exact sentinel here
		return true
	}
	return false
}
