// Package obscontractfixture exercises the obscontract analyzer with local
// stand-ins for metrics.Registry and tracing.Tracer (the receiver match is
// by type name, so the fixture need not import the real packages), plus an
// Observer interface with nil-safe and nil-unsafe implementations.
package obscontractfixture

import "fmt"

type series struct{}

// Registry mimics metrics.Registry: the first argument of Counter, Gauge,
// and Histogram is a series name.
type Registry struct{}

func (r *Registry) Counter(name string) *series   { return &series{} }
func (r *Registry) Gauge(name string) *series     { return &series{} }
func (r *Registry) Histogram(name string) *series { return &series{} }

// Args mimics tracing.Args.
type Args map[string]any

// Tracer mimics tracing.Tracer: Span and Instant carry the name at index 3,
// Counter at index 1.
type Tracer struct{}

func (t *Tracer) Span(pid, tid int, cat, name string, args Args)    {}
func (t *Tracer) Instant(pid, tid int, cat, name string, args Args) {}
func (t *Tracer) Counter(pid int, name string, values Args)         {}

const histName = "nostop_latency"

func constantNames(reg *Registry, tr *Tracer) {
	reg.Counter("records_total")
	reg.Gauge("queue_depth")
	reg.Histogram(histName)         // named constant folds: fine
	reg.Histogram(histName + "_ms") // constant expression folds: fine
	tr.Span(1, 2, "engine", "batch", nil)
	tr.Instant(1, 2, "engine", "cut", nil)
	tr.Counter(1, "throughput", nil)
}

func dynamicNames(reg *Registry, tr *Tracer, id int) {
	reg.Counter(fmt.Sprintf("batch_%d", id)) // want "Registry.Counter name must be a compile-time constant"
	name := "dyn"
	reg.Gauge(name)                                           // want "Registry.Gauge name must be a compile-time constant"
	reg.Histogram(name + "_ms")                               // want "Registry.Histogram name must be a compile-time constant"
	tr.Span(1, 2, "engine", fmt.Sprintf("batch %d", id), nil) // want "Tracer.Span name must be a compile-time constant"
	tr.Instant(1, 2, "engine", name, nil)                     // want "Tracer.Instant name must be a compile-time constant"
	tr.Counter(1, name, nil)                                  // want "Tracer.Counter name must be a compile-time constant"
}

func boundedName(tr *Tracer, kind fmt.Stringer) {
	//nostop:allow obscontract -- fixture: name drawn from a closed enum
	tr.Span(1, 2, "faults", kind.String(), nil)
}

// FetchObserver opts into the nil-receiver rule by its name suffix.
type FetchObserver interface {
	OnFetch(n int)
	OnCommit(n int)
}

// goodObs keeps every pointer-receiver method nil-safe.
type goodObs struct{ n int }

func (o *goodObs) OnFetch(n int) {
	if o == nil {
		return
	}
	o.n += n
}

func (o *goodObs) OnCommit(n int) {
	if o == nil || n == 0 { // guard inside a wider condition still counts
		return
	}
	o.n = n
}

// badObs forgets the guard on OnCommit.
type badObs struct{ n int }

func (o *badObs) OnFetch(n int) {
	if o == nil {
		return
	}
	o.n = n
}

func (o *badObs) OnCommit(n int) { // want "Observer method OnCommit must begin with a nil-receiver guard"
	o.n = n
}

func (o *badObs) reset() { o.n = 0 } // not an interface method: fine

// valObs has value receivers: a nil pointer never reaches them.
type valObs struct{}

func (valObs) OnFetch(n int) {}
func (valObs) OnCommit(n int) {}

// noopObs has empty bodies: trivially nil-safe.
type noopObs struct{}

func (o *noopObs) OnFetch(n int)  {}
func (o *noopObs) OnCommit(n int) {}
