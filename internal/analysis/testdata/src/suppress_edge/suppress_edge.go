// Package suppressedge pins the exact coverage of a //nostop:allow comment:
// its own line and the line directly below — deeper lines of a multi-line
// expression are not covered, and an allow naming one analyzer leaves other
// analyzers' findings on the covered line intact. TestSuppressionEdgeCases
// locates the EDGE markers instead of hard-coding line numbers.
package suppressedge

import (
	"math/rand" //nostop:allow randsource -- fixture: import under test below
	"time"
)

// multiLine: the allow covers the time.Since on the next line; the time.Now
// on the line after that stays flagged.
func multiLine() time.Duration {
	//nostop:allow wallclock -- fixture: covers only the next line
	return time.Since(
		time.Now()) // EDGE-WALLCLOCK: finding expected here
}

// oneLineTwoAnalyzers: the allow names wallclock only; randsource still
// flags the very same line.
func oneLineTwoAnalyzers() (time.Time, int) {
	//nostop:allow wallclock -- fixture: clock read acknowledged, rand is not
	return time.Now(), rand.Intn(10) // EDGE-RANDSOURCE: finding expected here
}
