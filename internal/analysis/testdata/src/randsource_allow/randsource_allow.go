// Package randsourceallow is loaded by the tests under two different import
// paths: one on the randsource import allowlist (no findings expected — it
// plays the role of internal/rng) and one off it (two import findings). It
// intentionally carries no want comments; the allowlist test compares raw
// diagnostics instead.
package randsourceallow

import (
	crand "crypto/rand"
	"math/rand"
)

// Stream wraps an explicitly seeded source, like internal/rng does.
type Stream struct{ r *rand.Rand }

func New(seed int64) *Stream { return &Stream{r: rand.New(rand.NewSource(seed))} }

func (s *Stream) Float64() float64 { return s.r.Float64() }

// Entropy is unused in the simulator but keeps the crypto/rand import live.
func Entropy() []byte {
	b := make([]byte, 8)
	_, _ = crand.Reader.Read(b)
	return b
}
