// Package hotallocfixture exercises the hotalloc analyzer: an annotated
// root, same-package propagation, the []byte append exemption, and both
// suppression levels (line allow, func-doc allow).
package hotallocfixture

type point struct{ x, y int }

type empty interface{}

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func consume(v empty) {}

func variadic(vs ...int) {}

// hot is the annotated root: every allocation-shaped construct inside it is
// a finding, with no "via" suffix.
//
//nostop:hotpath
func hot(dst []int, bs []byte, names []string) {
	p := &point{1, 2} // want "&point composite literal allocates in hot path"
	_ = p
	m := map[string]int{"a": 1} // want "map literal allocates in hot path"
	s := []int{1, 2, 3}         // want "slice literal allocates its backing array in hot path"
	_ = s
	f := func() {} // want "function literal allocates a closure in hot path"
	f()
	c := counter{} // struct literal by value stays on the stack: fine
	g := c.bump    // want "bound method value bump allocates a closure in hot path"
	g()
	acc := ""
	for i := 0; i < len(names); i++ {
		acc += names[i] // want "string concatenation in a loop allocates in hot path"
	}
	_ = acc
	for k := range m { // want "map iteration in hot path"
		_ = k
	}
	q := new(point) // want "new\(...\) allocates in hot path"
	_ = q
	buf := make([]int, 4) // want "make allocates in hot path"
	_ = buf
	for i := 0; i < 3; i++ {
		dst = append(dst, i)     // want "append inside a loop grows without preallocation in hot path"
		bs = append(bs, byte(i)) // []byte append: the pooled-buffer encoding idiom is exempt
	}
	_ = bs
	e := empty(c) // want "conversion to interface .*empty boxes \(allocates\) in hot path"
	_ = e
	consume(c.n)      // want "argument boxes a concrete value into interface .*empty in hot path"
	consume(42)       // constant: boxes from static storage, fine
	variadic(1, 2, 3) // want "implicit variadic slice allocates in hot path"
	variadic(dst...)  // slice passed through: fine
	helper()
	coldTrace()
	//nostop:allow hotalloc -- fixture: pooled refill, documented exception
	pool := &point{} // line allow above covers this line
	_ = pool
}

// helper inherits hot-path status by being called from hot.
func helper() *point {
	return &point{} // want "&point composite literal allocates in hot path \(hot path via hot\)"
}

// coldTrace is called from hot but exempt wholesale; the exemption also
// stops propagation, so deep stays cold.
//
//nostop:allow hotalloc -- fixture: opt-in cold branch off the budget path
func coldTrace() {
	_ = &point{} // func-level allow: no finding
	deep()
}

// deep is reachable only through the exempt coldTrace: not hot.
func deep() *point { return &point{} }

// cold is never referenced from a hot function: not hot.
func cold() map[string]int { return map[string]int{} }
