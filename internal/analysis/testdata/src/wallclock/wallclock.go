// Package wallclockfixture exercises the wallclock analyzer.
package wallclockfixture

import "time"

// simClock mimics sim.Clock: methods named Now/After on other types are not
// the wall clock and must not be flagged.
type simClock struct{ now time.Duration }

func (c *simClock) Now() time.Duration                   { return c.now }
func (c *simClock) After(d time.Duration, fn func()) any { return nil }

func bad() {
	_ = time.Now()              // want "time.Now reads the wall clock"
	time.Sleep(time.Second)     // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{}) // want "time.Since reads the wall clock"
	<-time.After(time.Second)   // want "time.After reads the wall clock"
	_ = time.NewTimer(0)        // want "time.NewTimer reads the wall clock"
	f := time.Now               // want "time.Now reads the wall clock"
	_ = f
}

func good() {
	c := &simClock{}
	_ = c.Now()                       // virtual time: fine
	c.After(3*time.Second, func() {}) // sim scheduling: fine
	d := 250 * time.Millisecond       // Duration values and arithmetic: fine
	_ = d.Seconds()
	_ = time.Unix(0, 0) // constructing a fixed instant: fine
}

func suppressed() {
	_ = time.Now() //nostop:allow wallclock -- fixture: deliberate escape hatch
}
