// Package randsourcefixture exercises the randsource analyzer outside the
// import allowlist: both the imports and the global functions are findings.
package randsourcefixture

import (
	crand "crypto/rand" // want "import of crypto/rand outside internal/rng"
	"math/rand"         // want "import of math/rand outside internal/rng"
)

func bad() {
	_ = rand.Intn(10)                  // want "math/rand.Intn draws from the global rand source"
	rand.Shuffle(3, func(i, j int) {}) // want "math/rand.Shuffle draws from the global rand source"
	_, _ = crand.Read(make([]byte, 8)) // want "crypto/rand.Read draws from the global rand source"
}

func goodMethods() {
	// Methods on an explicitly seeded source are fine; only the imports above
	// are findings for this file's package path.
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10)
	_ = r.NormFloat64()
}

func suppressed() {
	_ = rand.Int63() //nostop:allow randsource -- fixture: deliberate escape hatch
}
