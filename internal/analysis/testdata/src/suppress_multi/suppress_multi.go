// Package suppressmulti exercises one //nostop:allow comment naming several
// analyzers at once, plus an unsuppressed control finding per analyzer.
package suppressmulti

import (
	"math/rand" //nostop:allow randsource -- fixture: import under test below
	"time"
)

func doublySuppressed() (time.Time, int) {
	//nostop:allow wallclock, randsource -- fixture: one comment, two analyzers
	return time.Now(), rand.Intn(10)
}

func controls() (time.Time, int) {
	return time.Now(), rand.Intn(10) // CONTROL: must stay flagged by both analyzers
}
