// Package maporderfixture exercises the maporder analyzer.
package maporderfixture

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is nondeterministic and reaches an append"
		out = append(out, k)
	}
	return out
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: the sanctioned idiom, not flagged
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCollectThenSortSlice(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m { // want "map iteration order is nondeterministic and reaches formatted output"
		fmt.Println(k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "map iteration order is nondeterministic and reaches a WriteString call"
		b.WriteString(k)
	}
	return b.String()
}

func badStringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration order is nondeterministic and reaches string concatenation"
		s += k
	}
	return s
}

func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration order is nondeterministic and reaches floating-point accumulation"
		sum += v
	}
	return sum
}

func badSend(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order is nondeterministic and reaches a channel send"
		ch <- k
	}
}

func goodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m { // commutative integer reduction: order-insensitive
		n += v
	}
	return n
}

func goodMaxWithTieBreak(m map[string]int) string {
	top, topN := "", -1
	for k, v := range m { // deterministic tie-break: order-insensitive
		if v > topN || (v == topN && k < top) {
			top, topN = k, v
		}
	}
	return top
}

func goodMapMerge(dst, src map[string]int) {
	for k, v := range src { // map-to-map merge: order-insensitive
		dst[k] += v
	}
}

func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // slice iteration is ordered: fine
		out = append(out, x)
	}
	return out
}

func suppressed(m map[string]float64) float64 {
	var sum float64
	//nostop:allow maporder -- fixture: tolerance-bounded aggregate, order accepted
	for _, v := range m {
		sum += v
	}
	return sum
}
