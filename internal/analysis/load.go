package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A Package is one type-checked unit of the module: a library package (with
// its in-package test files when tests are loaded) or an external _test
// package, whose Path carries a "_test" suffix.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadOptions controls module loading.
type LoadOptions struct {
	// Tests includes _test.go files and external test packages.
	Tests bool
}

// LoadModule parses and type-checks every package under the module rooted at
// root (the directory containing go.mod), resolving intra-module imports
// against the freshly checked packages and everything else against the
// installed standard library. testdata, vendor, and hidden directories are
// skipped. Packages are returned sorted by import path.
func LoadModule(root string, opts LoadOptions) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var units []*unit
	byPath := map[string]*unit{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		us, err := parseDir(fset, root, modPath, path, opts)
		if err != nil {
			return err
		}
		units = append(units, us...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })
	for _, u := range units {
		byPath[u.path] = u
	}

	order, err := topoSort(units, byPath)
	if err != nil {
		return nil, err
	}

	imp := newImporter(fset)
	var pkgs []*Package
	for _, u := range order {
		pkg, err := checkUnit(fset, u, imp)
		if err != nil {
			return nil, err
		}
		imp.local[u.path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, resolving imports against the standard library only. It is the
// loader used for analysistest fixtures.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseGoFiles(fset, dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return checkUnit(fset, &unit{path: importPath, dir: dir, files: files}, newImporter(fset))
}

// unit is a pre-typecheck package: its files plus intra-module dependencies.
type unit struct {
	path  string
	dir   string
	files []*ast.File
	deps  []string
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := moduleDirective.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("analysis: no module directive in %s", gomod)
	}
	return string(m[1]), nil
}

func parseGoFiles(fset *token.FileSet, dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// parseDir turns one directory into zero, one, or two units: the package
// itself (including in-package test files) and, separately, its external
// package_test if one exists.
func parseDir(fset *token.FileSet, root, modPath, dir string, opts LoadOptions) ([]*unit, error) {
	files, err := parseGoFiles(fset, dir, opts.Tests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	lib := &unit{path: path, dir: dir}
	ext := &unit{path: path + "_test", dir: dir}
	for _, f := range files {
		if strings.HasSuffix(f.Name.Name, "_test") {
			ext.files = append(ext.files, f)
		} else {
			lib.files = append(lib.files, f)
		}
	}

	var units []*unit
	if len(lib.files) > 0 {
		lib.deps = localImports(lib.files, modPath)
		units = append(units, lib)
	}
	if len(ext.files) > 0 {
		ext.deps = localImports(ext.files, modPath)
		units = append(units, ext)
	}
	return units, nil
}

func localImports(files []*ast.File, modPath string) []string {
	seen := map[string]bool{}
	var deps []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				deps = append(deps, p)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// topoSort orders units so every unit follows its intra-module dependencies.
func topoSort(units []*unit, byPath map[string]*unit) ([]*unit, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []*unit
	var visit func(u *unit, trail []string) error
	visit = func(u *unit, trail []string) error {
		switch state[u.path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(trail, u.path), " -> "))
		}
		state[u.path] = visiting
		for _, dep := range u.deps {
			if dep == u.path {
				continue // external test package importing the library it tests
			}
			if d, ok := byPath[dep]; ok {
				if err := visit(d, append(trail, u.path)); err != nil {
					return err
				}
			}
		}
		state[u.path] = done
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the packages checked so
// far and everything else from the compiled standard library, falling back to
// type-checking the standard library from source if export data is missing.
type moduleImporter struct {
	std    types.Importer
	source types.Importer
	fset   *token.FileSet
	local  map[string]*types.Package
}

func newImporter(fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		std:   importer.ForCompiler(fset, "gc", nil),
		fset:  fset,
		local: map[string]*types.Package{},
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	if m.source == nil {
		m.source = importer.ForCompiler(m.fset, "source", nil)
	}
	return m.source.Import(path)
}

func checkUnit(fset *token.FileSet, u *unit, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(u.path, fset, u.files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", u.path, err)
	}
	return &Package{Path: u.path, Dir: u.dir, Fset: fset, Files: u.files, Types: tpkg, Info: info}, nil
}
