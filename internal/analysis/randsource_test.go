package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestRandSource(t *testing.T) {
	analysistest.Run(t, analysis.RandSource, "randsource", nil)
}

// TestRandSourceImportAllowlist loads the same fixture under an allowlisted
// and a non-allowlisted import path: the import findings must disappear for
// the allowlisted package (it plays internal/rng) and appear otherwise.
func TestRandSourceImportAllowlist(t *testing.T) {
	cfg := &analysis.Config{Lists: map[string][]string{
		"randsource.imports": {"fixture/rng/..."},
	}}

	if diags := analysistest.Diagnostics(t, analysis.RandSource, "randsource_allow", "fixture/rng", cfg); len(diags) != 0 {
		t.Errorf("allowlisted package: want 0 findings, got %d: %v", len(diags), diags)
	}

	diags := analysistest.Diagnostics(t, analysis.RandSource, "randsource_allow", "fixture/other", cfg)
	if len(diags) != 2 {
		t.Fatalf("non-allowlisted package: want 2 import findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "randsource" {
			t.Errorf("finding from %q, want randsource", d.Analyzer)
		}
	}
}
