package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nostop/internal/analysis"
)

func loadRepo(t *testing.T, tests bool) []*analysis.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: tests})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestLoadModule(t *testing.T) {
	pkgs := loadRepo(t, true)
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, path := range []string{
		"nostop/internal/sim",
		"nostop/internal/engine",
		"nostop/internal/rng",
		"nostop/internal/experiments",
		"nostop/cmd/nostop-vet",
		"nostop", // root package exists only as its bench _test files
	} {
		pkg, ok := byPath[path]
		if !ok {
			t.Errorf("module load missing package %s", path)
			continue
		}
		if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
			t.Errorf("%s loaded without types or files", path)
		}
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Fatalf("packages not sorted: %s before %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("testdata package leaked into module load: %s", p.Path)
		}
	}
}

// TestLoadErrors pins the loader's failure modes: each broken input must
// surface a descriptive error, not a panic or a silently empty package list.
func TestLoadErrors(t *testing.T) {
	write := func(t *testing.T, dir, name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("unparseable file", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "bad.go", "package bad\nfunc {\n")
		if _, err := analysis.LoadDir(dir, "fixture/bad"); err == nil {
			t.Fatal("LoadDir accepted a file with a syntax error")
		}
	})

	t.Run("type-check failure", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "broken.go", "package broken\nvar v = undefinedSymbol\n")
		_, err := analysis.LoadDir(dir, "fixture/broken")
		if err == nil || !strings.Contains(err.Error(), "type-checking") {
			t.Fatalf("want a type-checking error naming the package, got %v", err)
		}
	})

	t.Run("no Go files", func(t *testing.T) {
		dir := t.TempDir()
		_, err := analysis.LoadDir(dir, "fixture/empty")
		if err == nil || !strings.Contains(err.Error(), "no Go files") {
			t.Fatalf("want a no-Go-files error, got %v", err)
		}
	})

	t.Run("missing go.mod", func(t *testing.T) {
		if _, err := analysis.LoadModule(t.TempDir(), analysis.LoadOptions{}); err == nil {
			t.Fatal("LoadModule accepted a directory without go.mod")
		}
	})

	t.Run("no module directive", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "go.mod", "// a go.mod with no module line\ngo 1.22\n")
		_, err := analysis.LoadModule(dir, analysis.LoadOptions{})
		if err == nil || !strings.Contains(err.Error(), "no module directive") {
			t.Fatalf("want a no-module-directive error, got %v", err)
		}
	})
}

// TestRepoIsContractClean is the acceptance gate, in-process: the full
// analyzer suite over the whole module (tests included) under the default
// allowlists must report nothing. This is exactly what cmd/nostop-vet runs,
// so `go test ./...` fails the moment a wall-clock read, stray rand import,
// unsorted map iteration, float == guard, goroutine, hot-path allocation,
// unlocked guarded-field access, or dynamic metric/span name slips into the
// tree. It also pins the catalog: exactly these eight analyzers, in order.
func TestRepoIsContractClean(t *testing.T) {
	want := []string{"floateq", "hotalloc", "lockguard", "maporder", "obscontract", "randsource", "simgoroutine", "wallclock"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("analyzer catalog has %d entries, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %s, want %s", i, a.Name, want[i])
		}
	}
	pkgs := loadRepo(t, true)
	diags := analysis.Check(pkgs, all, analysis.DefaultConfig())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
