package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"nostop/internal/analysis"
)

func loadRepo(t *testing.T, tests bool) []*analysis.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(root, analysis.LoadOptions{Tests: tests})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestLoadModule(t *testing.T) {
	pkgs := loadRepo(t, true)
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, path := range []string{
		"nostop/internal/sim",
		"nostop/internal/engine",
		"nostop/internal/rng",
		"nostop/internal/experiments",
		"nostop/cmd/nostop-vet",
		"nostop", // root package exists only as its bench _test files
	} {
		pkg, ok := byPath[path]
		if !ok {
			t.Errorf("module load missing package %s", path)
			continue
		}
		if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
			t.Errorf("%s loaded without types or files", path)
		}
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].Path >= pkgs[i].Path {
			t.Fatalf("packages not sorted: %s before %s", pkgs[i-1].Path, pkgs[i].Path)
		}
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("testdata package leaked into module load: %s", p.Path)
		}
	}
}

// TestRepoIsContractClean is the acceptance gate, in-process: the full
// analyzer suite over the whole module (tests included) under the default
// allowlists must report nothing. This is exactly what cmd/nostop-vet runs,
// so `go test ./...` fails the moment a wall-clock read, stray rand import,
// unsorted map iteration, float == guard, or goroutine slips into the
// simulation.
func TestRepoIsContractClean(t *testing.T) {
	pkgs := loadRepo(t, true)
	diags := analysis.Check(pkgs, analysis.All(), analysis.DefaultConfig())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
