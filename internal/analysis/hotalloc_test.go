package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, "hotalloc", nil)
}

// TestHotAllocKernelScope loads the same alloc-heavy hotpath fixture under
// different import paths and checks DefaultConfig's fence: inside
// nostop/internal/... the allocations are findings, while the identical code
// in a command or the module root passes (binaries are off the 0-alloc
// budget).
func TestHotAllocKernelScope(t *testing.T) {
	cfg := analysis.DefaultConfig()
	cases := []struct {
		path string
		want bool // true: findings expected
	}{
		{"nostop/internal/sim", true},
		{"nostop/internal/broker", true},
		{"nostop/cmd/nostop-sim", false},
		{"nostop", false},
	}
	for _, tc := range cases {
		diags := analysistest.Diagnostics(t, analysis.HotAlloc, "hotalloc", tc.path, cfg)
		if tc.want && len(diags) == 0 {
			t.Errorf("%s: hotpath allocations in a kernel package produced no finding", tc.path)
		}
		if !tc.want && len(diags) != 0 {
			t.Errorf("%s: package outside the kernel fence still flagged: %v", tc.path, diags)
		}
	}
}
