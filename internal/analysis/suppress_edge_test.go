package analysis_test

import (
	"strings"
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

// TestSuppressionEdgeCases pins the exact line coverage of //nostop:allow
// (documented in the package comment of internal/analysis): the comment's
// own line plus the line directly below, nothing further.
//
//  1. An allow above a multi-line expression suppresses only the finding on
//     the expression's first line; a finding on a deeper line stays.
//  2. Two analyzers firing on one line with an allow naming just one of
//     them: only the named analyzer is silenced.
func TestSuppressionEdgeCases(t *testing.T) {
	wallLine := edgeLine(t, "EDGE-WALLCLOCK")
	randLine := edgeLine(t, "EDGE-RANDSOURCE")

	wall := analysistest.Diagnostics(t, analysis.WallClock, "suppress_edge", "fixture/suppress_edge", nil)
	if len(wall) != 1 || wall[0].Pos.Line != wallLine {
		t.Errorf("wallclock: want exactly one finding on the deeper line %d of the multi-line expression, got %v",
			wallLine, wall)
	} else if !strings.Contains(wall[0].Message, "time.Now") {
		t.Errorf("wallclock: finding is not the uncovered time.Now: %v", wall[0])
	}

	rand := analysistest.Diagnostics(t, analysis.RandSource, "suppress_edge", "fixture/suppress_edge", nil)
	if len(rand) != 1 || rand[0].Pos.Line != randLine {
		t.Errorf("randsource: want exactly one finding on line %d (allow names wallclock only), got %v",
			randLine, rand)
	} else if !strings.Contains(rand[0].Message, "rand") {
		t.Errorf("randsource: unexpected finding: %v", rand[0])
	}
}

// edgeLine locates a marker comment in the suppress_edge fixture, so the
// test does not hard-code line numbers.
func edgeLine(t *testing.T, marker string) int {
	t.Helper()
	pkg, err := analysis.LoadDir("testdata/src/suppress_edge", "fixture/suppress_edge")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if strings.Contains(c.Text, marker) {
					return pkg.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	t.Fatalf("no %s marker in suppress_edge fixture", marker)
	return 0
}
