package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags the classic nondeterministic-ordering bug: ranging over a
// map while feeding an order-sensitive sink. Go randomizes map iteration
// order per run, so anything positional or non-commutative built inside such
// a loop differs between identically seeded runs. Order-sensitive sinks:
//
//   - append to a slice (positions depend on visit order) — unless the slice
//     is passed to sort.* / slices.* later in the same block, the sanctioned
//     collect-then-sort idiom;
//   - writing output (fmt.Print/Fprint families, Write*/Encode methods);
//   - string concatenation with +=;
//   - floating-point accumulation with += / -= / *= / /= (float addition is
//     not associative, so even a "commutative" sum is order-dependent);
//   - channel sends.
//
// Commutative integer reductions, max/min scans with deterministic
// tie-breaks, and map-to-map merges are order-insensitive and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose body appends, writes output, or " +
		"accumulates floats/strings without an intervening sort",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, s := range list {
				if labeled, ok := s.(*ast.LabeledStmt); ok {
					s = labeled.Stmt
				}
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !isMap(pass.TypesInfo.TypeOf(rs.X)) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
}

// stmtList returns the statement list a node carries, so a range statement
// can be inspected together with the statements that follow it.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapSink is one order-sensitive operation found in a map-range body.
type mapSink struct {
	pos  token.Pos
	what string
	// appendTo is the slice object being appended to, when the sink is an
	// append whose ordering a later sort could repair.
	appendTo types.Object
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	sinks := collectSinks(pass, rs.Body)
	for _, s := range sinks {
		if s.appendTo != nil && sortedAfter(pass, rest, s.appendTo) {
			continue // collect-then-sort idiom: order repaired before use
		}
		pass.Reportf(rs.Pos(),
			"map iteration order is nondeterministic and reaches %s; sort the keys first", s.what)
		return // one finding per loop
	}
}

func collectSinks(pass *Pass, body *ast.BlockStmt) []mapSink {
	var sinks []mapSink
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if s, ok := callSink(pass, n); ok {
				sinks = append(sinks, s)
			}
		case *ast.AssignStmt:
			if s, ok := assignSink(pass, n); ok {
				sinks = append(sinks, s)
			}
		case *ast.SendStmt:
			sinks = append(sinks, mapSink{pos: n.Pos(), what: "a channel send"})
		}
		return true
	})
	return sinks
}

func callSink(pass *Pass, call *ast.CallExpr) (mapSink, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			s := mapSink{pos: call.Pos(), what: "an append (element order)"}
			if target, ok := call.Args[0].(*ast.Ident); ok {
				s.appendTo = pass.TypesInfo.ObjectOf(target)
			}
			return s, true
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && sig != nil && sig.Recv() == nil &&
				(hasPrefix(name, "Print") || hasPrefix(name, "Fprint")) {
				return mapSink{pos: call.Pos(), what: "formatted output (line order)"}, true
			}
			if sig != nil && sig.Recv() != nil &&
				(name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" || name == "Encode") {
				return mapSink{pos: call.Pos(), what: fmt.Sprintf("a %s call (output order)", name)}, true
			}
		}
	}
	return mapSink{}, false
}

func assignSink(pass *Pass, assign *ast.AssignStmt) (mapSink, bool) {
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return mapSink{}, false
	}
	if len(assign.Lhs) != 1 {
		return mapSink{}, false
	}
	// Per-key accumulation into another map (dst[k] += v) is order-insensitive:
	// each key folds its own contributions regardless of visit order.
	if idx, ok := assign.Lhs[0].(*ast.IndexExpr); ok && isMap(pass.TypesInfo.TypeOf(idx.X)) {
		return mapSink{}, false
	}
	t := pass.TypesInfo.TypeOf(assign.Lhs[0])
	if t == nil {
		return mapSink{}, false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return mapSink{}, false
	}
	switch {
	case assign.Tok == token.ADD_ASSIGN && basic.Info()&types.IsString != 0:
		return mapSink{pos: assign.Pos(), what: "string concatenation (order-dependent value)"}, true
	case basic.Info()&types.IsFloat != 0:
		return mapSink{pos: assign.Pos(), what: "floating-point accumulation (addition is not associative)"}, true
	}
	return mapSink{}, false
}

// sortedAfter reports whether a later statement in the same block passes obj
// to a sort.* or slices.* function, which repairs append ordering.
func sortedAfter(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
