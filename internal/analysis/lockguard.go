package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces documented lock discipline. A struct field annotated
//
//	comp engine.Component // guarded by mu
//
// names a sibling sync.Mutex/RWMutex field; every read or write of the
// annotated field must happen while that mutex is held *on the same base
// expression* (p.comp requires p.mu to be held). The tracking is
// intra-function, flow-ordered, and conservative: branches and loop bodies
// inherit the held set but do not leak acquisitions out, function literals
// start with an empty held set (a closure may run anywhere), and a deferred
// Unlock keeps the lock held to the end of the function.
//
// Escape hatches: functions named New*/new* (constructors publish the value
// before it is shared), a //nostop:allow lockguard in a function's doc
// comment (for whole functions that run before or outside sharing, e.g.
// sim-mode paths on the single-threaded event loop), and line-level
// //nostop:allow lockguard comments for individual accesses.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated '// guarded by <mu>' may only be accessed while the " +
		"named sibling mutex is held on the same receiver",
	SkipTestFiles: true,
	Run:           runLockGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runLockGuard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
				continue // constructor escape hatch
			}
			if funcLevelAllow(fd, pass.Analyzer.Name) {
				continue
			}
			w := &lockWalker{pass: pass, guards: guards}
			w.block(fd.Body.List, map[string]bool{})
		}
	}
}

// collectGuards maps each annotated field object to the name of its guarding
// mutex field.
func collectGuards(pass *Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				for _, id := range field.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardName(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if group == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockWalker walks statements in source order, tracking which mutexes are
// held as a set of rendered expressions ("p.mu", "c.procs.mu", ...).
type lockWalker struct {
	pass   *Pass
	guards map[*types.Var]string
}

func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

// copyHeld gives branches their own view: acquisitions inside a branch are
// visible within it but never leak past the join point.
func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(x.List, held)
	case *ast.ExprStmt:
		if mu, op, ok := lockCall(w.pass.TypesInfo, x.X); ok {
			switch op {
			case "Lock", "RLock":
				held[mu] = true
			case "Unlock", "RUnlock":
				delete(held, mu)
			}
			return
		}
		w.expr(x.X, held)
	case *ast.DeferStmt:
		if _, op, ok := lockCall(w.pass.TypesInfo, x.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // deferred unlock: lock stays held to function end
		}
		w.expr(x.Call.Fun, map[string]bool{}) // deferred body runs later
		for _, a := range x.Call.Args {
			w.expr(a, held)
		}
	case *ast.GoStmt:
		w.expr(x.Call.Fun, map[string]bool{}) // goroutine body runs concurrently
		for _, a := range x.Call.Args {
			w.expr(a, held)
		}
	case *ast.IfStmt:
		w.stmt(x.Init, held)
		w.expr(x.Cond, held)
		w.stmt(x.Body, copyHeld(held))
		w.stmt(x.Else, copyHeld(held))
	case *ast.ForStmt:
		w.stmt(x.Init, held)
		if x.Cond != nil {
			w.expr(x.Cond, held)
		}
		body := copyHeld(held)
		w.stmt(x.Body, body)
		w.stmt(x.Post, body)
	case *ast.RangeStmt:
		w.expr(x.X, held)
		w.stmt(x.Body, copyHeld(held))
	case *ast.SwitchStmt:
		w.stmt(x.Init, held)
		if x.Tag != nil {
			w.expr(x.Tag, held)
		}
		for _, c := range x.Body.List {
			w.block(c.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		w.stmt(x.Init, held)
		w.stmt(x.Assign, held)
		for _, c := range x.Body.List {
			w.block(c.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			sub := copyHeld(held)
			w.stmt(cc.Comm, sub)
			w.block(cc.Body, sub)
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.expr(e, held)
		}
		for _, e := range x.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(x.X, held)
	case *ast.SendStmt:
		w.expr(x.Chan, held)
		w.expr(x.Value, held)
	case *ast.LabeledStmt:
		w.stmt(x.Stmt, held)
	}
}

// expr checks every guarded-field access inside e against the held set.
// Function literals are re-analyzed with an empty held set.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body.List, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			sel, ok := w.pass.TypesInfo.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			mu, guarded := w.guards[field]
			if !guarded {
				return true
			}
			need := types.ExprString(x.X) + "." + mu
			if !held[need] {
				w.pass.Reportf(x.Sel.Pos(),
					"field %s is guarded by %s but accessed without holding it",
					x.Sel.Name, need)
			}
		}
		return true
	})
}

// lockCall recognizes <expr>.<mu>.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the rendered mutex expression and
// the operation name.
func lockCall(info *types.Info, e ast.Expr) (mu, op string, ok bool) {
	call, isCall := unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	fun, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch fun.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okType := info.Types[fun.X]
	if !okType || tv.Type == nil || !isSyncMutex(tv.Type) {
		return "", "", false
	}
	return types.ExprString(fun.X), fun.Sel.Name, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
