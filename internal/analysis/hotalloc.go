package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc keeps the zero-allocation kernel honest at vet time. Functions
// annotated //nostop:hotpath in their doc comment — and every same-package
// function they transitively call — are rejected for allocation-shaped
// constructs: composite literals whose address is taken, map and slice
// literals, new/make, closure and bound-method-value creation, interface
// boxing at call sites, implicit variadic slices, string concatenation in
// loops, map iteration, and append growth inside loops. The AllocsPerRun
// budget tests catch a regression after it lands; this pass rejects the
// shape of the regression before it runs.
//
// The analyzer is deliberately conservative: some flagged constructs are
// stack-allocated in practice (a non-escaping closure, an append into a
// pooled buffer). Those carry a line-level //nostop:allow hotalloc with a
// reason, which doubles as documentation of why the allocation is
// acceptable. A //nostop:allow hotalloc in a function's *doc comment*
// exempts the whole function and stops hot-path propagation through it —
// the escape hatch for opt-in cold branches such as trace emission.
// Appends to []byte are exempt wholesale: amortized byte-buffer encoding
// is the kernel's own pooled idiom.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "reject allocation-shaped constructs in //nostop:hotpath functions and " +
		"their same-package callees; the 0-alloc kernel's contract at vet time",
	SkipTestFiles: true,
	Run:           runHotAlloc,
}

const hotpathMarker = "//nostop:hotpath"

// hasMarker reports whether the doc comment group carries the given
// //nostop: marker as a standalone comment line.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text, ok := strings.CutPrefix(c.Text, marker); ok {
			if text == "" || text[0] == ' ' || text[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// funcLevelAllow reports whether fn's doc comment carries a
// //nostop:allow naming the analyzer (or "all"): the whole function is
// exempt from that analyzer.
func funcLevelAllow(fd *ast.FuncDecl, analyzer string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text, ok := strings.CutPrefix(c.Text, allowPrefix)
		if !ok {
			continue
		}
		names, _, _ := strings.Cut(text, "--")
		for _, name := range strings.FieldsFunc(names, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		}) {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if hasMarker(fd.Doc, hotpathMarker) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	// Propagate hot-path status through the same-package call graph: a
	// function referenced (called, or taken as a func value) from a hot
	// function runs on the hot path too. via records how each function
	// became hot, for the diagnostic message.
	via := map[*types.Func]string{}
	var hot []*types.Func // every hot function, in discovery order
	for _, r := range roots {
		if _, ok := via[r]; !ok {
			via[r] = ""
			hot = append(hot, r)
		}
	}
	for i := 0; i < len(hot); i++ {
		fn := hot[i]
		fd := decls[fn]
		if funcLevelAllow(fd, pass.Analyzer.Name) {
			continue // exempt functions do not propagate either
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var id *ast.Ident
			switch x := n.(type) {
			case *ast.Ident:
				id = x
			case *ast.SelectorExpr:
				id = x.Sel
			default:
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, ok := decls[callee]; !ok {
				return true
			}
			if _, seen := via[callee]; !seen {
				via[callee] = fn.Name()
				hot = append(hot, callee)
			}
			return true
		})
	}

	// Deterministic report order: the sink sorts by position, but walk
	// functions in source order anyway so message construction is stable.
	sortFuncsByPos(pass, hot, decls)
	for _, fn := range hot {
		fd := decls[fn]
		if funcLevelAllow(fd, pass.Analyzer.Name) {
			continue
		}
		suffix := ""
		if v := via[fn]; v != "" {
			suffix = " (hot path via " + v + ")"
		}
		checkHotFunc(pass, fd, suffix)
	}
}

func sortFuncsByPos(pass *Pass, fns []*types.Func, decls map[*types.Func]*ast.FuncDecl) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && decls[fns[j]].Pos() < decls[fns[j-1]].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

// checkHotFunc reports every allocation-shaped construct in one hot function.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl, suffix string) {
	info := pass.TypesInfo

	// Pre-collect loop body spans so the loop-sensitive checks (string
	// concatenation, append growth) know their context.
	var loops []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, l.Body)
		case *ast.RangeStmt:
			loops = append(loops, l.Body)
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				return true
			}
		}
		return false
	}

	// callFuns marks selector expressions that are the function operand of
	// a call, so the bound-method-value check only fires on method values
	// that escape as closures.
	callFuns := map[ast.Expr]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&%s composite literal allocates in hot path%s",
						litName(lit), suffix)
				}
			}

		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(x.Pos(), "map literal allocates in hot path%s", suffix)
				case *types.Slice:
					pass.Reportf(x.Pos(), "slice literal allocates its backing array in hot path%s", suffix)
				}
			}

		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal allocates a closure in hot path%s", suffix)

		case *ast.SelectorExpr:
			if callFuns[x] {
				return true
			}
			if s, ok := info.Selections[x]; ok && s.Kind() == types.MethodVal {
				pass.Reportf(x.Pos(), "bound method value %s allocates a closure in hot path%s",
					x.Sel.Name, suffix)
			}

		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x.X) && inLoop(x.Pos()) {
				pass.Reportf(x.Pos(), "string concatenation in a loop allocates in hot path%s", suffix)
			}

		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) && inLoop(x.Pos()) {
				pass.Reportf(x.Pos(), "string concatenation in a loop allocates in hot path%s", suffix)
			}

		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "map iteration in hot path%s", suffix)
				}
			}

		case *ast.CallExpr:
			callFuns[unparen(x.Fun)] = true
			checkHotCall(pass, info, x, inLoop, suffix)
		}
		return true
	})
}

// checkHotCall handles the call-shaped allocation patterns: new/make/append
// builtins, conversions to interface types, interface boxing of arguments,
// and implicit variadic slices.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, inLoop func(token.Pos) bool, suffix string) {
	fun := unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				pass.Reportf(call.Pos(), "new(...) allocates in hot path%s", suffix)
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot path%s", suffix)
			case "append":
				if inLoop(call.Pos()) && !isByteSlice(info, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"append inside a loop grows without preallocation in hot path%s", suffix)
				}
			}
			return
		}
	}

	// Conversion T(x): boxing when T is an interface type.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s boxes (allocates) in hot path%s",
				types.TypeString(tv.Type, nil), suffix)
		}
		return
	}

	sig, ok := funcSignature(info, fun)
	if !ok {
		return
	}
	params := sig.Params()
	nparams := params.Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= nparams-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			if sl, ok := params.At(nparams - 1).Type().(*types.Slice); ok {
				param = sl.Elem()
			}
		case i < nparams:
			param = params.At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		if boxes(info, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into interface %s in hot path%s",
				types.TypeString(param, nil), suffix)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > nparams-1 {
		pass.Reportf(call.Pos(), "implicit variadic slice allocates in hot path%s", suffix)
	}
}

// boxes reports whether passing arg to an interface-typed slot allocates:
// the static type is concrete and not pointer-shaped, and the value is not
// a compile-time constant (constants box from static storage).
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	t := tv.Type
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func funcSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func litName(lit *ast.CompositeLit) string {
	switch t := lit.Type.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return "composite"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
