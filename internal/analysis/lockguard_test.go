package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, analysis.LockGuard, "lockguard", nil)
}

// TestLockGuardRunsEverywhere: lockguard is opt-in by annotation, so
// DefaultConfig applies it to every package — commands included.
func TestLockGuardRunsEverywhere(t *testing.T) {
	cfg := analysis.DefaultConfig()
	for _, path := range []string{"nostop/internal/service", "nostop/cmd/nostop-listen", "nostop"} {
		diags := analysistest.Diagnostics(t, analysis.LockGuard, "lockguard", path, cfg)
		if len(diags) == 0 {
			t.Errorf("%s: guarded-field violations produced no finding", path)
		}
	}
}
