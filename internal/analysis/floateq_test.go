package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, analysis.FloatEq, "floateq", nil)
}
