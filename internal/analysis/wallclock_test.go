package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysis.WallClock, "wallclock", nil)
}
