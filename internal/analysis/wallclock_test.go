package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, analysis.WallClock, "wallclock", nil)
}

// TestWallClockServiceAllowlist loads the same wall-clock-reading fixture
// under different import paths and checks DefaultConfig's verdicts: the
// service layer (real deadlines and pacers behind its Timebase seam) is
// exempt, while identical code in any other sim-core package — including a
// sibling of service — still fails nostop-vet.
func TestWallClockServiceAllowlist(t *testing.T) {
	cfg := analysis.DefaultConfig()
	cases := []struct {
		path string
		want bool // true: findings expected
	}{
		{"nostop/internal/service", false},
		{"nostop/internal/service/rpc", false}, // subtree pattern covers nested packages
		{"nostop/internal/engine", true},
		{"nostop/internal/core", true},
		{"nostop/internal/sim", true},
		{"nostop/internal/servicex", true}, // prefix must not leak past the path boundary
	}
	for _, tc := range cases {
		diags := analysistest.Diagnostics(t, analysis.WallClock, "wallclock", tc.path, cfg)
		if tc.want && len(diags) == 0 {
			t.Errorf("%s: wall-clock read in a sim-core package produced no finding", tc.path)
		}
		if !tc.want && len(diags) != 0 {
			t.Errorf("%s: allowlisted service package still flagged: %v", tc.path, diags)
		}
	}
}
