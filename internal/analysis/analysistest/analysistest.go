// Package analysistest runs a determinism-contract analyzer over a fixture
// package and checks its findings against expectations embedded in the
// fixture source, in the style of golang.org/x/tools/go/analysis/analysistest
// (rebuilt on the standard library; this repository has no dependencies).
//
// A fixture lives in testdata/src/<name>/ relative to the calling test's
// package directory. Every line that must produce a finding carries a
// trailing comment of the form
//
//	// want "regexp"
//
// where the quoted text is a regular expression (used verbatim, no string
// unescaping) matched against the diagnostic message. Lines without a want
// comment must produce no finding.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"nostop/internal/analysis"
)

// Run loads testdata/src/<fixture> as import path "fixture/<fixture>", runs
// the analyzer under cfg (nil: everywhere, empty allowlists), and reports any
// mismatch between findings and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixture string, cfg *analysis.Config) {
	t.Helper()
	diags := Diagnostics(t, a, fixture, "fixture/"+fixture, cfg)
	pkg := load(t, fixture, "fixture/"+fixture)
	wants := parseWants(t, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no finding matched want %q", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

// Diagnostics runs the analyzer over the fixture loaded under importPath and
// returns its findings without checking want comments. Tests use it to probe
// the package-allowlist paths, where the same fixture must yield different
// findings under different configs.
func Diagnostics(t *testing.T, a *analysis.Analyzer, fixture, importPath string, cfg *analysis.Config) []analysis.Diagnostic {
	t.Helper()
	return analysis.Check([]*analysis.Package{load(t, fixture, importPath)}, []*analysis.Analyzer{a}, cfg)
}

func load(t *testing.T, fixture, importPath string) *analysis.Package {
	t.Helper()
	pkg, err := analysis.LoadDir(filepath.Join("testdata", "src", fixture), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	return pkg
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func parseWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				wants = append(wants, parseComment(t, pkg.Fset, c)...)
			}
		}
	}
	return wants
}

func parseComment(t *testing.T, fset *token.FileSet, c *ast.Comment) []want {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	var wants []want
	for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
		rx, err := regexp.Compile(q[1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, q[1], err)
		}
		wants = append(wants, want{file: pos.Filename, line: pos.Line, rx: rx})
	}
	if len(wants) == 0 {
		t.Fatalf("%s: want comment with no quoted regexp: %s", pos, strings.TrimSpace(c.Text))
	}
	return wants
}
