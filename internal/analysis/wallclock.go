package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock bans reading the wall clock inside the simulation. Every instant
// an internal package observes must come from the sim.Clock so a seeded run
// replays identically; time.Duration values and arithmetic stay legal.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "ban time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker/AfterFunc " +
		"in internal packages; all time flows through the sim.Clock",
	Run: runWallClock,
}

// bannedTimeFuncs are the package-level functions of package time that read
// or wait on the wall clock. Methods named Now/After on other types (notably
// sim.Clock) resolve to different objects and are untouched.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallClock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !bannedTimeFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; schedule on the sim.Clock (virtual time) instead", fn.Name())
			return true
		})
	}
}
