package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsContract pins the two conventions the observability layer's stability
// depends on:
//
//  1. Metric and span names are compile-time constants. The metrics registry
//     and trace encoder key series by name; a fmt.Sprintf-derived name turns
//     a fixed-cardinality series set into an unbounded one (one series per
//     batch ID is a cardinality bomb in any real scrape pipeline). Call
//     sites on metrics.Registry (Counter/Gauge/Histogram) and
//     tracing.Tracer (Span/Instant/Counter) must pass names whose value the
//     compiler can fold. Deliberately dynamic names — bounded enums such as
//     a fault kind — carry a //nostop:allow obscontract with the bound.
//
//  2. Observer implementations are nil-safe. The engine hands *obsState to
//     the broker as a possibly-nil interface value; every pointer-receiver
//     method of a type implementing an *Observer interface must therefore
//     begin with a nil-receiver guard (`if o == nil { return }`) so a
//     disabled observer stays a cheap no-op instead of a panic.
//
// The receiver match is by type name (Registry, Tracer) and method name:
// the analyzer is a repo contract, not a general library, and the fixture
// packages must be loadable without importing the real metrics/tracing
// packages.
var ObsContract = &Analyzer{
	Name: "obscontract",
	Doc: "metric/span names must be compile-time constants and Observer " +
		"implementations must keep nil-safe receivers",
	SkipTestFiles: true,
	Run:           runObsContract,
}

// obsNameArgs maps receiver type name -> method -> index of the name
// argument that must be constant.
var obsNameArgs = map[string]map[string]int{
	"Registry": {"Counter": 0, "Gauge": 0, "Histogram": 0},
	"Tracer":   {"Span": 3, "Instant": 3, "Counter": 1},
}

func runObsContract(pass *Pass) {
	ifaces := observerInterfaces(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				checkNilSafeReceiver(pass, fd, ifaces)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkConstantName(pass, call)
			return true
		})
	}
}

// checkConstantName flags Registry/Tracer name arguments the compiler cannot
// fold to a constant.
func checkConstantName(pass *Pass, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recvName := namedRecvName(sig.Recv().Type())
	methods, ok := obsNameArgs[recvName]
	if !ok {
		return
	}
	argIdx, ok := methods[fn.Name()]
	if !ok || argIdx >= len(call.Args) {
		return
	}
	arg := call.Args[argIdx]
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return // compile-time constant: fixed cardinality
	}
	pass.Reportf(arg.Pos(),
		"%s.%s name must be a compile-time constant (metric/span cardinality contract)",
		recvName, fn.Name())
}

func namedRecvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// observerInterfaces collects every interface type named "Observer" (or
// ending in "Observer") visible to the package: its own scope plus its
// direct imports.
func observerInterfaces(pass *Pass) []*types.Interface {
	var out []*types.Interface
	collect := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			if !strings.HasSuffix(name, "Observer") {
				continue
			}
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if it, ok := tn.Type().Underlying().(*types.Interface); ok {
				out = append(out, it)
			}
		}
	}
	collect(pass.Pkg.Scope())
	for _, imp := range pass.Pkg.Imports() {
		collect(imp.Scope())
	}
	return out
}

// checkNilSafeReceiver requires pointer-receiver methods that satisfy an
// Observer interface to start with a nil-receiver guard.
func checkNilSafeReceiver(pass *Pass, fd *ast.FuncDecl, ifaces []*types.Interface) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
		return
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return // unnamed receiver cannot be dereferenced: trivially nil-safe
	}
	recv, ok := pass.TypesInfo.Defs[names[0]].(*types.Var)
	if !ok {
		return
	}
	if _, isPtr := recv.Type().(*types.Pointer); !isPtr {
		return // value receivers copy; a nil pointer never reaches them
	}
	method := fd.Name.Name
	implements := false
	for _, it := range ifaces {
		if !interfaceHasMethod(it, method) {
			continue
		}
		if types.Implements(recv.Type(), it) {
			implements = true
			break
		}
	}
	if !implements {
		return
	}
	if hasNilGuard(names[0].Name, fd.Body) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"Observer method %s must begin with a nil-receiver guard (a disabled observer is a nil %s)",
		method, types.TypeString(recv.Type(), nil))
}

func interfaceHasMethod(it *types.Interface, name string) bool {
	for i := 0; i < it.NumMethods(); i++ {
		if it.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// hasNilGuard reports whether body is empty or starts with
// `if <recv> == nil { ... return ... }` (possibly inside a larger ||
// condition).
func hasNilGuard(recv string, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	if !condChecksNil(ifs.Cond, recv) {
		return false
	}
	for _, s := range ifs.Body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func condChecksNil(cond ast.Expr, recv string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op.String() != "==" {
			return true
		}
		if isIdentOrNil(b.X, recv) && isNil(b.Y) || isNil(b.X) && isIdentOrNil(b.Y, recv) {
			found = true
		}
		return !found
	})
	return found
}

func isIdentOrNil(e ast.Expr, name string) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
