package analysis_test

import (
	"go/token"
	"reflect"
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

// TestDefaultConfigScopes pins the repository's determinism contract: which
// analyzer runs where.
func TestDefaultConfigScopes(t *testing.T) {
	cfg := analysis.DefaultConfig()
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"wallclock", "nostop/internal/engine", true},
		{"wallclock", "nostop/internal/analysis", true},
		{"wallclock", "nostop/internal/stats_test", true}, // external test packages inherit the prefix
		{"wallclock", "nostop/cmd/nostop-sim", false},     // binaries talk to humans in wall time
		{"wallclock", "nostop/examples/quickstart", false},
		{"wallclock", "nostop", false},

		{"floateq", "nostop/internal/core", true},
		{"floateq", "nostop/internal/spsa", true},
		{"floateq", "nostop/internal/engine", true},
		{"floateq", "nostop/internal/stats", false},
		{"floateq", "nostop/internal/linalg", false},

		{"simgoroutine", "nostop/internal/sim", true},
		{"simgoroutine", "nostop/internal/faults", true},
		{"simgoroutine", "nostop/internal/listener", false}, // allowlisted: serves concurrent readers
		{"simgoroutine", "nostop/internal/listener_test", false},
		{"simgoroutine", "nostop/cmd/nostop-listen", false},

		{"randsource", "nostop/internal/rng", true}, // global-func ban still applies inside rng
		{"randsource", "nostop/cmd/nostop-chaos", true},
		{"maporder", "nostop", true},
		{"maporder", "nostop/cmd/nostop-bench", true},

		{"hotalloc", "nostop/internal/sim", true},
		{"hotalloc", "nostop/internal/engine", true},
		{"hotalloc", "nostop/cmd/nostop-sim", false}, // binaries are off the 0-alloc budget
		{"hotalloc", "nostop", false},

		{"obscontract", "nostop/internal/engine", true},
		{"obscontract", "nostop/internal/service", true},
		{"obscontract", "nostop/cmd/nostop-bench", false},

		{"lockguard", "nostop/internal/service", true}, // opt-in by annotation: runs everywhere
		{"lockguard", "nostop/cmd/nostop-listen", true},
		{"lockguard", "nostop", true},
	}
	for _, c := range cases {
		if got := cfg.Applies(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
	if !analysis.MatchAny("nostop/internal/rng", cfg.List("randsource.imports")) {
		t.Error("internal/rng must be on the randsource import allowlist")
	}
	if analysis.MatchAny("nostop/internal/spsa", cfg.List("randsource.imports")) {
		t.Error("internal/spsa must not be on the randsource import allowlist")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		path, pat string
		want      bool
	}{
		{"nostop/internal/core", "nostop/internal/...", true},
		{"nostop/internal", "nostop/internal/...", true},
		{"nostop/internals", "nostop/internal/...", false},
		{"nostop/internal/core", "nostop/internal/core", true},
		{"nostop/internal/core/sub", "nostop/internal/core", false},
		{"nostop/internal/core/sub", "nostop/internal/core/...", true},
	}
	for _, c := range cases {
		if got := analysis.MatchAny(c.path, []string{c.pat}); got != c.want {
			t.Errorf("MatchAny(%q, %q) = %v, want %v", c.path, c.pat, got, c.want)
		}
	}
}

// TestSuppressionMultipleAnalyzers checks that one //nostop:allow comment can
// name several analyzers, covering the fixture's doubly offending line.
func TestSuppressionMultipleAnalyzers(t *testing.T) {
	for _, a := range []*analysis.Analyzer{analysis.WallClock, analysis.RandSource} {
		diags := analysistest.Diagnostics(t, a, "suppress_multi", "fixture/suppress_multi", nil)
		if len(diags) != 1 {
			t.Errorf("%s: want exactly the unsuppressed control finding, got %v", a.Name, diags)
			continue
		}
		if diags[0].Pos.Line != controlLine(t, diags[0].Pos.Filename) {
			t.Errorf("%s: finding at line %d, want the CONTROL-marked line", a.Name, diags[0].Pos.Line)
		}
	}
}

// controlLine finds the fixture line marked CONTROL, so the test does not
// hard-code line numbers.
func controlLine(t *testing.T, filename string) int {
	t.Helper()
	pkg, err := analysis.LoadDir("testdata/src/suppress_multi", "fixture/suppress_multi")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if pos := pkg.Fset.Position(c.Pos()); pos.Filename == filename {
					if containsControl(c.Text) {
						return pos.Line
					}
				}
			}
		}
	}
	t.Fatalf("no CONTROL marker in %s", filename)
	return 0
}

func containsControl(s string) bool {
	for i := 0; i+7 <= len(s); i++ {
		if s[i:i+7] == "CONTROL" {
			return true
		}
	}
	return false
}

// TestCheckOutputDeterministic runs the full suite over a fixture twice and
// requires identical, position-sorted output — the property nostop-vet's CI
// gate depends on.
func TestCheckOutputDeterministic(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/src/suppress_multi", "fixture/suppress_multi")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []analysis.Diagnostic {
		return analysis.Check([]*analysis.Package{pkg}, analysis.All(), nil)
	}
	a, b := run(), run()
	if len(a) != 2 {
		t.Fatalf("want the 2 CONTROL findings (wallclock + randsource), got %v", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs differ:\n%v\n%v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if later(a[i-1].Pos, a[i].Pos) {
			t.Fatalf("diagnostics not position-sorted: %v before %v", a[i-1], a[i])
		}
	}
}

func later(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename > b.Filename
	}
	if a.Line != b.Line {
		return a.Line > b.Line
	}
	return a.Column > b.Column
}
