package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestSimGoroutine(t *testing.T) {
	analysistest.Run(t, analysis.SimGoroutine, "simgoroutine", nil)
}

// TestSimGoroutineFleetAllowlist loads the same goroutine-launching fixture
// under different import paths and checks DefaultConfig's verdicts: a
// goroutine in a sim-core package is still a finding, while the identical
// code in the exempted fleet orchestration packages passes.
func TestSimGoroutineFleetAllowlist(t *testing.T) {
	cfg := analysis.DefaultConfig()
	cases := []struct {
		path string
		want bool // true: findings expected
	}{
		{"nostop/internal/core", true},
		{"nostop/internal/engine", true},
		{"nostop/internal/fleet", false},
		{"nostop/cmd/nostop-fleet", false},
	}
	for _, tc := range cases {
		diags := analysistest.Diagnostics(t, analysis.SimGoroutine, "simgoroutine", tc.path, cfg)
		if tc.want && len(diags) == 0 {
			t.Errorf("%s: goroutine in a sim-core package produced no finding", tc.path)
		}
		if !tc.want && len(diags) != 0 {
			t.Errorf("%s: allowlisted fleet package still flagged: %v", tc.path, diags)
		}
	}
}
