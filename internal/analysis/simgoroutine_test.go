package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestSimGoroutine(t *testing.T) {
	analysistest.Run(t, analysis.SimGoroutine, "simgoroutine", nil)
}
