package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// RandSource keeps all randomness flowing through named rng.Streams. Two
// rules:
//
//  1. Importing math/rand (v1 or v2) or crypto/rand is banned outside the
//     packages on the "randsource.imports" allowlist (internal/rng, which
//     owns the seeded streams).
//  2. The implicitly seeded package-level functions of those packages
//     (rand.Intn, rand.Shuffle, crypto/rand.Read, ...) are banned everywhere,
//     allowlist included: they draw from a process-global source the seed
//     plumbing cannot reach. Constructors (rand.New, rand.NewSource, ...)
//     remain legal inside the allowlist.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc: "ban math/rand and crypto/rand imports outside internal/rng, and the " +
		"global (implicitly seeded) rand functions everywhere",
	Run: runRandSource,
}

var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runRandSource(pass *Pass) {
	importAllowed := MatchAny(pass.Path, pass.List("imports"))
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randPackages[p] {
				continue
			}
			if !importAllowed {
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/rng; draw randomness from a named rng.Stream", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPackages[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand etc. use an explicit source
			}
			if strings.HasPrefix(fn.Name(), "New") {
				return true // constructors take an explicit seed/source
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the global rand source; use a seeded rng.Stream", fn.Pkg().Path(), fn.Name())
			return true
		})
	}
}
