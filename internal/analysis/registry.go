package analysis

// All returns every contract analyzer, in report order: the five
// determinism passes from PR 2 plus the hot-path allocation, lock-discipline
// and observer-contract passes.
func All() []*Analyzer {
	return []*Analyzer{FloatEq, HotAlloc, LockGuard, MapOrder, ObsContract, RandSource, SimGoroutine, WallClock}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
