package analysis

// All returns every determinism-contract analyzer, in report order.
func All() []*Analyzer {
	return []*Analyzer{FloatEq, MapOrder, RandSource, SimGoroutine, WallClock}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
