package analysis_test

import (
	"testing"

	"nostop/internal/analysis"
	"nostop/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder", nil)
}
