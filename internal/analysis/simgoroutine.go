package analysis

import (
	"go/ast"
	"strconv"
)

// SimGoroutine keeps the simulation single-threaded. The discrete-event
// kernel owes its determinism to one goroutine draining one ordered queue;
// concurrency inside the simulation packages would reintroduce scheduling
// nondeterminism the whole design exists to remove. Concurrency is modelled
// as events, not expressed with goroutines. internal/listener and
// internal/metrics are exempted in DefaultConfig: both serve concurrent
// external readers behind their own locks.
var SimGoroutine = &Analyzer{
	Name: "simgoroutine",
	Doc: "flag go statements and sync/sync-atomic imports in the single-threaded " +
		"simulation packages",
	Run: runSimGoroutine,
}

func runSimGoroutine(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "sync" || p == "sync/atomic" {
				pass.Reportf(imp.Pos(),
					"import of %s in a single-threaded simulation package; model concurrency as events", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"goroutine launched in a single-threaded simulation package; schedule an event on the sim.Clock instead")
			}
			return true
		})
	}
}
