package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags exact float equality steering control flow in the numeric
// decision-making packages. Rounding differences that are harmless in a
// reported metric become divergent execution paths when they guard a branch —
// exactly the kind of hair-trigger nondeterminism that survives a fixed seed
// but not a compiler or libm change. Comparisons in plain expressions (e.g.
// assertions building a bool value) are left alone, and tests are skipped:
// they may legitimately assert exact values.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point operands in if/for/switch conditions; " +
		"compare through internal/approx instead",
	SkipTestFiles: true,
	Run:           runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				floatEqInCond(pass, n.Cond)
			case *ast.ForStmt:
				floatEqInCond(pass, n.Cond)
			case *ast.SwitchStmt:
				if n.Tag != nil {
					if isFloat(pass.TypesInfo.TypeOf(n.Tag)) {
						pass.Reportf(n.Tag.Pos(),
							"switch on a floating-point value compares with ==; use approx.Eq in explicit conditions")
					}
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						floatEqInCond(pass, e)
					}
				}
			}
			return true
		})
	}
}

// floatEqInCond reports every float ==/!= nested anywhere in the condition
// expression (through &&, ||, !, and parentheses).
func floatEqInCond(pass *Pass, cond ast.Expr) {
	if cond == nil {
		return
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if isFloat(pass.TypesInfo.TypeOf(b.X)) || isFloat(pass.TypesInfo.TypeOf(b.Y)) {
			pass.Reportf(b.Pos(),
				"exact floating-point %s in a control-flow condition; use approx.Eq/approx.Zero (epsilon compare)", b.Op)
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
