// Package analysis implements the nostop determinism contract as a suite of
// static analyzers, plus the small framework that runs them.
//
// The simulator's headline guarantee — a fixed seed reproduces byte-identical
// batch histories and fault timelines — is only as strong as the conventions
// the code follows: no wall-clock reads inside the simulation, all randomness
// through named rng.Streams, no ordered output derived from map iteration, no
// exact float comparisons steering control flow, and a single-threaded event
// loop. Each convention is enforced by one analyzer:
//
//	wallclock    — bans time.Now/Since/Sleep/After/... in internal packages
//	randsource   — bans math/rand and crypto/rand imports outside internal/rng
//	               and the global (implicitly seeded) rand functions everywhere
//	maporder     — flags map iteration whose body feeds order-sensitive sinks
//	floateq      — flags ==/!= between floats in control-flow conditions
//	simgoroutine — flags go statements and sync imports in simulation packages
//
// Three further analyzers protect the performance and observability
// contracts layered on top of determinism:
//
//	hotalloc     — rejects allocation-shaped constructs in //nostop:hotpath
//	               functions and their same-package callees
//	lockguard    — fields annotated '// guarded by <mu>' may only be
//	               accessed while the named sibling mutex is held
//	obscontract  — metric/span names must be compile-time constants;
//	               Observer implementations keep nil-safe receivers
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Reportf) but is built on the standard library alone:
// the repository has no external dependencies, and the vet tool must not be
// the first thing to break that.
//
// # Annotation grammar
//
// A finding can be suppressed where the code is deliberately outside the
// contract with a comment on the flagged line or the line above it:
//
//	//nostop:allow <analyzer>[,<analyzer>...] -- <reason>
//
// An allow covers exactly its own source line and the one below it — a
// finding positioned deeper inside a multi-line expression is not covered
// (see TestSuppressionEdgeCases, which pins this). The same comment in a
// function's *doc comment* exempts the whole function for the hotalloc and
// lockguard analyzers; for hotalloc it also stops hot-path propagation
// through that function.
//
// Two marker annotations extend the contract rather than suppress it:
//
//	//nostop:hotpath        (function doc comment) — the function and its
//	                        same-package callees must not allocate
//	// guarded by <mu>      (struct field comment) — accesses require the
//	                        named sibling mutex to be held
//
// Package-level exemptions (e.g. internal/listener may use sync) live in the
// Config allowlists; see DefaultConfig.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant of the determinism contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression comments,
	// and the Config maps.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// SkipTestFiles excludes _test.go files from this analyzer. Tests are
	// allowed exact float assertions, for example, but not wall-clock reads.
	SkipTestFiles bool
	// Run reports findings on the pass's files via pass.Reportf.
	Run func(*Pass)
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path; scope and allowlist decisions key
	// off it.
	Path string

	cfg      *Config
	suppress suppressions
	sink     *[]Diagnostic
}

// Reportf records a finding at pos unless a //nostop:allow comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// List returns the configured package-path allowlist for this analyzer under
// the given key (e.g. the randsource analyzer's "imports" list).
func (p *Pass) List(key string) []string {
	return p.cfg.List(p.Analyzer.Name + "." + key)
}

// A Diagnostic is one finding, addressed by source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the position-first form the CLI prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Check runs the analyzers over the packages under cfg and returns every
// unsuppressed finding in deterministic (position-sorted) order. A nil cfg
// runs every analyzer on every package with empty allowlists.
func Check(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if !cfg.Applies(a.Name, pkg.Path) {
				continue
			}
			files := pkg.Files
			if a.SkipTestFiles {
				files = nonTestFiles(pkg.Fset, files)
			}
			if len(files) == 0 {
				continue
			}
			a.Run(&Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				cfg:       cfg,
				suppress:  sup,
				sink:      &diags,
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by (file, line, column, analyzer, message)
// so repeated runs emit byte-identical reports.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	var out []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// suppressions maps filename -> line -> analyzer names allowed on that line.
// A //nostop:allow comment covers its own line and the line below it, so it
// works both as a trailing comment and on a line of its own above the finding.
type suppressions map[string]map[int][]string

const allowPrefix = "//nostop:allow"

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// Everything after "--" is a free-form reason.
				names, _, _ := strings.Cut(text, "--")
				pos := fset.Position(c.Pos())
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					sup[pos.Filename] = lines
				}
				for _, name := range strings.FieldsFunc(names, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					lines[pos.Line] = append(lines[pos.Line], name)
					lines[pos.Line+1] = append(lines[pos.Line+1], name)
				}
			}
		}
	}
	return sup
}

func (s suppressions) allows(analyzer string, pos token.Position) bool {
	for _, name := range s[pos.Filename][pos.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}
