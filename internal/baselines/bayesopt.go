package baselines

import (
	"errors"
	"fmt"
	"math"
	"time"

	"nostop/internal/engine"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/spsa"
	"nostop/internal/stats"
)

// BOOptions tune the Bayesian-optimization controller.
type BOOptions struct {
	// InitialDesign is the number of quasi-random seeding evaluations
	// before the GP drives the search; 0 means 5.
	InitialDesign int
	// MaxEvaluations stops the search after this many configuration
	// evaluations; 0 means 40.
	MaxEvaluations int
	// MeasureBatches is the per-evaluation measurement window; 0 means 3
	// (same as NoStop, for a fair Fig 8 comparison).
	MeasureBatches int
	// GridSteps is the per-dimension resolution of the EI maximisation
	// grid; 0 means 25.
	GridSteps int
	// Rho is the Eq. 3 penalty coefficient used to score evaluations;
	// 0 means 2 (NoStop's cap, so both tuners chase the same objective).
	Rho float64
	// EIStop pauses the search when the best expected improvement falls
	// below this; 0 means 0.05 seconds.
	EIStop float64
	// DrainThreshold mirrors core.Options.DrainThreshold; 0 means 6.
	DrainThreshold int
	// LengthScale is the GP kernel length scale in normalised units;
	// 0 means 4.
	LengthScale float64
	// Seed drives the initial design; nil means rng.New(7).
	Seed *rng.Stream
}

// Evaluation is one measured configuration.
type Evaluation struct {
	Config engine.Config
	Y      float64 // Eq. 3 objective, seconds
	At     sim.Time
}

// BayesOpt tunes the engine by fitting a GP surrogate over the normalised
// configuration space and applying the expected-improvement maximiser. It
// is the paper's §6.4 comparison: final configurations are comparable to
// SPSA's, but each GP round evaluates only one configuration and the search
// needs more configuration changes and more wall-clock time to settle.
type BayesOpt struct {
	eng  *engine.Engine
	opts BOOptions

	intervalScale spsa.Scale
	execScale     spsa.Scale
	seed          *rng.Stream

	evals    []Evaluation
	current  engine.Config
	procAcc  []float64
	totalAcc []float64
	await    bool
	waited   int
	done     bool
	doneAt   sim.Time
	applied  int
	drains   int
	draining bool
	attached bool
}

// NewBayesOpt builds the controller. Call Attach after the engine starts.
func NewBayesOpt(eng *engine.Engine, opts BOOptions) (*BayesOpt, error) {
	if eng == nil {
		return nil, errors.New("baselines: nil engine")
	}
	if opts.InitialDesign == 0 {
		opts.InitialDesign = 5
	}
	if opts.MaxEvaluations == 0 {
		opts.MaxEvaluations = 40
	}
	if opts.MeasureBatches == 0 {
		opts.MeasureBatches = 3
	}
	if opts.GridSteps == 0 {
		opts.GridSteps = 25
	}
	if opts.Rho == 0 {
		opts.Rho = 2
	}
	if opts.EIStop == 0 {
		opts.EIStop = 0.05
	}
	if opts.DrainThreshold == 0 {
		opts.DrainThreshold = 6
	}
	if opts.LengthScale == 0 {
		opts.LengthScale = 4
	}
	if opts.Seed == nil {
		opts.Seed = rng.New(7)
	}
	if opts.MaxEvaluations < opts.InitialDesign {
		return nil, fmt.Errorf("baselines: MaxEvaluations %d below InitialDesign %d",
			opts.MaxEvaluations, opts.InitialDesign)
	}
	b := eng.ConfigBounds()
	is, err := spsa.NewScale(b.MinInterval.Seconds(), b.MaxInterval.Seconds(), 0, 1)
	if err != nil {
		return nil, err
	}
	es, err := spsa.NewScale(float64(b.MinExecutors), float64(b.MaxExecutors), 0, 1)
	if err != nil {
		return nil, err
	}
	return &BayesOpt{
		eng: eng, opts: opts,
		intervalScale: is, execScale: es,
		seed: opts.Seed.Split("design"),
	}, nil
}

// Attach registers with the engine and applies the first design point.
func (b *BayesOpt) Attach() error {
	if b.attached {
		return errors.New("baselines: already attached")
	}
	b.attached = true
	b.eng.AddListener(engine.ListenerFunc(b.onBatch))
	return b.evaluate(b.designPoint(0))
}

// designPoint returns the i-th quasi-random seeding configuration: a
// stratified sample that covers the box without clustering.
func (b *BayesOpt) designPoint(i int) engine.Config {
	n := b.opts.InitialDesign
	// Stratify the interval axis; jitter the executor axis.
	u := (float64(i) + b.seed.Float64()) / float64(n)
	v := b.seed.Float64()
	return b.fromNorm([]float64{u, v})
}

func (b *BayesOpt) fromNorm(x []float64) engine.Config {
	interval := time.Duration(b.intervalScale.FromNorm(x[0]) * float64(time.Second)).Round(100 * time.Millisecond)
	execs := int(math.Round(b.execScale.FromNorm(x[1])))
	return b.eng.ConfigBounds().Clamp(engine.Config{BatchInterval: interval, Executors: execs})
}

func (b *BayesOpt) toNorm(cfg engine.Config) []float64 {
	return []float64{
		b.intervalScale.ToNorm(cfg.BatchInterval.Seconds()),
		b.execScale.ToNorm(float64(cfg.Executors)),
	}
}

// evaluate applies a configuration and starts measuring it.
func (b *BayesOpt) evaluate(cfg engine.Config) error {
	b.current = cfg
	b.procAcc = b.procAcc[:0]
	b.totalAcc = b.totalAcc[:0]
	b.await = cfg != b.eng.Config()
	b.waited = 0
	b.applied++
	return b.eng.Reconfigure(cfg)
}

func (b *BayesOpt) onBatch(bs engine.BatchStats) {
	if b.done {
		return
	}
	if b.draining {
		if b.eng.QueueLen() == 0 && bs.SchedulingDelay <= bs.Config.BatchInterval {
			b.draining = false
			b.next()
		}
		return
	}
	if b.await {
		if bs.FirstAfterReconfig {
			b.await = false
			return
		}
		b.waited++
		if b.waited < 25 {
			return
		}
		b.await = false
	} else if bs.FirstAfterReconfig {
		return
	}
	b.procAcc = append(b.procAcc, bs.ProcessingTime.Seconds())
	b.totalAcc = append(b.totalAcc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	if q := b.eng.QueueLen(); q > b.opts.DrainThreshold {
		projected := stats.Mean(b.totalAcc) + float64(q)*stats.Mean(b.procAcc)
		b.record(projected)
		b.draining = true
		b.drains++
		b.applied++
		bb := b.eng.ConfigBounds()
		_ = b.eng.Reconfigure(engine.Config{BatchInterval: bb.MaxInterval, Executors: bb.MaxExecutors})
		return
	}
	if len(b.totalAcc) < b.opts.MeasureBatches {
		return
	}
	b.record(stats.Mean(b.totalAcc))
	b.next()
}

// record scores the just-measured configuration with Eq. 3.
func (b *BayesOpt) record(measured float64) {
	interval := b.current.BatchInterval.Seconds()
	y := interval + b.opts.Rho*math.Max(0, measured-interval)
	b.evals = append(b.evals, Evaluation{Config: b.current, Y: y, At: b.eng.Clock().Now()})
}

// next chooses the following configuration: remaining design points first,
// then the EI maximiser; stops at the budget or when EI dries up.
func (b *BayesOpt) next() {
	if len(b.evals) >= b.opts.MaxEvaluations {
		b.finish()
		return
	}
	if len(b.evals) < b.opts.InitialDesign {
		_ = b.evaluate(b.designPoint(len(b.evals)))
		return
	}
	cfg, ei, err := b.propose()
	if err != nil || ei < b.opts.EIStop {
		b.finish()
		return
	}
	_ = b.evaluate(cfg)
}

// propose fits the GP and maximises EI over a grid.
func (b *BayesOpt) propose() (engine.Config, float64, error) {
	xs := make([][]float64, len(b.evals))
	ys := make([]float64, len(b.evals))
	best := math.Inf(1)
	var o stats.Online
	for _, e := range b.evals {
		o.Add(e.Y)
	}
	signal := o.Var()
	if signal < 1 {
		signal = 1
	}
	for i, e := range b.evals {
		xs[i] = b.toNorm(e.Config)
		ys[i] = e.Y
		if e.Y < best {
			best = e.Y
		}
	}
	// Normalised length scale: opts.LengthScale is expressed in the
	// paper's [1,20] scale; our norm space is [0,1], so divide by 19.
	gp, err := NewGP(b.opts.LengthScale/19, signal, math.Max(0.05*signal, 0.25))
	if err != nil {
		return engine.Config{}, 0, err
	}
	if err := gp.Fit(xs, ys); err != nil {
		return engine.Config{}, 0, err
	}
	var bestCfg engine.Config
	bestEI := -1.0
	steps := b.opts.GridSteps
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			x := []float64{float64(i) / float64(steps), float64(j) / float64(steps)}
			ei := gp.ExpectedImprovement(x, best)
			if ei > bestEI {
				bestEI = ei
				bestCfg = b.fromNorm(x)
			}
		}
	}
	return bestCfg, bestEI, nil
}

// finish applies the best observed configuration and stops searching.
func (b *BayesOpt) finish() {
	b.done = true
	b.doneAt = b.eng.Clock().Now()
	if best, ok := b.Best(); ok {
		b.applied++
		_ = b.eng.Reconfigure(best.Config)
	}
}

// Best returns the lowest-objective evaluation so far.
func (b *BayesOpt) Best() (Evaluation, bool) {
	if len(b.evals) == 0 {
		return Evaluation{}, false
	}
	best := b.evals[0]
	for _, e := range b.evals[1:] {
		if e.Y < best.Y {
			best = e
		}
	}
	return best, true
}

// Evaluations returns all measured configurations in order.
func (b *BayesOpt) Evaluations() []Evaluation { return b.evals }

// Done reports whether the search has stopped.
func (b *BayesOpt) Done() bool { return b.done }

// DoneAt returns the virtual time the search stopped (Fig 8 "search time").
func (b *BayesOpt) DoneAt() sim.Time { return b.doneAt }

// ConfigureSteps returns the configuration changes requested (Fig 8).
func (b *BayesOpt) ConfigureSteps() int { return b.applied }

// Drains returns emergency stabilisation episodes.
func (b *BayesOpt) Drains() int { return b.drains }
