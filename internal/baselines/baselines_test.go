package baselines

import (
	"math"
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func newEngine(t *testing.T, mutate func(*engine.Options)) (*sim.Clock, *engine.Engine) {
	t.Helper()
	clock := sim.NewClock()
	opts := engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 150000},
		Seed:     rng.New(21),
		Initial:  engine.Config{BatchInterval: 20 * time.Second, Executors: 10},
	}
	if mutate != nil {
		mutate(&opts)
	}
	eng, err := engine.New(clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return clock, eng
}

// --- GP tests ---

func TestGPValidation(t *testing.T) {
	if _, err := NewGP(0, 1, 1); err == nil {
		t.Error("zero length scale accepted")
	}
	if _, err := NewGP(1, 0, 1); err == nil {
		t.Error("zero signal variance accepted")
	}
	if _, err := NewGP(1, 1, -1); err == nil {
		t.Error("negative noise accepted")
	}
	gp, _ := NewGP(1, 1, 0.01)
	if err := gp.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := gp.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestGPInterpolatesNoiseFree(t *testing.T) {
	gp, _ := NewGP(1.0, 4.0, 1e-6)
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{5, 3, 4, 6}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mean, variance := gp.Predict(x)
		if math.Abs(mean-ys[i]) > 0.01 {
			t.Fatalf("Predict(%v)=%v, want %v", x, mean, ys[i])
		}
		if variance > 0.01 {
			t.Fatalf("variance %v at training point", variance)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	gp, _ := NewGP(0.5, 1.0, 0.01)
	if err := gp.Fit([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	_, vNear := gp.Predict([]float64{0.5})
	_, vFar := gp.Predict([]float64{5})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %v far %v", vNear, vFar)
	}
	// Far from data the posterior reverts to the (centred) prior mean.
	mFar, _ := gp.Predict([]float64{100})
	if math.Abs(mFar-0.5) > 0.05 {
		t.Fatalf("far mean %v, want prior ≈0.5", mFar)
	}
}

func TestGPPriorBeforeFit(t *testing.T) {
	gp, _ := NewGP(1, 2, 0.5)
	mean, variance := gp.Predict([]float64{3})
	if mean != 0 || math.Abs(variance-2.5) > 1e-12 {
		t.Fatalf("prior (%v, %v), want (0, 2.5)", mean, variance)
	}
	if gp.N() != 0 {
		t.Fatal("N before fit")
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	gp, _ := NewGP(1.0, 4.0, 0.01)
	if err := gp.Fit([][]float64{{0}, {2}}, []float64{10, 2}); err != nil {
		t.Fatal(err)
	}
	// EI is non-negative everywhere.
	for x := -1.0; x <= 4; x += 0.25 {
		if ei := gp.ExpectedImprovement([]float64{x}, 2); ei < 0 {
			t.Fatalf("negative EI at %v", x)
		}
	}
	// EI near the worst observed point is lower than near the best.
	eiWorst := gp.ExpectedImprovement([]float64{0}, 2)
	eiBest := gp.ExpectedImprovement([]float64{2.3}, 2)
	if eiBest <= eiWorst {
		t.Fatalf("EI should favour the promising region: best %v worst %v", eiBest, eiWorst)
	}
}

func TestStdNormHelpers(t *testing.T) {
	if math.Abs(stdNormCDF(0)-0.5) > 1e-12 {
		t.Error("CDF(0) != 0.5")
	}
	if math.Abs(stdNormPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("PDF(0) wrong")
	}
	if stdNormCDF(6) < 0.999 || stdNormCDF(-6) > 0.001 {
		t.Error("CDF tails wrong")
	}
}

// --- Bayesian optimization controller ---

func TestBayesOptValidation(t *testing.T) {
	if _, err := NewBayesOpt(nil, BOOptions{}); err == nil {
		t.Error("nil engine accepted")
	}
	_, eng := newEngine(t, nil)
	if _, err := NewBayesOpt(eng, BOOptions{InitialDesign: 10, MaxEvaluations: 5}); err == nil {
		t.Error("budget below design accepted")
	}
}

func TestBayesOptFindsGoodConfig(t *testing.T) {
	clock, eng := newEngine(t, nil)
	bo, err := NewBayesOpt(eng, BOOptions{Seed: rng.New(3), MaxEvaluations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := bo.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(14400)))
	if len(bo.Evaluations()) < 5 {
		t.Fatalf("only %d evaluations", len(bo.Evaluations()))
	}
	best, ok := bo.Best()
	if !ok {
		t.Fatal("no best")
	}
	// The WordCount frontier at 150k rec/s is ≈3-5s; anything ≤ 12s with a
	// small objective means BO found the good region.
	if best.Config.BatchInterval > 12*time.Second {
		t.Fatalf("best config %v far from optimum", best.Config)
	}
	if best.Y > 15 {
		t.Fatalf("best objective %v too large", best.Y)
	}
	if !bo.Done() {
		t.Log("search still running at horizon (allowed but unusual)")
	} else if bo.DoneAt() == 0 {
		t.Fatal("DoneAt not recorded")
	}
	if bo.ConfigureSteps() < len(bo.Evaluations()) {
		t.Fatalf("ConfigureSteps %d below evaluations %d", bo.ConfigureSteps(), len(bo.Evaluations()))
	}
}

func TestBayesOptAttachTwice(t *testing.T) {
	_, eng := newEngine(t, nil)
	bo, _ := NewBayesOpt(eng, BOOptions{})
	if err := bo.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := bo.Attach(); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestBayesOptSystemSurvives(t *testing.T) {
	// Even though BO probes unstable corners, the drain guard must keep
	// the queue bounded.
	clock, eng := newEngine(t, nil)
	bo, _ := NewBayesOpt(eng, BOOptions{Seed: rng.New(9)})
	bo.Attach()
	clock.RunUntil(sim.Time(sec(10800)))
	if q := eng.QueueLen(); q > 12 {
		t.Fatalf("queue %d at horizon", q)
	}
}

// --- Back pressure ---

func TestBackPressureStabilisesOverload(t *testing.T) {
	// Overloaded fixed config: without back pressure the queue diverges
	// (TestUnstableConfigQueueGrows in engine). With it, the rate cap
	// must keep the queue bounded.
	clock, eng := newEngine(t, func(o *engine.Options) {
		o.Workload = workload.NewLogisticRegression()
		o.Trace = ratetrace.Constant{Rate: 10000}
		o.Initial = engine.Config{BatchInterval: 5 * time.Second, Executors: 4}
	})
	bp, err := NewBackPressure(eng, BPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(3600)))
	if q := eng.QueueLen(); q > 8 {
		t.Fatalf("queue %d despite back pressure", q)
	}
	if eng.DroppedByCap() == 0 {
		t.Fatal("back pressure never throttled an overloaded system")
	}
	if bp.Updates() == 0 || bp.Rate() <= 0 {
		t.Fatalf("PID never updated: updates=%d rate=%v", bp.Updates(), bp.Rate())
	}
	// The throttle must be near the system's actual capacity, not the floor.
	if bp.Rate() < 500 {
		t.Fatalf("rate collapsed to %v", bp.Rate())
	}
}

func TestBackPressureDoesNotThrottleStableSystem(t *testing.T) {
	clock, eng := newEngine(t, func(o *engine.Options) {
		o.Initial = engine.Config{BatchInterval: 10 * time.Second, Executors: 16}
	})
	bp, _ := NewBackPressure(eng, BPOptions{})
	bp.Attach()
	clock.RunUntil(sim.Time(sec(1800)))
	// A healthy system processes faster than it ingests, so the PID cap
	// stays above the actual arrival rate and nothing is dropped.
	if dropped := eng.DroppedByCap(); dropped > int64(0.01*150000*1800) {
		t.Fatalf("back pressure dropped %d records from a stable system", dropped)
	}
}

func TestBackPressureValidation(t *testing.T) {
	if _, err := NewBackPressure(nil, BPOptions{}); err == nil {
		t.Error("nil engine accepted")
	}
	_, eng := newEngine(t, nil)
	bp, _ := NewBackPressure(eng, BPOptions{})
	bp.Attach()
	if err := bp.Attach(); err == nil {
		t.Error("double attach accepted")
	}
}

// --- Random search ---

func TestRandomSearchFindsReasonableConfig(t *testing.T) {
	clock, eng := newEngine(t, nil)
	rs, err := NewRandomSearch(eng, RSOptions{Seed: rng.New(17)})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(10800)))
	if !rs.Done() {
		t.Fatalf("random search not done after 3h (%d evals)", len(rs.Evaluations()))
	}
	best, ok := rs.Best()
	if !ok {
		t.Fatal("no best")
	}
	// 20 uniform samples over [1,40]s: expected best near the frontier.
	if best.Y > 25 {
		t.Fatalf("best objective %v suspiciously bad", best.Y)
	}
	// After finishing, the live config must be the best one.
	if eng.Config() != best.Config {
		t.Fatalf("live config %v != best %v", eng.Config(), best.Config)
	}
}

func TestRandomSearchValidation(t *testing.T) {
	if _, err := NewRandomSearch(nil, RSOptions{}); err == nil {
		t.Error("nil engine accepted")
	}
	_, eng := newEngine(t, nil)
	rs, _ := NewRandomSearch(eng, RSOptions{})
	rs.Attach()
	if err := rs.Attach(); err == nil {
		t.Error("double attach accepted")
	}
}

func TestEvaluationObjectiveConsistent(t *testing.T) {
	// All three search baselines score with Eq. 3 (ρ = 2): for a stable
	// evaluation the objective equals the interval.
	clock, eng := newEngine(t, nil)
	rs, _ := NewRandomSearch(eng, RSOptions{Seed: rng.New(29), Evaluations: 8})
	rs.Attach()
	clock.RunUntil(sim.Time(sec(7200)))
	stable := 0
	for _, e := range rs.Evaluations() {
		if math.Abs(e.Y-e.Config.BatchInterval.Seconds()) < 1e-9 {
			stable++
		}
	}
	if stable == 0 {
		t.Fatal("no evaluation scored as stable; objective wiring suspect")
	}
}

func TestSearchersComparableOnObjective(t *testing.T) {
	// Fig 8 sanity: on the same workload, BO and random search both end
	// with steady-state delays in the same ballpark (comparable results).
	run := func(attach func(*engine.Engine)) float64 {
		clock, eng := newEngine(t, nil)
		attach(eng)
		clock.RunUntil(sim.Time(sec(14400)))
		return stats.Mean(lastE2E(eng, 0.3))
	}
	boTail := run(func(e *engine.Engine) {
		bo, _ := NewBayesOpt(e, BOOptions{Seed: rng.New(3)})
		bo.Attach()
	})
	rsTail := run(func(e *engine.Engine) {
		rs, _ := NewRandomSearch(e, RSOptions{Seed: rng.New(3)})
		rs.Attach()
	})
	if boTail <= 0 || rsTail <= 0 {
		t.Fatalf("degenerate tails: bo=%v rs=%v", boTail, rsTail)
	}
	if boTail > 4*rsTail && boTail > 40 {
		t.Fatalf("BO tail %.1fs wildly worse than random %.1fs", boTail, rsTail)
	}
}

// lastE2E returns the e2e delays of the final frac of the history.
func lastE2E(eng *engine.Engine, frac float64) []float64 {
	h := eng.History()
	start := int(float64(len(h)) * (1 - frac))
	var out []float64
	for _, b := range h[start:] {
		out = append(out, b.EndToEndDelay.Seconds())
	}
	return out
}
