package baselines

import (
	"errors"
	"math"
	"time"

	"nostop/internal/engine"
	"nostop/internal/rng"
	"nostop/internal/stats"
)

// RSOptions tune the random-search controller.
type RSOptions struct {
	// Evaluations is the number of random configurations tried; 0 means 20.
	Evaluations int
	// MeasureBatches is the per-evaluation window; 0 means 3.
	MeasureBatches int
	// Rho is the Eq. 3 penalty; 0 means 2.
	Rho float64
	// DrainThreshold mirrors core.Options.DrainThreshold; 0 means 6.
	DrainThreshold int
	// Seed drives the sampling; nil means rng.New(5).
	Seed *rng.Stream
}

// RandomSearch is the naive §2 search baseline: sample configurations
// uniformly at random, measure each, then hold the best. The paper dismisses
// exhaustive search as intractable; random search is its budgeted stand-in
// and a sanity floor for the tuners.
type RandomSearch struct {
	eng  *engine.Engine
	opts RSOptions
	r    *rng.Stream

	evals    []Evaluation
	current  engine.Config
	procAcc  []float64
	totalAcc []float64
	await    bool
	waited   int
	draining bool
	done     bool
	applied  int
	attached bool
}

// NewRandomSearch builds the controller.
func NewRandomSearch(eng *engine.Engine, opts RSOptions) (*RandomSearch, error) {
	if eng == nil {
		return nil, errors.New("baselines: nil engine")
	}
	if opts.Evaluations == 0 {
		opts.Evaluations = 20
	}
	if opts.MeasureBatches == 0 {
		opts.MeasureBatches = 3
	}
	if opts.Rho == 0 {
		opts.Rho = 2
	}
	if opts.DrainThreshold == 0 {
		opts.DrainThreshold = 6
	}
	if opts.Seed == nil {
		opts.Seed = rng.New(5)
	}
	return &RandomSearch{eng: eng, opts: opts, r: opts.Seed.Split("random-search")}, nil
}

// Attach registers with the engine and applies the first sample.
func (rs *RandomSearch) Attach() error {
	if rs.attached {
		return errors.New("baselines: already attached")
	}
	rs.attached = true
	rs.eng.AddListener(engine.ListenerFunc(rs.onBatch))
	return rs.evaluate(rs.sample())
}

func (rs *RandomSearch) sample() engine.Config {
	b := rs.eng.ConfigBounds()
	interval := time.Duration(rs.r.Uniform(b.MinInterval.Seconds(), b.MaxInterval.Seconds()) * float64(time.Second))
	execs := b.MinExecutors + rs.r.Intn(b.MaxExecutors-b.MinExecutors+1)
	return b.Clamp(engine.Config{
		BatchInterval: interval.Round(100 * time.Millisecond),
		Executors:     execs,
	})
}

func (rs *RandomSearch) evaluate(cfg engine.Config) error {
	rs.current = cfg
	rs.procAcc = rs.procAcc[:0]
	rs.totalAcc = rs.totalAcc[:0]
	rs.await = cfg != rs.eng.Config()
	rs.waited = 0
	rs.applied++
	return rs.eng.Reconfigure(cfg)
}

func (rs *RandomSearch) onBatch(bs engine.BatchStats) {
	if rs.done {
		return
	}
	if rs.draining {
		if rs.eng.QueueLen() == 0 && bs.SchedulingDelay <= bs.Config.BatchInterval {
			rs.draining = false
			rs.next()
		}
		return
	}
	if rs.await {
		if bs.FirstAfterReconfig {
			rs.await = false
			return
		}
		rs.waited++
		if rs.waited < 25 {
			return
		}
		rs.await = false
	} else if bs.FirstAfterReconfig {
		return
	}
	rs.procAcc = append(rs.procAcc, bs.ProcessingTime.Seconds())
	rs.totalAcc = append(rs.totalAcc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	if q := rs.eng.QueueLen(); q > rs.opts.DrainThreshold {
		rs.record(stats.Mean(rs.totalAcc) + float64(q)*stats.Mean(rs.procAcc))
		rs.draining = true
		rs.applied++
		b := rs.eng.ConfigBounds()
		_ = rs.eng.Reconfigure(engine.Config{BatchInterval: b.MaxInterval, Executors: b.MaxExecutors})
		return
	}
	if len(rs.totalAcc) < rs.opts.MeasureBatches {
		return
	}
	rs.record(stats.Mean(rs.totalAcc))
	rs.next()
}

func (rs *RandomSearch) record(measured float64) {
	interval := rs.current.BatchInterval.Seconds()
	y := interval + rs.opts.Rho*math.Max(0, measured-interval)
	rs.evals = append(rs.evals, Evaluation{Config: rs.current, Y: y, At: rs.eng.Clock().Now()})
}

func (rs *RandomSearch) next() {
	if len(rs.evals) >= rs.opts.Evaluations {
		rs.done = true
		if best, ok := rs.Best(); ok {
			rs.applied++
			_ = rs.eng.Reconfigure(best.Config)
		}
		return
	}
	_ = rs.evaluate(rs.sample())
}

// Best returns the lowest-objective evaluation so far.
func (rs *RandomSearch) Best() (Evaluation, bool) {
	if len(rs.evals) == 0 {
		return Evaluation{}, false
	}
	best := rs.evals[0]
	for _, e := range rs.evals[1:] {
		if e.Y < best.Y {
			best = e
		}
	}
	return best, true
}

// Evaluations returns all samples in order.
func (rs *RandomSearch) Evaluations() []Evaluation { return rs.evals }

// Done reports whether the budget is exhausted.
func (rs *RandomSearch) Done() bool { return rs.done }

// ConfigureSteps returns the configuration changes requested.
func (rs *RandomSearch) ConfigureSteps() int { return rs.applied }
