// Package baselines implements the comparison systems of the paper's
// evaluation: Bayesian Optimization over the configuration space (§6.4,
// Fig 8), Spark's PID-based back-pressure rate limiter (abstract), and
// random search. Each drives the same simulated engine through the same
// knobs NoStop uses, so Fig 7/8-style comparisons are apples to apples.
package baselines

import (
	"errors"
	"fmt"
	"math"

	"nostop/internal/linalg"
)

// GP is a Gaussian-process regressor with a squared-exponential kernel,
//
//	k(x, x') = σf²·exp(−‖x−x'‖² / (2ℓ²)) + σn²·𝟙[x=x'],
//
// the standard surrogate for Bayesian optimization of a noisy black box.
type GP struct {
	LengthScale float64 // ℓ
	SignalVar   float64 // σf²
	NoiseVar    float64 // σn²

	xs    [][]float64
	ys    []float64
	yMean float64
	chol  *linalg.Cholesky
	alpha linalg.Vector // K⁻¹·(y−ȳ)
}

// NewGP returns a GP with the given hyperparameters.
func NewGP(lengthScale, signalVar, noiseVar float64) (*GP, error) {
	if lengthScale <= 0 || signalVar <= 0 || noiseVar < 0 {
		return nil, fmt.Errorf("baselines: bad GP hyperparameters ℓ=%v σf²=%v σn²=%v",
			lengthScale, signalVar, noiseVar)
	}
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar}, nil
}

func (g *GP) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return g.SignalVar * math.Exp(-d2/(2*g.LengthScale*g.LengthScale))
}

// Fit conditions the GP on observations. The targets are centred on their
// mean so the prior mean matches the data level.
func (g *GP) Fit(xs [][]float64, ys []float64) error {
	if len(xs) != len(ys) {
		return errors.New("baselines: GP.Fit length mismatch")
	}
	if len(xs) == 0 {
		return errors.New("baselines: GP.Fit with no observations")
	}
	n := len(xs)
	g.xs = make([][]float64, n)
	for i, x := range xs {
		g.xs[i] = append([]float64(nil), x...)
	}
	g.ys = append([]float64(nil), ys...)
	g.yMean = 0
	for _, y := range ys {
		g.yMean += y
	}
	g.yMean /= float64(n)

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(g.xs[i], g.xs[j])
			if i == j {
				v += g.NoiseVar + 1e-8 // jitter for conditioning
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := linalg.NewCholesky(k)
	if err != nil {
		return fmt.Errorf("baselines: GP kernel not PD: %w", err)
	}
	g.chol = chol
	centered := make(linalg.Vector, n)
	for i, y := range ys {
		centered[i] = y - g.yMean
	}
	g.alpha = chol.Solve(centered)
	return nil
}

// Predict returns the posterior mean and variance at x. Calling Predict
// before Fit returns the prior (ȳ=0, σf²+σn²).
func (g *GP) Predict(x []float64) (mean, variance float64) {
	if g.chol == nil {
		return 0, g.SignalVar + g.NoiseVar
	}
	n := len(g.xs)
	kstar := make(linalg.Vector, n)
	for i := 0; i < n; i++ {
		kstar[i] = g.kernel(x, g.xs[i])
	}
	mean = g.yMean + kstar.Dot(g.alpha)
	v := g.chol.SolveLower(kstar)
	variance = g.SignalVar + g.NoiseVar - v.Dot(v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return mean, variance
}

// N returns the number of conditioned observations.
func (g *GP) N() int { return len(g.xs) }

// stdNormPDF is the standard normal density.
func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// stdNormCDF is the standard normal distribution function.
func stdNormCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ExpectedImprovement computes EI for *minimisation* at x against the best
// (lowest) observed value.
func (g *GP) ExpectedImprovement(x []float64, best float64) float64 {
	mean, variance := g.Predict(x)
	sigma := math.Sqrt(variance)
	if sigma < 1e-9 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / sigma
	return (best-mean)*stdNormCDF(z) + sigma*stdNormPDF(z)
}
