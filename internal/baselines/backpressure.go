package baselines

import (
	"errors"
	"math"

	"nostop/internal/engine"
)

// BPOptions tune the back-pressure controller. The gains default to Spark's
// spark.streaming.backpressure.pid.* values.
type BPOptions struct {
	// Proportional gain; 0 means Spark's default 1.0.
	Kp float64
	// Integral gain on the backlog error; 0 means Spark's default 0.2.
	Ki float64
	// Derivative gain; 0 means Spark's default 0 (field kept for parity).
	Kd float64
	// MinRate floors the ingestion bound (records/second); 0 means 100,
	// matching spark.streaming.backpressure.pid.minRate.
	MinRate float64
}

// BackPressure reproduces Spark Streaming's PID rate estimator
// (PIDRateEstimator): after every completed batch it re-estimates the rate
// the system can sustain and throttles ingestion to it. Unlike NoStop it
// never touches batch interval or executor count — it defends stability by
// *dropping/deferring input*, which is exactly the behavioural contrast the
// paper draws: back pressure keeps the system alive but sacrifices
// throughput, while NoStop reconfigures so the system can absorb the full
// stream.
type BackPressure struct {
	eng  *engine.Engine
	opts BPOptions

	latestRate float64
	lastError  float64
	lastTime   float64 // seconds
	updates    int
	attached   bool
}

// NewBackPressure builds the controller.
func NewBackPressure(eng *engine.Engine, opts BPOptions) (*BackPressure, error) {
	if eng == nil {
		return nil, errors.New("baselines: nil engine")
	}
	if opts.Kp == 0 {
		opts.Kp = 1.0
	}
	if opts.Ki == 0 {
		opts.Ki = 0.2
	}
	if opts.MinRate == 0 {
		opts.MinRate = 100
	}
	return &BackPressure{eng: eng, opts: opts}, nil
}

// Attach registers the controller with the engine.
func (b *BackPressure) Attach() error {
	if b.attached {
		return errors.New("baselines: already attached")
	}
	b.attached = true
	b.eng.AddListener(engine.ListenerFunc(b.onBatch))
	return nil
}

// onBatch is a direct port of PIDRateEstimator.compute: the error is the
// gap between the current ingestion rate and the measured processing rate,
// and the integral term charges the standing backlog (scheduling delay) at
// the processing rate.
func (b *BackPressure) onBatch(bs engine.BatchStats) {
	procSecs := bs.ProcessingTime.Seconds()
	if bs.Records == 0 || procSecs <= 0 {
		return
	}
	now := bs.DoneAt.Seconds()
	delaySinceUpdate := now - b.lastTime
	if b.updates == 0 {
		delaySinceUpdate = bs.Config.BatchInterval.Seconds()
	}
	if delaySinceUpdate <= 0 {
		delaySinceUpdate = 1e-3
	}
	processingRate := float64(bs.Records) / procSecs
	if b.latestRate == 0 {
		// Bootstrap from the first observation, as Spark does.
		b.latestRate = float64(bs.Records) / bs.Config.BatchInterval.Seconds()
	}
	err := b.latestRate - processingRate
	histErr := bs.SchedulingDelay.Seconds() * processingRate / bs.Config.BatchInterval.Seconds()
	dErr := (err - b.lastError) / delaySinceUpdate

	newRate := b.latestRate - b.opts.Kp*err - b.opts.Ki*histErr - b.opts.Kd*dErr
	newRate = math.Max(newRate, b.opts.MinRate)

	b.latestRate = newRate
	b.lastError = err
	b.lastTime = now
	b.updates++
	b.eng.SetIngestCap(newRate)
}

// Rate returns the current ingestion bound (records/second); 0 before the
// first update.
func (b *BackPressure) Rate() float64 { return b.latestRate }

// Updates returns how many PID updates have run.
func (b *BackPressure) Updates() int { return b.updates }
