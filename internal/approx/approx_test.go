package approx

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},             // below absolute tolerance
		{1e12, 1e12 * (1 + 1e-12), true}, // below relative tolerance
		{0.1, 0.2, false},
		{1, 1 + 1e-6, false},
		{-1, 1, false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{math.Inf(1), math.Inf(1), false}, // Inf-Inf is NaN: never approximately equal
		{math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	for _, c := range []struct {
		a    float64
		want bool
	}{
		{0, true},
		{1e-12, true},
		{-1e-12, true},
		{1e-6, false},
		{1, false},
		{math.NaN(), false},
	} {
		if got := Zero(c.a); got != c.want {
			t.Errorf("Zero(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestUnset(t *testing.T) {
	for _, c := range []struct {
		a    float64
		want bool
	}{
		{0, true},
		{math.Copysign(0, -1), true}, // -0 == 0 in IEEE 754
		{1e-9, false},                // deliberately-tiny configured value is NOT unset
		{1e-12, false},               // unlike Zero, no tolerance at all
		{1, false},
		{math.NaN(), false},
	} {
		if got := Unset(c.a); got != c.want {
			t.Errorf("Unset(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(10, 11, 0.2) {
		t.Error("EqTol(10, 11, 0.2) should hold relatively")
	}
	if EqTol(10, 11, 0.01) {
		t.Error("EqTol(10, 11, 0.01) should fail")
	}
}
