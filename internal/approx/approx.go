// Package approx provides epsilon-tolerant floating-point comparisons for
// control-flow decisions.
//
// The floateq analyzer (internal/analysis) bans exact ==/!= between floats in
// the numeric decision-making packages: a branch guarded by exact equality
// can flip under rounding differences that are invisible in reported metrics,
// which is precisely the kind of hair-trigger nondeterminism the determinism
// contract exists to remove. These helpers are the sanctioned replacement.
package approx

import "math"

// Tol is the default comparison tolerance. It is far below any physically
// meaningful difference in the simulator (rates, seconds, normalised
// configuration coordinates are all O(1)–O(1e6)) and far above accumulated
// float64 rounding error at those magnitudes.
const Tol = 1e-9

// Eq reports a ≈ b under the default tolerance: absolutely for small values,
// relatively for large ones (so 1e12 and 1e12+1e-6 compare equal, while 0.1
// and 0.2 do not).
func Eq(a, b float64) bool { return EqTol(a, b, Tol) }

// EqTol is Eq with an explicit tolerance.
func EqTol(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Zero reports a ≈ 0 under the default tolerance, for values that are
// computed (and may therefore carry rounding error).
func Zero(a float64) bool { return math.Abs(a) <= Tol }

// Unset reports whether an option field still holds its exact zero value,
// the "zero means use the default" sentinel convention. Unlike Zero it is an
// exact comparison: the sentinel is assigned, never computed, so there is no
// rounding error to tolerate — and a caller deliberately configuring a tiny
// value like 1e-9 must not be mistaken for unset. Centralizing the one legal
// exact float comparison here keeps call sites clean under the floateq
// analyzer and keeps the intent explicit.
func Unset(a float64) bool {
	return a == 0 // exact by design; see doc comment
}
