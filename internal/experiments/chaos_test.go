package experiments

import (
	"strconv"
	"testing"
	"time"

	"nostop/internal/sim"
)

func TestChaosPlanValidates(t *testing.T) {
	for _, h := range []time.Duration{30 * time.Minute, 2 * time.Hour} {
		plan := ChaosPlan(h)
		if err := plan.Validate(); err != nil {
			t.Fatalf("scripted plan for %v invalid: %v", h, err)
		}
		if plan.End() >= sim.Time(h) {
			t.Fatalf("plan for %v leaves no recovery tail", h)
		}
	}
}

func TestChaosRecoveryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant chaos run")
	}
	cfg := quick()
	tab, timeline, err := ChaosUnderPlan(cfg, "logreg", ChaosPlan(cfg.Horizon))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("chaos table has %d rows, want 3", len(tab.Rows))
	}
	if timeline == "" {
		t.Fatal("no fault timeline recorded")
	}
	// NoStop (last row): zero records lost, and delay recovered — the
	// recovery column is a duration, not "never".
	const nostop = 2
	if lost := cell(t, tab, nostop, 8); lost != "0" {
		t.Fatalf("NoStop lost %s records under the scripted plan", lost)
	}
	// The recovery column IS the 20% acceptance: the rolling clean-batch
	// mean re-entered 1.2x of pre-fault steady state after the last fault.
	if rec := cell(t, tab, nostop, 4); rec == "never" {
		t.Fatal("NoStop never recovered to within 20% of pre-fault delay")
	}
	// The tail mean also covers SPSA probe batches (the resumed search
	// deliberately visits bad configurations), so it only gates gross
	// degradation, not the 20% band.
	pre, post := cellFloat(t, tab, nostop, 1), cellFloat(t, tab, nostop, 2)
	if post > 2.5*pre {
		t.Fatalf("NoStop post-fault e2e %.2fs blew past pre-fault %.2fs", post, pre)
	}
	// The task-failure window must actually exercise the retry path.
	if retries, _ := strconv.Atoi(cell(t, tab, nostop, 6)); retries == 0 {
		t.Fatal("scripted task-failure window produced no retries")
	}
}
