package experiments

import (
	"fmt"
	"math"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/fleet"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

// ZooControllers is the controller-zoo lineup: the paper's SPSA controller
// head-to-head against a do-nothing floor, Spark's back-pressure, and the
// two widened-space auto-tuners (uncertainty-aware GP, tabular Q-learning).
// The two-parameter BayesOpt baseline stays registered for Fig 8 but is not
// part of the zoo — the GP tuner is its widened-space successor.
func ZooControllers() []string {
	return []string{
		fleet.ControllerStatic,
		fleet.ControllerNoStop,
		fleet.ControllerBackPressure,
		fleet.ControllerGP,
		fleet.ControllerRL,
	}
}

// ZooSpace returns the widened v1 configuration space the zoo runs every
// controller over: the engine's default structural bounds plus block
// interval, an ingest cap bracketing the workload's peak nominal rate, the
// retry budget, and the speculation threshold.
func ZooSpace(wlName string) (core.ConfigSpace, error) {
	wl, err := workload.New(wlName)
	if err != nil {
		return core.ConfigSpace{}, err
	}
	_, peak := wl.RateBand()
	return core.WidenedSpace(engine.DefaultBounds(), peak), nil
}

// ControllerZoo runs the zoo lineup over the widened config space under the
// scripted chaos plan (the PR-1 five-window fault sequence) and reports
// delay, recovery, and shedding per controller, averaged over
// cfg.Repetitions seeds. Runs execute on the fleet worker pool into
// per-index slots, so the rendered table is byte-identical at any
// parallelism.
func ControllerZoo(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	const wlName = "logreg"
	space, err := ZooSpace(wlName)
	if err != nil {
		return nil, err
	}
	plan := ChaosPlan(cfg.Horizon)
	planEnd := plan.End()
	preFrom, preTo := sim.Time(float64(cfg.Horizon)*0.15), plan.Start()
	if preFrom >= preTo {
		preFrom = preTo / 2
	}

	ctls := ZooControllers()
	type job struct {
		ctl  string
		seed uint64
	}
	var jobs []job
	for _, ctl := range ctls {
		for r := 0; r < cfg.Repetitions; r++ {
			jobs = append(jobs, job{ctl: ctl, seed: cfg.Seed + uint64(r)})
		}
	}
	type slot struct {
		pre, post float64
		recovery  time.Duration
		reconfigs int
		shed      int
		dropped   int64
		failed    int64
		lost      int64
	}
	results := make([]slot, len(jobs))
	if err := cfg.parallelFor(len(jobs), func(i int) error {
		j := jobs[i]
		fj := fleet.Job{
			Workload:   wlName,
			Controller: j.ctl,
			Seed:       j.seed,
			Horizon:    fleet.Duration(cfg.Horizon),
			Warmup:     cfg.Warmup,
			Trace:      fleet.TraceSpec{Kind: "band", Period: fleet.Duration(5 * time.Second)},
			Plan:       fleet.NamedPlan{Name: "chaos", Faults: plan},
			Space:      &space,
		}
		sum, det, err := fleet.ExecuteObserved(fj, fleet.Observe{})
		if err != nil {
			return fmt.Errorf("experiments: zoo %s/seed=%d: %v", j.ctl, j.seed, err)
		}
		history := det.Engine.History()
		pre := SteadyE2E(history, preFrom, preTo)
		results[i] = slot{
			pre:       pre,
			post:      SteadyE2E(history, planEnd, sim.Time(cfg.Horizon)),
			recovery:  RecoveryTime(history, planEnd, pre),
			reconfigs: sum.Reconfigs,
			shed:      det.Engine.ShedEvents(),
			dropped:   det.Engine.DroppedByCap(),
			failed:    det.Engine.FailedBatches(),
			lost:      det.Engine.FailedRecords(),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("Controller zoo: %d controllers over the widened config space, %d chaos windows (%s, %d seeds)",
			len(ctls), len(plan), wlName, cfg.Repetitions),
		Header: []string{"controller", "pre-fault e2e(s)", "post-recovery e2e(s)", "recovery",
			"reconfigs", "shed", "dropped", "failed", "lost"},
	}
	for ci, ctl := range ctls {
		rows := results[ci*cfg.Repetitions : (ci+1)*cfg.Repetitions]
		var pre, post meanAcc
		var recSum time.Duration
		recovered := 0
		var reconfigs, shed float64
		var dropped, failed, lost float64
		for _, r := range rows {
			pre.add(r.pre)
			post.add(r.post)
			if r.recovery >= 0 {
				recSum += r.recovery
				recovered++
			}
			reconfigs += float64(r.reconfigs)
			shed += float64(r.shed)
			dropped += float64(r.dropped)
			failed += float64(r.failed)
			lost += float64(r.lost)
		}
		n := float64(len(rows))
		recovery := "never"
		if recovered > 0 {
			mean := time.Duration(int64(recSum) / int64(recovered))
			recovery = fmtRecovery(mean)
			if recovered < len(rows) {
				recovery = fmt.Sprintf("%s (%d/%d)", recovery, recovered, len(rows))
			}
		}
		t.Rows = append(t.Rows, []string{
			ctl,
			fmtE2E(pre.mean()),
			fmtE2E(post.mean()),
			recovery,
			fmt.Sprintf("%.1f", reconfigs/n),
			fmt.Sprintf("%.1f", shed/n),
			fmt.Sprintf("%.1f", dropped/n),
			fmt.Sprintf("%.1f", failed/n),
			fmt.Sprintf("%.1f", lost/n),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("widened space: %d axes (batch interval, executors, block interval, ingest cap, retry budget, speculation threshold)", len(space.Axes)),
		"pre-fault / post-recovery = clean-batch e2e means before the first and after the last fault window",
		"recovery = rolling clean-batch e2e mean back within 1.2x of pre-fault after the last window lifts; (k/n) counts recovered seeds",
		"counters are per-seed means; dropped = records refused by the ingest cap, lost = records in batches that exhausted the retry budget")
	return t, nil
}

// meanAcc averages the non-NaN observations (SteadyE2E is NaN when a window
// saw no clean batches; one bad seed must not poison the cell).
type meanAcc struct {
	sum float64
	n   int
}

func (m *meanAcc) add(v float64) {
	if math.IsNaN(v) {
		return
	}
	m.sum += v
	m.n++
}

func (m *meanAcc) mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sum / float64(m.n)
}
