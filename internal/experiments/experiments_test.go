package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// quick returns a config small enough for unit tests but large enough for
// the qualitative shapes to show.
func quick() Config {
	return Config{Seed: 3, Repetitions: 1, Horizon: 50 * time.Minute, Warmup: 0.6}
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tab.Title, row, col)
	}
	return tab.Rows[row][col]
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := cell(t, tab, row, col)
	// meanStd cells look like "12.34 ± 0.56" — take the mean.
	s = strings.TrimSpace(strings.SplitN(s, "±", 2)[0])
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d)=%q not numeric: %v", row, col, s, err)
	}
	return v
}

func TestTable2RendersClusterInventory(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 5 {
		t.Fatalf("Table 2 has %d rows, want 5", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Xeon Bronze", "I5-10400", "Master", "SSD", "HDD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	var buf bytes.Buffer
	tab.CSV(&buf)
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Fatalf("CSV=%q", got)
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("Fig 2 has %d rows, want 20 (intervals 2..40)", len(tab.Rows))
	}
	// Shape 1: the smallest interval is unstable with a large scheduling
	// delay; the largest is stable with ~none.
	firstSched := cellFloat(t, tab, 0, 2)
	lastSched := cellFloat(t, tab, len(tab.Rows)-1, 2)
	if firstSched < 10 {
		t.Errorf("interval 2s sched delay %.2f, expected divergence", firstSched)
	}
	if lastSched > 1 {
		t.Errorf("interval 40s sched delay %.2f, expected ≈0", lastSched)
	}
	if cell(t, tab, 0, 4) != "false" || cell(t, tab, len(tab.Rows)-1, 4) != "true" {
		t.Error("stability flags don't bracket the knee")
	}
	// Shape 2: processing time grows with the interval in the stable
	// region (compare 20s vs 40s rows).
	if cellFloat(t, tab, 9, 1) >= cellFloat(t, tab, 19, 1) {
		t.Error("processing time not increasing with interval")
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Fig 3 has %d rows, want 10 (executors 2..20)", len(tab.Rows))
	}
	// Few executors are slow and unstable; mid-range is stable and fast.
	if cell(t, tab, 0, 4) != "false" {
		t.Error("2 executors should be unstable")
	}
	if cell(t, tab, 7, 4) != "true" { // 16 executors
		t.Error("16 executors should be stable")
	}
	if cellFloat(t, tab, 0, 1) <= cellFloat(t, tab, 7, 1) {
		t.Error("2 executors should process slower than 16")
	}
}

func TestFig5BandsRespectPaper(t *testing.T) {
	tab, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig 5 has %d rows", len(tab.Rows))
	}
	bands := map[string][2]float64{
		"LogisticRegression": {7000, 13000},
		"LinearRegression":   {80000, 120000},
		"WordCount":          {110000, 190000},
		"PageAnalyze":        {170000, 230000},
	}
	for i := range tab.Rows {
		name := cell(t, tab, i, 0)
		b := bands[name]
		min := cellFloat(t, tab, i, 2)
		mean := cellFloat(t, tab, i, 3)
		max := cellFloat(t, tab, i, 4)
		if min < b[0] || max > b[1] {
			t.Errorf("%s observed [%v,%v] outside band %v", name, min, max, b)
		}
		if mean < (b[0]+b[1])/2*0.9 || mean > (b[0]+b[1])/2*1.1 {
			t.Errorf("%s mean %v far from band centre", name, mean)
		}
	}
}

func TestFig6ProducesEvolution(t *testing.T) {
	tab, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("Fig 6 only has %d rows", len(tab.Rows))
	}
	if len(tab.Notes) != 4 {
		t.Fatalf("Fig 6 notes per workload: %v", tab.Notes)
	}
}

func TestFig6Series(t *testing.T) {
	interval, proc, err := Fig6Series(quick(), "wordcount")
	if err != nil {
		t.Fatal(err)
	}
	if interval.Len() < 5 || proc.Len() != interval.Len() {
		t.Fatalf("series lengths %d/%d", interval.Len(), proc.Len())
	}
	for _, p := range interval.Points {
		if p.V < 1 || p.V > 40 {
			t.Fatalf("interval estimate %v outside bounds", p.V)
		}
	}
}

func TestFig7NoStopWins(t *testing.T) {
	tab, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig 7 rows: %d", len(tab.Rows))
	}
	wins := 0
	for i := range tab.Rows {
		def := cellFloat(t, tab, i, 1)
		tuned := cellFloat(t, tab, i, 2)
		if tuned < def {
			wins++
		}
	}
	// The paper's core claim: NoStop improves every workload. At quick
	// scale allow one workload to be still mid-convergence.
	if wins < 3 {
		t.Fatalf("NoStop won only %d/4 workloads:\n%+v", wins, tab.Rows)
	}
}

func TestBackPressureContrast(t *testing.T) {
	tab, err := BackPressure(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	unstable := cellFloat(t, tab, 0, 1)
	bp := cellFloat(t, tab, 1, 1)
	nostop := cellFloat(t, tab, 2, 1)
	if bp >= unstable || nostop >= unstable {
		t.Fatalf("controllers did not beat the unstable baseline: %v %v %v", unstable, bp, nostop)
	}
	// Back pressure must drop records; NoStop must not.
	if cell(t, tab, 1, 3) == "0" {
		t.Error("back pressure dropped nothing on an overloaded system")
	}
	if cell(t, tab, 2, 3) != "0" {
		t.Error("NoStop should not drop records")
	}
	// NoStop sustains higher throughput than back pressure.
	if cellFloat(t, tab, 2, 4) <= cellFloat(t, tab, 1, 4) {
		t.Error("NoStop throughput not above back pressure's")
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := quick()
	cfg.Horizon = 40 * time.Minute
	for name, fn := range map[string]func(Config) (*Table, error){
		"penalty":    AblationPenaltyRamp,
		"firstbatch": AblationFirstBatch,
		"window":     AblationWindow,
		"reset":      AblationReset,
		"scaling":    AblationScaling,
		"stepclip":   AblationStepClip,
	} {
		tab, err := fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) < 2 {
			t.Fatalf("%s: only %d rows", name, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			for _, c := range row {
				if c == "" {
					t.Fatalf("%s: empty cell in %v", name, row)
				}
			}
		}
	}
}

func TestAblationGainsGrid(t *testing.T) {
	cfg := quick()
	cfg.Horizon = 30 * time.Minute
	tab, err := AblationGains(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("gain grid rows: %d, want 9", len(tab.Rows))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.Repetitions != 5 || c.Horizon != 2*time.Hour || c.Warmup != 0.7 {
		t.Fatalf("defaults: %+v", c)
	}
	q := Quick()
	if q.Repetitions != 1 {
		t.Fatalf("Quick: %+v", q)
	}
}

func TestRenderAligns(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"aa", "1"}, {"bbbb", "22"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "note: hello") {
		t.Error("note missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("short render: %q", out)
	}
}
