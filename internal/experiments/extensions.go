package experiments

import (
	"fmt"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// The experiments in this file cover the paper's §7 future work, which this
// reproduction implements: multi-parameter tuning, automatic gain-sequence
// selection, and (extending the paper's transparency claim) adaptation to
// node failures.

// blockBounds returns the default bounds with a tunable block interval.
func blockBounds() engine.Bounds {
	b := engine.DefaultBounds()
	b.MinBlock, b.MaxBlock = 50*time.Millisecond, 2*time.Second
	return b
}

// runTuned is runNoStop with an engine-options hook (extensions need
// non-default bounds and failure injection).
func runTuned(wlName string, horizon time.Duration, seed *rng.Stream,
	eo func(*engine.Options), co func(*core.Options), during func(*sim.Clock, *engine.Engine)) (*runResult, error) {
	clock := sim.NewClock()
	wl, err := workload.New(wlName)
	if err != nil {
		return nil, err
	}
	eopts := engine.Options{
		Workload: wl,
		Trace:    bandTrace(wl, seed),
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
	}
	if eo != nil {
		eo(&eopts)
	}
	eng, err := engine.New(clock, eopts)
	if err != nil {
		return nil, err
	}
	copts := core.Options{Seed: seed.Split("controller")}
	if co != nil {
		co(&copts)
	}
	ctl, err := core.New(eng, copts)
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	if err := ctl.Attach(); err != nil {
		return nil, err
	}
	if during != nil {
		during(clock, eng)
	}
	clock.RunUntil(sim.Time(horizon))
	return &runResult{history: eng.History(), eng: eng, ctl: ctl}, nil
}

// Extension3Param compares two-parameter NoStop against the §7 future-work
// three-parameter variant that also tunes the receiver block interval.
func Extension3Param(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("ext-3param")
	t := &Table{
		Title:  "Extension (§7): three-parameter tuning (+ receiver block interval)",
		Header: []string{"variant", "steady e2e(s)", "iterations", "final config"},
	}
	for _, v := range []struct {
		name string
		tune bool
	}{
		{"2 parameters (paper)", false},
		{"3 parameters", true},
	} {
		n := cfg.Repetitions
		e2es, iters := make([]float64, n), make([]float64, n)
		finalCfgs := make([]engine.Config, n)
		if err := cfg.parallelFor(n, func(rep int) error {
			res, err := runTuned("logreg", cfg.Horizon,
				seed.Split(fmt.Sprintf("%s-%d", v.name, rep)),
				func(o *engine.Options) { o.Bounds = blockBounds() },
				func(o *core.Options) { o.TuneBlockInterval = v.tune },
				nil)
			if err != nil {
				return err
			}
			e2es[rep] = stats.Mean(res.tailE2E(cfg.Warmup))
			iters[rep] = float64(len(res.ctl.Iterations()))
			finalCfgs[rep] = res.eng.Config()
			return nil
		}); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.name, meanStd(e2es),
			fmt.Sprintf("%.1f", stats.Mean(iters)),
			// The serial loop reported the last repetition's final config.
			finalCfgs[n-1].String(),
		})
	}
	t.Notes = append(t.Notes,
		"SPSA still takes exactly two measurements per iteration in three dimensions (the paper's §7 point)")
	return t, nil
}

// ExtensionAutoGains compares the paper's hand-chosen gain constants with
// the §7 future-work automatic derivation (c from observed measurement
// noise, a from the normalised span).
func ExtensionAutoGains(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("ext-autogains")
	t := &Table{
		Title:  "Extension (§7): automatic gain-sequence selection",
		Header: []string{"workload", "manual a=10,c=2 e2e(s)", "auto gains e2e(s)"},
	}
	wls := workload.All()
	reps := cfg.Repetitions
	type gainsRun struct{ manual, auto float64 }
	runs := make([]gainsRun, len(wls)*reps)
	if err := cfg.parallelFor(len(runs), func(i int) error {
		name, rep := nameOf(wls[i/reps]), i%reps
		repSeed := seed.Split(fmt.Sprintf("%s-%d", name, rep))
		m, err := runTuned(name, cfg.Horizon, repSeed.Split("manual"), nil, nil, nil)
		if err != nil {
			return err
		}
		runs[i].manual = stats.Mean(m.tailE2E(cfg.Warmup))
		a, err := runTuned(name, cfg.Horizon, repSeed.Split("auto"), nil,
			func(o *core.Options) { o.AutoGains = true }, nil)
		if err != nil {
			return err
		}
		runs[i].auto = stats.Mean(a.tailE2E(cfg.Warmup))
		return nil
	}); err != nil {
		return nil, err
	}
	for w, wl := range wls {
		manual, auto := make([]float64, reps), make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			manual[rep] = runs[w*reps+rep].manual
			auto[rep] = runs[w*reps+rep].auto
		}
		t.Rows = append(t.Rows, []string{wl.Name(), meanStd(manual), meanStd(auto)})
	}
	t.Notes = append(t.Notes,
		"auto gains watch 8 calibration batches, then set c to the observed delay noise (§5.6's rule, automated)")
	return t, nil
}

// ExtensionNodeFailure kills a fast worker node mid-run and reports how the
// tuned system absorbs the 25% capacity loss — extending the paper's claim
// that NoStop "tackles hardware heterogeneity in a transparent manner".
func ExtensionNodeFailure(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("ext-failure")
	t := &Table{
		Title:  "Extension: node failure mid-run (node 5 dies at half-horizon)",
		Header: []string{"variant", "pre-failure e2e(s)", "post-failure e2e(s)", "final queue"},
	}
	for _, v := range []struct {
		name  string
		tuned bool
	}{
		{"fixed default config", false},
		{"NoStop", true},
	} {
		reps := cfg.Repetitions
		pre, post, queue := make([]float64, reps), make([]float64, reps), make([]float64, reps)
		if err := cfg.parallelFor(reps, func(rep int) error {
			repSeed := seed.Split(fmt.Sprintf("%s-%d", v.name, rep))
			inject := func(clock *sim.Clock, eng *engine.Engine) {
				clock.At(sim.Time(cfg.Horizon/2), func() { _ = eng.FailNode(5) })
			}
			var res *runResult
			var err error
			if v.tuned {
				res, err = runTuned("logreg", cfg.Horizon, repSeed, nil, nil, inject)
			} else {
				res, err = runStaticWithFailure("logreg", cfg.Horizon, repSeed)
			}
			if err != nil {
				return err
			}
			// Steady-state windows on both sides of the failure: the
			// second quarter (post-convergence, pre-failure) and the
			// final quarter (post-failure).
			n := len(res.history)
			var preXs, postXs []float64
			for i, b := range res.history {
				if b.FirstAfterReconfig {
					continue
				}
				if i >= n/4 && i < n/2 {
					preXs = append(preXs, b.EndToEndDelay.Seconds())
				} else if i >= n*3/4 {
					postXs = append(postXs, b.EndToEndDelay.Seconds())
				}
			}
			pre[rep] = stats.Mean(preXs)
			post[rep] = stats.Mean(postXs)
			queue[rep] = float64(res.eng.QueueLen())
			return nil
		}); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, meanStd(pre), meanStd(post), fmt.Sprintf("%.1f", stats.Mean(queue))})
	}
	t.Notes = append(t.Notes,
		"node 5 is a fast I5-10400 worker (25% of capacity); the engine reallocates surviving executors automatically")
	return t, nil
}

// runStaticWithFailure mirrors runStatic plus the half-horizon failure.
func runStaticWithFailure(wlName string, horizon time.Duration, seed *rng.Stream) (*runResult, error) {
	clock := sim.NewClock()
	wl, err := workload.New(wlName)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    bandTrace(wl, seed),
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	clock.At(sim.Time(horizon/2), func() { _ = eng.FailNode(5) })
	clock.RunUntil(sim.Time(horizon))
	return &runResult{history: eng.History(), eng: eng}, nil
}
