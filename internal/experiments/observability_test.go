package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// runObserved drives a chaos run with the full observability layer attached
// (metrics registry, tracer, fault-injector sinks) and returns the batch
// history, the Prometheus exposition, and the serialized trace. observe=false
// runs the identical simulation with every sink nil.
func runObserved(t *testing.T, horizon time.Duration, observe bool) (history, prom, trace string) {
	t.Helper()
	wl, err := workload.New("logreg")
	if err != nil {
		t.Fatal(err)
	}
	seed := rng.New(7).Split("det")
	clock := sim.NewClock()
	var reg *metrics.Registry
	var tr *tracing.Tracer
	if observe {
		reg = metrics.NewRegistry()
		tr = tracing.New(clock, 0)
	}
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    bandTrace(wl, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
		Metrics:  reg,
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.Attach(eng, ChaosPlan(horizon))
	if err != nil {
		t.Fatal(err)
	}
	if observe {
		inj.Observe(reg, tr)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(eng, core.Options{Seed: rng.New(7).Split("controller"), Metrics: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(horizon))
	if len(eng.History()) == 0 {
		t.Fatal("run completed no batches")
	}
	history = fmt.Sprintf("%+v", eng.History())
	if observe {
		prom = reg.String()
		var buf strings.Builder
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		trace = buf.String()
	}
	return history, prom, trace
}

// TestObservabilityByteIdentical extends the determinism contract to the
// observability exports: two same-seed runs must serialize byte-identical
// Prometheus expositions and byte-identical Chrome trace JSON.
func TestObservabilityByteIdentical(t *testing.T) {
	const horizon = 25 * time.Minute
	_, prom1, trace1 := runObserved(t, horizon, true)
	_, prom2, trace2 := runObserved(t, horizon, true)

	if prom1 == "" || trace1 == "" {
		t.Fatal("observed run produced empty exports")
	}
	if prom1 != prom2 {
		t.Errorf("Prometheus expositions differ across same-seed runs; %s", firstDiff(prom1, prom2))
	}
	if trace1 != trace2 {
		t.Errorf("trace files differ across same-seed runs; %s", firstDiff(trace1, trace2))
	}
	if n, err := tracing.Validate(strings.NewReader(trace1)); err != nil {
		t.Errorf("trace failed schema validation: %v", err)
	} else if n == 0 {
		t.Error("trace contains no events")
	}
	// The exposition must cover every acceptance-criteria quantity.
	for _, name := range []string{
		"nostop_batch_e2e_delay_seconds_bucket",
		"nostop_batch_processing_seconds_bucket",
		"nostop_batch_queue_length",
		"nostop_task_retries_total",
		"nostop_broker_redeliveries_total",
		"nostop_spsa_iterations_total",
		"nostop_faults_injected_total",
	} {
		if !strings.Contains(prom1, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestObservabilityIsPassive asserts the zero-perturbation contract: the
// batch history of an instrumented run is byte-identical to an
// uninstrumented run of the same seed. Instrumentation that consumed
// randomness or scheduled events would shift the history and silently
// invalidate every recorded experiment.
func TestObservabilityIsPassive(t *testing.T) {
	const horizon = 25 * time.Minute
	plain, _, _ := runObserved(t, horizon, false)
	observed, _, _ := runObserved(t, horizon, true)
	if plain != observed {
		t.Errorf("instrumentation perturbed the batch history; %s", firstDiff(plain, observed))
	}
}
