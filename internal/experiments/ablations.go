package experiments

import (
	"fmt"
	"time"

	"nostop/internal/baselines"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/spsa"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// ablationRun runs NoStop with a controller-option mutation, averaged over
// cfg.Repetitions seeds, and returns the mean steady-state e2e, iterations,
// and drains — the common ablation scorecard. The WordCount workload is
// used throughout: its low noise makes design effects visible rather than
// drowned, and repetition averaging keeps single-seed luck from inverting
// conclusions.
func ablationRun(cfg Config, seed *rng.Stream, mutate func(*core.Options)) (e2e, iters, drains float64, err error) {
	n := cfg.Repetitions
	e2es, its, drs := make([]float64, n), make([]float64, n), make([]float64, n)
	if err := cfg.parallelFor(n, func(rep int) error {
		res, err := runNoStop("wordcount", nil, cfg.Horizon, seed.Split(fmt.Sprintf("rep-%d", rep)), mutate)
		if err != nil {
			return err
		}
		e2es[rep] = stats.Mean(res.tailE2E(cfg.Warmup))
		its[rep] = float64(len(res.ctl.Iterations()))
		drs[rep] = float64(res.ctl.Drains())
		return nil
	}); err != nil {
		return 0, 0, 0, err
	}
	return stats.Mean(e2es), stats.Mean(its), stats.Mean(drs), nil
}

// AblationPenaltyRamp studies Algorithm 1's ρ ramp (1 → 2 by +0.1) against
// fixed penalties.
func AblationPenaltyRamp(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-rho")
	t := &Table{
		Title:  "Ablation: penalty coefficient ρ (Algorithm 1 ramps 1→2)",
		Header: []string{"variant", "steady e2e(s)", "iterations", "drains"},
	}
	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"ramp 1→2 (paper)", nil},
		{"fixed ρ=1", func(o *core.Options) { o.Rho0, o.RhoMax = 1, 1 }},
		{"fixed ρ=2", func(o *core.Options) { o.Rho0, o.RhoMax = 2, 2 }},
		{"fixed ρ=8", func(o *core.Options) { o.Rho0, o.RhoMax = 8, 8 }},
	}
	for _, v := range variants {
		e2e, iters, drains, err := ablationRun(cfg, seed.Split(v.name), v.mutate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", e2e),
			fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
	}
	t.Notes = append(t.Notes, "§4.2.2: small early ρ avoids huge early gradients; the cap keeps the interval goal dominant")
	return t, nil
}

// AblationFirstBatch studies the §5.4 exclusion of the first batch after a
// reconfiguration.
func AblationFirstBatch(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-firstbatch")
	t := &Table{
		Title:  "Ablation: §5.4 first-batch-after-reconfig exclusion",
		Header: []string{"variant", "steady e2e(s)", "iterations", "drains"},
	}
	for _, v := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"exclude (paper)", nil},
		{"include", func(o *core.Options) { o.IncludeReconfigBatches = true }},
	} {
		e2e, iters, drains, err := ablationRun(cfg, seed.Split(v.name), v.mutate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", e2e),
			fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
	}
	t.Notes = append(t.Notes, "reconfiguration batches carry executor-registration cost and bias measurements upward")
	return t, nil
}

// AblationWindow studies the §5.4 additive-increase measurement window.
func AblationWindow(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-window")
	t := &Table{
		Title:  "Ablation: §5.4 additive-increase measurement window",
		Header: []string{"variant", "steady e2e(s)", "iterations", "drains"},
	}
	for _, v := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"grow 3→10 (paper)", nil},
		{"fixed 3", func(o *core.Options) { o.MeasureBatches, o.MeasureBatchesMax = 3, 3 }},
		{"fixed 10", func(o *core.Options) { o.MeasureBatches, o.MeasureBatchesMax = 10, 10 }},
	} {
		e2e, iters, drains, err := ablationRun(cfg, seed.Split(v.name), v.mutate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", e2e),
			fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
	}
	t.Notes = append(t.Notes, "a larger window slows each iteration; growth-while-paused damps spurious re-optimization only")
	return t, nil
}

// AblationReset studies the §5.5 reset rule under a traffic surge.
func AblationReset(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-reset")
	t := &Table{
		Title:  "Ablation: §5.5 reset on input-rate change (surge 150k→300k rec/s mid-run)",
		Header: []string{"variant", "post-surge e2e(s)", "resets", "drains"},
	}
	surge := func() ratetrace.Trace {
		return ratetrace.Surge{
			Base: 150000, Peak: 300000,
			Start:    sim.Time(cfg.Horizon / 2),
			Duration: cfg.Horizon / 2, // the surge persists to the horizon
		}
	}
	for _, v := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"reset enabled (paper)", nil},
		{"reset disabled", func(o *core.Options) { o.RateStdThreshold = -1 }},
	} {
		n := cfg.Repetitions
		e2es, resets, drains := make([]float64, n), make([]float64, n), make([]float64, n)
		if err := cfg.parallelFor(n, func(rep int) error {
			res, err := runNoStop("wordcount", surge(), cfg.Horizon,
				seed.Split(fmt.Sprintf("%s-%d", v.name, rep)), v.mutate)
			if err != nil {
				return err
			}
			// Post-surge steady state: the last quarter of the run.
			e2es[rep] = stats.Mean(res.tailE2E(0.75))
			resets[rep] = float64(res.ctl.Resets())
			drains[rep] = float64(res.ctl.Drains())
			return nil
		}); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", stats.Mean(e2es)),
			fmt.Sprintf("%.1f", stats.Mean(resets)), fmt.Sprintf("%.1f", stats.Mean(drains))})
	}
	t.Notes = append(t.Notes,
		"the paper's reset restarts from θ_initial, discarding the converged state; the disabled variant's",
		"monitor-resume searches locally around the held configuration instead and often adapts faster —",
		"a genuine finding of this reproduction (see EXPERIMENTS.md)")
	return t, nil
}

// AblationGains sweeps the SPSA gain coefficients a and c (§5.6).
func AblationGains(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-gains")
	t := &Table{
		Title:  "Ablation: SPSA gain coefficients (paper: A=1, a=10, c=2)",
		Header: []string{"a", "c", "steady e2e(s)", "iterations", "drains"},
	}
	for _, a := range []float64{2, 10, 20} {
		for _, c := range []float64{0.5, 2, 4} {
			a, c := a, c
			e2e, iters, drains, err := ablationRun(cfg, seed.Split(fmt.Sprintf("a%v-c%v", a, c)),
				func(o *core.Options) {
					o.Params = spsa.Params{A: 1, Aa: a, C: c, Alpha: 0.602, Gamma: 0.101, MaxStep: 4}
				})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", a), fmt.Sprintf("%.1f", c),
				fmt.Sprintf("%.2f", e2e), fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
		}
	}
	t.Notes = append(t.Notes, "§5.6: a ≈ half the normalised range, c ≈ measurement noise std; tiny c makes gradients wild, tiny a stalls")
	return t, nil
}

// AblationScaling studies §5.1's min-max normalisation of both parameters
// into a shared range.
func AblationScaling(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-scale")
	t := &Table{
		Title:  "Ablation: §5.1 shared-range parameter scaling",
		Header: []string{"variant", "steady e2e(s)", "iterations", "drains"},
	}
	for _, v := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"scaled to [1,20] (paper)", nil},
		{"raw physical ranges", func(o *core.Options) { o.RawScale = true }},
	} {
		e2e, iters, drains, err := ablationRun(cfg, seed.Split(v.name), v.mutate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", e2e),
			fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
	}
	t.Notes = append(t.Notes, "without scaling one step size must serve a 39s range and a 19-executor range simultaneously")
	return t, nil
}

// AblationStepClip studies the step-clipping safeguard this reproduction
// adds to SPSA (see DESIGN.md §5): without it, one noisy early gradient can
// fling the configuration across the whole space and destabilise the system.
func AblationStepClip(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-clip")
	t := &Table{
		Title:  "Ablation: SPSA step clipping (reproduction safeguard)",
		Header: []string{"variant", "steady e2e(s)", "iterations", "drains"},
	}
	for _, v := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"clip at 4 norm units (default)", nil},
		{"no clipping", func(o *core.Options) {
			o.Params = spsa.Params{A: 1, Aa: 10, C: 2, Alpha: 0.602, Gamma: 0.101}
		}},
	} {
		e2e, iters, drains, err := ablationRun(cfg, seed.Split(v.name), v.mutate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", e2e),
			fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
	}
	return t, nil
}

// BackPressure contrasts NoStop with Spark's PID back-pressure on an
// overloaded fixed configuration — the abstract's third comparison. Back
// pressure stabilises by refusing input; NoStop reconfigures to absorb it.
func BackPressure(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("backpressure")
	t := &Table{
		Title:  "Back pressure vs NoStop (LogisticRegression, overloaded start: interval 5s, 4 executors)",
		Header: []string{"variant", "steady e2e(s)", "queue", "records dropped/deferred", "throughput(rec/s)"},
	}
	overloaded := engine.Config{BatchInterval: 5 * time.Second, Executors: 4}
	horizon := cfg.Horizon

	build := func(s *rng.Stream) (*sim.Clock, *engine.Engine, error) {
		clock := sim.NewClock()
		wl := workload.NewLogisticRegression()
		eng, err := engine.New(clock, engine.Options{
			Workload: wl,
			Trace:    bandTrace(wl, s),
			Seed:     s.Split("engine"),
			Initial:  overloaded,
		})
		if err != nil {
			return nil, nil, err
		}
		return clock, eng, eng.Start()
	}

	// The three variants are independent runs: fan them out, each writing
	// only its own row slot so the table order stays fixed.
	variants := []func() ([]string, error){
		// Plain overloaded run (no controller): diverges.
		func() ([]string, error) {
			s := seed.Split("plain")
			clock, eng, err := build(s)
			if err != nil {
				return nil, err
			}
			clock.RunUntil(sim.Time(horizon))
			r := &runResult{history: eng.History(), eng: eng}
			return []string{
				"no controller (unstable)",
				fmt.Sprintf("%.2f", stats.Mean(r.tailE2E(cfg.Warmup))),
				fmt.Sprintf("%d", eng.QueueLen()),
				"0",
				fmt.Sprintf("%.0f", throughput(eng, horizon)),
			}, nil
		},
		// Back pressure on the same fixed configuration.
		func() ([]string, error) {
			s := seed.Split("bp")
			clock, eng, err := build(s)
			if err != nil {
				return nil, err
			}
			bp, err := baselines.NewBackPressure(eng, baselines.BPOptions{})
			if err != nil {
				return nil, err
			}
			if err := bp.Attach(); err != nil {
				return nil, err
			}
			clock.RunUntil(sim.Time(horizon))
			r := &runResult{history: eng.History(), eng: eng}
			return []string{
				"back pressure (PID)",
				fmt.Sprintf("%.2f", stats.Mean(r.tailE2E(cfg.Warmup))),
				fmt.Sprintf("%d", eng.QueueLen()),
				fmt.Sprintf("%d", eng.DroppedByCap()),
				fmt.Sprintf("%.0f", throughput(eng, horizon)),
			}, nil
		},
		// NoStop from the same overloaded start.
		func() ([]string, error) {
			s := seed.Split("nostop")
			clock := sim.NewClock()
			wl := workload.NewLogisticRegression()
			eng, err := engine.New(clock, engine.Options{
				Workload: wl,
				Trace:    bandTrace(wl, s),
				Seed:     s.Split("engine"),
				Initial:  overloaded,
			})
			if err != nil {
				return nil, err
			}
			ctl, err := core.New(eng, core.Options{Seed: s.Split("controller")})
			if err != nil {
				return nil, err
			}
			if err := eng.Start(); err != nil {
				return nil, err
			}
			if err := ctl.Attach(); err != nil {
				return nil, err
			}
			clock.RunUntil(sim.Time(horizon))
			r := &runResult{history: eng.History(), eng: eng, ctl: ctl}
			return []string{
				"NoStop (SPSA)",
				fmt.Sprintf("%.2f", stats.Mean(r.tailE2E(cfg.Warmup))),
				fmt.Sprintf("%d", eng.QueueLen()),
				"0",
				fmt.Sprintf("%.0f", throughput(eng, horizon)),
			}, nil
		},
	}
	rows := make([][]string, len(variants))
	if err := cfg.parallelFor(len(variants), func(i int) error {
		row, err := variants[i]()
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"back pressure holds delay down by throttling input (lost throughput); NoStop reconfigures and absorbs the full stream")
	return t, nil
}

// throughput computes processed records per second over the run.
func throughput(eng *engine.Engine, horizon time.Duration) float64 {
	var processed int64
	for _, b := range eng.History() {
		processed += b.Records
	}
	return float64(processed) / horizon.Seconds()
}

// AblationObjective compares the measured objective forms: the E2E default
// (end-to-end delay + Eq. 3 penalty) against the paper's literal Eq. 3
// (batch interval + penalty), whose stable-region value is constant in the
// executor dimension and leaves SPSA without gradient there.
func AblationObjective(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("abl-objective")
	t := &Table{
		Title:  "Ablation: measured objective form (§4.2.2)",
		Header: []string{"variant", "steady e2e(s)", "iterations", "drains"},
	}
	for _, v := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"e2e + penalty (default)", nil},
		{"Eq. 3 literal (interval + penalty)", func(o *core.Options) { o.Objective = core.ObjectiveEq3 }},
	} {
		e2e, iters, drains, err := ablationRun(cfg, seed.Split(v.name), v.mutate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprintf("%.2f", e2e),
			fmt.Sprintf("%.1f", iters), fmt.Sprintf("%.1f", drains)})
	}
	t.Notes = append(t.Notes,
		"Eq. 3 is flat across stable configurations, so the executor estimate random-walks until it destabilises the system")
	return t, nil
}
