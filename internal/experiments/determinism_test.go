package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/rng"
	"nostop/internal/workload"
)

// These tests are the executable form of the determinism contract (DESIGN.md
// §5d): the same seed must reproduce the same simulation byte for byte, no
// matter how many times it runs in one process. The serialization goes through
// fmt's %+v, which since Go 1.12 prints map keys in sorted order, so any
// difference the comparison surfaces is real nondeterminism (wall-clock reads,
// unseeded randomness, map-order leakage, goroutine interleaving) and not a
// formatting artifact.

// firstDiff returns a readable window around the first byte where a and b
// disagree, so a failure points at the diverging field instead of dumping two
// multi-megabyte histories.
func firstDiff(a, b string) string {
	limit := len(a)
	if len(b) < limit {
		limit = len(b)
	}
	i := 0
	for i < limit && a[i] == b[i] {
		i++
	}
	if i == limit && len(a) == len(b) {
		return "identical"
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	win := func(s string) string {
		hi := i + 80
		if hi > len(s) {
			hi = len(s)
		}
		return s[lo:hi]
	}
	return fmt.Sprintf("first divergence at byte %d:\n  run1: …%s…\n  run2: …%s…", i, win(a), win(b))
}

// TestChaosDeterministicAcrossRuns runs the full three-variant chaos
// experiment twice with the same seed and asserts the rendered tables and
// fault timelines are byte-identical.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("double multi-variant chaos run")
	}
	cfg := quick()
	cfg.Horizon = 30 * time.Minute

	render := func() (string, string) {
		tab, timeline, err := ChaosUnderPlan(cfg, "logreg", ChaosPlan(cfg.Horizon))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		return buf.String(), timeline
	}
	tab1, tl1 := render()
	tab2, tl2 := render()

	if tab1 == "" || tl1 == "" {
		t.Fatal("chaos run produced an empty table or timeline")
	}
	if tab1 != tab2 {
		t.Errorf("chaos tables differ across same-seed runs; %s", firstDiff(tab1, tab2))
	}
	if tl1 != tl2 {
		t.Errorf("fault timelines differ across same-seed runs; %s", firstDiff(tl1, tl2))
	}
}

// TestChaosHistoryByteIdentical drives a single engine+controller chaos run
// twice and compares the complete serialized batch history — every field of
// every BatchStats — and the injector's fault timeline. This is a stricter
// check than the table comparison above: the table aggregates, so compensating
// errors could cancel; the raw history cannot hide them.
func TestChaosHistoryByteIdentical(t *testing.T) {
	const horizon = 25 * time.Minute
	plan := ChaosPlan(horizon)

	run := func() (history, timeline string) {
		wl, err := workload.New("logreg")
		if err != nil {
			t.Fatal(err)
		}
		r, err := runChaos(wl, plan, horizon, rng.New(7).Split("det"), engine.DefaultConfig(),
			func(eng *engine.Engine) error {
				ctl, err := core.New(eng, core.Options{Seed: rng.New(7).Split("controller")})
				if err != nil {
					return err
				}
				return ctl.Attach()
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.res.history) == 0 {
			t.Fatal("chaos run completed no batches")
		}
		return fmt.Sprintf("%+v", r.res.history), r.inj.String()
	}

	h1, tl1 := run()
	h2, tl2 := run()
	if h1 != h2 {
		t.Errorf("batch histories differ across same-seed runs; %s", firstDiff(h1, h2))
	}
	if tl1 != tl2 {
		t.Errorf("fault timelines differ across same-seed runs; %s", firstDiff(tl1, tl2))
	}
}
