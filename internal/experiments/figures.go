package experiments

import (
	"fmt"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// fig2Executors is the fixed executor count for the Fig 2 interval sweep.
const fig2Executors = 12

// fig3Interval is the fixed batch interval for the Fig 3 executor sweep.
const fig3Interval = 12 * time.Second

// sweepPoint is one measured configuration of a Fig 2/3 static sweep; the
// sweep runs fan out over the fleet pool and land in per-index slots.
type sweepPoint struct {
	proc, sched, e2e float64
}

// steadyBatchStats averages processing time and scheduling delay over the
// post-warmup batches of a run.
func steadyBatchStats(history []engine.BatchStats, warmup float64) (procMean, schedMean, e2eMean float64) {
	start := int(float64(len(history)) * warmup)
	var proc, sched, e2e []float64
	for _, b := range history[start:] {
		proc = append(proc, b.ProcessingTime.Seconds())
		sched = append(sched, b.SchedulingDelay.Seconds())
		e2e = append(e2e, b.EndToEndDelay.Seconds())
	}
	return stats.Mean(proc), stats.Mean(sched), stats.Mean(e2e)
}

// Fig2 sweeps the batch interval for Streaming Logistic Regression at the
// paper's [7000, 13000] rec/s band with a fixed executor count, reporting
// batch processing time (Fig 2a) and batch schedule delay (Fig 2b).
//
// Expected shape: processing time grows slowly with the interval; below a
// knee (≈10 s in the paper) processing exceeds the interval, the system is
// unstable and schedule delay explodes; the minimum end-to-end delay sits
// just above the knee.
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig2")
	t := &Table{
		Title:  "Fig 2: effect of batch interval (Streaming Logistic Regression)",
		Header: []string{"interval(s)", "proc time(s)", "sched delay(s)", "e2e delay(s)", "stable"},
	}
	wl := workload.NewLogisticRegression()
	min, max := wl.RateBand()
	// A shorter horizon suffices: no optimizer to converge, but unstable
	// points need enough time for the delay to show its divergence.
	horizon := cfg.Horizon / 4
	var intervals []int
	for interval := 2; interval <= 40; interval += 2 {
		intervals = append(intervals, interval)
	}
	points := make([]sweepPoint, len(intervals))
	if err := cfg.parallelFor(len(intervals), func(i int) error {
		interval := intervals[i]
		res, err := runStatic("logreg",
			ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split(fmt.Sprintf("trace-%d", interval))),
			engine.Config{BatchInterval: time.Duration(interval) * time.Second, Executors: fig2Executors},
			horizon, seed.Split(fmt.Sprintf("run-%d", interval)))
		if err != nil {
			return err
		}
		points[i].proc, points[i].sched, points[i].e2e = steadyBatchStats(res.history, 0.3)
		return nil
	}); err != nil {
		return nil, err
	}
	bestInterval, bestE2E := 0.0, -1.0
	kneeSeen := false
	for i, interval := range intervals {
		p := points[i]
		stable := p.sched < 1 && p.proc <= float64(interval)
		if stable && (bestE2E < 0 || p.e2e < bestE2E) {
			bestInterval, bestE2E = float64(interval), p.e2e
		}
		if !stable {
			kneeSeen = true
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", interval),
			fmt.Sprintf("%.2f", p.proc),
			fmt.Sprintf("%.2f", p.sched),
			fmt.Sprintf("%.2f", p.e2e),
			fmt.Sprintf("%v", stable),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("minimum stable e2e delay %.2fs at interval %.0fs (paper: knee ≈10s)", bestE2E, bestInterval))
	if kneeSeen {
		t.Notes = append(t.Notes, "intervals below the knee are unstable: schedule delay diverges (Fig 2b)")
	}
	return t, nil
}

// Fig3 sweeps the executor count for Streaming Logistic Regression with a
// fixed batch interval, reporting processing time (Fig 3a) and schedule
// delay (Fig 3b).
//
// Expected shape: few executors are slow (unstable below a threshold);
// processing time falls with parallelism, then turns back up as
// coordination overhead dominates — the best count sits near the top of
// the range (≈20 in the paper).
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig3")
	t := &Table{
		Title:  "Fig 3: effect of executor count (Streaming Logistic Regression)",
		Header: []string{"executors", "proc time(s)", "sched delay(s)", "e2e delay(s)", "stable"},
	}
	wl := workload.NewLogisticRegression()
	min, max := wl.RateBand()
	horizon := cfg.Horizon / 4
	var execCounts []int
	for execs := 2; execs <= 20; execs += 2 {
		execCounts = append(execCounts, execs)
	}
	points := make([]sweepPoint, len(execCounts))
	if err := cfg.parallelFor(len(execCounts), func(i int) error {
		execs := execCounts[i]
		res, err := runStatic("logreg",
			ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split(fmt.Sprintf("trace-%d", execs))),
			engine.Config{BatchInterval: fig3Interval, Executors: execs},
			horizon, seed.Split(fmt.Sprintf("run-%d", execs)))
		if err != nil {
			return err
		}
		points[i].proc, points[i].sched, points[i].e2e = steadyBatchStats(res.history, 0.3)
		return nil
	}); err != nil {
		return nil, err
	}
	for i, execs := range execCounts {
		p := points[i]
		stable := p.sched < 1 && p.proc <= fig3Interval.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", execs),
			fmt.Sprintf("%.2f", p.proc),
			fmt.Sprintf("%.2f", p.sched),
			fmt.Sprintf("%.2f", p.e2e),
			fmt.Sprintf("%v", stable),
		})
	}
	// Locate the processing-time minimum for the note.
	bestIdx := 0
	for i := range points {
		if points[i].proc < points[bestIdx].proc {
			bestIdx = i
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("processing time minimal at %d executors (paper: ≈20); overhead bends the curve back up past the optimum",
			2+2*bestIdx))
	return t, nil
}

// Fig5 samples each workload's §6.2.2 input-rate trace, reporting the
// band the generator actually produced.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig5")
	t := &Table{
		Title:  "Fig 5: input data rates (records/s sampled over 10 min)",
		Header: []string{"workload", "band (paper)", "observed min", "observed mean", "observed max"},
	}
	for _, wl := range workload.All() {
		min, max := wl.RateBand()
		tr := ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split(wl.Name()))
		_, rates := ratetrace.Sample(tr, 10*time.Minute, time.Second)
		s := stats.Summarize(rates)
		t.Rows = append(t.Rows, []string{
			wl.Name(),
			fmt.Sprintf("[%.0f, %.0f]", min, max),
			fmt.Sprintf("%.0f", s.Min),
			fmt.Sprintf("%.0f", s.Mean),
			fmt.Sprintf("%.0f", s.Max),
		})
	}
	t.Notes = append(t.Notes, "rates re-drawn uniformly in-band every 5s, matching the paper's generator")
	return t, nil
}

// Fig6 traces NoStop's optimization evolution on each workload: the batch
// interval estimate and the measured processing time per iteration.
//
// Expected shape: early iterations swing widely (large gains), the interval
// descends toward the stability frontier while the constraint keeps
// holding, and the ML workloads show the most dynamic traces.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig6")
	t := &Table{
		Title:  "Fig 6: optimization evolution (per-iteration estimate)",
		Header: []string{"workload", "iter", "time(s)", "interval(s)", "executors", "meanProc(s)", "y+", "y-"},
	}
	wls := workload.All()
	results := make([]*runResult, len(wls))
	if err := cfg.parallelFor(len(wls), func(i int) error {
		name := nameOf(wls[i])
		res, err := runNoStop(name, nil, cfg.Horizon, seed.Split(name), nil)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	for i, wl := range wls {
		res := results[i]
		its := res.ctl.Iterations()
		// Downsample long traces to ≤12 rows per workload for the table;
		// the full series is available programmatically.
		step := 1
		if len(its) > 12 {
			step = len(its) / 12
		}
		for i := 0; i < len(its); i += step {
			it := its[i]
			t.Rows = append(t.Rows, []string{
				wl.Name(),
				fmt.Sprintf("%d", it.K),
				fmt.Sprintf("%.0f", it.At.Seconds()),
				fmt.Sprintf("%.1f", it.Estimate.BatchInterval.Seconds()),
				fmt.Sprintf("%d", it.Estimate.Executors),
				fmt.Sprintf("%.2f", it.MeanProc.Seconds()),
				fmt.Sprintf("%.1f", it.YPlus),
				fmt.Sprintf("%.1f", it.YMinus),
			})
		}
		final := res.ctl.Estimate()
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %d iterations, final %v, phase %v",
			wl.Name(), len(its), final, res.ctl.Phase()))
	}
	return t, nil
}

// Fig6Series returns the full per-iteration series for a workload — the
// data behind the figure, used by tests and external plotting.
func Fig6Series(cfg Config, wlName string) (interval, proc *stats.Series, err error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig6")
	res, err := runNoStop(wlName, nil, cfg.Horizon, seed.Split(wlName), nil)
	if err != nil {
		return nil, nil, err
	}
	interval = &stats.Series{Name: wlName + "/interval"}
	proc = &stats.Series{Name: wlName + "/proc"}
	for _, it := range res.ctl.Iterations() {
		interval.Append(float64(it.K), it.Estimate.BatchInterval.Seconds())
		proc.Append(float64(it.K), it.MeanProc.Seconds())
	}
	return interval, proc, nil
}

// nameOf maps a workload instance to its registry name.
func nameOf(wl workload.Workload) string {
	switch wl.Name() {
	case "LogisticRegression":
		return "logreg"
	case "LinearRegression":
		return "linreg"
	case "WordCount":
		return "wordcount"
	case "PageAnalyze":
		return "pageanalyze"
	default:
		return wl.Name()
	}
}

// Fig7 compares NoStop against the default configuration on every workload,
// repeated Repetitions times; it reports mean ± std of steady-state
// end-to-end delay and the improvement factor.
//
// Expected shape: NoStop significantly reduces the delay on all four
// workloads.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig7")
	t := &Table{
		Title:  fmt.Sprintf("Fig 7: improvement over default configuration (%d runs)", cfg.Repetitions),
		Header: []string{"workload", "default e2e(s)", "NoStop e2e(s)", "improvement"},
	}
	wls := workload.All()
	reps := cfg.Repetitions
	// Flatten (workload, repetition) into one fan-out; each run-pair writes
	// only its own slot, so per-workload tails reassemble in rep order.
	type fig7Run struct{ def, tuned float64 }
	runs := make([]fig7Run, len(wls)*reps)
	if err := cfg.parallelFor(len(runs), func(i int) error {
		name, rep := nameOf(wls[i/reps]), i%reps
		repSeed := seed.Split(fmt.Sprintf("%s-%d", name, rep))
		defRes, err := runStatic(name, nil, engine.DefaultConfig(), cfg.Horizon, repSeed.Split("default"))
		if err != nil {
			return err
		}
		runs[i].def = stats.Mean(defRes.tailE2E(cfg.Warmup))
		tunedRes, err := runNoStop(name, nil, cfg.Horizon, repSeed.Split("nostop"), nil)
		if err != nil {
			return err
		}
		runs[i].tuned = stats.Mean(tunedRes.tailE2E(cfg.Warmup))
		return nil
	}); err != nil {
		return nil, err
	}
	for w, wl := range wls {
		defTail, tunedTail := make([]float64, reps), make([]float64, reps)
		for rep := 0; rep < reps; rep++ {
			defTail[rep] = runs[w*reps+rep].def
			tunedTail[rep] = runs[w*reps+rep].tuned
		}
		imp := stats.Mean(defTail) / stats.Mean(tunedTail)
		t.Rows = append(t.Rows, []string{
			wl.Name(),
			meanStd(defTail),
			meanStd(tunedTail),
			fmt.Sprintf("%.2fx", imp),
		})
	}
	t.Notes = append(t.Notes, "default configuration: interval 30s, 8 executors; NoStop starts from θ_initial mid-range")
	return t, nil
}

// Fig8 compares SPSA (NoStop) with Bayesian Optimization on final delay,
// search time, and configure steps, repeated Repetitions times.
//
// Expected shape: comparable final delays, but SPSA converges with fewer
// configuration changes and less search time.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("fig8")
	t := &Table{
		Title:  fmt.Sprintf("Fig 8: SPSA vs Bayesian Optimization (%d runs)", cfg.Repetitions),
		Header: []string{"workload", "tuner", "final e2e(s)", "search time(s)", "config steps"},
	}
	wls := workload.All()
	reps := cfg.Repetitions
	type fig8Run struct {
		spsaE2E, spsaTime, spsaSteps float64
		boE2E, boTime, boSteps       float64
	}
	runs := make([]fig8Run, len(wls)*reps)
	if err := cfg.parallelFor(len(runs), func(i int) error {
		name, rep := nameOf(wls[i/reps]), i%reps
		repSeed := seed.Split(fmt.Sprintf("%s-%d", name, rep))
		ns, err := runNoStop(name, nil, cfg.Horizon, repSeed.Split("nostop"), nil)
		if err != nil {
			return err
		}
		runs[i].spsaE2E = stats.Mean(ns.tailE2E(cfg.Warmup))
		runs[i].spsaSteps = float64(ns.ctl.ConfigureSteps())
		runs[i].spsaTime = searchTimeNoStop(ns)
		bo, err := runBayesOpt(name, nil, cfg.Horizon, repSeed.Split("bo"))
		if err != nil {
			return err
		}
		runs[i].boE2E = stats.Mean(bo.tailE2E(cfg.Warmup))
		runs[i].boSteps = float64(bo.bo.ConfigureSteps())
		runs[i].boTime = searchTimeBO(bo)
		return nil
	}); err != nil {
		return nil, err
	}
	for w, wl := range wls {
		var spsaE2E, spsaTime, spsaSteps []float64
		var boE2E, boTime, boSteps []float64
		for rep := 0; rep < reps; rep++ {
			r := runs[w*reps+rep]
			spsaE2E = append(spsaE2E, r.spsaE2E)
			spsaTime = append(spsaTime, r.spsaTime)
			spsaSteps = append(spsaSteps, r.spsaSteps)
			boE2E = append(boE2E, r.boE2E)
			boTime = append(boTime, r.boTime)
			boSteps = append(boSteps, r.boSteps)
		}
		t.Rows = append(t.Rows, []string{wl.Name(), "SPSA (NoStop)", meanStd(spsaE2E), meanStd(spsaTime), meanStd(spsaSteps)})
		t.Rows = append(t.Rows, []string{wl.Name(), "BayesOpt", meanStd(boE2E), meanStd(boTime), meanStd(boSteps)})
	}
	t.Notes = append(t.Notes, "search time = virtual seconds until the tuner paused/finished (horizon if it never did)")
	return t, nil
}

// searchTimeNoStop is the time of the last completed iteration when the
// controller ended the run paused (the pause decision is taken inside that
// iteration); if it was still searching at the horizon, the whole run
// counts as search time.
func searchTimeNoStop(r *runResult) float64 {
	its := r.ctl.Iterations()
	if r.ctl.Phase() == core.PhasePaused && len(its) > 0 {
		return its[len(its)-1].At.Seconds()
	}
	return r.eng.Clock().Now().Seconds()
}

// searchTimeBO is the time the BO search stopped (horizon if running).
func searchTimeBO(r *runResult) float64 {
	if r.bo.Done() {
		return r.bo.DoneAt().Seconds()
	}
	evals := r.bo.Evaluations()
	if len(evals) == 0 {
		return 0
	}
	return evals[len(evals)-1].At.Seconds()
}
