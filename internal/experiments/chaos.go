package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nostop/internal/baselines"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// ChaosPlan is the scripted fault schedule the chaos experiment replays
// against every variant: one window of each recoverable fault class, spread
// over the middle half of the horizon so the first quarter establishes the
// pre-fault steady state and the last quarter shows recovery.
func ChaosPlan(horizon time.Duration) faults.Plan {
	at := func(f float64) sim.Time { return sim.Time(float64(horizon) * f) }
	dur := func(f float64) time.Duration { return time.Duration(float64(horizon) * f) }
	return faults.Plan{
		{Kind: faults.Straggler, At: at(0.30), Duration: dur(0.06), NodeID: 4, Factor: 4},
		{Kind: faults.TaskFailures, At: at(0.42), Duration: dur(0.05), Prob: 0.5},
		{Kind: faults.PartitionOutage, At: at(0.53), Duration: dur(0.05), Partition: 1},
		{Kind: faults.NodeCrash, At: at(0.64), Duration: dur(0.06), NodeID: 5},
		{Kind: faults.IngestSpike, At: at(0.72), Duration: dur(0.04), Factor: 1.6},
	}
}

// chaosRun is one variant's engine run under a fault plan.
type chaosRun struct {
	res *runResult
	inj *faults.Injector
}

// runChaos builds an engine for the workload, attaches the given controller
// (may be nil), injects the plan, and runs the horizon. Every variant
// derives its trace from the same split path, so all see identical arrivals.
func runChaos(wl workload.Workload, plan faults.Plan, horizon time.Duration,
	seed *rng.Stream, initial engine.Config,
	attach func(*engine.Engine) error) (*chaosRun, error) {
	clock := sim.NewClock()
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    bandTrace(wl, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Initial:  initial,
	})
	if err != nil {
		return nil, err
	}
	inj, err := faults.Attach(eng, plan)
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	if attach != nil {
		if err := attach(eng); err != nil {
			return nil, err
		}
	}
	clock.RunUntil(sim.Time(horizon))
	return &chaosRun{res: &runResult{history: eng.History(), eng: eng}, inj: inj}, nil
}

// SteadyE2E averages clean-batch end-to-end delay over [from, to); NaN when
// no clean batch completed in the window.
func SteadyE2E(history []engine.BatchStats, from, to sim.Time) float64 {
	var xs []float64
	for _, b := range history {
		if b.DoneAt < from || b.DoneAt >= to || b.FirstAfterReconfig || b.FaultActive {
			continue
		}
		xs = append(xs, b.EndToEndDelay.Seconds())
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Mean(xs)
}

// fmtE2E renders a steadyE2E mean, or "n/a" for an empty window.
func fmtE2E(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// RecoveryWindow is how many consecutive clean batches must sit inside the
// recovery band before the system counts as recovered.
const RecoveryWindow = 3

// RecoveryTime returns how long after the last fault lifts the rolling mean
// of clean-batch e2e delay re-enters 1.2× the pre-fault steady state
// (negative if it never does within the run).
func RecoveryTime(history []engine.BatchStats, planEnd sim.Time, preFault float64) time.Duration {
	band := 1.2 * preFault
	var window []float64
	for _, b := range history {
		if b.DoneAt < planEnd || b.FirstAfterReconfig || b.FaultActive {
			continue
		}
		window = append(window, b.EndToEndDelay.Seconds())
		if len(window) > RecoveryWindow {
			window = window[1:]
		}
		if len(window) == RecoveryWindow && stats.Mean(window) <= band {
			return time.Duration(b.DoneAt - planEnd)
		}
	}
	return -1
}

// fmtRecovery renders a recovery time, or "never" for runs that stay
// degraded to the end of the horizon.
func fmtRecovery(d time.Duration) string {
	if d < 0 {
		return "never"
	}
	return d.Round(time.Second).String()
}

// Chaos runs the scripted fault plan against the default static
// configuration, Spark's PID back-pressure, and NoStop, and reports recovery
// behaviour: how far delay degrades, how fast it returns to within 20% of
// the pre-fault steady state, and the resilience accounting (failed batches,
// retries, replayed records, records lost).
func Chaos(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t, _, err := ChaosUnderPlan(cfg, "logreg", ChaosPlan(cfg.Horizon))
	return t, err
}

// ChaosUnderPlan is Chaos parameterized by workload and fault plan (the
// nostop-chaos command feeds it seeded random plans). The returned string is
// the NoStop run's injected fault timeline.
func ChaosUnderPlan(cfg Config, wlName string, plan faults.Plan) (*Table, string, error) {
	cfg = cfg.withDefaults()
	seed := rng.New(cfg.Seed).Split("chaos")
	wl, err := workload.New(wlName)
	if err != nil {
		return nil, "", err
	}
	if len(plan) == 0 {
		return nil, "", fmt.Errorf("experiments: empty fault plan")
	}
	planEnd := plan.End()
	preFrom, preTo := sim.Time(float64(cfg.Horizon)*0.15), plan.Start()
	if preFrom >= preTo {
		preFrom = preTo / 2
	}

	t := &Table{
		Title: fmt.Sprintf("Chaos: %d fault windows under default / back-pressure / NoStop (%s)", len(plan), wl.Name()),
		Header: []string{"variant", "pre-fault e2e(s)", "post-recovery e2e(s)", "p50/p95 e2e(s)", "recovery",
			"failed", "retries", "replayed", "lost"},
	}

	type variant struct {
		name    string
		initial engine.Config
		attach  func(*engine.Engine) (func() []string, error)
	}
	noExtra := func(*engine.Engine) (func() []string, error) { return nil, nil }
	variants := []variant{
		{"default static", engine.DefaultConfig(), noExtra},
		{"back pressure (PID)", engine.DefaultConfig(), func(eng *engine.Engine) (func() []string, error) {
			bp, err := baselines.NewBackPressure(eng, baselines.BPOptions{})
			if err != nil {
				return nil, err
			}
			return nil, bp.Attach()
		}},
		{"NoStop", engine.DefaultConfig(), func(eng *engine.Engine) (func() []string, error) {
			ctl, err := core.New(eng, core.Options{Seed: seed.Split("controller")})
			if err != nil {
				return nil, err
			}
			if err := ctl.Attach(); err != nil {
				return nil, err
			}
			note := func() []string {
				if b := eng.ConfigBounds(); !b.Contains(ctl.Estimate()) {
					return []string{fmt.Sprintf("NoStop estimate %v escaped engine bounds", ctl.Estimate())}
				}
				return []string{fmt.Sprintf(
					"NoStop excluded %d fault batches, recalibrated %d times, estimate %v stayed in bounds",
					ctl.FaultBatches(), ctl.Recalibrations(), ctl.Estimate())}
			}
			return note, nil
		}},
	}

	var timeline string
	for _, v := range variants {
		var notes func() []string
		run, err := runChaos(wl, plan, cfg.Horizon, seed.Split(v.name), v.initial,
			func(eng *engine.Engine) error {
				n, err := v.attach(eng)
				notes = n
				return err
			})
		if err != nil {
			return nil, "", err
		}
		eng := run.res.eng
		pre := SteadyE2E(run.res.history, preFrom, preTo)
		post := SteadyE2E(run.res.history, planEnd, sim.Time(cfg.Horizon))
		t.Rows = append(t.Rows, []string{
			v.name,
			fmtE2E(pre),
			fmtE2E(post),
			faultedDistribution(run.res.history, plan.Start()),
			fmtRecovery(RecoveryTime(run.res.history, planEnd, pre)),
			fmt.Sprintf("%d", eng.FailedBatches()),
			fmt.Sprintf("%d", eng.TaskRetries()),
			fmt.Sprintf("%d", eng.Redelivered()),
			fmt.Sprintf("%d", eng.FailedRecords()),
		})
		if run.inj.Injected() != len(plan) {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: only %d/%d fault windows injected", v.name, run.inj.Injected(), len(plan)))
		}
		if notes != nil {
			t.Notes = append(t.Notes, notes()...)
		}
		timeline = run.inj.String() // identical plan per variant; last (NoStop) kept
	}
	t.Notes = append(t.Notes,
		"p50/p95 cover every batch completed from the first fault onset on (fault windows included)",
		"recovery = rolling clean-batch e2e mean back within 1.2x of the pre-fault steady state after the last fault lifts",
		"replayed counts at-least-once redeliveries after the partition outage; lost counts records in batches that exhausted the retry budget")
	return t, timeline, nil
}

// faultedDistribution renders the p50/p95 end-to-end delay over every batch
// completed from the first fault onset to the end of the run.
func faultedDistribution(history []engine.BatchStats, from sim.Time) string {
	var xs []float64
	for _, b := range history {
		if b.DoneAt >= from {
			xs = append(xs, b.EndToEndDelay.Seconds())
		}
	}
	if len(xs) == 0 {
		return "n/a"
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return fmt.Sprintf("%.1f/%.1f", stats.Percentile(sorted, 0.50), stats.Percentile(sorted, 0.95))
}
