package experiments

import (
	"bytes"
	"strconv"
	"testing"

	"nostop/internal/core"
	"nostop/internal/fleet"
)

func TestZooSpaceDeclaresWidenedAxes(t *testing.T) {
	space, err := ZooSpace("logreg")
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Validate(); err != nil {
		t.Fatalf("zoo space invalid: %v", err)
	}
	for _, p := range []string{core.ParamBatchInterval, core.ParamExecutors, core.ParamBlockInterval,
		core.ParamIngestCap, core.ParamRetryBudget, core.ParamSpecThreshold} {
		if _, ok := space.Axis(p); !ok {
			t.Errorf("zoo space missing axis %s", p)
		}
	}
	if _, err := ZooSpace("nosuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestZooLineupIsRegistered(t *testing.T) {
	for _, ctl := range ZooControllers() {
		if !fleet.KnownController(ctl) {
			t.Errorf("zoo controller %s not in the fleet registry", ctl)
		}
	}
}

func TestControllerZooShapeAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("five-controller chaos sweep")
	}
	cfg := quick()
	cfg.Repetitions = 2
	tab, err := ControllerZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctls := ZooControllers()
	if len(tab.Rows) != len(ctls) {
		t.Fatalf("zoo table has %d rows, want %d", len(tab.Rows), len(ctls))
	}
	if len(tab.Header) != 9 {
		t.Fatalf("zoo table has %d columns, want 9", len(tab.Header))
	}
	for i, ctl := range ctls {
		if got := cell(t, tab, i, 0); got != ctl {
			t.Errorf("row %d is %s, want %s", i, got, ctl)
		}
	}
	// Every reconfiguring controller moved at least once under chaos.
	// Back-pressure is exempt: it throttles the ingest cap and never touches
	// the engine configuration.
	for i, ctl := range ctls {
		if ctl == fleet.ControllerStatic || ctl == fleet.ControllerBackPressure {
			continue
		}
		if rc, err := strconv.ParseFloat(cell(t, tab, i, 4), 64); err != nil || rc <= 0 {
			t.Errorf("%s reconfigs column %q: err=%v", ctl, cell(t, tab, i, 4), err)
		}
	}

	// Same config, different parallelism: the rendered report must be
	// byte-identical (the zoo-smoke CI gate in miniature).
	serialCfg := cfg
	serialCfg.Parallelism = 1
	serial, err := ControllerZoo(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := cfg
	parallelCfg.Parallelism = 8
	parallel, err := ControllerZoo(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	serial.Render(&a)
	parallel.Render(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("zoo report differs between parallelism 1 and 8")
	}
}
