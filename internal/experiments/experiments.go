// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) against the simulated substrate. Each experiment returns
// a structured result with a text renderer, so the nostop-bench command and
// the benchmark harness print the same rows/series the paper reports.
//
// Per-experiment index (see DESIGN.md §3 for the mapping discussion):
//
//	Table2()       – the heterogeneous cluster inventory
//	Fig2(cfg)      – batch interval vs processing time / schedule delay
//	Fig3(cfg)      – executor count vs processing time / schedule delay
//	Fig5(cfg)      – time-varying input rate traces per workload
//	Fig6(cfg)      – NoStop's optimization evolution per workload
//	Fig7(cfg)      – improvement over the default configuration (5 runs)
//	Fig8(cfg)      – SPSA vs Bayesian Optimization (5 runs)
//	BackPressure(cfg) – NoStop vs Spark back-pressure (abstract's claim)
//	Ablation*(cfg) – design-choice studies from DESIGN.md §4
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"nostop/internal/baselines"
	"nostop/internal/cluster"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/fleet"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives every stochastic component; runs with equal seeds are
	// bit-identical.
	Seed uint64
	// Repetitions for the averaged experiments; 0 means the paper's 5.
	Repetitions int
	// Horizon is the virtual duration of each run; 0 means 2h.
	Horizon time.Duration
	// Warmup is the fraction of each run discarded before measuring
	// steady state; 0 means 0.7 (the optimizer needs most of the run to
	// converge, and the figures report converged performance).
	Warmup float64
	// Parallelism bounds how many independent simulation runs execute
	// concurrently inside one experiment (via the fleet worker pool);
	// 0 means NumCPU. It changes wall time only: every run's seeds are
	// fixed up front and results land in per-run slots, so the rendered
	// tables are byte-identical at any parallelism.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repetitions == 0 {
		c.Repetitions = 5
	}
	if c.Horizon == 0 {
		c.Horizon = 2 * time.Hour
	}
	if c.Warmup == 0 {
		c.Warmup = 0.7
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

// parallelFor fans fn(i) for i in [0,n) out over the fleet worker pool at
// the configured parallelism. Callers precompute per-index seeds and write
// only index-owned slots, which keeps results order-independent.
func (c Config) parallelFor(n int, fn func(int) error) error {
	return fleet.ParallelFor(n, c.Parallelism, fn)
}

// Quick returns a configuration small enough for unit tests: one
// repetition over a 40-minute horizon.
func Quick() Config {
	return Config{Seed: 1, Repetitions: 1, Horizon: 40 * time.Minute, Warmup: 0.5}
}

// Table is a rendered experiment result: a title, a header row, and rows of
// formatted cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the qualitative observations that accompany the
	// paper's figure (who wins, where the knee is).
	Notes []string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// bandTrace builds the §6.2.2 uniform-band trace for a workload.
func bandTrace(wl workload.Workload, seed *rng.Stream) ratetrace.Trace {
	min, max := wl.RateBand()
	return ratetrace.NewUniformBand(min, max, 5*time.Second, seed.Split("trace-"+wl.Name()))
}

// runResult captures one engine run.
type runResult struct {
	history []engine.BatchStats
	eng     *engine.Engine
	ctl     *core.Controller // nil unless NoStop ran
	bo      *baselines.BayesOpt
}

// tailE2E returns steady-state end-to-end delays (after warmup), skipping
// reconfiguration batches.
func (r *runResult) tailE2E(warmup float64) []float64 {
	start := int(float64(len(r.history)) * warmup)
	var out []float64
	for _, b := range r.history[start:] {
		if b.FirstAfterReconfig {
			continue
		}
		out = append(out, b.EndToEndDelay.Seconds())
	}
	return out
}

// runStatic executes a fixed configuration over the horizon.
func runStatic(wlName string, trace ratetrace.Trace, cfg engine.Config, horizon time.Duration, seed *rng.Stream) (*runResult, error) {
	clock := sim.NewClock()
	wl, err := workload.New(wlName)
	if err != nil {
		return nil, err
	}
	if trace == nil {
		trace = bandTrace(wl, seed)
	}
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    trace,
		Seed:     seed.Split("engine"),
		Initial:  cfg,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	clock.RunUntil(sim.Time(horizon))
	return &runResult{history: eng.History(), eng: eng}, nil
}

// runNoStop executes a NoStop-tuned run over the horizon.
func runNoStop(wlName string, trace ratetrace.Trace, horizon time.Duration, seed *rng.Stream, mutate func(*core.Options)) (*runResult, error) {
	clock := sim.NewClock()
	wl, err := workload.New(wlName)
	if err != nil {
		return nil, err
	}
	if trace == nil {
		trace = bandTrace(wl, seed)
	}
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    trace,
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
	})
	if err != nil {
		return nil, err
	}
	copts := core.Options{Seed: seed.Split("controller")}
	if mutate != nil {
		mutate(&copts)
	}
	ctl, err := core.New(eng, copts)
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	if err := ctl.Attach(); err != nil {
		return nil, err
	}
	clock.RunUntil(sim.Time(horizon))
	return &runResult{history: eng.History(), eng: eng, ctl: ctl}, nil
}

// runBayesOpt executes a Bayesian-optimization-tuned run.
func runBayesOpt(wlName string, trace ratetrace.Trace, horizon time.Duration, seed *rng.Stream) (*runResult, error) {
	clock := sim.NewClock()
	wl, err := workload.New(wlName)
	if err != nil {
		return nil, err
	}
	if trace == nil {
		trace = bandTrace(wl, seed)
	}
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    trace,
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
	})
	if err != nil {
		return nil, err
	}
	bo, err := baselines.NewBayesOpt(eng, baselines.BOOptions{Seed: seed.Split("bo")})
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	if err := bo.Attach(); err != nil {
		return nil, err
	}
	clock.RunUntil(sim.Time(horizon))
	return &runResult{history: eng.History(), eng: eng, bo: bo}, nil
}

// meanStd formats "m ± s".
func meanStd(xs []float64) string {
	s := stats.Summarize(xs)
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.Std)
}

// Table2 renders the paper's cluster inventory from the live model.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: List of cluster nodes",
		Header: []string{"Node ID", "CPU", "Cores", "Disk", "Type", "Speed", "DiskFactor"},
	}
	for _, n := range cluster.Table2().Nodes() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n.ID),
			n.CPUModel,
			fmt.Sprintf("%d", n.Cores),
			n.Disk.String(),
			n.Role.String(),
			fmt.Sprintf("%.2f", n.SpeedFactor),
			fmt.Sprintf("%.2f", n.DiskFactor),
		})
	}
	t.Notes = append(t.Notes, "speed/disk factors are the simulation's heterogeneity model")
	return t
}

// RunAll executes every experiment at the given scale and renders them.
func RunAll(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	Table2().Render(w)
	for _, run := range []func(Config) (*Table, error){
		Fig2, Fig3, Fig5, Fig6, Fig7, Fig8, BackPressure,
		AblationPenaltyRamp, AblationFirstBatch, AblationWindow,
		AblationReset, AblationGains, AblationScaling, AblationStepClip,
		AblationObjective,
		Extension3Param, ExtensionAutoGains, ExtensionNodeFailure,
		Chaos,
	} {
		t, err := run(cfg)
		if err != nil {
			return err
		}
		t.Render(w)
	}
	return nil
}
