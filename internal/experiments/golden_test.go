package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/fleet"
	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// Golden-master regression tests.
//
// The artifacts under testdata/golden were generated at the commit
// immediately preceding the hot-path optimization of the sim kernel and
// record pipeline (event pooling, 4-ary heap, record chunks, pooled trace
// encoder). Every run here must keep reproducing them byte-for-byte: the
// optimization is only allowed to change how fast the simulator runs, never
// a single output byte of a same-seed run.
//
// Regeneration (only after an *intentional* behavior change, never to paper
// over a diff you cannot explain):
//
//	make golden        # == GOLDEN_UPDATE=1 go test ./internal/experiments -run TestGolden
//
// and commit the updated testdata/golden files together with the change
// that justifies them. See docs/PERF.md for the full workflow.

// goldenDir is where the checked-in artifacts live.
const goldenDir = "testdata/golden"

// goldenUpdate reports whether this invocation should rewrite the artifacts.
func goldenUpdate() bool { return os.Getenv("GOLDEN_UPDATE") == "1" }

// checkGolden compares got against the named artifact, failing with a
// readable first-divergence window. With GOLDEN_UPDATE=1 it rewrites the
// artifact instead.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if goldenUpdate() {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden artifact missing (run `make golden` at the last known-good commit): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s diverged from the golden master (%d golden bytes, %d got); %s",
			name, len(want), len(got), firstDiff(string(want), string(got)))
	}
}

// goldenObservedRun is the fixed single-engine scenario behind the metrics
// and trace goldens: a chaos-plan run with the NoStop controller and the
// full observability layer attached. Axes are frozen — changing any of them
// invalidates the artifacts.
func goldenObservedRun(t *testing.T) (prom, trace string) {
	t.Helper()
	const horizon = 20 * time.Minute
	wl, err := workload.New("logreg")
	if err != nil {
		t.Fatal(err)
	}
	seed := rng.New(11).Split("golden")
	clock := sim.NewClock()
	reg := metrics.NewRegistry()
	tr := tracing.New(clock, 0)
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    bandTrace(wl, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Initial:  engine.DefaultConfig(),
		Metrics:  reg,
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.Attach(eng, ChaosPlan(horizon))
	if err != nil {
		t.Fatal(err)
	}
	inj.Observe(reg, tr)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(eng, core.Options{Seed: rng.New(11).Split("controller"), Metrics: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(horizon))
	if len(eng.History()) == 0 {
		t.Fatal("golden run completed no batches")
	}
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return reg.String(), buf.String()
}

// goldenFleetSpec is the fixed sweep behind the manifest golden: small
// enough to run in a test, wide enough to cross workloads, controllers, and
// seeds.
func goldenFleetSpec() fleet.Spec {
	return fleet.Spec{
		Name:        "golden-fleet",
		Seeds:       []uint64{1, 2},
		Workloads:   []string{"logreg", "wordcount"},
		Controllers: []string{fleet.ControllerStatic, fleet.ControllerNoStop},
		Horizon:     fleet.Duration(10 * time.Minute),
		Warmup:      0.5,
	}
}

// TestGoldenFleetManifest locks the fleet manifest bytes of a fixed sweep.
func TestGoldenFleetManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fleet sweep skipped in -short mode")
	}
	rep, err := fleet.Run(goldenFleetSpec(), fleet.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := rep.Manifest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet_manifest.json", manifest)
	aggs, err := fleet.EncodeAggregates(rep.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet_aggregates.json", aggs)
}

// TestGoldenObservability locks the Prometheus exposition and the Chrome
// trace JSON of the fixed observed run.
func TestGoldenObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("golden observed run skipped in -short mode")
	}
	prom, trace := goldenObservedRun(t)
	checkGolden(t, "metrics.prom", []byte(prom))
	checkGolden(t, "trace.json", []byte(trace))
	if n, err := tracing.Validate(strings.NewReader(trace)); err != nil {
		t.Errorf("golden trace fails schema validation: %v", err)
	} else if n == 0 {
		t.Error("golden trace contains no events")
	}
}

// TestGoldenArtifactsPresent guards against accidentally deleting the
// checked-in artifacts: updating them is always an explicit `make golden`.
func TestGoldenArtifactsPresent(t *testing.T) {
	if goldenUpdate() {
		t.Skip("updating")
	}
	for _, name := range []string{
		"fleet_manifest.json", "fleet_aggregates.json", "metrics.prom", "trace.json",
	} {
		st, err := os.Stat(filepath.Join(goldenDir, name))
		if err != nil {
			t.Errorf("missing golden artifact %s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("golden artifact %s is empty", name)
		}
	}
}

// sanity: firstDiff is shared with the determinism tests; keep the helper
// honest about equal inputs so golden failures never report "identical".
func TestFirstDiffReportsIndex(t *testing.T) {
	if got := firstDiff("abc", "abc"); got != "identical" {
		t.Fatalf("firstDiff on equal strings = %q", got)
	}
	if got := firstDiff("abcd", "abxd"); !strings.Contains(got, fmt.Sprint(2)) {
		t.Fatalf("firstDiff should name byte offset 2, got %q", got)
	}
}
