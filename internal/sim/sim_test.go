package sim

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestAtRunsInOrder(t *testing.T) {
	c := NewClock()
	var got []int
	c.At(ms(30), func() { got = append(got, 3) })
	c.At(ms(10), func() { got = append(got, 1) })
	c.At(ms(20), func() { got = append(got, 2) })
	c.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if c.Now() != ms(30) {
		t.Fatalf("clock at %v, want 30ms", c.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(ms(5), func() { got = append(got, i) })
	}
	c.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at same instant reordered: %v", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	c := NewClock()
	var fired Time
	c.At(ms(10), func() {
		c.After(ms(5), func() { fired = c.Now() })
	})
	c.Run()
	if fired != ms(15) {
		t.Fatalf("After fired at %v, want 15ms", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := NewClock()
	c.At(ms(10), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		c.At(ms(5), func() {})
	})
	c.Run()
}

func TestNilHandlerPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	c.At(ms(1), nil)
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.At(ms(10), func() { fired = true })
	c.Cancel(e)
	c.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() false after Cancel")
	}
	// Double cancel and cancel of the zero Event must not panic.
	c.Cancel(e)
	c.Cancel(Event{})
}

func TestCancelOneOfMany(t *testing.T) {
	c := NewClock()
	var got []int
	var evs []Event
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, c.At(ms(i+1), func() { got = append(got, i) }))
	}
	c.Cancel(evs[2])
	c.Run()
	for _, v := range got {
		if v == 2 {
			t.Fatalf("canceled event executed: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("got %d events, want 4", len(got))
	}
}

func TestRunUntilHorizon(t *testing.T) {
	c := NewClock()
	var fired []Time
	for i := 1; i <= 5; i++ {
		i := i
		c.At(ms(i*10), func() { fired = append(fired, c.Now()) })
	}
	c.RunUntil(ms(25))
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if c.Now() != ms(25) {
		t.Fatalf("clock at %v, want horizon 25ms", c.Now())
	}
	c.RunUntil(ms(100))
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesToHorizonWhenIdle(t *testing.T) {
	c := NewClock()
	c.RunUntil(ms(50))
	if c.Now() != ms(50) {
		t.Fatalf("idle clock at %v, want 50ms", c.Now())
	}
}

func TestStopInsideHandler(t *testing.T) {
	c := NewClock()
	count := 0
	c.At(ms(1), func() { count++; c.Stop() })
	c.At(ms(2), func() { count++ })
	c.Run()
	if count != 1 {
		t.Fatalf("executed %d events after Stop, want 1", count)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d, want 1", c.Pending())
	}
}

func TestStepEmpty(t *testing.T) {
	c := NewClock()
	if c.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestExecutedCounter(t *testing.T) {
	c := NewClock()
	for i := 1; i <= 7; i++ {
		c.At(ms(i), func() {})
	}
	c.Run()
	if c.Executed() != 7 {
		t.Fatalf("Executed=%d, want 7", c.Executed())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	c := NewClock()
	var fires []Time
	tk := c.NewTicker(ms(10), func() { fires = append(fires, c.Now()) })
	c.RunUntil(ms(45))
	tk.Stop()
	if len(fires) != 4 {
		t.Fatalf("ticker fired %d times, want 4: %v", len(fires), fires)
	}
	for i, ft := range fires {
		if want := ms((i + 1) * 10); ft != want {
			t.Fatalf("fire %d at %v, want %v", i, ft, want)
		}
	}
}

func TestTickerStopInsideHandler(t *testing.T) {
	c := NewClock()
	count := 0
	var tk *Ticker
	tk = c.NewTicker(ms(10), func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	c.RunUntil(ms(200))
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3, want 3", count)
	}
}

func TestTickerReset(t *testing.T) {
	c := NewClock()
	var fires []Time
	tk := c.NewTicker(ms(10), func() { fires = append(fires, c.Now()) })
	c.At(ms(25), func() { tk.Reset(ms(50)) })
	c.RunUntil(ms(130))
	tk.Stop()
	// Fires at 10, 20, then reset at 25 → 75, 125.
	want := []Time{ms(10), ms(20), ms(75), ms(125)}
	if len(fires) != len(want) {
		t.Fatalf("fires %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires %v, want %v", fires, want)
		}
	}
	if tk.Period() != ms(50) {
		t.Fatalf("period %v, want 50ms", tk.Period())
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("non-positive ticker period did not panic")
		}
	}()
	c.NewTicker(0, func() {})
}

func TestPendingSkipsCanceled(t *testing.T) {
	c := NewClock()
	e1 := c.At(ms(1), func() {})
	c.At(ms(2), func() {})
	c.Cancel(e1)
	if c.Pending() != 1 {
		t.Fatalf("Pending=%d, want 1", c.Pending())
	}
}

func TestDeepNesting(t *testing.T) {
	// Events scheduling events: a chain of 1000 events must all execute
	// at strictly increasing times.
	c := NewClock()
	count := 0
	var next func()
	next = func() {
		count++
		if count < 1000 {
			c.After(ms(1), next)
		}
	}
	c.At(0, next)
	c.Run()
	if count != 1000 {
		t.Fatalf("chain executed %d, want 1000", count)
	}
	if c.Now() != ms(999) {
		t.Fatalf("clock at %v, want 999ms", c.Now())
	}
}
