// Package sim provides a deterministic discrete-event simulation kernel.
//
// All NoStop experiments run in virtual time: a Clock owns a priority queue
// of timestamped events and advances by executing the earliest event. Events
// scheduled for the same instant execute in FIFO order of scheduling, which
// makes runs fully deterministic for a fixed seed and schedule.
//
// The kernel is intentionally single-threaded: streaming-system dynamics
// (queueing, scheduling delay, reconfiguration) are modelled as events, not
// as goroutines, so that a multi-hour cluster experiment replays in
// milliseconds and every run is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual instant, measured as an offset from the simulation epoch.
type Time = time.Duration

// Infinity is a horizon later than any practical simulation instant.
const Infinity Time = math.MaxInt64

// Event is a scheduled callback. Handlers run with the clock set to the
// event's due time.
type Event struct {
	due      Time
	seq      uint64
	index    int // heap index; -1 when not queued
	canceled bool
	fn       func()
}

// Due reports the virtual time at which the event fires.
func (e *Event) Due() Time { return e.due }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue is a min-heap ordered by (due, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is the discrete-event scheduler. The zero value is not usable; use
// NewClock.
type Clock struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// executed counts events that have fired, for diagnostics and tests.
	executed uint64
}

// NewClock returns a clock at virtual time zero with an empty event queue.
func NewClock() *Clock {
	c := &Clock{}
	heap.Init(&c.queue)
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending returns the number of queued (not yet fired, not canceled) events.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Executed returns the number of events that have fired so far.
func (c *Clock) Executed() uint64 { return c.executed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a modelling bug, and silently reordering events would
// corrupt causality.
func (c *Clock) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil handler")
	}
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	e := &Event{due: t, seq: c.seq, fn: fn, index: -1}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time. Negative d
// panics via At.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	return c.At(c.now+d, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&c.queue, e.index)
}

// Stop makes the currently running Run/RunUntil return after the in-flight
// event handler completes. Pending events stay queued.
func (c *Clock) Stop() { c.stopped = true }

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.canceled {
			continue
		}
		c.now = e.due
		c.executed++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty, Stop is
// called, or the next event is due strictly after horizon. The clock is left
// at min(horizon, time of last executed event); if the queue drains early the
// clock advances to the horizon so periodic models can resume cleanly.
func (c *Clock) RunUntil(horizon Time) {
	c.stopped = false
	for !c.stopped {
		if c.queue.Len() == 0 {
			break
		}
		next := c.peek()
		if next.due > horizon {
			break
		}
		c.Step()
	}
	if c.now < horizon && !c.stopped {
		c.now = horizon
	}
}

// Run executes events until the queue drains or Stop is called.
func (c *Clock) Run() {
	c.stopped = false
	for !c.stopped && c.Step() {
	}
}

func (c *Clock) peek() *Event {
	// Skip leading canceled events without firing anything.
	for c.queue.Len() > 0 {
		e := c.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&c.queue)
	}
	return nil
}

// Ticker repeatedly schedules a handler at a fixed period until stopped.
type Ticker struct {
	clock  *Clock
	period time.Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker schedules fn every period, with the first firing one period from
// now. period must be positive.
func (c *Clock) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.clock.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.schedule()
		}
	})
}

// Reset changes the ticker period; the next firing is one new period from
// the current time.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.clock.Cancel(t.ev)
	t.period = period
	if !t.stop {
		t.schedule()
	}
}

// Period returns the current period.
func (t *Ticker) Period() time.Duration { return t.period }

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stop = true
	t.clock.Cancel(t.ev)
}
