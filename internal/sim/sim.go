// Package sim provides a deterministic discrete-event simulation kernel.
//
// All NoStop experiments run in virtual time: a Clock owns a priority queue
// of timestamped events and advances by executing the earliest event. Events
// scheduled for the same instant execute in FIFO order of scheduling, which
// makes runs fully deterministic for a fixed seed and schedule.
//
// The kernel is intentionally single-threaded: streaming-system dynamics
// (queueing, scheduling delay, reconfiguration) are modelled as events, not
// as goroutines, so that a multi-hour cluster experiment replays in
// milliseconds and every run is exactly reproducible.
//
// Hot-path design (see docs/PERF.md): event nodes are pooled on a free list
// and recycled the moment they fire or are canceled, so steady-state
// scheduling allocates nothing; the priority queue is an indexed 4-ary heap
// (shallower than a binary heap, fewer cache misses per sift); and events
// scheduled for the current instant bypass the heap entirely through a FIFO
// ring, which makes same-time bursts O(1) per event. Event handles carry a
// generation stamp so a handle to a recycled node can never cancel a later
// incarnation.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual instant, measured as an offset from the simulation epoch.
type Time = time.Duration

// Infinity is a horizon later than any practical simulation instant.
const Infinity Time = math.MaxInt64

// node is the pooled scheduler entry behind an Event handle. Nodes are
// recycled through the clock's free list; the gen counter advances every
// time an incarnation ends (fires or is canceled), invalidating outstanding
// handles to the previous incarnation.
type node struct {
	due      Time
	seq      uint64
	gen      uint64
	index    int32 // heap index; notQueued / inFIFO when not in the heap
	canceled bool  // FIFO-resident incarnation canceled (lazily reaped)
	lastEnd  bool  // how the previous incarnation ended: true = canceled
	fn       func()
	next     *node // free-list link
}

// index sentinels for nodes outside the heap.
const (
	notQueued int32 = -1
	inFIFO    int32 = -2
)

// Event is a handle to one scheduled callback. It is a small value: copy it
// freely. The zero Event is inert (Cancel is a no-op, Canceled reports
// false). Handlers run with the clock set to the event's due time.
type Event struct {
	n   *node
	gen uint64
	due Time
}

// Due reports the virtual time at which the event fires (or fired).
func (e Event) Due() Time { return e.due }

// Pending reports whether the event is still scheduled: it has neither fired
// nor been canceled.
func (e Event) Pending() bool { return e.n != nil && e.n.gen == e.gen }

// Canceled reports whether Cancel was called before the event fired. The
// answer is tracked until the underlying pooled node is recycled into a new
// schedule; a handle retained across later reschedules of the same slot
// reports false.
func (e Event) Canceled() bool {
	if e.n == nil || e.n.gen == e.gen {
		return false // zero handle, or still pending
	}
	if e.n.gen == e.gen+1 {
		return e.n.lastEnd
	}
	return false
}

// heap4 is an indexed 4-ary min-heap of nodes ordered by (due, seq). Each
// node records its own position so Cancel can remove it in O(log₄ n).
type heap4 struct {
	a []*node
}

// eventLess orders nodes by (due, seq): earlier time first, FIFO within an
// instant.
func eventLess(x, y *node) bool {
	if x.due != y.due {
		return x.due < y.due
	}
	return x.seq < y.seq
}

func (h *heap4) len() int { return len(h.a) }

func (h *heap4) push(n *node) {
	n.index = int32(len(h.a))
	h.a = append(h.a, n)
	h.up(len(h.a) - 1)
}

// pop removes and returns the minimum node.
func (h *heap4) pop() *node {
	root := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[0].index = 0
	h.a[last] = nil
	h.a = h.a[:last]
	if last > 0 {
		h.down(0)
	}
	root.index = notQueued
	return root
}

// remove deletes the node at index i.
func (h *heap4) remove(i int) {
	last := len(h.a) - 1
	removed := h.a[i]
	if i != last {
		h.a[i] = h.a[last]
		h.a[i].index = int32(i)
	}
	h.a[last] = nil
	h.a = h.a[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	removed.index = notQueued
}

func (h *heap4) up(i int) {
	n := h.a[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h.a[parent]
		if !eventLess(n, p) {
			break
		}
		h.a[i] = p
		p.index = int32(i)
		i = parent
	}
	h.a[i] = n
	n.index = int32(i)
}

func (h *heap4) down(i int) {
	n := h.a[i]
	size := len(h.a)
	for {
		first := i<<2 + 1
		if first >= size {
			break
		}
		// Pick the smallest of up to four children.
		min := first
		end := first + 4
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if eventLess(h.a[c], h.a[min]) {
				min = c
			}
		}
		if !eventLess(h.a[min], n) {
			break
		}
		h.a[i] = h.a[min]
		h.a[i].index = int32(i)
		i = min
	}
	h.a[i] = n
	n.index = int32(i)
}

// Clock is the discrete-event scheduler. The zero value is not usable; use
// NewClock.
type Clock struct {
	now     Time
	seq     uint64
	heap    heap4
	stopped bool

	// fifo is the same-instant fast path: events scheduled for exactly the
	// current time bypass the heap and append here. FIFO entries are in
	// (due, seq) order by construction — due values never decrease (the
	// clock only moves forward) and seq increases per schedule — so the
	// ring head is always the FIFO minimum. Canceled entries are reaped
	// lazily at the head.
	fifo       []*node
	fifoHead   int
	fifoLen    int
	fifoCancel int // canceled entries still occupying ring slots

	free    *node // recycled nodes
	pending int   // live (scheduled, not canceled) events

	// executed counts events that have fired, for diagnostics and tests.
	executed uint64
}

// NewClock returns a clock at virtual time zero with an empty event queue.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending returns the number of queued (not yet fired, not canceled) events.
func (c *Clock) Pending() int { return c.pending }

// Executed returns the number of events that have fired so far.
func (c *Clock) Executed() uint64 { return c.executed }

// alloc takes a node from the free list (or the heap's allocator).
func (c *Clock) alloc() *node {
	if n := c.free; n != nil {
		c.free = n.next
		n.next = nil
		return n
	}
	return &node{index: notQueued} //nostop:allow hotalloc -- pool miss: one node per high-water mark, then recycled forever
}

// recycle ends a node's current incarnation and returns it to the free
// list. endedCanceled records how it ended for Event.Canceled.
func (c *Clock) recycle(n *node, endedCanceled bool) {
	n.fn = nil
	n.canceled = false
	n.lastEnd = endedCanceled
	n.gen++
	n.index = notQueued
	n.next = c.free
	c.free = n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a modelling bug, and silently reordering events would
// corrupt causality.
//
//nostop:hotpath
func (c *Clock) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: At called with nil handler")
	}
	if t < c.now {
		//nostop:allow hotalloc -- panic path: allocation is irrelevant once causality is broken
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	n := c.alloc()
	n.due = t
	n.seq = c.seq
	n.fn = fn
	c.seq++
	c.pending++
	if t == c.now {
		c.fifoPush(n)
	} else {
		c.heap.push(n)
	}
	return Event{n: n, gen: n.gen, due: t}
}

// After schedules fn to run d after the current virtual time. Negative d
// panics via At.
//nostop:hotpath
func (c *Clock) After(d time.Duration, fn func()) Event {
	return c.At(c.now+d, fn)
}

// fifoPush appends a node to the same-instant ring, growing it if full.
func (c *Clock) fifoPush(n *node) {
	if c.fifoLen == len(c.fifo) {
		c.fifoGrow()
	}
	tail := c.fifoHead + c.fifoLen
	if tail >= len(c.fifo) {
		tail -= len(c.fifo)
	}
	c.fifo[tail] = n
	c.fifoLen++
	n.index = inFIFO
}

// fifoGrow doubles the ring, unwrapping it into index order.
func (c *Clock) fifoGrow() {
	size := len(c.fifo) * 2
	if size == 0 {
		size = 16
	}
	next := make([]*node, size) //nostop:allow hotalloc -- amortized ring doubling: O(log n) growths per run, then steady-state 0-alloc
	for i := 0; i < c.fifoLen; i++ {
		next[i] = c.fifo[(c.fifoHead+i)%len(c.fifo)]
	}
	c.fifo = next
	c.fifoHead = 0
}

// fifoFront returns the first live FIFO node without removing it, reaping
// canceled entries at the head. Returns nil when the ring is empty.
func (c *Clock) fifoFront() *node {
	for c.fifoLen > 0 {
		n := c.fifo[c.fifoHead]
		if !n.canceled {
			return n
		}
		// Reap a lazily-canceled entry: its incarnation already ended (gen
		// bumped in Cancel); now the slot reference dies too, so the node
		// can rejoin the free list.
		c.fifoPopFront()
		c.fifoCancel--
		n.canceled = false
		n.index = notQueued
		n.next = c.free
		c.free = n
	}
	return nil
}

// fifoPopFront removes the head entry.
func (c *Clock) fifoPopFront() *node {
	n := c.fifo[c.fifoHead]
	c.fifo[c.fifoHead] = nil
	c.fifoHead++
	if c.fifoHead == len(c.fifo) {
		c.fifoHead = 0
	}
	c.fifoLen--
	return n
}

// Cancel removes a scheduled event. Canceling an already-fired,
// already-canceled, or zero event is a no-op: the generation stamp in the
// handle detects a node that has moved on to a later incarnation.
//nostop:hotpath
func (c *Clock) Cancel(e Event) {
	n := e.n
	if n == nil || n.gen != e.gen {
		return
	}
	c.pending--
	switch {
	case n.index >= 0:
		c.heap.remove(int(n.index))
		c.recycle(n, true)
	case n.index == inFIFO:
		// The ring still references the node, so it cannot rejoin the free
		// list yet; mark it for lazy reaping and end the incarnation.
		n.canceled = true
		n.fn = nil
		n.lastEnd = true
		n.gen++
		c.fifoCancel++
	default:
		// Not queued: already being fired; treat as fired.
		c.pending++
	}
}

// Stop makes the currently running Run/RunUntil return after the in-flight
// event handler completes. Pending events stay queued.
func (c *Clock) Stop() { c.stopped = true }

// next pops the earliest pending event, comparing the FIFO head against the
// heap root by (due, seq). Returns nil when nothing is queued.
func (c *Clock) next() *node {
	f := c.fifoFront()
	if c.heap.len() == 0 {
		if f == nil {
			return nil
		}
		return c.fifoPopFront()
	}
	h := c.heap.a[0]
	if f != nil && eventLess(f, h) {
		return c.fifoPopFront()
	}
	return c.heap.pop()
}

// peek returns the earliest pending event without removing it (nil when the
// queue is empty).
func (c *Clock) peek() *node {
	f := c.fifoFront()
	if c.heap.len() == 0 {
		return f
	}
	h := c.heap.a[0]
	if f != nil && eventLess(f, h) {
		return f
	}
	return h
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
//nostop:hotpath
func (c *Clock) Step() bool {
	n := c.next()
	if n == nil {
		return false
	}
	c.now = n.due
	c.pending--
	c.executed++
	fn := n.fn
	c.recycle(n, false)
	fn()
	return true
}

// RunUntil executes events in order until the queue is empty, Stop is
// called, or the next event is due strictly after horizon. The clock is left
// at min(horizon, time of last executed event); if the queue drains early the
// clock advances to the horizon so periodic models can resume cleanly.
//nostop:hotpath
func (c *Clock) RunUntil(horizon Time) {
	c.stopped = false
	for !c.stopped {
		next := c.peek()
		if next == nil || next.due > horizon {
			break
		}
		c.Step()
	}
	if c.now < horizon && !c.stopped {
		c.now = horizon
	}
}

// Run executes events until the queue drains or Stop is called.
//nostop:hotpath
func (c *Clock) Run() {
	c.stopped = false
	for !c.stopped && c.Step() {
	}
}

// Ticker repeatedly schedules a handler at a fixed period until stopped.
type Ticker struct {
	clock  *Clock
	period time.Duration
	fn     func()
	tick   func() // allocated once; rescheduling must not allocate per tick
	ev     Event
	stop   bool
}

// NewTicker schedules fn every period, with the first firing one period from
// now. period must be positive.
func (c *Clock) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.tick = func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.schedule()
		}
	}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.clock.After(t.period, t.tick)
}

// Reset changes the ticker period; the next firing is one new period from
// the current time.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.clock.Cancel(t.ev)
	t.period = period
	if !t.stop {
		t.schedule()
	}
}

// Period returns the current period.
func (t *Ticker) Period() time.Duration { return t.period }

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stop = true
	t.clock.Cancel(t.ev)
}
