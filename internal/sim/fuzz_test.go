package sim

import (
	"fmt"
	"testing"
	"time"
)

// checkInvariants validates the kernel's internal structure: the 4-ary heap
// property, index back-pointers, FIFO (due, seq) monotonicity, the live
// counter, and the no-canceled-nodes-in-heap rule.
func checkInvariants(c *Clock) error {
	for i, n := range c.heap.a {
		if n.index != int32(i) {
			return fmt.Errorf("heap[%d] has index %d", i, n.index)
		}
		if n.canceled {
			return fmt.Errorf("heap[%d] is canceled (heap must remove eagerly)", i)
		}
		if n.fn == nil {
			return fmt.Errorf("heap[%d] has nil fn", i)
		}
		if i > 0 {
			parent := c.heap.a[(i-1)>>2]
			if eventLess(n, parent) {
				return fmt.Errorf("heap property violated at %d: (%v,%d) < parent (%v,%d)",
					i, n.due, n.seq, parent.due, parent.seq)
			}
		}
	}
	live := len(c.heap.a)
	var prev *node
	canceled := 0
	for i := 0; i < c.fifoLen; i++ {
		n := c.fifo[(c.fifoHead+i)%len(c.fifo)]
		if n == nil {
			return fmt.Errorf("fifo slot %d is nil inside the live window", i)
		}
		if n.index != inFIFO {
			return fmt.Errorf("fifo node %d has index %d, want inFIFO", i, n.index)
		}
		if prev != nil && !eventLess(prev, n) {
			return fmt.Errorf("fifo not (due,seq)-sorted at %d", i)
		}
		if n.canceled {
			canceled++
		} else {
			live++
		}
		prev = n
	}
	if canceled != c.fifoCancel {
		return fmt.Errorf("fifoCancel = %d, counted %d tombstones", c.fifoCancel, canceled)
	}
	if live != c.pending {
		return fmt.Errorf("pending = %d, counted %d live nodes", c.pending, live)
	}
	return nil
}

// FuzzEventQueue derives an op sequence from the fuzzer's byte string —
// schedule (same-instant or future), cancel, double-cancel, step — and
// checks the structural invariants after every operation plus full
// (due, seq) dequeue ordering at the end.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                      // same-instant burst
	f.Add([]byte{4, 8, 12, 3, 3, 7})               // interleaved schedule/cancel
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})    // mixed ops
	f.Add([]byte{255, 254, 253, 0, 128, 64, 32})   // far-future dues
	f.Add([]byte{2, 2, 2, 1, 1, 1, 3, 3, 3, 0, 0}) // cancel-heavy then burst
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewClock()
		var handles []Event
		fired := 0
		var lastDue Time = -1
		var lastSeq uint64
		check := func() {
			if err := checkInvariants(c); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range data {
			switch b % 4 {
			case 0, 1: // schedule; offset 0 exercises the FIFO fast path
				offset := Time(b>>2) * Time(time.Millisecond)
				handles = append(handles, c.At(c.Now()+offset, func() { fired++ }))
			case 2: // cancel an arbitrary handle (live, fired, or already canceled)
				if len(handles) > 0 {
					c.Cancel(handles[int(b>>2)%len(handles)])
				}
			case 3: // fire the earliest event, verifying global (due, seq) order
				before := c.Executed()
				if n := c.peek(); n != nil {
					due, seq := n.due, n.seq
					if due < lastDue || (due == lastDue && seq <= lastSeq && before > 0) {
						t.Fatalf("dequeue order regressed: (%v,%d) after (%v,%d)", due, seq, lastDue, lastSeq)
					}
					lastDue, lastSeq = due, seq
				}
				c.Step()
			}
			check()
		}
		// Drain; every remaining event must come out in nondecreasing order.
		for {
			n := c.peek()
			if n == nil {
				break
			}
			if n.due < lastDue || (n.due == lastDue && n.seq <= lastSeq && c.Executed() > 0) {
				t.Fatalf("drain order regressed: (%v,%d) after (%v,%d)", n.due, n.seq, lastDue, lastSeq)
			}
			lastDue, lastSeq = n.due, n.seq
			c.Step()
			check()
		}
		if c.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain", c.Pending())
		}
	})
}
