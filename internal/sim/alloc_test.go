package sim

import "testing"

// Allocation budget: once the free list and container capacities are warm,
// scheduling and firing events must not allocate. This is the load-bearing
// property behind the event-pool design — a regression here silently erodes
// the kernel win, so it fails the test suite instead.

func TestAllocsScheduleFireHeapPath(t *testing.T) {
	c := NewClock()
	fn := func() {}
	// Warm the pool and heap capacity.
	for i := 0; i < 64; i++ {
		c.At(c.Now()+Time(i+1), fn)
	}
	c.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		c.At(c.Now()+1, fn)
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("heap-path schedule+fire allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsScheduleFireFIFOPath(t *testing.T) {
	c := NewClock()
	fn := func() {}
	for i := 0; i < 64; i++ {
		c.At(c.Now(), fn) // grow the ring
	}
	c.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		c.At(c.Now(), fn)
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("FIFO-path schedule+fire allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsTickerTick(t *testing.T) {
	c := NewClock()
	tk := c.NewTicker(1, func() {})
	defer tk.Stop()
	for i := 0; i < 64; i++ {
		c.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("ticker tick allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsScheduleCancel(t *testing.T) {
	c := NewClock()
	fn := func() {}
	for i := 0; i < 64; i++ {
		c.At(c.Now()+Time(i+1), fn)
	}
	c.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e := c.At(c.Now()+5, fn)
		c.Cancel(e)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %.1f/op, want 0", allocs)
	}
}
