// Package bench holds microbenchmarks for the sim kernel's hot paths:
// schedule+fire through the 4-ary heap, same-instant FIFO bursts,
// cancel/recycle, and ticker churn. Run with
//
//	go test ./internal/sim/bench -bench . -benchmem
//
// The -benchmem allocation columns are the leading indicators for the
// macro-level BENCH_kernel.json regression gate: any non-zero allocs/op on
// these paths will show up as wall-clock loss on the fleet sweep.
package bench
