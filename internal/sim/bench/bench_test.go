package bench

import (
	"testing"
	"time"

	"nostop/internal/sim"
)

// BenchmarkScheduleFire measures the future-due path: heap push, pop,
// callback dispatch, node recycle.
func BenchmarkScheduleFire(b *testing.B) {
	c := sim.NewClock()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(c.Now()+sim.Time(time.Millisecond), fn)
		c.Step()
	}
}

// BenchmarkScheduleFireDeep keeps 1024 events resident so every push/pop
// sifts through a realistically deep heap.
func BenchmarkScheduleFireDeep(b *testing.B) {
	c := sim.NewClock()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		c.At(c.Now()+sim.Time(i+1)*sim.Time(time.Millisecond), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(c.Now()+sim.Time(1025)*sim.Time(time.Millisecond), fn)
		c.Step()
	}
}

// BenchmarkSameTimeBurst measures the due==now FIFO fast path, which
// bypasses the heap entirely.
func BenchmarkSameTimeBurst(b *testing.B) {
	c := sim.NewClock()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(c.Now(), fn)
		c.Step()
	}
}

// BenchmarkScheduleCancel measures schedule followed by cancel — the
// rewind/reschedule pattern controllers use — exercising heap removal and
// node recycling.
func BenchmarkScheduleCancel(b *testing.B) {
	c := sim.NewClock()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := c.At(c.Now()+sim.Time(time.Second), fn)
		c.Cancel(e)
	}
}

// BenchmarkTicker measures periodic-event churn: each tick fires and
// reschedules through the pool.
func BenchmarkTicker(b *testing.B) {
	c := sim.NewClock()
	tick := func() {}
	tk := c.NewTicker(time.Millisecond, tick)
	defer tk.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
