package sim

import (
	"fmt"
	"testing"
	"time"

	"nostop/internal/rng"
)

// Property-based check of the pooled 4-ary heap + FIFO fast path against a
// reference model: a plain sorted-slice priority queue keyed by (due, seq).
// Randomized Schedule/Cancel/Reschedule/Run sequences must dequeue in
// exactly the reference order, including same-instant FIFO bursts and
// cancel-then-reuse of pooled nodes.

// refEntry mirrors one live scheduled event.
type refEntry struct {
	due Time
	seq uint64
	id  int
}

// refModel is the executable specification: an unordered slice scanned for
// the (due, seq) minimum. O(n) and allocation-happy — which is fine, it only
// has to be obviously correct.
type refModel struct {
	live []refEntry
}

func (m *refModel) schedule(due Time, seq uint64, id int) {
	m.live = append(m.live, refEntry{due: due, seq: seq, id: id})
}

func (m *refModel) cancel(id int) bool {
	for i, e := range m.live {
		if e.id == id {
			m.live = append(m.live[:i], m.live[i+1:]...)
			return true
		}
	}
	return false
}

// popMin removes and returns the entry with the least (due, seq).
func (m *refModel) popMin() (refEntry, bool) {
	if len(m.live) == 0 {
		return refEntry{}, false
	}
	min := 0
	for i := 1; i < len(m.live); i++ {
		e, best := m.live[i], m.live[min]
		if e.due < best.due || (e.due == best.due && e.seq < best.seq) {
			min = i
		}
	}
	e := m.live[min]
	m.live = append(m.live[:min], m.live[min+1:]...)
	return e, true
}

// queueHarness drives a Clock and the reference model in lockstep.
type queueHarness struct {
	t       *testing.T
	c       *Clock
	model   refModel
	handles map[int]Event
	ids     []int // ids with live handles, in creation order
	nextID  int
	fired   []int
}

func newQueueHarness(t *testing.T) *queueHarness {
	return &queueHarness{t: t, c: NewClock(), handles: map[int]Event{}}
}

// schedule registers an event at the given due time in both systems.
func (h *queueHarness) schedule(due Time) {
	id := h.nextID
	h.nextID++
	seq := h.c.seq // the seq the clock will assign
	ev := h.c.At(due, func() { h.fired = append(h.fired, id) })
	h.model.schedule(due, seq, id)
	h.handles[id] = ev
	h.ids = append(h.ids, id)
}

// cancel removes a still-tracked event from both systems.
func (h *queueHarness) cancel(id int) {
	ev, ok := h.handles[id]
	if !ok {
		return
	}
	wasLive := h.model.cancel(id)
	h.c.Cancel(ev)
	if wasLive && !ev.Canceled() {
		h.t.Fatalf("Cancel of live event %d not reflected by Canceled()", id)
	}
	delete(h.handles, id)
}

// step fires one event on the clock and checks it against the model's
// minimum.
func (h *queueHarness) step() {
	want, ok := h.model.popMin()
	stepped := h.c.Step()
	if stepped != ok {
		h.t.Fatalf("Step() = %v, model has %d live events", stepped, len(h.model.live)+1)
	}
	if !ok {
		return
	}
	if len(h.fired) == 0 {
		h.t.Fatalf("Step fired nothing; model expected id %d at %v", want.id, want.due)
	}
	got := h.fired[len(h.fired)-1]
	if got != want.id {
		h.t.Fatalf("dequeue order diverged: fired id %d, model wants id %d (due %v seq %d)",
			got, want.id, want.due, want.seq)
	}
	if h.c.Now() != want.due {
		h.t.Fatalf("clock at %v after firing event due %v", h.c.Now(), want.due)
	}
	delete(h.handles, got)
}

// drain runs both queues to empty, comparing every dequeue.
func (h *queueHarness) drain() {
	for len(h.model.live) > 0 {
		h.step()
	}
	if h.c.Step() {
		h.t.Fatal("clock still had events after the model drained")
	}
	if h.c.Pending() != 0 {
		h.t.Fatalf("Pending() = %d after drain", h.c.Pending())
	}
}

// TestQueueMatchesReferenceModel generates randomized op sequences — biased
// toward same-instant bursts (due == now) and cancel-then-reuse — and
// requires the kernel to dequeue in exactly the reference (due, seq) order.
// Scheduled-event volume across all rounds exceeds 10k.
func TestQueueMatchesReferenceModel(t *testing.T) {
	root := rng.New(99).Split("queue-property")
	const rounds = 60
	totalScheduled := 0
	for round := 0; round < rounds; round++ {
		r := root.Split(fmt.Sprintf("round-%d", round)).Rand()
		h := newQueueHarness(t)
		ops := 180 + r.Intn(120)
		for op := 0; op < ops; op++ {
			switch k := r.Intn(10); {
			case k < 5: // schedule, often in a same-instant burst
				burst := 1
				if r.Intn(3) == 0 {
					burst = 2 + r.Intn(6)
				}
				for b := 0; b < burst; b++ {
					due := h.c.Now()
					if r.Intn(2) == 0 {
						due += Time(r.Intn(50)) * Time(time.Millisecond)
					}
					h.schedule(due)
					totalScheduled++
				}
			case k < 7: // cancel a random tracked event (possibly already fired)
				if len(h.ids) > 0 {
					h.cancel(h.ids[r.Intn(len(h.ids))])
				}
			case k < 8: // reschedule: cancel + schedule anew, reusing a pooled node
				if len(h.ids) > 0 {
					h.cancel(h.ids[r.Intn(len(h.ids))])
					h.schedule(h.c.Now() + Time(r.Intn(20))*Time(time.Millisecond))
					totalScheduled++
				}
			default: // run a few events
				steps := 1 + r.Intn(4)
				for s := 0; s < steps && len(h.model.live) > 0; s++ {
					h.step()
				}
			}
		}
		h.drain()
	}
	if totalScheduled < 10_000 {
		t.Fatalf("property rounds scheduled only %d events, want >= 10000", totalScheduled)
	}
}

// TestCancelThenReuseHandleIsInert pins the generation-stamp semantics: a
// handle to a node that has been recycled into a new schedule must neither
// cancel nor observe the new incarnation.
func TestCancelThenReuseHandleIsInert(t *testing.T) {
	c := NewClock()
	stale := c.At(ms(5), func() { t.Fatal("canceled event fired") })
	c.Cancel(stale)
	// The freed node is recycled for the next schedule.
	fired := false
	fresh := c.At(ms(7), func() { fired = true })
	if !stale.Canceled() {
		t.Error("stale handle should still report Canceled after one reuse")
	}
	c.Cancel(stale) // must be a no-op against the new incarnation
	c.Run()
	if !fired {
		t.Fatal("live event was killed by a stale handle's Cancel")
	}
	if fresh.Canceled() {
		t.Error("fired event reports Canceled")
	}
}

// TestFIFOCancelMidBurst cancels from the middle of a same-instant burst;
// the ring must skip the tombstone without disturbing FIFO order.
func TestFIFOCancelMidBurst(t *testing.T) {
	c := NewClock()
	var got []int
	var evs []Event
	for i := 0; i < 8; i++ {
		i := i
		evs = append(evs, c.At(c.Now(), func() { got = append(got, i) }))
	}
	c.Cancel(evs[0])
	c.Cancel(evs[3])
	c.Cancel(evs[7])
	c.Run()
	want := []int{1, 2, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}
