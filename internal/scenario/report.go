package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"nostop/internal/stats"
)

// reportVersion is bumped whenever the report encoding or the evaluation
// semantics behind it change incompatibly; byte-stability tests pin it.
const reportVersion = 1

// Sample is one replication's value for one SLO metric. Note marks
// degenerate samples ("truncated: never recovered inside the horizon");
// evaluate treats truncated samples as lower bounds.
type Sample struct {
	Seed  uint64  `json:"seed"`
	Value float64 `json:"value"`
	Note  string  `json:"note,omitempty"`
}

// SLOResult is one evaluated predicate: the per-seed samples, the
// cross-seed interval, the three-valued verdict, and — whenever any
// replication violated the predicate — a pointer to the first violating
// observation.
type SLOResult struct {
	SLO
	// Agg names the cross-seed aggregator (mean, p95, or max).
	Agg string `json:"agg"`
	// Samples are the per-seed values in seed order.
	Samples []Sample `json:"samples"`
	// Point is the aggregated value: the sample mean, or the p95/max of
	// the samples for the tail-aggregated recovery metrics.
	Point float64 `json:"point"`
	// CI95Half is the Student-t 95% half-width around the mean
	// (stats.MeanCI95); zero for non-mean aggregators and for n < 2.
	CI95Half float64 `json:"ci95_half"`
	// Lo and Hi bound the interval the verdict is judged on:
	// [Point−CI95Half, Point+CI95Half] for means, degenerate [Point,
	// Point] otherwise.
	Lo float64 `json:"interval_lo"`
	Hi float64 `json:"interval_hi"`
	// Verdict is PASS, FAIL, or INCONCLUSIVE.
	Verdict string `json:"verdict"`
	// FirstViolation pins the first observation that broke the predicate;
	// present whenever at least one replication violated it point-wise.
	FirstViolation *Violation `json:"first_violation,omitempty"`
}

// Report is the machine-readable verdict document nostop-ask emits. It is
// byte-stable: the same spec always encodes to the same bytes, so reports
// can be diffed and golden-pinned.
type Report struct {
	Version int `json:"version"`
	// Spec is the normalized spec that ran (seed-truncated in smoke mode).
	Spec Spec `json:"spec"`
	// Smoke marks a seed-truncated run; its verdict is a quick signal,
	// not the full-replication answer.
	Smoke bool `json:"smoke,omitempty"`
	// Replications is the number of seeds that actually ran.
	Replications int `json:"replications"`
	// Verdict is the hypothesis verdict: CONFIRMED, REJECTED, or
	// INCONCLUSIVE.
	Verdict string `json:"verdict"`
	// ExpectMatch is set when the spec declares an expected verdict:
	// whether the computed verdict matched it (`nostop-ask -selftest`).
	ExpectMatch *bool `json:"expect_match,omitempty"`
	// SLOs are the evaluated predicates in spec order (under the primary
	// allocator, for tenancy specs with a contrast).
	SLOs []SLOResult `json:"slos"`
	// Contrast holds the same predicates evaluated under the contrast
	// allocator of a tenancy spec; nil otherwise.
	Contrast *ContrastReport `json:"contrast,omitempty"`
}

// ContrastReport is the contrast-allocator half of a differential tenancy
// verdict: the same SLOs, same seeds, same randomness — only the allocator
// differs. The report's top-level Verdict is the combination (see
// combineContrast); the contrast's own fold is recorded here.
type ContrastReport struct {
	Allocator string `json:"allocator"`
	Verdict   string `json:"verdict"`
	// SLOs are the evaluated predicates in spec order, under the contrast.
	SLOs []SLOResult `json:"slos"`
}

// combineContrast folds the primary and contrast verdicts into the
// differential hypothesis verdict. The hypothesis of a contrasted tenancy
// spec is "the allocator makes these SLOs hold": it is confirmed only when
// the SLOs hold under the primary AND break under the contrast. SLOs that
// also hold under the contrast mean the allocator was irrelevant — spare
// capacity did the work — so the hypothesis is rejected.
func combineContrast(primary, contrast string) string {
	if primary != VerdictConfirmed {
		return primary
	}
	switch contrast {
	case VerdictRejected:
		return VerdictConfirmed
	case VerdictConfirmed:
		return VerdictRejected
	default:
		return VerdictInconclusive
	}
}

// evaluate reduces one SLO over all replications to its result: per-seed
// samples, the cross-seed interval, the three-valued verdict, and the
// first-violation pointer.
func evaluate(slo SLO, runs []*runObs) SLOResult {
	res := SLOResult{SLO: slo, Agg: slo.def.agg}
	values := make([]float64, len(runs))
	truncated := false
	for i, run := range runs {
		v, note := slo.def.sample(run.view(slo.Tenant))
		values[i] = v
		if strings.HasPrefix(note, "truncated") {
			truncated = true
		}
		res.Samples = append(res.Samples, Sample{Seed: run.seed, Value: v, Note: note})
	}

	switch slo.def.agg {
	case "mean":
		mean, half := stats.MeanCI95(values)
		res.Point, res.CI95Half = mean, half
		res.Lo, res.Hi = mean-half, mean+half
	case "p95":
		res.Point = statP(0.95)(values)
		res.Lo, res.Hi = res.Point, res.Point
	default: // "max"
		res.Point = statMax(values)
		res.Lo, res.Hi = res.Point, res.Point
	}

	loOK, hiOK := slo.satisfied(res.Lo), slo.satisfied(res.Hi)
	switch {
	case loOK && hiOK:
		res.Verdict = SLOPass
	case !loOK && !hiOK:
		res.Verdict = SLOFail
	default:
		res.Verdict = SLOInconclusive
	}
	// Truncated samples are lower bounds on a value the horizon cut off:
	// the real value can only be larger. A verdict that relies on the
	// value being no larger than observed is therefore unsafe.
	if truncated {
		if res.Verdict == SLOPass && slo.upperBounded() {
			res.Verdict = SLOInconclusive
		}
		if res.Verdict == SLOFail && !slo.upperBounded() {
			res.Verdict = SLOInconclusive
		}
	}

	// Point the reader at the first violating observation: the first run
	// (in seed order) whose sample breaks the predicate, drilled down to
	// the first violating batch / instant inside that run.
	for i, run := range runs {
		s := res.Samples[i]
		if !slo.satisfied(s.Value) || strings.HasPrefix(s.Note, "truncated") {
			res.FirstViolation = slo.def.violation(run.view(slo.Tenant), slo, s.Value)
			break
		}
	}
	return res
}

// overallVerdict folds the per-SLO verdicts into the hypothesis verdict:
// any FAIL rejects it, any INCONCLUSIVE (without a FAIL) leaves it open,
// all PASS confirms it.
func overallVerdict(slos []SLOResult) string {
	verdict := VerdictConfirmed
	for _, s := range slos {
		switch s.Verdict {
		case SLOFail:
			return VerdictRejected
		case SLOInconclusive:
			verdict = VerdictInconclusive
		}
	}
	return verdict
}

// Encode renders the report as byte-stable indented JSON with a trailing
// newline. encoding/json emits struct fields in declaration order and the
// report contains no maps, so equal reports encode to equal bytes.
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding report: %v", err)
	}
	return append(data, '\n'), nil
}

// Render writes the human-readable report: the hypothesis, the deployment
// under test, a verdict table with intervals, and — for every violated
// SLO — the first-violation pointer with its trace span reference.
func (r *Report) Render(w io.Writer) error {
	spec := r.Spec
	var b strings.Builder
	fmt.Fprintf(&b, "scenario   %s\n", spec.Name)
	fmt.Fprintf(&b, "hypothesis %q\n", spec.Hypothesis)
	if t := spec.Tenancy; t != nil {
		mix := t.Mix
		fmt.Fprintf(&b, "deployment mix %s: %d tenants on %d nodes × %d cores, %d partitions/topic, allocator %s, horizon %v, warmup %.2f\n",
			mix.Name, len(mix.Tenants), mix.Nodes, mix.CoresPerNode,
			mix.Partitions, mix.Allocator, spec.Horizon, spec.Warmup)
	} else {
		fmt.Fprintf(&b, "deployment %s/%s, initial %s/%s executors, trace %s, horizon %v, warmup %.2f\n",
			spec.Workload, spec.Controller,
			orDefault(spec.Initial.Interval.String(), "0s", "default-interval"),
			orDefault(fmt.Sprintf("%d", spec.Initial.Executors), "0", "default"),
			traceLabel(spec), spec.Horizon, spec.Warmup)
	}
	fmt.Fprintf(&b, "replications %d (seeds %s)%s\n", r.Replications, seedsLabel(spec.Seeds), smokeLabel(r.Smoke))
	if len(spec.Faults) > 0 {
		parts := make([]string, len(spec.Faults))
		for i, f := range spec.Faults {
			parts[i] = fmt.Sprintf("%s@%v+%v", f.Kind, f.At, f.Duration)
		}
		fmt.Fprintf(&b, "faults     %s\n", strings.Join(parts, ", "))
	}
	b.WriteString("\n")
	renderSLOs(&b, r.SLOs)

	if c := r.Contrast; c != nil {
		fmt.Fprintf(&b, "\ncontrast (allocator %s — same seeds, same randomness):\n", c.Allocator)
		renderSLOs(&b, c.SLOs)
		fmt.Fprintf(&b, "  contrast verdict: %s (confirmation requires the SLOs to break here)\n", c.Verdict)
	}

	b.WriteString("\nverdict: " + r.Verdict)
	switch {
	case r.Contrast != nil && r.Verdict == VerdictConfirmed:
		b.WriteString(" — the SLOs hold under the primary allocator and break under the contrast\n")
	case r.Contrast != nil && r.Verdict == VerdictRejected:
		b.WriteString(" — the differential does not hold: the SLOs fail under the primary, or hold under the contrast too\n")
	case r.Verdict == VerdictConfirmed:
		b.WriteString(" — every SLO holds with 95% confidence\n")
	case r.Verdict == VerdictRejected:
		b.WriteString(" — at least one SLO fails with 95% confidence\n")
	default:
		b.WriteString(" — at least one interval straddles its threshold; add seeds or widen the margin\n")
	}
	if r.ExpectMatch != nil {
		fmt.Fprintf(&b, "expected: %s (%s)\n", spec.Expect, matchLabel(*r.ExpectMatch))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderSLOs writes one verdict table: predicate, point, interval, verdict,
// plus sample notes and first-violation pointers.
func renderSLOs(b *strings.Builder, slos []SLOResult) {
	width := 0
	for _, s := range slos {
		if len(s.Text) > width {
			width = len(s.Text)
		}
	}
	for _, s := range slos {
		interval := fmt.Sprintf("[%s, %s]", fmtValue(s.Lo, s.Unit), fmtValue(s.Hi, s.Unit))
		if s.Agg != "mean" {
			interval = fmt.Sprintf("(point, agg %s)", s.Agg)
		}
		fmt.Fprintf(b, "  %-*s  %-10s %-22s %s\n", width, s.Text, fmtValue(s.Point, s.Unit), interval, s.Verdict)
		for _, sm := range s.Samples {
			if sm.Note != "" {
				fmt.Fprintf(b, "  %-*s  note: seed %d: %s\n", width, "", sm.Seed, sm.Note)
			}
		}
		if v := s.FirstViolation; v != nil {
			loc := fmt.Sprintf("at %v", v.At)
			if v.Batch != 0 {
				loc = fmt.Sprintf("batch %d at %v", v.Batch, v.At)
			}
			fmt.Fprintf(b, "  %-*s  first violation: seed %d, %s (%s) — %s\n",
				width, "", v.Seed, loc, v.Detail, v.Trace)
			if v.Span != nil {
				fmt.Fprintf(b, "  %-*s                   span %q (pid %d, tid %d, ts_us %d)\n",
					width, "", v.Span.Name, v.Span.Pid, v.Span.Tid, v.Span.TsUs)
			}
		}
	}
}

func matchLabel(ok bool) string {
	if ok {
		return "match"
	}
	return "MISMATCH"
}

func smokeLabel(smoke bool) string {
	if smoke {
		return " [smoke: seed list truncated]"
	}
	return ""
}

func orDefault(s, zero, def string) string {
	if s == zero {
		return def
	}
	return s
}

func traceLabel(spec Spec) string {
	if spec.Trace.Min == 0 && spec.Trace.Max == 0 {
		return "workload band"
	}
	return fmt.Sprintf("band[%.0f, %.0f]", spec.Trace.Min, spec.Trace.Max)
}

// seedsLabel renders a seed list compactly, collapsing ascending runs back
// to the lo-hi range form ("1-5", "1-3,7").
func seedsLabel(seeds Seeds) string {
	if len(seeds) == 0 {
		return ""
	}
	sorted := append([]uint64(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var parts []string
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if j > i {
			parts = append(parts, fmt.Sprintf("%d-%d", sorted[i], sorted[j]))
		} else {
			parts = append(parts, fmt.Sprintf("%d", sorted[i]))
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}
