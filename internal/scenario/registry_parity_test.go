package scenario

import (
	"testing"

	"nostop/internal/fleet"
)

// TestUnknownControllerErrorMatchesFleet locks the shared-registry fix: a
// scenario spec and a fleet spec naming the same unknown controller must
// fail with byte-identical error text, because both validations consult
// fleet's controller registry.
func TestUnknownControllerErrorMatchesFleet(t *testing.T) {
	spec := testSpec()
	spec.Controller = "pid"
	scenErr := spec.Validate()
	if scenErr == nil {
		t.Fatal("scenario spec with unknown controller validated")
	}
	fleetErr := fleet.Spec{
		Seeds:       []uint64{1},
		Workloads:   []string{"logreg"},
		Controllers: []string{"pid"},
	}.Validate()
	if fleetErr == nil {
		t.Fatal("fleet spec with unknown controller validated")
	}
	if scenErr.Error() != fleetErr.Error() {
		t.Fatalf("error text diverged:\nscenario: %s\nfleet:    %s", scenErr, fleetErr)
	}
	// Every registered name passes the scenario-side check too.
	for _, name := range fleet.ControllerNames() {
		spec := testSpec()
		spec.Controller = name
		if err := spec.Validate(); err != nil {
			t.Errorf("registered controller %s rejected: %v", name, err)
		}
	}
}
