package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nostop/internal/fleet"
	"nostop/internal/tenant"
)

// tenancySpec is a fast two-tenant differential: priority primary versus
// fair-share contrast on contended capacity, one seed, short horizon.
func tenancySpec() Spec {
	return Spec{
		Name:       "test-tenancy",
		Hypothesis: "priority protects the steady tenant; fair-share does not",
		Seeds:      Seeds{1},
		Horizon:    fleet.Duration(6 * time.Minute),
		Warmup:     0.3,
		Tenancy: &TenancySpec{
			ContrastAllocator: tenant.AllocFairShare,
			Mix: tenant.MixSpec{
				Nodes:        4,
				CoresPerNode: 2,
				Partitions:   8,
				Allocator:    tenant.AllocPriority,
				Tenants: []tenant.TenantSpec{
					{
						Name: "steady", Workload: "wordcount", Controller: "static",
						Priority: 2, SLOClass: "interactive",
						Trace:            tenant.TraceSpec{Kind: "constant", Rate: 3000},
						InitialExecutors: 6, BatchInterval: tenant.Duration(8 * time.Second),
					},
					{
						Name: "bursty", Workload: "pageanalyze", Controller: "static",
						Priority: 0, SLOClass: "batch",
						Trace:            tenant.TraceSpec{Kind: "surge", Base: 1000, Peak: 8000, Start: tenant.Duration(time.Minute), Length: tenant.Duration(3 * time.Minute)},
						InitialExecutors: 6, BatchInterval: tenant.Duration(8 * time.Second),
					},
				},
			},
		},
		SLOs: []string{"steady:delay_p95 < 2m"},
	}
}

// The differential verdict table: confirmation requires the SLOs to hold
// under the primary AND break under the contrast.
func TestCombineContrast(t *testing.T) {
	cases := []struct {
		primary, contrast, want string
	}{
		{VerdictConfirmed, VerdictRejected, VerdictConfirmed},
		{VerdictConfirmed, VerdictConfirmed, VerdictRejected},
		{VerdictConfirmed, VerdictInconclusive, VerdictInconclusive},
		{VerdictRejected, VerdictRejected, VerdictRejected},
		{VerdictRejected, VerdictConfirmed, VerdictRejected},
		{VerdictInconclusive, VerdictRejected, VerdictInconclusive},
	}
	for _, tc := range cases {
		if got := combineContrast(tc.primary, tc.contrast); got != tc.want {
			t.Errorf("combineContrast(%s, %s) = %s, want %s", tc.primary, tc.contrast, got, tc.want)
		}
	}
}

// The `<tenant>:<metric>` prefix grammar: accepted on batch-history
// metrics, rejected on cluster-wide counters and malformed forms.
func TestParseSLOTenantPrefix(t *testing.T) {
	slo, err := ParseSLO("steady:delay_p95 < 30s")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Tenant != "steady" || slo.Metric != "delay_p95" {
		t.Fatalf("parsed tenant/metric = %q/%q, want steady/delay_p95", slo.Tenant, slo.Metric)
	}
	for _, tc := range []struct{ text, want string }{
		{"steady:shed_fraction < 0.01", "cluster-wide"},
		{"a:b:delay_p95 < 1s", "one colon"},
		{":delay_p95 < 1s", "one colon"},
		{"steady: < 1s", "one colon"},
	} {
		if _, err := ParseSLO(tc.text); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSLO(%q) = %v, want error containing %q", tc.text, err, tc.want)
		}
	}
}

// Cross-field validation for tenancy specs, and the guard that keeps
// tenant-prefixed SLOs out of single-app specs.
func TestValidateTenancyErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"faults", func(s *Spec) {
			s.Faults = []FaultSpec{{Kind: "node-crash", At: fleet.Duration(time.Minute), Duration: fleet.Duration(time.Minute)}}
		}, "faults are not yet supported"},
		{"workload", func(s *Spec) { s.Workload = "wordcount" }, "drop them from a tenancy spec"},
		{"unknown tenant", func(s *Spec) { s.SLOs = []string{"ghost:delay_p95 < 1s"} }, "unknown tenant"},
		{"contrast equals primary", func(s *Spec) { s.Tenancy.ContrastAllocator = tenant.AllocPriority }, "vacuous"},
		{"bad contrast", func(s *Spec) { s.Tenancy.ContrastAllocator = "lottery" }, "unknown contrast allocator"},
		{"no seeds", func(s *Spec) { s.Seeds = nil }, "no seeds"},
	}
	for _, tc := range cases {
		spec := tenancySpec()
		tc.mut(&spec)
		if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// A tenant-scoped SLO is meaningless without a tenancy section.
	single := testSpec()
	single.SLOs = []string{"steady:delay_p95 < 1s"}
	if err := single.Validate(); err == nil || !strings.Contains(err.Error(), "no tenancy section") {
		t.Errorf("single-app spec with tenant SLO: Validate() = %v, want the no-tenancy error", err)
	}
}

// The differential run end to end: contrast section populated, artifacts
// from both allocator arms, and the whole report byte-stable across runs.
func TestTenancyDifferentialRun(t *testing.T) {
	spec := tenancySpec()
	res1, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res1.Report
	if rep.Contrast == nil {
		t.Fatal("report has no contrast section despite contrast_allocator")
	}
	if rep.Contrast.Allocator != tenant.AllocFairShare {
		t.Errorf("contrast allocator = %q, want %q", rep.Contrast.Allocator, tenant.AllocFairShare)
	}
	if rep.Replications != 1 {
		t.Errorf("replications = %d, want 1 (contrast runs do not count)", rep.Replications)
	}
	if len(rep.SLOs) != 1 || len(rep.Contrast.SLOs) != 1 {
		t.Fatalf("SLO result counts = %d primary / %d contrast, want 1/1", len(rep.SLOs), len(rep.Contrast.SLOs))
	}
	if rep.SLOs[0].Tenant != "steady" {
		t.Errorf("primary SLO result tenant = %q, want steady", rep.SLOs[0].Tenant)
	}
	// Both arms leave their trace + metrics artifacts, contrast-prefixed.
	var primary, contrast int
	for _, art := range res1.Artifacts {
		if len(art.Data) == 0 {
			t.Fatalf("artifact %s is empty", art.Name)
		}
		if strings.Contains(art.Name, "contrast-") {
			contrast++
		} else {
			primary++
		}
	}
	if primary != 2 || contrast != 2 {
		t.Fatalf("artifacts = %d primary / %d contrast, want 2/2", primary, contrast)
	}

	res2, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := res1.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res2.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("tenancy reports differ across identical runs:\n%s\n---\n%s", a, b)
	}
	// The rendered report names the deployment and the contrast arm.
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"deployment mix", "allocator " + tenant.AllocPriority, "contrast (allocator " + tenant.AllocFairShare} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered report missing %q:\n%s", want, text)
		}
	}
}
