// Package scenario is the capacity-planning and hypothesis harness: it
// answers operator questions — "will this deployment hold this load within
// these SLOs?" — ahead of time, from a declarative spec instead of a
// hand-written experiment.
//
// A Spec states a workload, a deployment (controller + initial
// configuration + input-rate trace), an optional fault plan, a set of SLO
// predicates ("delay_p99 < 2s", "recovery < 2m", "shed_fraction < 0.01"),
// and the hypothesis those predicates formalize. The runner expands the
// spec onto the fleet orchestrator (one replicated job per seed), evaluates
// every SLO against the per-run metrics registry and batch history, and
// emits a deterministic, byte-stable verdict report: per-SLO Student-t 95%
// confidence intervals, three-valued verdicts (PASS / FAIL / INCONCLUSIVE —
// an interval straddling its threshold refuses to pretend certainty), and,
// for every violated predicate, a first-violation pointer carrying the
// sim-time instant and a Chrome-trace span reference into that seed's
// trace file.
//
// Determinism contract: a report is a pure function of the spec. Runs reuse
// the fleet job seed paths, observability is passive, evaluation walks
// history in simulation order, and the report encodes with encoding/json's
// stable field order — so the same spec encodes to identical bytes at any
// parallelism. docs/SCENARIOS.md is the user-facing reference for the spec
// format, the predicate grammar, and the verdict semantics.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"nostop/internal/core"
	"nostop/internal/faults"
	"nostop/internal/fleet"
	"nostop/internal/sim"
	"nostop/internal/tenant"
)

// Seeds is the replication axis: a list of root seeds, one job per seed.
// In spec JSON it decodes from either an explicit array ([1, 2, 3]) or a
// seed-range string ("1-5", "1,2,5-8" — the nostop-fleet grammar); it
// always encodes back as the explicit array, which is the normalized form
// reports carry.
type Seeds []uint64

// UnmarshalJSON implements json.Unmarshaler (array or range string).
func (s *Seeds) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var expr string
		if err := json.Unmarshal(b, &expr); err != nil {
			return err
		}
		list, err := fleet.ParseSeeds(expr)
		if err != nil {
			return fmt.Errorf("scenario: seeds: %v", err)
		}
		*s = list
		return nil
	}
	var list []uint64
	if err := json.Unmarshal(b, &list); err != nil {
		return err
	}
	*s = list
	return nil
}

// FaultSpec is the human-authored form of one fault window. It mirrors
// faults.Fault with names instead of enum values and duration strings
// instead of nanosecond counts.
type FaultSpec struct {
	// Kind names the fault class: node-crash, straggler, task-failures,
	// partition-outage, or ingest-spike.
	Kind string `json:"kind"`
	// At is when the window opens, in virtual time from the run start.
	At fleet.Duration `json:"at"`
	// Duration is how long the window stays open.
	Duration fleet.Duration `json:"duration"`
	// Node targets node-crash and straggler windows.
	Node int `json:"node,omitempty"`
	// Partition targets partition-outage windows.
	Partition int `json:"partition,omitempty"`
	// Factor is the straggler slowdown or ingest-spike multiplier (> 1).
	Factor float64 `json:"factor,omitempty"`
	// Prob is the task-failures per-attempt failure probability in (0, 1].
	Prob float64 `json:"prob,omitempty"`
}

// fault converts the spec form to the injector's Fault.
func (f FaultSpec) fault() (faults.Fault, error) {
	kind, err := faults.ParseKind(f.Kind)
	if err != nil {
		return faults.Fault{}, err
	}
	return faults.Fault{
		Kind:      kind,
		At:        sim.Time(f.At),
		Duration:  f.Duration.D(),
		NodeID:    f.Node,
		Partition: f.Partition,
		Factor:    f.Factor,
		Prob:      f.Prob,
	}, nil
}

// Verdict values for SLOs and hypotheses. An SLO passes or fails only when
// its whole confidence interval sits on one side of the threshold;
// anything else is inconclusive, following the uncertainty-aware
// configuration literature: a capacity verdict without its interval is a
// guess.
const (
	// VerdictConfirmed: every SLO passed (hypothesis CONFIRMED).
	VerdictConfirmed = "CONFIRMED"
	// VerdictRejected: at least one SLO failed (hypothesis REJECTED).
	VerdictRejected = "REJECTED"
	// VerdictInconclusive: no SLO failed but at least one interval
	// straddles its threshold — add seeds or widen the margin.
	VerdictInconclusive = "INCONCLUSIVE"

	// SLOPass / SLOFail / SLOInconclusive are the per-predicate verdicts.
	SLOPass         = "PASS"
	SLOFail         = "FAIL"
	SLOInconclusive = "INCONCLUSIVE"
)

// Spec is one capacity question: a deployment, a load, an optional fault
// plan, and the SLO predicates that formalize the hypothesis. Zero optional
// fields resolve to the fleet defaults (Normalize), so the report records
// exactly what ran.
type Spec struct {
	// Name labels the scenario; reports and artifact directories use it.
	Name string `json:"name"`
	// Hypothesis is the operator question the SLOs formalize, verbatim.
	Hypothesis string `json:"hypothesis"`
	// Expect optionally declares the verdict this spec is expected to
	// produce (CONFIRMED, REJECTED, or INCONCLUSIVE). Checked-in example
	// specs carry it so CI can gate on `nostop-ask -selftest`.
	Expect string `json:"expect,omitempty"`
	// Workload is the registry name (logreg, linreg, wordcount,
	// pageanalyze).
	Workload string `json:"workload"`
	// Controller is the deployment's tuner, one of the fleet controller
	// registry names (fleet.ControllerNames; catalog in
	// docs/CONTROLLERS.md). Empty means static.
	Controller string `json:"controller,omitempty"`
	// Seeds are the replication seeds ("1-5" or [1, 2, 3]).
	Seeds Seeds `json:"seeds"`
	// Horizon is the virtual duration of each replication; 0 means 40m.
	Horizon fleet.Duration `json:"horizon,omitempty"`
	// Warmup is the fraction of each run discarded before measuring;
	// 0 means 0.5.
	Warmup float64 `json:"warmup,omitempty"`
	// Trace is the input-rate trace; the zero value is the workload's own
	// rate band redrawn every 5s.
	Trace fleet.TraceSpec `json:"trace,omitempty"`
	// Initial overrides the engine's initial configuration; zero fields
	// keep the defaults (30s interval, 8 executors).
	Initial fleet.Static `json:"initial,omitempty"`
	// Faults is the optional fault plan every replication replays.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Space optionally widens the configuration space the deployment tunes
	// over (core.ConfigSpace v1; grammar in docs/CONTROLLERS.md). Nil
	// keeps the engine's default two-parameter bounds.
	Space *core.ConfigSpace `json:"space,omitempty"`
	// Tenancy switches the scenario to multi-tenant mode: replications run
	// a tenant mix through the cluster allocator instead of a single app,
	// and SLO predicates may target one tenant with a `<tenant>:` prefix
	// ("steady:delay_p95 < 8s"). Workload/Controller/Trace/Initial/Faults
	// are unused (and rejected) in this mode.
	Tenancy *TenancySpec `json:"tenancy,omitempty"`
	// SLOs are the predicates, one per line of the grammar
	// `<metric> <op> <threshold>` (see docs/SCENARIOS.md).
	SLOs []string `json:"slos"`
}

// TenancySpec is the multi-tenant deployment under test: a tenant mix plus
// an optional contrast allocator. With a contrast, every seed runs twice —
// once under Mix.Allocator, once under the contrast — and the hypothesis is
// confirmed only when the SLOs hold under the primary AND break under the
// contrast: the differential verdict that proves the allocator itself, not
// spare capacity, produced the outcome.
type TenancySpec struct {
	// Mix is the tenant mix (see docs/TENANCY.md for the format). Its
	// horizon/warmup are overridden by the scenario's.
	Mix tenant.MixSpec `json:"mix"`
	// ContrastAllocator, when set, names the policy for the contrast runs.
	ContrastAllocator string `json:"contrast_allocator,omitempty"`
}

// Decode reads a spec from strict JSON: unknown fields are errors, so a
// typo'd field name fails loudly instead of silently running the default.
func Decode(data []byte) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %v", err)
	}
	// A second document in the same file is almost certainly a mistake.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec object")
	}
	return spec, nil
}

// Normalize resolves every default so the report records exactly what ran:
// controller, horizon, warmup, and trace defaults are filled in, and the
// expected verdict is upper-cased. Tenancy specs instead default their
// horizon/warmup directly and normalize the mix (the single-app axes stay
// zero — they are unused in that mode).
func (s Spec) Normalize() Spec {
	s.Expect = strings.ToUpper(s.Expect)
	if s.Tenancy != nil {
		t := *s.Tenancy // copy: Normalize must not mutate the caller's spec
		s.Tenancy = &t
		if s.Horizon == 0 {
			s.Horizon = fleet.Duration(40 * time.Minute)
		}
		if s.Warmup == 0 {
			s.Warmup = 0.5
		}
		if mix, err := s.tenancyMix(t.Mix.Allocator); err == nil {
			t.Mix = mix // Validate reports the error; nothing to normalize.
		}
		return s
	}
	if s.Controller == "" {
		s.Controller = fleet.ControllerStatic
	}
	fs := s.fleetSpec()
	jobs, err := fs.Expand()
	if err != nil || len(jobs) == 0 {
		return s // Validate reports the error; nothing to normalize.
	}
	s.Horizon = jobs[0].Horizon
	s.Warmup = jobs[0].Warmup
	s.Trace = jobs[0].Trace
	return s
}

// plan converts the fault specs to an injector plan.
func (s Spec) plan() (faults.Plan, error) {
	var plan faults.Plan
	for i, f := range s.Faults {
		ft, err := f.fault()
		if err != nil {
			return nil, fmt.Errorf("scenario: fault %d: %v", i, err)
		}
		plan = append(plan, ft)
	}
	return plan, nil
}

// planName labels the fault plan in fleet job seed paths. It is derived
// from the scenario name so two scenarios with different names but equal
// plans still draw independent randomness only where the axes differ —
// matching fleet's rule that the label, not the name, enters the path.
func (s Spec) planName() string {
	if len(s.Faults) == 0 {
		return ""
	}
	return s.Name + "-faults"
}

// fleetSpec maps the scenario onto a single-cell fleet sweep: every axis a
// singleton except the seeds, which replicate it.
func (s Spec) fleetSpec() fleet.Spec {
	fs := fleet.Spec{
		Name:        s.Name,
		Seeds:       []uint64(s.Seeds),
		Workloads:   []string{s.Workload},
		Controllers: []string{s.Controller},
		Horizon:     s.Horizon,
		Warmup:      s.Warmup,
		Traces:      []fleet.TraceSpec{s.Trace},
		Initials:    []fleet.Static{s.Initial},
		Space:       s.Space,
	}
	if plan, err := s.plan(); err == nil && len(plan) > 0 {
		fs.Plans = []fleet.NamedPlan{{Name: s.planName(), Faults: plan}}
	}
	return fs
}

// tenancyMix maps the scenario's horizon and warmup fraction onto the
// tenant mix under the given allocator policy and returns the normalized
// mix. The scenario owns the time axes so the primary and contrast runs are
// guaranteed to measure the same window.
func (s Spec) tenancyMix(allocator string) (tenant.MixSpec, error) {
	mix := s.Tenancy.Mix
	mix.Allocator = allocator
	horizon := s.Horizon
	if horizon == 0 {
		horizon = fleet.Duration(40 * time.Minute)
	}
	warmup := s.Warmup
	if warmup == 0 {
		warmup = 0.5
	}
	mix.Horizon = tenant.Duration(horizon)
	mix.Warmup = tenant.Duration(float64(horizon) * warmup)
	norm, err := mix.Validate()
	if err != nil {
		return norm, fmt.Errorf("scenario: %v", err)
	}
	return norm, nil
}

// validateTenancy checks a tenancy-mode spec: the mix itself, the contrast
// allocator, and the cross-field rules — faults and the single-app axes are
// rejected, and tenant-prefixed SLOs must name a tenant that exists.
func (s Spec) validateTenancy() error {
	if len(s.Faults) > 0 {
		return fmt.Errorf("scenario: faults are not yet supported with tenancy")
	}
	if s.Workload != "" || s.Controller != "" {
		return fmt.Errorf("scenario: workload/controller come from the tenant mix; drop them from a tenancy spec")
	}
	if s.Trace != (fleet.TraceSpec{}) || s.Initial != (fleet.Static{}) {
		return fmt.Errorf("scenario: trace/initial come from the tenant mix; drop them from a tenancy spec")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("scenario: spec has no seeds")
	}
	if s.Warmup < 0 || s.Warmup >= 1 {
		return fmt.Errorf("scenario: warmup %v outside [0, 1)", s.Warmup)
	}
	mix, err := s.tenancyMix(s.Tenancy.Mix.Allocator)
	if err != nil {
		return err
	}
	if c := s.Tenancy.ContrastAllocator; c != "" {
		switch c {
		case tenant.AllocPriority, tenant.AllocFairShare, tenant.AllocStatic:
		default:
			return fmt.Errorf("scenario: unknown contrast allocator %q (want %s, %s, or %s)",
				c, tenant.AllocPriority, tenant.AllocFairShare, tenant.AllocStatic)
		}
		if c == mix.Allocator {
			return fmt.Errorf("scenario: contrast allocator %q equals the primary — the differential would be vacuous", c)
		}
	}
	if len(s.SLOs) == 0 {
		return fmt.Errorf("scenario: spec has no slos")
	}
	names := make(map[string]bool)
	for _, t := range mix.Tenants {
		names[t.Name] = true
	}
	for _, text := range s.SLOs {
		slo, err := ParseSLO(text)
		if err != nil {
			return err
		}
		if slo.def.needsFaults {
			return fmt.Errorf("scenario: slo %q needs a fault plan, and faults are not yet supported with tenancy", text)
		}
		if slo.Tenant != "" && !names[slo.Tenant] {
			return fmt.Errorf("scenario: slo %q targets unknown tenant %q (mix has %s)",
				text, slo.Tenant, strings.Join(mix.TenantNames(), ", "))
		}
	}
	switch s.Expect {
	case "", VerdictConfirmed, VerdictRejected, VerdictInconclusive:
	default:
		return fmt.Errorf("scenario: unknown expect %q (want %s, %s, or %s)",
			s.Expect, VerdictConfirmed, VerdictRejected, VerdictInconclusive)
	}
	return nil
}

// Validate checks the whole spec: deployment axes (via fleet), fault
// windows (via the injector's plan validation), SLO predicates, and the
// cross-field rules (recovery needs a fault plan; expect must name a
// verdict).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.Hypothesis == "" {
		return fmt.Errorf("scenario: spec has no hypothesis")
	}
	s = s.Normalize()
	if s.Tenancy != nil {
		return s.validateTenancy()
	}
	plan, err := s.plan()
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	// Controller names come from the shared fleet registry, and the
	// rejection is fleet's own error verbatim: an unknown controller fails
	// with identical text whether a fleet spec or a scenario spec named it.
	if !fleet.KnownController(s.Controller) {
		return fleet.UnknownControllerError(s.Controller)
	}
	if err := s.fleetSpec().Validate(); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	if len(s.SLOs) == 0 {
		return fmt.Errorf("scenario: spec has no slos")
	}
	for _, text := range s.SLOs {
		slo, err := ParseSLO(text)
		if err != nil {
			return err
		}
		if slo.def.needsFaults && len(s.Faults) == 0 {
			return fmt.Errorf("scenario: slo %q needs a fault plan (recovery is measured after the last fault window lifts)", text)
		}
		if slo.Tenant != "" {
			return fmt.Errorf("scenario: slo %q targets a tenant but the spec has no tenancy section", text)
		}
	}
	switch s.Expect {
	case "", VerdictConfirmed, VerdictRejected, VerdictInconclusive:
	default:
		return fmt.Errorf("scenario: unknown expect %q (want %s, %s, or %s)",
			s.Expect, VerdictConfirmed, VerdictRejected, VerdictInconclusive)
	}
	return nil
}
