package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/fleet"
	"nostop/internal/sim"
)

// testSpec is a small scenario that violates its delay SLO: back-pressure
// on logreg sheds records and sits near 36s mean delay, so both predicates
// fail decisively. 20m horizon keeps each replication fast.
func testSpec() Spec {
	return Spec{
		Name:       "test-bp",
		Hypothesis: "back-pressure holds the band without shedding",
		Workload:   "logreg",
		Controller: fleet.ControllerBackPressure,
		Seeds:      Seeds{1, 2, 3},
		Horizon:    fleet.Duration(20 * time.Minute),
		SLOs:       []string{"delay_mean < 10s", "shed_fraction < 0.01"},
	}
}

// TestReportByteStable is the harness's core determinism claim: the same
// spec encodes to byte-identical reports at any parallelism.
func TestReportByteStable(t *testing.T) {
	var encs [][]byte
	for _, par := range []int{1, 8} {
		res, err := Run(testSpec(), Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := res.Report.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Fatalf("report bytes differ between parallelism 1 and 8:\n%s\n---\n%s", encs[0], encs[1])
	}
	res, err := Run(testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Verdict != VerdictRejected {
		t.Fatalf("verdict = %s, want %s", res.Report.Verdict, VerdictRejected)
	}
	for i, art := range res.Artifacts {
		if len(art.Data) == 0 {
			t.Fatalf("artifact %d (%s) is empty", i, art.Name)
		}
	}
	if n := len(res.Artifacts); n != 6 { // trace + metrics per seed
		t.Fatalf("got %d artifacts, want 6", n)
	}
}

// TestFirstViolationPinned re-derives the first violating batch from an
// independent observed execution and checks the report pins exactly that
// batch: same sim-time instant, same batch id, same trace-span timestamp.
func TestFirstViolationPinned(t *testing.T) {
	spec := testSpec()
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var delaySLO *SLOResult
	for i := range res.Report.SLOs {
		if res.Report.SLOs[i].Metric == "delay_mean" {
			delaySLO = &res.Report.SLOs[i]
		}
	}
	if delaySLO == nil || delaySLO.Verdict != SLOFail {
		t.Fatalf("delay_mean SLO missing or not FAIL: %+v", delaySLO)
	}
	v := delaySLO.FirstViolation
	if v == nil {
		t.Fatal("failing SLO has no first-violation pointer")
	}

	// Re-run seed 1 independently and find the first steady batch whose
	// e2e delay breaks the bound.
	jobs, err := spec.Normalize().fleetSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	_, detail, err := fleet.ExecuteObserved(jobs[0], fleet.Observe{})
	if err != nil {
		t.Fatal(err)
	}
	history := detail.Engine.History()
	var want *engine.BatchStats
	for i := len(history) / 2; i < len(history); i++ {
		b := history[i]
		if b.FirstAfterReconfig {
			continue
		}
		if b.EndToEndDelay.Seconds() >= 10 {
			want = &history[i]
			break
		}
	}
	if want == nil {
		t.Fatal("no violating batch in the independent re-run")
	}
	if v.Seed != 1 {
		t.Fatalf("violation seed = %d, want 1", v.Seed)
	}
	if sim.Time(v.At) != want.DoneAt {
		t.Fatalf("violation instant = %v, want %v (batch %d DoneAt)", v.At, fleet.Duration(want.DoneAt), want.ID)
	}
	if v.Batch != want.ID {
		t.Fatalf("violation batch = %d, want %d", v.Batch, want.ID)
	}
	if v.Span == nil {
		t.Fatal("violation has no span reference")
	}
	wantTs := int64(want.StartedAt / sim.Time(time.Microsecond))
	if v.Span.TsUs != wantTs || v.Span.Pid != engine.PidEngine || v.Span.Tid != engine.TidExecutors {
		t.Fatalf("span ref = %+v, want pid %d tid %d ts_us %d", v.Span, engine.PidEngine, engine.TidExecutors, wantTs)
	}
	if v.Trace != "trace-seed1.json" {
		t.Fatalf("violation trace artifact = %q", v.Trace)
	}
}

// TestMalformedSpecs exercises the decode and validation error paths.
func TestMalformedSpecs(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bad json", `{`, "decoding spec"},
		{"unknown field", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","workloads":"logreg","slos":["delay_mean < 1s"]}`, "unknown field"},
		{"trailing data", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","slos":["delay_mean < 1s"]} {}`, "trailing data"},
		{"bad seed range", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"5-1","slos":["delay_mean < 1s"]}`, "bad seed range"},
		{"no hypothesis", `{"name":"x","workload":"logreg","seeds":"1","slos":["delay_mean < 1s"]}`, "no hypothesis"},
		{"no slos", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1"}`, "no slos"},
		{"unknown workload", `{"name":"x","hypothesis":"h","workload":"nope","seeds":"1","slos":["delay_mean < 1s"]}`, "nope"},
		{"unknown metric", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","slos":["delay_p42 < 1s"]}`, "unknown metric"},
		{"bad op", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","slos":["delay_mean != 1s"]}`, "unknown op"},
		{"bad threshold", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","slos":["delay_mean < fast"]}`, "bad threshold"},
		{"recovery without faults", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","slos":["recovery < 1m"]}`, "needs a fault plan"},
		{"unknown fault kind", `{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1","faults":[{"kind":"meteor","at":"1m","duration":"1m"}],"slos":["delay_mean < 1s"]}`, "meteor"},
		{"bad expect", `{"name":"x","hypothesis":"h","expect":"maybe","workload":"logreg","seeds":"1","slos":["delay_mean < 1s"]}`, "unknown expect"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Decode([]byte(tc.in))
			if err == nil {
				err = spec.Validate()
			}
			if err == nil {
				t.Fatalf("no error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTruncatedRecoveryIsInconclusive: when the horizon ends before
// recovery can be observed, the sample is only a lower bound, so an
// upper-bounded recovery SLO must refuse to PASS.
func TestTruncatedRecoveryIsInconclusive(t *testing.T) {
	spec := Spec{
		Name:       "test-truncated",
		Hypothesis: "recovery fits in a window the horizon cuts off",
		Workload:   "logreg",
		Controller: fleet.ControllerStatic,
		Seeds:      Seeds{1},
		Horizon:    fleet.Duration(20 * time.Minute),
		Faults: []FaultSpec{{
			Kind: "node-crash", At: fleet.Duration(15 * time.Minute),
			Duration: fleet.Duration(4*time.Minute + 50*time.Second), Node: 1,
		}},
		SLOs: []string{"recovery < 1h"},
	}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slo := res.Report.SLOs[0]
	if slo.Verdict != SLOInconclusive {
		t.Fatalf("verdict = %s, want %s (truncated sample must not PASS)", slo.Verdict, SLOInconclusive)
	}
	if len(slo.Samples) != 1 || !strings.HasPrefix(slo.Samples[0].Note, "truncated") {
		t.Fatalf("sample not marked truncated: %+v", slo.Samples)
	}
	if slo.FirstViolation == nil || slo.FirstViolation.Span == nil {
		t.Fatal("truncated recovery should point at the fault window span")
	}
	if slo.FirstViolation.Span.Name != "node-crash" {
		t.Fatalf("span name = %q, want node-crash", slo.FirstViolation.Span.Name)
	}
}

// TestSmokeTruncation: SeedLimit keeps only the first seed and marks the
// report, so quick CI verdicts are never mistaken for full replication.
func TestSmokeTruncation(t *testing.T) {
	res, err := Run(testSpec(), Options{SeedLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Smoke || res.Report.Replications != 1 {
		t.Fatalf("smoke=%v replications=%d, want smoke with 1 replication", res.Report.Smoke, res.Report.Replications)
	}
	if got := len(res.Report.Spec.Seeds); got != 1 {
		t.Fatalf("normalized spec kept %d seeds, want 1", got)
	}
}

// TestSeedForms: the seeds field accepts both the range-string and the
// explicit-array form and normalizes to the same list.
func TestSeedForms(t *testing.T) {
	a, err := Decode([]byte(`{"name":"x","hypothesis":"h","workload":"logreg","seeds":"1,2,5-7","slos":["delay_mean < 1s"]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(`{"name":"x","hypothesis":"h","workload":"logreg","seeds":[1,2,5,6,7],"slos":["delay_mean < 1s"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seeds) != 5 || len(b.Seeds) != 5 {
		t.Fatalf("seed lists %v / %v, want 5 each", a.Seeds, b.Seeds)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed lists differ: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}

// TestExampleScenarios executes every checked-in spec in smoke mode and
// requires its computed verdict to match its declared expectation — the
// same gate CI runs via `nostop-ask -smoke -selftest`.
func TestExampleScenarios(t *testing.T) {
	pattern := filepath.Join("..", "..", "examples", "scenarios", "*.json")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("found %d example specs at %s, want at least 3", len(paths), pattern)
	}
	sawRejected := false
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Expect == "" {
				t.Fatal("example spec must declare its expected verdict")
			}
			res, err := Run(spec, Options{SeedLimit: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.ExpectMatch == nil || !*res.Report.ExpectMatch {
				t.Fatalf("verdict %s does not match expected %s", res.Report.Verdict, res.Report.Spec.Expect)
			}
			if res.Report.Verdict == VerdictRejected {
				sawRejected = true
				for _, s := range res.Report.SLOs {
					if s.Verdict == SLOFail && s.FirstViolation == nil {
						t.Fatalf("failed SLO %q has no first-violation pointer", s.Text)
					}
				}
			}
		})
	}
	if !sawRejected {
		t.Error("example set should include a REJECTED scenario with violation pointers")
	}
}
