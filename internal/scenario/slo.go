package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"nostop/internal/engine"
	"nostop/internal/experiments"
	"nostop/internal/faults"
	"nostop/internal/fleet"
	"nostop/internal/sim"
	"nostop/internal/stats"
)

// SLO is one parsed predicate: `<metric> <op> <threshold>`. Thresholds for
// duration-valued metrics accept either a duration string ("2s", "1m30s")
// or a float in seconds; everything else is a plain float. The parsed form
// keeps the original text so reports echo exactly what the spec said.
//
// In a tenancy spec the metric may carry a `<tenant>:` prefix
// ("steady:delay_p95 < 8s"), narrowing the sample to that tenant's batch
// history. Only the batch-history metrics (delay_*, proc_mean, sched_mean)
// can be tenant-scoped — the counter and recovery metrics read cluster-wide
// state.
type SLO struct {
	// Text is the predicate as written in the spec.
	Text string `json:"predicate"`
	// Metric is the vocabulary name (see docs/SCENARIOS.md).
	Metric string `json:"metric"`
	// Tenant narrows a batch-history metric to one tenant of a tenancy
	// spec's mix; empty means cluster-wide.
	Tenant string `json:"tenant,omitempty"`
	// Op is the comparison: <, <=, >, or >=.
	Op string `json:"op"`
	// Threshold is in base units: seconds, ratio, or count.
	Threshold float64 `json:"threshold"`
	// Unit names the base unit so readers can interpret Threshold.
	Unit string `json:"unit"`

	def metricDef
}

// metricDef is one row of the metric vocabulary: how to reduce a single
// run to a scalar sample, how to aggregate samples across seeds, and how
// to point at the first violating observation inside a run.
type metricDef struct {
	unit        string // "seconds", "ratio", or "count"
	agg         string // cross-seed aggregator: "mean", "p95", or "max"
	needsFaults bool
	perTenant   bool // batch-history metric: may carry a `<tenant>:` prefix
	sample      func(*runObs) (float64, string)
	violation   func(*runObs, SLO, float64) *Violation
}

// metricDefs is the SLO vocabulary. Delay metrics reduce the steady-state
// batch history (post-warmup, reconfiguration batches excluded — the §5.4
// rule the fleet summary also applies); recovery metrics reuse the chaos
// harness's definition; the counter metrics read the run's PR-3 metrics
// registry.
var metricDefs = map[string]metricDef{
	"delay_mean": {unit: "seconds", agg: "mean", perTenant: true, sample: delaySample(statMean), violation: delayViolation},
	"delay_p50":  {unit: "seconds", agg: "mean", perTenant: true, sample: delaySample(statP(0.50)), violation: delayViolation},
	"delay_p95":  {unit: "seconds", agg: "mean", perTenant: true, sample: delaySample(statP(0.95)), violation: delayViolation},
	"delay_p99":  {unit: "seconds", agg: "mean", perTenant: true, sample: delaySample(statP(0.99)), violation: delayViolation},
	"delay_max":  {unit: "seconds", agg: "mean", perTenant: true, sample: delaySample(statMax), violation: delayViolation},
	"proc_mean":  {unit: "seconds", agg: "mean", perTenant: true, sample: procSample, violation: procViolation},
	"sched_mean": {unit: "seconds", agg: "mean", perTenant: true, sample: schedSample, violation: schedViolation},

	"recovery":     {unit: "seconds", agg: "mean", needsFaults: true, sample: recoverySample, violation: recoveryViolation},
	"recovery_p95": {unit: "seconds", agg: "p95", needsFaults: true, sample: recoverySample, violation: recoveryViolation},
	"recovery_max": {unit: "seconds", agg: "max", needsFaults: true, sample: recoverySample, violation: recoveryViolation},

	"shed_fraction":  {unit: "ratio", agg: "mean", sample: shedSample, violation: counterViolation(onsetShed)},
	"failed_batches": {unit: "count", agg: "mean", sample: counterSample(counterFailed), violation: counterViolation(onsetFailed)},
	"redelivered":    {unit: "count", agg: "mean", sample: counterSample(counterRedelivered), violation: counterViolation(onsetRedelivered)},
}

// Registry counter families the counter-derived metrics read. The engine
// and broker register them (internal/engine/observe.go); looking them up
// here with an empty help string attaches to the existing family.
const (
	counterDropped     = "nostop_records_dropped_total"
	counterProduced    = "nostop_broker_records_produced_total"
	counterFailed      = "nostop_batches_failed_total"
	counterRedelivered = "nostop_broker_redeliveries_total"

	onsetShed        = "shed"
	onsetFailed      = "failed"
	onsetRedelivered = "redelivered"
)

// MetricNames returns the vocabulary sorted, for error messages and docs.
func MetricNames() []string {
	names := make([]string, 0, len(metricDefs))
	for name := range metricDefs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseSLO parses one predicate of the grammar `<metric> <op> <threshold>`,
// where the metric may carry a `<tenant>:` prefix in tenancy specs.
func ParseSLO(text string) (SLO, error) {
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return SLO{}, fmt.Errorf("scenario: slo %q: want `<metric> <op> <threshold>`", text)
	}
	metric, tenantName := fields[0], ""
	if i := strings.IndexByte(metric, ':'); i >= 0 {
		tenantName, metric = metric[:i], metric[i+1:]
		if tenantName == "" || metric == "" || strings.Contains(metric, ":") {
			return SLO{}, fmt.Errorf("scenario: slo %q: want `<tenant>:<metric>` with one colon", text)
		}
	}
	def, ok := metricDefs[metric]
	if !ok {
		return SLO{}, fmt.Errorf("scenario: slo %q: unknown metric %q (want one of %s)",
			text, metric, strings.Join(MetricNames(), ", "))
	}
	if tenantName != "" && !def.perTenant {
		return SLO{}, fmt.Errorf("scenario: slo %q: metric %q is cluster-wide and cannot target a tenant (only the batch-history metrics can)",
			text, metric)
	}
	switch fields[1] {
	case "<", "<=", ">", ">=":
	default:
		return SLO{}, fmt.Errorf("scenario: slo %q: unknown op %q (want <, <=, >, or >=)", text, fields[1])
	}
	threshold, err := parseThreshold(fields[2], def.unit)
	if err != nil {
		return SLO{}, fmt.Errorf("scenario: slo %q: %v", text, err)
	}
	return SLO{Text: text, Metric: metric, Tenant: tenantName, Op: fields[1], Threshold: threshold, Unit: def.unit, def: def}, nil
}

// parseThreshold reads a threshold in the metric's base unit. Duration
// metrics accept "2s"-style strings; every unit accepts a plain float.
func parseThreshold(s, unit string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if unit == "seconds" {
		if d, err := time.ParseDuration(s); err == nil {
			return d.Seconds(), nil
		}
		return 0, fmt.Errorf("bad threshold %q (want a duration like 2s or a float in seconds)", s)
	}
	return 0, fmt.Errorf("bad threshold %q (want a float, unit is %s)", s, unit)
}

// satisfied reports whether x meets the predicate.
func (s SLO) satisfied(x float64) bool {
	switch s.Op {
	case "<":
		return x < s.Threshold
	case "<=":
		return x <= s.Threshold
	case ">":
		return x > s.Threshold
	default: // ">="
		return x >= s.Threshold
	}
}

// upperBounded reports whether the predicate bounds the metric from above
// (< or <=). Truncated samples — lower bounds on a value the horizon cut
// off — make a PASS unsafe for upper bounds and a FAIL unsafe for lower
// bounds; evaluate downgrades those to INCONCLUSIVE.
func (s SLO) upperBounded() bool { return s.Op == "<" || s.Op == "<=" }

// statistics over a run's steady e2e series ------------------------------

func statMean(xs []float64) float64 { return stats.Mean(xs) }

func statMax(xs []float64) float64 {
	var max float64
	for i, x := range xs {
		if i == 0 || x > max {
			max = x
		}
	}
	return max
}

func statP(p float64) func([]float64) float64 {
	return func(xs []float64) float64 {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return stats.Percentile(sorted, p)
	}
}

// per-run samples --------------------------------------------------------

func delaySample(stat func([]float64) float64) func(*runObs) (float64, string) {
	return func(run *runObs) (float64, string) {
		xs := run.steadySeconds(func(b engine.BatchStats) float64 { return b.EndToEndDelay.Seconds() })
		if len(xs) == 0 {
			return 0, "no steady-state batches completed"
		}
		return stat(xs), ""
	}
}

func procSample(run *runObs) (float64, string) {
	xs := run.steadySeconds(func(b engine.BatchStats) float64 { return b.ProcessingTime.Seconds() })
	if len(xs) == 0 {
		return 0, "no steady-state batches completed"
	}
	return stats.Mean(xs), ""
}

func schedSample(run *runObs) (float64, string) {
	xs := run.steadySeconds(func(b engine.BatchStats) float64 { return b.SchedulingDelay.Seconds() })
	if len(xs) == 0 {
		return 0, "no steady-state batches completed"
	}
	return stats.Mean(xs), ""
}

// recoverySample measures how long after the last fault window lifts the
// rolling clean-batch delay re-enters 1.2× the pre-fault steady state
// (experiments.RecoveryTime). A run that never recovers inside the horizon
// yields the remaining-horizon duration as a *lower bound* plus a note;
// evaluate treats such truncated samples conservatively.
func recoverySample(run *runObs) (float64, string) {
	pre := run.preFaultSteady()
	if math.IsNaN(pre) {
		return (run.horizon - run.plan.End()).Seconds(), "truncated: no clean pre-fault batches to define steady state"
	}
	rec := experiments.RecoveryTime(run.history, run.plan.End(), pre)
	if rec < 0 {
		return (run.horizon - run.plan.End()).Seconds(), "truncated: never recovered inside the horizon"
	}
	return rec.Seconds(), ""
}

func shedSample(run *runObs) (float64, string) {
	dropped := run.counter(counterDropped)
	produced := run.counter(counterProduced)
	if produced == 0 {
		return 0, "no records produced"
	}
	return dropped / produced, ""
}

func counterSample(name string) func(*runObs) (float64, string) {
	return func(run *runObs) (float64, string) {
		return run.counter(name), ""
	}
}

// first-violation pointers -----------------------------------------------

// SpanRef addresses one span in the run's Chrome trace file: the (pid,
// tid) lane, the span name, and its timestamp in trace microseconds —
// enough to locate it in chrome://tracing / Perfetto or with jq.
type SpanRef struct {
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Name string `json:"name"`
	TsUs int64  `json:"ts_us"`
}

// Violation pins the first observation that broke a predicate: the seed,
// the sim-time instant, the batch (when one is responsible), the observed
// value, and a span reference into that seed's trace artifact.
type Violation struct {
	Seed   uint64         `json:"seed"`
	At     fleet.Duration `json:"at"`
	Batch  int64          `json:"batch,omitempty"`
	Value  float64        `json:"value"`
	Detail string         `json:"detail"`
	Trace  string         `json:"trace"`
	Span   *SpanRef       `json:"span,omitempty"`
}

func batchSpan(b engine.BatchStats) *SpanRef {
	return &SpanRef{
		Pid:  engine.PidEngine,
		Tid:  engine.TidExecutors,
		Name: fmt.Sprintf("batch %d", b.ID),
		TsUs: int64(b.StartedAt / sim.Time(time.Microsecond)),
	}
}

// batchViolation scans the steady history in simulation order for the
// first batch whose observable breaks the predicate. When no single batch
// crosses the threshold (a mean can violate without any point doing so),
// it falls back to the worst batch, first occurrence.
func batchViolation(run *runObs, slo SLO, field func(engine.BatchStats) float64, what string) *Violation {
	steady := run.steady()
	var worst *engine.BatchStats
	for i := range steady {
		b := &steady[i]
		if !slo.satisfied(field(*b)) {
			return &Violation{
				Seed:   run.seed,
				At:     fleet.Duration(b.DoneAt),
				Batch:  b.ID,
				Value:  field(*b),
				Detail: fmt.Sprintf("first steady-state batch with %s %s beyond the bound", what, fmtValue(field(*b), slo.Unit)),
				Trace:  run.traceFile,
				Span:   batchSpan(*b),
			}
		}
		if worst == nil || beyond(slo, field(*b), field(*worst)) {
			worst = b
		}
	}
	if worst == nil {
		return nil
	}
	return &Violation{
		Seed:   run.seed,
		At:     fleet.Duration(worst.DoneAt),
		Batch:  worst.ID,
		Value:  field(*worst),
		Detail: fmt.Sprintf("no single batch crosses the bound (the aggregate does); worst batch shown, %s %s", what, fmtValue(field(*worst), slo.Unit)),
		Trace:  run.traceFile,
		Span:   batchSpan(*worst),
	}
}

// beyond reports whether x is further toward violating the predicate than y.
func beyond(slo SLO, x, y float64) bool {
	if slo.upperBounded() {
		return x > y
	}
	return x < y
}

func delayViolation(run *runObs, slo SLO, _ float64) *Violation {
	return batchViolation(run, slo, func(b engine.BatchStats) float64 { return b.EndToEndDelay.Seconds() }, "e2e delay")
}

func procViolation(run *runObs, slo SLO, _ float64) *Violation {
	return batchViolation(run, slo, func(b engine.BatchStats) float64 { return b.ProcessingTime.Seconds() }, "processing time")
}

func schedViolation(run *runObs, slo SLO, _ float64) *Violation {
	return batchViolation(run, slo, func(b engine.BatchStats) float64 { return b.SchedulingDelay.Seconds() }, "scheduling delay")
}

// recoveryViolation points at the recovery deadline: the instant
// planEnd + threshold, when the rolling mean was still outside the band,
// with a span reference to the last-lifting fault window.
func recoveryViolation(run *runObs, slo SLO, sample float64) *Violation {
	planEnd := run.plan.End()
	v := &Violation{
		Seed:   run.seed,
		At:     fleet.Duration(planEnd + sim.Time(slo.Threshold*float64(time.Second))),
		Value:  sample,
		Detail: fmt.Sprintf("recovery deadline %s after the last fault window lifted at %v", fmtValue(slo.Threshold, "seconds"), time.Duration(planEnd)),
		Trace:  run.traceFile,
	}
	var last *faults.Fault
	for i := range run.plan {
		f := &run.plan[i]
		if last == nil || f.End() > last.End() {
			last = f
		}
	}
	if last != nil {
		v.Span = &SpanRef{
			Pid:  engine.PidFaults,
			Tid:  faults.TidFaultWindows,
			Name: last.Kind.String(),
			TsUs: int64(last.At / sim.Time(time.Microsecond)),
		}
	}
	return v
}

// counterViolation points at the onset the probe listener recorded: the
// first batch completion at which the backing counter was already nonzero.
func counterViolation(key string) func(*runObs, SLO, float64) *Violation {
	return func(run *runObs, slo SLO, sample float64) *Violation {
		if b, ok := run.onsets[key]; ok {
			return &Violation{
				Seed:   run.seed,
				At:     fleet.Duration(b.DoneAt),
				Batch:  b.ID,
				Value:  sample,
				Detail: fmt.Sprintf("first batch completion with the %s counter nonzero", key),
				Trace:  run.traceFile,
				Span:   batchSpan(b),
			}
		}
		return &Violation{
			Seed:   run.seed,
			At:     fleet.Duration(run.horizon),
			Value:  sample,
			Detail: fmt.Sprintf("%s counter went nonzero after the last batch completion; end of run shown", key),
			Trace:  run.traceFile,
		}
	}
}

// fmtValue renders a value with its unit for human-readable detail lines.
func fmtValue(v float64, unit string) string {
	switch unit {
	case "seconds":
		return time.Duration(v * float64(time.Second)).Round(time.Millisecond).String()
	case "ratio":
		return strconv.FormatFloat(v, 'g', 6, 64)
	default:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
}
