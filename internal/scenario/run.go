package scenario

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"nostop/internal/engine"
	"nostop/internal/experiments"
	"nostop/internal/faults"
	"nostop/internal/fleet"
	"nostop/internal/metrics"
	"nostop/internal/sim"
	"nostop/internal/tenant"
)

// Options configure a scenario run. Like the fleet, parallelism changes
// wall time only — replication results merge in seed order, so the report
// bytes never depend on the worker count.
type Options struct {
	// Parallelism bounds the worker pool (0: NumCPU).
	Parallelism int
	// SeedLimit truncates the seed list to its first N entries (0: all).
	// CI smoke mode runs every checked-in spec with SeedLimit 1: same
	// code path, one replication.
	SeedLimit int
	// TraceMaxEvents bounds each replication's tracer (0: tracing default).
	TraceMaxEvents int
}

// Artifact is one deterministic per-replication output file the CLI writes
// next to the report: the Chrome trace and Prometheus metrics snapshot
// every first-violation pointer and CI dashboard refers back to.
type Artifact struct {
	Name string
	Data []byte
}

// Result is a completed scenario run: the verdict report plus the
// replication artifacts.
type Result struct {
	Report    *Report
	Artifacts []Artifact
}

// runObs is the evaluated view of one replication: a snapshot of the batch
// history, the counter values, and the probe onsets, detached from the
// live engine so evaluation never mutates run state.
type runObs struct {
	seed      uint64
	history   []engine.BatchStats
	plan      faults.Plan
	horizon   sim.Time
	warmup    float64
	counters  map[string]float64
	onsets    map[string]engine.BatchStats
	traceFile string

	// tenants holds the per-tenant batch histories of a tenancy run; the
	// merged, sim-time-ordered union lives in history.
	tenants map[string][]engine.BatchStats
	views   map[string]*runObs

	steadyCache []engine.BatchStats
}

// view returns the evaluated view for one tenant: the same replication with
// history narrowed to that tenant's batches, so every sample/violation
// function in the metric vocabulary works unchanged on tenant-scoped SLOs.
// Views share the counters, onsets, and trace file; each caches its own
// steady series. An empty name returns the cluster-wide view.
func (r *runObs) view(tenant string) *runObs {
	if tenant == "" {
		return r
	}
	if v, ok := r.views[tenant]; ok {
		return v
	}
	v := &runObs{
		seed:      r.seed,
		history:   r.tenants[tenant],
		plan:      r.plan,
		horizon:   r.horizon,
		warmup:    r.warmup,
		counters:  r.counters,
		onsets:    r.onsets,
		traceFile: r.traceFile,
	}
	if r.views == nil {
		r.views = map[string]*runObs{}
	}
	r.views[tenant] = v
	return v
}

// steady returns the post-warmup history with reconfiguration batches
// excluded — the same series the fleet Summary measures.
func (r *runObs) steady() []engine.BatchStats {
	if r.steadyCache != nil {
		return r.steadyCache
	}
	start := int(float64(len(r.history)) * r.warmup)
	out := make([]engine.BatchStats, 0, len(r.history)-start)
	for _, b := range r.history[start:] {
		if b.FirstAfterReconfig {
			continue
		}
		out = append(out, b)
	}
	r.steadyCache = out
	return out
}

// steadySeconds projects the steady series through field.
func (r *runObs) steadySeconds(field func(engine.BatchStats) float64) []float64 {
	steady := r.steady()
	out := make([]float64, len(steady))
	for i, b := range steady {
		out[i] = field(b)
	}
	return out
}

// counter returns the snapshotted end-of-run value of a registry counter.
func (r *runObs) counter(name string) float64 { return r.counters[name] }

// preFaultSteady is the mean clean-batch e2e delay in the pre-fault window
// [0.15·horizon, plan start) — the chaos harness's baseline for recovery.
// NaN when no clean batch completed in the window.
func (r *runObs) preFaultSteady() float64 {
	from, to := sim.Time(float64(r.horizon)*0.15), r.plan.Start()
	if from >= to {
		from = to / 2
	}
	return experiments.SteadyE2E(r.history, from, to)
}

// Run executes the scenario — one observed fleet job per seed — and
// evaluates every SLO into a verdict report. The report and artifacts are
// a pure function of the (normalized, possibly seed-truncated) spec.
func Run(spec Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	smoke := false
	if opts.SeedLimit > 0 && len(spec.Seeds) > opts.SeedLimit {
		spec.Seeds = spec.Seeds[:opts.SeedLimit]
		smoke = true
	}

	slos := make([]SLO, len(spec.SLOs))
	for i, text := range spec.SLOs {
		slo, err := ParseSLO(text)
		if err != nil {
			return nil, err
		}
		slos[i] = slo
	}

	if spec.Tenancy != nil {
		return runTenancy(spec, slos, smoke, opts)
	}

	jobs, err := spec.fleetSpec().Expand()
	if err != nil {
		return nil, err
	}
	if len(jobs) != len(spec.Seeds) {
		return nil, fmt.Errorf("scenario: expanded %d jobs for %d seeds (spec is not a single cell)", len(jobs), len(spec.Seeds))
	}

	runs := make([]*runObs, len(jobs))
	artifacts := make([][]Artifact, len(jobs))
	if err := fleet.ParallelFor(len(jobs), opts.Parallelism, func(i int) error {
		run, arts, err := executeOne(jobs[i], opts.TraceMaxEvents)
		if err != nil {
			return fmt.Errorf("scenario: seed %d: %v", jobs[i].Seed, err)
		}
		runs[i], artifacts[i] = run, arts
		return nil
	}); err != nil {
		return nil, err
	}

	report := &Report{
		Version:      reportVersion,
		Spec:         spec,
		Smoke:        smoke,
		Replications: len(runs),
	}
	for _, slo := range slos {
		report.SLOs = append(report.SLOs, evaluate(slo, runs))
	}
	report.Verdict = overallVerdict(report.SLOs)
	if spec.Expect != "" {
		match := report.Verdict == spec.Expect
		report.ExpectMatch = &match
	}

	result := &Result{Report: report}
	for _, arts := range artifacts {
		result.Artifacts = append(result.Artifacts, arts...)
	}
	return result, nil
}

// executeOne runs one replication with full observability and snapshots
// everything evaluation and the artifact writer need.
func executeOne(job fleet.Job, traceMaxEvents int) (*runObs, []Artifact, error) {
	reg := metrics.NewRegistry()
	run := &runObs{
		seed:      job.Seed,
		plan:      job.Plan.Faults,
		horizon:   sim.Time(job.Horizon),
		warmup:    job.Warmup,
		counters:  map[string]float64{},
		onsets:    map[string]engine.BatchStats{},
		traceFile: fmt.Sprintf("trace-seed%d.json", job.Seed),
	}

	obs := fleet.Observe{
		Metrics:        reg,
		Trace:          true,
		TraceMaxEvents: traceMaxEvents,
		Attach: func(eng *engine.Engine) error {
			// The probe watches, per batch completion, whether each
			// violation counter has gone nonzero yet, pinning the onset
			// to a concrete batch. Reads only — attaching it never
			// perturbs the run (PR-3 zero-perturbation guarantee).
			type watch struct {
				key string
				c   *metrics.Counter
			}
			watches := []watch{
				{onsetShed, reg.Counter(counterDropped, "")},
				{onsetFailed, reg.Counter(counterFailed, "")},
				{onsetRedelivered, reg.Counter(counterRedelivered, "")},
			}
			eng.AddListener(engine.ListenerFunc(func(b engine.BatchStats) {
				for _, w := range watches {
					if _, seen := run.onsets[w.key]; !seen && w.c.Value() > 0 {
						run.onsets[w.key] = b
					}
				}
			}))
			return nil
		},
	}

	_, detail, err := fleet.ExecuteObserved(job, obs)
	if err != nil {
		return nil, nil, err
	}

	run.history = detail.Engine.History()
	run.counters[counterDropped] = reg.Counter(counterDropped, "").Value()
	run.counters[counterProduced] = reg.Counter(counterProduced, "").Value()
	run.counters[counterFailed] = reg.Counter(counterFailed, "").Value()
	run.counters[counterRedelivered] = reg.Counter(counterRedelivered, "").Value()

	var trace bytes.Buffer
	if err := detail.Tracer.WriteJSON(&trace); err != nil {
		return nil, nil, fmt.Errorf("encoding trace: %v", err)
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		return nil, nil, fmt.Errorf("encoding metrics: %v", err)
	}
	arts := []Artifact{
		{Name: run.traceFile, Data: trace.Bytes()},
		{Name: fmt.Sprintf("metrics-seed%d.prom", job.Seed), Data: []byte(prom.String())},
	}
	return run, arts, nil
}

// runTenancy executes a tenancy-mode scenario: one multi-tenant replication
// per seed under the primary allocator and — when a contrast allocator is
// declared — a second replication set under the contrast. The tenant seed
// paths do not encode the allocator, so a primary run and its contrast twin
// draw identical randomness: the comparison is exactly paired, and any SLO
// difference is the allocator's doing.
func runTenancy(spec Spec, slos []SLO, smoke bool, opts Options) (*Result, error) {
	primary, err := spec.tenancyMix(spec.Tenancy.Mix.Allocator)
	if err != nil {
		return nil, err
	}
	var contrast tenant.MixSpec
	n := len(spec.Seeds)
	total := n
	if spec.Tenancy.ContrastAllocator != "" {
		if contrast, err = spec.tenancyMix(spec.Tenancy.ContrastAllocator); err != nil {
			return nil, err
		}
		total = 2 * n
	}

	runs := make([]*runObs, total)
	artifacts := make([][]Artifact, total)
	if err := fleet.ParallelFor(total, opts.Parallelism, func(i int) error {
		mix, label := primary, ""
		if i >= n {
			mix, label = contrast, "contrast-"
		}
		seed := spec.Seeds[i%n]
		run, arts, err := executeTenancy(mix, seed, spec.Warmup, label, opts.TraceMaxEvents)
		if err != nil {
			return fmt.Errorf("scenario: %sseed %d: %v", label, seed, err)
		}
		runs[i], artifacts[i] = run, arts
		return nil
	}); err != nil {
		return nil, err
	}

	report := &Report{
		Version:      reportVersion,
		Spec:         spec,
		Smoke:        smoke,
		Replications: n,
	}
	for _, slo := range slos {
		report.SLOs = append(report.SLOs, evaluate(slo, runs[:n]))
	}
	report.Verdict = overallVerdict(report.SLOs)
	if total > n {
		c := &ContrastReport{Allocator: spec.Tenancy.ContrastAllocator}
		for _, slo := range slos {
			c.SLOs = append(c.SLOs, evaluate(slo, runs[n:]))
		}
		c.Verdict = overallVerdict(c.SLOs)
		report.Contrast = c
		report.Verdict = combineContrast(report.Verdict, c.Verdict)
	}
	if spec.Expect != "" {
		match := report.Verdict == spec.Expect
		report.ExpectMatch = &match
	}

	result := &Result{Report: report}
	for _, arts := range artifacts {
		result.Artifacts = append(result.Artifacts, arts...)
	}
	return result, nil
}

// executeTenancy runs one multi-tenant replication with full observability:
// per-tenant batch histories (for tenant-scoped SLOs), the merged
// sim-time-ordered history (for cluster-wide ones), counter snapshots, and
// onset probes, plus the trace and metrics artifacts. label distinguishes
// contrast artifacts from primary ones.
func executeTenancy(mix tenant.MixSpec, seed uint64, warmup float64, label string, traceMaxEvents int) (*runObs, []Artifact, error) {
	reg := metrics.NewRegistry()
	run := &runObs{
		seed:      seed,
		horizon:   sim.Time(mix.Horizon),
		warmup:    warmup,
		counters:  map[string]float64{},
		onsets:    map[string]engine.BatchStats{},
		tenants:   map[string][]engine.BatchStats{},
		traceFile: fmt.Sprintf("trace-%sseed%d.json", label, seed),
	}

	// The onset probe mirrors the single-app Attach hook: per batch
	// completion, pin the first batch at which each violation counter has
	// gone nonzero. Reads only — passive by the PR-3 guarantee.
	type watch struct {
		key string
		c   *metrics.Counter
	}
	watches := []watch{
		{onsetShed, reg.Counter(counterDropped, "")},
		{onsetFailed, reg.Counter(counterFailed, "")},
		{onsetRedelivered, reg.Counter(counterRedelivered, "")},
	}
	_, detail, err := tenant.RunDetailed(mix, seed, tenant.Observe{
		Metrics:        reg,
		Trace:          true,
		TraceMaxEvents: traceMaxEvents,
		OnBatch: func(b engine.BatchStats) {
			for _, w := range watches {
				if _, seen := run.onsets[w.key]; !seen && w.c.Value() > 0 {
					run.onsets[w.key] = b
				}
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}

	for _, name := range mix.TenantNames() {
		hist := detail.Engines[name].History()
		run.tenants[name] = hist
		run.history = append(run.history, hist...)
	}
	// Merge in simulation order with a total tie-break (tenant, then batch
	// ID) so the cluster-wide history is deterministic.
	sort.SliceStable(run.history, func(i, j int) bool {
		a, b := run.history[i], run.history[j]
		if a.DoneAt != b.DoneAt {
			return a.DoneAt < b.DoneAt
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.ID < b.ID
	})
	run.counters[counterDropped] = reg.Counter(counterDropped, "").Value()
	run.counters[counterProduced] = reg.Counter(counterProduced, "").Value()
	run.counters[counterFailed] = reg.Counter(counterFailed, "").Value()
	run.counters[counterRedelivered] = reg.Counter(counterRedelivered, "").Value()

	var trace bytes.Buffer
	if err := detail.Tracer.WriteJSON(&trace); err != nil {
		return nil, nil, fmt.Errorf("encoding trace: %v", err)
	}
	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		return nil, nil, fmt.Errorf("encoding metrics: %v", err)
	}
	arts := []Artifact{
		{Name: run.traceFile, Data: trace.Bytes()},
		{Name: fmt.Sprintf("metrics-%sseed%d.prom", label, seed), Data: []byte(prom.String())},
	}
	return run, arts, nil
}
