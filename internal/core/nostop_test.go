package core

import (
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/spsa"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

// scenario builds engine+controller on one clock and starts both.
func scenario(t *testing.T, eo func(*engine.Options), co func(*Options)) (*sim.Clock, *engine.Engine, *Controller) {
	t.Helper()
	clock := sim.NewClock()
	eopts := engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 150000},
		Seed:     rng.New(11),
		Initial:  engine.Config{BatchInterval: 20 * time.Second, Executors: 10},
	}
	if eo != nil {
		eo(&eopts)
	}
	eng, err := engine.New(clock, eopts)
	if err != nil {
		t.Fatal(err)
	}
	copts := Options{Seed: rng.New(12)}
	if co != nil {
		co(&copts)
	}
	ctl, err := New(eng, copts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Attach(); err != nil {
		t.Fatal(err)
	}
	return clock, eng, ctl
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil engine accepted")
	}
	clock := sim.NewClock()
	eng, err := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, Options{NormLo: 5, NormHi: 5}); err == nil {
		t.Error("degenerate norm range accepted")
	}
	if _, err := New(eng, Options{Initial: engine.Config{BatchInterval: time.Hour, Executors: 1}}); err == nil {
		t.Error("out-of-bounds initial accepted")
	}
	if _, err := New(eng, Options{MeasureBatches: 5, MeasureBatchesMax: 2}); err == nil {
		t.Error("window max below min accepted")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	_, _, ctl := scenario(t, nil, nil)
	if ctl.MeasureWindow() != 3 {
		t.Errorf("MeasureWindow=%d, want 3", ctl.MeasureWindow())
	}
	if ctl.Rho() != 1 {
		t.Errorf("Rho=%v, want 1", ctl.Rho())
	}
	if ctl.Phase() != PhaseMeasurePlus {
		t.Errorf("Phase=%v, want measure+", ctl.Phase())
	}
	// θ_initial defaults to the middle of the bounds: (20.5s, 10).
	est := ctl.Estimate()
	if est.Executors != 10 {
		t.Errorf("initial executors %d, want 10", est.Executors)
	}
	if est.BatchInterval < 20*time.Second || est.BatchInterval > 21*time.Second {
		t.Errorf("initial interval %v, want ≈20.5s", est.BatchInterval)
	}
}

func TestAttachTwiceFails(t *testing.T) {
	_, _, ctl := scenario(t, nil, nil)
	if err := ctl.Attach(); err == nil {
		t.Fatal("second Attach accepted")
	}
}

func TestIterationsProgress(t *testing.T) {
	clock, _, ctl := scenario(t, nil, nil)
	clock.RunUntil(sim.Time(sec(3600)))
	its := ctl.Iterations()
	if len(its) < 5 {
		t.Fatalf("only %d iterations in 1h", len(its))
	}
	prevAt := sim.Time(-1)
	for i, it := range its {
		// K restarts after §5.5 resets and pause-resume events, but must
		// always be positive and timestamps must be ordered.
		if it.K < 1 {
			t.Fatalf("iteration %d has K=%d", i, it.K)
		}
		if it.At <= prevAt {
			t.Fatalf("iteration %d timestamp %v not after %v", i, it.At, prevAt)
		}
		prevAt = it.At
		if it.YPlus <= 0 || it.YMinus <= 0 {
			t.Fatalf("non-positive objective at iteration %d: %+v", i, it)
		}
		b := engine.DefaultBounds()
		if !b.Contains(it.Estimate) || !b.Contains(it.ThetaPlus) || !b.Contains(it.ThetaMinus) {
			t.Fatalf("iteration %d produced out-of-bounds configs: %+v", i, it)
		}
	}
}

func TestRhoRampsToCap(t *testing.T) {
	clock, _, ctl := scenario(t, nil, nil)
	clock.RunUntil(sim.Time(sec(7200)))
	// ρ ramps by +0.1 per iteration from 1 and caps at 2; it drops back
	// to 1 only on reset/resume events. Every recorded value must stay in
	// [1.1, 2], and a run with ≥10 uninterrupted early iterations must
	// reach the cap at some point.
	reachedCap := false
	for _, it := range ctl.Iterations() {
		if it.Rho < 1.05 || it.Rho > 2 {
			t.Fatalf("rho %v outside [1.1, 2]", it.Rho)
		}
		if it.Rho == 2 {
			reachedCap = true
		}
	}
	if len(ctl.Iterations()) >= 15 && !reachedCap {
		t.Fatalf("rho never reached the cap over %d iterations", len(ctl.Iterations()))
	}
}

func TestNoStopImprovesOverDefault(t *testing.T) {
	// Fig 7's core claim: tuned e2e delay beats the default configuration.
	meanTail := func(h []engine.BatchStats) float64 {
		var xs []float64
		for _, b := range h[len(h)*7/10:] {
			xs = append(xs, b.EndToEndDelay.Seconds())
		}
		return stats.Mean(xs)
	}
	// Default run: no controller.
	clockD := sim.NewClock()
	engD, err := engine.New(clockD, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 150000},
		Seed:     rng.New(11),
		Initial:  engine.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	engD.Start()
	clockD.RunUntil(sim.Time(sec(7200)))
	defaultE2E := meanTail(engD.History())

	clock, eng, ctl := scenario(t, nil, nil)
	clock.RunUntil(sim.Time(sec(7200)))
	tunedE2E := meanTail(eng.History())

	if tunedE2E >= 0.7*defaultE2E {
		t.Fatalf("tuned e2e %.2fs not well below default %.2fs", tunedE2E, defaultE2E)
	}
	// The tuned interval must have shrunk well below the 20s start.
	if est := ctl.Estimate(); est.BatchInterval > 12*time.Second {
		t.Fatalf("estimate interval %v did not shrink", est.BatchInterval)
	}
}

func TestSystemStaysStableUnderTuning(t *testing.T) {
	// The constraint (Eq. 2) must hold in steady state: queue not growing.
	clock, eng, _ := scenario(t, nil, nil)
	clock.RunUntil(sim.Time(sec(7200)))
	if q := eng.QueueLen(); q > 3 {
		t.Fatalf("queue length %d after tuning, system unstable", q)
	}
	h := eng.History()
	tail := h[len(h)-10:]
	bad := 0
	for _, b := range tail {
		if b.SchedulingDelay > 2*b.Config.BatchInterval {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("%d/10 tail batches had runaway scheduling delay", bad)
	}
}

func TestPauseRuleFiresAndGrowsWindow(t *testing.T) {
	// Relaxed pause threshold: with S=6s and N=4 the rule must fire on the
	// low-noise WordCount workload, and the paused monitor must grow the
	// measurement window additively up to the max.
	clock, _, ctl := scenario(t, nil, func(o *Options) {
		o.PauseWindow = 4
		o.PauseStd = 6
	})
	clock.RunUntil(sim.Time(sec(7200)))
	if ctl.Pauses() == 0 {
		t.Fatal("pause rule never fired")
	}
	if ctl.Phase() == PhasePaused && ctl.MeasureWindow() <= 3 {
		t.Fatalf("measurement window %d did not grow while paused", ctl.MeasureWindow())
	}
	if ctl.MeasureWindow() > 10 {
		t.Fatalf("measurement window %d exceeded max 10", ctl.MeasureWindow())
	}
}

func TestSurgeTriggersReset(t *testing.T) {
	clock, _, ctl := scenario(t, func(o *engine.Options) {
		o.Trace = ratetrace.Surge{
			Base: 150000, Peak: 400000,
			Start: sim.Time(sec(1800)), Duration: 1800 * time.Second,
		}
	}, nil)
	clock.RunUntil(sim.Time(sec(1700)))
	if ctl.Resets() != 0 {
		t.Fatalf("%d resets before surge", ctl.Resets())
	}
	clock.RunUntil(sim.Time(sec(2400)))
	if ctl.Resets() == 0 {
		t.Fatal("surge did not trigger a reset")
	}
	// Cooldown: the single 30s transition must not thrash.
	if ctl.Resets() > 3 {
		t.Fatalf("%d resets for one surge edge", ctl.Resets())
	}
}

func TestUniformBandDoesNotTriggerReset(t *testing.T) {
	// §5.5: small fluctuations are noise for SPSA, not reset triggers. The
	// paper's own experimental bands must therefore never reset.
	clock, _, ctl := scenario(t, func(o *engine.Options) {
		o.Trace = ratetrace.NewUniformBand(110000, 190000, 5*time.Second, rng.New(31))
	}, nil)
	clock.RunUntil(sim.Time(sec(3600)))
	if ctl.Resets() != 0 {
		t.Fatalf("band variation caused %d resets", ctl.Resets())
	}
}

func TestConfigureStepsAccounting(t *testing.T) {
	clock, _, ctl := scenario(t, nil, nil)
	clock.RunUntil(sim.Time(sec(3600)))
	its := len(ctl.Iterations())
	steps := ctl.ConfigureSteps()
	// Two probe applications per iteration, plus one per pause/drain
	// episode and the iteration in flight.
	max := 2*its + 2 + ctl.Pauses() + 2*ctl.Resets() + ctl.Drains()
	if steps < 2*its || steps > max {
		t.Fatalf("ConfigureSteps=%d for %d iterations (%d pauses, %d resets, %d drains)",
			steps, its, ctl.Pauses(), ctl.Resets(), ctl.Drains())
	}
}

func TestReconfigBatchesExcludedFromMeasurement(t *testing.T) {
	// With a 60s reconfiguration setup cost, including flagged batches
	// would inflate measured processing times toward 60s+. §5.4's
	// exclusion keeps MeanProc near the true processing time.
	clock, _, ctl := scenario(t, func(o *engine.Options) {
		o.ReconfigSetup = 60 * time.Second
	}, nil)
	clock.RunUntil(sim.Time(sec(5400)))
	its := ctl.Iterations()
	if len(its) == 0 {
		t.Fatal("no iterations")
	}
	contaminated := 0
	for _, it := range its {
		if it.MeanProc > 50*time.Second {
			contaminated++
		}
	}
	if contaminated > 0 {
		t.Fatalf("%d/%d iterations contaminated by setup-cost batches", contaminated, len(its))
	}
}

func TestEstimateAlwaysInBounds(t *testing.T) {
	clock, eng, ctl := scenario(t, func(o *engine.Options) {
		o.Trace = ratetrace.NewUniformBand(110000, 190000, 5*time.Second, rng.New(41))
	}, nil)
	b := eng.ConfigBounds()
	check := func() {
		if est := ctl.Estimate(); !b.Contains(est) {
			t.Fatalf("estimate %v out of bounds", est)
		}
	}
	for i := 0; i < 24; i++ {
		clock.RunUntil(sim.Time(sec(float64(i+1) * 150)))
		check()
	}
}

func TestCustomParamsRespected(t *testing.T) {
	_, _, ctl := scenario(t, nil, func(o *Options) {
		o.Params = spsa.Params{A: 5, Aa: 4, C: 1, Alpha: 0.7, Gamma: 0.12}
		o.MeasureBatches = 2
		o.MeasureBatchesMax = 6
	})
	if ctl.MeasureWindow() != 2 {
		t.Fatalf("MeasureWindow=%d, want 2", ctl.MeasureWindow())
	}
}

func TestPhaseStringer(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseMeasurePlus:  "measure+",
		PhaseMeasureMinus: "measure-",
		PhasePaused:       "paused",
		Phase(9):          "phase(9)",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String()=%q, want %q", int(p), p.String(), want)
		}
	}
}
