package core

import (
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// Tests for the §7 future-work extensions: three-parameter tuning,
// automatic gain selection, and adaptation to node failures.

// blockBounds is DefaultBounds plus a tunable block-interval range.
func blockBounds() engine.Bounds {
	b := engine.DefaultBounds()
	b.MinBlock, b.MaxBlock = 50*time.Millisecond, 2*time.Second
	return b
}

func TestTuneBlockIntervalRequiresBounds(t *testing.T) {
	clock := sim.NewClock()
	eng, err := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, Options{TuneBlockInterval: true}); err == nil {
		t.Fatal("3-parameter tuning accepted without block bounds")
	}
}

func TestThreeParameterTuning(t *testing.T) {
	clock := sim.NewClock()
	seed := rng.New(5)
	wl := workload.NewLogisticRegression()
	lo, hi := wl.RateBand()
	eng, err := engine.New(clock, engine.Options{
		Workload: wl,
		Trace:    ratetrace.NewUniformBand(lo, hi, 5*time.Second, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Bounds:   blockBounds(),
		Initial:  engine.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(eng, Options{Seed: seed.Split("ctl"), TuneBlockInterval: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := ctl.Attach(); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(7200)))

	if len(ctl.Iterations()) < 5 {
		t.Fatalf("only %d iterations", len(ctl.Iterations()))
	}
	// Probes and estimates must carry an in-bounds block interval.
	for _, it := range ctl.Iterations() {
		for _, cfg := range []engine.Config{it.ThetaPlus, it.ThetaMinus, it.Estimate} {
			if cfg.BlockInterval < 50*time.Millisecond || cfg.BlockInterval > 2*time.Second {
				t.Fatalf("block interval %v out of bounds in %v", cfg.BlockInterval, cfg)
			}
		}
	}
	// The tuned system must still beat the default configuration.
	h := eng.History()
	var tail []float64
	for _, b := range h[len(h)*7/10:] {
		tail = append(tail, b.EndToEndDelay.Seconds())
	}
	if m := stats.Mean(tail); m > 30 {
		t.Fatalf("3-parameter tuning tail e2e %.1fs", m)
	}
	// The block dimension was genuinely explored.
	distinct := map[time.Duration]bool{}
	for _, it := range ctl.Iterations() {
		distinct[it.ThetaPlus.BlockInterval] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("block interval never explored: %v", distinct)
	}
}

func TestTwoParameterLeavesBlockAlone(t *testing.T) {
	clock, eng, ctl := scenario(t, nil, nil)
	clock.RunUntil(sim.Time(sec(1800)))
	for _, it := range ctl.Iterations() {
		if it.ThetaPlus.BlockInterval != 0 || it.Estimate.BlockInterval != 0 {
			t.Fatalf("2-parameter controller touched the block interval: %+v", it)
		}
	}
	if eng.Config().BlockInterval != 0 {
		t.Fatalf("engine block interval changed: %v", eng.Config().BlockInterval)
	}
}

func TestAutoGainsCalibratesThenOptimizes(t *testing.T) {
	clock, _, ctl := scenario(t, nil, func(o *Options) {
		o.AutoGains = true
		o.CalibrationBatches = 5
	})
	// During calibration no iterations run.
	clock.RunUntil(sim.Time(sec(60)))
	if len(ctl.Iterations()) != 0 {
		t.Fatal("iterations before calibration finished")
	}
	clock.RunUntil(sim.Time(sec(7200)))
	if len(ctl.Iterations()) < 5 {
		t.Fatalf("AutoGains produced only %d iterations", len(ctl.Iterations()))
	}
	// And it must still converge to a good configuration.
	if ctl.Pauses() == 0 {
		t.Fatal("AutoGains run never paused")
	}
}

func TestAutoGainsComparableToPaperConstants(t *testing.T) {
	run := func(auto bool) float64 {
		clock, eng, _ := scenario(t, nil, func(o *Options) {
			o.AutoGains = auto
		})
		clock.RunUntil(sim.Time(sec(7200)))
		h := eng.History()
		var tail []float64
		for _, b := range h[len(h)*7/10:] {
			tail = append(tail, b.EndToEndDelay.Seconds())
		}
		return stats.Mean(tail)
	}
	manual := run(false)
	auto := run(true)
	if auto > 3*manual && auto > 25 {
		t.Fatalf("AutoGains tail %.1fs far worse than manual %.1fs", auto, manual)
	}
}

func TestControllerSurvivesNodeFailure(t *testing.T) {
	clock, eng, ctl := scenario(t, nil, nil)
	clock.At(sim.Time(sec(2000)), func() {
		if err := eng.FailNode(4); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	clock.RunUntil(sim.Time(sec(7200)))
	// The stream must survive: queue bounded, batches completing.
	if q := eng.QueueLen(); q > 15 {
		t.Fatalf("queue %d after node failure under tuning", q)
	}
	h := eng.History()
	if h[len(h)-1].DoneAt < sim.Time(sec(7000)) {
		t.Fatal("batches stopped completing after the failure")
	}
	var tail []float64
	for _, b := range h[len(h)*8/10:] {
		tail = append(tail, b.EndToEndDelay.Seconds())
	}
	// Post-failure steady state should still beat the untuned default
	// even with 25% less cluster.
	if m := stats.Mean(tail); m > 30 {
		t.Fatalf("post-failure tail e2e %.1fs", m)
	}
	_ = ctl
}
