// Package core implements NoStop — the paper's SPSA-based online
// configuration controller for micro-batch streaming systems (§4, §5).
//
// The controller attaches to a running engine as a batch listener and runs
// Algorithm 1 as an event-driven state machine:
//
//  1. Perturb the current estimate θ into θ⁺/θ⁻ (normalised space, §5.1).
//  2. Apply θ⁺, discard the first batch after the change (§5.4), average
//     processing time over a measurement window, and evaluate the penalised
//     objective G = interval + ρ·max(0, processing − interval) (Eq. 3).
//  3. Repeat for θ⁻, take an SPSA step, ramp ρ by +0.1 up to 2 (Alg. 1).
//  4. Pause when the last N iteration objectives have standard deviation
//     below S (§5.3.5); while paused, hold the estimate, grow the
//     measurement window additively (§5.4), and watch for instability.
//  5. Reset the gain sequences and restart from θ_initial when the input
//     rate shifts abruptly (§5.5's needResetCoefficient/resetCoefficient).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"nostop/internal/approx"
	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/spsa"
	"nostop/internal/stats"
	"nostop/internal/tracing"
)

// System is the surface the controller needs from the streaming system it
// tunes. *engine.Engine satisfies it directly (in-process mode); in service
// mode a network proxy satisfies it by RPC, so the identical SPSA state
// machine drives a local simulation and a remote engine process — the
// bridge ROADMAP item 5 calls for. Implementations must deliver listener
// callbacks and answer queries on the thread that owns Clock(); the
// controller performs no synchronisation of its own.
type System interface {
	// AddListener subscribes the controller to completed batches.
	AddListener(engine.Listener)
	// Clock is the virtual timeline measurements and budgets run on.
	Clock() *sim.Clock
	// Config returns the live configuration.
	Config() engine.Config
	// ConfigBounds returns the feasible configuration region.
	ConfigBounds() engine.Bounds
	// QueueLen returns the number of batches waiting (excluding in-flight).
	QueueLen() int
	// RecentRateMean returns the mean observed arrival rate (records/s).
	RecentRateMean() float64
	// RecentRateStd returns the arrival-rate standard deviation — §5.5's
	// reset signal.
	RecentRateStd() float64
	// Reconfigure requests a configuration change at the next boundary.
	Reconfigure(engine.Config) error
}

// Phase is the controller's state-machine phase.
type Phase int

// Controller phases.
const (
	// PhaseMeasurePlus is collecting measurements at θ⁺.
	PhaseMeasurePlus Phase = iota
	// PhaseMeasureMinus is collecting measurements at θ⁻.
	PhaseMeasureMinus
	// PhasePaused holds the converged estimate and monitors the system.
	PhasePaused
	// PhaseDraining parks the system at the safe configuration until the
	// batch queue empties after a deeply-unstable probe.
	PhaseDraining
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseMeasurePlus:
		return "measure+"
	case PhaseMeasureMinus:
		return "measure-"
	case PhasePaused:
		return "paused"
	case PhaseDraining:
		return "draining"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// ObjectiveForm selects what the controller measures as G(θ) (§4.2.2).
type ObjectiveForm int

// Objective forms.
const (
	// ObjectiveE2E (default) measures the end-to-end delay itself plus
	// the Eq. 3 stability penalty:
	//
	//	G = interval/2 + totalDelay + ρ·max(0, totalDelay − interval)
	//
	// Eq. 1 — the paper's actual optimization goal — is the end-to-end
	// delay; Eq. 3 substitutes the batch interval as its proxy, which is
	// exact at the optimum (where processing time ≈ interval) but
	// constant across all stable configurations, leaving the executor
	// dimension without any gradient until the system destabilises. The
	// E2E form keeps Eq. 3's penalty and constraint behaviour while
	// giving SPSA a usable gradient in both dimensions (fewer executors
	// → longer processing → higher measured delay). The ablation
	// AblationObjective quantifies the difference.
	ObjectiveE2E ObjectiveForm = iota
	// ObjectiveEq3 is the paper's literal objective:
	//
	//	G = interval + ρ·max(0, totalDelay − interval)
	ObjectiveEq3
)

// Options tune the controller. Zero values take the paper's settings.
type Options struct {
	// Objective selects the measured objective form; the zero value is
	// ObjectiveE2E (see the type's documentation).
	Objective ObjectiveForm
	// Initial is θ_initial; zero means the middle of the bounds (§5.2 and
	// §6.2.1's scaled {10, 10}).
	Initial engine.Config
	// Params are the SPSA gain coefficients in normalised space; zero
	// means the paper's A=1, a=10, c=2, α=0.602, γ=0.101 (§6.2.1).
	Params spsa.Params
	// MeasureBatches is the initial number of (non-excluded) batches
	// averaged per probe measurement; 0 means 3 (§5.4).
	MeasureBatches int
	// MeasureBatchesMax caps the additive-increase measurement window
	// grown while paused; 0 means 10 (§5.4).
	MeasureBatchesMax int
	// PauseWindow is N, the number of consecutive iteration objectives
	// whose spread gates the pause rule; 0 means 10 (§6.2.1).
	PauseWindow int
	// PauseStd is S, the pause threshold in seconds. The paper sets S=1
	// for its testbed (§6.2.1); the simulated substrate's measurement
	// noise is larger, so 0 means a calibrated default of 2 — set 1
	// explicitly for the paper's exact value.
	PauseStd float64
	// RateStdThreshold is threshold_speed for §5.5's reset rule, in
	// records/second. 0 derives it lazily as 35% of the observed mean
	// rate, which clears the paper's uniform-band variation but trips on
	// surges. Negative disables the reset rule entirely (ablation).
	RateStdThreshold float64
	// IncludeReconfigBatches disables the §5.4 first-batch exclusion so
	// reconfiguration-inflated batches contaminate measurements
	// (ablation).
	IncludeReconfigBatches bool
	// IncludeFaultBatches disables failure-aware admission so batches cut
	// or completed under an injected fault enter SPSA measurements
	// (ablation — the naive controller chasing fault-inflated gradients).
	// By default such batches are excluded the same way §5.4 excludes
	// reconfiguration-inflated ones, and the first clean batch after a
	// fault window triggers a re-calibration: measurement accumulators
	// reset so pre-fault samples never mix with post-recovery ones.
	IncludeFaultBatches bool
	// RawScale disables the §5.1 min-max normalisation: each parameter
	// is optimized in its own physical range (interval in seconds
	// [1,40], executors [1,20]) instead of the shared [1,20] range
	// (ablation).
	RawScale bool
	// Rho0, RhoStep, RhoMax configure the penalty ramp; zeros mean
	// Algorithm 1's 1.0 / 0.1 / 2.0.
	Rho0, RhoStep, RhoMax float64
	// NormLo/NormHi define the shared normalised parameter range of §5.1;
	// zeros mean [1, 20] (§6.2.1).
	NormLo, NormHi float64
	// Seed drives the SPSA perturbation stream; nil means rng.New(2024).
	Seed *rng.Stream
	// ResetCooldown suppresses repeated §5.5 resets while one surge
	// transition is still inside the rate window; 0 means 30s.
	ResetCooldown time.Duration
	// PauseMargin inflates the interval of the configuration held during
	// a pause by this fraction, since the best-scored configuration sits
	// on the stability edge by construction; 0 means 0.1, negative means
	// no margin.
	PauseMargin float64
	// TuneBlockInterval adds the receiver block interval as a third SPSA
	// dimension — the paper's §7 future work ("the SPSA algorithm is able
	// to optimize multiple parameters simultaneously without additional
	// overhead": still two measurements per iteration). Requires the
	// engine's bounds to set MinBlock/MaxBlock.
	TuneBlockInterval bool
	// AutoGains derives the gain numerators at attach time instead of
	// requiring hand-chosen constants — the paper's §7 future work on
	// determining gain sequences from user-level knowledge. The
	// controller first watches CalibrationBatches completed batches at
	// the initial configuration, sets c to the observed standard
	// deviation of the total delay (§5.6's rule) and a to half the
	// normalised range, then starts optimizing.
	AutoGains bool
	// CalibrationBatches is the AutoGains observation window; 0 means 8.
	CalibrationBatches int
	// BudgetHold is how long an impeded-progress pause holds its
	// configuration before re-opening the search (with the accumulated
	// N-best knowledge intact). Unlike an N-best pause — a genuine
	// convergence signal held until the system destabilises — a budget
	// pause only means "nothing better found yet", so the controller
	// re-checks periodically. 0 means 15 minutes.
	BudgetHold time.Duration
	// MaxSearchTime is the impeded-progress budget in virtual time: if no
	// pause rule has fired this long after the last reset/resume, the
	// controller holds the best configuration seen anyway. 0 means 25
	// minutes; negative disables the time budget.
	MaxSearchTime time.Duration
	// MaxIterations is the impeded-progress budget: if the N-best rule
	// has not fired after this many iterations since the last
	// reset/resume, the controller holds the best configuration seen
	// anyway — §5.3.5's "impeded progress rules to guarantee optimization
	// halt". 0 means 25; negative disables the budget.
	MaxIterations int
	// DrainDelay is the estimated queueing delay (queue length × recent
	// batch processing time) that triggers emergency stabilisation; it
	// complements DrainThreshold because the cost of a queued batch
	// scales with the batch interval — at a 26s interval even a 6-batch
	// queue already means minutes of scheduling delay. 0 means 75s;
	// negative disables the time-based trigger.
	DrainDelay time.Duration
	// Metrics, when non-nil, receives the controller's SPSA step metrics
	// (iterations, resets, pauses, ρ, gains, estimate — see
	// docs/METRICS.md). Instrumentation is passive and cannot perturb a
	// seeded run.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records perturbation/measurement windows and
	// state-machine transitions as Chrome trace_event spans.
	Tracer *tracing.Tracer
	// DrainThreshold is the batch-queue length that triggers emergency
	// stabilisation: the probe is scored immediately with a
	// queueing-projected delay and the system parks at the safe
	// configuration until the queue empties. 0 means 6; negative disables
	// draining (used by the ablation benchmarks). The paper does not
	// spell out how its testbed recovers from a deeply-unstable probe;
	// without this guard a backlog makes both probe measurements reflect
	// the shared queue-drain time, the gradient degenerates to noise, and
	// recovery becomes a slow random walk (see DESIGN.md §5).
	DrainThreshold int
}

// Iteration records one completed SPSA iteration for reports and Fig 6/8.
type Iteration struct {
	K          int
	At         sim.Time
	ThetaPlus  engine.Config
	ThetaMinus engine.Config
	YPlus      float64
	YMinus     float64
	Estimate   engine.Config
	Rho        float64
	// MeanProc and MeanE2E average the batches measured this iteration.
	MeanProc time.Duration
	MeanE2E  time.Duration
}

// Controller is the NoStop optimizer loop bound to one engine.
type Controller struct {
	eng  System
	opts Options

	intervalScale spsa.Scale
	execScale     spsa.Scale
	blockScale    spsa.Scale // valid only when TuneBlockInterval
	spsaSeed      *rng.Stream
	opt           *spsa.Optimizer
	initialNorm   []float64
	calibrating   bool
	calibAcc      []float64

	phase    Phase
	target   engine.Config // config currently being measured/held
	plusCfg  engine.Config
	minusCfg engine.Config
	rho      float64
	measureN int       // current measurement window
	procAcc  []float64 // processing times (reporting)
	totalAcc []float64 // processing + scheduling delay (objective input)
	e2eAcc   []float64
	// best holds the N lowest objectives seen since the last reset with
	// their configurations, ascending by objective — the §5.3.5 pause
	// rule's "N best configurations".
	best []scored
	// §5.4 exclusion state: after a real configuration change we wait for
	// the flagged first batch, discard it, then start collecting. The
	// waited counter bounds the wait when a deep backlog delays the
	// flagged batch indefinitely — system status is meaningful either way.
	awaitFlag bool
	waited    int

	// Failure-aware admission state: inFault latches while flagged batches
	// stream past, so the first clean batch after recovery can trigger a
	// re-calibration exactly once per fault episode.
	inFault        bool
	faultBatches   int
	recalibrations int

	sinceRestart int      // iterations since the last reset/resume (budget rule)
	restartAt    sim.Time // when the current search leg began (time budget)
	budgetPause  bool     // current pause is provisional (impeded progress)
	pausedAt     sim.Time // when the current pause began

	pendingDrain bool   // finishIteration should enter drain mode
	afterDrain   func() // continuation once the queue has emptied
	drains       int
	// Probe evaluation order is randomised per iteration: measuring θ⁺
	// first every time would hand θ⁻ a systematic advantage, because the
	// first probe is measured while the previous iteration's queue
	// residue is still draining.
	firstIsPlus    bool
	measuringFirst bool
	pendingFirst   float64
	order          *rng.Stream
	rateThresh     float64
	iterations     []Iteration
	lastReset      sim.Time
	everReset      bool
	resets         int
	pauses         int
	attached       bool
	totalApplied   int // configuration changes requested (Fig 8's "configure steps")

	obs *ctlObs // nil when observability is disabled
}

// New builds a controller for the engine (any System implementation —
// in-process *engine.Engine or a service-mode proxy). Call Attach to start
// optimizing.
func New(eng System, opts Options) (*Controller, error) {
	if eng == nil {
		return nil, errors.New("core: nil engine")
	}
	b := eng.ConfigBounds()
	if approx.Unset(opts.NormLo) && approx.Unset(opts.NormHi) {
		opts.NormLo, opts.NormHi = 1, 20
	}
	if opts.NormHi <= opts.NormLo {
		return nil, fmt.Errorf("core: bad normalised range [%v, %v]", opts.NormLo, opts.NormHi)
	}
	if opts.MeasureBatches == 0 {
		opts.MeasureBatches = 3
	}
	if opts.MeasureBatchesMax == 0 {
		opts.MeasureBatchesMax = 10
	}
	if opts.MeasureBatchesMax < opts.MeasureBatches {
		return nil, fmt.Errorf("core: measurement window max %d below min %d",
			opts.MeasureBatchesMax, opts.MeasureBatches)
	}
	if opts.PauseWindow == 0 {
		opts.PauseWindow = 10
	}
	if approx.Unset(opts.PauseStd) {
		opts.PauseStd = 2
	}
	if approx.Unset(opts.Rho0) {
		opts.Rho0 = 1
	}
	if approx.Unset(opts.RhoStep) {
		opts.RhoStep = 0.1
	}
	if approx.Unset(opts.RhoMax) {
		opts.RhoMax = 2
	}
	if opts.ResetCooldown == 0 {
		opts.ResetCooldown = 30 * time.Second
	}
	if opts.DrainThreshold == 0 {
		opts.DrainThreshold = 10
	}
	if opts.DrainDelay == 0 {
		opts.DrainDelay = 75 * time.Second
	}
	if approx.Unset(opts.PauseMargin) {
		opts.PauseMargin = 0.1
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 25
	}
	if opts.MaxSearchTime == 0 {
		opts.MaxSearchTime = 25 * time.Minute
	}
	if opts.BudgetHold == 0 {
		opts.BudgetHold = 15 * time.Minute
	}
	if opts.CalibrationBatches == 0 {
		opts.CalibrationBatches = 8
	}
	if opts.PauseMargin < 0 {
		opts.PauseMargin = 0
	}
	if opts.Params == (spsa.Params{}) {
		// §6.2.1: A=1, a=10, c=2 over the [1,20] normalised range. The
		// step clip at 4 normalised units (≈20% of the range) keeps one
		// noisy early gradient from flinging the system across the whole
		// feasible region (see spsa.Params.MaxStep).
		opts.Params = spsa.Params{A: 1, Aa: 10, C: 2, Alpha: 0.602, Gamma: 0.101, MaxStep: 4}
	}
	if opts.Initial == (engine.Config{}) {
		opts.Initial = engine.Config{
			BatchInterval: (b.MinInterval + b.MaxInterval) / 2,
			Executors:     (b.MinExecutors + b.MaxExecutors) / 2,
		}
	}
	if !b.Contains(opts.Initial) {
		return nil, fmt.Errorf("core: initial %v outside engine bounds", opts.Initial)
	}

	intervalNormLo, intervalNormHi := opts.NormLo, opts.NormHi
	execNormLo, execNormHi := opts.NormLo, opts.NormHi
	if opts.RawScale {
		intervalNormLo, intervalNormHi = b.MinInterval.Seconds(), b.MaxInterval.Seconds()
		execNormLo, execNormHi = float64(b.MinExecutors), float64(b.MaxExecutors)
	}
	is, err := spsa.NewScale(b.MinInterval.Seconds(), b.MaxInterval.Seconds(), intervalNormLo, intervalNormHi)
	if err != nil {
		return nil, err
	}
	es, err := spsa.NewScale(float64(b.MinExecutors), float64(b.MaxExecutors), execNormLo, execNormHi)
	if err != nil {
		return nil, err
	}
	var blockScale spsa.Scale
	if opts.TuneBlockInterval {
		if b.MinBlock <= 0 || b.MaxBlock <= b.MinBlock {
			return nil, fmt.Errorf("core: TuneBlockInterval requires engine block bounds, got [%v, %v]", b.MinBlock, b.MaxBlock)
		}
		blockScale, err = spsa.NewScale(b.MinBlock.Seconds(), b.MaxBlock.Seconds(), opts.NormLo, opts.NormHi)
		if err != nil {
			return nil, err
		}
		if opts.Initial.BlockInterval == 0 {
			opts.Initial.BlockInterval = (b.MinBlock + b.MaxBlock) / 2
		}
	}
	c := &Controller{
		eng:           eng,
		opts:          opts,
		intervalScale: is,
		execScale:     es,
		blockScale:    blockScale,
		rho:           opts.Rho0,
		measureN:      opts.MeasureBatches,
		rateThresh:    opts.RateStdThreshold,
	}
	c.initialNorm = c.toNorm(opts.Initial)
	seed := opts.Seed
	if seed == nil {
		seed = rng.New(2024)
	}
	c.spsaSeed = seed.Split("spsa")
	if !opts.AutoGains {
		if err := c.buildOptimizer(opts.Params); err != nil {
			return nil, err
		}
	}
	c.order = seed.Split("probe-order")
	c.obs = newCtlObs(opts.Metrics, opts.Tracer)
	if c.obs != nil {
		c.obs.rho.Set(c.rho)
		c.obs.measureWindow.Set(float64(c.measureN))
	}
	return c, nil
}

// buildOptimizer constructs the SPSA state over the (2- or 3-dimensional)
// normalised box.
func (c *Controller) buildOptimizer(params spsa.Params) error {
	lo := []float64{c.intervalScale.OutLo, c.execScale.OutLo}
	hi := []float64{c.intervalScale.OutHi, c.execScale.OutHi}
	if c.opts.TuneBlockInterval {
		lo = append(lo, c.blockScale.OutLo)
		hi = append(hi, c.blockScale.OutHi)
	}
	opt, err := spsa.New(c.initialNorm, lo, hi, params, c.spsaSeed)
	if err != nil {
		return err
	}
	c.opt = opt
	return nil
}

// toNorm maps a physical config into normalised optimizer space.
func (c *Controller) toNorm(cfg engine.Config) []float64 {
	out := []float64{
		c.intervalScale.ToNorm(cfg.BatchInterval.Seconds()),
		c.execScale.ToNorm(float64(cfg.Executors)),
	}
	if c.opts.TuneBlockInterval {
		block := cfg.BlockInterval
		if block == 0 {
			block = c.opts.Initial.BlockInterval
		}
		out = append(out, c.blockScale.ToNorm(block.Seconds()))
	}
	return out
}

// fromNorm maps a normalised point to a physical config, rounding executors
// and clamping both into the engine bounds.
func (c *Controller) fromNorm(x []float64) engine.Config {
	interval := time.Duration(c.intervalScale.FromNorm(x[0]) * float64(time.Second))
	// Round the interval to 100ms: Spark Streaming intervals are
	// millisecond-granular, but sub-100ms jitter only adds noise.
	interval = interval.Round(100 * time.Millisecond)
	execs := int(math.Round(c.execScale.FromNorm(x[1])))
	cfg := engine.Config{BatchInterval: interval, Executors: execs}
	if c.opts.TuneBlockInterval {
		cfg.BlockInterval = time.Duration(c.blockScale.FromNorm(x[2]) * float64(time.Second)).Round(10 * time.Millisecond)
	}
	return c.eng.ConfigBounds().Clamp(cfg)
}

// Attach registers the controller with the engine and applies the first
// probe configuration. The engine must be started by the caller.
func (c *Controller) Attach() error {
	if c.attached {
		return errors.New("core: already attached")
	}
	c.attached = true
	c.eng.AddListener(engine.ListenerFunc(c.onBatch))
	if c.opts.AutoGains {
		c.calibrating = true
		return nil
	}
	return c.beginIteration()
}

// calibrate accumulates total delays at the initial configuration and, once
// the window fills, derives the §5.6 gains: c from the measured noise, a
// from half the normalised span, A = 1.
func (c *Controller) calibrate(bs engine.BatchStats) {
	c.calibAcc = append(c.calibAcc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	if len(c.calibAcc) < c.opts.CalibrationBatches {
		return
	}
	span := c.opts.NormHi - c.opts.NormLo
	noise := stats.Std(c.calibAcc)
	params := spsa.DefaultParams(span+1, noise)
	params.MaxStep = 4
	if err := c.buildOptimizer(params); err != nil {
		panic(fmt.Sprintf("core: calibration: %v", err)) // scales validated at construction
	}
	c.calibrating = false
	c.restartAt = c.eng.Clock().Now()
	_ = c.beginIteration()
}

// beginIteration draws a perturbation and applies θ⁺.
func (c *Controller) beginIteration() error {
	plus, minus, err := c.opt.Perturb()
	if err != nil {
		return err
	}
	c.plusCfg = c.fromNorm(plus)
	c.minusCfg = c.fromNorm(minus)
	c.onPerturb()
	c.firstIsPlus = c.order.Float64() < 0.5
	c.measuringFirst = true
	phase, cfg := c.firstProbe()
	c.startMeasure(phase, cfg)
	return c.apply(cfg)
}

// firstProbe and secondProbe return the phase/config of this iteration's
// randomised evaluation order.
func (c *Controller) firstProbe() (Phase, engine.Config) {
	if c.firstIsPlus {
		return PhaseMeasurePlus, c.plusCfg
	}
	return PhaseMeasureMinus, c.minusCfg
}

func (c *Controller) secondProbe() (Phase, engine.Config) {
	if c.firstIsPlus {
		return PhaseMeasureMinus, c.minusCfg
	}
	return PhaseMeasurePlus, c.plusCfg
}

// apply requests a configuration change on the engine and arms the §5.4
// first-batch exclusion when the configuration actually changes.
func (c *Controller) apply(cfg engine.Config) error {
	c.totalApplied++
	c.onApply()
	c.awaitFlag = cfg != c.eng.Config()
	c.waited = 0
	return c.eng.Reconfigure(cfg)
}

// startMeasure resets the accumulators for a probe phase.
func (c *Controller) startMeasure(phase Phase, target engine.Config) {
	c.phase = phase
	c.target = target
	c.procAcc = c.procAcc[:0]
	c.totalAcc = c.totalAcc[:0]
	c.e2eAcc = c.e2eAcc[:0]
	c.onMeasureStart()
}

// maxFlagWait bounds how many completed batches we skip while waiting for
// the flagged first-after-reconfig batch. Under a deep backlog the flagged
// batch can be queued behind many stale batches; after this many
// completions the stale batches' total delay is itself the honest system
// status, so we start measuring.
const maxFlagWait = 8

// resumeWarmK is the gain-sequence iteration a pause-resume warm restart
// begins at: early enough for real steps, late enough to skip the wildest
// first-iteration gains.
const resumeWarmK = 4

// admit applies the §5.4 exclusion rules and reports whether a completed
// batch should enter the current measurement.
func (c *Controller) admit(bs engine.BatchStats) bool {
	if c.opts.IncludeReconfigBatches {
		return true // §5.4 exclusion disabled (ablation)
	}
	if c.awaitFlag {
		if bs.FirstAfterReconfig {
			c.awaitFlag = false // discard the flagged batch itself
			return false
		}
		c.waited++
		if c.waited < maxFlagWait {
			return false
		}
		c.awaitFlag = false // §5.4 wait abandoned; measure system as-is
		return true
	}
	return !bs.FirstAfterReconfig
}

// advance consumes a finished probe measurement and moves the state machine.
func (c *Controller) advance(y float64) {
	if c.measuringFirst {
		c.pendingFirst = y
		c.measuringFirst = false
		phase, cfg := c.secondProbe()
		c.startMeasure(phase, cfg)
		_ = c.apply(cfg)
		return
	}
	yPlus, yMinus := c.pendingFirst, y
	if !c.firstIsPlus {
		yPlus, yMinus = y, c.pendingFirst
	}
	c.finishIteration(yPlus, yMinus)
}

// onBatch is the engine listener driving the state machine.
func (c *Controller) onBatch(bs engine.BatchStats) {
	// Failure-aware admission: batches cut or completed under an injected
	// fault never enter measurements — a fault-inflated gradient would
	// steer SPSA toward configurations tuned for a transient failure
	// (§5.4's exclusion logic extended to fault windows). The §5.5
	// rate-change check is skipped for them too, so an ingest-spike fault
	// cannot masquerade as a genuine workload shift and trigger a full
	// reset.
	if !c.opts.IncludeFaultBatches {
		if bs.FaultActive {
			c.inFault = true
			c.faultBatches++
			c.onFaultExcluded()
			return
		}
		if c.inFault {
			// First clean batch after recovery: re-calibrate. Whatever
			// was accumulated straddles the fault window — drop it so the
			// current probe (or pause-monitor check) is judged on
			// post-recovery batches only.
			c.inFault = false
			c.recalibrations++
			c.onRecalibrate()
			c.procAcc = c.procAcc[:0]
			c.totalAcc = c.totalAcc[:0]
			c.e2eAcc = c.e2eAcc[:0]
			c.calibAcc = c.calibAcc[:0]
		}
	}
	if c.calibrating {
		// No optimizer exists yet; rate-change resets are meaningless
		// until the first gains are derived.
		c.calibrate(bs)
		return
	}
	// §5.5: abrupt input-rate changes reset the optimization, whatever
	// phase we are in.
	if c.rateChanged() {
		c.reset()
		return
	}
	switch c.phase {
	case PhaseMeasurePlus, PhaseMeasureMinus:
		c.collect(bs)
	case PhasePaused:
		c.monitor(bs)
	case PhaseDraining:
		c.drain(bs)
	}
}

// enterDrain parks the system at a safe configuration — a mid-range
// interval with the full executor pool, slowing batch arrival while
// maximising processing — and defers cont until the backlog has cleared.
func (c *Controller) enterDrain(cont func()) {
	c.drains++
	c.onDrainEnter()
	c.phase = PhaseDraining
	c.afterDrain = cont
	b := c.eng.ConfigBounds()
	_ = c.apply(engine.Config{
		BatchInterval: (b.MinInterval + b.MaxInterval) / 2,
		Executors:     b.MaxExecutors,
	})
}

// overloaded reports whether the queue state warrants emergency
// stabilisation: either the raw count threshold, or the projected queueing
// delay (count × this batch's processing time) crossing DrainDelay.
func (c *Controller) overloaded(q int, bs engine.BatchStats) bool {
	if c.opts.DrainThreshold > 0 && q > c.opts.DrainThreshold {
		return true
	}
	if c.opts.DrainThreshold <= 0 {
		return false // draining disabled entirely (ablation)
	}
	return c.opts.DrainDelay > 0 && q >= 3 &&
		time.Duration(q)*bs.ProcessingTime > c.opts.DrainDelay
}

// drain waits for the backlog to clear (at most the in-flight batch left),
// then resumes the deferred action.
func (c *Controller) drain(bs engine.BatchStats) {
	if c.eng.QueueLen() > 1 {
		return
	}
	cont := c.afterDrain
	c.afterDrain = nil
	c.onDrainExit()
	cont()
}

// rateChanged implements needResetCoefficient() (§5.5): the std of recent
// input rates exceeds threshold_speed.
func (c *Controller) rateChanged() bool {
	if c.opts.RateStdThreshold < 0 {
		return false // reset rule disabled (ablation)
	}
	if c.everReset && c.eng.Clock().Now()-c.lastReset < sim.Time(c.opts.ResetCooldown) {
		return false // one surge transition = one reset
	}
	if approx.Unset(c.rateThresh) {
		mean := c.eng.RecentRateMean()
		if mean <= 0 {
			return false
		}
		c.rateThresh = 0.35 * mean
	}
	return c.eng.RecentRateStd() > c.rateThresh
}

// reset implements resetCoefficient() (Table 1): k = 0, x = θ_initial,
// ρ = ρ₀, fresh measurement window, and a new iteration begins immediately.
func (c *Controller) reset() {
	c.resets++
	c.onReset()
	c.everReset = true
	c.lastReset = c.eng.Clock().Now()
	if err := c.opt.Reset(c.initialNorm); err != nil {
		panic(fmt.Sprintf("core: reset: %v", err)) // dimensions fixed at construction
	}
	c.rho = c.opts.Rho0
	c.measureN = c.opts.MeasureBatches
	c.best = c.best[:0]
	c.sinceRestart = 0
	c.restartAt = c.eng.Clock().Now()
	// Re-derive the threshold from post-change traffic on the next check.
	if approx.Unset(c.opts.RateStdThreshold) {
		c.rateThresh = 0
	}
	_ = c.beginIteration()
}

// collect accumulates probe measurements. Mirroring Algorithm 2's
// getSystemStatus polling, every completed batch after the §5.4 exclusion
// counts, whatever configuration it was cut under: when the system is
// backlogged, the stale batches' ballooning scheduling delay IS the status
// that must be penalised, and waiting for probe-config batches only would
// stall the controller behind the backlog.
func (c *Controller) collect(bs engine.BatchStats) {
	if q := c.eng.QueueLen(); c.overloaded(q, bs) {
		// Emergency, checked before the §5.4 exclusion so a backlog is
		// never waited out: the probe destabilised the system. Score it
		// now with the queueing projection of the delay already accrued —
		// each queued batch will wait roughly one more processing time —
		// and stabilise before touching the system again.
		total := bs.ProcessingTime.Seconds() + bs.SchedulingDelay.Seconds()
		projected := total + float64(q)*bs.ProcessingTime.Seconds()
		y := c.objective(c.target, projected)
		c.onMeasureDone(y, true)
		if c.measuringFirst {
			c.pendingFirst = y
			c.measuringFirst = false
			c.enterDrain(func() {
				phase, cfg := c.secondProbe()
				c.startMeasure(phase, cfg)
				_ = c.apply(cfg)
			})
			return
		}
		yPlus, yMinus := c.pendingFirst, y
		if !c.firstIsPlus {
			yPlus, yMinus = y, c.pendingFirst
		}
		c.pendingDrain = true
		c.finishIteration(yPlus, yMinus)
		return
	}
	if !c.admit(bs) {
		return
	}
	c.procAcc = append(c.procAcc, bs.ProcessingTime.Seconds())
	c.totalAcc = append(c.totalAcc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	c.e2eAcc = append(c.e2eAcc, bs.EndToEndDelay.Seconds())
	if len(c.totalAcc) < c.measureN {
		return
	}
	y := c.objective(c.target, stats.Mean(c.totalAcc))
	c.onMeasureDone(y, false)
	c.advance(y)
}

// objective evaluates Eq. 3. The measured quantity compared against the
// interval is the batch *total* delay (processing + scheduling) as reported
// by the Spark listener: in a stable system scheduling delay is zero and
// this equals the paper's batch processing time, while in an unstable
// system the growing queue makes p explode, which is what steers SPSA back
// inside the feasible region (a per-batch processing time alone would let
// deeply-unstable tiny intervals score *better* than stable ones, since
// ρ ≤ 2 caps the penalty).
func (c *Controller) objective(cfg engine.Config, measuredSecs float64) float64 {
	interval := cfg.BatchInterval.Seconds()
	penalty := c.rho * math.Max(0, measuredSecs-interval)
	if c.opts.Objective == ObjectiveEq3 {
		return interval + penalty
	}
	return interval/2 + measuredSecs + penalty
}

// finishIteration applies the SPSA update, ramps ρ, records the iteration,
// and either pauses or starts the next one.
func (c *Controller) finishIteration(yPlus, yMinus float64) {
	meanProc := stats.Mean(c.procAcc)
	meanE2E := stats.Mean(c.e2eAcc)
	theta, err := c.opt.Update(yPlus, yMinus)
	if err != nil {
		panic(fmt.Sprintf("core: update without perturb: %v", err)) // state machine invariant
	}
	c.rho = math.Min(c.rho+c.opts.RhoStep, c.opts.RhoMax)
	est := c.fromNorm(theta)
	it := Iteration{
		K:          c.opt.K(),
		At:         c.eng.Clock().Now(),
		ThetaPlus:  c.plusCfg,
		ThetaMinus: c.minusCfg,
		YPlus:      yPlus,
		YMinus:     yMinus,
		Estimate:   est,
		Rho:        c.rho,
		MeanProc:   time.Duration(meanProc * float64(time.Second)),
		MeanE2E:    time.Duration(meanE2E * float64(time.Second)),
	}
	c.iterations = append(c.iterations, it)
	c.onIteration(it)
	c.noteScore(yPlus, c.plusCfg)
	c.noteScore(yMinus, c.minusCfg)

	if c.pendingDrain {
		c.pendingDrain = false
		c.enterDrain(func() { _ = c.beginIteration() })
		return
	}

	// §5.3.5 pause rules: hold the best configuration when the N best
	// objectives have pinned down the optimum region, or when the
	// impeded-progress budget guarantees a halt anyway.
	c.sinceRestart++
	if cfg, permanent, ok := c.pauseReady(); ok {
		c.pauses++
		c.phase = PhasePaused
		c.budgetPause = !permanent
		c.pausedAt = c.eng.Clock().Now()
		// Hold with an interval margin: the best-scored probe sits on
		// the razor edge of the stability constraint by construction
		// (lowest stable interval wins Eq. 3), and §4.2.4 argues θ* is an
		// "acceptable area", not a point. The margin adapts to the input
		// band: the stability frontier scales with the arrival rate, so
		// a configuration measured during a low-rate dwell needs
		// headroom proportional to the band's spread to survive its top
		// (for a uniform band, max/mean − 1 = √3·std/mean).
		margin := c.opts.PauseMargin
		if mean := c.eng.RecentRateMean(); mean > 0 {
			if adaptive := 1.8 * c.eng.RecentRateStd() / mean; adaptive > margin {
				margin = adaptive
			}
		}
		if margin > 0.5 {
			margin = 0.5
		}
		cfg.BatchInterval = time.Duration(float64(cfg.BatchInterval) * (1 + margin)).Round(100 * time.Millisecond)
		cfg = c.eng.ConfigBounds().Clamp(cfg)
		c.onPause(cfg, permanent)
		c.target = cfg
		c.procAcc = c.procAcc[:0]
		c.totalAcc = c.totalAcc[:0]
		c.measureN = c.opts.MeasureBatches
		_ = c.apply(cfg)
		return
	}
	_ = c.beginIteration()
}

// scored is one measured configuration for the pause rule.
type scored struct {
	y   float64
	cfg engine.Config
}

// noteScore folds a probe measurement into the N-best list.
func (c *Controller) noteScore(y float64, cfg engine.Config) {
	i := 0
	for i < len(c.best) && c.best[i].y <= y {
		i++
	}
	if i == c.opts.PauseWindow {
		return // worse than all N best
	}
	c.best = append(c.best, scored{})
	copy(c.best[i+1:], c.best[i:])
	c.best[i] = scored{y: y, cfg: cfg}
	if len(c.best) > c.opts.PauseWindow {
		c.best = c.best[:c.opts.PauseWindow]
	}
}

// strikeFalsified removes N-best entries dominated by a configuration that
// just proved unstable: an entry with an interval no longer and executors
// no more plentiful would fail at least as badly.
func (c *Controller) strikeFalsified(failed engine.Config) {
	kept := c.best[:0]
	for _, s := range c.best {
		dominated := s.cfg.BatchInterval <= failed.BatchInterval && s.cfg.Executors <= failed.Executors
		if !dominated {
			kept = append(kept, s)
		}
	}
	c.best = kept
}

// pauseReady evaluates the pause rules. permanent reports whether the
// N-best convergence rule fired (hold until instability) as opposed to an
// impeded-progress budget (hold provisionally, then re-search).
func (c *Controller) pauseReady() (cfg engine.Config, permanent, ok bool) {
	if len(c.best) == 0 {
		return engine.Config{}, false, false
	}
	if c.opts.MaxIterations > 0 && c.sinceRestart >= c.opts.MaxIterations {
		return c.best[0].cfg, false, true // impeded-progress halt (§5.3.5)
	}
	if c.opts.MaxSearchTime > 0 && c.eng.Clock().Now()-c.restartAt > sim.Time(c.opts.MaxSearchTime) {
		return c.best[0].cfg, false, true // impeded-progress halt, time form
	}
	// §6.2.1 frames N as "consecutive optimization rounds": demand both
	// N completed iterations this leg and N recorded scores, otherwise
	// the very first probes (clustered around θ_initial) can fake
	// convergence.
	if c.sinceRestart < c.opts.PauseWindow || len(c.best) < c.opts.PauseWindow {
		return engine.Config{}, false, false
	}
	ys := make([]float64, len(c.best))
	for i, s := range c.best {
		ys[i] = s.y
	}
	if stats.Std(ys) >= c.opts.PauseStd {
		return engine.Config{}, false, false
	}
	return c.best[0].cfg, true, true
}

// monitor implements the paused state: hold the estimate, grow the
// measurement window additively while the system stays optimal (§5.4), and
// resume optimization if the constraint is violated.
func (c *Controller) monitor(bs engine.BatchStats) {
	if c.budgetPause && c.eng.Clock().Now()-c.pausedAt > sim.Time(c.opts.BudgetHold) {
		// A provisional hold expires: re-open the search from the held
		// configuration with warm gains. The N-best list is knowledge,
		// not hypothesis — it stays.
		c.budgetPause = false
		c.sinceRestart = 0
		c.restartAt = c.eng.Clock().Now()
		c.measureN = c.opts.MeasureBatches
		c.onResume("budget-hold-expired")
		if err := c.opt.ResetAt(c.toNorm(c.target), resumeWarmK); err != nil {
			panic(fmt.Sprintf("core: hold-expiry reset: %v", err))
		}
		_ = c.beginIteration()
		return
	}
	if q := c.eng.QueueLen(); c.overloaded(q, bs) {
		// The held configuration collapsed (e.g. the arrival band moved
		// up): stabilise, then re-optimize from scratch scores.
		c.best = c.best[:0]
		c.measureN = c.opts.MeasureBatches
		c.enterDrain(func() { _ = c.beginIteration() })
		return
	}
	if !c.admit(bs) {
		return
	}
	c.totalAcc = append(c.totalAcc, bs.ProcessingTime.Seconds()+bs.SchedulingDelay.Seconds())
	if len(c.totalAcc) > c.measureN {
		c.totalAcc = c.totalAcc[1:]
	}
	if len(c.totalAcc) < c.measureN {
		return
	}
	meanTotal := stats.Mean(c.totalAcc)
	if meanTotal > c.target.BatchInterval.Seconds() {
		// The system slid into the unstable regime: the held
		// configuration is falsified, along with every recorded
		// configuration that commits weakly fewer resources (shorter
		// interval with no more executors cannot be more stable). The
		// rest of the N-best list remains valid — traffic conditions,
		// unlike a §5.5 rate change, did not shift wholesale — so a
		// quick re-pause onto the next-best candidate stays possible.
		// ρ stays ramped: stability pressure is exactly what the
		// resumed search needs.
		c.strikeFalsified(c.target)
		c.sinceRestart = 0
		c.restartAt = c.eng.Clock().Now()
		c.measureN = c.opts.MeasureBatches
		c.onResume("held-config-unstable")
		if err := c.opt.ResetAt(c.toNorm(c.target), resumeWarmK); err != nil {
			panic(fmt.Sprintf("core: resume reset: %v", err))
		}
		_ = c.beginIteration()
		return
	}
	// Still optimal: relax the window by one batch, bounded (§5.4), which
	// damps pointless re-optimization on transient wobbles.
	if c.measureN < c.opts.MeasureBatchesMax {
		c.measureN++
	}
}

// Phase returns the current state-machine phase.
func (c *Controller) Phase() Phase { return c.phase }

// Iterations returns all completed SPSA iterations.
func (c *Controller) Iterations() []Iteration { return c.iterations }

// Estimate returns the current physical-space estimate θ̂.
func (c *Controller) Estimate() engine.Config { return c.fromNorm(c.opt.Theta()) }

// Resets returns how many §5.5 restarts occurred.
func (c *Controller) Resets() int { return c.resets }

// Pauses returns how many times the pause rule fired.
func (c *Controller) Pauses() int { return c.pauses }

// ConfigureSteps returns the total number of configuration changes the
// controller requested — Fig 8's cost metric.
func (c *Controller) ConfigureSteps() int { return c.totalApplied }

// Rho returns the current penalty coefficient.
func (c *Controller) Rho() float64 { return c.rho }

// MeasureWindow returns the current measurement window size.
func (c *Controller) MeasureWindow() int { return c.measureN }

// Drains returns how many emergency queue-drain episodes occurred.
func (c *Controller) Drains() int { return c.drains }

// FaultBatches returns how many completed batches were excluded from
// measurement because they overlapped an injected fault window.
func (c *Controller) FaultBatches() int { return c.faultBatches }

// Recalibrations returns how many post-recovery re-calibrations occurred
// (one per fault episode: the first clean batch resets the accumulators).
func (c *Controller) Recalibrations() int { return c.recalibrations }
