package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"nostop/internal/approx"
	"nostop/internal/engine"
)

// encode marshals a FullConfig for byte-level comparison — the sanctioned
// way to compare float-bearing structs under the floateq contract.
func encodeCfg(t *testing.T, c FullConfig) []byte {
	t.Helper()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func TestWidenedSpaceValid(t *testing.T) {
	s := WidenedSpace(engine.DefaultBounds(), 13000)
	if err := s.Validate(); err != nil {
		t.Fatalf("widened space invalid: %v", err)
	}
	if len(s.Axes) != 6 {
		t.Fatalf("widened space has %d axes, want 6", len(s.Axes))
	}
	for _, p := range []string{ParamBatchInterval, ParamExecutors, ParamBlockInterval,
		ParamIngestCap, ParamRetryBudget, ParamSpecThreshold} {
		if _, ok := s.Axis(p); !ok {
			t.Errorf("widened space missing axis %s", p)
		}
	}
	// Without a nominal rate there is no ingest axis to bracket.
	s = WidenedSpace(engine.DefaultBounds(), 0)
	if err := s.Validate(); err != nil {
		t.Fatalf("rate-free widened space invalid: %v", err)
	}
	if _, ok := s.Axis(ParamIngestCap); ok {
		t.Error("rate-free widened space should not declare an ingest cap axis")
	}
}

func TestValidateRejections(t *testing.T) {
	base := WidenedSpace(engine.DefaultBounds(), 13000)
	cases := []struct {
		name   string
		mutate func(*ConfigSpace)
		want   string
	}{
		{"bad version", func(s *ConfigSpace) { s.Version = "v0" }, "version"},
		{"no axes", func(s *ConfigSpace) { s.Axes = nil }, "no axes"},
		{"unknown param", func(s *ConfigSpace) { s.Axes[0].Param = "heap_size" }, "unknown param"},
		{"duplicate param", func(s *ConfigSpace) { s.Axes[1].Param = s.Axes[0].Param }, "duplicate"},
		{"inverted bounds", func(s *ConfigSpace) { s.Axes[0].Min, s.Axes[0].Max = s.Axes[0].Max, s.Axes[0].Min }, "above max"},
		{"fractional count", func(s *ConfigSpace) {
			for i := range s.Axes {
				if s.Axes[i].Param == ParamExecutors {
					s.Axes[i].Min = 1.5
				}
			}
		}, "integral"},
		{"duration too small", func(s *ConfigSpace) { s.Axes[0].Min = 1e-6 }, "duration range"},
		{"steps over cap", func(s *ConfigSpace) { s.Axes[0].Steps = 100 }, "steps"},
		{"missing mandatory", func(s *ConfigSpace) { s.Axes = s.Axes[2:] }, "must declare"},
	}
	for _, tc := range cases {
		s := ConfigSpace{Version: base.Version, Axes: append([]AxisSpec(nil), base.Axes...)}
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestEncodeDecodeFixedPoint(t *testing.T) {
	s := WidenedSpace(engine.DefaultBounds(), 13000)
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeSpace(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("encode/decode not a fixed point:\n%s\n%s", enc, enc2)
	}
	if _, err := DecodeSpace([]byte(`{"version":"v1","axes":[],"bogus":1}`)); err == nil {
		t.Error("DecodeSpace accepted an unknown field")
	}
	if _, err := DecodeSpace([]byte(`{"version":"v1","axes":[]} {}`)); err == nil {
		t.Error("DecodeSpace accepted trailing data")
	}
}

func TestClampIdempotentAndSentinels(t *testing.T) {
	s := WidenedSpace(engine.DefaultBounds(), 13000)
	probes := []FullConfig{
		{},
		{BatchInterval: time.Millisecond, Executors: -4, BlockInterval: time.Hour, IngestCap: 1e9, RetryBudget: 100, SpecThreshold: 50},
		{BatchInterval: 3 * time.Second, Executors: 7, BlockInterval: 300 * time.Millisecond, IngestCap: 12000, RetryBudget: 3, SpecThreshold: 1.5},
	}
	for i, p := range probes {
		c1 := s.Clamp(p)
		c2 := s.Clamp(c1)
		if !bytes.Equal(encodeCfg(t, c1), encodeCfg(t, c2)) {
			t.Errorf("probe %d: clamp not idempotent: %+v vs %+v", i, c1, c2)
		}
		b := s.EngineBounds()
		if !b.Contains(c1.Engine()) {
			t.Errorf("probe %d: clamped config %+v escapes engine bounds", i, c1)
		}
	}
	// A two-axis space must reset every optional knob to its sentinel.
	narrow := ConfigSpace{Version: SpaceVersion, Axes: []AxisSpec{
		{Param: ParamBatchInterval, Min: 1, Max: 40},
		{Param: ParamExecutors, Min: 1, Max: 20},
	}}
	if err := narrow.Validate(); err != nil {
		t.Fatal(err)
	}
	c := narrow.Clamp(probes[1])
	if c.BlockInterval != 0 || c.RetryBudget != 0 || !approx.Zero(c.IngestCap) || !approx.Zero(c.SpecThreshold) {
		t.Errorf("narrow clamp kept optional knobs: %+v", c)
	}
}

func TestLatticeNormRoundTrip(t *testing.T) {
	s := WidenedSpace(engine.DefaultBounds(), 13000)
	lattice := s.Lattice()
	if len(lattice) != len(s.Axes) {
		t.Fatalf("lattice has %d axes, want %d", len(lattice), len(s.Axes))
	}
	for i, vals := range lattice {
		if len(vals) < 2 {
			t.Errorf("axis %s: lattice has %d values", s.Axes[i].Param, len(vals))
		}
		for j := 1; j < len(vals); j++ {
			if !(vals[j] > vals[j-1]) {
				t.Errorf("axis %s: lattice not strictly increasing at %d", s.Axes[i].Param, j)
			}
		}
	}
	// Corners and centre are fixed points of Clamp.
	for _, pick := range []func(n int) int{
		func(int) int { return 0 },
		func(n int) int { return n - 1 },
		func(n int) int { return n / 2 },
	} {
		idx := make([]int, len(lattice))
		for i := range idx {
			idx[i] = pick(len(lattice[i]))
		}
		c := s.At(idx)
		if !bytes.Equal(encodeCfg(t, c), encodeCfg(t, s.Clamp(c))) {
			t.Errorf("lattice point %v not clamp-stable", idx)
		}
		// Norm/FromNorm must reproduce the point bytes exactly: both ends
		// quantize durations and counts the same way.
		rt := s.FromNorm(s.Norm(c))
		if !bytes.Equal(encodeCfg(t, c), encodeCfg(t, rt)) {
			t.Errorf("norm round trip moved %+v to %+v", c, rt)
		}
	}
}

func TestIntersectDropsUntunableBlock(t *testing.T) {
	s := WidenedSpace(engine.DefaultBounds(), 13000)
	got := s.Intersect(engine.DefaultBounds()) // default bounds: block not tunable
	if err := got.Validate(); err != nil {
		t.Fatalf("intersection invalid: %v", err)
	}
	if _, ok := got.Axis(ParamBlockInterval); ok {
		t.Error("intersection kept the block axis on a block-pinned engine")
	}
	if len(got.Axes) != len(s.Axes)-1 {
		t.Errorf("intersection has %d axes, want %d", len(got.Axes), len(s.Axes)-1)
	}
	// With block-tunable bounds, the axis narrows instead of disappearing.
	b := engine.DefaultBounds()
	b.MinBlock = 200 * time.Millisecond
	b.MaxBlock = 800 * time.Millisecond
	got = s.Intersect(b)
	a, ok := got.Axis(ParamBlockInterval)
	if !ok {
		t.Fatal("intersection dropped the block axis on a block-tunable engine")
	}
	if a.Min < 0.2-approx.Tol || a.Max > 0.8+approx.Tol {
		t.Errorf("block axis [%v, %v] not narrowed to [0.2, 0.8]", a.Min, a.Max)
	}
}

// recorderActuator records Apply's calls for inspection.
type recorderActuator struct {
	cfg      engine.Config
	cap      float64
	capSet   bool
	retries  int
	spec     float64
	specSet  bool
	retrySet bool
}

func (r *recorderActuator) Reconfigure(c engine.Config) error { r.cfg = c; return nil }
func (r *recorderActuator) SetIngestCap(v float64)            { r.cap = v; r.capSet = true }
func (r *recorderActuator) SetTaskMaxFailures(n int)          { r.retries = n; r.retrySet = true }
func (r *recorderActuator) SetSpeculativeMultiplier(m float64) {
	r.spec = m
	r.specSet = true
}

func TestApplyDrivesDeclaredKnobsOnly(t *testing.T) {
	wide := WidenedSpace(engine.DefaultBounds(), 13000)
	var rec recorderActuator
	in := FullConfig{BatchInterval: 5 * time.Second, Executors: 4, BlockInterval: 500 * time.Millisecond,
		IngestCap: 15000, RetryBudget: 6, SpecThreshold: 2}
	if err := wide.Apply(&rec, in); err != nil {
		t.Fatal(err)
	}
	if rec.cfg.BatchInterval != 5*time.Second || rec.cfg.Executors != 4 {
		t.Errorf("Apply reconfigured %+v", rec.cfg)
	}
	if !rec.capSet || !approx.Eq(rec.cap, 15000) {
		t.Errorf("Apply cap: set=%v value=%v", rec.capSet, rec.cap)
	}
	if !rec.retrySet || rec.retries != 6 {
		t.Errorf("Apply retries: set=%v value=%d", rec.retrySet, rec.retries)
	}
	if !rec.specSet || !approx.Eq(rec.spec, 2) {
		t.Errorf("Apply spec: set=%v value=%v", rec.specSet, rec.spec)
	}

	narrow := ConfigSpace{Version: SpaceVersion, Axes: []AxisSpec{
		{Param: ParamBatchInterval, Min: 1, Max: 40},
		{Param: ParamExecutors, Min: 1, Max: 20},
	}}
	rec = recorderActuator{}
	if err := narrow.Apply(&rec, in); err != nil {
		t.Fatal(err)
	}
	if rec.capSet || rec.retrySet || rec.specSet {
		t.Errorf("narrow Apply touched undeclared knobs: %+v", rec)
	}
	if rec.cfg.BlockInterval != 0 {
		t.Errorf("narrow Apply forwarded a block interval: %+v", rec.cfg)
	}
}

func TestEngineActuatorSatisfiesInterface(t *testing.T) {
	var _ Actuator = (*engine.Engine)(nil)
}
