// Controller observability: SPSA step metrics and trace spans for the
// perturb→measure→update loop. Like the engine's instrumentation this is
// passive — no randomness, no scheduling, no state-machine influence — so
// an observed controller run is batch-for-batch identical to an unobserved
// one.
package core

import (
	"fmt"

	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// TidOptimizer is the controller lane for iteration-level events.
const TidOptimizer = 1

// TidMeasure is the controller lane for probe measurement windows.
const TidMeasure = 2

// ctlObs bundles the controller's instruments; nil disables everything.
type ctlObs struct {
	tr *tracing.Tracer

	iterations     *metrics.Counter
	resets         *metrics.Counter
	pauses         *metrics.Counter
	drains         *metrics.Counter
	configureSteps *metrics.Counter
	recalibrations *metrics.Counter
	faultExcluded  *metrics.Counter

	rho           *metrics.Gauge
	measureWindow *metrics.Gauge
	gainAk        *metrics.Gauge
	gainCk        *metrics.Gauge
	estInterval   *metrics.Gauge
	estExecutors  *metrics.Gauge
	phase         *metrics.Gauge

	objective *metrics.Histogram

	measureFrom sim.Time // start of the live measurement window
}

// newCtlObs registers the controller instruments; nil when both sinks are
// absent.
func newCtlObs(reg *metrics.Registry, tr *tracing.Tracer) *ctlObs {
	if reg == nil && tr == nil {
		return nil
	}
	o := &ctlObs{
		tr: tr,

		iterations:     reg.Counter("nostop_spsa_iterations_total", "Completed SPSA iterations (two probe measurements each)"),
		resets:         reg.Counter("nostop_spsa_resets_total", "Section 5.5 rate-change restarts of the optimization"),
		pauses:         reg.Counter("nostop_spsa_pauses_total", "Section 5.3.5 pause-rule activations"),
		drains:         reg.Counter("nostop_spsa_drains_total", "Emergency queue-drain episodes after destabilising probes"),
		configureSteps: reg.Counter("nostop_spsa_configure_steps_total", "Configuration changes the controller requested (Fig 8 cost metric)"),
		recalibrations: reg.Counter("nostop_controller_recalibrations_total", "Post-fault measurement re-calibrations (accumulators dropped)"),
		faultExcluded:  reg.Counter("nostop_controller_fault_batches_excluded_total", "Batches kept out of SPSA measurements by failure-aware admission"),

		rho:           reg.Gauge("nostop_spsa_rho", "Current Eq. 3 penalty coefficient"),
		measureWindow: reg.Gauge("nostop_spsa_measure_window_batches", "Current probe measurement window (batches)"),
		gainAk:        reg.Gauge("nostop_spsa_gain_ak", "Current SPSA step gain a_k"),
		gainCk:        reg.Gauge("nostop_spsa_gain_ck", "Current SPSA perturbation gain c_k"),
		estInterval:   reg.Gauge("nostop_spsa_estimate_interval_seconds", "Batch interval of the current SPSA estimate"),
		estExecutors:  reg.Gauge("nostop_spsa_estimate_executors", "Executor count of the current SPSA estimate"),
		phase:         reg.Gauge("nostop_controller_phase", "Controller state-machine phase (0 measure+, 1 measure-, 2 paused, 3 draining)"),

		objective: reg.Histogram("nostop_spsa_objective_seconds", "Measured probe objective G (Eq. 3)", metrics.DelaySecondsBuckets()),
	}
	tr.NameProcess(engine.PidController, "nostop-controller")
	tr.NameThread(engine.PidController, TidOptimizer, "spsa-optimizer")
	tr.NameThread(engine.PidController, TidMeasure, "probe-measurement")
	return o
}

// onPerturb records the θ⁺/θ⁻ pair of a new iteration.
func (c *Controller) onPerturb() {
	o := c.obs
	if o == nil {
		return
	}
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", "perturb",
		tracing.Args{"theta_plus": c.plusCfg.String(), "theta_minus": c.minusCfg.String()})
}

// onApply records one configuration-change request.
func (c *Controller) onApply() {
	if c.obs == nil {
		return
	}
	c.obs.configureSteps.Inc()
}

// onMeasureStart marks the opening of a probe measurement window.
func (c *Controller) onMeasureStart() {
	o := c.obs
	if o == nil {
		return
	}
	o.measureFrom = c.eng.Clock().Now()
	o.phase.Set(float64(c.phase))
	o.measureWindow.Set(float64(c.measureN))
}

// onMeasureDone closes a probe measurement window with its objective value;
// emergency marks a window scored early because the probe destabilised the
// system.
func (c *Controller) onMeasureDone(y float64, emergency bool) {
	o := c.obs
	if o == nil {
		return
	}
	o.objective.Observe(y)
	now := c.eng.Clock().Now()
	//nostop:allow obscontract -- phase is a three-valued enum (plus/minus/settle); bounded cardinality
	o.tr.Span(engine.PidController, TidMeasure, "spsa", fmt.Sprintf("measure %s", c.phase),
		o.measureFrom, now-o.measureFrom,
		tracing.Args{"target": c.target.String(), "objective_s": y,
			"batches": len(c.totalAcc), "emergency": emergency})
}

// onIteration records a completed SPSA update.
func (c *Controller) onIteration(it Iteration) {
	o := c.obs
	if o == nil {
		return
	}
	o.iterations.Inc()
	o.rho.Set(it.Rho)
	o.estInterval.Set(it.Estimate.BatchInterval.Seconds())
	o.estExecutors.Set(float64(it.Estimate.Executors))
	ak, ck := c.opt.Gains()
	o.gainAk.Set(ak)
	o.gainCk.Set(ck)
	//nostop:allow obscontract -- per-iteration span name: bounded by the run horizon, golden-pinned trace output
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", fmt.Sprintf("iteration %d", it.K),
		tracing.Args{"y_plus": it.YPlus, "y_minus": it.YMinus,
			"estimate": it.Estimate.String(), "rho": it.Rho})
}

// onReset records a §5.5 rate-change restart.
func (c *Controller) onReset() {
	o := c.obs
	if o == nil {
		return
	}
	o.resets.Inc()
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", "reset",
		tracing.Args{"rate_mean": c.eng.RecentRateMean(), "rate_std": c.eng.RecentRateStd()})
}

// onPause records a pause-rule activation and the configuration held.
func (c *Controller) onPause(cfg engine.Config, permanent bool) {
	o := c.obs
	if o == nil {
		return
	}
	o.pauses.Inc()
	o.phase.Set(float64(PhasePaused))
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", "pause",
		tracing.Args{"held": cfg.String(), "permanent": permanent})
}

// onResume records the search re-opening from a pause.
func (c *Controller) onResume(reason string) {
	o := c.obs
	if o == nil {
		return
	}
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", "resume",
		tracing.Args{"reason": reason})
}

// onDrainEnter records the start of an emergency stabilisation episode.
func (c *Controller) onDrainEnter() {
	o := c.obs
	if o == nil {
		return
	}
	o.drains.Inc()
	o.phase.Set(float64(PhaseDraining))
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", "drain-enter",
		tracing.Args{"queue": c.eng.QueueLen()})
}

// onDrainExit records the backlog clearing.
func (c *Controller) onDrainExit() {
	o := c.obs
	if o == nil {
		return
	}
	o.tr.Instant(engine.PidController, TidOptimizer, "spsa", "drain-exit", nil)
}

// onFaultExcluded records one batch kept out of measurement by
// failure-aware admission.
func (c *Controller) onFaultExcluded() {
	if c.obs == nil {
		return
	}
	c.obs.faultExcluded.Inc()
}

// onRecalibrate records a post-fault accumulator reset.
func (c *Controller) onRecalibrate() {
	o := c.obs
	if o == nil {
		return
	}
	o.recalibrations.Inc()
	o.tr.Instant(engine.PidController, TidMeasure, "spsa", "recalibrate", nil)
}
