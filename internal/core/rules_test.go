package core

import (
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/workload"
)

// Tests for the controller's §5.3.5/§5.4/§5.5 rule implementations and the
// reproduction-specific safeguards documented in DESIGN.md §4b.

func TestImpededProgressIterationBudget(t *testing.T) {
	// With an unreachable std threshold, only the iteration budget can
	// pause — and it must.
	clock, _, ctl := scenario(t, nil, func(o *Options) {
		o.PauseStd = 1e-9 // never satisfied
		o.MaxIterations = 6
		o.MaxSearchTime = -1
	})
	clock.RunUntil(sim.Time(sec(7200)))
	if ctl.Pauses() == 0 {
		t.Fatal("iteration budget never paused the search")
	}
}

func TestImpededProgressTimeBudget(t *testing.T) {
	clock, _, ctl := scenario(t, nil, func(o *Options) {
		o.PauseStd = 1e-9
		o.MaxIterations = -1
		o.MaxSearchTime = 15 * time.Minute
	})
	clock.RunUntil(sim.Time(sec(7200)))
	if ctl.Pauses() == 0 {
		t.Fatal("time budget never paused the search")
	}
}

func TestBudgetsDisabled(t *testing.T) {
	// With every pause rule effectively disabled the controller keeps
	// iterating for the whole horizon.
	clock, _, ctl := scenario(t, nil, func(o *Options) {
		o.PauseStd = 1e-9
		o.MaxIterations = -1
		o.MaxSearchTime = -1
	})
	clock.RunUntil(sim.Time(sec(7200)))
	if ctl.Pauses() != 0 {
		t.Fatalf("pauses=%d with all pause rules disabled", ctl.Pauses())
	}
	if len(ctl.Iterations()) < 10 {
		t.Fatalf("only %d iterations over 2h", len(ctl.Iterations()))
	}
}

func TestObjectiveFormsDiffer(t *testing.T) {
	// Construct two controllers and compare their objective() directly.
	mk := func(form ObjectiveForm) *Controller {
		clock := sim.NewClock()
		eng, err := engine.New(clock, engine.Options{
			Workload: workload.NewWordCount(),
			Trace:    ratetrace.Constant{Rate: 1000},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := New(eng, Options{Objective: form})
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	cfg := engine.Config{BatchInterval: 10 * time.Second, Executors: 8}
	e2e := mk(ObjectiveE2E)
	eq3 := mk(ObjectiveEq3)

	// Stable measurement (total < interval): Eq3 collapses to the
	// interval; E2E keeps the measured delay visible.
	if got := eq3.objective(cfg, 6); got != 10 {
		t.Fatalf("Eq3 stable objective %v, want 10", got)
	}
	if got := e2e.objective(cfg, 6); got != 5+6 {
		t.Fatalf("E2E stable objective %v, want 11", got)
	}
	// Unstable measurement: both penalise, E2E more (it also carries the
	// raw delay).
	eq3Val := eq3.objective(cfg, 14)
	e2eVal := e2e.objective(cfg, 14)
	if eq3Val != 10+1*4 { // fresh controller: ρ=1
		t.Fatalf("Eq3 unstable objective %v", eq3Val)
	}
	if e2eVal <= eq3Val {
		t.Fatalf("E2E unstable objective %v not above Eq3's %v", e2eVal, eq3Val)
	}
}

func TestEq3ExecutorPlateau(t *testing.T) {
	// The documented flaw motivating the default: on stable measurements
	// Eq. 3 is independent of the executor count.
	clock := sim.NewClock()
	eng, _ := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	ctl, _ := New(eng, Options{Objective: ObjectiveEq3})
	a := ctl.objective(engine.Config{BatchInterval: 10 * time.Second, Executors: 2}, 5)
	b := ctl.objective(engine.Config{BatchInterval: 10 * time.Second, Executors: 20}, 5)
	if a != b {
		t.Fatalf("Eq3 distinguishes executor counts on stable systems: %v vs %v", a, b)
	}
}

func TestStrikeFalsified(t *testing.T) {
	clock := sim.NewClock()
	eng, _ := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	ctl, _ := New(eng, Options{})
	add := func(y float64, interval time.Duration, execs int) {
		ctl.noteScore(y, engine.Config{BatchInterval: interval, Executors: execs})
	}
	add(5, 5*time.Second, 8)  // dominated (shorter interval, fewer execs)
	add(6, 6*time.Second, 12) // survives: more executors
	add(7, 20*time.Second, 4) // survives: longer interval
	add(8, 7*time.Second, 10) // dominated boundary case (equal resources)
	ctl.strikeFalsified(engine.Config{BatchInterval: 7 * time.Second, Executors: 10})
	if len(ctl.best) != 2 {
		t.Fatalf("best list after strike: %d entries, want 2 (%+v)", len(ctl.best), ctl.best)
	}
	for _, s := range ctl.best {
		if s.cfg.BatchInterval <= 7*time.Second && s.cfg.Executors <= 10 {
			t.Fatalf("dominated entry survived: %+v", s.cfg)
		}
	}
}

func TestNoteScoreKeepsNBestSorted(t *testing.T) {
	clock := sim.NewClock()
	eng, _ := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
	})
	ctl, _ := New(eng, Options{PauseWindow: 3})
	for _, y := range []float64{9, 4, 7, 2, 8, 5} {
		ctl.noteScore(y, engine.Config{BatchInterval: time.Duration(y) * time.Second, Executors: 5})
	}
	if len(ctl.best) != 3 {
		t.Fatalf("best list size %d, want 3", len(ctl.best))
	}
	want := []float64{2, 4, 5}
	for i, s := range ctl.best {
		if s.y != want[i] {
			t.Fatalf("best list %v, want ys %v", ctl.best, want)
		}
	}
}

func TestPausedConfigCarriesMargin(t *testing.T) {
	// Pause via a generous std threshold; the held interval must exceed
	// the best-scored probe's interval by at least the base margin.
	clock, eng, ctl := scenario(t, nil, func(o *Options) {
		o.PauseWindow = 3
		o.PauseStd = 50
	})
	clock.RunUntil(sim.Time(sec(7200)))
	if ctl.Phase() != PhasePaused {
		t.Skip("controller not paused at horizon (rare seed path)")
	}
	// The engine's live interval is the held (margined) one; the best
	// probe interval is in the iterations record. Check the hold exceeds
	// the smallest winning probe.
	minProbe := time.Duration(1 << 62)
	for _, it := range ctl.Iterations() {
		if it.ThetaPlus.BatchInterval < minProbe {
			minProbe = it.ThetaPlus.BatchInterval
		}
		if it.ThetaMinus.BatchInterval < minProbe {
			minProbe = it.ThetaMinus.BatchInterval
		}
	}
	if eng.Config().BatchInterval < minProbe {
		t.Fatalf("held interval %v below the smallest probe %v", eng.Config().BatchInterval, minProbe)
	}
}

func TestMonitorResumeOnCollapse(t *testing.T) {
	// Force a pause, then double the arrival rate (below the §5.5 reset
	// threshold ratio over a long ramp is hard to arrange; instead jump
	// it and disable the reset rule so only monitor-resume can react).
	clock, _, ctl := scenario(t, func(o *engine.Options) {
		o.Trace = ratetrace.Surge{
			Base: 150000, Peak: 550000,
			Start: sim.Time(sec(4000)), Duration: 3200 * time.Second,
		}
	}, func(o *Options) {
		o.RateStdThreshold = -1 // isolate monitor-resume
	})
	clock.RunUntil(sim.Time(sec(3900)))
	pausesBefore := ctl.Pauses()
	itersBefore := len(ctl.Iterations())
	clock.RunUntil(sim.Time(sec(7200)))
	if pausesBefore == 0 {
		t.Skip("no pause before the surge on this seed")
	}
	if len(ctl.Iterations()) == itersBefore && ctl.Phase() == PhasePaused {
		t.Fatal("rate jump never resumed the paused controller")
	}
}

func TestTailDelayBeatsDefaultAcrossWorkloads(t *testing.T) {
	// End-to-end regression guard over the Fig 7 claim at test scale.
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			// Average two seeds: any single run can land on an unlucky
			// trajectory that converges late; the claim is statistical.
			var tails []float64
			for _, seedN := range []uint64{101, 202} {
				seed := rng.New(seedN)
				clock := sim.NewClock()
				wl, err := workload.New(name)
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := wl.RateBand()
				eng, err := engine.New(clock, engine.Options{
					Workload: wl,
					Trace:    ratetrace.NewUniformBand(lo, hi, 5*time.Second, seed.Split("trace")),
					Seed:     seed.Split("engine"),
					Initial:  engine.DefaultConfig(),
				})
				if err != nil {
					t.Fatal(err)
				}
				ctl, err := New(eng, Options{Seed: seed.Split("ctl")})
				if err != nil {
					t.Fatal(err)
				}
				eng.Start()
				ctl.Attach()
				clock.RunUntil(sim.Time(sec(7200)))
				h := eng.History()
				var tail []float64
				for _, b := range h[len(h)*7/10:] {
					tail = append(tail, b.EndToEndDelay.Seconds())
				}
				tails = append(tails, stats.Mean(tail))
			}
			// The default configuration yields ≈33-38s on every workload;
			// demand a clear mean improvement.
			if m := stats.Mean(tails); m > 25 {
				t.Fatalf("%s: tuned tail e2e %.1fs (per-seed %v), want well below the ~35s default", name, m, tails)
			}
		})
	}
}
