package core

import (
	"testing"

	"nostop/internal/engine"
	"nostop/internal/sim"
)

// faultWindow brackets a straggler on node 2 with the engine fault flag the
// way the faults injector does, without importing it.
func faultWindow(clock *sim.Clock, eng *engine.Engine, from, to float64, apply, revert func()) {
	clock.At(sim.Time(sec(from)), func() {
		apply()
		eng.SetFaultActive(true)
	})
	clock.At(sim.Time(sec(to)), func() {
		revert()
		eng.SetFaultActive(false)
	})
}

func TestFaultBatchesExcludedAndRecalibrated(t *testing.T) {
	clock, eng, ctl := scenario(t, nil, nil)
	faultWindow(clock, eng, 300, 420,
		func() { _ = eng.SetNodeSlowdown(2, 6) },
		func() { _ = eng.SetNodeSlowdown(2, 1) })
	clock.RunUntil(sim.Time(sec(900)))
	if ctl.FaultBatches() == 0 {
		t.Fatal("no batches excluded across a two-minute fault window")
	}
	if ctl.Recalibrations() != 1 {
		t.Fatalf("recalibrations = %d, want exactly 1 for one fault episode", ctl.Recalibrations())
	}
	// Every admitted measurement stayed clean, so the estimate must still
	// live inside the engine bounds (no fault-inflated runaway step).
	if b := eng.ConfigBounds(); !b.Contains(ctl.Estimate()) {
		t.Fatalf("estimate %v escaped bounds after fault episode", ctl.Estimate())
	}
}

func TestIncludeFaultBatchesAblation(t *testing.T) {
	clock, eng, ctl := scenario(t, nil, func(o *Options) {
		o.IncludeFaultBatches = true
	})
	faultWindow(clock, eng, 300, 420,
		func() { _ = eng.SetNodeSlowdown(2, 6) },
		func() { _ = eng.SetNodeSlowdown(2, 1) })
	clock.RunUntil(sim.Time(sec(900)))
	if ctl.FaultBatches() != 0 {
		t.Fatalf("ablation still excluded %d batches", ctl.FaultBatches())
	}
	if ctl.Recalibrations() != 0 {
		t.Fatalf("ablation still recalibrated %d times", ctl.Recalibrations())
	}
}

func TestIngestSpikeFaultDoesNotTriggerRateReset(t *testing.T) {
	clock, eng, ctl := scenario(t, nil, nil)
	var resetsDuring int
	faultWindow(clock, eng, 300, 480,
		func() { eng.SetIngestBoost(2) },
		func() {
			resetsDuring = ctl.Resets()
			eng.SetIngestBoost(1)
		})
	clock.RunUntil(sim.Time(sec(600)))
	if resetsDuring != 0 {
		t.Fatalf("flagged ingest spike triggered %d rate resets mid-window", resetsDuring)
	}
	if ctl.FaultBatches() == 0 {
		t.Fatal("spike window batches were not excluded")
	}
}

func TestRecalibrationCountsPerEpisode(t *testing.T) {
	clock, eng, ctl := scenario(t, nil, nil)
	for _, w := range [][2]float64{{200, 260}, {400, 460}, {600, 660}} {
		w := w
		faultWindow(clock, eng, w[0], w[1],
			func() { _ = eng.SetNodeSlowdown(3, 5) },
			func() { _ = eng.SetNodeSlowdown(3, 1) })
	}
	clock.RunUntil(sim.Time(sec(1000)))
	if ctl.Recalibrations() != 3 {
		t.Fatalf("recalibrations = %d, want 3 (one per episode)", ctl.Recalibrations())
	}
}
