// Configuration space: the versioned, widened action space every controller
// in the zoo tunes (docs/CONTROLLERS.md).
//
// The paper optimizes two parameters — batch interval and executor count —
// and names multi-parameter tuning as future work (§7). Following "Towards
// General and Efficient Online Tuning for Spark", this reproduction widens
// the space to six axes: the two paper parameters plus the receiver block
// interval, the ingest cap, the per-batch retry budget, and the speculation
// threshold. A ConfigSpace declares which axes are tunable and over what
// ranges; controllers that understand fewer axes simply leave the others at
// their engine defaults (the zero sentinels), so a two-parameter controller
// and a six-parameter controller can be compared over the same declared
// space.
//
// Determinism contract: every operation here is a pure function of its
// inputs. Clamp is idempotent (Clamp∘Clamp == Clamp), Encode∘Decode is a
// fixed point, and the discretized lattice is derived arithmetically from
// the axis declarations — properties pinned by FuzzConfigSpace.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"nostop/internal/engine"
)

// SpaceVersion is the ConfigSpace encoding version this package writes and
// the only one it accepts. Bump it when axis semantics change incompatibly.
const SpaceVersion = "v1"

// Parameter names of the widened configuration space. Duration-valued axes
// (batch_interval, block_interval) are declared in seconds; count-valued
// axes (executors, retry_budget) must have integral bounds.
const (
	// ParamBatchInterval is the batch interval in seconds (the paper's
	// first tuned parameter).
	ParamBatchInterval = "batch_interval"
	// ParamExecutors is the executor count (the paper's second parameter).
	ParamExecutors = "executors"
	// ParamBlockInterval is the receiver block interval in seconds; it
	// controls tasks-per-batch (§7 future work, PR-2's third dimension).
	ParamBlockInterval = "block_interval"
	// ParamIngestCap is the accepted input rate limit in records/second —
	// the back-pressure actuator exposed as a tunable axis.
	ParamIngestCap = "ingest_cap"
	// ParamRetryBudget is the per-batch attempt budget under transient
	// task failures (Spark's spark.task.maxFailures).
	ParamRetryBudget = "retry_budget"
	// ParamSpecThreshold is the speculative-execution slowdown multiplier
	// (Spark's spark.speculation.multiplier).
	ParamSpecThreshold = "speculation_threshold"
)

// axis domain kinds: durations clamp in integer nanoseconds, counts in
// integers, scalars in float64 — each domain's clamp is exactly idempotent.
const (
	kindDuration = iota
	kindCount
	kindScalar
)

// paramKind maps a parameter name to its value domain.
func paramKind(name string) (int, bool) {
	switch name {
	case ParamBatchInterval, ParamBlockInterval:
		return kindDuration, true
	case ParamExecutors, ParamRetryBudget:
		return kindCount, true
	case ParamIngestCap, ParamSpecThreshold:
		return kindScalar, true
	}
	return 0, false
}

// AxisSpec declares one tunable parameter: its range and the lattice
// resolution discretizing controllers (RL, GP) work at.
type AxisSpec struct {
	// Param names the parameter (one of the Param* constants).
	Param string `json:"param"`
	// Min and Max bound the axis, inclusive, in the parameter's unit
	// (seconds for durations).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Steps is the number of lattice intervals: the discretized axis has
	// Steps+1 evenly spaced values. 0 means 8; the cap is 64.
	Steps int `json:"steps,omitempty"`
}

// steps resolves the default lattice resolution.
func (a AxisSpec) steps() int {
	if a.Steps == 0 {
		return 8
	}
	return a.Steps
}

// Values returns the axis's discretized lattice: steps+1 evenly spaced
// values from Min to Max. Count axes round every value and drop the
// duplicates that rounding produces, so the lattice never contains two
// coordinates that map to the same configuration.
func (a AxisSpec) Values() []float64 {
	n := a.steps()
	kind, _ := paramKind(a.Param)
	vals := make([]float64, 0, n+1)
	span := a.Max - a.Min
	for i := 0; i <= n; i++ {
		v := a.Min + span*float64(i)/float64(n)
		if kind == kindCount {
			v = math.Round(v)
		}
		if len(vals) > 0 && !(v > vals[len(vals)-1]) {
			continue // rounding collapsed this step into the previous one
		}
		vals = append(vals, v)
	}
	return vals
}

// ConfigSpace is a versioned declaration of the tunable configuration
// space. The zero value is invalid; build one with WidenedSpace or decode
// one from spec JSON with DecodeSpace.
type ConfigSpace struct {
	Version string     `json:"version"`
	Axes    []AxisSpec `json:"axes"`
}

// WidenedSpace returns the canonical six-axis v1 space: batch interval and
// executors from the engine bounds, the block interval (from the bounds
// when tunable there, [0.1s, 1s] otherwise), an ingest cap bracketing the
// workload's nominal peak arrival rate (omitted when nominalRate <= 0), the
// retry budget, and the speculation threshold. A zero bounds value resolves
// to engine.DefaultBounds.
func WidenedSpace(b engine.Bounds, nominalRate float64) ConfigSpace {
	if b == (engine.Bounds{}) {
		b = engine.DefaultBounds()
	}
	minBlock, maxBlock := b.MinBlock, b.MaxBlock
	if maxBlock <= 0 {
		minBlock, maxBlock = 100*time.Millisecond, time.Second
	}
	axes := []AxisSpec{
		{Param: ParamBatchInterval, Min: b.MinInterval.Seconds(), Max: b.MaxInterval.Seconds(), Steps: 13},
		{Param: ParamExecutors, Min: float64(b.MinExecutors), Max: float64(b.MaxExecutors), Steps: b.MaxExecutors - b.MinExecutors},
		{Param: ParamBlockInterval, Min: minBlock.Seconds(), Max: maxBlock.Seconds(), Steps: 9},
	}
	if nominalRate > 0 {
		// The top of the range sits above the arrival band, so the highest
		// lattice value is an effectively-uncapped setting a tuner can
		// discover; the bottom sheds aggressively.
		axes = append(axes, AxisSpec{Param: ParamIngestCap, Min: 0.8 * nominalRate, Max: 2 * nominalRate, Steps: 6})
	}
	axes = append(axes,
		AxisSpec{Param: ParamRetryBudget, Min: 2, Max: 8, Steps: 6},
		AxisSpec{Param: ParamSpecThreshold, Min: 1.2, Max: 3, Steps: 6},
	)
	return ConfigSpace{Version: SpaceVersion, Axes: axes}
}

// Validate checks the space declaration: the version, that every axis names
// a known parameter exactly once with finite ordered bounds and a sane
// lattice resolution, that duration axes stay within [1ms, 1h] (keeping
// nanosecond arithmetic exact), that count axes have integral bounds at
// least 1, and that the two mandatory paper axes are present.
func (s ConfigSpace) Validate() error {
	if s.Version != SpaceVersion {
		return fmt.Errorf("core: config space version %q (want %q)", s.Version, SpaceVersion)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("core: config space has no axes")
	}
	seen := make(map[string]bool, len(s.Axes))
	for i, a := range s.Axes {
		kind, ok := paramKind(a.Param)
		if !ok {
			return fmt.Errorf("core: axis %d: unknown param %q (want %s)", i, a.Param,
				strings.Join([]string{ParamBatchInterval, ParamExecutors, ParamBlockInterval,
					ParamIngestCap, ParamRetryBudget, ParamSpecThreshold}, ", "))
		}
		if seen[a.Param] {
			return fmt.Errorf("core: axis %d: duplicate param %q", i, a.Param)
		}
		seen[a.Param] = true
		if math.IsNaN(a.Min) || math.IsInf(a.Min, 0) || math.IsNaN(a.Max) || math.IsInf(a.Max, 0) {
			return fmt.Errorf("core: axis %s: non-finite bounds [%v, %v]", a.Param, a.Min, a.Max)
		}
		if a.Min > a.Max {
			return fmt.Errorf("core: axis %s: min %v above max %v", a.Param, a.Min, a.Max)
		}
		if a.Steps < 0 || a.Steps > 64 {
			return fmt.Errorf("core: axis %s: steps %d outside [0, 64]", a.Param, a.Steps)
		}
		switch kind {
		case kindDuration:
			if a.Min < 1e-3 || a.Max > 3600 {
				return fmt.Errorf("core: axis %s: duration range [%v, %v]s outside [0.001, 3600]", a.Param, a.Min, a.Max)
			}
		case kindCount:
			if a.Min < 1 {
				return fmt.Errorf("core: axis %s: count min %v below 1", a.Param, a.Min)
			}
			if a.Max > 1e6 {
				return fmt.Errorf("core: axis %s: count max %v above 1e6", a.Param, a.Max)
			}
			if math.Abs(a.Min-math.Round(a.Min)) > 1e-9 || math.Abs(a.Max-math.Round(a.Max)) > 1e-9 {
				return fmt.Errorf("core: axis %s: count bounds [%v, %v] must be integral", a.Param, a.Min, a.Max)
			}
		case kindScalar:
			if a.Min < 0 {
				return fmt.Errorf("core: axis %s: min %v below 0", a.Param, a.Min)
			}
			if a.Max > 1e12 {
				return fmt.Errorf("core: axis %s: max %v above 1e12", a.Param, a.Max)
			}
		}
	}
	if !seen[ParamBatchInterval] || !seen[ParamExecutors] {
		return fmt.Errorf("core: config space must declare %s and %s", ParamBatchInterval, ParamExecutors)
	}
	return nil
}

// DecodeSpace reads a ConfigSpace from strict JSON — unknown fields and
// trailing documents are errors, matching the scenario spec decoder — and
// validates it.
func DecodeSpace(data []byte) (ConfigSpace, error) {
	var s ConfigSpace
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return ConfigSpace{}, fmt.Errorf("core: decoding config space: %v", err)
	}
	if dec.More() {
		return ConfigSpace{}, fmt.Errorf("core: trailing data after config space")
	}
	if err := s.Validate(); err != nil {
		return ConfigSpace{}, err
	}
	return s, nil
}

// Encode renders the space as canonical JSON. Decode(Encode(s)) == s for
// every valid space (the fixed point FuzzConfigSpace pins).
func (s ConfigSpace) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// Axis returns the declaration of param, if the space has it.
func (s ConfigSpace) Axis(param string) (AxisSpec, bool) {
	for _, a := range s.Axes {
		if a.Param == param {
			return a, true
		}
	}
	return AxisSpec{}, false
}

// FullConfig is one point of the widened space. Zero values of the optional
// fields are "engine default" sentinels: BlockInterval 0 keeps the engine's
// block interval, IngestCap 0 leaves ingest uncapped, RetryBudget and
// SpecThreshold 0 keep the engine options' values.
type FullConfig struct {
	BatchInterval time.Duration `json:"batch_interval"`
	Executors     int           `json:"executors"`
	BlockInterval time.Duration `json:"block_interval,omitempty"`
	IngestCap     float64       `json:"ingest_cap,omitempty"`
	RetryBudget   int           `json:"retry_budget,omitempty"`
	SpecThreshold float64       `json:"speculation_threshold,omitempty"`
}

// Engine returns the structural half of the point — the engine.Config that
// goes through Reconfigure.
func (c FullConfig) Engine() engine.Config {
	return engine.Config{BatchInterval: c.BatchInterval, Executors: c.Executors, BlockInterval: c.BlockInterval}
}

// value reads the point's coordinate on param, in axis units.
func (c FullConfig) value(param string) float64 {
	switch param {
	case ParamBatchInterval:
		return c.BatchInterval.Seconds()
	case ParamExecutors:
		return float64(c.Executors)
	case ParamBlockInterval:
		return c.BlockInterval.Seconds()
	case ParamIngestCap:
		return c.IngestCap
	case ParamRetryBudget:
		return float64(c.RetryBudget)
	case ParamSpecThreshold:
		return c.SpecThreshold
	}
	return 0
}

// setValue writes the point's coordinate on param, converting axis units
// back to the field's domain (nanoseconds for durations, ints for counts).
func setValue(c *FullConfig, param string, v float64) {
	switch param {
	case ParamBatchInterval:
		c.BatchInterval = secondsToDuration(v)
	case ParamExecutors:
		c.Executors = int(math.Round(v))
	case ParamBlockInterval:
		c.BlockInterval = secondsToDuration(v)
	case ParamIngestCap:
		c.IngestCap = v
	case ParamRetryBudget:
		c.RetryBudget = int(math.Round(v))
	case ParamSpecThreshold:
		c.SpecThreshold = v
	}
}

// secondsToDuration converts axis seconds to a Duration by rounding to
// whole nanoseconds. Validate bounds duration axes to [1ms, 1h], where this
// conversion is exact enough that clamping stays idempotent.
func secondsToDuration(v float64) time.Duration {
	return time.Duration(math.Round(v * float64(time.Second)))
}

// Clamp restricts c to the space: every declared axis clamps its field into
// [Min, Max] (durations in whole nanoseconds, counts in integers), and the
// fields of undeclared optional axes reset to their engine-default
// sentinels. Clamp is idempotent: Clamp(Clamp(c)) == Clamp(c).
func (s ConfigSpace) Clamp(c FullConfig) FullConfig {
	for _, param := range []string{ParamBatchInterval, ParamExecutors, ParamBlockInterval,
		ParamIngestCap, ParamRetryBudget, ParamSpecThreshold} {
		a, ok := s.Axis(param)
		if !ok {
			if param != ParamBatchInterval && param != ParamExecutors {
				setValue(&c, param, 0)
				switch param { // zero the sentinel exactly, skipping unit conversion
				case ParamBlockInterval:
					c.BlockInterval = 0
				case ParamIngestCap:
					c.IngestCap = 0
				case ParamRetryBudget:
					c.RetryBudget = 0
				case ParamSpecThreshold:
					c.SpecThreshold = 0
				}
			}
			continue
		}
		kind, _ := paramKind(param)
		switch kind {
		case kindDuration:
			lo := time.Duration(math.Round(a.Min * float64(time.Second)))
			hi := time.Duration(math.Round(a.Max * float64(time.Second)))
			var d time.Duration
			switch param {
			case ParamBatchInterval:
				d = c.BatchInterval
			case ParamBlockInterval:
				d = c.BlockInterval
			}
			if d < lo {
				d = lo
			}
			if d > hi {
				d = hi
			}
			switch param {
			case ParamBatchInterval:
				c.BatchInterval = d
			case ParamBlockInterval:
				c.BlockInterval = d
			}
		case kindCount:
			lo, hi := int(math.Round(a.Min)), int(math.Round(a.Max))
			var n int
			switch param {
			case ParamExecutors:
				n = c.Executors
			case ParamRetryBudget:
				n = c.RetryBudget
			}
			if n < lo {
				n = lo
			}
			if n > hi {
				n = hi
			}
			switch param {
			case ParamExecutors:
				c.Executors = n
			case ParamRetryBudget:
				c.RetryBudget = n
			}
		case kindScalar:
			v := c.value(param)
			if math.IsNaN(v) || v < a.Min {
				v = a.Min
			}
			if v > a.Max {
				v = a.Max
			}
			setValue(&c, param, v)
		}
	}
	return c
}

// Lattice returns the per-axis discretized values, in axis order.
func (s ConfigSpace) Lattice() [][]float64 {
	vals := make([][]float64, len(s.Axes))
	for i, a := range s.Axes {
		vals[i] = a.Values()
	}
	return vals
}

// At maps a lattice coordinate vector (one index per axis, clamped to the
// axis's value count) to the configuration point it denotes.
func (s ConfigSpace) At(idx []int) FullConfig {
	var c FullConfig
	for i, a := range s.Axes {
		vals := a.Values()
		j := 0
		if i < len(idx) {
			j = idx[i]
		}
		if j < 0 {
			j = 0
		}
		if j >= len(vals) {
			j = len(vals) - 1
		}
		setValue(&c, a.Param, vals[j])
	}
	return s.Clamp(c)
}

// Norm maps a point to normalized [0,1] coordinates in axis order — the
// input representation the GP surrogate works in. A zero-span axis maps to
// 0.5.
func (s ConfigSpace) Norm(c FullConfig) []float64 {
	x := make([]float64, len(s.Axes))
	for i, a := range s.Axes {
		span := a.Max - a.Min
		if span <= 0 {
			x[i] = 0.5
			continue
		}
		v := (c.value(a.Param) - a.Min) / span
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		x[i] = v
	}
	return x
}

// FromNorm maps normalized [0,1] coordinates back to a clamped point.
func (s ConfigSpace) FromNorm(x []float64) FullConfig {
	var c FullConfig
	for i, a := range s.Axes {
		u := 0.5
		if i < len(x) {
			u = x[i]
		}
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		setValue(&c, a.Param, a.Min+(a.Max-a.Min)*u)
	}
	return s.Clamp(c)
}

// EngineBounds projects the space onto the engine's feasible region: batch
// interval, executor, and block-interval axes become Bounds fields (block
// bounds stay zero — not tunable — when the space has no block axis).
func (s ConfigSpace) EngineBounds() engine.Bounds {
	b := engine.DefaultBounds()
	if a, ok := s.Axis(ParamBatchInterval); ok {
		b.MinInterval = time.Duration(math.Round(a.Min * float64(time.Second)))
		b.MaxInterval = time.Duration(math.Round(a.Max * float64(time.Second)))
	}
	if a, ok := s.Axis(ParamExecutors); ok {
		b.MinExecutors = int(math.Round(a.Min))
		b.MaxExecutors = int(math.Round(a.Max))
	}
	if a, ok := s.Axis(ParamBlockInterval); ok {
		b.MinBlock = time.Duration(math.Round(a.Min * float64(time.Second)))
		b.MaxBlock = time.Duration(math.Round(a.Max * float64(time.Second)))
	}
	return b
}

// Intersect narrows the space to an engine's feasible region: the batch,
// executor, and block axes shrink to the overlap with the bounds, and the
// block axis is dropped entirely when the engine does not tune it. Tuners
// call this once at construction so every configuration they propose is
// admissible to Reconfigure.
func (s ConfigSpace) Intersect(b engine.Bounds) ConfigSpace {
	out := ConfigSpace{Version: s.Version}
	for _, a := range s.Axes {
		switch a.Param {
		case ParamBatchInterval:
			a = narrowAxis(a, b.MinInterval.Seconds(), b.MaxInterval.Seconds())
		case ParamExecutors:
			a = narrowAxis(a, float64(b.MinExecutors), float64(b.MaxExecutors))
		case ParamBlockInterval:
			if b.MaxBlock <= 0 {
				continue // engine pins the block interval; drop the axis
			}
			a = narrowAxis(a, b.MinBlock.Seconds(), b.MaxBlock.Seconds())
		}
		out.Axes = append(out.Axes, a)
	}
	return out
}

// narrowAxis shrinks an axis to [lo, hi]; a disjoint overlap falls back to
// the engine's own range (the engine is authoritative on feasibility).
func narrowAxis(a AxisSpec, lo, hi float64) AxisSpec {
	min, max := a.Min, a.Max
	if min < lo {
		min = lo
	}
	if max > hi {
		max = hi
	}
	if min > max {
		min, max = lo, hi
	}
	a.Min, a.Max = min, max
	return a
}

// Actuator is the engine surface Apply drives. The structural half of a
// point goes through Reconfigure and lands at the next batch boundary; the
// runtime knobs apply immediately. engine.Engine satisfies it.
type Actuator interface {
	Reconfigure(engine.Config) error
	SetIngestCap(float64)
	SetTaskMaxFailures(int)
	SetSpeculativeMultiplier(float64)
}

// Apply pushes a point onto the system: it clamps into the space, requests
// the structural reconfiguration, and sets the declared runtime knobs.
// Knobs whose axes the space does not declare are left untouched, so a
// narrow space never perturbs engine defaults.
func (s ConfigSpace) Apply(a Actuator, c FullConfig) error {
	c = s.Clamp(c)
	if err := a.Reconfigure(c.Engine()); err != nil {
		return err
	}
	if _, ok := s.Axis(ParamIngestCap); ok {
		a.SetIngestCap(c.IngestCap)
	}
	if _, ok := s.Axis(ParamRetryBudget); ok && c.RetryBudget > 0 {
		a.SetTaskMaxFailures(c.RetryBudget)
	}
	if _, ok := s.Axis(ParamSpecThreshold); ok && c.SpecThreshold > 0 {
		a.SetSpeculativeMultiplier(c.SpecThreshold)
	}
	return nil
}
