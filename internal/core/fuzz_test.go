package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"nostop/internal/engine"
)

// FuzzConfigSpace pins the config-space codec's safety properties on
// arbitrary spec JSON: decoding never panics, whatever decodes cleanly
// re-encodes to a fixed point (Decode∘Encode == identity on the encoded
// bytes), Clamp is idempotent on a deterministic probe set, and every
// lattice corner is clamp-stable inside the declared engine bounds.
// Comparisons are over canonical JSON bytes — the floateq-sanctioned way to
// compare float-bearing values.
func FuzzConfigSpace(f *testing.F) {
	wide := WidenedSpace(engine.DefaultBounds(), 13000)
	if enc, err := wide.Encode(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte(`{"version":"v1","axes":[{"param":"batch_interval","min":1,"max":40},{"param":"executors","min":1,"max":20}]}`))
	f.Add([]byte(`{"version":"v1","axes":[{"param":"batch_interval","min":1,"max":40,"steps":64},{"param":"executors","min":2,"max":2},{"param":"speculation_threshold","min":0,"max":1e12}]}`))
	f.Add([]byte(`{"version":"v2","axes":[{"param":"heap","min":5,"max":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpace(data)
		if err != nil {
			return // rejected input: the only guarantee is "no panic"
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("valid space failed to encode: %v", err)
		}
		s2, err := DecodeSpace(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not a fixed point:\n%s\n%s", enc, enc2)
		}

		probes := probeConfigs(s)
		for i, p := range probes {
			c1 := s.Clamp(p)
			c2 := s.Clamp(c1)
			b1, err1 := json.Marshal(c1)
			b2, err2 := json.Marshal(c2)
			if err1 != nil || err2 != nil {
				t.Fatalf("probe %d: marshal: %v %v", i, err1, err2)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("probe %d: clamp not idempotent:\n%s\n%s", i, b1, b2)
			}
			if !s.EngineBounds().Contains(c1.Engine()) {
				t.Fatalf("probe %d: clamped config %+v escapes engine bounds", i, c1)
			}
		}

		// Every lattice corner is a clamp fixed point.
		lattice := s.Lattice()
		for corner := 0; corner < 1<<uint(len(lattice)) && corner < 64; corner++ {
			idx := make([]int, len(lattice))
			for a := range idx {
				if corner&(1<<uint(a)) != 0 {
					idx[a] = len(lattice[a]) - 1
				}
			}
			c := s.At(idx)
			b1, _ := json.Marshal(c)
			b2, _ := json.Marshal(s.Clamp(c))
			if !bytes.Equal(b1, b2) {
				t.Fatalf("lattice corner %v not clamp-stable", idx)
			}
		}
	})
}

// probeConfigs derives a deterministic probe set from the space itself:
// zero, far-out-of-range on both sides, and per-axis boundary values.
func probeConfigs(s ConfigSpace) []FullConfig {
	probes := []FullConfig{
		{},
		{BatchInterval: -time.Hour, Executors: -1000, BlockInterval: -time.Hour, IngestCap: -1e18, RetryBudget: -1000, SpecThreshold: -1e18},
		{BatchInterval: 1000 * time.Hour, Executors: 1 << 30, BlockInterval: 1000 * time.Hour, IngestCap: 1e18, RetryBudget: 1 << 30, SpecThreshold: 1e18},
	}
	var lo, hi FullConfig
	for _, a := range s.Axes {
		setValue(&lo, a.Param, a.Min)
		setValue(&hi, a.Param, a.Max)
	}
	return append(probes, lo, hi)
}
