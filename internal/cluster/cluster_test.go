package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2Shape(t *testing.T) {
	c := Table2()
	nodes := c.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("nodes=%d, want 5", len(nodes))
	}
	if nodes[0].Role != Master {
		t.Error("node 1 should be master")
	}
	if len(c.Workers()) != 4 {
		t.Fatalf("workers=%d, want 4", len(c.Workers()))
	}
	if c.TotalWorkerCores() < 20 {
		t.Fatalf("capacity %d cannot host the paper's 20-executor max", c.TotalWorkerCores())
	}
	// Heterogeneity: the Xeon Bronze node must be slower.
	var xeon *NodeSpec
	for _, n := range nodes {
		if n.ID == 3 {
			xeon = n
		}
	}
	if xeon == nil || xeon.SpeedFactor >= 1.0 {
		t.Error("Xeon Bronze node should have speed factor < 1")
	}
	// Disk classes per Table 2.
	wantDisk := map[int]DiskClass{1: SSD, 2: SSD, 3: HDD, 4: HDD, 5: HDD}
	for _, n := range nodes {
		if n.Disk != wantDisk[n.ID] {
			t.Errorf("node %d disk %v, want %v", n.ID, n.Disk, wantDisk[n.ID])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := New([]NodeSpec{
		{ID: 1, SpeedFactor: 1, DiskFactor: 1},
		{ID: 1, SpeedFactor: 1, DiskFactor: 1},
	}); err == nil {
		t.Error("duplicate node IDs accepted")
	}
	if _, err := New([]NodeSpec{{ID: 1, SpeedFactor: 0, DiskFactor: 1}}); err == nil {
		t.Error("zero speed factor accepted")
	}
	if _, err := New([]NodeSpec{{ID: 1, SpeedFactor: 1, DiskFactor: 0}}); err == nil {
		t.Error("zero disk factor accepted")
	}
	if _, err := New([]NodeSpec{{ID: 1, SpeedFactor: 1, DiskFactor: 1, Cores: -1}}); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestAllocateSpreads(t *testing.T) {
	c := Homogeneous(4, 6)
	execs, err := c.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[int]int{}
	for _, e := range execs {
		perNode[e.Node.ID]++
	}
	if len(perNode) != 4 {
		t.Fatalf("4 executors on %d nodes, want spread over 4", len(perNode))
	}
	for id, n := range perNode {
		if n != 1 {
			t.Fatalf("node %d has %d executors, want 1", id, n)
		}
	}
}

func TestAllocateCapacityAccounting(t *testing.T) {
	c := Homogeneous(2, 3) // capacity 6
	a, err := c.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.UsedCores() != 4 {
		t.Fatalf("UsedCores=%d, want 4", c.UsedCores())
	}
	if _, err := c.Allocate(3); err != ErrInsufficientCapacity {
		t.Fatalf("over-allocation err=%v, want ErrInsufficientCapacity", err)
	}
	// Failed allocation must not leak cores.
	if c.UsedCores() != 4 {
		t.Fatalf("UsedCores=%d after failed alloc, want 4", c.UsedCores())
	}
	b, err := c.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(a)
	if c.UsedCores() != 2 {
		t.Fatalf("UsedCores=%d after release, want 2", c.UsedCores())
	}
	c.Release(b)
	if c.UsedCores() != 0 {
		t.Fatalf("UsedCores=%d after full release, want 0", c.UsedCores())
	}
}

func TestAllocateRejectsNonPositive(t *testing.T) {
	c := Table2()
	if _, err := c.Allocate(0); err == nil {
		t.Error("Allocate(0) accepted")
	}
	if _, err := c.Allocate(-3); err == nil {
		t.Error("Allocate(-3) accepted")
	}
}

func TestExecutorIDsUnique(t *testing.T) {
	c := Table2()
	a, _ := c.Allocate(5)
	c.Release(a)
	b, _ := c.Allocate(5)
	seen := map[int]bool{}
	for _, e := range append(a, b...) {
		if seen[e.ID] {
			t.Fatalf("duplicate executor ID %d", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestParallelismHomogeneous(t *testing.T) {
	c := Homogeneous(4, 6)
	execs, _ := c.Allocate(8)
	if p := Parallelism(execs, 0); math.Abs(p-8) > 1e-12 {
		t.Fatalf("parallelism %v, want 8", p)
	}
	if p := Parallelism(execs, 1); math.Abs(p-8) > 1e-12 {
		t.Fatalf("SSD homogeneous io parallelism %v, want 8", p)
	}
}

func TestParallelismHeterogeneous(t *testing.T) {
	c := Table2()
	execs, err := c.Allocate(20)
	if err != nil {
		t.Fatal(err)
	}
	cpu := Parallelism(execs, 0)
	// 5 executors per worker: 5*(1.0 + 0.66 + 1.05 + 1.05) = 18.8
	if math.Abs(cpu-18.8) > 1e-9 {
		t.Fatalf("cpu parallelism %v, want 18.8", cpu)
	}
	io := Parallelism(execs, 1)
	if io >= cpu {
		t.Fatalf("io-bound parallelism %v should be below cpu %v on HDD-heavy cluster", io, cpu)
	}
}

func TestParallelismClampIOWeight(t *testing.T) {
	c := Table2()
	execs, _ := c.Allocate(4)
	lo := Parallelism(execs, -5)
	hi := Parallelism(execs, 7)
	if lo != Parallelism(execs, 0) || hi != Parallelism(execs, 1) {
		t.Error("ioWeight not clamped to [0,1]")
	}
}

func TestParallelismMonotoneInExecutors(t *testing.T) {
	// Property: adding executors never reduces parallelism.
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		c := Table2()
		execs, err := c.Allocate(n)
		if err != nil {
			return false
		}
		p1 := Parallelism(execs, 0.3)
		if n < c.TotalWorkerCores() {
			more, err := c.Allocate(1)
			if err != nil {
				return false
			}
			p2 := Parallelism(append(execs, more...), 0.3)
			return p2 > p1
		}
		return p1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReleaseIdempotentUnderflowGuard(t *testing.T) {
	c := Homogeneous(1, 2)
	a, _ := c.Allocate(2)
	c.Release(a)
	c.Release(a) // double release must not underflow
	if c.UsedCores() != 0 {
		t.Fatalf("UsedCores=%d", c.UsedCores())
	}
	if _, err := c.Allocate(2); err != nil {
		t.Fatalf("reallocation after double release failed: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if SSD.String() != "SSD" || HDD.String() != "HDD" {
		t.Error("DiskClass.String wrong")
	}
	if Master.String() != "Master" || Worker.String() != "Worker" {
		t.Error("Role.String wrong")
	}
}

func TestHeterogeneousPlacementPrefersFreeNodes(t *testing.T) {
	c := Table2()
	execs, _ := c.Allocate(8)
	perNode := map[int]int{}
	for _, e := range execs {
		perNode[e.Node.ID]++
	}
	for id, n := range perNode {
		if n != 2 {
			t.Fatalf("node %d has %d executors, want 2 each across 4 workers", id, n)
		}
	}
}
