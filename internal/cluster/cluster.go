// Package cluster models the heterogeneous compute cluster of the paper's
// testbed (Table 2): one master and four workers with different CPU
// generations and disk classes. Executors are allocated 1 core + 1 GB each
// (§6.2.1) and placed across workers; each executor inherits its host
// node's speed and disk factors, which feed the workload cost models.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// DiskClass distinguishes the storage technology of a node.
type DiskClass int

// Disk classes from Table 2 ("HHD" in the paper is a typo for HDD).
const (
	SSD DiskClass = iota
	HDD
)

// String implements fmt.Stringer.
func (d DiskClass) String() string {
	if d == SSD {
		return "SSD"
	}
	return "HDD"
}

// Role distinguishes the master from workers.
type Role int

// Node roles.
const (
	Master Role = iota
	Worker
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == Master {
		return "Master"
	}
	return "Worker"
}

// NodeSpec describes one cluster node.
type NodeSpec struct {
	ID       int
	CPUModel string
	GHz      float64
	Cores    int // cores available for executors
	MemoryMB int
	Disk     DiskClass
	Role     Role
	// SpeedFactor scales per-record compute throughput relative to the
	// reference node (1.0 = I5-9400 2.9GHz).
	SpeedFactor float64
	// DiskFactor scales I/O-bound throughput (1.0 = SSD).
	DiskFactor float64
}

// Executor is one allocated executor process: 1 core, 1 GB, pinned to a node
// for the lifetime of the allocation (the paper notes executor specs cannot
// change at runtime; only their count can).
type Executor struct {
	ID   int
	Node *NodeSpec
}

// Cluster is a set of nodes with executor-slot accounting and failure
// state: a failed node's cores are unavailable until it is restored.
type Cluster struct {
	nodes  []*NodeSpec
	used   map[int]int  // node ID -> cores in use
	failed map[int]bool // node ID -> currently failed
	nextID int
}

// ErrInsufficientCapacity is returned when an allocation cannot be placed.
var ErrInsufficientCapacity = errors.New("cluster: insufficient executor capacity")

// New returns a cluster over the given nodes. Node IDs must be unique.
func New(nodes []NodeSpec) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	c := &Cluster{used: make(map[int]int), failed: make(map[int]bool)}
	seen := make(map[int]bool)
	for i := range nodes {
		n := nodes[i]
		if seen[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
		if n.SpeedFactor <= 0 {
			return nil, fmt.Errorf("cluster: node %d has non-positive speed factor", n.ID)
		}
		if n.DiskFactor <= 0 {
			return nil, fmt.Errorf("cluster: node %d has non-positive disk factor", n.ID)
		}
		if n.Cores < 0 {
			return nil, fmt.Errorf("cluster: node %d has negative cores", n.ID)
		}
		c.nodes = append(c.nodes, &n)
	}
	return c, nil
}

// Table2 reproduces the paper's testbed (Table 2): five nodes, master
// I5-9400, workers I5-9400 / Xeon Bronze 3204 / 2× I5-10400, SSDs on the
// first two nodes and HDDs elsewhere. Worker core counts give the 20-executor
// headroom §6.2.1 assumes. Speed factors follow base clock ratios; disk
// factors penalise HDD nodes on I/O-heavy work.
func Table2() *Cluster {
	c, err := New([]NodeSpec{
		{ID: 1, CPUModel: "I5-9400 2.9GHz", GHz: 2.9, Cores: 0, MemoryMB: 16384, Disk: SSD, Role: Master, SpeedFactor: 1.0, DiskFactor: 1.0},
		{ID: 2, CPUModel: "I5-9400 2.9GHz", GHz: 2.9, Cores: 6, MemoryMB: 16384, Disk: SSD, Role: Worker, SpeedFactor: 1.0, DiskFactor: 1.0},
		{ID: 3, CPUModel: "Xeon Bronze 3204 1.9GHz", GHz: 1.9, Cores: 6, MemoryMB: 16384, Disk: HDD, Role: Worker, SpeedFactor: 0.66, DiskFactor: 0.85},
		{ID: 4, CPUModel: "I5-10400 2.9GHz", GHz: 2.9, Cores: 6, MemoryMB: 16384, Disk: HDD, Role: Worker, SpeedFactor: 1.05, DiskFactor: 0.85},
		{ID: 5, CPUModel: "I5-10400 2.9GHz", GHz: 2.9, Cores: 6, MemoryMB: 16384, Disk: HDD, Role: Worker, SpeedFactor: 1.05, DiskFactor: 0.85},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return c
}

// Homogeneous returns a cluster of n identical workers plus a master, for
// ablations isolating heterogeneity effects.
func Homogeneous(workers, coresEach int) *Cluster {
	specs := []NodeSpec{{ID: 1, CPUModel: "ref", GHz: 2.9, Role: Master, SpeedFactor: 1, DiskFactor: 1}}
	for i := 0; i < workers; i++ {
		specs = append(specs, NodeSpec{
			ID: i + 2, CPUModel: "ref", GHz: 2.9, Cores: coresEach, MemoryMB: coresEach * 1024,
			Disk: SSD, Role: Worker, SpeedFactor: 1, DiskFactor: 1,
		})
	}
	c, err := New(specs)
	if err != nil {
		panic(err)
	}
	return c
}

// Nodes returns the node specs in ID order.
func (c *Cluster) Nodes() []*NodeSpec {
	out := append([]*NodeSpec(nil), c.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Workers returns only live (non-failed) worker nodes, in ID order.
func (c *Cluster) Workers() []*NodeSpec {
	var out []*NodeSpec
	for _, n := range c.Nodes() {
		if n.Role == Worker && !c.failed[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// SetFailed marks a node failed or restored. Executors already allocated on
// a failed node keep their accounting until released; callers (the engine)
// are expected to release and reallocate. Unknown node IDs are an error.
func (c *Cluster) SetFailed(nodeID int, failed bool) error {
	for _, n := range c.nodes {
		if n.ID == nodeID {
			c.failed[nodeID] = failed
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown node %d", nodeID)
}

// Failed reports whether a node is currently marked failed.
func (c *Cluster) Failed(nodeID int) bool { return c.failed[nodeID] }

// TotalWorkerCores returns the total executor capacity.
func (c *Cluster) TotalWorkerCores() int {
	total := 0
	for _, n := range c.Workers() {
		total += n.Cores
	}
	return total
}

// FreeCores returns unallocated cores on live workers.
func (c *Cluster) FreeCores() int {
	free := 0
	for _, w := range c.Workers() {
		free += w.Cores - c.used[w.ID]
	}
	return free
}

// UsedCores returns the number of cores currently allocated.
func (c *Cluster) UsedCores() int {
	total := 0
	for _, v := range c.used {
		total += v
	}
	return total
}

// Allocate places n executors across workers, spreading to the node with
// the most free cores first (ties: lowest node ID) — mirroring Spark
// standalone's spread-out default. Returns ErrInsufficientCapacity if fewer
// than n cores are free, in which case nothing is allocated.
func (c *Cluster) Allocate(n int) ([]Executor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: allocation size %d must be positive", n)
	}
	workers := c.Workers()
	free := 0
	for _, w := range workers {
		free += w.Cores - c.used[w.ID]
	}
	if free < n {
		return nil, ErrInsufficientCapacity
	}
	execs := make([]Executor, 0, n)
	for len(execs) < n {
		// Pick worker with most free cores.
		var best *NodeSpec
		bestFree := -1
		for _, w := range workers {
			free := w.Cores - c.used[w.ID]
			if free > bestFree {
				best, bestFree = w, free
			}
		}
		if bestFree <= 0 {
			// Unreachable given the capacity precheck, but fail loudly.
			return nil, ErrInsufficientCapacity
		}
		c.used[best.ID]++
		execs = append(execs, Executor{ID: c.nextID, Node: best})
		c.nextID++
	}
	return execs, nil
}

// Release returns the executors' cores to the pool.
func (c *Cluster) Release(execs []Executor) {
	for _, e := range execs {
		if c.used[e.Node.ID] > 0 {
			c.used[e.Node.ID]--
		}
	}
}

// Parallelism returns the effective compute parallelism of an executor set:
// the sum of host speed factors, with disk factors blended in by ioWeight
// (0 = pure CPU work, 1 = fully I/O-bound). A homogeneous set of k reference
// executors has parallelism k.
func Parallelism(execs []Executor, ioWeight float64) float64 {
	if ioWeight < 0 {
		ioWeight = 0
	}
	if ioWeight > 1 {
		ioWeight = 1
	}
	p := 0.0
	for _, e := range execs {
		f := e.Node.SpeedFactor * ((1 - ioWeight) + ioWeight*e.Node.DiskFactor)
		p += f
	}
	return p
}
