// Package cluster models the heterogeneous compute cluster of the paper's
// testbed (Table 2): one master and four workers with different CPU
// generations and disk classes. Executors are allocated 1 core + 1 GB each
// (§6.2.1) and placed across workers; each executor inherits its host
// node's speed and disk factors, which feed the workload cost models.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// DiskClass distinguishes the storage technology of a node.
type DiskClass int

// Disk classes from Table 2 ("HHD" in the paper is a typo for HDD).
const (
	SSD DiskClass = iota
	HDD
)

// String implements fmt.Stringer.
func (d DiskClass) String() string {
	if d == SSD {
		return "SSD"
	}
	return "HDD"
}

// Role distinguishes the master from workers.
type Role int

// Node roles.
const (
	Master Role = iota
	Worker
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == Master {
		return "Master"
	}
	return "Worker"
}

// NodeSpec describes one cluster node.
type NodeSpec struct {
	ID       int
	CPUModel string
	GHz      float64
	Cores    int // cores available for executors
	MemoryMB int
	Disk     DiskClass
	Role     Role
	// SpeedFactor scales per-record compute throughput relative to the
	// reference node (1.0 = I5-9400 2.9GHz).
	SpeedFactor float64
	// DiskFactor scales I/O-bound throughput (1.0 = SSD).
	DiskFactor float64
}

// Executor is one allocated executor process: 1 core, 1 GB, pinned to a node
// for the lifetime of the allocation (the paper notes executor specs cannot
// change at runtime; only their count can).
type Executor struct {
	ID   int
	Node *NodeSpec
}

// Cluster is a set of nodes with executor-slot accounting and failure
// state: a failed node's cores are unavailable until it is restored.
//
// The cluster is sized for O(1000) nodes: the capacity queries the engine
// issues on every batch (FreeCores, FailedCount, TotalWorkerCores) are O(1)
// incremental counters, and the live-worker list is cached and invalidated
// only on failure transitions, never rebuilt per call.
type Cluster struct {
	nodes  []*NodeSpec
	sorted []*NodeSpec // nodes in ID order, built once (node set is immutable)
	byID   map[int]*NodeSpec
	used   map[int]int  // node ID -> cores in use
	failed map[int]bool // node ID -> currently failed
	nextID int

	liveWorkers []*NodeSpec // live (non-failed) workers in ID order; nil when stale
	freeCores   int         // unallocated cores across live workers
	liveCores   int         // total cores across live workers
	failedCount int         // nodes currently marked failed
}

// ErrInsufficientCapacity is returned when an allocation cannot be placed.
var ErrInsufficientCapacity = errors.New("cluster: insufficient executor capacity")

// New returns a cluster over the given nodes. Node IDs must be unique.
func New(nodes []NodeSpec) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	c := &Cluster{
		used:   make(map[int]int),
		failed: make(map[int]bool),
		byID:   make(map[int]*NodeSpec, len(nodes)),
	}
	for i := range nodes {
		n := nodes[i]
		if c.byID[n.ID] != nil {
			return nil, fmt.Errorf("cluster: duplicate node ID %d", n.ID)
		}
		if n.SpeedFactor <= 0 {
			return nil, fmt.Errorf("cluster: node %d has non-positive speed factor", n.ID)
		}
		if n.DiskFactor <= 0 {
			return nil, fmt.Errorf("cluster: node %d has non-positive disk factor", n.ID)
		}
		if n.Cores < 0 {
			return nil, fmt.Errorf("cluster: node %d has negative cores", n.ID)
		}
		c.nodes = append(c.nodes, &n)
		c.byID[n.ID] = &n
		if n.Role == Worker {
			c.freeCores += n.Cores
			c.liveCores += n.Cores
		}
	}
	c.sorted = append([]*NodeSpec(nil), c.nodes...)
	sort.Slice(c.sorted, func(i, j int) bool { return c.sorted[i].ID < c.sorted[j].ID })
	return c, nil
}

// Table2 reproduces the paper's testbed (Table 2): five nodes, master
// I5-9400, workers I5-9400 / Xeon Bronze 3204 / 2× I5-10400, SSDs on the
// first two nodes and HDDs elsewhere. Worker core counts give the 20-executor
// headroom §6.2.1 assumes. Speed factors follow base clock ratios; disk
// factors penalise HDD nodes on I/O-heavy work.
func Table2() *Cluster {
	c, err := New([]NodeSpec{
		{ID: 1, CPUModel: "I5-9400 2.9GHz", GHz: 2.9, Cores: 0, MemoryMB: 16384, Disk: SSD, Role: Master, SpeedFactor: 1.0, DiskFactor: 1.0},
		{ID: 2, CPUModel: "I5-9400 2.9GHz", GHz: 2.9, Cores: 6, MemoryMB: 16384, Disk: SSD, Role: Worker, SpeedFactor: 1.0, DiskFactor: 1.0},
		{ID: 3, CPUModel: "Xeon Bronze 3204 1.9GHz", GHz: 1.9, Cores: 6, MemoryMB: 16384, Disk: HDD, Role: Worker, SpeedFactor: 0.66, DiskFactor: 0.85},
		{ID: 4, CPUModel: "I5-10400 2.9GHz", GHz: 2.9, Cores: 6, MemoryMB: 16384, Disk: HDD, Role: Worker, SpeedFactor: 1.05, DiskFactor: 0.85},
		{ID: 5, CPUModel: "I5-10400 2.9GHz", GHz: 2.9, Cores: 6, MemoryMB: 16384, Disk: HDD, Role: Worker, SpeedFactor: 1.05, DiskFactor: 0.85},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return c
}

// Homogeneous returns a cluster of n identical workers plus a master, for
// ablations isolating heterogeneity effects.
func Homogeneous(workers, coresEach int) *Cluster {
	specs := []NodeSpec{{ID: 1, CPUModel: "ref", GHz: 2.9, Role: Master, SpeedFactor: 1, DiskFactor: 1}}
	for i := 0; i < workers; i++ {
		specs = append(specs, NodeSpec{
			ID: i + 2, CPUModel: "ref", GHz: 2.9, Cores: coresEach, MemoryMB: coresEach * 1024,
			Disk: SSD, Role: Worker, SpeedFactor: 1, DiskFactor: 1,
		})
	}
	c, err := New(specs)
	if err != nil {
		panic(err)
	}
	return c
}

// Nodes returns the node specs in ID order. The returned slice is a copy;
// the specs themselves are shared.
func (c *Cluster) Nodes() []*NodeSpec {
	return append([]*NodeSpec(nil), c.sorted...)
}

// Node returns the spec of one node, or nil for an unknown ID.
func (c *Cluster) Node(nodeID int) *NodeSpec { return c.byID[nodeID] }

// Workers returns only live (non-failed) worker nodes, in ID order. The
// returned slice is a copy; hot paths use the internal cache directly.
func (c *Cluster) Workers() []*NodeSpec {
	return append([]*NodeSpec(nil), c.live()...)
}

// live returns the cached live-worker list, rebuilding it only after a
// failure transition invalidated it.
//nostop:hotpath
func (c *Cluster) live() []*NodeSpec {
	if c.liveWorkers == nil {
		//nostop:allow hotalloc -- rebuilt once per failure transition, not per call
		out := make([]*NodeSpec, 0, len(c.sorted))
		for _, n := range c.sorted {
			if n.Role == Worker && !c.failed[n.ID] {
				out = append(out, n) //nostop:allow hotalloc -- capacity preallocated above; rebuilt only per failure transition
			}
		}
		c.liveWorkers = out
	}
	return c.liveWorkers
}

// SetFailed marks a node failed or restored. Executors already allocated on
// a failed node keep their accounting until released; callers (the engine)
// are expected to release and reallocate. Unknown node IDs are an error.
func (c *Cluster) SetFailed(nodeID int, failed bool) error {
	n := c.byID[nodeID]
	if n == nil {
		return fmt.Errorf("cluster: unknown node %d", nodeID)
	}
	if c.failed[nodeID] == failed {
		return nil // no transition; caches stay valid
	}
	c.failed[nodeID] = failed
	if failed {
		c.failedCount++
	} else {
		c.failedCount--
	}
	if n.Role == Worker {
		delta := 1
		if failed {
			delta = -1
		}
		c.liveCores += delta * n.Cores
		c.freeCores += delta * (n.Cores - c.used[nodeID])
		c.liveWorkers = nil
	}
	return nil
}

// Failed reports whether a node is currently marked failed.
func (c *Cluster) Failed(nodeID int) bool { return c.failed[nodeID] }

// FailedCount returns how many nodes are currently marked failed — the O(1)
// any-node-down check the engine's per-batch fault probe relies on.
func (c *Cluster) FailedCount() int { return c.failedCount }

// TotalWorkerCores returns the total executor capacity on live workers.
func (c *Cluster) TotalWorkerCores() int { return c.liveCores }

// FreeCores returns unallocated cores on live workers.
func (c *Cluster) FreeCores() int { return c.freeCores }

// UsedCores returns the number of cores currently allocated.
func (c *Cluster) UsedCores() int {
	total := 0
	for _, v := range c.used {
		total += v
	}
	return total
}

// Allocate places n executors across workers, spreading to the node with
// the most free cores first (ties: lowest node ID) — mirroring Spark
// standalone's spread-out default. Returns ErrInsufficientCapacity if fewer
// than n cores are free, in which case nothing is allocated.
func (c *Cluster) Allocate(n int) ([]Executor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: allocation size %d must be positive", n)
	}
	if c.freeCores < n {
		return nil, ErrInsufficientCapacity
	}
	workers := c.live()
	execs := make([]Executor, 0, n)
	for len(execs) < n {
		// Pick worker with most free cores (ties: lowest node ID, since the
		// cached list is in ID order).
		var best *NodeSpec
		bestFree := -1
		for _, w := range workers {
			free := w.Cores - c.used[w.ID]
			if free > bestFree {
				best, bestFree = w, free
			}
		}
		if bestFree <= 0 {
			// Unreachable given the capacity precheck, but fail loudly.
			return nil, ErrInsufficientCapacity
		}
		c.used[best.ID]++
		c.freeCores--
		execs = append(execs, Executor{ID: c.nextID, Node: best})
		c.nextID++
	}
	return execs, nil
}

// Release returns the executors' cores to the pool. Cores on a currently
// failed node return to its accounting but not to the free pool — they
// become free only when the node is restored.
func (c *Cluster) Release(execs []Executor) {
	for _, e := range execs {
		if c.used[e.Node.ID] > 0 {
			c.used[e.Node.ID]--
			if e.Node.Role == Worker && !c.failed[e.Node.ID] {
				c.freeCores++
			}
		}
	}
}

// Parallelism returns the effective compute parallelism of an executor set:
// the sum of host speed factors, with disk factors blended in by ioWeight
// (0 = pure CPU work, 1 = fully I/O-bound). A homogeneous set of k reference
// executors has parallelism k.
func Parallelism(execs []Executor, ioWeight float64) float64 {
	if ioWeight < 0 {
		ioWeight = 0
	}
	if ioWeight > 1 {
		ioWeight = 1
	}
	p := 0.0
	for _, e := range execs {
		f := e.Node.SpeedFactor * ((1 - ioWeight) + ioWeight*e.Node.DiskFactor)
		p += f
	}
	return p
}
