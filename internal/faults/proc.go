package faults

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// ProcKind enumerates process- and network-level chaos actions. Where the
// batch-level Kinds above perturb the engine's internal cluster model, these
// perturb the service deployment itself: whole peers die and restart, and
// the RPC links between them refuse, drop, or delay traffic.
type ProcKind int

// Process fault kinds.
const (
	// PeerKill stops a peer process for the window and restarts it (as a
	// new incarnation) when the window lifts, exercising offset replay and
	// degraded-mode entry/exit on its callers.
	PeerKill ProcKind = iota
	// LinkRefuse makes every request on one directed link fail
	// immediately with a connection-refused error for the window.
	LinkRefuse
	// LinkDrop makes each request on one directed link vanish without a
	// response with probability Prob, exercising deadline timeouts.
	LinkDrop
	// LinkDelay adds a fixed latency to every request on one directed
	// link, exercising deadline and backoff interplay.
	LinkDelay
)

// String implements fmt.Stringer.
func (k ProcKind) String() string {
	switch k {
	case PeerKill:
		return "peer-kill"
	case LinkRefuse:
		return "link-refuse"
	case LinkDrop:
		return "link-drop"
	case LinkDelay:
		return "link-delay"
	default:
		return fmt.Sprintf("prockind(%d)", int(k))
	}
}

// ProcFault is one scheduled process/network fault window [At, At+Duration).
type ProcFault struct {
	Kind     ProcKind
	At       sim.Time
	Duration time.Duration
	// Peer targets PeerKill faults.
	Peer string
	// From/To name the directed link for LinkRefuse, LinkDrop, LinkDelay.
	From, To string
	// Prob is the LinkDrop per-request drop probability in (0, 1].
	Prob float64
	// Delay is the LinkDelay added latency (> 0).
	Delay time.Duration
}

// End returns the instant the fault lifts.
func (f ProcFault) End() sim.Time { return f.At + sim.Time(f.Duration) }

// String implements fmt.Stringer.
func (f ProcFault) String() string {
	switch f.Kind {
	case PeerKill:
		return fmt.Sprintf("%v+%v peer-kill %s", f.At, f.Duration, f.Peer)
	case LinkRefuse:
		return fmt.Sprintf("%v+%v link-refuse %s->%s", f.At, f.Duration, f.From, f.To)
	case LinkDrop:
		return fmt.Sprintf("%v+%v link-drop %s->%s p=%.2f", f.At, f.Duration, f.From, f.To, f.Prob)
	case LinkDelay:
		return fmt.Sprintf("%v+%v link-delay %s->%s +%v", f.At, f.Duration, f.From, f.To, f.Delay)
	default:
		return fmt.Sprintf("%v+%v %v", f.At, f.Duration, f.Kind)
	}
}

// ProcPlan is a set of process fault windows. Windows on the same peer, or
// any two link faults on the same directed link, must not overlap: the
// injector applies and clears absolute state (a restart or a link-fault
// reset), so a second overlapping window would be clobbered by the first
// one's recovery.
type ProcPlan []ProcFault

// Validate checks durations, parameters, and same-target overlap.
func (p ProcPlan) Validate() error {
	for i, f := range p {
		if f.At < 0 {
			return fmt.Errorf("faults: proc fault %d starts before time zero", i)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("faults: proc fault %d has non-positive duration", i)
		}
		switch f.Kind {
		case PeerKill:
			if f.Peer == "" {
				return fmt.Errorf("faults: peer-kill fault %d names no peer", i)
			}
		case LinkRefuse, LinkDrop, LinkDelay:
			if f.From == "" || f.To == "" {
				return fmt.Errorf("faults: link fault %d names no endpoints", i)
			}
			if f.From == f.To {
				return fmt.Errorf("faults: link fault %d targets a self-link %s->%s", i, f.From, f.To)
			}
			if f.Kind == LinkDrop && (f.Prob <= 0 || f.Prob > 1) {
				return fmt.Errorf("faults: link-drop fault %d needs prob in (0,1], got %v", i, f.Prob)
			}
			if f.Kind == LinkDelay && f.Delay <= 0 {
				return fmt.Errorf("faults: link-delay fault %d needs positive delay", i)
			}
		default:
			return fmt.Errorf("faults: proc fault %d has unknown kind %d", i, int(f.Kind))
		}
		for j := i + 1; j < len(p); j++ {
			g := p[j]
			if !sameProcTarget(f, g) {
				continue
			}
			if f.At < g.End() && g.At < f.End() {
				return fmt.Errorf("faults: proc faults %d and %d overlap on the same target (%v / %v)", i, j, f, g)
			}
		}
	}
	return nil
}

// sameProcTarget reports whether two proc faults manipulate the same piece
// of deployment state. Any two link faults on the same directed link
// conflict regardless of kind: a link carries one fault descriptor, and
// clearing it clears refusal, drop, and delay together.
func sameProcTarget(a, b ProcFault) bool {
	aLink, bLink := a.Kind != PeerKill, b.Kind != PeerKill
	if aLink != bLink {
		return false
	}
	if aLink {
		return a.From == b.From && a.To == b.To
	}
	return a.Peer == b.Peer
}

// Start returns when the earliest window opens (zero for an empty plan).
func (p ProcPlan) Start() sim.Time {
	var start sim.Time
	for i, f := range p {
		if i == 0 || f.At < start {
			start = f.At
		}
	}
	return start
}

// End returns when the last window lifts (zero for an empty plan).
func (p ProcPlan) End() sim.Time {
	var end sim.Time
	for _, f := range p {
		if f.End() > end {
			end = f.End()
		}
	}
	return end
}

// sorted returns the plan ordered by start time (stable for equal starts).
func (p ProcPlan) sorted() ProcPlan {
	out := append(ProcPlan(nil), p...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ProcTarget is the deployment surface a ProcInjector drives. Its methods
// are exactly the chaos controls service.Cluster exposes, so a cluster is a
// ProcTarget without adapters; any fake satisfying it works for tests.
type ProcTarget interface {
	KillPeer(name string) error
	RestartPeer(name string) error
	SetLinkFault(from, to string, refuse bool, dropProb float64, delay time.Duration) error
	ClearLinkFault(from, to string) error
}

// ProcSchedule abstracts when chaos actions run, keeping this package free
// of wall-clock reads: At schedules fn at absolute plan instant t, and Now
// reports the current plan instant for the timeline. In sim mode wrap the
// shared kernel with ClockSchedule; a wall-mode supervisor maps plan time
// onto real timers at its own speedup.
type ProcSchedule interface {
	At(t sim.Time, fn func())
	Now() sim.Time
}

// ClockSchedule adapts a sim.Clock to ProcSchedule.
type ClockSchedule struct{ Clock *sim.Clock }

// At implements ProcSchedule.
func (s ClockSchedule) At(t sim.Time, fn func()) { s.Clock.At(t, fn) }

// Now implements ProcSchedule.
func (s ClockSchedule) Now() sim.Time { return s.Clock.Now() }

// TidProcChaos is the fault-injector trace lane carrying one span per
// applied process fault window.
const TidProcChaos = 2

// ProcInjector executes a ProcPlan against a deployment and records the
// applied timeline, mirroring Injector's lifecycle: AttachProc schedules
// every window up front, Observe wires optional sinks, and the timeline
// String is byte-stable across equal-seed runs.
type ProcInjector struct {
	target   ProcTarget
	sched    ProcSchedule
	plan     ProcPlan
	timeline []Entry
	active   int
	injected int

	reg         *metrics.Registry
	tr          *tracing.Tracer
	activeGauge *metrics.Gauge
	injectFails *metrics.Counter
}

// AttachProc validates the plan and schedules every fault window on the
// given schedule. Windows in the past relative to the schedule are rejected
// by the kernel's causality check in sim mode.
func AttachProc(target ProcTarget, sched ProcSchedule, plan ProcPlan) (*ProcInjector, error) {
	if target == nil {
		return nil, errors.New("faults: nil proc target")
	}
	if sched == nil {
		return nil, errors.New("faults: nil proc schedule")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &ProcInjector{target: target, sched: sched, plan: plan.sorted()}
	for _, f := range inj.plan {
		f := f
		inj.sched.At(f.At, func() { inj.start(f) })
		inj.sched.At(f.End(), func() { inj.end(f) })
	}
	return inj, nil
}

// Observe attaches metric and trace sinks: a per-kind injected counter, an
// active-window gauge, and one trace span per applied window. Nil arguments
// disable the corresponding sink; in wall mode pass a nil tracer unless the
// caller serializes access itself.
func (inj *ProcInjector) Observe(reg *metrics.Registry, tr *tracing.Tracer) {
	inj.reg = reg
	inj.tr = tr
	if reg != nil {
		inj.activeGauge = reg.Gauge("nostop_proc_faults_active", "Currently-open process fault windows")
		inj.injectFails = reg.Counter("nostop_proc_fault_inject_failures_total", "Process fault applications rejected by the deployment")
	}
	tr.NameProcess(engine.PidFaults, "fault-injector")
	tr.NameThread(engine.PidFaults, TidProcChaos, "proc-chaos")
}

// countInjected bumps the per-kind injected counter.
func (inj *ProcInjector) countInjected(k ProcKind) {
	if inj.reg == nil {
		return
	}
	inj.reg.Counter("nostop_proc_faults_injected_total",
		"Process fault windows applied, by kind", metrics.L("kind", k.String())).Inc()
}

// apply maps a window edge onto the target: onset (up=false is the fault
// taking hold) or recovery (up=true).
func (inj *ProcInjector) apply(f ProcFault, recover bool) error {
	switch f.Kind {
	case PeerKill:
		if recover {
			return inj.target.RestartPeer(f.Peer)
		}
		return inj.target.KillPeer(f.Peer)
	case LinkRefuse, LinkDrop, LinkDelay:
		if recover {
			return inj.target.ClearLinkFault(f.From, f.To)
		}
		switch f.Kind {
		case LinkRefuse:
			return inj.target.SetLinkFault(f.From, f.To, true, 0, 0)
		case LinkDrop:
			return inj.target.SetLinkFault(f.From, f.To, false, f.Prob, 0)
		default:
			return inj.target.SetLinkFault(f.From, f.To, false, 0, f.Delay)
		}
	}
	return fmt.Errorf("faults: unknown proc kind %d", int(f.Kind))
}

// start applies one fault window's onset.
func (inj *ProcInjector) start(f ProcFault) {
	if err := inj.apply(f, false); err != nil {
		inj.note("inject %v FAILED: %v", f, err)
		inj.injectFails.Inc()
		inj.tr.Instant(engine.PidFaults, TidProcChaos, "faults", "inject-failed",
			tracing.Args{"fault": f.String(), "error": err.Error()})
		return
	}
	inj.active++
	inj.injected++
	inj.countInjected(f.Kind)
	inj.activeGauge.Set(float64(inj.active))
	inj.note("inject %v", f)
}

// end reverts one fault window.
func (inj *ProcInjector) end(f ProcFault) {
	if err := inj.apply(f, true); err != nil {
		inj.note("recover %v FAILED: %v", f, err)
		inj.tr.Instant(engine.PidFaults, TidProcChaos, "faults", "recover-failed",
			tracing.Args{"fault": f.String(), "error": err.Error()})
		return
	}
	if inj.active > 0 {
		inj.active--
	}
	inj.activeGauge.Set(float64(inj.active))
	inj.note("recover %v", f)
	//nostop:allow obscontract -- span name drawn from the closed fault-kind enum; bounded cardinality
	inj.tr.Span(engine.PidFaults, TidProcChaos, "faults", f.Kind.String(),
		f.At, f.Duration, tracing.Args{"fault": f.String()})
}

// note appends a timeline entry.
func (inj *ProcInjector) note(format string, args ...any) {
	inj.timeline = append(inj.timeline, Entry{At: inj.sched.Now(), Msg: fmt.Sprintf(format, args...)})
}

// Plan returns the injector's (sorted) plan.
func (inj *ProcInjector) Plan() ProcPlan { return inj.plan }

// Injected returns how many fault windows have been applied so far.
func (inj *ProcInjector) Injected() int { return inj.injected }

// Active returns the number of currently-open fault windows.
func (inj *ProcInjector) Active() int { return inj.active }

// Timeline returns the applied fault actions in order.
func (inj *ProcInjector) Timeline() []Entry { return inj.timeline }

// String renders the timeline, one action per line.
func (inj *ProcInjector) String() string {
	var b []byte
	for _, e := range inj.timeline {
		b = fmt.Appendf(b, "%v %s\n", e.At, e.Msg)
	}
	return string(b)
}

// ProcChaosOptions scale the seeded process-chaos generator. Zero values
// take the documented defaults.
type ProcChaosOptions struct {
	// Horizon bounds fault starts; windows are clipped to end by it.
	// Required (must be positive).
	Horizon time.Duration
	// Warmup is chaos-free time at the start of the run. 0 means
	// Horizon/4.
	Warmup time.Duration
	// MeanGap is the mean idle gap between one window lifting and the
	// next opening (exponentially distributed). 0 means Horizon/8.
	MeanGap time.Duration
	// MinDuration/MaxDuration bound each window. Zeros mean 15s and 45s —
	// long enough to trip breakers and degraded mode, short enough that
	// recovery is observable before the horizon.
	MinDuration, MaxDuration time.Duration
	// Peers are the kill candidates. Required for PeerKill windows to be
	// drawn; with one peer or fewer no link faults are drawn either.
	Peers []string
	// MaxDrop is the worst link-drop probability drawn. 0 means 0.9.
	MaxDrop float64
	// MaxDelay is the worst link delay drawn. 0 means 500ms.
	MaxDelay time.Duration
}

func (o ProcChaosOptions) withDefaults() ProcChaosOptions {
	if o.Warmup == 0 {
		o.Warmup = o.Horizon / 4
	}
	if o.MeanGap == 0 {
		o.MeanGap = o.Horizon / 8
	}
	if o.MinDuration == 0 {
		o.MinDuration = 15 * time.Second
	}
	if o.MaxDuration == 0 {
		o.MaxDuration = 45 * time.Second
	}
	if o.MaxDuration < o.MinDuration {
		o.MaxDuration = o.MinDuration
	}
	if o.MaxDrop == 0 {
		o.MaxDrop = 0.9
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 500 * time.Millisecond
	}
	return o
}

// ProcChaos generates a sequential random process fault plan: windows never
// overlap, so every recovery is observable before the next fault lands, and
// the plan always validates. All randomness comes from the given stream —
// equal seeds yield byte-identical plans.
func ProcChaos(seed *rng.Stream, opts ProcChaosOptions) ProcPlan {
	if opts.Horizon <= 0 || len(opts.Peers) == 0 {
		return nil
	}
	o := opts.withDefaults()
	r := seed.Split("proc-chaos")
	var plan ProcPlan
	t := sim.Time(o.Warmup)
	for {
		t += sim.Time(r.Exp(o.MeanGap.Seconds()) * float64(time.Second))
		if t >= sim.Time(o.Horizon) {
			break
		}
		dur := time.Duration(r.Uniform(o.MinDuration.Seconds(), o.MaxDuration.Seconds()) * float64(time.Second))
		if end := sim.Time(o.Horizon); t+sim.Time(dur) > end {
			dur = time.Duration(end - t)
			if dur < o.MinDuration/2 {
				break
			}
		}
		f := ProcFault{At: t, Duration: dur}
		kinds := 1
		if len(o.Peers) > 1 {
			kinds = 4
		}
		f.Kind = ProcKind(r.Intn(kinds))
		switch f.Kind {
		case PeerKill:
			f.Peer = o.Peers[r.Intn(len(o.Peers))]
		case LinkRefuse, LinkDrop, LinkDelay:
			i := r.Intn(len(o.Peers))
			j := r.Intn(len(o.Peers) - 1)
			if j >= i {
				j++
			}
			f.From, f.To = o.Peers[i], o.Peers[j]
			switch f.Kind {
			case LinkDrop:
				f.Prob = r.Uniform(0.3, o.MaxDrop)
			case LinkDelay:
				f.Delay = time.Duration(r.Uniform(0.05, o.MaxDelay.Seconds()) * float64(time.Second))
			}
		}
		plan = append(plan, f)
		t = f.End()
	}
	return plan
}
