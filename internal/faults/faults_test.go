package faults

import (
	"fmt"
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func newEngine(t *testing.T, seedN uint64) (*sim.Clock, *engine.Engine) {
	t.Helper()
	clock := sim.NewClock()
	e, err := engine.New(clock, engine.Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
		Seed:     rng.New(seedN),
		Initial:  engine.Config{BatchInterval: 5 * time.Second, Executors: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return clock, e
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", nil, true},
		{"good mix", Plan{
			{Kind: NodeCrash, At: sim.Time(sec(10)), Duration: time.Minute, NodeID: 3},
			{Kind: Straggler, At: sim.Time(sec(10)), Duration: time.Minute, NodeID: 4, Factor: 3},
			{Kind: TaskFailures, At: sim.Time(sec(100)), Duration: time.Minute, Prob: 0.3},
			{Kind: PartitionOutage, At: sim.Time(sec(10)), Duration: time.Minute, Partition: 2},
			{Kind: IngestSpike, At: sim.Time(sec(200)), Duration: time.Minute, Factor: 2},
		}, true},
		{"zero duration", Plan{{Kind: NodeCrash, Duration: 0, NodeID: 2}}, false},
		{"bad straggle factor", Plan{{Kind: Straggler, Duration: time.Minute, NodeID: 2, Factor: 1}}, false},
		{"bad probability", Plan{{Kind: TaskFailures, Duration: time.Minute, Prob: 1.5}}, false},
		{"negative partition", Plan{{Kind: PartitionOutage, Duration: time.Minute, Partition: -1}}, false},
		{"same-target overlap", Plan{
			{Kind: NodeCrash, At: sim.Time(sec(10)), Duration: time.Minute, NodeID: 3},
			{Kind: NodeCrash, At: sim.Time(sec(30)), Duration: time.Minute, NodeID: 3},
		}, false},
		{"global-knob overlap", Plan{
			{Kind: IngestSpike, At: sim.Time(sec(10)), Duration: time.Minute, Factor: 2},
			{Kind: IngestSpike, At: sim.Time(sec(30)), Duration: time.Minute, Factor: 3},
		}, false},
		{"distinct targets may overlap", Plan{
			{Kind: NodeCrash, At: sim.Time(sec(10)), Duration: time.Minute, NodeID: 3},
			{Kind: NodeCrash, At: sim.Time(sec(30)), Duration: time.Minute, NodeID: 4},
		}, true},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestInjectorAppliesAndReverts(t *testing.T) {
	clock, e := newEngine(t, 7)
	plan := Plan{
		{Kind: NodeCrash, At: sim.Time(sec(20)), Duration: 30 * time.Second, NodeID: 3},
		{Kind: TaskFailures, At: sim.Time(sec(70)), Duration: 30 * time.Second, Prob: 0.9},
		{Kind: PartitionOutage, At: sim.Time(sec(120)), Duration: 30 * time.Second, Partition: 1},
	}
	inj, err := Attach(e, plan)
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(40)))
	if e.LiveExecutors() >= 8 && e.FaultInEffect() == false {
		t.Fatal("node crash window not applied")
	}
	if inj.Active() != 1 {
		t.Fatalf("active %d during crash window, want 1", inj.Active())
	}
	clock.RunUntil(sim.Time(sec(60)))
	if inj.Active() != 0 {
		t.Fatalf("active %d after crash window, want 0", inj.Active())
	}
	if e.FaultInEffect() {
		t.Fatal("fault flag stuck after recovery")
	}
	clock.RunUntil(sim.Time(sec(200)))
	if inj.Injected() != len(plan) {
		t.Fatalf("injected %d windows, want %d", inj.Injected(), len(plan))
	}
	if got := len(inj.Timeline()); got != 2*len(plan) {
		t.Fatalf("timeline has %d entries, want %d", got, 2*len(plan))
	}
	// Batches inside fault windows are flagged.
	var flagged int
	for _, b := range e.History() {
		if b.FaultActive {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("no batch flagged FaultActive across three fault windows")
	}
}

func TestAttachRejectsBadPlan(t *testing.T) {
	_, e := newEngine(t, 7)
	if _, err := Attach(e, Plan{{Kind: Straggler, Duration: time.Minute, NodeID: 2, Factor: 0.5}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if _, err := Attach(nil, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestChaosPlanValidatesAndScales(t *testing.T) {
	seed := rng.New(42)
	plan := Chaos(seed.Split("a"), ChaosOptions{Horizon: time.Hour})
	if len(plan) == 0 {
		t.Fatal("chaos generated an empty plan over an hour")
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("chaos plan invalid: %v", err)
	}
	for _, f := range plan {
		if f.At < sim.Time(15*time.Minute) {
			t.Fatalf("fault %v starts inside the warmup quarter", f)
		}
		if f.End() > sim.Time(time.Hour) {
			t.Fatalf("fault %v runs past the horizon", f)
		}
	}
	if Chaos(seed.Split("b"), ChaosOptions{}) != nil {
		t.Fatal("zero horizon should generate no plan")
	}
}

// TestChaosDeterminism is the reproducibility gate: identical seeds must
// produce byte-identical fault timelines and batch histories.
func TestChaosDeterminism(t *testing.T) {
	run := func() (string, string) {
		clock, e := newEngine(t, 99)
		plan := Chaos(rng.New(123).Split("chaos"), ChaosOptions{Horizon: 30 * time.Minute})
		inj, err := Attach(e, plan)
		if err != nil {
			t.Fatal(err)
		}
		clock.RunUntil(sim.Time(30 * time.Minute))
		return inj.String(), fmt.Sprintf("%+v", e.History())
	}
	tl1, hist1 := run()
	tl2, hist2 := run()
	if tl1 != tl2 {
		t.Fatalf("fault timelines differ across identical seeds:\n--- run 1 ---\n%s--- run 2 ---\n%s", tl1, tl2)
	}
	if hist1 != hist2 {
		t.Fatal("batch histories differ across identical seeds")
	}
	if tl1 == "" {
		t.Fatal("chaos run injected nothing")
	}
	// A different seed must actually change the plan.
	other := Chaos(rng.New(124).Split("chaos"), ChaosOptions{Horizon: 30 * time.Minute})
	this := Chaos(rng.New(123).Split("chaos"), ChaosOptions{Horizon: 30 * time.Minute})
	if fmt.Sprint(other) == fmt.Sprint(this) {
		t.Fatal("different seeds produced identical chaos plans")
	}
}
