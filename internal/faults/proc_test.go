package faults

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// fakeTarget records every chaos call with its timestamp and can be told to
// reject operations on unknown peers.
type fakeTarget struct {
	clock *sim.Clock
	peers map[string]bool
	ops   []string
}

func newFakeTarget(clock *sim.Clock, peers ...string) *fakeTarget {
	t := &fakeTarget{clock: clock, peers: map[string]bool{}}
	for _, p := range peers {
		t.peers[p] = true
	}
	return t
}

func (t *fakeTarget) op(format string, args ...any) {
	t.ops = append(t.ops, fmt.Sprintf("%v %s", t.clock.Now(), fmt.Sprintf(format, args...)))
}

func (t *fakeTarget) KillPeer(name string) error {
	if !t.peers[name] {
		return fmt.Errorf("no such peer %q", name)
	}
	t.op("kill %s", name)
	return nil
}

func (t *fakeTarget) RestartPeer(name string) error {
	if !t.peers[name] {
		return fmt.Errorf("no such peer %q", name)
	}
	t.op("restart %s", name)
	return nil
}

func (t *fakeTarget) SetLinkFault(from, to string, refuse bool, dropProb float64, delay time.Duration) error {
	t.op("fault %s->%s refuse=%v drop=%.2f delay=%v", from, to, refuse, dropProb, delay)
	return nil
}

func (t *fakeTarget) ClearLinkFault(from, to string) error {
	t.op("clear %s->%s", from, to)
	return nil
}

func TestProcPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan ProcPlan
		ok   bool
	}{
		{"empty", nil, true},
		{"good mix", ProcPlan{
			{Kind: PeerKill, At: sim.Time(sec(10)), Duration: 30 * time.Second, Peer: "broker"},
			{Kind: LinkRefuse, At: sim.Time(sec(10)), Duration: 30 * time.Second, From: "controller", To: "engine"},
			{Kind: LinkDrop, At: sim.Time(sec(60)), Duration: 30 * time.Second, From: "engine", To: "broker", Prob: 0.5},
			{Kind: LinkDelay, At: sim.Time(sec(120)), Duration: 30 * time.Second, From: "engine", To: "broker", Delay: 100 * time.Millisecond},
		}, true},
		{"zero duration", ProcPlan{{Kind: PeerKill, Peer: "broker"}}, false},
		{"nameless peer", ProcPlan{{Kind: PeerKill, Duration: time.Minute}}, false},
		{"self link", ProcPlan{{Kind: LinkRefuse, Duration: time.Minute, From: "a", To: "a"}}, false},
		{"bad drop prob", ProcPlan{{Kind: LinkDrop, Duration: time.Minute, From: "a", To: "b", Prob: 1.5}}, false},
		{"missing delay", ProcPlan{{Kind: LinkDelay, Duration: time.Minute, From: "a", To: "b"}}, false},
		{"same-peer kill overlap", ProcPlan{
			{Kind: PeerKill, At: sim.Time(sec(10)), Duration: time.Minute, Peer: "broker"},
			{Kind: PeerKill, At: sim.Time(sec(30)), Duration: time.Minute, Peer: "broker"},
		}, false},
		// A link carries one fault descriptor, so even different-kind link
		// faults on the same directed link conflict.
		{"cross-kind same-link overlap", ProcPlan{
			{Kind: LinkRefuse, At: sim.Time(sec(10)), Duration: time.Minute, From: "a", To: "b"},
			{Kind: LinkDrop, At: sim.Time(sec(30)), Duration: time.Minute, From: "a", To: "b", Prob: 0.5},
		}, false},
		{"opposite directions may overlap", ProcPlan{
			{Kind: LinkRefuse, At: sim.Time(sec(10)), Duration: time.Minute, From: "a", To: "b"},
			{Kind: LinkRefuse, At: sim.Time(sec(30)), Duration: time.Minute, From: "b", To: "a"},
		}, true},
		{"kill and link on same peer may overlap", ProcPlan{
			{Kind: PeerKill, At: sim.Time(sec(10)), Duration: time.Minute, Peer: "broker"},
			{Kind: LinkDrop, At: sim.Time(sec(30)), Duration: time.Minute, From: "engine", To: "broker", Prob: 0.5},
		}, true},
		// Half-open windows: one ending exactly when the next starts is
		// back-to-back, not overlapping.
		{"touching windows", ProcPlan{
			{Kind: PeerKill, At: sim.Time(sec(10)), Duration: 20 * time.Second, Peer: "broker"},
			{Kind: PeerKill, At: sim.Time(sec(30)), Duration: 20 * time.Second, Peer: "broker"},
		}, true},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestProcInjectorDrivesTarget(t *testing.T) {
	clock := sim.NewClock()
	target := newFakeTarget(clock, "broker", "engine", "controller")
	plan := ProcPlan{
		{Kind: PeerKill, At: sim.Time(sec(10)), Duration: 20 * time.Second, Peer: "broker"},
		{Kind: LinkDrop, At: sim.Time(sec(40)), Duration: 10 * time.Second, From: "controller", To: "engine", Prob: 0.5},
	}
	inj, err := AttachProc(target, ClockSchedule{Clock: clock}, plan)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	tr := tracing.New(clock, 1<<10)
	inj.Observe(reg, tr)

	clock.RunUntil(sim.Time(sec(15)))
	if inj.Active() != 1 {
		t.Fatalf("active %d during kill window, want 1", inj.Active())
	}
	clock.RunUntil(sim.Time(sec(60)))
	if inj.Active() != 0 || inj.Injected() != len(plan) {
		t.Fatalf("active=%d injected=%d after plan, want 0/%d", inj.Active(), inj.Injected(), len(plan))
	}
	want := []string{
		"10s kill broker",
		"30s restart broker",
		"40s fault controller->engine refuse=false drop=0.50 delay=0s",
		"50s clear controller->engine",
	}
	if got := strings.Join(target.ops, "\n"); got != strings.Join(want, "\n") {
		t.Fatalf("target ops:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
	if got := len(inj.Timeline()); got != 2*len(plan) {
		t.Fatalf("timeline has %d entries, want %d", got, 2*len(plan))
	}
	exp := reg.String()
	for _, want := range []string{
		`nostop_proc_faults_injected_total{kind="peer-kill"} 1`,
		`nostop_proc_faults_injected_total{kind="link-drop"} 1`,
		"nostop_proc_faults_active 0",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if tr.Len() == 0 {
		t.Fatal("no trace events for applied windows")
	}
}

func TestAttachProcRejectsBadInput(t *testing.T) {
	clock := sim.NewClock()
	target := newFakeTarget(clock, "broker")
	if _, err := AttachProc(nil, ClockSchedule{Clock: clock}, nil); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := AttachProc(target, nil, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	bad := ProcPlan{{Kind: PeerKill, Duration: time.Minute}}
	if _, err := AttachProc(target, ClockSchedule{Clock: clock}, bad); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestProcChaosDeterminism(t *testing.T) {
	opts := ProcChaosOptions{
		Horizon: 10 * time.Minute,
		Peers:   []string{"broker", "engine", "controller"},
	}
	a := ProcChaos(rng.New(9).Split("x"), opts)
	b := ProcChaos(rng.New(9).Split("x"), opts)
	if len(a) == 0 {
		t.Fatal("chaos generated an empty plan over ten minutes")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("chaos plan invalid: %v", err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("identical seeds produced different proc chaos plans")
	}
	if fmt.Sprint(a) == fmt.Sprint(ProcChaos(rng.New(10).Split("x"), opts)) {
		t.Fatal("different seeds produced identical proc chaos plans")
	}
	for _, f := range a {
		if f.At < sim.Time(opts.Horizon/4) {
			t.Fatalf("fault %v starts inside the warmup quarter", f)
		}
		if f.End() > sim.Time(opts.Horizon) {
			t.Fatalf("fault %v runs past the horizon", f)
		}
	}
	if ProcChaos(rng.New(9).Split("x"), ProcChaosOptions{Peers: opts.Peers}) != nil {
		t.Fatal("zero horizon should generate no plan")
	}
	if ProcChaos(rng.New(9).Split("x"), ProcChaosOptions{Horizon: time.Hour}) != nil {
		t.Fatal("no peers should generate no plan")
	}
}

func TestProcChaosSinglePeerKillsOnly(t *testing.T) {
	plan := ProcChaos(rng.New(3).Split("x"), ProcChaosOptions{
		Horizon: 30 * time.Minute,
		Peers:   []string{"broker"},
	})
	if len(plan) == 0 {
		t.Fatal("empty single-peer plan")
	}
	for _, f := range plan {
		if f.Kind != PeerKill {
			t.Fatalf("single-peer plan drew a link fault: %v", f)
		}
	}
}
