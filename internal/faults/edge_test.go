package faults

import (
	"strings"
	"testing"
	"time"

	"nostop/internal/sim"
)

// TestOverlappingWindowsSameNode pins the overlap contract on a single
// node: same-kind windows are rejected by Validate, while different kinds
// targeting the same node may overlap — they manipulate disjoint engine
// state (failure flag vs. slowdown factor) — and both revert cleanly.
func TestOverlappingWindowsSameNode(t *testing.T) {
	overlapSameKind := Plan{
		{Kind: Straggler, At: sim.Time(sec(10)), Duration: 30 * time.Second, NodeID: 3, Factor: 2},
		{Kind: Straggler, At: sim.Time(sec(20)), Duration: 30 * time.Second, NodeID: 3, Factor: 4},
	}
	if err := overlapSameKind.Validate(); err == nil {
		t.Fatal("same-kind overlap on one node validated")
	}

	// Cross-kind overlap on node 3: crash [20s, 80s) spans a straggler
	// window [40s, 60s) entirely.
	crossKind := Plan{
		{Kind: NodeCrash, At: sim.Time(sec(20)), Duration: 60 * time.Second, NodeID: 3},
		{Kind: Straggler, At: sim.Time(sec(40)), Duration: 20 * time.Second, NodeID: 3, Factor: 3},
	}
	if err := crossKind.Validate(); err != nil {
		t.Fatalf("cross-kind overlap on one node rejected: %v", err)
	}
	clock, e := newEngine(t, 21)
	inj, err := Attach(e, crossKind)
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(50)))
	if inj.Active() != 2 {
		t.Fatalf("active %d inside the nested windows, want 2", inj.Active())
	}
	clock.RunUntil(sim.Time(sec(120)))
	if inj.Active() != 0 {
		t.Fatalf("active %d after both windows, want 0", inj.Active())
	}
	if e.FaultInEffect() {
		t.Fatal("fault flag stuck after nested same-node windows")
	}
	if inj.Injected() != 2 {
		t.Fatalf("injected %d, want 2", inj.Injected())
	}
}

// TestWindowEndingAtBatchCut pins event ordering when a fault window ends
// exactly at a batch-cut instant. The injector's end event is enqueued at
// Attach time, the 10s cut event only when the 5s cut schedules it, so
// same-instant FIFO runs recovery first: the batch cut at 10s is NOT
// fault-flagged. Extending the window past the cut by any amount flips it.
func TestWindowEndingAtBatchCut(t *testing.T) {
	flagAt10s := func(dur time.Duration) bool {
		clock, e := newEngine(t, 33) // 5s batch interval
		if _, err := Attach(e, Plan{
			{Kind: TaskFailures, At: sim.Time(sec(7)), Duration: dur, Prob: 0.2},
		}); err != nil {
			t.Fatal(err)
		}
		clock.RunUntil(sim.Time(sec(30)))
		for _, b := range e.History() {
			if b.CutAt == sim.Time(sec(10)) {
				return b.FaultActive
			}
		}
		t.Fatalf("no batch cut at 10s in history")
		return false
	}
	if flagAt10s(3 * time.Second) {
		t.Fatal("window ending exactly at the cut flagged the batch cut at that instant")
	}
	if !flagAt10s(3*time.Second + time.Millisecond) {
		t.Fatal("window extending past the cut did not flag the batch")
	}
}

// TestUnobservedInjectorFailingMidPlan exercises the nil-sink paths: an
// injector that is never Observed (and one Observed with nil arguments
// mid-plan) must survive a failing injection — nil counter Inc and nil
// tracer Instant are no-ops, and the failure lands on the timeline.
func TestUnobservedInjectorFailingMidPlan(t *testing.T) {
	clock, e := newEngine(t, 5)
	plan := Plan{
		// Node 99 does not exist: both the injection at 10s and the
		// recovery at 25s fail.
		{Kind: NodeCrash, At: sim.Time(sec(10)), Duration: 15 * time.Second, NodeID: 99},
		{Kind: IngestSpike, At: sim.Time(sec(40)), Duration: 15 * time.Second, Factor: 2},
	}
	inj, err := Attach(e, plan)
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(30))) // past the failing window, no Observe called
	if inj.Injected() != 0 {
		t.Fatalf("injected %d after a rejected window, want 0", inj.Injected())
	}
	if inj.Active() != 0 {
		t.Fatalf("active %d after a rejected window, want 0", inj.Active())
	}
	if !strings.Contains(inj.String(), "FAILED") {
		t.Fatalf("timeline does not record the failure:\n%s", inj.String())
	}

	// Observing with nil sinks mid-plan must be equally inert.
	inj.Observe(nil, nil)
	clock.RunUntil(sim.Time(sec(60)))
	if inj.Injected() != 1 {
		t.Fatalf("injected %d after the valid window, want 1", inj.Injected())
	}
	if e.FaultInEffect() {
		t.Fatal("fault flag stuck after plan end")
	}
	if got := len(inj.Timeline()); got != 4 {
		t.Fatalf("timeline has %d entries, want 4 (2 failures + inject/recover)", got)
	}
}
