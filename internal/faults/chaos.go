package faults

import (
	"time"

	"nostop/internal/rng"
	"nostop/internal/sim"
)

// ChaosOptions scale the seeded random fault generator. Zero values take the
// documented defaults.
type ChaosOptions struct {
	// Horizon bounds fault starts; windows are clipped to end by it.
	// Required (must be positive).
	Horizon time.Duration
	// Warmup is fault-free time at the start of the run so the system
	// (and an attached optimizer) reaches steady state first. 0 means
	// Horizon/4.
	Warmup time.Duration
	// MeanGap is the mean idle gap between one fault lifting and the next
	// starting (exponentially distributed). 0 means Horizon/10.
	MeanGap time.Duration
	// MinDuration/MaxDuration bound each fault window. Zeros mean 60s and
	// 4 minutes.
	MinDuration, MaxDuration time.Duration
	// NodeIDs are candidate nodes for crashes and stragglers. Empty means
	// the Table 2 workers {2, 3, 4, 5}.
	NodeIDs []int
	// Partitions is the candidate partition count for outages. 0 means 8
	// (outages then target partitions 0..7, which every default topic
	// has).
	Partitions int
	// MaxStraggle is the worst straggler slowdown drawn. 0 means 6.
	MaxStraggle float64
	// MaxTaskFail is the worst per-attempt task-failure probability
	// drawn. 0 means 0.5.
	MaxTaskFail float64
	// MaxSpike is the worst ingest multiplier drawn. 0 means 2.5.
	MaxSpike float64
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Warmup == 0 {
		o.Warmup = o.Horizon / 4
	}
	if o.MeanGap == 0 {
		o.MeanGap = o.Horizon / 10
	}
	if o.MinDuration == 0 {
		o.MinDuration = time.Minute
	}
	if o.MaxDuration == 0 {
		o.MaxDuration = 4 * time.Minute
	}
	if o.MaxDuration < o.MinDuration {
		o.MaxDuration = o.MinDuration
	}
	if len(o.NodeIDs) == 0 {
		o.NodeIDs = []int{2, 3, 4, 5}
	}
	if o.Partitions == 0 {
		o.Partitions = 8
	}
	if o.MaxStraggle == 0 {
		o.MaxStraggle = 6
	}
	if o.MaxTaskFail == 0 {
		o.MaxTaskFail = 0.5
	}
	if o.MaxSpike == 0 {
		o.MaxSpike = 2.5
	}
	return o
}

// Chaos generates a sequential random fault plan: windows never overlap, so
// every recovery is observable before the next fault lands, and the plan
// always validates. All randomness comes from the given stream — equal
// seeds yield byte-identical plans.
func Chaos(seed *rng.Stream, opts ChaosOptions) Plan {
	if opts.Horizon <= 0 {
		return nil
	}
	o := opts.withDefaults()
	r := seed.Split("chaos")
	var plan Plan
	t := sim.Time(o.Warmup)
	for {
		t += sim.Time(r.Exp(o.MeanGap.Seconds()) * float64(time.Second))
		if t >= sim.Time(o.Horizon) {
			break
		}
		dur := time.Duration(r.Uniform(o.MinDuration.Seconds(), o.MaxDuration.Seconds()) * float64(time.Second))
		if end := sim.Time(o.Horizon); t+sim.Time(dur) > end {
			dur = time.Duration(end - t)
			if dur < o.MinDuration/2 {
				break
			}
		}
		f := Fault{At: t, Duration: dur}
		switch Kind(r.Intn(5)) {
		case NodeCrash:
			f.Kind = NodeCrash
			f.NodeID = o.NodeIDs[r.Intn(len(o.NodeIDs))]
		case Straggler:
			f.Kind = Straggler
			f.NodeID = o.NodeIDs[r.Intn(len(o.NodeIDs))]
			f.Factor = r.Uniform(2, o.MaxStraggle)
		case TaskFailures:
			f.Kind = TaskFailures
			f.Prob = r.Uniform(0.1, o.MaxTaskFail)
		case PartitionOutage:
			f.Kind = PartitionOutage
			f.Partition = r.Intn(o.Partitions)
		case IngestSpike:
			f.Kind = IngestSpike
			f.Factor = r.Uniform(1.3, o.MaxSpike)
		}
		plan = append(plan, f)
		t = f.End()
	}
	return plan
}
