package fleet

import (
	"encoding/json"
	"fmt"
	"sort"

	"nostop/internal/stats"
)

// Manifest is the byte-stable output of a fleet run: the resolved spec plus
// one record per job, in spec-expansion order. Encoding the same spec's
// manifest at any parallelism yields identical bytes; nothing wall-clock- or
// scheduling-derived is allowed in here.
type Manifest struct {
	Version int      `json:"version"`
	Spec    Spec     `json:"spec"`
	Jobs    []Record `json:"jobs"`
}

// Encode renders the manifest as stable, indented JSON with a trailing
// newline. encoding/json writes struct fields in declaration order and
// formats floats deterministically, so equal manifests encode to equal
// bytes.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding manifest: %v", err)
	}
	return append(data, '\n'), nil
}

// Aggregate is the per-cell statistics over that cell's seeds: mean/std and
// a 95% confidence interval (Student t) of the steady-state e2e mean, plus
// averaged distribution tails — the replicated-trial variance accounting the
// single-run tables cannot provide.
type Aggregate struct {
	Cell       Cell    `json:"cell"`
	Seeds      int     `json:"seeds"`
	E2EMean    float64 `json:"e2e_mean_seconds"`
	E2EStd     float64 `json:"e2e_std_seconds"`
	E2ECI95    float64 `json:"e2e_ci95_seconds"`
	E2EP50Mean float64 `json:"e2e_p50_mean_seconds"`
	E2EP95Mean float64 `json:"e2e_p95_mean_seconds"`
	ProcMean   float64 `json:"proc_mean_seconds"`
	SchedMean  float64 `json:"sched_mean_seconds"`
	ConfigMean float64 `json:"config_steps_mean"`
}

// Aggregates groups records into cells (every axis except the seed) and
// summarizes each. The input may arrive in any order: records are grouped by
// canonical cell key and cells are emitted key-sorted, so the output is a
// pure function of the record *set*.
func Aggregates(recs []Record) []Aggregate {
	groups := make(map[string][]Record)
	for _, r := range recs {
		k := r.Job.Cell().key()
		groups[k] = append(groups[k], r)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := make([]Aggregate, 0, len(keys))
	for _, k := range keys {
		group := groups[k]
		// Seed order within a cell must not depend on arrival order.
		sort.Slice(group, func(i, j int) bool { return group[i].Job.Seed < group[j].Job.Seed })
		var e2e, p50, p95, proc, sched, steps []float64
		for _, r := range group {
			e2e = append(e2e, r.Summary.E2E.Mean)
			p50 = append(p50, r.Summary.E2E.P50)
			p95 = append(p95, r.Summary.E2E.P95)
			proc = append(proc, r.Summary.ProcMean)
			sched = append(sched, r.Summary.SchedMean)
			steps = append(steps, float64(r.Summary.ConfigSteps))
		}
		mean, half := stats.MeanCI95(e2e)
		out = append(out, Aggregate{
			Cell:       group[0].Job.Cell(),
			Seeds:      len(group),
			E2EMean:    mean,
			E2EStd:     stats.Std(e2e),
			E2ECI95:    half,
			E2EP50Mean: stats.Mean(p50),
			E2EP95Mean: stats.Mean(p95),
			ProcMean:   stats.Mean(proc),
			SchedMean:  stats.Mean(sched),
			ConfigMean: stats.Mean(steps),
		})
	}
	return out
}

// EncodeAggregates renders aggregates as stable, indented JSON with a
// trailing newline.
func EncodeAggregates(aggs []Aggregate) ([]byte, error) {
	data, err := json.MarshalIndent(aggs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding aggregates: %v", err)
	}
	return append(data, '\n'), nil
}
