package fleet

import (
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/stats"
	"nostop/internal/tenant"
)

// Dist summarizes a sample of per-batch delays.
type Dist struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// distOf summarizes xs into a Dist.
func distOf(xs []float64) Dist {
	s := stats.Summarize(xs)
	return Dist{N: s.N, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max}
}

// Summary is the per-run result stored in artifacts and manifests: steady-
// state delay distributions plus the engine's resilience accounting. Every
// field is a pure function of the Job — no wall-clock or worker-dependent
// value may ever be added here, or parallelism invariance breaks.
type Summary struct {
	Batches        int     `json:"batches"`
	SteadyBatches  int     `json:"steady_batches"`
	E2E            Dist    `json:"e2e_seconds"`
	ProcMean       float64 `json:"proc_mean_seconds"`
	SchedMean      float64 `json:"sched_mean_seconds"`
	Reconfigs      int     `json:"reconfigs"`
	ConfigSteps    int     `json:"config_steps"`
	FinalInterval  float64 `json:"final_interval_seconds"`
	FinalExecutors int     `json:"final_executors"`
	Phase          string  `json:"phase,omitempty"`
	FailedBatches  int64   `json:"failed_batches"`
	TaskRetries    int     `json:"task_retries"`
	Redelivered    int64   `json:"redelivered"`
	FailedRecords  int64   `json:"failed_records"`
	TotalRecords   int64   `json:"total_records"`
	FaultsInjected int     `json:"faults_injected,omitempty"`
	// Tenants holds the per-tenant breakdown of a multi-tenant (Mix) job;
	// the top-level fields then carry the cluster-wide aggregate so cell
	// aggregation works unchanged. Empty for single-app jobs (omitempty
	// keeps their artifact bytes identical to pre-tenant releases).
	Tenants []tenant.TenantReport `json:"tenants,omitempty"`
}

// Execute runs one job to completion and summarizes it. The run is built
// from scratch — own clock, own engine, own controller — so concurrent
// Execute calls share nothing. The job's random streams all derive from a
// path that encodes the job axes, so distinct grid points draw independent
// randomness even under the same seed. Execution itself lives in
// ExecuteObserved; Execute is the sink-free fast path the sweep runner uses.
func Execute(job Job) (Summary, error) {
	sum, _, err := ExecuteObserved(job, Observe{})
	return sum, err
}

// summarize reduces a finished run to its Summary.
func summarize(job Job, eng *engine.Engine, ctl *core.Controller, inj *faults.Injector) Summary {
	history := eng.History()
	start := int(float64(len(history)) * job.Warmup)
	var e2e, proc, sched []float64
	for _, b := range history[start:] {
		if b.FirstAfterReconfig {
			continue
		}
		e2e = append(e2e, b.EndToEndDelay.Seconds())
		proc = append(proc, b.ProcessingTime.Seconds())
		sched = append(sched, b.SchedulingDelay.Seconds())
	}

	s := Summary{
		Batches:        len(history),
		SteadyBatches:  len(e2e),
		E2E:            distOf(e2e),
		ProcMean:       stats.Mean(proc),
		SchedMean:      stats.Mean(sched),
		Reconfigs:      eng.Reconfigs(),
		FinalInterval:  eng.Config().BatchInterval.Seconds(),
		FinalExecutors: eng.Config().Executors,
		FailedBatches:  eng.FailedBatches(),
		TaskRetries:    eng.TaskRetries(),
		Redelivered:    eng.Redelivered(),
		FailedRecords:  eng.FailedRecords(),
		TotalRecords:   eng.TotalRecords(),
	}
	if ctl != nil {
		s.ConfigSteps = ctl.ConfigureSteps()
		s.Phase = ctl.Phase().String()
	}
	if inj != nil {
		s.FaultsInjected = inj.Injected()
	}
	return s
}
