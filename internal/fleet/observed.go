package fleet

import (
	"fmt"

	"nostop/internal/baselines"
	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/gptuner"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rltuner"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tenant"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// Observe configures the optional passive sinks and hooks of an observed
// execution. The zero value disables everything, making ExecuteObserved
// behave exactly like Execute: attaching sinks never perturbs a run (the
// PR-3 zero-perturbation guarantee), so the summary produced for a job is
// byte-identical with or without them.
type Observe struct {
	// Metrics, when non-nil, receives the run's full instrument set
	// (engine, broker, controller, fault injector).
	Metrics *metrics.Registry
	// Trace enables a Chrome trace_event tracer on the run's virtual clock.
	Trace bool
	// TraceMaxEvents bounds the tracer (0: tracing.DefaultMaxEvents).
	TraceMaxEvents int
	// Attach, when non-nil, runs after the engine has started and the
	// controller (if any) has attached, before the clock runs. It is the
	// hook scenario probes use to add batch-completion listeners. It must
	// be passive: drawing randomness or scheduling events here would break
	// the job-hash determinism contract.
	Attach func(*engine.Engine) error
}

// RunDetail exposes the live objects of a completed observed execution, for
// callers that need more than the Summary: the scenario harness reads the
// batch history for SLO percentiles and first-violation instants, the
// registry for counter-derived SLOs, and the tracer for span references.
type RunDetail struct {
	Engine     *engine.Engine
	Controller *core.Controller // nil unless the nostop controller ran
	Injector   *faults.Injector // nil for a fault-free job
	Tracer     *tracing.Tracer  // nil unless Observe.Trace was set
}

// ExecuteObserved runs one job to completion like Execute, with optional
// metric/trace sinks and an attach hook, and returns the run's live state
// alongside the summary. The job's seed path and event timeline are
// identical to Execute's — observability is passive — so a job's content
// hash remains a complete key for its results.
func ExecuteObserved(job Job, obs Observe) (Summary, *RunDetail, error) {
	if job.Mix != nil {
		return executeMix(job, obs)
	}
	clock := sim.NewClock()
	var tr *tracing.Tracer
	if obs.Trace {
		tr = tracing.New(clock, obs.TraceMaxEvents)
	}
	wl, err := workload.New(job.Workload)
	if err != nil {
		return Summary{}, nil, err
	}
	seed := rng.New(job.Seed).Split(fmt.Sprintf("fleet/%s/%s/%s/%s",
		job.Workload, job.Controller, job.Trace.label(), job.Plan.label()))

	min, max := wl.RateBand()
	trc := job.Trace.withDefaults()
	if trc.Min != 0 || trc.Max != 0 {
		min, max = trc.Min, trc.Max
	}
	trace := ratetrace.NewUniformBand(min, max, trc.Period.D(), seed.Split("trace"))

	initial := engine.DefaultConfig()
	if job.Initial.Interval != 0 {
		initial.BatchInterval = job.Initial.Interval.D()
	}
	if job.Initial.Executors != 0 {
		initial.Executors = job.Initial.Executors
	}

	engOpts := engine.Options{
		Workload: wl,
		Trace:    trace,
		Seed:     seed.Split("engine"),
		Initial:  initial,
		Metrics:  obs.Metrics,
		Tracer:   tr,
	}
	if job.Space != nil {
		// The widened space is authoritative on the engine's feasible
		// region, so every controller — space-aware or not — tunes inside
		// the same box.
		engOpts.Bounds = job.Space.EngineBounds()
		engOpts.Initial = engOpts.Bounds.Clamp(initial)
	}
	eng, err := engine.New(clock, engOpts)
	if err != nil {
		return Summary{}, nil, err
	}

	var inj *faults.Injector
	if len(job.Plan.Faults) > 0 {
		if inj, err = faults.Attach(eng, job.Plan.Faults); err != nil {
			return Summary{}, nil, err
		}
		inj.Observe(obs.Metrics, tr)
	}
	if err := eng.Start(); err != nil {
		return Summary{}, nil, err
	}

	var ctl *core.Controller
	switch job.Controller {
	case ControllerStatic:
	case ControllerNoStop:
		copts := core.Options{
			Seed:    seed.Split("controller"),
			Metrics: obs.Metrics,
			Tracer:  tr,
		}
		if job.Space != nil {
			// SPSA tunes the block axis too when the space declares it.
			if _, ok := job.Space.Axis(core.ParamBlockInterval); ok {
				copts.TuneBlockInterval = true
			}
		}
		if ctl, err = core.New(eng, copts); err != nil {
			return Summary{}, nil, err
		}
		err = ctl.Attach()
	case ControllerBackPressure:
		var bp *baselines.BackPressure
		if bp, err = baselines.NewBackPressure(eng, baselines.BPOptions{}); err != nil {
			return Summary{}, nil, err
		}
		err = bp.Attach()
	case ControllerBayesOpt:
		var bo *baselines.BayesOpt
		if bo, err = baselines.NewBayesOpt(eng, baselines.BOOptions{Seed: seed.Split("bo")}); err != nil {
			return Summary{}, nil, err
		}
		err = bo.Attach()
	case ControllerGP:
		gopts := gptuner.Options{Seed: seed.Split("gp")}
		if job.Space != nil {
			gopts.Space = *job.Space
		}
		var gt *gptuner.Tuner
		if gt, err = gptuner.New(eng, gopts); err != nil {
			return Summary{}, nil, err
		}
		err = gt.Attach()
	case ControllerRL:
		ropts := rltuner.Options{Seed: seed.Split("rl")}
		if job.Space != nil {
			ropts.Space = *job.Space
		}
		var rt *rltuner.Tuner
		if rt, err = rltuner.New(eng, ropts); err != nil {
			return Summary{}, nil, err
		}
		err = rt.Attach()
	default:
		return Summary{}, nil, UnknownControllerError(job.Controller)
	}
	if err != nil {
		return Summary{}, nil, err
	}
	if obs.Attach != nil {
		if err := obs.Attach(eng); err != nil {
			return Summary{}, nil, err
		}
	}

	clock.RunUntil(sim.Time(job.Horizon))
	return summarize(job, eng, ctl, inj), &RunDetail{Engine: eng, Controller: ctl, Injector: inj, Tracer: tr}, nil
}

// executeMix runs a multi-tenant job through tenant.Run and folds the
// report into a Summary: cluster-wide aggregates in the top-level fields
// (so cell aggregation and manifest rendering work unchanged) and the
// per-tenant breakdown in Summary.Tenants. The seed path and report are a
// pure function of the Job, exactly like the single-app path, so job
// hashes remain complete artifact-cache keys.
func executeMix(job Job, obs Observe) (Summary, *RunDetail, error) {
	rep, det, err := tenant.RunDetailed(*job.Mix, job.Seed, tenant.Observe{
		Metrics:        obs.Metrics,
		Trace:          obs.Trace,
		TraceMaxEvents: obs.TraceMaxEvents,
	})
	if err != nil {
		return Summary{}, nil, err
	}
	s := Summary{
		Batches:      rep.Cluster.TotalBatches,
		TotalRecords: rep.Cluster.TotalRecords,
		Tenants:      rep.Tenants,
	}
	var e2e []float64
	for _, t := range rep.Tenants {
		s.SteadyBatches += t.SteadyBatches
		s.Reconfigs += t.Reconfigs
		s.FailedBatches += t.FailedBatches
		s.Redelivered += t.Redelivered
		if t.SteadyBatches > 0 {
			// Weight each tenant's mean by its steady batch count so the
			// cluster-wide mean matches a flat per-batch average; the dist
			// percentiles come from the per-tenant means (N = tenant count),
			// a coarse but deterministic cross-tenant spread measure.
			e2e = append(e2e, t.DelayMeanSec)
			s.ProcMean += t.ProcMeanSec * float64(t.SteadyBatches)
			s.SchedMean += t.SchedMeanSec * float64(t.SteadyBatches)
		}
	}
	if s.SteadyBatches > 0 {
		s.ProcMean /= float64(s.SteadyBatches)
		s.SchedMean /= float64(s.SteadyBatches)
	}
	s.E2E = distOf(e2e)
	s.E2E.Mean = rep.Cluster.MeanDelaySec // batch-weighted, not tenant-weighted
	return s, &RunDetail{Tracer: det.Tracer}, nil
}
