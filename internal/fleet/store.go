package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Record is one completed job: the job, its content hash, and its summary.
// Records are both the artifact-file format and the manifest row format.
type Record struct {
	Hash    string  `json:"hash"`
	Job     Job     `json:"job"`
	Summary Summary `json:"summary"`
}

// Store caches completed-run records on disk, one file per job under
// <dir>/runs/<hash>.json. Writes are atomic (write-temp-then-rename in the
// same directory), so a sweep killed mid-write never leaves a partial
// artifact that a resumed sweep could mistake for a completed run.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) an artifact store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating store: %v", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the artifact path for a job hash.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, "runs", hash+".json")
}

// Load returns the cached record for job, or (nil, false) when the artifact
// is missing, unreadable, or stale. A stale artifact — one whose stored hash
// does not match the job's current hash — is treated as a miss, so hash-
// version bumps transparently invalidate old caches.
func (s *Store) Load(job Job) (*Record, bool) {
	hash := job.Hash()
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, false
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	if rec.Hash != hash || rec.Job.Hash() != hash {
		return nil, false
	}
	return &rec, true
}

// Save writes the record atomically.
func (s *Store) Save(rec *Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding record: %v", err)
	}
	return WriteFileAtomic(s.path(rec.Hash), append(data, '\n'))
}

// WriteFileAtomic writes data to path via a temp file in the same directory
// plus a rename, so readers never observe a partially-written file and an
// interrupted write leaves any previous version intact.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: creating temp file: %v", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fleet: writing %s: %v", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: closing %s: %v", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fleet: publishing %s: %v", path, err)
	}
	return nil
}
