// Package fleet orchestrates parallel multi-run experiment sweeps over the
// single-threaded simulation core.
//
// A declarative Spec (grid of seeds × workloads × controllers × rate traces ×
// fault plans × initial configurations) expands into independent Jobs. Each
// job builds its own sim.Clock, engine, and controller, so jobs share no
// mutable state and can execute concurrently on a bounded worker pool without
// violating the simgoroutine contract: the goroutines live here, *outside*
// the simulation packages (internal/fleet is allowlisted in
// analysis.DefaultConfig), and each goroutine runs a complete single-threaded
// simulation.
//
// Determinism contract: a job's entire stochastic behaviour is a pure
// function of its Job value — the worker that runs it, the order jobs finish,
// and the parallelism level never leak into results. Results are merged back
// in spec-expansion order and aggregates are computed only after that sorted
// merge, so the manifest produced at parallelism 8 is byte-identical to the
// one produced at parallelism 1. Completed jobs are cached in a Store keyed
// by a content hash of the Job, which is what makes sweeps resumable: a
// re-invocation skips every job whose artifact is already present and valid.
//
// The package never reads the wall clock; progress timing lives in the
// cmd/nostop-fleet CLI, and nothing wall-clock-derived enters a manifest.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"nostop/internal/core"
	"nostop/internal/faults"
	"nostop/internal/tenant"
	"nostop/internal/workload"
)

// Duration is a time.Duration that marshals as a human-readable duration
// string ("40m0s") in spec and manifest JSON and unmarshals from either a
// duration string or integer nanoseconds.
type Duration time.Duration

// D converts back to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String renders the underlying duration.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fleet: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// TraceSpec describes the input-rate trace of a job. The only kind is
// "band": rates re-drawn uniformly in [Min, Max] every Period (the paper's
// §6.2.2 generator). Zero Min/Max means the workload's own rate band; zero
// Period means 5s.
type TraceSpec struct {
	Kind   string   `json:"kind"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
	Period Duration `json:"period,omitempty"`
}

// withDefaults resolves the open fields so job hashes are fully explicit.
func (t TraceSpec) withDefaults() TraceSpec {
	if t.Kind == "" {
		t.Kind = "band"
	}
	if t.Period == 0 {
		t.Period = Duration(5 * time.Second)
	}
	return t
}

// label renders the trace for aggregate grouping and progress lines.
func (t TraceSpec) label() string {
	if t.Min == 0 && t.Max == 0 {
		return t.Kind
	}
	return fmt.Sprintf("%s[%.0f,%.0f]", t.Kind, t.Min, t.Max)
}

// NamedPlan is a fault plan with a stable name for grouping and display.
// An empty Faults slice means a fault-free run.
type NamedPlan struct {
	Name   string      `json:"name,omitempty"`
	Faults faults.Plan `json:"faults,omitempty"`
}

// label renders the plan name ("none" when fault-free).
func (p NamedPlan) label() string {
	if len(p.Faults) == 0 {
		return "none"
	}
	if p.Name == "" {
		return fmt.Sprintf("%d-faults", len(p.Faults))
	}
	return p.Name
}

// Static overrides the engine's default initial configuration. Zero fields
// keep engine.DefaultConfig's values. For the "static" controller this is
// the configuration the whole run holds; for tuned controllers it is only
// the starting point.
type Static struct {
	Interval  Duration `json:"interval,omitempty"`
	Executors int      `json:"executors,omitempty"`
}

// label renders the override for aggregate grouping ("default" when empty).
func (s Static) label() string {
	if s.Interval == 0 && s.Executors == 0 {
		return "default"
	}
	return fmt.Sprintf("%v/%d", s.Interval, s.Executors)
}

// Controllers the fleet can attach to a run. The authoritative list —
// including per-controller conformance metadata — is the registry in
// registry.go; these constants are the names it registers.
const (
	// ControllerStatic holds the initial configuration for the whole run.
	ControllerStatic = "static"
	// ControllerNoStop attaches the paper's SPSA controller.
	ControllerNoStop = "nostop"
	// ControllerBackPressure attaches Spark's PID back-pressure baseline.
	ControllerBackPressure = "backpressure"
	// ControllerBayesOpt attaches the Bayesian-optimization baseline.
	ControllerBayesOpt = "bo"
	// ControllerGP attaches the uncertainty-aware GP tuner over the
	// widened config space (internal/gptuner).
	ControllerGP = "gp"
	// ControllerRL attaches the tabular Q-learning tuner over the widened
	// config space (internal/rltuner).
	ControllerRL = "rl"
)

// Spec is a declarative sweep: the cross product of every axis below, one
// job per combination. Empty optional axes (Traces, Plans, Initials)
// contribute a single default element each.
type Spec struct {
	// Name labels the sweep in the manifest; it does not enter job hashes.
	Name string `json:"name,omitempty"`
	// Seeds are the root random seeds; one replication per seed.
	Seeds []uint64 `json:"seeds"`
	// Workloads are registry names (logreg, linreg, wordcount, pageanalyze).
	Workloads []string `json:"workloads"`
	// Controllers are the tuner variants to attach (see Controller*).
	Controllers []string `json:"controllers"`
	// Horizon is the virtual duration of each run; 0 means 40m.
	Horizon Duration `json:"horizon,omitempty"`
	// Warmup is the fraction of each run discarded before measuring
	// steady state; 0 means 0.5.
	Warmup float64 `json:"warmup,omitempty"`
	// Traces optionally sweeps input-rate traces; empty means one
	// workload-band trace.
	Traces []TraceSpec `json:"traces,omitempty"`
	// Plans optionally sweeps fault plans; empty means one fault-free run.
	Plans []NamedPlan `json:"plans,omitempty"`
	// Initials optionally sweeps initial configurations; empty means the
	// engine default.
	Initials []Static `json:"initials,omitempty"`
	// Mixes optionally sweeps multi-tenant mixes (tenant.MixSpec): each
	// mix × seed is one job running the full tenant subsystem instead of a
	// single workload/controller pair. A spec may combine Mixes with the
	// single-app axes; the two expand independently.
	Mixes []tenant.MixSpec `json:"mixes,omitempty"`
	// Space optionally widens the configuration space every single-app job
	// tunes over (core.ConfigSpace v1 — see docs/CONTROLLERS.md): the
	// engine's bounds come from the space, and space-aware controllers
	// (gp, rl) explore all its axes. Nil keeps the engine's default
	// two-parameter bounds. omitempty keeps pre-space job hashes — and
	// therefore cached artifacts — valid.
	Space *core.ConfigSpace `json:"space,omitempty"`
}

// normalized returns the spec with every default resolved, so the manifest
// records exactly what ran.
func (s Spec) normalized() Spec {
	if s.Horizon == 0 {
		s.Horizon = Duration(40 * time.Minute)
	}
	if s.Warmup == 0 {
		s.Warmup = 0.5
	}
	if len(s.Traces) == 0 {
		s.Traces = []TraceSpec{{}}
	}
	for i := range s.Traces {
		s.Traces[i] = s.Traces[i].withDefaults()
	}
	if len(s.Plans) == 0 {
		s.Plans = []NamedPlan{{}}
	}
	if len(s.Initials) == 0 {
		s.Initials = []Static{{}}
	}
	return s
}

// Validate checks the spec axes without expanding them.
func (s Spec) Validate() error {
	s = s.normalized()
	if len(s.Seeds) == 0 {
		return fmt.Errorf("fleet: spec has no seeds")
	}
	for i, m := range s.Mixes {
		if _, err := m.Validate(); err != nil {
			return fmt.Errorf("fleet: mix %d: %v", i, err)
		}
	}
	if len(s.Workloads) == 0 && len(s.Controllers) == 0 && len(s.Mixes) > 0 {
		return nil // pure tenant-mix sweep: the single-app axes stay empty
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("fleet: spec has no workloads")
	}
	if len(s.Controllers) == 0 {
		return fmt.Errorf("fleet: spec has no controllers")
	}
	for _, name := range s.Workloads {
		if _, err := workload.New(name); err != nil {
			return fmt.Errorf("fleet: %v", err)
		}
	}
	for _, c := range s.Controllers {
		if !KnownController(c) {
			return UnknownControllerError(c)
		}
	}
	if s.Space != nil {
		if err := s.Space.Validate(); err != nil {
			return fmt.Errorf("fleet: space: %v", err)
		}
	}
	if s.Warmup < 0 || s.Warmup >= 1 {
		return fmt.Errorf("fleet: warmup %.2f outside [0, 1)", s.Warmup)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("fleet: non-positive horizon %v", s.Horizon)
	}
	for _, t := range s.Traces {
		if t.Kind != "band" {
			return fmt.Errorf("fleet: unknown trace kind %q", t.Kind)
		}
		if (t.Min != 0 || t.Max != 0) && t.Min >= t.Max {
			return fmt.Errorf("fleet: trace band [%.0f, %.0f] is empty", t.Min, t.Max)
		}
	}
	for _, p := range s.Plans {
		if err := p.Faults.Validate(); err != nil {
			return fmt.Errorf("fleet: plan %s: %v", p.label(), err)
		}
	}
	return nil
}

// Expand resolves defaults and returns one fully-explicit Job per grid
// point, in a deterministic order: workloads × controllers × traces × plans
// × initials, with seeds innermost so one aggregation cell's replications
// are contiguous.
func (s Spec) Expand() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.normalized()
	var jobs []Job
	for i := range s.Mixes {
		// Normalize through Validate so the hashed mix is fully explicit
		// (Validate passed above, so the error is unreachable).
		m, _ := s.Mixes[i].Validate()
		for _, seed := range s.Seeds {
			mix := m
			jobs = append(jobs, Job{
				Workload:   "tenants",
				Controller: m.Allocator,
				Seed:       seed,
				// The mix carries its own horizon/warmup; the job copies
				// them so manifest rows stay self-describing.
				Horizon: Duration(m.Horizon),
				Warmup:  s.Warmup,
				Mix:     &mix,
			})
		}
	}
	for _, wl := range s.Workloads {
		for _, ctl := range s.Controllers {
			for _, tr := range s.Traces {
				for _, plan := range s.Plans {
					for _, init := range s.Initials {
						for _, seed := range s.Seeds {
							jobs = append(jobs, Job{
								Workload:   wl,
								Controller: ctl,
								Seed:       seed,
								Horizon:    s.Horizon,
								Warmup:     s.Warmup,
								Trace:      tr,
								Plan:       plan,
								Initial:    init,
								Space:      s.Space,
							})
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// Job is one fully-resolved simulation run: every field that influences the
// run is explicit here, which is what makes the content hash a complete key.
type Job struct {
	Workload   string    `json:"workload"`
	Controller string    `json:"controller"`
	Seed       uint64    `json:"seed"`
	Horizon    Duration  `json:"horizon"`
	Warmup     float64   `json:"warmup"`
	Trace      TraceSpec `json:"trace"`
	Plan       NamedPlan `json:"plan"`
	Initial    Static    `json:"initial"`
	// Mix, when non-nil, makes this a multi-tenant job: the run executes
	// tenant.Run over the mix instead of a single engine. omitempty keeps
	// single-app job hashes identical to pre-tenant releases, so cached
	// artifacts stay valid.
	Mix *tenant.MixSpec `json:"mix,omitempty"`
	// Space, when non-nil, is the widened configuration space the run tunes
	// over: it becomes the engine's bounds and the action space of
	// space-aware controllers. omitempty keeps pre-space job hashes — and
	// cached artifacts — valid.
	Space *core.ConfigSpace `json:"space,omitempty"`
}

// hashVersion is bumped whenever the job encoding or the simulation
// semantics behind it change incompatibly, invalidating cached artifacts.
const hashVersion = "fleet-job-v1"

// Hash returns the job's content hash: SHA-256 over a versioned canonical
// JSON encoding. Two jobs hash equal iff they describe the same run, so the
// hash doubles as the artifact cache key and the manifest row key.
func (j Job) Hash() string {
	enc, err := json.Marshal(j)
	if err != nil {
		// Job contains only marshalable fields; this cannot fail.
		panic(fmt.Sprintf("fleet: hashing job: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(hashVersion))
	h.Write([]byte{'\n'})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// String renders a compact human-readable job label for progress lines.
func (j Job) String() string {
	if j.Mix != nil {
		return fmt.Sprintf("mix=%s/%s/seed=%d", j.Mix.Name, j.Mix.Allocator, j.Seed)
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s/seed=%d",
		j.Workload, j.Controller, j.Trace.label(), j.Plan.label(), j.Initial.label(), j.Seed)
}

// Cell is the aggregation key: every job axis except the seed. Runs in the
// same cell are replications of the same experiment.
type Cell struct {
	Workload   string    `json:"workload"`
	Controller string    `json:"controller"`
	Trace      TraceSpec `json:"trace"`
	Plan       string    `json:"plan"`
	Initial    Static    `json:"initial"`
	Horizon    Duration  `json:"horizon"`
	Warmup     float64   `json:"warmup"`
	// Mix names the tenant mix for multi-tenant cells; empty otherwise
	// (omitempty keeps pre-tenant cell keys stable).
	Mix string `json:"mix,omitempty"`
}

// Cell returns the job's aggregation cell.
func (j Job) Cell() Cell {
	c := Cell{
		Workload:   j.Workload,
		Controller: j.Controller,
		Trace:      j.Trace,
		Plan:       j.Plan.label(),
		Initial:    j.Initial,
		Horizon:    j.Horizon,
		Warmup:     j.Warmup,
	}
	if j.Mix != nil {
		c.Mix = j.Mix.Name
	}
	return c
}

// key is a canonical string form of the cell, used for grouping.
func (c Cell) key() string {
	enc, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("fleet: encoding cell: %v", err))
	}
	return string(enc)
}
