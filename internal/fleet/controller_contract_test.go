package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/faults"
	"nostop/internal/sim"
)

// contractPlan is the inline chaos plan every conformance run shares: a
// straggler, an ingest spike, and a task-failure window, all inside an 8m
// horizon so every controller has clean batches before, between, and after
// the windows.
func contractPlan() faults.Plan {
	return faults.Plan{
		{Kind: faults.Straggler, At: sim.Time(2 * time.Minute), Duration: 40 * time.Second, NodeID: 4, Factor: 3},
		{Kind: faults.IngestSpike, At: sim.Time(3 * time.Minute), Duration: 30 * time.Second, Factor: 1.5},
		{Kind: faults.TaskFailures, At: sim.Time(4 * time.Minute), Duration: 30 * time.Second, Prob: 0.4},
	}
}

// contractSpace is the widened action space the conformance sweep tunes
// over — the logreg band's peak rate, matching experiments.ZooSpace.
func contractSpace() core.ConfigSpace {
	return core.WidenedSpace(engine.DefaultBounds(), 13000)
}

// contractJob builds one conformance job for a controller.
func contractJob(ctl string, seed uint64, space *core.ConfigSpace) Job {
	return Job{
		Workload:   "logreg",
		Controller: ctl,
		Seed:       seed,
		Horizon:    Duration(8 * time.Minute),
		Warmup:     0.5,
		Trace:      TraceSpec{Kind: "band", Period: Duration(5 * time.Second)},
		Plan:       NamedPlan{Name: "chaos", Faults: contractPlan()},
		Space:      space,
	}
}

// TestControllerContractManifestInvariance runs every registered controller
// over the widened space under the chaos plan at parallelism 1 and 8 and
// requires byte-identical manifests and aggregates — the cross-controller
// determinism contract.
func TestControllerContractManifestInvariance(t *testing.T) {
	space := contractSpace()
	spec := Spec{
		Name:        "controller-contract",
		Seeds:       []uint64{1, 2},
		Workloads:   []string{"logreg"},
		Controllers: ControllerNames(),
		Horizon:     Duration(8 * time.Minute),
		Warmup:      0.5,
		Plans:       []NamedPlan{{Name: "chaos", Faults: contractPlan()}},
		Space:       &space,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	serial, err := Run(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	m1, a1 := encode(t, serial)
	m8, a8 := encode(t, parallel)
	if !bytes.Equal(m1, m8) {
		t.Error("manifest differs between parallelism 1 and 8")
	}
	if !bytes.Equal(a1, a8) {
		t.Error("aggregates differ between parallelism 1 and 8")
	}
	// Every registered controller actually ran and produced batches.
	batches := map[string]int{}
	for _, rec := range serial.Manifest.Jobs {
		batches[rec.Job.Controller] += rec.Summary.Batches
	}
	for _, name := range ControllerNames() {
		if batches[name] == 0 {
			t.Errorf("controller %s produced no batches", name)
		}
	}
}

// TestControllerContractBounds attaches a batch listener to one observed
// run per controller and requires every batch's configuration to stay
// inside the space's engine bounds. For the space-aware tuners the
// engine-side knobs must also land inside their declared axes at run end.
func TestControllerContractBounds(t *testing.T) {
	space := contractSpace()
	bounds := space.EngineBounds()
	for _, info := range Controllers() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			violations := 0
			var bad engine.Config
			sum, det, err := ExecuteObserved(contractJob(info.Name, 1, &space), Observe{
				Attach: func(eng *engine.Engine) error {
					eng.AddListener(engine.ListenerFunc(func(bs engine.BatchStats) {
						if !bounds.Contains(bs.Config) {
							violations++
							bad = bs.Config
						}
					}))
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if violations > 0 {
				t.Errorf("%d batches outside engine bounds, e.g. %+v", violations, bad)
			}
			if sum.Batches == 0 {
				t.Fatal("run produced no batches")
			}
			if info.Name != ControllerGP && info.Name != ControllerRL {
				return
			}
			// Space-aware tuners drive the extra knobs through space.Apply,
			// so the final engine state must sit inside the declared axes.
			eng := det.Engine
			if a, ok := space.Axis(core.ParamIngestCap); ok {
				if cap := eng.IngestCap(); cap < a.Min-1e-9 || cap > a.Max+1e-9 {
					t.Errorf("ingest cap %v outside axis [%v, %v]", cap, a.Min, a.Max)
				}
			}
			if a, ok := space.Axis(core.ParamRetryBudget); ok {
				if r := eng.TaskMaxFailures(); float64(r) < a.Min-1e-9 || float64(r) > a.Max+1e-9 {
					t.Errorf("retry budget %d outside axis [%v, %v]", r, a.Min, a.Max)
				}
			}
			if a, ok := space.Axis(core.ParamSpecThreshold); ok {
				if m := eng.SpeculativeMultiplier(); m < a.Min-1e-9 || m > a.Max+1e-9 {
					t.Errorf("speculation threshold %v outside axis [%v, %v]", m, a.Min, a.Max)
				}
			}
		})
	}
}

// TestControllerContractNoReconfigDuringFaults traces one run per
// failure-aware controller and requires that no reconfigure instant lands
// strictly inside a fault window. Controllers whose registry entry opts in
// (ReconfiguresDuringFaults) are exempt by design.
func TestControllerContractNoReconfigDuringFaults(t *testing.T) {
	space := contractSpace()
	plan := contractPlan()
	for _, info := range Controllers() {
		info := info
		if info.ReconfiguresDuringFaults {
			continue
		}
		t.Run(info.Name, func(t *testing.T) {
			_, det, err := ExecuteObserved(contractJob(info.Name, 1, &space), Observe{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := det.Tracer.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []struct {
					Name string `json:"name"`
					Ph   string `json:"ph"`
					Ts   int64  `json:"ts"` // microseconds of virtual time
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatal(err)
			}
			reconfigs := 0
			for _, ev := range doc.TraceEvents {
				if ev.Name != "reconfigure" || ev.Ph != "i" {
					continue
				}
				reconfigs++
				at := sim.Time(ev.Ts * int64(time.Microsecond))
				for _, f := range plan {
					if at > f.At && at < f.End() {
						t.Errorf("reconfigure at %v inside %v fault window [%v, %v]",
							time.Duration(at), f.Kind, time.Duration(f.At), time.Duration(f.End()))
					}
				}
			}
			if info.Name != ControllerStatic && reconfigs == 0 {
				t.Errorf("tuned controller %s never reconfigured", info.Name)
			}
		})
	}
}
