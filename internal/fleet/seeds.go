package fleet

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSeeds expands a seed-list expression — comma-separated values and
// inclusive lo-hi ranges, e.g. "1,2,5-8" — into the explicit seed slice
// [1 2 5 6 7 8]. It is the one grammar for replication counts across the
// CLIs (nostop-fleet -seeds) and scenario specs ("seeds": "1-5").
func ParseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseUint(lo, 10, 64)
			b, err2 := strconv.ParseUint(hi, 10, 64)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("fleet: bad seed range %q", part)
			}
			if b-a > 1<<20 {
				return nil, fmt.Errorf("fleet: seed range %q is implausibly large", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: bad seed %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty seed list %q", s)
	}
	return out, nil
}
