package fleet

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"nostop/internal/metrics"
)

// Options controls one fleet run.
type Options struct {
	// Parallelism bounds concurrent jobs; <= 0 means runtime.NumCPU().
	// It affects wall time only, never results (see package doc).
	Parallelism int
	// Store, when non-nil, persists each completed job atomically.
	Store *Store
	// Resume skips jobs whose valid artifact is already in Store.
	Resume bool
	// Metrics, when non-nil, receives per-worker fleet counters
	// (fleet_worker_jobs_total{worker,outcome}). Worker attribution is
	// scheduling-dependent by nature, which is why these counters live
	// beside — never inside — the manifest.
	Metrics *metrics.Registry
	// Progress, when non-nil, is called after each job completes, from
	// worker goroutines but serialized under the runner's lock.
	Progress func(done, total int, rec *Record, cached bool)
}

// Report is the result of a fleet run.
type Report struct {
	// Manifest holds the per-run records in spec-expansion order.
	Manifest *Manifest
	// Aggregates holds the per-cell statistics over seeds.
	Aggregates []Aggregate
	// Executed counts jobs that actually ran; Cached counts jobs served
	// from the store. Executed + Cached == len(Manifest.Jobs).
	Executed int
	Cached   int
}

// Run expands the spec and executes every job on a bounded worker pool,
// returning the merged manifest and aggregates. Workers pull jobs from a
// shared queue (dynamic load balancing: a free worker steals whatever grid
// point is next), results land in a slot indexed by expansion order, and
// the merge happens only after the pool drains — so parallelism and
// completion order cannot influence a single output byte.
func Run(spec Spec, opts Options) (*Report, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if opts.Resume && opts.Store == nil {
		return nil, fmt.Errorf("fleet: resume requires a store")
	}

	records := make([]*Record, len(jobs))
	var mu sync.Mutex
	done, executed, cached := 0, 0, 0

	err = forEachWorker(len(jobs), opts.Parallelism, func(i, worker int) error {
		job := jobs[i]
		rec, hit := (*Record)(nil), false
		if opts.Resume {
			rec, hit = opts.Store.Load(job)
		}
		if !hit {
			sum, err := Execute(job)
			if err != nil {
				return fmt.Errorf("job %v: %v", job, err)
			}
			rec = &Record{Hash: job.Hash(), Job: job, Summary: sum}
			if opts.Store != nil {
				if err := opts.Store.Save(rec); err != nil {
					return err
				}
			}
		}
		records[i] = rec

		mu.Lock()
		defer mu.Unlock()
		done++
		if hit {
			cached++
		} else {
			executed++
		}
		countJob(opts.Metrics, worker, hit)
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), rec, hit)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: %v", err)
	}

	recs := make([]Record, len(records))
	for i, r := range records {
		recs[i] = *r
	}
	return &Report{
		Manifest:   &Manifest{Version: 1, Spec: spec.normalized(), Jobs: recs},
		Aggregates: Aggregates(recs),
		Executed:   executed,
		Cached:     cached,
	}, nil
}

// countJob bumps the per-worker outcome counter; nil-safe.
func countJob(reg *metrics.Registry, worker int, cached bool) {
	if reg == nil {
		return
	}
	outcome := "executed"
	if cached {
		outcome = "cached"
	}
	reg.Counter("fleet_worker_jobs_total",
		"fleet jobs completed, by worker and outcome (executed or cached)",
		metrics.L("worker", strconv.Itoa(worker)),
		metrics.L("outcome", outcome)).Inc()
}

// ParallelFor runs fn(i) for every i in [0, n) on at most parallelism
// workers (<= 0: runtime.NumCPU()) and returns the error of the smallest
// failing index, if any. It is the primitive internal/experiments uses to
// parallelize its sweeps: callers must keep each fn(i) a pure function of i
// writing only to index-owned state, which makes the result independent of
// parallelism and scheduling.
func ParallelFor(n, parallelism int, fn func(i int) error) error {
	return forEachWorker(n, parallelism, func(i, _ int) error { return fn(i) })
}

// forEachWorker is ParallelFor with the worker id exposed, for per-worker
// metrics. Errors are recorded per index and the smallest failing index's
// error is returned, keeping even the failure mode deterministic.
func forEachWorker(n, parallelism int, fn func(i, worker int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > n {
		parallelism = n
	}

	idx := make(chan int)
	errs := make([]error, n)
	var failed sync.Once
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				if err := fn(i, worker); err != nil {
					errs[i] = err
					failed.Do(func() { close(stop) })
				}
			}
		}(w)
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-stop:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
