package fleet

import (
	"fmt"
	"strings"
)

// ControllerInfo is one entry of the controller registry — the single
// source of truth for which tuners the fleet can attach. The fleet spec
// validator, the scenario spec validator, the observed-run dispatcher, the
// CLIs, and the cross-controller conformance suite all consult this table,
// so adding a controller here is the one required registration step (see
// docs/CONTROLLERS.md for the full recipe).
type ControllerInfo struct {
	// Name is the spec string selecting the controller.
	Name string
	// Summary is the one-line catalog description surfaced in docs and CLI
	// help.
	Summary string
	// ReconfiguresDuringFaults declares that the controller may change the
	// configuration while a fault window is active. The conformance suite
	// exempts such controllers from the no-reconfiguration-during-faults
	// contract; every other controller is held to it.
	ReconfiguresDuringFaults bool
}

// controllerRegistry lists every controller in its canonical order.
// back-pressure acts on every batch (its PID deliberately fights faults)
// and the BayesOpt baseline predates fault admission, so both opt into
// reconfiguring during fault windows; the rest are failure-aware.
var controllerRegistry = []ControllerInfo{
	{Name: ControllerStatic, Summary: "holds the initial configuration for the whole run"},
	{Name: ControllerNoStop, Summary: "the paper's failure-aware SPSA controller (§5)"},
	{Name: ControllerBackPressure, Summary: "Spark's PID back-pressure on the ingest cap", ReconfiguresDuringFaults: true},
	{Name: ControllerBayesOpt, Summary: "Bayesian-optimization baseline over the two paper parameters", ReconfiguresDuringFaults: true},
	{Name: ControllerGP, Summary: "uncertainty-aware GP tuner over the widened config space"},
	{Name: ControllerRL, Summary: "tabular Q-learning tuner over the widened config space"},
}

// Controllers returns the registry entries in canonical order.
func Controllers() []ControllerInfo {
	return append([]ControllerInfo(nil), controllerRegistry...)
}

// ControllerNames returns the registered controller names in canonical
// order.
func ControllerNames() []string {
	names := make([]string, len(controllerRegistry))
	for i, c := range controllerRegistry {
		names[i] = c.Name
	}
	return names
}

// KnownController reports whether name is a registered controller.
func KnownController(name string) bool {
	_, ok := LookupController(name)
	return ok
}

// LookupController returns the registry entry for name.
func LookupController(name string) (ControllerInfo, bool) {
	for _, c := range controllerRegistry {
		if c.Name == name {
			return c, true
		}
	}
	return ControllerInfo{}, false
}

// UnknownControllerError is the shared rejection for an unregistered
// controller name. Both the fleet spec validator and the scenario spec
// validator return exactly this error, so a typo fails with identical text
// whichever decoder sees it first.
func UnknownControllerError(name string) error {
	return fmt.Errorf("fleet: unknown controller %q (want %s)", name, strings.Join(ControllerNames(), ", "))
}
