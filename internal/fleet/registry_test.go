package fleet

import (
	"strings"
	"testing"
)

func TestRegistryCoversAllConstants(t *testing.T) {
	for _, name := range []string{ControllerStatic, ControllerNoStop, ControllerBackPressure,
		ControllerBayesOpt, ControllerGP, ControllerRL} {
		if !KnownController(name) {
			t.Errorf("constant %q not registered", name)
		}
		info, ok := LookupController(name)
		if !ok || info.Name != name {
			t.Errorf("LookupController(%q) = %+v, %v", name, info, ok)
		}
		if info.Summary == "" {
			t.Errorf("controller %q has no summary", name)
		}
	}
	if KnownController("pid") {
		t.Error("unregistered name accepted")
	}
	if _, ok := LookupController("pid"); ok {
		t.Error("LookupController found an unregistered name")
	}
	if got, want := len(ControllerNames()), len(Controllers()); got != want {
		t.Errorf("ControllerNames has %d entries, Controllers %d", got, want)
	}
}

func TestRegistryFaultOptIns(t *testing.T) {
	// Only the two pre-contract baselines may reconfigure during an active
	// fault window; every controller added since is failure-aware. Widening
	// this set is an explicit conformance decision, not a default.
	optIn := map[string]bool{ControllerBackPressure: true, ControllerBayesOpt: true}
	for _, info := range Controllers() {
		if info.ReconfiguresDuringFaults != optIn[info.Name] {
			t.Errorf("controller %s: ReconfiguresDuringFaults=%v, want %v",
				info.Name, info.ReconfiguresDuringFaults, optIn[info.Name])
		}
	}
}

func TestUnknownControllerErrorListsRegistry(t *testing.T) {
	err := UnknownControllerError("pid")
	if err == nil {
		t.Fatal("nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"pid"`) {
		t.Errorf("error %q does not name the offender", msg)
	}
	for _, name := range ControllerNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list %s", msg, name)
		}
	}
}
