package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFleetSpec feeds arbitrary bytes through the spec pipeline operators
// ride on: JSON decode, validate, expand, and manifest-bound re-encoding.
// Decoding must never panic; a spec that decodes must re-encode to a stable
// fixed point; a spec that expands must produce exactly the cross-product
// job count with well-formed, deterministic content hashes.
func FuzzFleetSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"seeds":[1,2],"workloads":["logreg"],"controllers":["nostop"]}`))
	f.Add([]byte(`{"seeds":[7],"workloads":["wordcount","linreg"],"controllers":["static","nostop"],"horizon":"10m","warmup":0.25}`))
	f.Add([]byte(`{"seeds":[1],"workloads":["logreg"],"controllers":["nostop"],"traces":[{"kind":"band","min":500,"max":1500,"period":"30s"}],"initials":[{"interval":"2s","executors":4}]}`))
	f.Add([]byte(`{"seeds":[1],"workloads":["nope"],"controllers":["nostop"]}`))
	f.Add([]byte(`{"seeds":[1],"workloads":["logreg"],"controllers":["nostop"],"horizon":-5}`))
	f.Add([]byte(`{"seeds":[1],"workloads":["logreg"],"controllers":["nostop"],"warmup":1.5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // malformed input is fine; it just must not panic
		}

		// Re-encoding must reach a fixed point: marshal → unmarshal →
		// marshal yields identical bytes, or manifests would drift.
		enc1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal of decoded spec failed: %v", err)
		}
		var spec2 Spec
		if err := json.Unmarshal(enc1, &spec2); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoding: %s", err, enc1)
		}
		enc2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}

		if err := spec.Validate(); err != nil {
			return // invalid specs are expected; they just must not panic
		}
		jobs, err := spec.Expand()
		if err != nil {
			t.Fatalf("Validate passed but Expand failed: %v", err)
		}
		n := spec.normalized()
		want := len(n.Seeds) * len(n.Workloads) * len(n.Controllers) *
			len(n.Traces) * len(n.Plans) * len(n.Initials)
		if len(jobs) != want {
			t.Fatalf("Expand produced %d jobs, cross product is %d", len(jobs), want)
		}
		for i, j := range jobs {
			h := j.Hash()
			if len(h) != 64 {
				t.Fatalf("job %d hash %q is not 64 hex chars", i, h)
			}
			if h != j.Hash() {
				t.Fatalf("job %d hash is not deterministic", i)
			}
		}
	})
}
