package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testSpec is a small but multi-axis sweep: two controllers over two seeds.
func testSpec() Spec {
	return Spec{
		Name:        "test",
		Seeds:       []uint64{1, 2},
		Workloads:   []string{"logreg"},
		Controllers: []string{ControllerStatic, ControllerNoStop},
		Horizon:     Duration(10 * time.Minute),
		Warmup:      0.5,
	}
}

// encode renders a report's manifest and aggregates for byte comparison.
func encode(t *testing.T, r *Report) (manifest, aggs []byte) {
	t.Helper()
	manifest, err := r.Manifest.Encode()
	if err != nil {
		t.Fatal(err)
	}
	aggs, err = EncodeAggregates(r.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	return manifest, aggs
}

func TestJobHashStability(t *testing.T) {
	jobs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("expanded %d jobs, want 4", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		h := j.Hash()
		if len(h) != 64 {
			t.Fatalf("hash %q is not a sha256 hex digest", h)
		}
		if h != j.Hash() {
			t.Fatal("hash not stable across calls")
		}
		if seen[h] {
			t.Fatalf("duplicate hash %s for distinct job %v", h, j)
		}
		seen[h] = true
	}
	a, b := jobs[0], jobs[0]
	b.Seed++
	if a.Hash() == b.Hash() {
		t.Fatal("seed change did not change the hash")
	}
	b = jobs[0]
	b.Horizon += Duration(time.Second)
	if a.Hash() == b.Hash() {
		t.Fatal("horizon change did not change the hash")
	}
}

// TestParallelismInvariance is the headline determinism regression: the same
// spec run at parallelism 1 and parallelism 8 must produce byte-identical
// manifests and aggregate JSON.
func TestParallelismInvariance(t *testing.T) {
	spec := testSpec()
	r1, err := Run(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(spec, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	m1, a1 := encode(t, r1)
	m8, a8 := encode(t, r8)
	if !bytes.Equal(m1, m8) {
		t.Errorf("manifests differ between -j 1 and -j 8\n-j1: %d bytes\n-j8: %d bytes", len(m1), len(m8))
	}
	if !bytes.Equal(a1, a8) {
		t.Errorf("aggregates differ between -j 1 and -j 8:\n%s\nvs\n%s", a1, a8)
	}
	if r1.Executed != len(r1.Manifest.Jobs) || r1.Cached != 0 {
		t.Errorf("store-less run reported executed=%d cached=%d", r1.Executed, r1.Cached)
	}
}

// TestResumeConvergence emulates a sweep killed partway — only a subset of
// artifacts on disk — and asserts the resumed full sweep skips exactly the
// cached jobs and converges to the manifest a fresh uninterrupted run
// produces.
func TestResumeConvergence(t *testing.T) {
	full := testSpec()
	full.Seeds = []uint64{1, 2, 3}

	partial := full
	partial.Seeds = []uint64{1, 2} // the jobs that "survived the kill"

	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(partial, Options{Parallelism: 4, Store: store}); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(full, Options{Parallelism: 4, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	wantCached := len(full.Workloads) * len(full.Controllers) * len(partial.Seeds)
	if resumed.Cached != wantCached {
		t.Errorf("resume cached %d jobs, want %d", resumed.Cached, wantCached)
	}
	if resumed.Executed != len(resumed.Manifest.Jobs)-wantCached {
		t.Errorf("resume executed %d jobs, want %d", resumed.Executed, len(resumed.Manifest.Jobs)-wantCached)
	}

	fresh, err := Run(full, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	rm, ra := encode(t, resumed)
	fm, fa := encode(t, fresh)
	if !bytes.Equal(rm, fm) {
		t.Error("resumed manifest differs from a fresh uninterrupted run")
	}
	if !bytes.Equal(ra, fa) {
		t.Error("resumed aggregates differ from a fresh uninterrupted run")
	}

	// A second resume finds everything cached and executes nothing.
	again, err := Run(full, Options{Parallelism: 4, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Cached != len(again.Manifest.Jobs) {
		t.Errorf("second resume executed=%d cached=%d, want 0/%d",
			again.Executed, again.Cached, len(again.Manifest.Jobs))
	}
}

// TestResumeRejectsCorruptArtifact: a truncated or tampered artifact must be
// re-executed, not trusted.
func TestResumeRejectsCorruptArtifact(t *testing.T) {
	spec := testSpec()
	spec.Controllers = []string{ControllerStatic}

	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Parallelism: 2, Store: store}); err != nil {
		t.Fatal(err)
	}

	runs, err := filepath.Glob(filepath.Join(dir, "runs", "*.json"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no artifacts written (err=%v)", err)
	}
	if err := os.WriteFile(runs[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(spec, Options{Parallelism: 2, Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 1 || resumed.Cached != len(resumed.Manifest.Jobs)-1 {
		t.Errorf("corrupt artifact: executed=%d cached=%d, want 1/%d",
			resumed.Executed, resumed.Cached, len(resumed.Manifest.Jobs)-1)
	}
}

// TestStoreRejectsWrongHash: an artifact valid in itself but filed under a
// different job's hash must be a miss.
func TestStoreRejectsWrongHash(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Hash: jobs[0].Hash(), Job: jobs[0], Summary: Summary{Batches: 1}}
	if err := store.Save(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(jobs[0]); !ok {
		t.Fatal("saved record not loadable")
	}
	if _, ok := store.Load(jobs[1]); ok {
		t.Fatal("record for job 0 answered a lookup for job 1")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	const n = 100
	var mu sync.Mutex
	hit := make([]int, n)
	if err := ParallelFor(n, 7, func(i int) error {
		mu.Lock()
		hit[i]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

// TestParallelForDeterministicError: with several failing indices, the error
// of the smallest one is returned regardless of scheduling.
func TestParallelForDeterministicError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("index %d failed", i) }
	for trial := 0; trial < 5; trial++ {
		err := ParallelFor(50, 8, func(i int) error {
			if i == 13 || i == 7 || i == 42 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "index 7") {
			t.Fatalf("trial %d: got %v, want the index-7 error", trial, err)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Seeds: []uint64{1}},
		{Seeds: []uint64{1}, Workloads: []string{"nope"}, Controllers: []string{"static"}},
		{Seeds: []uint64{1}, Workloads: []string{"logreg"}, Controllers: []string{"magic"}},
		{Seeds: []uint64{1}, Workloads: []string{"logreg"}, Controllers: []string{"static"}, Warmup: 1.5},
		{Seeds: []uint64{1}, Workloads: []string{"logreg"}, Controllers: []string{"static"},
			Traces: []TraceSpec{{Kind: "sine"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated but should not have", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("test spec rejected: %v", err)
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	for _, d := range []Duration{0, Duration(5 * time.Second), Duration(40 * time.Minute)} {
		enc, err := d.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Duration
		if err := back.UnmarshalJSON(enc); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Errorf("round trip %v -> %s -> %v", d, enc, back)
		}
	}
	var fromInt Duration
	if err := fromInt.UnmarshalJSON([]byte("300000000000")); err != nil {
		t.Fatal(err)
	}
	if fromInt.D() != 5*time.Minute {
		t.Errorf("integer nanoseconds parsed as %v, want 5m", fromInt)
	}
	var bad Duration
	if err := bad.UnmarshalJSON([]byte(`"not-a-duration"`)); err == nil {
		t.Error("bad duration string accepted")
	}
}

func TestRunResumeWithoutStore(t *testing.T) {
	_, err := Run(testSpec(), Options{Resume: true})
	if err == nil {
		t.Fatal("resume without a store should fail")
	}
	if !strings.Contains(err.Error(), "resume requires a store") {
		t.Errorf("unexpected error: %v", err)
	}
}
