package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"nostop/internal/tenant"
)

// mixSpec is a fast two-mix sweep over two seeds: four multi-tenant jobs.
func mixSpec() Spec {
	mk := func(name, allocator string) tenant.MixSpec {
		return tenant.MixSpec{
			Name:         name,
			Nodes:        4,
			CoresPerNode: 2,
			Partitions:   8,
			Allocator:    allocator,
			Horizon:      tenant.Duration(5 * time.Minute),
			Tenants: []tenant.TenantSpec{
				{
					Name: "a", Workload: "wordcount", Controller: "static",
					Priority: 1, Trace: tenant.TraceSpec{Kind: "constant", Rate: 2000},
					InitialExecutors: 4, BatchInterval: tenant.Duration(8 * time.Second),
				},
				{
					Name: "b", Workload: "linreg", Controller: "nostop",
					Trace:            tenant.TraceSpec{Kind: "uniform", Min: 1000, Max: 3000},
					InitialExecutors: 4, BatchInterval: tenant.Duration(8 * time.Second),
				},
			},
		}
	}
	return Spec{
		Name:  "mix-test",
		Seeds: []uint64{1, 2},
		Mixes: []tenant.MixSpec{mk("prio", tenant.AllocPriority), mk("fair", tenant.AllocFairShare)},
	}
}

// A pure mix sweep (no single-app axes at all) must expand to one job per
// mix × seed, each carrying the mix and hashing uniquely and stably.
func TestMixExpandAndHash(t *testing.T) {
	spec := mixSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("expanded %d jobs, want 4 (2 mixes × 2 seeds)", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j.Mix == nil {
			t.Fatalf("mix job %v lost its mix", j)
		}
		if j.Workload != "tenants" {
			t.Errorf("mix job workload = %q, want tenants", j.Workload)
		}
		if cell := j.Cell(); cell.Mix != j.Mix.Name {
			t.Errorf("cell mix = %q, want %q", cell.Mix, j.Mix.Name)
		}
		h := j.Hash()
		if h != j.Hash() {
			t.Fatal("mix job hash unstable across calls")
		}
		if seen[h] {
			t.Fatalf("duplicate hash for distinct mix job %v", j)
		}
		seen[h] = true
	}
	// The mix content is part of the hash: changing a tenant changes the key.
	a := jobs[0]
	mut := *a.Mix
	mut.Tenants = append([]tenant.TenantSpec(nil), mut.Tenants...)
	mut.Tenants[0].InitialExecutors++
	b := a
	b.Mix = &mut
	if a.Hash() == b.Hash() {
		t.Fatal("tenant change did not change the mix job hash")
	}
}

// Single-app jobs must hash exactly as they did before the mix axis existed:
// the omitempty mix field may not leak into their hash input.
func TestMixFieldAbsentFromSingleAppHash(t *testing.T) {
	jobs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("mix")) {
		t.Fatalf("single-app job hash input mentions mix: %s", data)
	}
}

// The determinism headline for the tenant-mix axis: -j 1 and -j 8 sweeps
// must produce byte-identical manifests and aggregates.
func TestMixParallelismInvariance(t *testing.T) {
	spec := mixSpec()
	r1, err := Run(spec, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(spec, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	m1, a1 := encode(t, r1)
	m8, a8 := encode(t, r8)
	if !bytes.Equal(m1, m8) {
		t.Errorf("mix manifests differ between -j 1 and -j 8")
	}
	if !bytes.Equal(a1, a8) {
		t.Errorf("mix aggregates differ between -j 1 and -j 8:\n%s\nvs\n%s", a1, a8)
	}
	// Per-tenant breakdowns must have survived into the summaries.
	for _, j := range r1.Manifest.Jobs {
		if len(j.Summary.Tenants) != 2 {
			t.Fatalf("mix job summary has %d tenant reports, want 2", len(j.Summary.Tenants))
		}
	}
}

// Mixes and single-app axes are mutually composable: a spec with both
// expands to the union, and validation still rejects broken mixes.
func TestMixSpecValidation(t *testing.T) {
	spec := mixSpec()
	spec.Mixes[0].Allocator = "lottery"
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown allocator in a mix passed Validate")
	}
	empty := Spec{Name: "none", Seeds: []uint64{1}}
	if err := empty.Validate(); err == nil {
		t.Fatal("spec with no workloads and no mixes passed Validate")
	}
}
