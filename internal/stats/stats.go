// Package stats provides the statistical primitives the simulator and the
// NoStop controller rely on: online (Welford) accumulators, fixed-capacity
// rolling windows, percentile summaries, and timestamped series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count/mean/variance incrementally using Welford's
// algorithm, which is numerically stable for long streams. The zero value is
// ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean, or 0 with no observations.
func (o *Online) Mean() float64 { return o.mean }

// Var returns the population variance (divide by n), or 0 for n < 2.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// SampleVar returns the sample variance (divide by n-1), or 0 for n < 2.
func (o *Online) SampleVar() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the population standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// SampleStd returns the sample standard deviation.
func (o *Online) SampleStd() float64 { return math.Sqrt(o.SampleVar()) }

// Min returns the smallest observation, or 0 with no observations.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 with no observations.
func (o *Online) Max() float64 { return o.max }

// Reset discards all observations.
func (o *Online) Reset() { *o = Online{} }

// Merge combines another accumulator into this one (parallel Welford merge).
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	mean := o.mean + d*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	min := o.min
	if other.min < min {
		min = other.min
	}
	max := o.max
	if other.max > max {
		max = other.max
	}
	*o = Online{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Window is a fixed-capacity FIFO of float64 with O(1) mean/std queries.
// When full, adding evicts the oldest value. NoStop uses windows for its
// pause condition (std of the N best objectives) and its input-rate change
// detector (std of recent rates).
type Window struct {
	buf   []float64
	head  int
	count int
	sum   float64
	sumsq float64
}

// NewWindow returns a window holding at most capacity values.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: window capacity %d must be positive", capacity))
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add appends x, evicting the oldest value when full.
func (w *Window) Add(x float64) {
	if w.count == len(w.buf) {
		old := w.buf[w.head]
		w.sum -= old
		w.sumsq -= old * old
	} else {
		w.count++
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
	w.sum += x
	w.sumsq += x * x
}

// Len returns the number of stored values.
func (w *Window) Len() int { return w.count }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds capacity values.
func (w *Window) Full() bool { return w.count == len(w.buf) }

// Mean returns the mean of stored values, or 0 when empty.
func (w *Window) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}

// Std returns the population standard deviation of stored values.
func (w *Window) Std() float64 {
	if w.count < 2 {
		return 0
	}
	m := w.Mean()
	v := w.sumsq/float64(w.count) - m*m
	if v < 0 { // guard against tiny negative from float cancellation
		v = 0
	}
	return math.Sqrt(v)
}

// Values returns the stored values oldest-first.
func (w *Window) Values() []float64 {
	out := make([]float64, 0, w.count)
	start := w.head - w.count
	for i := 0; i < w.count; i++ {
		out = append(out, w.buf[((start+i)%len(w.buf)+len(w.buf))%len(w.buf)])
	}
	return out
}

// Reset discards all stored values, keeping capacity.
func (w *Window) Reset() {
	w.head, w.count, w.sum, w.sumsq = 0, 0, 0, 0
}

// Summary describes a sample with the statistics the experiment harness
// reports: count, mean, std, min/median/p95/p99/max.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	P50  float64
	P95  float64
	P99  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty slice yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return Summary{
		N:    len(xs),
		Mean: o.Mean(),
		Std:  o.Std(),
		Min:  sorted[0],
		P50:  Percentile(sorted, 0.50),
		P95:  Percentile(sorted, 0.95),
		P99:  Percentile(sorted, 0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// slice using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.Std()
}

// t95 holds two-sided 97.5% Student t critical values for 1..30 degrees of
// freedom; beyond 30 the normal approximation (1.96) is within 2%.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval, using Student's t critical value for the sample's
// degrees of freedom (replicated experiment runs are small samples, where
// the normal approximation understates the interval). Fewer than two
// observations yield a zero half-width.
func MeanCI95(xs []float64) (mean, half float64) {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() < 2 {
		return o.Mean(), 0
	}
	df := o.N() - 1
	t := 1.960
	if df <= len(t95) {
		t = t95[df-1]
	}
	return o.Mean(), t * o.SampleStd() / math.Sqrt(float64(o.N()))
}

// Point is one timestamped observation in a Series. T is virtual seconds
// from the simulation epoch.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series used to record experiment traces
// (e.g. batch interval per optimization iteration for Fig 6).
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point.
func (s *Series) Append(t, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the V column.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Last returns the final point; ok is false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Downsample returns at most n points sampled uniformly across the series,
// always keeping the first and last. Useful for rendering long traces.
func (s *Series) Downsample(n int) []Point {
	if n <= 0 || len(s.Points) <= n {
		return append([]Point(nil), s.Points...)
	}
	out := make([]Point, 0, n)
	step := float64(len(s.Points)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, s.Points[int(math.Round(float64(i)*step))])
	}
	return out
}
