package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nostop/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestOnlineBasic(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N=%d", o.N())
	}
	if !almostEqual(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean=%v", o.Mean())
	}
	if !almostEqual(o.Std(), 2, 1e-12) {
		t.Fatalf("Std=%v", o.Std())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min=%v Max=%v", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Std() != 0 || o.Var() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	o.Add(42)
	if o.Mean() != 42 || o.Std() != 0 || o.SampleVar() != 0 {
		t.Fatalf("single observation: mean=%v std=%v", o.Mean(), o.Std())
	}
}

func TestOnlineSampleVar(t *testing.T) {
	var o Online
	for _, x := range []float64{1, 2, 3, 4, 5} {
		o.Add(x)
	}
	if !almostEqual(o.SampleVar(), 2.5, 1e-12) {
		t.Fatalf("SampleVar=%v, want 2.5", o.SampleVar())
	}
}

func TestOnlineReset(t *testing.T) {
	var o Online
	o.Add(1)
	o.Add(2)
	o.Reset()
	if o.N() != 0 || o.Mean() != 0 {
		t.Fatal("Reset did not clear accumulator")
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	r := rng.New(5).Rand()
	var all, a, b Online
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 1
		all.Add(x)
		if i < 400 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N=%d want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Fatalf("merged mean=%v want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Var(), all.Var(), 1e-9) {
		t.Fatalf("merged var=%v want %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestOnlineMergeEmptyCases(t *testing.T) {
	var a, b Online
	a.Merge(&b) // both empty
	if a.N() != 0 {
		t.Fatal("merging empties produced observations")
	}
	b.Add(3)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Add(x)
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("Len=%d Full=%v", w.Len(), w.Full())
	}
	vals := w.Values()
	want := []float64{3, 4, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values=%v want %v", vals, want)
		}
	}
	if !almostEqual(w.Mean(), 4, 1e-12) {
		t.Fatalf("Mean=%v", w.Mean())
	}
}

func TestWindowStdMatchesBatch(t *testing.T) {
	w := NewWindow(10)
	r := rng.New(8).Rand()
	for i := 0; i < 100; i++ {
		w.Add(r.Float64() * 50)
	}
	got := w.Std()
	want := Std(w.Values())
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("window Std=%v batch Std=%v", got, want)
	}
}

func TestWindowEmptyAndReset(t *testing.T) {
	w := NewWindow(4)
	if w.Mean() != 0 || w.Std() != 0 || w.Len() != 0 {
		t.Fatal("empty window not zero")
	}
	w.Add(2)
	if w.Std() != 0 {
		t.Fatal("single-element std not zero")
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatal("Reset did not clear window")
	}
	if w.Cap() != 4 {
		t.Fatal("Reset changed capacity")
	}
}

func TestWindowBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestWindowValuesOrderProperty(t *testing.T) {
	// Property: after adding any sequence, Values() equals the last
	// min(len, cap) elements in order.
	f := func(raw []float64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		w := NewWindow(capacity)
		for _, x := range raw {
			w.Add(x)
		}
		vals := w.Values()
		n := len(raw)
		if n > capacity {
			n = capacity
		}
		if len(vals) != n {
			return false
		}
		tail := raw[len(raw)-n:]
		for i := range tail {
			if vals[i] != tail[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng.New(11).Rand()}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 10}, {0.5, 5.5}, {-0.5, 1}, {1.5, 10},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%.2f)=%v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile of empty slice not 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almostEqual(s.Mean, 3, 1e-12) || !almostEqual(s.P50, 3, 1e-12) {
		t.Fatalf("Summary=%+v", s)
	}
	zero := Summarize(nil)
	if zero.N != 0 || zero.Mean != 0 {
		t.Fatal("empty Summarize not zero")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Summarize mutated input: %v", in)
	}
}

func TestMeanStdHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
	if !almostEqual(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Error("Std wrong")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	if _, ok := s.Last(); ok {
		t.Error("empty series has Last")
	}
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len=%d", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.T != 4 || last.V != 16 {
		t.Fatalf("Last=%+v ok=%v", last, ok)
	}
	vals := s.Values()
	if len(vals) != 5 || vals[2] != 4 {
		t.Fatalf("Values=%v", vals)
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i))
	}
	ds := s.Downsample(5)
	if len(ds) != 5 {
		t.Fatalf("Downsample len=%d", len(ds))
	}
	if ds[0].T != 0 || ds[4].T != 99 {
		t.Fatalf("Downsample endpoints: %+v", ds)
	}
	// Short series returned as-is.
	short := s.Downsample(1000)
	if len(short) != 100 {
		t.Fatalf("Downsample over-length len=%d", len(short))
	}
	// Returned slice must be a copy.
	short[0].V = -1
	if s.Points[0].V == -1 {
		t.Fatal("Downsample aliases series storage")
	}
}

func TestWelfordStability(t *testing.T) {
	// Large offset: naive sum-of-squares would catastrophically cancel.
	var o Online
	base := 1e9
	for _, x := range []float64{4, 7, 13, 16} {
		o.Add(base + x)
	}
	if !almostEqual(o.Mean(), base+10, 1e-3) {
		t.Fatalf("Mean=%v", o.Mean())
	}
	if !almostEqual(o.SampleVar(), 30, 1e-3) {
		t.Fatalf("SampleVar=%v want 30", o.SampleVar())
	}
}
