package service

import (
	"strings"
	"testing"
	"time"

	"nostop/internal/faults"
	"nostop/internal/sim"
)

// A Cluster is a faults.ProcTarget without adapters — the chaos injector
// drives it directly.
var _ faults.ProcTarget = (*Cluster)(nil)

// TestProcInjectorDrivesCluster runs the sim soak with the chaos expressed
// as a faults.ProcPlan instead of ad-hoc clock callbacks: the scripted
// kill/restart and link-outage windows produce the same degradation and
// recovery transitions, and the injector timeline records them.
func TestProcInjectorDrivesCluster(t *testing.T) {
	c := newSoakCluster(t, 42)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	plan := faults.ProcPlan{
		{Kind: faults.PeerKill, At: sim.Time(60 * time.Second), Duration: 30 * time.Second, Peer: PeerBroker},
		{Kind: faults.LinkRefuse, At: sim.Time(150 * time.Second), Duration: 20 * time.Second, From: PeerController, To: PeerEngine},
	}
	inj, err := faults.AttachProc(c, faults.ClockSchedule{Clock: c.Clock()}, plan)
	if err != nil {
		t.Fatal(err)
	}
	inj.Observe(c.Registry(), nil)
	c.RunSim(300 * time.Second)
	c.Stop()

	snaps := c.Snapshots()
	eng := snapshotByRole(t, snaps, PeerEngine)
	ctl := snapshotByRole(t, snaps, PeerController)
	if eng.DegradedEnters < 1 || eng.DegradedExits < 1 || eng.Degraded {
		t.Fatalf("engine degradation transitions: enters=%d exits=%d degraded=%v",
			eng.DegradedEnters, eng.DegradedExits, eng.Degraded)
	}
	if ctl.DegradedEnters < 1 || ctl.Frozen {
		t.Fatalf("controller freeze transitions: enters=%d frozen=%v", ctl.DegradedEnters, ctl.Frozen)
	}
	if eng.LostRecords != 0 {
		t.Fatalf("%d records lost", eng.LostRecords)
	}
	if inj.Injected() != len(plan) {
		t.Fatalf("injector applied %d windows, want %d:\n%s", inj.Injected(), len(plan), inj)
	}
	if v := Violations(snaps, 50, true); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	if !strings.Contains(c.Registry().String(), `nostop_proc_faults_injected_total{kind="peer-kill"} 1`) {
		t.Error("proc chaos counters missing from exposition")
	}
}
