package service

import (
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/workload"
)

// TestWallSoakSmoke runs the trio as real HTTP servers on 127.0.0.1 with a
// live broker kill/restart, for a few wall seconds at high speedup. It
// asserts the same recovery invariants as the sim soak — this is the
// in-tree slice of what cmd/nostop-serve's CI soak does at larger scale.
func TestWallSoakSmoke(t *testing.T) {
	wl, err := workload.New("logreg")
	if err != nil {
		t.Fatal(err)
	}
	trace := ratetrace.NewUniformBand(600, 1200, 20*time.Second, rng.New(5).Split("trace"))
	c, err := NewCluster(ClusterConfig{
		Mode:     ModeWall,
		Seed:     5,
		Workload: wl,
		Trace:    trace,
		Initial:  engine.Config{BatchInterval: 5 * time.Second, Executors: 8},
		Speedup:  20,
		MaxFetch: 5000,
		RPC: ClientOptions{
			Timeout:     250 * time.Millisecond,
			MaxAttempts: 2,
			BackoffBase: 50 * time.Millisecond,
			BackoffMax:  200 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  500 * time.Millisecond,
		},
		WallTraceEvents: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1200 * time.Millisecond)
	if err := c.KillPeer(PeerBroker); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := c.RestartPeer(PeerBroker); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2300 * time.Millisecond)
	c.Stop()

	snaps := c.Snapshots()
	eng := snapshotByRole(t, snaps, PeerEngine)
	if eng.DegradedEnters < 1 {
		t.Fatalf("engine never degraded across a %v broker outage", 1500*time.Millisecond)
	}
	if eng.DegradedExits < 1 || eng.Degraded {
		t.Fatalf("engine did not recover: exits=%d degraded=%v", eng.DegradedExits, eng.Degraded)
	}
	if eng.LostRecords != 0 {
		t.Fatalf("%d records lost across broker restart", eng.LostRecords)
	}
	if eng.Batches == 0 {
		t.Fatal("engine cut no batches")
	}
	if v := Violations(snaps, 100, true); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	// The service-layer wall tracer must have captured the transitions.
	if tr := c.WallTracer(); tr == nil || tr.Len() == 0 {
		t.Fatal("wall trace sink captured no events")
	}
}
