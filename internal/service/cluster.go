package service

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// Mode selects how the trio is supervised.
type Mode int

const (
	// ModeSim shares one sim.Clock and delivers RPCs on the event loop —
	// fully deterministic, replayable, zero goroutines.
	ModeSim Mode = iota
	// ModeWall gives each component its own paced clock, mutex, and real
	// HTTP server on 127.0.0.1.
	ModeWall
)

// component is the contract every service implementation satisfies so the
// supervisor can kill and restart incarnations uniformly.
type component interface {
	Handler() http.Handler
	Start() error
	Stop()
	Snapshot() InvariantSnapshot
}

// ClusterConfig assembles a broker/engine/controller trio.
type ClusterConfig struct {
	Mode Mode
	// Seed roots every stream: network latency, RPC jitter, engine noise,
	// SPSA perturbations. Same seed + ModeSim ⇒ byte-identical runs.
	Seed uint64
	// Workload and Trace drive the system (both required).
	Workload workload.Workload
	Trace    ratetrace.Trace
	// Initial/Bounds configure the engine; Core the SPSA controller
	// (its Seed/Metrics/Tracer fields are supervisor-managed).
	Initial engine.Config
	Bounds  engine.Bounds
	Core    core.Options
	// Service-loop periods (virtual time; zeros pick component defaults).
	FetchInterval  time.Duration
	CommitInterval time.Duration
	PollInterval   time.Duration
	// MaxFetch is the engine's per-fetch shedding budget (0: default).
	MaxFetch int64
	// RPC tunes every client; Jitter/Metrics/Trace/Pid are
	// supervisor-managed per link.
	RPC ClientOptions
	// Speedup paces wall-mode virtual clocks (default 20× real time).
	Speedup float64
	// Addrs maps peer name to a wall-mode listen address; empty entries
	// use 127.0.0.1:0.
	Addrs map[string]string
	// Clock supplies the shared sim-mode clock (nil: a fresh one).
	Clock *sim.Clock
	// Metrics receives everything (nil: a fresh registry).
	Metrics *metrics.Registry
	// Tracer records the full engine+controller+service timeline in sim
	// mode (ignored in wall mode — it is not goroutine-safe).
	Tracer *tracing.Tracer
	// WallTraceEvents, when positive, enables a wall-mode service-layer
	// trace (RPC/breaker/degradation/chaos instants) with this capacity.
	WallTraceEvents int
}

// Cluster supervises the trio: construction, kill/restart chaos (it is the
// process-level fault target internal/faults drives), link faults, and
// invariant collection.
type Cluster struct {
	cfg   ClusterConfig
	clock *sim.Clock // sim mode only
	reg   *metrics.Registry
	sink  *traceSink
	root  *rng.Stream

	simnet  *SimNet
	wallnet *WallNet

	procs map[string]*proc
	order []string

	started bool
	// chaosMu serialises wall-mode supervisor operations (chaos injector
	// goroutine vs shutdown).
	chaosMu sync.Mutex
	cKills    *metrics.Counter
	cRestarts *metrics.Counter
}

// proc is one supervised component slot across incarnations.
type proc struct {
	c     *Cluster
	name  string
	pid   int
	mu    sync.Mutex // wall mode: guards comp state, clock, timers
	clock *sim.Clock
	tb    Timebase
	comp  component // guarded by mu
	epoch int
	down  bool // guarded by mu

	srv  *http.Server
	addr string // concrete listen address, stable across restarts
	pace *pacer
}

// NewCluster validates the config and builds the supervisor (components are
// created by Start).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Workload == nil || cfg.Trace == nil {
		return nil, fmt.Errorf("service: cluster needs a workload and a rate trace")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 20
	}
	c := &Cluster{cfg: cfg, reg: cfg.Metrics, root: rng.New(cfg.Seed),
		procs: make(map[string]*proc), order: []string{PeerBroker, PeerEngine, PeerController}}
	if c.reg == nil {
		c.reg = metrics.NewRegistry()
	}
	c.cKills = c.reg.Counter("nostop_service_chaos_kills_total", "Components killed by chaos")
	c.cRestarts = c.reg.Counter("nostop_service_chaos_restarts_total", "Components restarted by chaos")
	switch cfg.Mode {
	case ModeSim:
		c.clock = cfg.Clock
		if c.clock == nil {
			c.clock = sim.NewClock()
		}
		c.simnet = NewSimNet(c.clock, c.root.Split("net"))
		c.sink = newSimTraceSink(cfg.Tracer)
	case ModeWall:
		c.wallnet = NewWallNet(c.root.Split("net"), cfg.RPC.Timeout+2*time.Second)
		if cfg.WallTraceEvents > 0 {
			c.sink = newWallTraceSink(cfg.WallTraceEvents, cfg.Speedup)
		}
	default:
		return nil, fmt.Errorf("service: unknown mode %d", cfg.Mode)
	}
	c.sink.nameLanes()
	pids := map[string]int{PeerBroker: PidServiceBroker, PeerEngine: PidServiceEngine, PeerController: PidServiceController}
	for _, name := range c.order {
		p := &proc{c: c, name: name, pid: pids[name]}
		if cfg.Mode == ModeSim {
			p.clock = c.clock
			p.tb = SimTimebase{Clock: c.clock}
		} else {
			p.clock = sim.NewClock()
			p.tb = NewWallTimebase(&p.mu)
		}
		c.procs[name] = p
	}
	return c, nil
}

// Clock returns the shared sim-mode clock (nil in wall mode).
func (c *Cluster) Clock() *sim.Clock { return c.clock }

// Registry returns the shared metrics registry.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// WallTracer returns the wall-mode service-layer tracer (nil unless
// WallTraceEvents was set).
func (c *Cluster) WallTracer() *tracing.Tracer { return c.sink.tracer() }

// Proc returns a component's current incarnation (sim-mode assertions).
//
//nostop:allow lockguard -- sim-mode assertion helper: the event loop is single-threaded, p.mu is a wall-mode concern
func (c *Cluster) Component(name string) component { return c.procs[name].comp }

// client builds the resilient client for one directed link, seeding jitter
// per incarnation so restarts stay deterministic in sim mode.
func (c *Cluster) client(p *proc, to string) *Client {
	var tr Transport
	if c.cfg.Mode == ModeSim {
		tr = c.simnet.Transport(p.name, to)
	} else {
		tr = c.wallnet.Transport(p.name, to, p.runLocked)
	}
	o := c.cfg.RPC
	o.Jitter = c.root.Split(fmt.Sprintf("rpc/%s->%s/epoch-%d", p.name, to, p.epoch))
	o.Metrics = c.reg
	o.Trace = c.sink
	o.Pid = p.pid
	return NewClient(p.name, to, p.tb, tr, o)
}

// runLocked executes fn under the proc mutex (wall-mode RPC completions and
// timer callbacks re-enter component state through here).
func (p *proc) runLocked(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn()
}

// build constructs a proc's component for the current epoch.
func (p *proc) build() (component, error) {
	c := p.c
	switch p.name {
	case PeerBroker:
		return NewBrokerService(BrokerOptions{
			Clock:   p.clock,
			Trace:   c.cfg.Trace,
			Epoch:   p.epoch,
			Metrics: c.reg,
		}), nil
	case PeerEngine:
		var tracer *tracing.Tracer
		if c.cfg.Mode == ModeSim {
			tracer = c.cfg.Tracer
		}
		return NewEngineService(EngineOptions{
			Clock:          p.clock,
			Seed:           c.root.Split(fmt.Sprintf("engine/epoch-%d", p.epoch)),
			Workload:       c.cfg.Workload,
			Broker:         c.client(p, PeerBroker),
			Initial:        c.cfg.Initial,
			Bounds:         c.cfg.Bounds,
			Epoch:          p.epoch,
			FetchInterval:  c.cfg.FetchInterval,
			CommitInterval: c.cfg.CommitInterval,
			MaxFetch:       c.cfg.MaxFetch,
			Metrics:        c.reg,
			Tracer:         tracer,
			Sink:           c.sink,
		})
	case PeerController:
		coreOpts := c.cfg.Core
		coreOpts.Seed = c.root.Split(fmt.Sprintf("spsa/epoch-%d", p.epoch))
		coreOpts.Metrics = c.reg
		if c.cfg.Mode == ModeSim {
			coreOpts.Tracer = c.cfg.Tracer
		} else {
			coreOpts.Tracer = nil
		}
		if coreOpts.Initial == (engine.Config{}) {
			coreOpts.Initial = c.cfg.Initial
		}
		return NewControllerService(ControllerOptions{
			Clock:        p.clock,
			Engine:       c.client(p, PeerEngine),
			Epoch:        p.epoch,
			PollInterval: c.cfg.PollInterval,
			Core:         coreOpts,
			Metrics:      c.reg,
			Sink:         c.sink,
		})
	}
	return nil, fmt.Errorf("service: unknown component %q", p.name)
}

// Start builds and starts all three components (broker first, so the engine
//'s first fetch finds it; the controller handshakes by itself).
func (c *Cluster) Start() error {
	if c.started {
		return fmt.Errorf("service: cluster already started")
	}
	c.started = true
	for _, name := range c.order {
		if err := c.startProc(c.procs[name]); err != nil {
			return fmt.Errorf("service: start %s: %w", name, err)
		}
	}
	return nil
}

func (c *Cluster) startProc(p *proc) error {
	comp, err := p.build()
	if err != nil {
		return err
	}
	if c.cfg.Mode == ModeSim {
		//nostop:allow lockguard -- sim mode: single-threaded event loop; p.mu is a wall-mode concern
		p.comp = comp
		//nostop:allow lockguard -- sim mode: single-threaded event loop
		p.down = false
		c.simnet.Register(p.name, comp.Handler())
		return comp.Start()
	}
	p.mu.Lock()
	p.comp = comp
	p.down = false
	err = comp.Start()
	base := p.clock.Now()
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if err := c.listenProc(p); err != nil {
		return err
	}
	p.pace = startPacer(p.clock, &p.mu, c.cfg.Speedup, base)
	return nil
}

// listenProc binds the wall-mode HTTP server, reusing the proc's concrete
// address across restarts so peers' base URLs stay valid.
func (c *Cluster) listenProc(p *proc) error {
	addr := p.addr
	if addr == "" {
		addr = c.cfg.Addrs[p.name]
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s on %s: %w", p.name, addr, err)
	}
	p.addr = ln.Addr().String()
	c.wallnet.SetURL(p.name, "http://"+p.addr)
	p.srv = &http.Server{
		Handler:           http.HandlerFunc(p.serveLocked),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
	}
	go p.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return nil
}

// serveLocked dispatches to the current incarnation under the proc mutex.
func (p *proc) serveLocked(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down || p.comp == nil {
		http.Error(w, "component down", http.StatusServiceUnavailable)
		return
	}
	p.comp.Handler().ServeHTTP(w, r)
}

// Addr returns a wall-mode component's listen address ("" in sim mode).
func (c *Cluster) Addr(name string) string { return c.procs[name].addr }

// KillPeer stops a component's incarnation: in sim mode the network starts
// refusing it; in wall mode its HTTP server closes (real connection
// refusals) and its pacer stops. State dies with the incarnation — a later
// RestartPeer builds a fresh component, which is the whole point of the
// offset/redelivery protocol. Implements the faults.ProcTarget surface.
func (c *Cluster) KillPeer(name string) error {
	p := c.procs[name]
	if p == nil {
		return fmt.Errorf("service: unknown peer %q", name)
	}
	c.chaosMu.Lock()
	defer c.chaosMu.Unlock()
	//nostop:allow lockguard -- chaos ops serialise on chaosMu; every wall-mode writer of comp/down holds it too
	if p.down || p.comp == nil {
		return fmt.Errorf("service: peer %q already down", name)
	}
	c.cKills.Inc()
	c.sink.instant(PidSupervisor, TidChaos, "chaos", "kill-"+name,
		tracing.Args{"epoch": p.epoch})
	if c.cfg.Mode == ModeSim {
		//nostop:allow lockguard -- sim mode: single-threaded event loop; p.mu is a wall-mode concern
		p.comp.Stop()
		//nostop:allow lockguard -- sim mode: single-threaded event loop
		p.down = true
		c.simnet.SetDown(name, true)
		return nil
	}
	p.pace.stop()
	p.mu.Lock()
	p.comp.Stop()
	p.down = true
	p.mu.Unlock()
	p.srv.Close()
	return nil
}

// RestartPeer builds and starts a fresh incarnation (epoch+1) of a killed
// component on the same address and virtual clock. Implements the
// faults.ProcTarget surface.
func (c *Cluster) RestartPeer(name string) error {
	p := c.procs[name]
	if p == nil {
		return fmt.Errorf("service: unknown peer %q", name)
	}
	c.chaosMu.Lock()
	defer c.chaosMu.Unlock()
	//nostop:allow lockguard -- chaos ops serialise on chaosMu; every wall-mode writer of comp/down holds it too
	if !p.down {
		return fmt.Errorf("service: peer %q is not down", name)
	}
	p.epoch++
	c.cRestarts.Inc()
	c.sink.instant(PidSupervisor, TidChaos, "chaos", "restart-"+name,
		tracing.Args{"epoch": p.epoch})
	if c.cfg.Mode == ModeSim {
		comp, err := p.build()
		if err != nil {
			return err
		}
		//nostop:allow lockguard -- sim mode: single-threaded event loop; p.mu is a wall-mode concern
		p.comp = comp
		//nostop:allow lockguard -- sim mode: single-threaded event loop
		p.down = false
		c.simnet.Register(name, comp.Handler())
		return comp.Start()
	}
	return c.startProc(p)
}

// SetLinkFault injects a network fault on a directed link at the RPC layer.
// Implements the faults.ProcTarget surface.
func (c *Cluster) SetLinkFault(from, to string, refuse bool, dropProb float64, delay time.Duration) error {
	if c.procs[from] == nil || c.procs[to] == nil {
		return fmt.Errorf("service: unknown link %s->%s", from, to)
	}
	f := LinkFault{Refuse: refuse, DropProb: dropProb, Delay: delay}
	c.sink.instant(PidSupervisor, TidChaos, "chaos", "link-"+from+"->"+to,
		tracing.Args{"fault": f.String()})
	if c.cfg.Mode == ModeSim {
		c.simnet.SetLink(from, to, f)
	} else {
		c.wallnet.SetLink(from, to, f)
	}
	return nil
}

// ClearLinkFault heals a directed link. Implements the faults.ProcTarget
// surface.
func (c *Cluster) ClearLinkFault(from, to string) error {
	return c.SetLinkFault(from, to, false, 0, 0)
}

// RunSim advances the shared sim-mode clock by d of virtual time.
func (c *Cluster) RunSim(d time.Duration) {
	if c.clock == nil {
		panic("service: RunSim on a wall-mode cluster")
	}
	c.clock.RunUntil(c.clock.Now() + sim.Time(d))
}

// Stop halts every live component, pacer, and server.
func (c *Cluster) Stop() {
	c.chaosMu.Lock()
	defer c.chaosMu.Unlock()
	for _, name := range c.order {
		p := c.procs[name]
		//nostop:allow lockguard -- chaos ops serialise on chaosMu; every wall-mode writer of comp/down holds it too
		if p.comp == nil || p.down {
			continue
		}
		if c.cfg.Mode == ModeSim {
			//nostop:allow lockguard -- sim mode: single-threaded event loop
			p.comp.Stop()
			continue
		}
		p.pace.stop()
		p.mu.Lock()
		p.comp.Stop()
		p.mu.Unlock()
		p.srv.Close()
	}
}

// Snapshots collects every component's invariant snapshot in topology
// order. Killed components report their last state.
func (c *Cluster) Snapshots() []InvariantSnapshot {
	var out []InvariantSnapshot
	for _, name := range c.order {
		p := c.procs[name]
		//nostop:allow lockguard -- shutdown/assertion path: runs after Stop, when pacers and chaos are quiet
		if p.comp == nil {
			continue
		}
		if c.cfg.Mode == ModeSim {
			//nostop:allow lockguard -- sim mode: single-threaded event loop
			out = append(out, p.comp.Snapshot())
			continue
		}
		p.mu.Lock()
		out = append(out, p.comp.Snapshot())
		p.mu.Unlock()
	}
	return out
}
