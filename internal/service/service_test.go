package service

import (
	"encoding/json"
	"testing"
	"time"

	"nostop/internal/engine"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

// newSoakCluster builds the canonical sim-mode chaos scenario used by the
// soak, determinism, and invariant tests: a broker kill/restart window (the
// engine's degradation path) plus a controller→engine link outage (the
// controller's freeze path).
func newSoakCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	wl, err := workload.New("logreg")
	if err != nil {
		t.Fatal(err)
	}
	trace := ratetrace.NewUniformBand(600, 1200, 20*time.Second, rng.New(seed).Split("trace"))
	c, err := NewCluster(ClusterConfig{
		Mode:     ModeSim,
		Seed:     seed,
		Workload: wl,
		Trace:    trace,
		Initial:  engine.Config{BatchInterval: 5 * time.Second, Executors: 8},
		MaxFetch: 5000, // small budget so post-outage recovery visibly sheds
		RPC: ClientOptions{
			Timeout:     300 * time.Millisecond,
			MaxAttempts: 2,
			BackoffBase: 100 * time.Millisecond,
			BackoffMax:  time.Second,
			BreakerThreshold: 3,
			BreakerCooldown:  2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// scheduleSoakChaos installs the chaos plan on the shared clock.
func scheduleSoakChaos(c *Cluster) {
	clock := c.Clock()
	at := func(s int, fn func()) { clock.At(sim.Time(s)*sim.Time(time.Second), fn) }
	at(60, func() { c.KillPeer(PeerBroker) })
	at(90, func() { c.RestartPeer(PeerBroker) })
	at(150, func() { c.SetLinkFault(PeerController, PeerEngine, true, 0, 0) })
	at(170, func() { c.ClearLinkFault(PeerController, PeerEngine) })
}

func snapshotByRole(t *testing.T, snaps []InvariantSnapshot, role string) InvariantSnapshot {
	t.Helper()
	for _, s := range snaps {
		if s.Role == role {
			return s
		}
	}
	t.Fatalf("no %s snapshot in %v", role, snaps)
	return InvariantSnapshot{}
}

func TestSimSoakChaosRecovery(t *testing.T) {
	c := newSoakCluster(t, 42)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	scheduleSoakChaos(c)
	c.RunSim(300 * time.Second)
	c.Stop()

	snaps := c.Snapshots()
	eng := snapshotByRole(t, snaps, PeerEngine)
	ctl := snapshotByRole(t, snaps, PeerController)
	brk := snapshotByRole(t, snaps, PeerBroker)

	// Engine: entered and exited degraded (shedding) mode across the broker
	// outage, and lost nothing past committed offsets.
	if eng.DegradedEnters < 1 || eng.DegradedExits < 1 {
		t.Fatalf("engine degradation transitions: enters=%d exits=%d, want ≥1 each",
			eng.DegradedEnters, eng.DegradedExits)
	}
	if eng.Degraded {
		t.Fatal("engine still degraded at soak end")
	}
	if eng.LostRecords != 0 {
		t.Fatalf("%d records lost past committed offsets", eng.LostRecords)
	}
	if eng.Batches == 0 || eng.FetchedRecords == 0 {
		t.Fatalf("engine did no work: batches=%d fetched=%d", eng.Batches, eng.FetchedRecords)
	}

	// Controller: froze during the link outage, resumed, and re-calibrated
	// its SPSA measurements afterwards.
	if ctl.DegradedEnters < 1 || ctl.DegradedExits < 1 {
		t.Fatalf("controller freeze transitions: enters=%d exits=%d, want ≥1 each",
			ctl.DegradedEnters, ctl.DegradedExits)
	}
	if ctl.Frozen {
		t.Fatal("controller still frozen at soak end")
	}
	if ctl.Recalibrations < 1 {
		t.Fatalf("controller recalibrations = %d, want ≥1", ctl.Recalibrations)
	}
	if ctl.Iterations == 0 {
		t.Fatal("controller completed no SPSA iterations")
	}
	if ctl.ListenerPanicCount != 0 {
		t.Fatalf("%d controller callback panics", ctl.ListenerPanicCount)
	}

	// Broker: restarted once, offsets sane.
	if brk.Epoch != 1 {
		t.Fatalf("broker epoch %d, want 1 after one restart", brk.Epoch)
	}
	if brk.CommittedOffset > brk.HeadOffset {
		t.Fatalf("broker committed %d beyond head %d", brk.CommittedOffset, brk.HeadOffset)
	}

	if v := Violations(snaps, 50, true); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}

	// Degradation/retry/breaker transitions must be visible in the metrics.
	exposition := c.Registry().String()
	for _, want := range []string{
		`nostop_service_degraded_transitions_total{component="engine",to="degraded"}`,
		`nostop_service_degraded_transitions_total{component="controller",to="frozen"}`,
		"nostop_rpc_breaker_transitions_total",
		"nostop_rpc_retries_total",
		"nostop_service_chaos_kills_total 1",
		"nostop_service_chaos_restarts_total 1",
	} {
		if !contains(exposition, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

// TestSimSoakDeterminism: the identical chaos scenario replays
// byte-identically across same-seed runs — metrics exposition and invariant
// snapshots compared as bytes.
func TestSimSoakDeterminism(t *testing.T) {
	run := func() (string, string) {
		c := newSoakCluster(t, 2026)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		scheduleSoakChaos(c)
		c.RunSim(300 * time.Second)
		c.Stop()
		snaps, err := json.Marshal(c.Snapshots())
		if err != nil {
			t.Fatal(err)
		}
		return c.Registry().String(), string(snaps)
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 {
		t.Fatal("metrics exposition diverged across same-seed runs")
	}
	if s1 != s2 {
		t.Fatalf("invariant snapshots diverged:\n%s\n---\n%s", s1, s2)
	}
	if m1 == "" {
		t.Fatal("empty metrics exposition")
	}
}

// TestSimSoakSeedSensitivity: different seeds genuinely produce different
// histories (the determinism test is not vacuous).
func TestSimSoakSeedSensitivity(t *testing.T) {
	run := func(seed uint64) string {
		c := newSoakCluster(t, seed)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		c.RunSim(120 * time.Second)
		c.Stop()
		return c.Registry().String()
	}
	if run(1) == run(2) {
		t.Fatal("seeds 1 and 2 produced identical metric expositions")
	}
}

// TestEngineRestartRedelivery: killing and restarting the *engine* makes the
// broker rewind to the committed watermark for the new consumer incarnation;
// nothing is lost, the uncommitted span is redelivered.
func TestEngineRestartRedelivery(t *testing.T) {
	c := newSoakCluster(t, 7)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	clock := c.Clock()
	clock.At(sim.Time(40*time.Second), func() { c.KillPeer(PeerEngine) })
	clock.At(sim.Time(55*time.Second), func() { c.RestartPeer(PeerEngine) })
	c.RunSim(150 * time.Second)
	c.Stop()

	snaps := c.Snapshots()
	eng := snapshotByRole(t, snaps, PeerEngine)
	brk := snapshotByRole(t, snaps, PeerBroker)
	if eng.Epoch != 1 {
		t.Fatalf("engine epoch %d, want 1", eng.Epoch)
	}
	if eng.LostRecords != 0 {
		t.Fatalf("%d records lost across engine restart", eng.LostRecords)
	}
	if brk.ConsumerRewinds != 1 {
		t.Fatalf("broker consumer rewinds = %d, want 1", brk.ConsumerRewinds)
	}
	if eng.Batches == 0 {
		t.Fatal("restarted engine cut no batches")
	}
	if v := Violations(snaps, 50, true); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}
