package service

import (
	"encoding/json"
	"net/http"

	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/sim"
)

// BrokerOptions configure a broker service incarnation.
type BrokerOptions struct {
	// Clock is the component's virtual clock (shared in sim mode, paced in
	// wall mode). Required.
	Clock *sim.Clock
	// Trace is the deterministic arrival-rate source driving offset growth.
	// Required.
	Trace ratetrace.Trace
	// Epoch is the incarnation counter, supervisor-assigned (+1 per
	// restart).
	Epoch int
	// MaxFetch hard-caps records per fetch response regardless of the
	// consumer's ask (default 1<<20).
	MaxFetch int64
	// Metrics is optional.
	Metrics *metrics.Registry
}

// BrokerService is the source-of-truth message broker: it turns the rate
// trace into a monotone offset space and serves it to exactly one consumer
// group over HTTP with at-least-once semantics.
//
// Offset protocol: head is the newest generated offset, served the highest
// handed to the consumer, committed the consumer's processed watermark.
// Fetches piggyback the consumer's committed offset; a restarted broker
// learns its base from the first fetch it sees, and a *new consumer
// incarnation* (different instance ID) rewinds served to committed so the
// uncommitted span is redelivered rather than lost. Records are counts, as
// everywhere in the simulation.
//
// Not safe for concurrent use: callers serialise through the component's
// execution context.
type BrokerService struct {
	o BrokerOptions

	inited    bool
	startAt   sim.Time
	base      int64
	head      int64
	served    int64
	committed int64
	frac      float64
	lastGenAt sim.Time
	consumer  string
	rewinds   int64
	mux       *http.ServeMux

	cFetches *metrics.Counter
	cServed  *metrics.Counter
	cRewinds *metrics.Counter
	gHead    *metrics.Gauge
	gCommit  *metrics.Gauge
	gEpoch   *metrics.Gauge
}

// fetchRequest is the POST /fetch body.
type fetchRequest struct {
	// Consumer identifies the consumer incarnation; a change rewinds
	// served to committed.
	Consumer string `json:"consumer"`
	// Committed piggybacks the consumer's processed watermark.
	Committed int64 `json:"committed"`
	// Max bounds how many records the consumer will accept.
	Max int64 `json:"max"`
}

// fetchResponse is the POST /fetch reply.
type fetchResponse struct {
	From      int64 `json:"from"`
	Count     int64 `json:"count"`
	Head      int64 `json:"head"`
	Committed int64 `json:"committed"`
	Epoch     int   `json:"epoch"`
}

// commitRequest is the POST /commit body.
type commitRequest struct {
	Committed int64 `json:"committed"`
}

// NewBrokerService builds one broker incarnation.
func NewBrokerService(o BrokerOptions) *BrokerService {
	if o.MaxFetch <= 0 {
		o.MaxFetch = 1 << 20
	}
	b := &BrokerService{o: o}
	if reg := o.Metrics; reg != nil {
		b.cFetches = reg.Counter("nostop_service_broker_fetches_total", "Fetch requests served")
		b.cServed = reg.Counter("nostop_service_broker_served_records_total", "Records handed to the consumer")
		b.cRewinds = reg.Counter("nostop_service_broker_consumer_rewinds_total", "Served-offset rewinds after a consumer incarnation change")
		b.gHead = reg.Gauge("nostop_service_broker_head_offset", "Newest generated offset")
		b.gCommit = reg.Gauge("nostop_service_broker_committed_offset", "Consumer committed watermark")
		b.gEpoch = reg.Gauge("nostop_service_epoch", "Component incarnation", metrics.L("component", PeerBroker))
	}
	b.mux = http.NewServeMux()
	b.mux.HandleFunc("POST /fetch", b.handleFetch)
	b.mux.HandleFunc("POST /commit", b.handleCommit)
	b.mux.HandleFunc("GET /healthz", b.handleHealthz)
	b.mux.HandleFunc("GET /invariants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, b.Snapshot())
	})
	return b
}

// Handler implements component.
func (b *BrokerService) Handler() http.Handler { return b.mux }

// Start implements component: arrivals accrue from this instant.
func (b *BrokerService) Start() error {
	b.startAt = b.o.Clock.Now()
	if b.gEpoch != nil {
		b.gEpoch.Set(float64(b.o.Epoch))
	}
	return nil
}

// Stop implements component.
func (b *BrokerService) Stop() {}

// gen advances head by the trace arrivals since the last generation point.
// Generation is lazy — computed on demand at fetch time — so the broker
// schedules no clock events of its own.
func (b *BrokerService) gen() {
	now := b.o.Clock.Now()
	if now <= b.lastGenAt {
		return
	}
	x := ratetrace.RecordsIn(b.o.Trace, b.lastGenAt, now) + b.frac
	n := int64(x)
	b.frac = x - float64(n)
	b.head += n
	b.lastGenAt = now
	b.gHead.Set(float64(b.head))
}

func (b *BrokerService) handleFetch(w http.ResponseWriter, r *http.Request) {
	var req fetchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad fetch request: "+err.Error(), http.StatusBadRequest)
		return
	}
	b.cFetches.Inc()
	if !b.inited {
		// First consumer contact of this incarnation: adopt the consumer's
		// watermark as the offset base and generate arrivals from the
		// incarnation's start, so uncommitted records are redelivered and
		// in-incarnation arrival continuity holds.
		b.inited = true
		b.base = req.Committed
		b.head = req.Committed
		b.served = req.Committed
		b.committed = req.Committed
		b.lastGenAt = b.startAt
	}
	if req.Committed > b.committed {
		b.committed = req.Committed
		b.gCommit.Set(float64(b.committed))
	}
	if req.Consumer != b.consumer {
		if b.consumer != "" {
			b.served = b.committed
			b.rewinds++
			b.cRewinds.Inc()
		}
		b.consumer = req.Consumer
	}
	b.gen()
	max := req.Max
	if max <= 0 || max > b.o.MaxFetch {
		max = b.o.MaxFetch
	}
	n := b.head - b.served
	if n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	from := b.served
	b.served += n
	b.cServed.Add(float64(n))
	writeJSON(w, fetchResponse{
		From: from, Count: n, Head: b.head, Committed: b.committed, Epoch: b.o.Epoch,
	})
}

func (b *BrokerService) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad commit request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Committed > b.committed {
		b.committed = req.Committed
		b.gCommit.Set(float64(b.committed))
	}
	writeJSON(w, commitRequest{Committed: b.committed})
}

func (b *BrokerService) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"role": PeerBroker, "epoch": b.o.Epoch})
}

// Snapshot implements component.
func (b *BrokerService) Snapshot() InvariantSnapshot {
	b.gen()
	return InvariantSnapshot{
		Role:            PeerBroker,
		Epoch:           b.o.Epoch,
		VirtualSec:      secs(b.o.Clock.Now()),
		HeadOffset:      b.head,
		ServedOffset:    b.served,
		CommittedOffset: b.committed,
		ConsumerRewinds: b.rewinds,
	}
}
