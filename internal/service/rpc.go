package service

import (
	"fmt"
	"time"

	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// Request is one JSON-over-HTTP exchange's request half.
type Request struct {
	Method string
	Path   string
	Body   []byte
}

// Response is the reply half. Status 0 means no reply arrived.
type Response struct {
	Status int
	Body   []byte
}

// Transport delivers a request to a peer and invokes done exactly once with
// the outcome — or never, if the exchange is dropped (the client's deadline
// covers that case). done must be invoked inside the calling component's
// execution context (sim event loop or component mutex).
type Transport interface {
	RoundTrip(req Request, done func(Response, error))
}

// ClientOptions tunes the resilient RPC client. Zero values select the
// defaults noted per field.
type ClientOptions struct {
	// Timeout is the per-attempt deadline (default 1s).
	Timeout time.Duration
	// MaxAttempts bounds attempts per Call, first try included (default 3).
	MaxAttempts int
	// BackoffBase is the first retry delay (default 100ms); attempt n waits
	// base·2^(n-1), capped at BackoffMax (default 2s), jittered to
	// [d/2, d) so synchronized retry storms decorrelate.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (default 5); BreakerCooldown is how long it stays open before
	// admitting a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Jitter seeds backoff jitter. In sim mode pass a split of the run's
	// root stream so retry schedules replay deterministically; nil disables
	// jitter (full backoff, still deterministic).
	Jitter *rng.Stream
	// Metrics and Trace observe attempts, retries, and breaker transitions;
	// both optional. Pid selects the owner's trace lane.
	Metrics *metrics.Registry
	Trace   *traceSink
	Pid     int
}

func (o *ClientOptions) fill() {
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Client is the resilient RPC client: per-attempt deadlines, bounded
// exponential backoff with jitter, and a consecutive-failure circuit
// breaker, all scheduled through a Timebase so the identical code path is
// deterministic in sim mode and real-time in wall mode.
//
// A Client belongs to one component and must only be used from that
// component's execution context; it holds no locks of its own.
type Client struct {
	link string // "owner->peer", the metrics/trace identity
	tb   Timebase
	tr   Transport
	o    ClientOptions

	state       breakerState
	consecFails int
	openedAt    sim.Time
	probeBusy   bool

	mAttempts  *metrics.Counter
	mFailures  *metrics.Counter
	mRetries   *metrics.Counter
	mFastFails *metrics.Counter
	mTrans     [3]*metrics.Counter // indexed by breakerState
	gOpen      *metrics.Gauge
}

// NewClient builds a client owned by component owner calling component peer.
func NewClient(owner, peer string, tb Timebase, tr Transport, o ClientOptions) *Client {
	o.fill()
	c := &Client{link: owner + "->" + peer, tb: tb, tr: tr, o: o}
	if reg := o.Metrics; reg != nil {
		l := metrics.L("link", c.link)
		c.mAttempts = reg.Counter("nostop_rpc_attempts_total", "RPC attempts sent", l)
		c.mFailures = reg.Counter("nostop_rpc_attempt_failures_total", "RPC attempts that timed out or errored", l)
		c.mRetries = reg.Counter("nostop_rpc_retries_total", "RPC attempts that were backed-off retries", l)
		c.mFastFails = reg.Counter("nostop_rpc_fastfail_total", "RPC calls rejected locally by an open circuit", l)
		for st := breakerClosed; st <= breakerHalfOpen; st++ {
			c.mTrans[st] = reg.Counter("nostop_rpc_breaker_transitions_total",
				"Circuit breaker state transitions", l, metrics.L("to", st.String()))
		}
		c.gOpen = reg.Gauge("nostop_rpc_breaker_open", "1 while the circuit is open", l)
	}
	return c
}

// State returns the breaker state string (for snapshots and tests).
func (c *Client) State() string { return c.state.String() }

// Call performs one logical RPC: it retries transient failures with jittered
// backoff, fails fast while the breaker is open, and finally invokes done
// exactly once with the response body or the terminal error. A 4xx reply is
// delivered as an error but counts as wire success (the peer is alive).
func (c *Client) Call(method, path string, body []byte, done func([]byte, error)) {
	if !c.admit() {
		c.mFastFails.Inc()
		done(nil, ErrCircuitOpen)
		return
	}
	c.attempt(method, path, body, 1, done)
}

// admit applies the breaker policy, moving open→half-open after the
// cooldown and admitting a single in-flight probe while half-open.
func (c *Client) admit() bool {
	if c.state == breakerOpen && c.tb.Now()-c.openedAt >= sim.Time(c.o.BreakerCooldown) {
		c.setState(breakerHalfOpen)
		c.probeBusy = false
	}
	switch c.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		if c.probeBusy {
			return false
		}
		c.probeBusy = true
		return true
	default:
		return false
	}
}

func (c *Client) attempt(method, path string, body []byte, n int, done func([]byte, error)) {
	c.mAttempts.Inc()
	var settled bool
	var cancelDeadline func()
	finish := func(resp Response, err error) {
		if settled {
			return
		}
		settled = true
		if cancelDeadline != nil {
			cancelDeadline()
		}
		if err == nil && resp.Status < 500 {
			c.onSuccess()
			if resp.Status >= 400 {
				done(nil, fmt.Errorf("service: %s %s: %s (status %d)",
					method, path, string(resp.Body), resp.Status))
				return
			}
			done(resp.Body, nil)
			return
		}
		if err == nil {
			err = fmt.Errorf("service: %s %s: status %d", method, path, resp.Status)
		}
		c.mFailures.Inc()
		c.onFailure()
		if n >= c.o.MaxAttempts || c.state != breakerClosed {
			done(nil, fmt.Errorf("%s %s attempt %d/%d: %w", method, path, n, c.o.MaxAttempts, err))
			return
		}
		c.mRetries.Inc()
		c.tb.After(c.backoff(n), func() {
			if !c.admit() {
				c.mFastFails.Inc()
				done(nil, fmt.Errorf("%w (while retrying: %v)", ErrCircuitOpen, err))
				return
			}
			c.attempt(method, path, body, n+1, done)
		})
	}
	cancelDeadline = c.tb.After(c.o.Timeout, func() { finish(Response{}, ErrTimeout) })
	c.tr.RoundTrip(Request{Method: method, Path: path, Body: body}, finish)
}

// backoff returns the jittered delay before attempt n+1.
func (c *Client) backoff(n int) time.Duration {
	d := c.o.BackoffBase << (n - 1)
	if d > c.o.BackoffMax || d <= 0 { // <=0 guards shift overflow
		d = c.o.BackoffMax
	}
	if c.o.Jitter != nil {
		d = d/2 + time.Duration(c.o.Jitter.Float64()*float64(d/2))
	}
	return d
}

func (c *Client) onSuccess() {
	c.consecFails = 0
	if c.state == breakerHalfOpen {
		c.probeBusy = false
		c.setState(breakerClosed)
	}
}

func (c *Client) onFailure() {
	switch c.state {
	case breakerHalfOpen:
		c.probeBusy = false
		c.openedAt = c.tb.Now()
		c.setState(breakerOpen)
	case breakerClosed:
		c.consecFails++
		if c.consecFails >= c.o.BreakerThreshold {
			c.openedAt = c.tb.Now()
			c.setState(breakerOpen)
		}
	}
}

func (c *Client) setState(s breakerState) {
	if s == c.state {
		return
	}
	c.state = s
	c.consecFails = 0
	c.mTrans[s].Inc()
	if c.gOpen != nil {
		if s == breakerOpen {
			c.gOpen.Set(1)
		} else {
			c.gOpen.Set(0)
		}
	}
	c.o.Trace.instant(c.o.Pid, TidRPC, "rpc", "breaker-"+s.String(),
		tracing.Args{"link": c.link})
}
