package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"nostop/internal/engine"
	"nostop/internal/listener"
	"nostop/internal/metrics"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// EngineOptions configure an engine service incarnation.
type EngineOptions struct {
	// Clock is the component's virtual clock. Required.
	Clock *sim.Clock
	// Seed feeds the embedded engine's randomness. Required.
	Seed *rng.Stream
	// Workload is the embedded engine's cost model. Required.
	Workload workload.Workload
	// Broker is the resilient client to the broker service. Required.
	Broker *Client
	// Initial/Bounds configure the embedded engine (zero values pick the
	// engine defaults).
	Initial engine.Config
	Bounds  engine.Bounds
	// Epoch is the incarnation counter; it also derives the consumer
	// instance ID, so the broker rewinds to the committed watermark when a
	// restarted engine reconnects.
	Epoch int
	// FetchInterval is the broker poll period (default 1s virtual);
	// CommitInterval the watermark-push period (default 2s virtual).
	FetchInterval  time.Duration
	CommitInterval time.Duration
	// MaxFetch is the per-fetch record budget — the load-shedding knob.
	// After an outage the backlog drains at most MaxFetch per fetch, so
	// in-engine queue growth stays bounded while the un-fetched remainder
	// waits durably on the broker (default 50000).
	MaxFetch int64
	// MaxKeep bounds listener report retention (0: listener default).
	MaxKeep int
	// Metrics is shared across components; Tracer feeds the embedded
	// engine's lifecycle spans (sim mode only — it is not safe across
	// component goroutines); Sink carries service-layer events in both
	// modes.
	Metrics *metrics.Registry
	Tracer  *tracing.Tracer
	Sink    *traceSink
}

// EngineService wraps engine.Engine + listener.Collector as the networked
// streaming system: it pulls records from the broker service through the
// resilient client, feeds them to the embedded engine via a FeedTrace,
// pushes the committed watermark back, and serves the listener endpoints
// plus /reconfigure to the controller.
//
// Degradation policy ("the engine sheds load when the broker times out"):
// a failed fetch — timeouts, refusals, or an open circuit — enters degraded
// mode: the engine keeps cutting (empty) batches from records already
// ingested, while fetch ticks keep probing through the circuit breaker.
// The first successful fetch exits degraded mode, and the bounded MaxFetch
// budget sheds the recovery burst: the backlog re-enters at a bounded rate
// instead of as one giant batch, with the remainder parked on the broker.
// Every transition is counted and emitted as a trace instant.
//
// The committed-offset invariant: committed = fetchBase + (records the
// engine ingested − records not yet in completed batches). Records are only
// committed after the batch containing them completes, so a crash between
// fetch and completion redelivers them (at-least-once); LostRecords counts
// any broker offsets skipped past the engine's next expected offset —
// which a clean run must keep at zero.
type EngineService struct {
	o        EngineOptions
	eng      *engine.Engine
	col      *listener.Collector
	feed     *FeedTrace
	instance string
	mux      *http.ServeMux

	fetchTicker  *sim.Ticker
	commitTicker *sim.Ticker
	fetchBusy    bool
	commitBusy   bool
	stopped      bool

	nextExpected int64 // -1 until the first successful fetch
	fetchBase    int64
	fetched      int64
	lost         int64
	redelivered  int64
	lastCommit   int64

	degraded bool
	enters   int64
	exits    int64

	cFetchErr *metrics.Counter
	cLost     *metrics.Counter
	cRedel    *metrics.Counter
	cShed     *metrics.Counter
	cEnter    *metrics.Counter
	cExit     *metrics.Counter
	gDegraded *metrics.Gauge
	gEpoch    *metrics.Gauge
	gBacklog  *metrics.Gauge
}

// NewEngineService builds one engine incarnation.
func NewEngineService(o EngineOptions) (*EngineService, error) {
	if o.Broker == nil {
		return nil, fmt.Errorf("service: engine needs a broker client")
	}
	if o.FetchInterval <= 0 {
		o.FetchInterval = time.Second
	}
	if o.CommitInterval <= 0 {
		o.CommitInterval = 2 * time.Second
	}
	if o.MaxFetch <= 0 {
		o.MaxFetch = 50000
	}
	s := &EngineService{o: o, feed: &FeedTrace{}, nextExpected: -1, fetchBase: -1,
		instance: fmt.Sprintf("engine-%d", o.Epoch)}
	eng, err := engine.New(o.Clock, engine.Options{
		Workload: o.Workload,
		Trace:    s.feed,
		Seed:     o.Seed,
		Initial:  o.Initial,
		Bounds:   o.Bounds,
		Metrics:  o.Metrics,
		Tracer:   o.Tracer,
		// The service layer owns shedding and offset accounting, so the
		// engine-internal emergency shed and ingest cap must stay off:
		// silently dropped records would punch holes in the committed-
		// offset mapping.
		ShedFactor: -1,
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	col, err := listener.NewCollector(eng, o.MaxKeep)
	if err != nil {
		return nil, err
	}
	col.SetRegistry(o.Metrics)
	s.col = col
	if reg := o.Metrics; reg != nil {
		s.cFetchErr = reg.Counter("nostop_service_engine_fetch_errors_total", "Fetch calls that failed after retries")
		s.cLost = reg.Counter("nostop_service_engine_lost_records_total", "Broker offsets skipped past the next expected offset")
		s.cRedel = reg.Counter("nostop_service_engine_redelivered_total", "Records re-served after a restart and skipped as duplicates")
		s.cShed = reg.Counter("nostop_service_engine_shed_fetches_total", "Budget-limited fetches that left backlog on the broker")
		s.cEnter = reg.Counter("nostop_service_degraded_transitions_total", "Degradation transitions",
			metrics.L("component", PeerEngine), metrics.L("to", "degraded"))
		s.cExit = reg.Counter("nostop_service_degraded_transitions_total", "Degradation transitions",
			metrics.L("component", PeerEngine), metrics.L("to", "normal"))
		s.gDegraded = reg.Gauge("nostop_service_engine_degraded", "1 while the engine is in degraded (shedding) mode")
		s.gEpoch = reg.Gauge("nostop_service_epoch", "Component incarnation", metrics.L("component", PeerEngine))
		s.gBacklog = reg.Gauge("nostop_service_engine_broker_backlog", "Un-fetched records parked on the broker")
	}
	mux := http.NewServeMux()
	mux.Handle("/", col.Handler())
	mux.HandleFunc("POST /reconfigure", s.handleReconfigure)
	mux.HandleFunc("GET /config", s.handleConfig)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"role": PeerEngine, "epoch": o.Epoch})
	})
	mux.HandleFunc("GET /invariants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Snapshot())
	})
	s.mux = mux
	return s, nil
}

// Handler implements component.
func (s *EngineService) Handler() http.Handler { return s.mux }

// Engine exposes the embedded engine (for sim-mode assertions).
func (s *EngineService) Engine() *engine.Engine { return s.eng }

// Start implements component: starts the embedded engine and the
// fetch/commit loops on the virtual clock.
func (s *EngineService) Start() error {
	if err := s.eng.Start(); err != nil {
		return err
	}
	s.gEpoch.Set(float64(s.o.Epoch))
	s.fetchTicker = s.o.Clock.NewTicker(s.o.FetchInterval, s.fetchTick)
	s.commitTicker = s.o.Clock.NewTicker(s.o.CommitInterval, s.commitTick)
	return nil
}

// Stop implements component.
func (s *EngineService) Stop() {
	s.stopped = true
	s.eng.Stop()
	if s.fetchTicker != nil {
		s.fetchTicker.Stop()
	}
	if s.commitTicker != nil {
		s.commitTicker.Stop()
	}
}

// committedOffset maps engine progress back into broker offset space.
func (s *EngineService) committedOffset() int64 {
	if s.fetchBase < 0 {
		return 0
	}
	return s.fetchBase + (s.eng.TotalRecords() - s.eng.CommittedLag())
}

func (s *EngineService) fetchTick() {
	if s.stopped || s.fetchBusy {
		return
	}
	s.fetchBusy = true
	body, _ := json.Marshal(fetchRequest{
		Consumer:  s.instance,
		Committed: s.committedOffset(),
		Max:       s.o.MaxFetch,
	})
	s.o.Broker.Call("POST", "/fetch", body, func(respBody []byte, err error) {
		s.fetchBusy = false
		if s.stopped {
			return
		}
		if err != nil {
			s.cFetchErr.Inc()
			s.enterDegraded(err)
			return
		}
		var resp fetchResponse
		if err := json.Unmarshal(respBody, &resp); err != nil {
			s.cFetchErr.Inc()
			return
		}
		s.exitDegraded()
		s.onFetch(resp)
	})
}

func (s *EngineService) onFetch(resp fetchResponse) {
	if s.nextExpected < 0 {
		s.nextExpected = resp.From
		s.fetchBase = resp.From
	}
	if resp.From > s.nextExpected {
		gap := resp.From - s.nextExpected
		s.lost += gap
		s.cLost.Add(float64(gap))
		s.o.Sink.instant(PidServiceEngine, TidDegrade, "invariant", "records-lost",
			tracing.Args{"gap": gap, "from": resp.From})
		s.nextExpected = resp.From
	}
	if overlap := s.nextExpected - resp.From; overlap > 0 {
		dup := overlap
		if dup > resp.Count {
			dup = resp.Count
		}
		s.redelivered += dup
		s.cRedel.Add(float64(dup))
	}
	if fresh := (resp.From + resp.Count) - s.nextExpected; fresh > 0 {
		s.feed.Add(s.o.Clock.Now(), s.o.FetchInterval, fresh)
		s.nextExpected += fresh
		s.fetched += fresh
	}
	backlog := resp.Head - s.nextExpected
	if backlog < 0 {
		backlog = 0
	}
	s.gBacklog.Set(float64(backlog))
	if resp.Count == s.o.MaxFetch && backlog > 0 {
		// Budget-limited: this is shedding in action — the rest of the
		// backlog stays durable on the broker for later fetches.
		s.cShed.Inc()
	}
}

func (s *EngineService) commitTick() {
	if s.stopped || s.commitBusy || s.fetchBase < 0 {
		return
	}
	c := s.committedOffset()
	if c == s.lastCommit {
		return
	}
	s.commitBusy = true
	body, _ := json.Marshal(commitRequest{Committed: c})
	s.o.Broker.Call("POST", "/commit", body, func(_ []byte, err error) {
		s.commitBusy = false
		if err == nil {
			s.lastCommit = c
		}
		// Commit failures need no special handling: fetches piggyback the
		// watermark, and the fetch path owns degradation.
	})
}

func (s *EngineService) enterDegraded(err error) {
	if s.degraded {
		return
	}
	s.degraded = true
	s.enters++
	s.cEnter.Inc()
	s.gDegraded.Set(1)
	// Batches cut while the broker is unreachable are starvation artifacts,
	// not measurements: mark them FaultActive so the controller's
	// failure-aware admission excludes them and re-calibrates on the first
	// clean batch after recovery.
	s.eng.SetFaultActive(true)
	s.o.Sink.instant(PidServiceEngine, TidDegrade, "degrade", "engine-degraded",
		tracing.Args{"cause": err.Error()})
}

func (s *EngineService) exitDegraded() {
	if !s.degraded {
		return
	}
	s.degraded = false
	s.exits++
	s.cExit.Inc()
	s.gDegraded.Set(0)
	s.eng.SetFaultActive(false)
	s.o.Sink.instant(PidServiceEngine, TidDegrade, "degrade", "engine-recovered", nil)
}

func (s *EngineService) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	var req configJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad reconfigure request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.eng.Reconfigure(req.config()); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, toConfigJSON(s.eng.Config()))
}

func (s *EngineService) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, configResponse{
		Config: toConfigJSON(s.eng.Config()),
		Bounds: toBoundsJSON(s.eng.ConfigBounds()),
	})
}

// Snapshot implements component.
func (s *EngineService) Snapshot() InvariantSnapshot {
	return InvariantSnapshot{
		Role:           PeerEngine,
		Epoch:          s.o.Epoch,
		VirtualSec:     secs(s.o.Clock.Now()),
		FetchedRecords: s.fetched,
		LostRecords:    s.lost,
		Redelivered:    s.redelivered,
		QueueLen:       s.eng.QueueLen(),
		CommittedLag:   s.eng.CommittedLag(),
		CommittedOffset: s.committedOffset(),
		FailedRecords:  s.eng.FailedRecords(),
		ListenerPanics: s.eng.ListenerPanics(),
		Batches:        len(s.eng.History()),
		Degraded:       s.degraded,
		DegradedEnters: s.enters,
		DegradedExits:  s.exits,
	}
}
