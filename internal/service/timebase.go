package service

import (
	"sync"
	"time"

	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// Timebase abstracts "schedule a callback after a delay" for the RPC layer,
// so deadlines and backoff timers run on the shared sim.Clock in sim mode
// (deterministic, replayable) and on real timers in wall mode. Component
// logic never uses a Timebase directly — tickers and batch machinery stay on
// sim.Clock in both modes; only RPC plumbing needs to race real network I/O
// against real time.
//
// Contract: callbacks fire inside the owning component's execution context
// (the sim event loop, or under the component's mutex), and the returned
// cancel func must be called from that same context. After cancel returns
// the callback will not run.
type Timebase interface {
	Now() sim.Time
	After(d time.Duration, fn func()) (cancel func())
}

// SimTimebase schedules on a sim.Clock.
type SimTimebase struct{ Clock *sim.Clock }

// Now implements Timebase.
func (s SimTimebase) Now() sim.Time { return s.Clock.Now() }

// After implements Timebase.
func (s SimTimebase) After(d time.Duration, fn func()) func() {
	ev := s.Clock.After(d, fn)
	return func() { s.Clock.Cancel(ev) }
}

// WallTimebase schedules on real timers, re-entering the owning component's
// mutex before invoking the callback so component state stays effectively
// single-threaded (the same discipline cmd/nostop-listen uses for HTTP
// handlers vs clock advancement).
type WallTimebase struct {
	start time.Time
	mu    *sync.Mutex
}

// NewWallTimebase returns a wall timebase whose Now is elapsed real time
// since construction and whose callbacks run under mu.
func NewWallTimebase(mu *sync.Mutex) *WallTimebase {
	return &WallTimebase{start: time.Now(), mu: mu}
}

// Now implements Timebase.
func (w *WallTimebase) Now() sim.Time { return sim.Time(time.Since(w.start)) }

// After implements Timebase. The canceled flag is read and written only
// under mu (cancel's contract requires the caller to hold the component
// context), which closes the race where the timer has fired and is already
// blocked on the mutex when cancel runs.
func (w *WallTimebase) After(d time.Duration, fn func()) func() {
	var canceled bool
	t := time.AfterFunc(d, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		if canceled {
			return
		}
		fn()
	})
	return func() {
		canceled = true
		t.Stop()
	}
}

// pacer advances a component's sim.Clock against the wall clock at a fixed
// speedup, taking the component mutex for every advancement so clock events
// (batch cuts, fetch ticks) interleave safely with HTTP handlers and RPC
// callbacks. This is the wall-clock gateway the wallclock analyzer allowlist
// exists for: real time enters here and nowhere else in the pipeline.
type pacer struct {
	quit chan struct{}
	done chan struct{}
}

// startPacer begins pacing clock at speedup virtual seconds per real second.
// base is the virtual instant corresponding to "now" (restarts resume pacing
// from the incarnation's start, not from zero).
func startPacer(clock *sim.Clock, mu *sync.Mutex, speedup float64, base sim.Time) *pacer {
	p := &pacer{quit: make(chan struct{}), done: make(chan struct{})}
	start := time.Now()
	go func() {
		defer close(p.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-p.quit:
				return
			case <-tick.C:
				target := base + sim.Time(float64(time.Since(start))*speedup)
				mu.Lock()
				clock.RunUntil(target)
				mu.Unlock()
			}
		}
	}()
	return p
}

// stop halts pacing and waits for the pacing goroutine to exit, so the
// caller may safely discard or restart the component afterwards.
func (p *pacer) stop() {
	close(p.quit)
	<-p.done
}

// traceSink adapts the single-threaded tracing.Tracer to both modes. In sim
// mode it is an unlocked pass-through to the shared tracer. In wall mode it
// owns a private clock advanced to speedup-scaled elapsed time under a
// mutex, so concurrent components can emit service-layer events (RPC
// outcomes, breaker and degradation transitions, chaos actions) onto one
// timeline without racing. A nil sink discards events.
type traceSink struct {
	tr      *tracing.Tracer
	mu      *sync.Mutex // non-nil in wall mode
	clock   *sim.Clock  // sink-owned in wall mode; guarded by mu
	start   time.Time
	speedup float64
}

// newSimTraceSink wraps a tracer already bound to the shared sim clock.
// Returns nil (a discarding sink) for a nil tracer.
func newSimTraceSink(tr *tracing.Tracer) *traceSink {
	if tr == nil {
		return nil
	}
	return &traceSink{tr: tr}
}

// newWallTraceSink builds a tracer on a sink-owned clock paced lazily on
// each emission.
func newWallTraceSink(maxEvents int, speedup float64) *traceSink {
	clock := sim.NewClock()
	return &traceSink{
		tr:      tracing.New(clock, maxEvents),
		mu:      &sync.Mutex{},
		clock:   clock,
		start:   time.Now(),
		speedup: speedup,
	}
}

// tracer returns the underlying tracer (for WriteJSON at shutdown).
func (s *traceSink) tracer() *tracing.Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

func (s *traceSink) enter() {
	if s.mu != nil {
		s.mu.Lock()
		s.clock.RunUntil(sim.Time(float64(time.Since(s.start)) * s.speedup))
	}
}

func (s *traceSink) leave() {
	if s.mu != nil {
		s.mu.Unlock()
	}
}

// instant emits an instant event; safe on a nil sink.
func (s *traceSink) instant(pid, tid int, cat, name string, args tracing.Args) {
	if s == nil {
		return
	}
	s.enter()
	//nostop:allow obscontract -- forwarder: service call sites pass literal names (kill-/restart-<proc>), bounded by cluster size
	s.tr.Instant(pid, tid, cat, name, args)
	s.leave()
}

// counter emits a counter sample; safe on a nil sink.
func (s *traceSink) counter(pid int, name string, values tracing.Args) {
	if s == nil {
		return
	}
	s.enter()
	//nostop:allow obscontract -- forwarder: service call sites pass literal counter names
	s.tr.Counter(pid, name, values)
	s.leave()
}

// nameLanes labels the service-layer process/thread lanes on the trace.
func (s *traceSink) nameLanes() {
	if s == nil {
		return
	}
	s.enter()
	s.tr.NameProcess(PidServiceBroker, "svc:broker")
	s.tr.NameProcess(PidServiceEngine, "svc:engine")
	s.tr.NameProcess(PidServiceController, "svc:controller")
	s.tr.NameProcess(PidSupervisor, "svc:supervisor")
	s.tr.NameThread(PidSupervisor, TidChaos, "chaos")
	s.leave()
}
