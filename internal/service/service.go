// Package service runs the NoStop stack as three separately supervised
// networked components — broker, engine, and controller — speaking
// JSON-over-HTTP, bridging the deterministic simulator to a production-style
// deployment (ROADMAP item 5, the paper's Fig 4 topology).
//
// # Two modes, one code path
//
// The same component implementations run in two modes:
//
//   - Sim mode: all three components share one sim.Clock in one process.
//     The "network" is SimNet — requests are delivered by invoking the
//     peer's http.Handler inline at a virtually-delayed instant, so the
//     full service protocol (fetch/commit offsets, status polling,
//     reconfiguration RPCs, retries, circuit breaking, degradation) executes
//     on the single-threaded event loop. With a fixed seed every run —
//     including every retry schedule and chaos fault — replays
//     byte-identically.
//
//   - Wall mode: each component owns its own virtual clock paced against
//     the wall clock, its own mutex, and a real net/http server on
//     127.0.0.1; peers talk over real TCP connections. Process chaos stops
//     a component's server and discards its state, so peers observe genuine
//     connection refusals and timeouts. This package is the only internal
//     package allowlisted to read the wall clock (see DESIGN.md §5h and
//     internal/analysis.DefaultConfig): the wall reads are confined to
//     Timebase/pacer plumbing, and everything the simulation semantics
//     depend on still flows through sim.Clock.
//
// # Resilience
//
// Every cross-component call goes through Client: per-attempt deadlines,
// bounded exponential backoff with seeded jitter, and a consecutive-failure
// circuit breaker. Degradation is a first-class state: the engine sheds
// ingest load (bounded fetch budget, empty batches) while the broker is
// unreachable, and the controller freezes its last-known-good configuration
// while the engine's listener endpoint is unreachable, re-calibrating its
// SPSA measurements after recovery. Every transition is counted in the
// metrics registry and emitted as a trace instant.
package service

import (
	"errors"
	"fmt"
	"time"

	"nostop/internal/sim"
)

// Peer names: the fixed component identities of the service topology.
const (
	PeerBroker     = "broker"
	PeerEngine     = "engine"
	PeerController = "controller"
)

// Trace process lanes for service-layer events. Engine-internal lanes
// (engine.PidBroker..PidFaults = 1..4) stay untouched; the service layer
// extends the numbering.
const (
	// PidServiceBroker is the broker service process lane.
	PidServiceBroker = 5
	// PidServiceEngine is the engine service process lane.
	PidServiceEngine = 6
	// PidServiceController is the controller service process lane.
	PidServiceController = 7
	// PidSupervisor is the supervisor / process-chaos lane.
	PidSupervisor = 8

	// TidRPC is each service lane's RPC-client thread.
	TidRPC = 1
	// TidDegrade is each service lane's degradation-policy thread.
	TidDegrade = 2
	// TidChaos is the supervisor lane's process-chaos thread.
	TidChaos = 1
)

// RPC error classes surfaced by the resilient client.
var (
	// ErrTimeout is an attempt that exceeded its deadline.
	ErrTimeout = errors.New("service: rpc deadline exceeded")
	// ErrRefused is a connection refused by a down peer (or an injected
	// refusal fault).
	ErrRefused = errors.New("service: connection refused")
	// ErrCircuitOpen is a call rejected locally because the peer's circuit
	// breaker is open.
	ErrCircuitOpen = errors.New("service: circuit open")
	// ErrPeerDown is a call against a peer the supervisor has killed.
	ErrPeerDown = errors.New("service: peer down")
)

// LinkFault is a network-level fault injected at the RPC layer on one
// directed link. The zero value is a healthy link.
type LinkFault struct {
	// Refuse makes every request fail immediately (connection refused).
	Refuse bool
	// DropProb silently drops requests with this probability; the caller
	// observes a deadline timeout.
	DropProb float64
	// Delay is added to every exchange's latency.
	Delay time.Duration
}

// Faulty reports whether the link carries any injected fault.
func (f LinkFault) Faulty() bool { return f.Refuse || f.DropProb > 0 || f.Delay > 0 }

// String implements fmt.Stringer.
func (f LinkFault) String() string {
	if !f.Faulty() {
		return "healthy"
	}
	return fmt.Sprintf("refuse=%v drop=%.2f delay=%v", f.Refuse, f.DropProb, f.Delay)
}

// InvariantSnapshot is one component's self-reported safety state, served at
// GET /invariants and aggregated by the supervisor at the end of a soak.
type InvariantSnapshot struct {
	Role string `json:"role"`
	// Epoch counts incarnations: 0 for the first start, +1 per restart.
	Epoch int `json:"epoch"`
	// VirtualSec is the component clock's current virtual time.
	VirtualSec float64 `json:"virtualSec"`

	// Broker fields.
	HeadOffset      int64 `json:"headOffset,omitempty"`
	ServedOffset    int64 `json:"servedOffset,omitempty"`
	CommittedOffset int64 `json:"committedOffset,omitempty"`
	ConsumerRewinds int64 `json:"consumerRewinds,omitempty"`

	// Engine fields.
	FetchedRecords int64 `json:"fetchedRecords,omitempty"`
	// LostRecords counts offsets the broker skipped past the engine's next
	// expected offset — records lost beyond the committed watermark. The
	// soak invariant requires zero.
	LostRecords int64 `json:"lostRecords,omitempty"`
	// Redelivered counts offsets re-served after a broker or engine
	// restart (at-least-once duplicates, never losses).
	Redelivered    int64 `json:"redelivered,omitempty"`
	QueueLen       int   `json:"queueLen,omitempty"`
	CommittedLag   int64 `json:"committedLag,omitempty"`
	FailedRecords  int64 `json:"failedRecords,omitempty"`
	ListenerPanics int   `json:"listenerPanics,omitempty"`
	Batches        int   `json:"batches,omitempty"`
	Degraded       bool  `json:"degraded,omitempty"`
	// DegradedEnters/Exits count shed-mode transitions (engine) or freeze
	// transitions (controller).
	DegradedEnters int64 `json:"degradedEnters,omitempty"`
	DegradedExits  int64 `json:"degradedExits,omitempty"`

	// Controller fields.
	Frozen              bool  `json:"frozen,omitempty"`
	SuppressedReconfigs int64 `json:"suppressedReconfigs,omitempty"`
	Recalibrations      int   `json:"recalibrations,omitempty"`
	Iterations          int   `json:"iterations,omitempty"`
	ListenerPanicCount  int64 `json:"callbackPanics,omitempty"`
	Phase               string `json:"phase,omitempty"`
}

// Violations evaluates the end-of-soak invariants over the components'
// snapshots and returns one message per violation (empty means a clean run).
// queueBound is the maximum tolerated engine batch-queue length; chaosRan
// tightens the check set to also require observed recovery.
func Violations(snaps []InvariantSnapshot, queueBound int, chaosRan bool) []string {
	var out []string
	for _, s := range snaps {
		switch s.Role {
		case PeerEngine:
			if s.LostRecords > 0 {
				out = append(out, fmt.Sprintf("engine: %d records lost past committed offsets", s.LostRecords))
			}
			if s.QueueLen > queueBound {
				out = append(out, fmt.Sprintf("engine: batch queue %d exceeds bound %d (unbounded growth)", s.QueueLen, queueBound))
			}
			if s.ListenerPanics > 0 {
				out = append(out, fmt.Sprintf("engine: %d listener panics", s.ListenerPanics))
			}
			if s.FailedRecords > 0 {
				out = append(out, fmt.Sprintf("engine: %d records in permanently-failed batches", s.FailedRecords))
			}
			if s.Degraded && chaosRan {
				out = append(out, "engine: still degraded at soak end (no recovery)")
			}
		case PeerController:
			if s.ListenerPanicCount > 0 {
				out = append(out, fmt.Sprintf("controller: %d callback panics", s.ListenerPanicCount))
			}
			if s.Frozen && chaosRan {
				out = append(out, "controller: still frozen at soak end (no recovery)")
			}
		case PeerBroker:
			if s.CommittedOffset > s.HeadOffset {
				out = append(out, fmt.Sprintf("broker: committed %d beyond head %d", s.CommittedOffset, s.HeadOffset))
			}
		}
	}
	return out
}

// secs converts a virtual instant to float seconds (for JSON snapshots).
func secs(t sim.Time) float64 { return time.Duration(t).Seconds() }
