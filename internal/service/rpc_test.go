package service

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"nostop/internal/rng"
	"nostop/internal/sim"
)

// okHandler answers every request with 200 {"ok":true}.
func okHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]bool{"ok": true})
	})
	return mux
}

func newTestClient(t *testing.T, o ClientOptions) (*sim.Clock, *SimNet, *Client) {
	t.Helper()
	clock := sim.NewClock()
	net := NewSimNet(clock, rng.New(7).Split("net"))
	net.Register("peer", okHandler())
	o.Jitter = rng.New(7).Split("jitter")
	return clock, net, NewClient("me", "peer", SimTimebase{Clock: clock}, net.Transport("me", "peer"), o)
}

// call drives one Call to completion on the sim clock and returns its
// terminal error.
func call(clock *sim.Clock, c *Client) error {
	var got error
	fired := false
	c.Call("GET", "/healthz", nil, func(_ []byte, err error) {
		fired = true
		got = err
	})
	clock.RunUntil(clock.Now() + sim.Time(time.Minute))
	if !fired {
		return errors.New("call never completed")
	}
	return got
}

func TestClientSuccess(t *testing.T) {
	clock, _, c := newTestClient(t, ClientOptions{})
	if err := call(clock, c); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	if got := c.State(); got != "closed" {
		t.Fatalf("breaker %s after success, want closed", got)
	}
}

func TestClientRetriesThenRecovers(t *testing.T) {
	clock, net, c := newTestClient(t, ClientOptions{
		Timeout: 100 * time.Millisecond, MaxAttempts: 3,
		BackoffBase: 50 * time.Millisecond, BreakerThreshold: 10,
	})
	// Drop the first attempt's exchange ~always; the retry succeeds once
	// the fault is cleared mid-call by a scheduled heal.
	net.SetLink("me", "peer", LinkFault{DropProb: 1})
	clock.After(120*time.Millisecond, func() { net.SetLink("me", "peer", LinkFault{}) })
	if err := call(clock, c); err != nil {
		t.Fatalf("call with one dropped attempt failed: %v", err)
	}
	if v := c.mRetries.Value(); v != 0 { // no registry attached: nil counter
		t.Fatalf("nil counter returned %v", v)
	}
}

func TestClientBreakerOpensAndFastFails(t *testing.T) {
	clock, net, c := newTestClient(t, ClientOptions{
		Timeout: 100 * time.Millisecond, MaxAttempts: 2,
		BackoffBase: 50 * time.Millisecond, BreakerThreshold: 3,
		// Longer than the call helper's 1-minute drain, so the breaker is
		// still inside its cooldown when the fast-fail is asserted.
		BreakerCooldown: 10 * time.Minute,
	})
	net.SetDown("peer", true)
	// Two calls × two attempts = 4 failures ≥ threshold 3: breaker opens.
	for i := 0; i < 2; i++ {
		if err := call(clock, c); err == nil {
			t.Fatal("call against a down peer succeeded")
		}
	}
	if got := c.State(); got != "open" {
		t.Fatalf("breaker %s after %d failures, want open", got, c.consecFails)
	}
	// Within the cooldown: instantaneous local rejection.
	var fastErr error
	c.Call("GET", "/healthz", nil, func(_ []byte, err error) { fastErr = err })
	if !errors.Is(fastErr, ErrCircuitOpen) {
		t.Fatalf("fast-fail error = %v, want ErrCircuitOpen", fastErr)
	}
}

func TestClientHalfOpenProbeRecovery(t *testing.T) {
	clock, net, c := newTestClient(t, ClientOptions{
		Timeout: 100 * time.Millisecond, MaxAttempts: 1,
		BreakerThreshold: 2, BreakerCooldown: 1 * time.Second,
	})
	net.SetDown("peer", true)
	for i := 0; i < 2; i++ {
		_ = call(clock, c)
	}
	if got := c.State(); got != "open" {
		t.Fatalf("breaker %s, want open", got)
	}
	// Probe while still down: half-open reopens.
	clock.RunUntil(clock.Now() + sim.Time(2*time.Second))
	if err := call(clock, c); err == nil {
		t.Fatal("probe against a down peer succeeded")
	}
	if got := c.State(); got != "open" {
		t.Fatalf("breaker %s after failed probe, want open", got)
	}
	// Peer recovers: next probe closes the breaker.
	net.SetDown("peer", false)
	clock.RunUntil(clock.Now() + sim.Time(2*time.Second))
	if err := call(clock, c); err != nil {
		t.Fatalf("probe after recovery failed: %v", err)
	}
	if got := c.State(); got != "closed" {
		t.Fatalf("breaker %s after recovery, want closed", got)
	}
}

func TestClientDeterministicRetrySchedule(t *testing.T) {
	// Same seed ⇒ identical retry timing, event for event.
	run := func() []sim.Time {
		clock := sim.NewClock()
		net := NewSimNet(clock, rng.New(11).Split("net"))
		net.Register("peer", okHandler())
		net.SetDown("peer", true)
		c := NewClient("me", "peer", SimTimebase{Clock: clock}, net.Transport("me", "peer"),
			ClientOptions{Timeout: 200 * time.Millisecond, MaxAttempts: 4,
				BackoffBase: 100 * time.Millisecond, BreakerThreshold: 10,
				Jitter: rng.New(11).Split("jitter")})
		var marks []sim.Time
		done := func(_ []byte, _ error) { marks = append(marks, clock.Now()) }
		c.Call("GET", "/x", nil, done)
		c.Call("GET", "/y", nil, done)
		clock.RunUntil(sim.Time(time.Minute))
		return marks
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("calls did not complete: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry schedule diverged: run1 %v run2 %v", a, b)
		}
	}
}

func TestFeedTraceConservesRecords(t *testing.T) {
	f := &FeedTrace{}
	sec := func(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }
	f.Add(sec(1), time.Second, 1000)
	// Overlapping add (latency jitter): clipped, count preserved.
	f.Add(sec(1.5), time.Second, 500)
	if f.Total() != 1500 {
		t.Fatalf("total %d, want 1500", f.Total())
	}
	// Integrate over the full span with a Stepper-aware walk.
	total := 0.0
	for t0 := sec(0); t0 < sec(5); {
		next := f.NextChange(t0)
		if next > sec(5) {
			next = sec(5)
		}
		total += f.RateAt(t0) * time.Duration(next-t0).Seconds()
		t0 = next
	}
	if total < 1499.9 || total > 1500.1 {
		t.Fatalf("integrated %f records, want 1500", total)
	}
	if got := f.RateAt(sec(0.5)); got != 0 {
		t.Fatalf("rate before first segment = %f, want 0", got)
	}
	if got := f.NextChange(sec(10)); got != sim.Infinity {
		t.Fatalf("NextChange past all segments = %v, want Infinity", got)
	}
}
