package service

import (
	"encoding/json"
	"net/http"
	"time"

	"nostop/internal/engine"
)

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// configJSON is the wire form of engine.Config.
type configJSON struct {
	BatchIntervalMs int64 `json:"batchIntervalMs"`
	NumExecutors    int   `json:"numExecutors"`
	BlockIntervalMs int64 `json:"blockIntervalMs,omitempty"`
}

func toConfigJSON(c engine.Config) configJSON {
	return configJSON{
		BatchIntervalMs: c.BatchInterval.Milliseconds(),
		NumExecutors:    c.Executors,
		BlockIntervalMs: c.BlockInterval.Milliseconds(),
	}
}

func (c configJSON) config() engine.Config {
	return engine.Config{
		BatchInterval: time.Duration(c.BatchIntervalMs) * time.Millisecond,
		Executors:     c.NumExecutors,
		BlockInterval: time.Duration(c.BlockIntervalMs) * time.Millisecond,
	}
}

// boundsJSON is the wire form of engine.Bounds.
type boundsJSON struct {
	MinIntervalMs int64 `json:"minIntervalMs"`
	MaxIntervalMs int64 `json:"maxIntervalMs"`
	MinExecutors  int   `json:"minExecutors"`
	MaxExecutors  int   `json:"maxExecutors"`
	MinBlockMs    int64 `json:"minBlockMs,omitempty"`
	MaxBlockMs    int64 `json:"maxBlockMs,omitempty"`
}

func toBoundsJSON(b engine.Bounds) boundsJSON {
	return boundsJSON{
		MinIntervalMs: b.MinInterval.Milliseconds(),
		MaxIntervalMs: b.MaxInterval.Milliseconds(),
		MinExecutors:  b.MinExecutors,
		MaxExecutors:  b.MaxExecutors,
		MinBlockMs:    b.MinBlock.Milliseconds(),
		MaxBlockMs:    b.MaxBlock.Milliseconds(),
	}
}

func (b boundsJSON) bounds() engine.Bounds {
	return engine.Bounds{
		MinInterval: time.Duration(b.MinIntervalMs) * time.Millisecond,
		MaxInterval: time.Duration(b.MaxIntervalMs) * time.Millisecond,
		MinExecutors: b.MinExecutors, MaxExecutors: b.MaxExecutors,
		MinBlock: time.Duration(b.MinBlockMs) * time.Millisecond,
		MaxBlock: time.Duration(b.MaxBlockMs) * time.Millisecond,
	}
}

// configResponse is the GET /config reply the controller proxy handshakes
// with before constructing the SPSA core.
type configResponse struct {
	Config configJSON `json:"config"`
	Bounds boundsJSON `json:"bounds"`
}
