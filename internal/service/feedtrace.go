package service

import (
	"fmt"
	"time"

	"nostop/internal/sim"
)

// FeedTrace is a ratetrace.Trace/Stepper assembled online from fetch
// responses: each successful fetch appends one piecewise-constant segment
// carrying exactly the fetched record count, which the engine's producer
// then integrates tick by tick. Because segment rates are count/duration and
// RecordsIn integrates piecewise-constant traces exactly, the engine ingests
// (up to float rounding carried by the engine's fractional accumulator) the
// same number of records the broker served — the property the committed-
// offset mapping depends on.
//
// Segments never overlap: a new segment is clipped to start at the previous
// segment's end (latency jitter can deliver a fetch slightly before the
// prior segment expires), with its rate recomputed so the count is
// preserved. Old segments are pruned once the producer is safely past them.
type FeedTrace struct {
	segs  []feedSeg
	total int64
}

type feedSeg struct {
	start, end sim.Time
	rate       float64
}

// Add appends n records spread over [start, start+d), clipped to begin after
// the previous segment.
func (f *FeedTrace) Add(start sim.Time, d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	if k := len(f.segs); k > 0 && f.segs[k-1].end > start {
		start = f.segs[k-1].end
	}
	end := start + sim.Time(d)
	if end <= start {
		end = start + sim.Time(time.Millisecond)
	}
	f.total += n
	f.segs = append(f.segs, feedSeg{
		start: start, end: end,
		rate: float64(n) / time.Duration(end-start).Seconds(),
	})
	// Prune segments the producer has fully consumed. The producer
	// integrates at most one tick behind "now" (= start at call time), so
	// anything ending over 10 virtual seconds ago is dead.
	cut := 0
	for cut < len(f.segs) && f.segs[cut].end+sim.Time(10*time.Second) < start {
		cut++
	}
	if cut > 0 {
		f.segs = append(f.segs[:0], f.segs[cut:]...)
	}
}

// Total returns the records added so far (for tests).
func (f *FeedTrace) Total() int64 { return f.total }

// RateAt implements ratetrace.Trace.
func (f *FeedTrace) RateAt(t sim.Time) float64 {
	for i := len(f.segs) - 1; i >= 0; i-- {
		s := f.segs[i]
		if t >= s.start && t < s.end {
			return s.rate
		}
		if s.end <= t {
			return 0 // segments are ordered; nothing earlier can cover t
		}
	}
	return 0
}

// NextChange implements ratetrace.Stepper: the next segment boundary
// strictly after t.
func (f *FeedTrace) NextChange(t sim.Time) sim.Time {
	for _, s := range f.segs {
		if s.start > t {
			return s.start
		}
		if s.end > t {
			return s.end
		}
	}
	return sim.Infinity
}

// Describe implements ratetrace.Trace.
func (f *FeedTrace) Describe() string {
	return fmt.Sprintf("service feed (%d records)", f.total)
}
