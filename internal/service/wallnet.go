package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"nostop/internal/rng"
)

// WallNet is the real network: peers are base URLs on 127.0.0.1, exchanges
// ride real TCP connections, and link faults are applied client-side at the
// RPC layer (the same layer SimNet applies them), so the chaos surface is
// identical in both modes. It is safe for concurrent use — transports are
// driven from component goroutines while the chaos injector rewrites gates
// from the supervisor goroutine.
type WallNet struct {
	mu     sync.Mutex
	urls   map[string]string    // guarded by mu
	gates  map[string]*wallGate // guarded by mu
	seed   *rng.Stream
	client *http.Client
	// reqTimeout bounds the raw HTTP exchange; it is set above the RPC
	// client's per-attempt deadline so the Timebase deadline stays
	// authoritative and this is only a goroutine-leak backstop.
	reqTimeout time.Duration
}

// wallGate holds one directed link's mutable fault and its seeded drop
// stream, guarded for concurrent writer (chaos) vs reader (transport).
type wallGate struct {
	mu   sync.Mutex
	f    LinkFault // guarded by mu
	drop *rng.Stream
}

// roll snapshots the fault and draws the drop decision atomically.
func (g *wallGate) roll() (LinkFault, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.f.DropProb > 0 && g.drop != nil && g.drop.Float64() < g.f.DropProb {
		return g.f, true
	}
	return g.f, false
}

// NewWallNet builds a wall-mode network. reqTimeout should exceed the RPC
// per-attempt deadline (pass 0 for a 10s default).
func NewWallNet(seed *rng.Stream, reqTimeout time.Duration) *WallNet {
	if reqTimeout <= 0 {
		reqTimeout = 10 * time.Second
	}
	return &WallNet{
		urls:  make(map[string]string),
		gates: make(map[string]*wallGate),
		seed:  seed,
		client: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 4},
		},
		reqTimeout: reqTimeout,
	}
}

// SetURL announces (or updates) a peer's base URL, e.g. "http://127.0.0.1:7101".
// An empty URL marks the peer unreachable.
func (n *WallNet) SetURL(name, base string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.urls[name] = base
}

func (n *WallNet) url(name string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.urls[name]
}

// SetLink installs a fault on the directed link from→to (zero value heals).
func (n *WallNet) SetLink(from, to string, f LinkFault) {
	g := n.gate(from + "->" + to)
	g.mu.Lock()
	g.f = f
	g.mu.Unlock()
}

func (n *WallNet) gate(key string) *wallGate {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.gates[key]
	if g == nil {
		g = &wallGate{}
		if n.seed != nil {
			g.drop = n.seed.Split("net/drop/" + key)
		}
		n.gates[key] = g
	}
	return g
}

// Transport returns the directed-link transport for an owner component.
// locked must run its argument inside the owner's execution context (the
// component mutex); RPC completions re-enter through it.
func (n *WallNet) Transport(from, to string, locked func(func())) Transport {
	return &wallLink{n: n, to: to, gate: n.gate(from + "->" + to), locked: locked}
}

type wallLink struct {
	n      *WallNet
	to     string
	gate   *wallGate
	locked func(func())
}

// RoundTrip implements Transport. The exchange runs on its own goroutine so
// the caller's lock is never held across network I/O; done re-enters via
// locked. A dropped exchange spawns nothing and never calls done.
func (l *wallLink) RoundTrip(req Request, done func(Response, error)) {
	f, dropped := l.gate.roll()
	if dropped {
		return
	}
	body := append([]byte(nil), req.Body...)
	go func() {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Refuse {
			l.locked(func() { done(Response{}, ErrRefused) })
			return
		}
		base := l.n.url(l.to)
		if base == "" {
			l.locked(func() { done(Response{}, ErrRefused) })
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), l.n.reqTimeout)
		defer cancel()
		hreq, err := http.NewRequestWithContext(ctx, req.Method, base+req.Path, bytes.NewReader(body))
		if err != nil {
			l.locked(func() { done(Response{}, err) })
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := l.n.client.Do(hreq)
		if err != nil {
			l.locked(func() { done(Response{}, err) })
			return
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			l.locked(func() { done(Response{}, err) })
			return
		}
		l.locked(func() { done(Response{Status: resp.StatusCode, Body: respBody}, nil) })
	}()
}
