package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"nostop/internal/core"
	"nostop/internal/engine"
	"nostop/internal/listener"
	"nostop/internal/metrics"
	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// ControllerOptions configure a controller service incarnation.
type ControllerOptions struct {
	// Clock is the component's virtual clock. Required.
	Clock *sim.Clock
	// Engine is the resilient client to the engine service's listener
	// endpoints. Required.
	Engine *Client
	// Epoch is the incarnation counter.
	Epoch int
	// PollInterval is the status/batch poll period (default 1s virtual).
	PollInterval time.Duration
	// Core configures the embedded NoStop SPSA controller (Seed, gains,
	// pause rules, ...). Metrics/Tracer inside it follow the same rules as
	// EngineOptions.
	Core core.Options
	// Metrics/Sink observe the service layer.
	Metrics *metrics.Registry
	Sink    *traceSink
}

// ControllerService runs the unmodified core.Controller against a remote
// engine: EngineProxy satisfies core.System by polling GET /status and
// GET /batches?since= through the resilient client and pushing
// POST /reconfigure back — the same SPSA code path as in-process mode, per
// the tentpole requirement.
//
// Degradation policy ("the controller freezes its last-known-good
// configuration when the listener is unreachable"): when a poll fails the
// controller freezes — Reconfigure calls are suppressed so the engine keeps
// the last configuration that was known to work — and on the first
// successful poll after recovery it resumes, marking that poll's batches
// FaultActive. The core's failure-aware admission (PR 5) then excludes the
// outage-window batches from SPSA measurements and re-calibrates on the
// first clean batch, exactly as it does for co-located fault windows.
type ControllerService struct {
	o     ControllerOptions
	proxy *EngineProxy
	ctl   *core.Controller
	mux   *http.ServeMux

	ticker    *sim.Ticker
	busy      bool
	stopped   bool
	connected bool

	frozen     bool
	freezes    int64
	resumes    int64
	suppressed int64
	panics     int64
	markNext   bool
	lastBatch  int64

	cFreeze     *metrics.Counter
	cResume     *metrics.Counter
	cSuppressed *metrics.Counter
	cPanics     *metrics.Counter
	cPollErr    *metrics.Counter
	gFrozen     *metrics.Gauge
	gEpoch      *metrics.Gauge
}

// EngineProxy satisfies core.System over the network. All state is cached
// from polls; reads are synchronous and cheap, Reconfigure is optimistic
// (the cache updates immediately, the RPC confirms asynchronously, and poll
// failures surface as a freeze rather than a synchronous error).
type EngineProxy struct {
	svc       *ControllerService
	clock     *sim.Clock
	listeners []engine.Listener
	cfg       engine.Config
	bounds    engine.Bounds
	queueLen  int
	rateMean  float64
	rateStd   float64
	reconfigBusy bool
}

// AddListener implements core.System.
func (p *EngineProxy) AddListener(l engine.Listener) { p.listeners = append(p.listeners, l) }

// Clock implements core.System.
func (p *EngineProxy) Clock() *sim.Clock { return p.clock }

// Config implements core.System.
func (p *EngineProxy) Config() engine.Config { return p.cfg }

// ConfigBounds implements core.System.
func (p *EngineProxy) ConfigBounds() engine.Bounds { return p.bounds }

// QueueLen implements core.System.
func (p *EngineProxy) QueueLen() int { return p.queueLen }

// RecentRateMean implements core.System.
func (p *EngineProxy) RecentRateMean() float64 { return p.rateMean }

// RecentRateStd implements core.System.
func (p *EngineProxy) RecentRateStd() float64 { return p.rateStd }

// Reconfigure implements core.System. While frozen the call is suppressed —
// the engine holds the last-known-good configuration.
func (p *EngineProxy) Reconfigure(cfg engine.Config) error {
	s := p.svc
	if s.frozen {
		s.suppressed++
		s.cSuppressed.Inc()
		return nil
	}
	cfg = p.bounds.Clamp(cfg)
	p.cfg = cfg
	p.reconfigBusy = true
	body, _ := json.Marshal(toConfigJSON(cfg))
	s.o.Engine.Call("POST", "/reconfigure", body, func(respBody []byte, err error) {
		p.reconfigBusy = false
		if err != nil {
			// The poll loop owns freezing; a lost reconfigure will also
			// show up there. The next status poll resyncs the cache.
			s.cPollErr.Inc()
		}
	})
	return nil
}

// NewControllerService builds one controller incarnation. The SPSA core is
// constructed lazily on the first successful handshake with the engine
// (GET /config supplies the bounds core.New needs), so a controller started
// before — or restarted during — an engine outage connects by itself.
func NewControllerService(o ControllerOptions) (*ControllerService, error) {
	if o.Engine == nil {
		return nil, fmt.Errorf("service: controller needs an engine client")
	}
	if o.PollInterval <= 0 {
		o.PollInterval = time.Second
	}
	s := &ControllerService{o: o, lastBatch: -1}
	s.proxy = &EngineProxy{svc: s, clock: o.Clock}
	if reg := o.Metrics; reg != nil {
		s.cFreeze = reg.Counter("nostop_service_degraded_transitions_total", "Degradation transitions",
			metrics.L("component", PeerController), metrics.L("to", "frozen"))
		s.cResume = reg.Counter("nostop_service_degraded_transitions_total", "Degradation transitions",
			metrics.L("component", PeerController), metrics.L("to", "normal"))
		s.cSuppressed = reg.Counter("nostop_service_controller_suppressed_reconfigs_total",
			"Reconfigure calls suppressed while frozen")
		s.cPanics = reg.Counter("nostop_service_controller_callback_panics_total",
			"Panics recovered while delivering batch reports to the SPSA core")
		s.cPollErr = reg.Counter("nostop_service_controller_poll_errors_total",
			"Engine polls that failed after retries")
		s.gFrozen = reg.Gauge("nostop_service_controller_frozen", "1 while the controller holds its last-known-good configuration")
		s.gEpoch = reg.Gauge("nostop_service_epoch", "Component incarnation", metrics.L("component", PeerController))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"role": PeerController, "epoch": o.Epoch})
	})
	mux.HandleFunc("GET /controller", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Snapshot())
	})
	mux.HandleFunc("GET /invariants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Snapshot())
	})
	s.mux = mux
	return s, nil
}

// Handler implements component.
func (s *ControllerService) Handler() http.Handler { return s.mux }

// Controller exposes the embedded SPSA core once connected (nil before).
func (s *ControllerService) Controller() *core.Controller { return s.ctl }

// Start implements component.
func (s *ControllerService) Start() error {
	s.gEpoch.Set(float64(s.o.Epoch))
	s.ticker = s.o.Clock.NewTicker(s.o.PollInterval, s.pollTick)
	return nil
}

// Stop implements component.
func (s *ControllerService) Stop() {
	s.stopped = true
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

func (s *ControllerService) pollTick() {
	if s.stopped || s.busy {
		return
	}
	s.busy = true
	if !s.connected {
		s.handshake()
		return
	}
	s.o.Engine.Call("GET", "/status", nil, func(body []byte, err error) {
		if s.stopped {
			s.busy = false
			return
		}
		if err != nil {
			s.pollFailed(err)
			return
		}
		var st listener.Status
		if err := json.Unmarshal(body, &st); err != nil {
			s.pollFailed(err)
			return
		}
		s.proxy.queueLen = st.QueueLength
		s.proxy.rateMean = st.RateMean
		s.proxy.rateStd = st.RateStd
		if !s.proxy.reconfigBusy {
			s.proxy.cfg = s.proxy.bounds.Clamp(engine.Config{
				BatchInterval: time.Duration(st.BatchIntervalMs) * time.Millisecond,
				Executors:     st.Executors,
			})
		}
		s.pollBatches()
	})
}

// handshake fetches config+bounds and constructs the SPSA core. Until it
// succeeds the controller just retries on its poll ticker.
func (s *ControllerService) handshake() {
	s.o.Engine.Call("GET", "/config", nil, func(body []byte, err error) {
		defer func() { s.busy = false }()
		if s.stopped || err != nil {
			return
		}
		var resp configResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return
		}
		s.proxy.cfg = resp.Config.config()
		s.proxy.bounds = resp.Bounds.bounds()
		ctl, err := core.New(s.proxy, s.o.Core)
		if err != nil {
			// Misconfiguration, not a transient: surface loudly via the
			// snapshot and stop retrying.
			s.stopped = true
			s.o.Sink.instant(PidServiceController, TidDegrade, "degrade", "controller-config-error",
				tracing.Args{"err": err.Error()})
			return
		}
		if err := ctl.Attach(); err != nil {
			s.stopped = true
			return
		}
		s.ctl = ctl
		s.connected = true
		s.o.Sink.instant(PidServiceController, TidDegrade, "degrade", "controller-connected", nil)
	})
}

func (s *ControllerService) pollBatches() {
	path := fmt.Sprintf("/batches?since=%d", s.lastBatch)
	s.o.Engine.Call("GET", path, nil, func(body []byte, err error) {
		if s.stopped {
			s.busy = false
			return
		}
		if err != nil {
			s.pollFailed(err)
			return
		}
		var reports []listener.BatchReport
		if err := json.Unmarshal(body, &reports); err != nil {
			s.pollFailed(err)
			return
		}
		s.resume()
		mark := s.markNext
		s.markNext = false
		for _, r := range reports {
			bs := toBatchStats(r)
			if mark {
				// First poll after an outage: these batches completed (or
				// piled up) while the controller was blind. Marking them
				// FaultActive routes them through the core's failure-aware
				// admission — excluded from measurements, re-calibration on
				// the first clean batch after them.
				bs.FaultActive = true
			}
			s.deliver(bs)
			s.lastBatch = r.BatchID
		}
		s.busy = false
	})
}

func (s *ControllerService) deliver(bs engine.BatchStats) {
	for _, l := range s.proxy.listeners {
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.panics++
					s.cPanics.Inc()
					s.o.Sink.instant(PidServiceController, TidDegrade, "invariant",
						"controller-panic", tracing.Args{"panic": fmt.Sprint(r)})
				}
			}()
			l.OnBatchComplete(bs)
		}()
	}
}

func (s *ControllerService) pollFailed(err error) {
	s.busy = false
	s.cPollErr.Inc()
	if s.frozen {
		return
	}
	s.frozen = true
	s.freezes++
	s.cFreeze.Inc()
	s.gFrozen.Set(1)
	s.o.Sink.instant(PidServiceController, TidDegrade, "degrade", "controller-frozen",
		tracing.Args{"cause": err.Error(), "heldConfig": s.proxy.cfg.String()})
}

func (s *ControllerService) resume() {
	if !s.frozen {
		return
	}
	s.frozen = false
	s.resumes++
	s.cResume.Inc()
	s.gFrozen.Set(0)
	s.markNext = true
	s.o.Sink.instant(PidServiceController, TidDegrade, "degrade", "controller-resumed",
		tracing.Args{"heldConfig": s.proxy.cfg.String()})
}

// toBatchStats reverses listener.Report for remote delivery to the core.
func toBatchStats(r listener.BatchReport) engine.BatchStats {
	ms := func(v int64) time.Duration { return time.Duration(v) * time.Millisecond }
	return engine.BatchStats{
		ID:      r.BatchID,
		Records: r.NumRecords,
		Config: engine.Config{
			BatchInterval: ms(r.BatchIntervalMs),
			Executors:     r.Executors,
		},
		CutAt:              sim.Time(r.SubmissionTimeSec * float64(time.Second)),
		SchedulingDelay:    ms(r.SchedulingDelayMs),
		ProcessingTime:     ms(r.ProcessingDelayMs),
		EndToEndDelay:      ms(r.EndToEndDelayMs),
		FirstAfterReconfig: r.FirstAfterChange,
		FaultActive:        r.FaultActive,
		QueueLen:           r.QueueLength,
	}
}

// Snapshot implements component.
func (s *ControllerService) Snapshot() InvariantSnapshot {
	snap := InvariantSnapshot{
		Role:                PeerController,
		Epoch:               s.o.Epoch,
		VirtualSec:          secs(s.o.Clock.Now()),
		Frozen:              s.frozen,
		DegradedEnters:      s.freezes,
		DegradedExits:       s.resumes,
		SuppressedReconfigs: s.suppressed,
		ListenerPanicCount:  s.panics,
	}
	if s.ctl != nil {
		snap.Recalibrations = s.ctl.Recalibrations()
		snap.Iterations = len(s.ctl.Iterations())
		snap.Phase = fmt.Sprint(s.ctl.Phase())
	}
	return snap
}
