package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"time"

	"nostop/internal/rng"
	"nostop/internal/sim"
)

// SimNet is the deterministic in-process network: peers register their
// http.Handler, and a RoundTrip delivers the request by invoking the peer's
// handler inline at a virtually-delayed instant on the shared sim.Clock.
// Per-link latency and drop decisions draw from seeded streams split per
// directed link, so a fixed root seed replays every exchange — including
// every fault outcome — byte-identically.
type SimNet struct {
	clock *sim.Clock
	peers map[string]*simPeer
	links map[string]*simLink
	seed  *rng.Stream
}

type simPeer struct {
	handler http.Handler
	down    bool
}

type simLink struct {
	n        *SimNet
	from, to string
	lat      *rng.Stream
	drop     *rng.Stream
	fault    LinkFault
}

// NewSimNet builds a network on the shared clock. seed feeds per-link
// latency/drop streams; nil means zero latency and no drop capability.
func NewSimNet(clock *sim.Clock, seed *rng.Stream) *SimNet {
	return &SimNet{
		clock: clock,
		peers: make(map[string]*simPeer),
		links: make(map[string]*simLink),
		seed:  seed,
	}
}

// Register announces a peer's current handler; re-registering models a
// restarted incarnation. A nil handler while registered behaves as down.
func (n *SimNet) Register(name string, h http.Handler) {
	p := n.peers[name]
	if p == nil {
		p = &simPeer{}
		n.peers[name] = p
	}
	p.handler = h
	p.down = false
}

// SetDown marks a peer dead (connection refused) or alive.
func (n *SimNet) SetDown(name string, down bool) {
	if p := n.peers[name]; p != nil {
		p.down = down
	}
}

// SetLink installs a fault on the directed link from→to (zero value heals).
func (n *SimNet) SetLink(from, to string, f LinkFault) {
	n.link(from, to).fault = f
}

// Transport returns the directed-link transport for an owner component.
func (n *SimNet) Transport(from, to string) Transport {
	return n.link(from, to)
}

func (n *SimNet) link(from, to string) *simLink {
	key := from + "->" + to
	l := n.links[key]
	if l == nil {
		l = &simLink{n: n, from: from, to: to}
		if n.seed != nil {
			l.lat = n.seed.Split("net/lat/" + key)
			l.drop = n.seed.Split("net/drop/" + key)
		}
		n.links[key] = l
	}
	return l
}

// latency draws one direction's wire delay.
func (l *simLink) latency() time.Duration {
	if l.lat == nil {
		return 0
	}
	return time.Duration(l.lat.Uniform(0.5, 3.0) * float64(time.Millisecond))
}

// RoundTrip implements Transport. A dropped exchange never invokes done —
// the caller's deadline observes it. Refusal (injected, or a down peer) is
// reported after the forward latency, and successful replies travel back
// with an independent latency draw.
func (l *simLink) RoundTrip(req Request, done func(Response, error)) {
	f := l.fault
	if f.DropProb > 0 && l.drop != nil && l.drop.Float64() < f.DropProb {
		return
	}
	body := append([]byte(nil), req.Body...)
	l.n.clock.After(l.latency()+f.Delay, func() {
		if l.fault.Refuse {
			done(Response{}, ErrRefused)
			return
		}
		p := l.n.peers[l.to]
		if p == nil || p.down || p.handler == nil {
			done(Response{}, ErrRefused)
			return
		}
		var rd *bytes.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		} else {
			rd = bytes.NewReader(nil)
		}
		rec := httptest.NewRecorder()
		hreq := httptest.NewRequest(req.Method, req.Path, rd)
		p.handler.ServeHTTP(rec, hreq)
		resp := Response{Status: rec.Code, Body: append([]byte(nil), rec.Body.Bytes()...)}
		l.n.clock.After(l.latency(), func() { done(resp, nil) })
	})
}
