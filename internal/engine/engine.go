// Package engine implements a Spark-Streaming-like micro-batch streaming
// engine over the discrete-event kernel: a receiver that drains a Kafka-like
// topic, a batch divider driven by a runtime-tunable batch interval, a FIFO
// batch queue, a single-job scheduler (Spark's default
// spark.streaming.concurrentJobs=1), and an executor pool drawn from a
// heterogeneous cluster.
//
// The engine reproduces the dynamics the paper's optimization problem is
// built on (§3):
//
//   - If batch processing time exceeds the batch interval, batches pile up
//     in the queue and scheduling delay grows without bound (unstable).
//   - If the interval exceeds processing time, the engine idles and
//     end-to-end delay is unnecessarily long.
//   - Batch interval and executor count are reconfigurable at runtime
//     without restarting anything — the system modification NoStop assumes
//     (§3.2) — with interval changes taking effect at the next batch
//     boundary and executor changes incurring a one-off setup cost on the
//     next batch (jar shipping to new executors, §5.4).
package engine

import (
	"errors"
	"fmt"
	"log"
	"time"

	"nostop/internal/approx"
	"nostop/internal/broker"
	"nostop/internal/cluster"
	"nostop/internal/metrics"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/stats"
	"nostop/internal/tracing"
	"nostop/internal/workload"
)

// Config is the runtime-tunable configuration pair the paper optimizes.
type Config struct {
	BatchInterval time.Duration
	Executors     int
	// BlockInterval is the receiver block interval: each block becomes
	// one task, so tasks-per-batch = BatchInterval / BlockInterval. The
	// paper fixes it (Spark's 200ms default) and names multi-parameter
	// tuning as future work (§7); this reproduction makes it tunable.
	// Zero means "engine default" (200ms) and is how two-parameter
	// controllers leave it alone.
	BlockInterval time.Duration
}

// String implements fmt.Stringer.
func (c Config) String() string {
	if c.BlockInterval > 0 {
		return fmt.Sprintf("{interval %v, executors %d, block %v}", c.BatchInterval, c.Executors, c.BlockInterval)
	}
	return fmt.Sprintf("{interval %v, executors %d}", c.BatchInterval, c.Executors)
}

// Bounds is the feasible configuration region (§5.1).
type Bounds struct {
	MinInterval, MaxInterval   time.Duration
	MinExecutors, MaxExecutors int
	// MinBlock/MaxBlock bound the tunable block interval; both zero
	// means the block interval is not tunable (Config.BlockInterval must
	// stay 0 and the engine default applies).
	MinBlock, MaxBlock time.Duration
}

// DefaultBounds mirrors §6.2.1: 1..40 s batch interval, 1..20 executors.
func DefaultBounds() Bounds {
	return Bounds{
		MinInterval: 1 * time.Second, MaxInterval: 40 * time.Second,
		MinExecutors: 1, MaxExecutors: 20,
	}
}

// Clamp returns cfg restricted to the bounds.
func (b Bounds) Clamp(cfg Config) Config {
	if cfg.BatchInterval < b.MinInterval {
		cfg.BatchInterval = b.MinInterval
	}
	if cfg.BatchInterval > b.MaxInterval {
		cfg.BatchInterval = b.MaxInterval
	}
	if cfg.Executors < b.MinExecutors {
		cfg.Executors = b.MinExecutors
	}
	if cfg.Executors > b.MaxExecutors {
		cfg.Executors = b.MaxExecutors
	}
	switch {
	case b.MinBlock == 0 && b.MaxBlock == 0:
		cfg.BlockInterval = 0 // not tunable: pin to the engine default
	case cfg.BlockInterval == 0:
		// Zero always means "engine default", even when the block
		// interval is tunable: two-parameter controllers keep working on
		// a three-parameter-capable engine.
	default:
		if cfg.BlockInterval < b.MinBlock {
			cfg.BlockInterval = b.MinBlock
		}
		if cfg.BlockInterval > b.MaxBlock {
			cfg.BlockInterval = b.MaxBlock
		}
	}
	return cfg
}

// Contains reports whether cfg lies within the bounds.
func (b Bounds) Contains(cfg Config) bool { return b.Clamp(cfg) == cfg }

// BatchStats describes one completed batch — the per-batch status report a
// StreamingListener would deliver (§4.3).
type BatchStats struct {
	ID        int64
	Records   int64
	Config    Config // configuration in effect when the batch was cut
	CutAt     sim.Time
	StartedAt sim.Time
	DoneAt    sim.Time
	// SchedulingDelay is the time the batch waited in the queue (Fig 2b's
	// "batch schedule delay").
	SchedulingDelay time.Duration
	// ProcessingTime is the simulated Spark job duration.
	ProcessingTime time.Duration
	// EndToEndDelay approximates the mean record's end-to-end latency:
	// half a batch interval of residence while the batch forms, plus
	// scheduling delay, plus processing time.
	EndToEndDelay time.Duration
	// FirstAfterReconfig marks the first batch cut after a configuration
	// change; §5.4 excludes it from measurements because reconfiguration
	// inflates it (jar shipping, executor registration).
	FirstAfterReconfig bool
	// FaultActive marks a batch that was cut or completed while a fault
	// was in effect (node down, straggler, task-failure window, partition
	// outage, ingest spike). Extending the §5.4 exclusion, the controller
	// keeps such batches out of SPSA probe measurements so the optimizer
	// never learns from failure noise.
	FaultActive bool
	// Attempts is how many executions the batch took; 1 means no retry.
	Attempts int
	// Speculated reports that straggler mitigation re-ran slow tasks on
	// healthy executors.
	Speculated bool
	// QueueLen is the batch-queue length right after this batch finished.
	QueueLen int
	// Semantic is the workload's output when payload records were attached.
	Semantic workload.Result
	// Tenant names the owning tenant in multi-tenant runs; empty for the
	// single-app simulations the paper evaluates.
	Tenant string
}

// Listener observes completed batches. The NoStop controller, the metrics
// listener, and tests all attach through this interface.
type Listener interface {
	OnBatchComplete(BatchStats)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(BatchStats)

// OnBatchComplete implements Listener.
func (f ListenerFunc) OnBatchComplete(bs BatchStats) { f(bs) }

// Options configure a new engine.
type Options struct {
	Workload workload.Workload
	Trace    ratetrace.Trace
	Cluster  *cluster.Cluster // nil: the paper's Table 2 cluster
	Seed     *rng.Stream      // nil: rng.New(1)
	Initial  Config           // zero: Default (interval 30s, 8 executors)
	Bounds   Bounds           // zero: DefaultBounds

	// Bus, when non-nil, is a shared broker bus: multi-tenant runs give
	// every engine the same bus so per-tenant topics coexist and cluster
	// accounting aggregates. Nil creates a private bus (single-app mode).
	Bus *broker.Bus
	// TopicName is the engine's input topic; empty means "input". Tenant
	// mixes must pick distinct names on a shared bus.
	TopicName string
	// Tenant tags the engine's topic and batches with a tenant identity,
	// enabling the broker's per-tenant accounting. Empty disables tagging.
	Tenant string

	// Partitions is the topic partition count; 0 picks
	// 2·TotalWorkerCores, honouring §6.1's "more partitions than cores".
	Partitions int
	// ProducerTick is the granularity at which trace arrivals are pushed
	// into the broker. 0 means 100ms.
	ProducerTick time.Duration
	// BlockInterval is the default receiver block interval used when the
	// configuration leaves Config.BlockInterval at 0. 0 means Spark's
	// 200ms default.
	BlockInterval time.Duration
	// TaskDispatchCost is the driver-side cost of dispatching one task;
	// it makes over-fine block intervals expensive. 0 means 1.5ms.
	TaskDispatchCost time.Duration
	// PayloadsPerTick is how many concrete payload records (with real
	// generated data) accompany the counted arrivals each tick; they feed
	// the workload's semantic ProcessBatch. 0 disables payloads.
	PayloadsPerTick int
	// SampleCap is the per-partition payload retention; 0 with payloads
	// enabled defaults to 256.
	SampleCap int
	// ReconfigSetup is the one-off cost added to the first batch after an
	// executor-count change. 0 means 1s.
	ReconfigSetup time.Duration
	// RateWindow is the span of the recent-arrival-rate window exposed to
	// controllers (§5.5). 0 means 60s.
	RateWindow time.Duration
	// IngestCap, if positive, limits the accepted input rate
	// (records/second); the back-pressure baseline drives this knob.
	IngestCap float64

	// TaskMaxFailures is the per-batch attempt budget under injected task
	// failures (Spark's spark.task.maxFailures): a batch whose attempts
	// all fail counts as a failed batch and triggers load shedding. 0
	// means 4.
	TaskMaxFailures int
	// RetryBackoff is the delay before re-executing a failed batch; it
	// doubles per attempt, capped at RetryBackoffMax. Zeros mean 2s and
	// 30s.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// SpeculativeMultiplier gates speculative re-execution: when
	// straggler slowdown stretches a batch's estimated runtime beyond
	// this multiple of the healthy estimate, the engine re-runs the slow
	// tasks on healthy executors (Spark's spark.speculation). 0 means
	// 1.5; negative disables speculation.
	SpeculativeMultiplier float64
	// SpeculativeOverhead is the relative cost a speculative re-run adds
	// to the healthy runtime estimate (duplicate task launch, extra
	// shuffle reads). 0 means 0.25.
	SpeculativeOverhead float64
	// ShedFactor scales emergency load shedding: on retry-budget
	// exhaustion the accepted ingest rate is capped at ShedFactor times
	// the recent mean arrival rate for ShedDuration. 0 means 0.8;
	// negative disables shedding.
	ShedFactor float64
	// ShedDuration is how long an emergency shed cap holds. 0 means 60s.
	ShedDuration time.Duration

	// Metrics, when non-nil, receives the engine's counters, gauges, and
	// delay histograms (see docs/METRICS.md). Instrumentation is passive:
	// it consumes no randomness and schedules no events, so observed and
	// unobserved same-seed runs produce identical batch histories.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records the batch/task lifecycle as Chrome
	// trace_event spans on the simulation clock.
	Tracer *tracing.Tracer
}

// DefaultConfig is the untuned starting configuration used as the Fig 7
// baseline: a conservative long interval with a modest executor count.
func DefaultConfig() Config {
	return Config{BatchInterval: 30 * time.Second, Executors: 8}
}

// Engine is the simulated streaming system.
type Engine struct {
	clock *sim.Clock
	opts  Options

	wl      workload.Workload
	cl      *cluster.Cluster
	bus     *broker.Bus
	topic   *broker.Topic
	prod    *broker.Producer
	group   *broker.ConsumerGroup
	noise   *rng.Stream
	payload *rng.Stream

	cfg        Config
	pending    *Config // config to apply at the next batch boundary
	execs      []cluster.Executor
	setupOwed  bool // next scheduled batch pays ReconfigSetup
	markFirst  bool // next cut batch is flagged FirstAfterReconfig
	reconfigs  int
	started    bool
	stopped    bool
	fracCarry  float64 // fractional records carried between producer ticks
	lastTickAt sim.Time

	queue    []*batch
	busy     bool
	nextID   int64
	cutEvent sim.Event

	// tickFn/cutFn are the producer-tick and batch-cut callbacks bound once
	// at Start: rescheduling with a fresh method value (e.producerTick)
	// would allocate a closure per tick on the hot path.
	tickFn func()
	cutFn  func()

	history    []BatchStats
	historyCap int
	listeners  []Listener

	rates     *stats.Window // recent per-tick arrival rates (rec/s)
	ingestCap float64

	totalRecords int64
	droppedByCap int64

	// Fault state, driven by the faults injector (or tests) through the
	// Set* methods below.
	faultRng    *rng.Stream
	faultActive bool
	taskFail    float64         // per-attempt transient failure probability
	slowNodes   map[int]float64 // node ID -> slowdown factor (>1 = slower)
	ingestBoost float64         // arrival-rate multiplier (spike injection)
	shedRate    float64         // emergency ingest cap from load shedding
	shedUntil   sim.Time

	taskRetries    int
	speculations   int
	failedBatches  int64
	failedRecords  int64
	shedEvents     int
	listenerPanics int

	obs *obsState // nil when observability is disabled
}

type batch struct {
	id      int64
	records int64
	// chunk carries the fetched payloads and offset ranges; it is released
	// back to the consumer group's pool when the batch completes or fails.
	// nil for an empty batch.
	chunk      *broker.Chunk
	cutAt      sim.Time
	cfg        Config
	first      bool
	faulty     bool
	attempts   int
	tasks      int // task count of the latest attempt (blocks per batch)
	speculated bool
}

// Common errors.
var (
	ErrNotRunning   = errors.New("engine: not started")
	ErrOutOfBounds  = errors.New("engine: configuration outside bounds")
	ErrAlreadyStart = errors.New("engine: already started")
)

// New constructs an engine on the given clock. It allocates the initial
// executors immediately and validates the initial configuration.
func New(clock *sim.Clock, opts Options) (*Engine, error) {
	if clock == nil {
		return nil, errors.New("engine: nil clock")
	}
	if opts.Workload == nil {
		return nil, errors.New("engine: nil workload")
	}
	if opts.Trace == nil {
		return nil, errors.New("engine: nil trace")
	}
	if opts.Cluster == nil {
		opts.Cluster = cluster.Table2()
	}
	if opts.Seed == nil {
		opts.Seed = rng.New(1)
	}
	if opts.Initial == (Config{}) {
		opts.Initial = DefaultConfig()
	}
	if opts.Bounds == (Bounds{}) {
		opts.Bounds = DefaultBounds()
	}
	if opts.Partitions == 0 {
		opts.Partitions = 2 * opts.Cluster.TotalWorkerCores()
	}
	if opts.ProducerTick == 0 {
		opts.ProducerTick = 100 * time.Millisecond
	}
	if opts.BlockInterval == 0 {
		opts.BlockInterval = 200 * time.Millisecond
	}
	if opts.TaskDispatchCost == 0 {
		opts.TaskDispatchCost = 1500 * time.Microsecond
	}
	if opts.SampleCap == 0 && opts.PayloadsPerTick > 0 {
		opts.SampleCap = 256
	}
	if opts.ReconfigSetup == 0 {
		opts.ReconfigSetup = time.Second
	}
	if opts.RateWindow == 0 {
		opts.RateWindow = 60 * time.Second
	}
	if opts.TaskMaxFailures == 0 {
		opts.TaskMaxFailures = 4
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 2 * time.Second
	}
	if opts.RetryBackoffMax == 0 {
		opts.RetryBackoffMax = 30 * time.Second
	}
	if approx.Unset(opts.SpeculativeMultiplier) {
		opts.SpeculativeMultiplier = 1.5
	}
	if approx.Unset(opts.SpeculativeOverhead) {
		opts.SpeculativeOverhead = 0.25
	}
	if approx.Unset(opts.ShedFactor) {
		opts.ShedFactor = 0.8
	}
	if opts.ShedDuration == 0 {
		opts.ShedDuration = 60 * time.Second
	}
	if !opts.Bounds.Contains(opts.Initial) {
		return nil, fmt.Errorf("%w: initial %v", ErrOutOfBounds, opts.Initial)
	}
	if opts.Bounds.MaxExecutors > opts.Cluster.TotalWorkerCores() {
		return nil, fmt.Errorf("engine: bounds allow %d executors but cluster has %d cores",
			opts.Bounds.MaxExecutors, opts.Cluster.TotalWorkerCores())
	}

	if opts.TopicName == "" {
		opts.TopicName = "input"
	}
	bus := opts.Bus
	if bus == nil {
		var nodeIDs []int
		for _, n := range opts.Cluster.Nodes() {
			nodeIDs = append(nodeIDs, n.ID)
		}
		var err error
		bus, err = broker.NewBus(nodeIDs)
		if err != nil {
			return nil, err
		}
	}
	var topic *broker.Topic
	var err error
	if opts.Tenant != "" {
		topic, err = bus.CreateTenantTopic(opts.TopicName, opts.Tenant, opts.Partitions, opts.SampleCap)
	} else {
		topic, err = bus.CreateTopic(opts.TopicName, opts.Partitions, opts.SampleCap)
	}
	if err != nil {
		return nil, err
	}
	prod, err := bus.NewProducer(opts.TopicName)
	if err != nil {
		return nil, err
	}
	group, err := bus.NewConsumerGroup(opts.TopicName)
	if err != nil {
		return nil, err
	}
	execs, err := opts.Cluster.Allocate(opts.Initial.Executors)
	if err != nil {
		return nil, fmt.Errorf("engine: initial allocation: %w", err)
	}
	windowTicks := int(opts.RateWindow / opts.ProducerTick)
	if windowTicks < 2 {
		windowTicks = 2
	}
	e := &Engine{
		clock:       clock,
		opts:        opts,
		wl:          opts.Workload,
		cl:          opts.Cluster,
		bus:         bus,
		topic:       topic,
		prod:        prod,
		group:       group,
		noise:       opts.Seed.Split("engine-noise"),
		payload:     opts.Seed.Split("engine-payload"),
		faultRng:    opts.Seed.Split("engine-faults"),
		slowNodes:   make(map[int]float64),
		ingestBoost: 1,
		cfg:         opts.Initial,
		execs:       execs,
		historyCap:  1 << 20,
		rates:       stats.NewWindow(windowTicks),
		ingestCap:   opts.IngestCap,
	}
	e.obs = newObsState(opts.Metrics, opts.Tracer)
	if e.obs != nil {
		topic.SetObserver(e.obs)
		e.obs.cfgInterval.Set(e.cfg.BatchInterval.Seconds())
		e.obs.cfgExecutors.Set(float64(e.cfg.Executors))
		e.obs.liveExecutors.Set(float64(len(e.execs)))
	}
	return e, nil
}

// Start schedules the producer and the first batch cut. It may be called
// once; the engine then runs as the clock advances.
func (e *Engine) Start() error {
	if e.started {
		return ErrAlreadyStart
	}
	e.started = true
	e.lastTickAt = e.clock.Now()
	e.tickFn = e.producerTick
	e.cutFn = e.cutBatch
	e.clock.After(e.opts.ProducerTick, e.tickFn)
	e.cutEvent = e.clock.After(e.cfg.BatchInterval, e.cutFn)
	return nil
}

// Stop halts future producer ticks and batch cuts. In-flight processing
// completes.
func (e *Engine) Stop() { e.stopped = true }

// AddListener attaches a batch-completion listener.
func (e *Engine) AddListener(l Listener) { e.listeners = append(e.listeners, l) }

// producerTick pushes trace arrivals since the previous tick into the topic.
//nostop:hotpath
func (e *Engine) producerTick() {
	if e.stopped {
		return
	}
	now := e.clock.Now()
	arrivals := ratetrace.RecordsIn(e.opts.Trace, e.lastTickAt, now) * e.ingestBoost
	n := arrivals + e.fracCarry
	elapsed := (now - e.lastTickAt).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = arrivals / elapsed
	}
	if cap := e.effectiveCap(now); cap > 0 && elapsed > 0 {
		allowed := cap * elapsed
		if n-e.fracCarry > allowed {
			e.droppedByCap += int64(n - e.fracCarry - allowed)
			e.onDropped(n - e.fracCarry - allowed)
			n = allowed + e.fracCarry
		}
	}
	whole := int64(n)
	e.fracCarry = n - float64(whole)
	e.lastTickAt = now
	e.rates.Add(rate)

	payloads := int64(e.opts.PayloadsPerTick)
	if payloads > whole {
		payloads = whole
	}
	if counted := whole - payloads; counted > 0 {
		e.prod.SendCount(counted)
	}
	for i := int64(0); i < payloads; i++ {
		e.prod.Send("", e.wl.GenValue(e.totalRecords+i, e.payload), now)
	}
	e.totalRecords += whole
	e.clock.After(e.opts.ProducerTick, e.tickFn)
}

// effectiveCap combines the configured/back-pressure ingest cap with any
// live emergency shed cap (the tighter one wins while shedding is active).
func (e *Engine) effectiveCap(now sim.Time) float64 {
	cap := e.ingestCap
	if e.shedRate > 0 && now < e.shedUntil {
		if cap <= 0 || e.shedRate < cap {
			cap = e.shedRate
		}
	}
	return cap
}

// cutBatch drains the topic into a new batch, applies any pending config,
// and schedules the next cut. Offsets are fetched uncommitted: the batch
// commits its ranges only when it completes successfully, so an outage
// replays anything in flight (at-least-once).
//nostop:hotpath
func (e *Engine) cutBatch() {
	if e.stopped {
		return
	}
	c := e.group.FetchChunk(0)
	var n int64
	if c != nil {
		n = c.Count
	}
	//nostop:allow hotalloc -- one batch header per cut (per-interval, not per-record)
	b := &batch{
		id:      e.nextID,
		records: n,
		chunk:   c,
		cutAt:   e.clock.Now(),
		cfg:     e.cfg,
		first:   e.markFirst,
		faulty:  e.faultInEffect(),
	}
	e.markFirst = false
	e.nextID++
	e.queue = append(e.queue, b)
	e.onBatchCut(b)
	e.trySchedule()

	// Apply a pending configuration at the boundary, then schedule the
	// next cut with the (possibly new) interval.
	if e.pending != nil {
		e.applyConfig(*e.pending)
		e.pending = nil
	}
	e.cutEvent = e.clock.After(e.cfg.BatchInterval, e.cutFn)
}

// applyConfig switches the live configuration; executor-count changes
// reallocate and charge setup to the next scheduled batch.
//nostop:allow hotalloc -- reconfiguration boundary: runs once per config change, not per record
func (e *Engine) applyConfig(cfg Config) {
	changedExecs := cfg.Executors != e.cfg.Executors || len(e.execs) != cfg.Executors
	e.cfg = cfg
	if changedExecs {
		// reallocate caps the allocation at live-cluster capacity, so a
		// reconfiguration during a node failure degrades gracefully
		// instead of failing.
		e.reallocate()
	}
	e.reconfigs++
	e.markFirst = true
	e.onReconfigure(cfg)
}

// trySchedule starts the head-of-queue batch if the engine is idle. With no
// live executors (total outage) batches wait in the queue.
func (e *Engine) trySchedule() {
	if e.busy || len(e.queue) == 0 || len(e.execs) == 0 {
		return
	}
	b := e.queue[0]
	e.queue = e.queue[1:]
	e.busy = true
	start := e.clock.Now()
	e.runAttempt(b, start)
}

// runAttempt executes one processing attempt of a batch. Straggler slowdown
// stretches the runtime unless speculation re-runs the slow tasks on healthy
// executors; transient task failures re-execute the whole attempt after a
// capped exponential backoff, and an exhausted budget fails the batch.
func (e *Engine) runAttempt(b *batch, start sim.Time) {
	execCount := len(e.execs)
	if execCount == 0 {
		// The cluster died between scheduling and the retry: requeue and
		// wait for capacity.
		e.busy = false
		//nostop:allow hotalloc -- cold path: head requeue after a total cluster outage
		e.queue = append([]*batch{b}, e.queue...)
		return
	}
	rawPar := cluster.Parallelism(e.execs, e.wl.Model().IOWeight)
	// Each receiver block becomes one task (Spark semantics): a coarse
	// block interval caps parallelism below the executor count, a fine
	// one multiplies driver dispatch overhead.
	block := b.cfg.BlockInterval
	if block <= 0 {
		block = e.opts.BlockInterval
	}
	tasks := int(b.cfg.BatchInterval / block)
	if tasks < 1 {
		tasks = 1
	}
	b.tasks = tasks
	//nostop:allow hotalloc -- non-escaping closure: called locally, stack-allocated
	capPar := func(p float64) float64 {
		if maxPar := float64(e.opts.Partitions); p > maxPar {
			p = maxPar // task parallelism cannot exceed partition count
		}
		if float64(tasks) < p {
			p = float64(tasks)
		}
		return p
	}
	par := capPar(rawPar)
	proc := e.wl.Model().ProcessingTime(b.records, execCount, par, e.noise)
	if len(e.slowNodes) > 0 {
		// Stragglers hurt twice: aggregate throughput drops with the
		// degraded parallelism, and the batch cannot finish before the
		// slowest hosted executor clears its final task wave. The healthy
		// estimate is rescaled rather than re-sampled so the noise draw
		// stays shared between the two outcomes.
		stretch := 1.0
		if degPar := capPar(e.degradedParallelism()); degPar > 0 && degPar < par {
			stretch = par / degPar
		}
		if tail := e.hostedMaxSlowdown(); tail > stretch {
			stretch = tail
		}
		if stretch > 1 {
			degraded := time.Duration(float64(proc) * stretch)
			if e.opts.SpeculativeMultiplier > 0 &&
				degraded > time.Duration(float64(proc)*e.opts.SpeculativeMultiplier) {
				proc = time.Duration(float64(proc) * (1 + e.opts.SpeculativeOverhead))
				b.speculated = true
				e.speculations++
				e.onSpeculation(b)
			} else {
				proc = degraded
			}
		}
	}
	proc += time.Duration(tasks) * e.opts.TaskDispatchCost
	if e.setupOwed {
		proc += e.opts.ReconfigSetup
		e.setupOwed = false
	}
	//nostop:allow hotalloc -- one completion closure per attempt (per-batch, not per-record)
	e.clock.After(proc, func() { e.finishAttempt(b, start, proc) })
}

// degradedParallelism is cluster.Parallelism with straggler slowdown factors
// applied per host node.
func (e *Engine) degradedParallelism() float64 {
	io := e.wl.Model().IOWeight
	if io < 0 {
		io = 0
	}
	if io > 1 {
		io = 1
	}
	p := 0.0
	for _, ex := range e.execs {
		f := ex.Node.SpeedFactor * ((1 - io) + io*ex.Node.DiskFactor)
		if s, ok := e.slowNodes[ex.Node.ID]; ok && s > 1 {
			f /= s
		}
		p += f
	}
	return p
}

// hostedMaxSlowdown returns the worst straggler factor among nodes that
// actually host executors — the tail-latency multiplier of the final task
// wave when no speculation rescues it.
func (e *Engine) hostedMaxSlowdown() float64 {
	worst := 1.0
	for _, ex := range e.execs {
		if s, ok := e.slowNodes[ex.Node.ID]; ok && s > worst {
			worst = s
		}
	}
	return worst
}

// finishAttempt resolves one attempt: transient failure → backoff and
// requeue at the head; budget exhausted → failed batch plus load shedding;
// otherwise the batch completes.
func (e *Engine) finishAttempt(b *batch, start sim.Time, proc time.Duration) {
	b.attempts++
	if e.taskFail > 0 && e.faultRng.Float64() < e.taskFail {
		e.onAttempt(b, start, proc, true)
		if b.attempts >= e.opts.TaskMaxFailures {
			e.failBatch(b)
			return
		}
		e.taskRetries++
		backoff := e.opts.RetryBackoff << (b.attempts - 1)
		if backoff > e.opts.RetryBackoffMax {
			backoff = e.opts.RetryBackoffMax
		}
		e.onRetry(b, backoff)
		// The job releases the scheduler during the backoff; the batch
		// requeues at the head so it is retried before younger batches.
		e.busy = false
		e.trySchedule()
		//nostop:allow hotalloc -- one backoff closure per transient-failure retry
		e.clock.After(backoff, func() {
			//nostop:allow hotalloc -- head requeue: one small slice per retry
			e.queue = append([]*batch{b}, e.queue...)
			e.trySchedule()
		})
		return
	}
	e.completeBatch(b, start, proc)
}

// failBatch gives up on a batch whose retry budget is exhausted: its records
// count as failed (their offsets stay uncommitted, so the loss is visible in
// CommittedLag) and the engine sheds load through the ingest cap to protect
// itself while the fault persists.
func (e *Engine) failBatch(b *batch) {
	e.failedBatches++
	e.failedRecords += b.records
	e.busy = false
	e.onBatchFailed(b)
	if b.chunk != nil {
		// The ranges stay uncommitted (the loss is visible in CommittedLag);
		// only the carrier chunk is recycled.
		e.group.Release(b.chunk)
		b.chunk = nil
	}
	if e.opts.ShedFactor >= 0 {
		if mean := e.rates.Mean(); mean > 0 {
			e.shedRate = e.opts.ShedFactor * mean
			e.shedUntil = e.clock.Now() + sim.Time(e.opts.ShedDuration)
			e.shedEvents++
			e.onShed(e.shedRate, e.shedUntil)
		}
	}
	e.trySchedule()
}

// completeBatch finalises stats, commits the batch's offset ranges, runs
// semantic processing, and notifies listeners.
func (e *Engine) completeBatch(b *batch, start sim.Time, proc time.Duration) {
	e.busy = false
	var result workload.Result
	if b.chunk != nil {
		e.group.Commit(b.chunk.Ranges)
	}
	e.wl.Model().NoteBatch()
	if b.chunk != nil {
		if len(b.chunk.Records) > 0 {
			result = e.wl.ProcessBatch(b.chunk.Records)
		}
		e.group.Release(b.chunk)
		b.chunk = nil
	}
	// start is the successful attempt's dispatch time, so failed attempts
	// and their backoffs surface as scheduling delay while ProcessingTime
	// stays the successful attempt's runtime.
	sched := time.Duration(start - b.cutAt)
	bs := BatchStats{
		ID:                 b.id,
		Records:            b.records,
		Config:             b.cfg,
		CutAt:              b.cutAt,
		StartedAt:          start,
		DoneAt:             e.clock.Now(),
		SchedulingDelay:    sched,
		ProcessingTime:     proc,
		EndToEndDelay:      b.cfg.BatchInterval/2 + sched + proc,
		FirstAfterReconfig: b.first,
		FaultActive:        b.faulty || e.faultInEffect(),
		Attempts:           b.attempts,
		Speculated:         b.speculated,
		QueueLen:           len(e.queue),
		Semantic:           result,
		Tenant:             e.opts.Tenant,
	}
	e.onAttempt(b, start, proc, false)
	e.onBatchComplete(b, bs)
	if len(e.history) < e.historyCap {
		e.history = append(e.history, bs)
	}
	for _, l := range e.listeners {
		e.notify(l, bs)
	}
	e.trySchedule()
}

// notify delivers one listener callback, isolating panics: a misbehaving
// listener cannot kill the simulation run.
//
//nostop:allow hotalloc -- panic isolation needs a deferred closure; once per listener per batch
func (e *Engine) notify(l Listener, bs BatchStats) {
	defer func() {
		if r := recover(); r != nil {
			e.listenerPanics++
			log.Printf("engine: listener panic on batch %d (isolated): %v", bs.ID, r)
		}
	}()
	l.OnBatchComplete(bs)
}

// Reconfigure requests a configuration change; it takes effect at the next
// batch boundary (§5.3's changeConfigurations). Returns ErrOutOfBounds for
// configurations outside the feasible region.
func (e *Engine) Reconfigure(cfg Config) error {
	if !e.started {
		return ErrNotRunning
	}
	if !e.opts.Bounds.Contains(cfg) {
		return fmt.Errorf("%w: %v", ErrOutOfBounds, cfg)
	}
	if cfg == e.cfg && e.pending == nil {
		return nil // no-op
	}
	e.pending = &cfg
	return nil
}

// EnsureLiveExecutors re-attempts allocation when the live executor set is
// below the configured count — the retry hook the tenant allocator calls
// after freeing capacity elsewhere. Reconfigure alone cannot express this:
// it no-ops when the requested config equals the live one, even though a
// previous allocation came up short. No-op when already at strength.
func (e *Engine) EnsureLiveExecutors() {
	if !e.started || len(e.execs) >= e.cfg.Executors {
		return
	}
	e.reallocate()
}

// FailNode simulates the loss of a cluster node mid-run: its executors die
// and the engine immediately reallocates as many executors as remaining
// capacity allows (possibly fewer than the configured count), paying the
// reconfiguration setup cost. Batches already queued keep their records.
func (e *Engine) FailNode(nodeID int) error {
	if err := e.cl.SetFailed(nodeID, true); err != nil {
		return err
	}
	e.reallocate()
	return nil
}

// RestoreNode returns a failed node to service and re-fills the executor
// allocation back toward the configured count.
func (e *Engine) RestoreNode(nodeID int) error {
	if err := e.cl.SetFailed(nodeID, false); err != nil {
		return err
	}
	e.reallocate()
	return nil
}

// FailPartition takes a topic partition's leader offline: the receiver
// cannot fetch from it, its in-flight (uncommitted) fetch session is lost,
// and the consumer rewinds to the committed offset so the span is
// redelivered after restoration — at-least-once, never lost.
func (e *Engine) FailPartition(partition int) error {
	if partition < 0 || partition >= len(e.topic.Partitions) {
		return fmt.Errorf("engine: unknown partition %d", partition)
	}
	e.topic.Partitions[partition].SetDown(true)
	e.group.Rewind(partition)
	return nil
}

// RestorePartition brings a partition's leader back; the backlog accumulated
// during the outage (including the rewound span) becomes fetchable again.
func (e *Engine) RestorePartition(partition int) error {
	if partition < 0 || partition >= len(e.topic.Partitions) {
		return fmt.Errorf("engine: unknown partition %d", partition)
	}
	e.topic.Partitions[partition].SetDown(false)
	return nil
}

// SetNodeSlowdown marks a node's executors as stragglers running factor
// times slower (factor <= 1 clears the straggler). Unknown nodes error.
func (e *Engine) SetNodeSlowdown(nodeID int, factor float64) error {
	found := false
	for _, n := range e.cl.Nodes() {
		if n.ID == nodeID {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("engine: unknown node %d", nodeID)
	}
	if factor <= 1 {
		delete(e.slowNodes, nodeID)
		return nil
	}
	e.slowNodes[nodeID] = factor
	return nil
}

// SetTaskFailureRate sets the per-attempt probability that a batch suffers a
// transient task-failure wave requiring re-execution. Values are clamped to
// [0, 1]; 0 disables injection.
func (e *Engine) SetTaskFailureRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	e.taskFail = p
}

// SetIngestBoost multiplies trace arrivals by factor — the fault injector's
// ingest-spike lever. factor <= 0 resets to 1.
func (e *Engine) SetIngestBoost(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	e.ingestBoost = factor
}

// SetFaultActive force-marks the fault window open or closed; the fault
// injector brackets every fault's lifetime with it so batches overlapping
// any fault carry BatchStats.FaultActive.
func (e *Engine) SetFaultActive(active bool) { e.faultActive = active }

// faultInEffect reports whether any fault is currently live: the injector's
// explicit window, a task-failure or straggler injection, an ingest boost, a
// failed node, or a downed partition.
func (e *Engine) faultInEffect() bool {
	// Both probes are O(1) incremental counters so the per-batch check stays
	// constant-time on O(1000)-node clusters and O(100)-partition topics.
	return e.faultActive || e.taskFail > 0 || len(e.slowNodes) > 0 ||
		!approx.Eq(e.ingestBoost, 1) ||
		e.cl.FailedCount() > 0 || e.topic.DownPartitions() > 0
}

// FaultInEffect exposes the live fault check for controllers and reports.
func (e *Engine) FaultInEffect() bool { return e.faultInEffect() }

// reallocate rebuilds the executor set after a capacity change, capped by
// what the live cluster can host. With zero capacity the engine holds no
// executors and processing stalls until a node returns.
func (e *Engine) reallocate() {
	e.cl.Release(e.execs)
	e.execs = nil
	want := e.cfg.Executors
	if avail := e.cl.FreeCores(); want > avail {
		want = avail
	}
	if want > 0 {
		execs, err := e.cl.Allocate(want)
		if err == nil {
			e.execs = execs
		}
	}
	e.setupOwed = true
	e.markFirst = true
	e.onReallocate()
	e.trySchedule()
}

// LiveExecutors returns the number of currently-allocated executors, which
// can fall below the configured count after node failures.
func (e *Engine) LiveExecutors() int { return len(e.execs) }

// Config returns the live configuration.
func (e *Engine) Config() Config { return e.cfg }

// ConfigBounds returns the feasible region.
func (e *Engine) ConfigBounds() Bounds { return e.opts.Bounds }

// QueueLen returns the number of batches waiting (not counting in-flight).
func (e *Engine) QueueLen() int { return len(e.queue) }

// Lag returns unconsumed records in the broker.
func (e *Engine) Lag() int64 { return e.group.Lag() }

// History returns all completed batch stats in completion order.
func (e *Engine) History() []BatchStats { return e.history }

// Reconfigs returns how many configuration changes have been applied.
func (e *Engine) Reconfigs() int { return e.reconfigs }

// TotalRecords returns the number of records produced so far.
func (e *Engine) TotalRecords() int64 { return e.totalRecords }

// DroppedByCap returns records rejected by the ingest cap (back-pressure).
func (e *Engine) DroppedByCap() int64 { return e.droppedByCap }

// TaskRetries returns how many transient task-failure retries were executed.
func (e *Engine) TaskRetries() int { return e.taskRetries }

// Speculations returns how many batches were speculatively re-executed to
// dodge stragglers.
func (e *Engine) Speculations() int { return e.speculations }

// FailedBatches returns batches whose retry budget was exhausted.
func (e *Engine) FailedBatches() int64 { return e.failedBatches }

// FailedRecords returns records inside permanently-failed batches — the only
// processing-loss channel, kept at zero by the chaos acceptance criterion.
func (e *Engine) FailedRecords() int64 { return e.failedRecords }

// ShedEvents returns how many emergency load-shedding episodes fired.
func (e *Engine) ShedEvents() int { return e.shedEvents }

// ListenerPanics returns how many listener callbacks panicked (and were
// isolated).
func (e *Engine) ListenerPanics() int { return e.listenerPanics }

// Redelivered returns records re-fetched after partition outages — the
// at-least-once duplicate count.
func (e *Engine) Redelivered() int64 { return e.group.Redelivered() }

// CommittedLag returns records produced but not yet durably processed.
func (e *Engine) CommittedLag() int64 { return e.group.CommittedLag() }

// FullyCommitted reports whether every produced record was processed by a
// successful batch — the zero-loss invariant once a run has drained.
func (e *Engine) FullyCommitted() bool { return e.group.FullyCommitted() }

// Partitions returns the topic partition count.
func (e *Engine) Partitions() int { return len(e.topic.Partitions) }

// SetIngestCap adjusts the accepted input rate limit (records/second);
// non-positive removes the limit. This is the actuator for the
// back-pressure baseline and the ingest_cap axis of the widened config
// space.
func (e *Engine) SetIngestCap(limit float64) { e.ingestCap = limit }

// IngestCap returns the current accepted input rate limit (records/second);
// 0 means uncapped.
func (e *Engine) IngestCap() float64 { return e.ingestCap }

// SetTaskMaxFailures adjusts the per-batch attempt budget at runtime — the
// actuator for the widened config space's retry_budget axis. Values below 1
// clamp to 1 (every batch gets at least one attempt). The new budget
// applies to attempts finishing after the call.
func (e *Engine) SetTaskMaxFailures(n int) {
	if n < 1 {
		n = 1
	}
	e.opts.TaskMaxFailures = n
}

// TaskMaxFailures returns the live per-batch attempt budget.
func (e *Engine) TaskMaxFailures() int { return e.opts.TaskMaxFailures }

// SetSpeculativeMultiplier adjusts the speculation slowdown gate at runtime
// — the actuator for the widened config space's speculation_threshold axis.
// Values below 1 clamp to 1 (speculate on any slowdown); disabling
// speculation entirely remains a construction-time choice.
func (e *Engine) SetSpeculativeMultiplier(m float64) {
	if m < 1 {
		m = 1
	}
	e.opts.SpeculativeMultiplier = m
}

// SpeculativeMultiplier returns the live speculation slowdown gate.
func (e *Engine) SpeculativeMultiplier() float64 { return e.opts.SpeculativeMultiplier }

// RecentRateMean returns the mean observed arrival rate (records/second)
// over the rate window.
func (e *Engine) RecentRateMean() float64 { return e.rates.Mean() }

// RecentRateStd returns the standard deviation of the observed arrival rate
// over the rate window — the signal §5.5 thresholds to detect surges.
func (e *Engine) RecentRateStd() float64 { return e.rates.Std() }

// Clock exposes the engine's clock for controllers that must co-schedule.
func (e *Engine) Clock() *sim.Clock { return e.clock }

// Workload returns the engine's workload.
func (e *Engine) Workload() workload.Workload { return e.wl }
