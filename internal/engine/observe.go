// Observability instrumentation for the engine: a nil-safe bundle of
// metrics instruments and trace lanes fed from the engine's event handlers
// and, via broker.Observer, from the message bus. Everything here is
// passive — no randomness, no event scheduling, no engine-state mutation —
// so enabling observability cannot perturb a seeded run (the determinism
// contract's byte-identical-history guarantee extends to instrumented
// runs).
package engine

import (
	"fmt"
	"time"

	"nostop/internal/broker"
	"nostop/internal/metrics"
	"nostop/internal/sim"
	"nostop/internal/tracing"
)

// Trace lanes (Chrome trace_event pid/tid pairs). Exported so the other
// instrumented layers (controller, fault injector, commands) share one
// timeline layout.
const (
	// PidBroker is the message-bus process lane.
	PidBroker = 1
	// PidEngine is the streaming-engine process lane.
	PidEngine = 2
	// PidController is the NoStop controller process lane.
	PidController = 3
	// PidFaults is the fault-injector process lane.
	PidFaults = 4

	// TidConsumer is the broker lane for consumer-side activity.
	TidConsumer = 1
	// TidReceiver is the engine lane for batch cuts and queue residence.
	TidReceiver = 1
	// TidExecutors is the engine lane for task-wave execution attempts.
	TidExecutors = 2
	// TidConfig is the engine lane for reconfiguration events.
	TidConfig = 3
)

// obsState bundles the engine's metric instruments and tracer. A nil
// *obsState (observability disabled) turns every method into a no-op.
type obsState struct {
	tr *tracing.Tracer
	// traceOn gates trace emission at the call sites: constructing the
	// tracing.Args map (and Sprintf'ing span names) allocates even when the
	// tracer is nil, so the metrics-only configuration checks this flag
	// before building any trace payload. Keeps the no-trace hot path
	// allocation-free (enforced by TestAllocsObservation).
	traceOn bool

	recordsProduced  *metrics.Counter
	recordsFetched   *metrics.Counter
	recordsCommitted *metrics.Counter
	redeliveries     *metrics.Counter
	partitionOutages *metrics.Counter
	brokerLag        *metrics.Gauge
	committedLag     *metrics.Gauge

	batchesCut       *metrics.Counter
	batchesCompleted *metrics.Counter
	batchesFailed    *metrics.Counter
	recordsDropped   *metrics.Counter
	taskRetries      *metrics.Counter
	speculations     *metrics.Counter
	shedEvents       *metrics.Counter
	tasksDispatched  *metrics.Counter
	reconfigs        *metrics.Counter

	queueLen      *metrics.Gauge
	liveExecutors *metrics.Gauge
	cfgInterval   *metrics.Gauge
	cfgExecutors  *metrics.Gauge

	procHist    *metrics.Histogram
	schedHist   *metrics.Histogram
	e2eHist     *metrics.Histogram
	totalHist   *metrics.Histogram
	recordsHist *metrics.Histogram
}

// newObsState registers the engine's instruments. Returns nil when both
// sinks are absent, which disables all instrumentation at a single check.
func newObsState(reg *metrics.Registry, tr *tracing.Tracer) *obsState {
	if reg == nil && tr == nil {
		return nil
	}
	o := &obsState{
		tr:      tr,
		traceOn: tr != nil,

		recordsProduced:  reg.Counter("nostop_broker_records_produced_total", "Records appended to broker partition logs"),
		recordsFetched:   reg.Counter("nostop_broker_records_fetched_total", "Records consumed from the broker by the receiver"),
		recordsCommitted: reg.Counter("nostop_broker_records_committed_total", "Records durably committed after successful batch processing"),
		redeliveries:     reg.Counter("nostop_broker_redeliveries_total", "Records re-fetched after partition-outage rewinds (at-least-once duplicates)"),
		partitionOutages: reg.Counter("nostop_broker_partition_outages_total", "Partition leader outages observed"),
		brokerLag:        reg.Gauge("nostop_broker_lag_records", "Unfetched records across partitions (consumer lag)"),
		committedLag:     reg.Gauge("nostop_broker_committed_lag_records", "Records produced but not yet durably processed"),

		batchesCut:       reg.Counter("nostop_batches_cut_total", "Batches cut by the receiver at batch-interval boundaries"),
		batchesCompleted: reg.Counter("nostop_batches_completed_total", "Batches that completed processing successfully"),
		batchesFailed:    reg.Counter("nostop_batches_failed_total", "Batches abandoned after exhausting the task retry budget"),
		recordsDropped:   reg.Counter("nostop_records_dropped_total", "Records rejected by the ingest cap (back-pressure or load shedding)"),
		taskRetries:      reg.Counter("nostop_task_retries_total", "Transient task-failure retries executed"),
		speculations:     reg.Counter("nostop_speculations_total", "Batches speculatively re-executed to dodge stragglers"),
		shedEvents:       reg.Counter("nostop_shed_events_total", "Emergency load-shedding episodes triggered"),
		tasksDispatched:  reg.Counter("nostop_tasks_dispatched_total", "Tasks dispatched to the executor pool (one per receiver block)"),
		reconfigs:        reg.Counter("nostop_reconfigurations_total", "Runtime configuration changes applied"),

		queueLen:      reg.Gauge("nostop_batch_queue_length", "Batches waiting in the scheduler queue"),
		liveExecutors: reg.Gauge("nostop_executors_live", "Currently allocated executors (falls below the configured count after node failures)"),
		cfgInterval:   reg.Gauge("nostop_config_batch_interval_seconds", "Live batch interval"),
		cfgExecutors:  reg.Gauge("nostop_config_executors", "Configured executor count"),

		procHist:    reg.Histogram("nostop_batch_processing_seconds", "Batch processing time (successful attempt)", metrics.DelaySecondsBuckets()),
		schedHist:   reg.Histogram("nostop_batch_scheduling_delay_seconds", "Batch scheduling delay (queue wait including retry backoffs)", metrics.DelaySecondsBuckets()),
		e2eHist:     reg.Histogram("nostop_batch_e2e_delay_seconds", "End-to-end record delay (half interval + scheduling + processing)", metrics.DelaySecondsBuckets()),
		totalHist:   reg.Histogram("nostop_batch_total_delay_seconds", "Batch total delay (processing + scheduling), the Eq. 3 measured quantity", metrics.DelaySecondsBuckets()),
		recordsHist: reg.Histogram("nostop_batch_records", "Records per batch", metrics.RecordCountBuckets()),
	}
	tr.NameProcess(PidBroker, "broker")
	tr.NameThread(PidBroker, TidConsumer, "consumer")
	tr.NameProcess(PidEngine, "streaming-engine")
	tr.NameThread(PidEngine, TidReceiver, "receiver/queue")
	tr.NameThread(PidEngine, TidExecutors, "executor-pool")
	tr.NameThread(PidEngine, TidConfig, "reconfiguration")
	return o
}

// OnAppend implements broker.Observer (producer→partition appends).
//nostop:hotpath
func (o *obsState) OnAppend(topic string, partition int, n int64) {
	if o == nil {
		return
	}
	o.recordsProduced.Add(float64(n))
}

// OnFetch implements broker.Observer (receiver pull). One fetch happens per
// batch cut, so a trace instant per call stays cheap.
//nostop:hotpath
func (o *obsState) OnFetch(topic string, n int64, ranges []broker.OffsetRange) {
	if o == nil {
		return
	}
	o.recordsFetched.Add(float64(n))
	if o.traceOn {
		o.traceFetch(n, len(ranges))
	}
}

// traceFetch emits the fetch instant. Like every trace* helper below it is
// opt-in (traceOn) and outside the zero-alloc budget that
// TestAllocsObservation pins on the metrics-only path.
//
//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (o *obsState) traceFetch(n int64, ranges int) {
	o.tr.Instant(PidBroker, TidConsumer, "broker", "fetch",
		tracing.Args{"records": n, "ranges": ranges})
}

// OnCommit implements broker.Observer (offset-range commit).
//nostop:hotpath
func (o *obsState) OnCommit(topic string, n int64, ranges []broker.OffsetRange) {
	if o == nil {
		return
	}
	o.recordsCommitted.Add(float64(n))
}

// OnRewind implements broker.Observer (outage-triggered replay).
//nostop:hotpath
func (o *obsState) OnRewind(topic string, partition int, redelivered int64) {
	if o == nil {
		return
	}
	o.redeliveries.Add(float64(redelivered))
	if o.traceOn {
		o.traceRewind(partition, redelivered)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (o *obsState) traceRewind(partition int, redelivered int64) {
	o.tr.Instant(PidBroker, TidConsumer, "broker", "rewind",
		tracing.Args{"partition": partition, "redelivered": redelivered})
}

// OnOutage implements broker.Observer (partition leader down/up).
//nostop:hotpath
func (o *obsState) OnOutage(topic string, partition int, down bool) {
	if o == nil {
		return
	}
	if down {
		o.partitionOutages.Inc()
	}
	if o.traceOn {
		o.traceOutage(partition, down)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (o *obsState) traceOutage(partition int, down bool) {
	// Two constant-name call sites rather than a computed name: the
	// obscontract analyzer can then prove the cardinality bound.
	if down {
		o.tr.Instant(PidBroker, TidConsumer, "broker", "partition-outage", tracing.Args{"partition": partition})
	} else {
		o.tr.Instant(PidBroker, TidConsumer, "broker", "partition-restored", tracing.Args{"partition": partition})
	}
}

// onBatchCut records a batch entering the queue: the receiver drained the
// topic, cut blocks into tasks, and enqueued the batch.
func (e *Engine) onBatchCut(b *batch) {
	o := e.obs
	if o == nil {
		return
	}
	o.batchesCut.Inc()
	o.recordsHist.Observe(float64(b.records))
	o.queueLen.Set(float64(len(e.queue)))
	o.brokerLag.Set(float64(e.group.Lag()))
	o.committedLag.Set(float64(e.group.CommittedLag()))
	if o.traceOn {
		e.traceBatchCut(b)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceBatchCut(b *batch) {
	o := e.obs
	//nostop:allow obscontract -- per-batch span name: bounded by the run horizon, golden-pinned trace output
	o.tr.Instant(PidEngine, TidReceiver, "engine", fmt.Sprintf("cut batch %d", b.id),
		tracing.Args{"records": b.records, "queue": len(e.queue), "faulty": b.faulty})
	o.tr.Counter(PidEngine, "queue", tracing.Args{"batches": len(e.queue)})
	o.tr.Counter(PidEngine, "lag", tracing.Args{"records": e.group.Lag()})
}

// onAttempt records one resolved execution attempt as a span on the
// executor lane (emitted at completion, when the duration is known).
func (e *Engine) onAttempt(b *batch, start sim.Time, proc time.Duration, failed bool) {
	o := e.obs
	if o == nil {
		return
	}
	o.tasksDispatched.Add(float64(b.tasks))
	if o.traceOn {
		e.traceAttempt(b, start, proc, failed)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceAttempt(b *batch, start sim.Time, proc time.Duration, failed bool) {
	//nostop:allow obscontract -- per-batch span name: bounded by the run horizon, golden-pinned trace output
	e.obs.tr.Span(PidEngine, TidExecutors, "engine", fmt.Sprintf("batch %d", b.id), start, proc,
		tracing.Args{"attempt": b.attempts, "records": b.records, "tasks": b.tasks, "failed": failed})
}

// onRetry records a transient task-failure retry and its backoff.
func (e *Engine) onRetry(b *batch, backoff time.Duration) {
	o := e.obs
	if o == nil {
		return
	}
	o.taskRetries.Inc()
	if o.traceOn {
		e.traceRetry(b, backoff)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceRetry(b *batch, backoff time.Duration) {
	//nostop:allow obscontract -- per-batch span name: bounded by the run horizon, golden-pinned trace output
	e.obs.tr.Instant(PidEngine, TidExecutors, "engine", fmt.Sprintf("retry batch %d", b.id),
		tracing.Args{"attempt": b.attempts, "backoff_ms": backoff.Milliseconds()})
}

// onSpeculation records a speculative re-execution decision.
func (e *Engine) onSpeculation(b *batch) {
	o := e.obs
	if o == nil {
		return
	}
	o.speculations.Inc()
	if o.traceOn {
		e.traceSpeculation(b)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceSpeculation(b *batch) {
	//nostop:allow obscontract -- per-batch span name: bounded by the run horizon, golden-pinned trace output
	e.obs.tr.Instant(PidEngine, TidExecutors, "engine", fmt.Sprintf("speculate batch %d", b.id), nil)
}

// onBatchFailed records a batch abandoned after retry-budget exhaustion.
func (e *Engine) onBatchFailed(b *batch) {
	o := e.obs
	if o == nil {
		return
	}
	o.batchesFailed.Inc()
	if o.traceOn {
		e.traceBatchFailed(b)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceBatchFailed(b *batch) {
	//nostop:allow obscontract -- per-batch span name: bounded by the run horizon, golden-pinned trace output
	e.obs.tr.Instant(PidEngine, TidExecutors, "engine", fmt.Sprintf("batch %d FAILED", b.id),
		tracing.Args{"attempts": b.attempts, "records": b.records})
}

// onShed records an emergency load-shed episode.
func (e *Engine) onShed(rate float64, until sim.Time) {
	o := e.obs
	if o == nil {
		return
	}
	o.shedEvents.Inc()
	if o.traceOn {
		e.traceShed(rate, until)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceShed(rate float64, until sim.Time) {
	e.obs.tr.Instant(PidEngine, TidReceiver, "engine", "load-shed",
		tracing.Args{"cap_rate": rate, "until_s": until.Seconds()})
}

// onBatchComplete records a successful batch: queue-residence span,
// delay histograms, and live gauges.
func (e *Engine) onBatchComplete(b *batch, bs BatchStats) {
	o := e.obs
	if o == nil {
		return
	}
	o.batchesCompleted.Inc()
	o.procHist.Observe(bs.ProcessingTime.Seconds())
	o.schedHist.Observe(bs.SchedulingDelay.Seconds())
	o.e2eHist.Observe(bs.EndToEndDelay.Seconds())
	o.totalHist.Observe((bs.ProcessingTime + bs.SchedulingDelay).Seconds())
	o.queueLen.Set(float64(len(e.queue)))
	o.liveExecutors.Set(float64(len(e.execs)))
	o.brokerLag.Set(float64(e.group.Lag()))
	o.committedLag.Set(float64(e.group.CommittedLag()))
	if o.traceOn {
		e.traceBatchComplete(b, bs)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceBatchComplete(b *batch, bs BatchStats) {
	o := e.obs
	if bs.SchedulingDelay > 0 {
		//nostop:allow obscontract -- per-batch span name: bounded by the run horizon, golden-pinned trace output
		o.tr.Span(PidEngine, TidReceiver, "engine", fmt.Sprintf("queued batch %d", b.id),
			b.cutAt, bs.SchedulingDelay, tracing.Args{"records": b.records})
	}
	o.tr.Counter(PidEngine, "queue", tracing.Args{"batches": len(e.queue)})
	o.tr.Counter(PidEngine, "lag", tracing.Args{"records": e.group.Lag()})
}

// onReconfigure records an applied configuration change.
func (e *Engine) onReconfigure(cfg Config) {
	o := e.obs
	if o == nil {
		return
	}
	o.reconfigs.Inc()
	o.cfgInterval.Set(cfg.BatchInterval.Seconds())
	o.cfgExecutors.Set(float64(cfg.Executors))
	if o.traceOn {
		e.traceReconfigure(cfg)
	}
}

//nostop:allow hotalloc -- opt-in trace branch, off the 0-alloc budget path
func (e *Engine) traceReconfigure(cfg Config) {
	e.obs.tr.Instant(PidEngine, TidConfig, "engine", "reconfigure",
		tracing.Args{"interval_ms": cfg.BatchInterval.Milliseconds(), "executors": cfg.Executors})
}

// onReallocate records an executor-pool rebuild after a capacity change.
func (e *Engine) onReallocate() {
	o := e.obs
	if o == nil {
		return
	}
	o.liveExecutors.Set(float64(len(e.execs)))
	if o.traceOn {
		o.tr.Instant(PidEngine, TidConfig, "engine", "reallocate",
			tracing.Args{"live_executors": len(e.execs), "configured": e.cfg.Executors})
	}
}

// onDropped records records rejected by the effective ingest cap.
func (e *Engine) onDropped(n float64) {
	if e.obs == nil || n <= 0 {
		return
	}
	e.obs.recordsDropped.Add(n)
}
