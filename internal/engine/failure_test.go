package engine

import (
	"testing"
	"time"

	"nostop/internal/cluster"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func TestFailNodeSheds_Executors(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.Initial = Config{BatchInterval: 5 * time.Second, Executors: 20}
	})
	clock.RunUntil(sim.Time(sec(20)))
	if e.LiveExecutors() != 20 {
		t.Fatalf("live executors %d, want 20", e.LiveExecutors())
	}
	// Kill a 6-core worker: capacity drops to 18, so the allocation must
	// shrink below the configured 20.
	clock.At(sim.Time(sec(22)), func() {
		if err := e.FailNode(3); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	clock.RunUntil(sim.Time(sec(40)))
	if e.LiveExecutors() != 18 {
		t.Fatalf("live executors %d after failure, want 18", e.LiveExecutors())
	}
	if e.Config().Executors != 20 {
		t.Fatalf("configured executors changed: %d", e.Config().Executors)
	}
	// Restore: allocation refills to the configured count.
	clock.At(sim.Time(sec(42)), func() {
		if err := e.RestoreNode(3); err != nil {
			t.Errorf("RestoreNode: %v", err)
		}
	})
	clock.RunUntil(sim.Time(sec(60)))
	if e.LiveExecutors() != 20 {
		t.Fatalf("live executors %d after restore, want 20", e.LiveExecutors())
	}
}

func TestFailNodeChargesSetupAndFlags(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.ReconfigSetup = 8 * time.Second
	})
	clock.At(sim.Time(sec(12)), func() { _ = e.FailNode(4) })
	clock.RunUntil(sim.Time(sec(60)))
	var flagged, slow bool
	for _, b := range e.History() {
		if b.FirstAfterReconfig {
			flagged = true
		}
		if b.ProcessingTime > 8*time.Second {
			slow = true
		}
	}
	if !flagged {
		t.Error("failure did not flag the next batch")
	}
	if !slow {
		t.Error("failure did not charge the setup cost")
	}
}

func TestFailUnknownNode(t *testing.T) {
	_, e := newEngine(t, nil)
	if err := e.FailNode(99); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestTotalOutageStallsAndRecovers(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.Cluster = cluster.Homogeneous(2, 6)
		o.Bounds = Bounds{
			MinInterval: time.Second, MaxInterval: 40 * time.Second,
			MinExecutors: 1, MaxExecutors: 12,
		}
		o.Initial = Config{BatchInterval: 5 * time.Second, Executors: 8}
	})
	clock.At(sim.Time(sec(20)), func() {
		_ = e.FailNode(2)
		_ = e.FailNode(3)
	})
	clock.RunUntil(sim.Time(sec(60)))
	if e.LiveExecutors() != 0 {
		t.Fatalf("live executors %d during total outage", e.LiveExecutors())
	}
	before := len(e.History())
	clock.RunUntil(sim.Time(sec(120)))
	if got := len(e.History()); got != before {
		t.Fatalf("batches completed during total outage: %d → %d", before, got)
	}
	if e.QueueLen() < 10 {
		t.Fatalf("queue %d during outage, expected pile-up", e.QueueLen())
	}
	// One node returns: processing resumes and the queue drains.
	clock.At(sim.Time(sec(122)), func() { _ = e.RestoreNode(2) })
	clock.RunUntil(sim.Time(sec(600)))
	if len(e.History()) == before {
		t.Fatal("no batches completed after restoration")
	}
	if e.LiveExecutors() != 6 {
		t.Fatalf("live executors %d after partial restore, want 6", e.LiveExecutors())
	}
}

func TestReconfigureDuringFailureDegradesGracefully(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.Initial = Config{BatchInterval: 5 * time.Second, Executors: 8}
	})
	clock.At(sim.Time(sec(10)), func() {
		_ = e.FailNode(2)
		_ = e.FailNode(3)
		// Ask for more executors than the degraded cluster can host.
		if err := e.Reconfigure(Config{BatchInterval: 5 * time.Second, Executors: 20}); err != nil {
			t.Errorf("Reconfigure during failure: %v", err)
		}
	})
	clock.RunUntil(sim.Time(sec(60)))
	// Capacity with nodes 4 and 5 alive is 12: the allocation caps there.
	if e.LiveExecutors() != 12 {
		t.Fatalf("live executors %d, want capped 12", e.LiveExecutors())
	}
	clock.At(sim.Time(sec(62)), func() { _ = e.RestoreNode(2) })
	clock.RunUntil(sim.Time(sec(120)))
	if e.LiveExecutors() != 18 {
		t.Fatalf("live executors %d after restore, want 18", e.LiveExecutors())
	}
}

func TestNoStopAdaptsToNodeFailure(t *testing.T) {
	// System-level: run a tuned LogReg stream, kill a fast worker
	// mid-run, and verify the stream survives with a bounded queue (the
	// controller re-optimizes for the smaller cluster).
	clock := sim.NewClock()
	seed := rng.New(77)
	wl := workload.NewLogisticRegression()
	lo, hi := wl.RateBand()
	e, err := New(clock, Options{
		Workload: wl,
		Trace:    ratetrace.NewUniformBand(lo, hi, 5*time.Second, seed.Split("trace")),
		Seed:     seed.Split("engine"),
		Initial:  Config{BatchInterval: 10 * time.Second, Executors: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	clock.At(sim.Time(sec(1800)), func() { _ = e.FailNode(5) })
	clock.RunUntil(sim.Time(sec(3600)))
	if e.LiveExecutors() == 0 {
		t.Fatal("no executors after single-node failure")
	}
	if q := e.QueueLen(); q > 30 {
		t.Fatalf("queue %d after failure on a fixed config", q)
	}
}

func TestBlockIntervalCapsParallelism(t *testing.T) {
	// A block interval equal to the batch interval yields one task per
	// batch: parallelism collapses to ~1 regardless of executors.
	run := func(block time.Duration) time.Duration {
		clock, e := newEngine(t, func(o *Options) {
			o.Workload = workload.NewLogisticRegression()
			o.Trace = ratetrace.Constant{Rate: 5000}
			o.Bounds = Bounds{
				MinInterval: time.Second, MaxInterval: 40 * time.Second,
				MinExecutors: 1, MaxExecutors: 20,
				MinBlock: 50 * time.Millisecond, MaxBlock: 10 * time.Second,
			}
			o.Initial = Config{BatchInterval: 10 * time.Second, Executors: 16, BlockInterval: block}
		})
		clock.RunUntil(sim.Time(sec(120)))
		h := e.History()
		return h[len(h)-1].ProcessingTime
	}
	coarse := run(10 * time.Second)
	fine := run(200 * time.Millisecond)
	if coarse <= 2*fine {
		t.Fatalf("one-task batches (%v) should be far slower than 50-task batches (%v)", coarse, fine)
	}
}

func TestBlockIntervalDispatchOverhead(t *testing.T) {
	// Over-fine blocks multiply task dispatch cost.
	run := func(block time.Duration) time.Duration {
		clock, e := newEngine(t, func(o *Options) {
			o.Trace = ratetrace.Constant{Rate: 1000}
			o.TaskDispatchCost = 5 * time.Millisecond
			o.Bounds = Bounds{
				MinInterval: time.Second, MaxInterval: 40 * time.Second,
				MinExecutors: 1, MaxExecutors: 20,
				MinBlock: 10 * time.Millisecond, MaxBlock: 10 * time.Second,
			}
			o.Initial = Config{BatchInterval: 10 * time.Second, Executors: 8, BlockInterval: block}
		})
		clock.RunUntil(sim.Time(sec(120)))
		h := e.History()
		return h[len(h)-1].ProcessingTime
	}
	fine := run(10 * time.Millisecond)    // 1000 tasks → +5s dispatch
	normal := run(500 * time.Millisecond) // 20 tasks → +0.1s
	if fine < normal+4*time.Second {
		t.Fatalf("1000-task dispatch (%v) not ≈5s above 20-task (%v)", fine, normal)
	}
}

func TestBoundsPinBlockIntervalWhenUntunable(t *testing.T) {
	b := DefaultBounds() // no block bounds
	cfg := b.Clamp(Config{BatchInterval: 10 * time.Second, Executors: 5, BlockInterval: 700 * time.Millisecond})
	if cfg.BlockInterval != 0 {
		t.Fatalf("untunable block interval not pinned to 0: %v", cfg.BlockInterval)
	}
	b.MinBlock, b.MaxBlock = 100*time.Millisecond, time.Second
	cfg = b.Clamp(Config{BatchInterval: 10 * time.Second, Executors: 5, BlockInterval: 5 * time.Second})
	if cfg.BlockInterval != time.Second {
		t.Fatalf("block interval not clamped: %v", cfg.BlockInterval)
	}
}
