package engine

import (
	"testing"
	"testing/quick"
	"time"

	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

// Property-based invariants over random configurations and seeds: whatever
// the configuration, the engine must conserve records, order batches, and
// keep its timing arithmetic consistent.

func TestEngineInvariantsProperty(t *testing.T) {
	f := func(seedN uint64, intervalRaw, execRaw uint8, rateRaw uint16) bool {
		interval := time.Duration(int(intervalRaw)%39+1) * time.Second
		execs := int(execRaw)%20 + 1
		rate := float64(rateRaw%20000 + 500)
		clock := sim.NewClock()
		e, err := New(clock, Options{
			Workload: workload.NewWordCount(),
			Trace:    ratetrace.Constant{Rate: rate},
			Seed:     rng.New(seedN),
			Initial:  Config{BatchInterval: interval, Executors: execs},
		})
		if err != nil {
			return false
		}
		if err := e.Start(); err != nil {
			return false
		}
		clock.RunUntil(sim.Time(10 * time.Minute))

		// Invariant 1: records are conserved — processed + queued +
		// broker lag = produced (within the in-flight batch).
		var processed int64
		for _, b := range e.History() {
			processed += b.Records
		}
		if processed > e.TotalRecords() {
			return false
		}

		prevDone := sim.Time(-1)
		for i, b := range e.History() {
			// Invariant 2: IDs dense and ordered, completions ordered.
			if b.ID != int64(i) || b.DoneAt < prevDone {
				return false
			}
			prevDone = b.DoneAt
			// Invariant 3: timing arithmetic.
			if b.StartedAt != b.CutAt+sim.Time(b.SchedulingDelay) {
				return false
			}
			if b.DoneAt != b.StartedAt+sim.Time(b.ProcessingTime) {
				return false
			}
			if b.SchedulingDelay < 0 || b.ProcessingTime <= 0 {
				return false
			}
			// Invariant 4: e2e composition.
			if b.EndToEndDelay != b.Config.BatchInterval/2+b.SchedulingDelay+b.ProcessingTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReconfigSequenceProperty(t *testing.T) {
	// Random reconfiguration sequences must never corrupt executor
	// accounting: live executors always equal the live config's count
	// (full capacity available) and cluster books balance at the end.
	f := func(seedN uint64, steps []uint16) bool {
		clock := sim.NewClock()
		r := rng.New(seedN)
		e, err := New(clock, Options{
			Workload: workload.NewWordCount(),
			Trace:    ratetrace.Constant{Rate: 2000},
			Seed:     rng.New(seedN),
			Initial:  Config{BatchInterval: 5 * time.Second, Executors: 8},
		})
		if err != nil || e.Start() != nil {
			return false
		}
		if len(steps) > 12 {
			steps = steps[:12]
		}
		for i, s := range steps {
			at := sim.Time(time.Duration(i+1) * 30 * time.Second)
			cfg := Config{
				BatchInterval: time.Duration(int(s)%39+1) * time.Second,
				Executors:     r.Intn(20) + 1,
			}
			clock.At(at, func() { _ = e.Reconfigure(cfg) })
		}
		clock.RunUntil(sim.Time(15 * time.Minute))
		if e.LiveExecutors() != e.Config().Executors {
			return false
		}
		// The engine's allocation is the only one: used cores must match.
		return e.LiveExecutors() == usedCores(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func usedCores(e *Engine) int { return e.cl.UsedCores() }
