package engine

import (
	"testing"
	"time"

	"nostop/internal/sim"
)

func TestTaskRetrySucceedsWithinBudget(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(30)))
	e.SetTaskFailureRate(0.5)
	clock.RunUntil(sim.Time(sec(300)))
	e.SetTaskFailureRate(0)
	clock.RunUntil(sim.Time(sec(360)))
	if e.TaskRetries() == 0 {
		t.Fatal("no retries under a 50% task-failure rate")
	}
	var retried bool
	for _, b := range e.History() {
		if b.Attempts > 1 {
			retried = true
		}
		if b.Attempts < 1 {
			t.Fatalf("batch %d completed with %d attempts", b.ID, b.Attempts)
		}
	}
	if !retried {
		t.Fatal("no completed batch recorded more than one attempt")
	}
}

func TestRetryBackoffSurfacesAsSchedulingDelay(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.RetryBackoff = 4 * time.Second
	})
	clock.RunUntil(sim.Time(sec(20)))
	e.SetTaskFailureRate(0.9)
	clock.RunUntil(sim.Time(sec(200)))
	e.SetTaskFailureRate(0)
	clock.RunUntil(sim.Time(sec(260)))
	var sawBackoff bool
	for _, b := range e.History() {
		if b.Attempts > 1 && b.SchedulingDelay >= 4*time.Second {
			sawBackoff = true
		}
	}
	if !sawBackoff {
		t.Fatal("retried batches show no backoff in scheduling delay")
	}
}

func TestRetryBudgetExhaustionFailsBatchAndSheds(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.TaskMaxFailures = 2
		o.RetryBackoff = time.Second
	})
	clock.RunUntil(sim.Time(sec(30)))
	e.SetTaskFailureRate(1) // every attempt fails: budgets must exhaust
	clock.RunUntil(sim.Time(sec(120)))
	if e.FailedBatches() == 0 {
		t.Fatal("certain task failure produced no failed batches")
	}
	if e.FailedRecords() == 0 {
		t.Fatal("failed batches carried no records")
	}
	if e.ShedEvents() == 0 {
		t.Fatal("budget exhaustion did not trigger load shedding")
	}
	before := e.DroppedByCap()
	clock.RunUntil(sim.Time(sec(150)))
	if e.DroppedByCap() <= before {
		t.Fatal("shed cap is not dropping ingest")
	}
	// Recovery: the failure clears and the shed window expires; ingest
	// flows again and batches complete cleanly.
	e.SetTaskFailureRate(0)
	done := len(e.History())
	clock.RunUntil(sim.Time(sec(400)))
	if len(e.History()) <= done {
		t.Fatal("no batches completed after the failure cleared")
	}
}

func TestStragglerSlowdownStretchesBatches(t *testing.T) {
	run := func(slow bool) time.Duration {
		clock, e := newEngine(t, func(o *Options) {
			o.SpeculativeMultiplier = -1 // isolate raw straggler effect
		})
		if slow {
			// Straggle every worker so the slowdown cannot be dodged.
			for _, id := range []int{2, 3, 4, 5} {
				if err := e.SetNodeSlowdown(id, 4); err != nil {
					t.Fatal(err)
				}
			}
		}
		clock.RunUntil(sim.Time(sec(120)))
		h := e.History()
		return h[len(h)-1].ProcessingTime
	}
	healthy := run(false)
	straggled := run(true)
	if straggled < 2*healthy {
		t.Fatalf("4x straggler on all nodes: %v not well above healthy %v", straggled, healthy)
	}
}

func TestSpeculationDodgesStragglers(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(30)))
	// A single node 8x slower drags effective parallelism far enough for
	// speculation to trigger.
	if err := e.SetNodeSlowdown(2, 8); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(300)))
	if e.Speculations() == 0 {
		t.Fatal("no speculative re-executions under an 8x straggler")
	}
	var flagged bool
	for _, b := range e.History() {
		if b.Speculated {
			flagged = true
			if !b.FaultActive {
				t.Fatalf("speculated batch %d not flagged FaultActive", b.ID)
			}
		}
	}
	if !flagged {
		t.Fatal("no batch carries the Speculated flag")
	}
	// Clearing the slowdown clears the fault window.
	if err := e.SetNodeSlowdown(2, 1); err != nil {
		t.Fatal(err)
	}
	if e.FaultInEffect() {
		t.Fatal("fault still in effect after straggler cleared")
	}
}

func TestPartitionOutageReplaysThroughEngine(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(40)))
	if err := e.FailPartition(0); err != nil {
		t.Fatal(err)
	}
	if err := e.FailPartition(1); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(sim.Time(sec(100)))
	if !e.FaultInEffect() {
		t.Fatal("partition outage not reported as a live fault")
	}
	for _, p := range []int{0, 1} {
		if err := e.RestorePartition(p); err != nil {
			t.Fatal(err)
		}
	}
	// Let the backlog drain, then stop ingest and drain completely.
	clock.RunUntil(sim.Time(sec(400)))
	e.Stop()
	clock.Run()
	if lag := e.CommittedLag(); lag > e.Lag()+int64(e.QueueLen())*100000 {
		t.Fatalf("committed lag %d not accounted for", lag)
	}
	if e.FailedRecords() != 0 {
		t.Fatalf("outage lost %d records", e.FailedRecords())
	}
}

func TestFailPartitionValidatesIndex(t *testing.T) {
	_, e := newEngine(t, nil)
	if err := e.FailPartition(-1); err == nil {
		t.Fatal("negative partition accepted")
	}
	if err := e.FailPartition(1 << 20); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestIngestBoostRaisesObservedRate(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(60)))
	base := e.RecentRateMean()
	e.SetIngestBoost(2)
	clock.RunUntil(sim.Time(sec(180)))
	if boosted := e.RecentRateMean(); boosted < 1.5*base {
		t.Fatalf("boosted rate %.0f not well above base %.0f", boosted, base)
	}
	e.SetIngestBoost(0) // reset
	if e.FaultInEffect() {
		t.Fatal("fault still in effect after boost reset")
	}
}

func TestListenerPanicIsIsolated(t *testing.T) {
	clock, e := newEngine(t, nil)
	var after int
	e.AddListener(ListenerFunc(func(bs BatchStats) {
		panic("misbehaving listener")
	}))
	e.AddListener(ListenerFunc(func(bs BatchStats) {
		after++ // must still run after the panicking listener
	}))
	clock.RunUntil(sim.Time(sec(60)))
	if e.ListenerPanics() == 0 {
		t.Fatal("listener panics not counted")
	}
	if after == 0 {
		t.Fatal("listener after the panicking one never ran")
	}
	if len(e.History()) == 0 {
		t.Fatal("simulation died with the panicking listener")
	}
}

func TestFaultActiveFlagsBatchesDuringNodeFailure(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.At(sim.Time(sec(30)), func() { _ = e.FailNode(3) })
	clock.At(sim.Time(sec(90)), func() { _ = e.RestoreNode(3) })
	clock.RunUntil(sim.Time(sec(200)))
	var during, cleanAfter bool
	for _, b := range e.History() {
		switch {
		case b.DoneAt > sim.Time(sec(30)) && b.DoneAt < sim.Time(sec(90)):
			if b.FaultActive {
				during = true
			}
		case b.CutAt > sim.Time(sec(100)):
			if !b.FaultActive {
				cleanAfter = true
			}
		}
	}
	if !during {
		t.Fatal("no batch flagged FaultActive during the node failure")
	}
	if !cleanAfter {
		t.Fatal("batches after restoration still flagged FaultActive")
	}
}
