package engine

import (
	"errors"
	"testing"
	"time"

	"nostop/internal/cluster"
	"nostop/internal/ratetrace"
	"nostop/internal/rng"
	"nostop/internal/sim"
	"nostop/internal/workload"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

// newEngine builds and starts an engine with sensible test defaults.
func newEngine(t *testing.T, mutate func(*Options)) (*sim.Clock, *Engine) {
	t.Helper()
	clock := sim.NewClock()
	opts := Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 1000},
		Seed:     rng.New(7),
		Initial:  Config{BatchInterval: 5 * time.Second, Executors: 8},
	}
	if mutate != nil {
		mutate(&opts)
	}
	e, err := New(clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return clock, e
}

func TestNewValidation(t *testing.T) {
	clock := sim.NewClock()
	good := Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 100},
	}
	if _, err := New(nil, good); err == nil {
		t.Error("nil clock accepted")
	}
	bad := good
	bad.Workload = nil
	if _, err := New(clock, bad); err == nil {
		t.Error("nil workload accepted")
	}
	bad = good
	bad.Trace = nil
	if _, err := New(clock, bad); err == nil {
		t.Error("nil trace accepted")
	}
	bad = good
	bad.Initial = Config{BatchInterval: time.Hour, Executors: 3}
	if _, err := New(clock, bad); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out-of-bounds initial: err=%v", err)
	}
	bad = good
	bad.Cluster = cluster.Homogeneous(1, 4)
	bad.Bounds = Bounds{MinInterval: time.Second, MaxInterval: time.Minute, MinExecutors: 1, MaxExecutors: 10}
	if _, err := New(clock, bad); err == nil {
		t.Error("bounds beyond cluster capacity accepted")
	}
}

func TestStartTwiceFails(t *testing.T) {
	_, e := newEngine(t, nil)
	if err := e.Start(); !errors.Is(err, ErrAlreadyStart) {
		t.Fatalf("second Start err=%v", err)
	}
}

func TestBatchesCutAtInterval(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(61)))
	h := e.History()
	// 12 cuts in 60s at 5s interval (first at t=5s); all complete quickly.
	if len(h) < 11 || len(h) > 13 {
		t.Fatalf("completed %d batches in 60s at 5s interval", len(h))
	}
	for i, b := range h {
		if b.ID != int64(i) {
			t.Fatalf("batch IDs out of order: %v", b.ID)
		}
		wantCut := sim.Time(sec(float64(i+1) * 5))
		if b.CutAt != wantCut {
			t.Fatalf("batch %d cut at %v, want %v", i, b.CutAt, wantCut)
		}
	}
}

func TestBatchRecordCountMatchesRate(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(120)))
	for _, b := range e.History()[1:] {
		// 1000 rec/s × 5s = 5000 records per batch.
		if b.Records < 4950 || b.Records > 5050 {
			t.Fatalf("batch %d has %d records, want ≈5000", b.ID, b.Records)
		}
	}
}

func TestStableConfigHasNoSchedulingDelay(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(300)))
	for _, b := range e.History() {
		if b.SchedulingDelay != 0 {
			t.Fatalf("batch %d scheduling delay %v in stable regime", b.ID, b.SchedulingDelay)
		}
	}
	if e.QueueLen() != 0 {
		t.Fatalf("queue length %d in stable regime", e.QueueLen())
	}
}

func TestUnstableConfigQueueGrows(t *testing.T) {
	// LogReg at 10k rec/s with 2 executors and a 2s interval: processing
	// time far exceeds the interval (§3.1 unstable regime).
	clock, e := newEngine(t, func(o *Options) {
		o.Workload = workload.NewLogisticRegression()
		o.Trace = ratetrace.Constant{Rate: 10000}
		o.Initial = Config{BatchInterval: 2 * time.Second, Executors: 2}
	})
	clock.RunUntil(sim.Time(sec(600)))
	h := e.History()
	if len(h) < 3 {
		t.Fatalf("only %d batches completed", len(h))
	}
	// Scheduling delay must grow monotonically (within noise) and end large.
	first := h[1].SchedulingDelay
	last := h[len(h)-1].SchedulingDelay
	if last <= first {
		t.Fatalf("scheduling delay not growing: first %v last %v", first, last)
	}
	if last < 30*time.Second {
		t.Fatalf("unstable run ended with small delay %v", last)
	}
	if e.QueueLen() < 10 {
		t.Fatalf("queue length %d, expected pile-up", e.QueueLen())
	}
}

func TestEndToEndDelayFormula(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(60)))
	for _, b := range e.History() {
		want := b.Config.BatchInterval/2 + b.SchedulingDelay + b.ProcessingTime
		if b.EndToEndDelay != want {
			t.Fatalf("batch %d e2e %v, want %v", b.ID, b.EndToEndDelay, want)
		}
	}
}

func TestReconfigureAppliesAtBoundary(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.At(sim.Time(sec(7)), func() {
		if err := e.Reconfigure(Config{BatchInterval: 10 * time.Second, Executors: 8}); err != nil {
			t.Errorf("Reconfigure: %v", err)
		}
	})
	clock.RunUntil(sim.Time(sec(66)))
	h := e.History()
	// Cuts at 5, 10 (old interval), then 20, 30, ... (new interval).
	if h[0].Config.BatchInterval != 5*time.Second {
		t.Fatalf("batch 0 interval %v", h[0].Config.BatchInterval)
	}
	var sawNew bool
	for _, b := range h {
		if b.Config.BatchInterval == 10*time.Second {
			sawNew = true
		}
	}
	if !sawNew {
		t.Fatal("new interval never took effect")
	}
	if e.Config().BatchInterval != 10*time.Second {
		t.Fatalf("live config %v", e.Config())
	}
	if e.Reconfigs() != 1 {
		t.Fatalf("Reconfigs=%d, want 1", e.Reconfigs())
	}
}

func TestFirstBatchAfterReconfigFlagged(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.At(sim.Time(sec(7)), func() {
		_ = e.Reconfigure(Config{BatchInterval: 5 * time.Second, Executors: 12})
	})
	clock.RunUntil(sim.Time(sec(60)))
	var flagged []int64
	for _, b := range e.History() {
		if b.FirstAfterReconfig {
			flagged = append(flagged, b.ID)
		}
	}
	if len(flagged) != 1 {
		t.Fatalf("flagged batches %v, want exactly one", flagged)
	}
}

func TestExecutorChangeChargesSetup(t *testing.T) {
	// Two identical runs except one reconfigures executor count; the first
	// batch after the change must pay the setup cost.
	run := func(reconfig bool) []BatchStats {
		clock, e := newEngine(t, func(o *Options) {
			o.ReconfigSetup = 5 * time.Second
		})
		if reconfig {
			clock.At(sim.Time(sec(7)), func() {
				_ = e.Reconfigure(Config{BatchInterval: 5 * time.Second, Executors: 9})
			})
		}
		clock.RunUntil(sim.Time(sec(40)))
		return e.History()
	}
	plain := run(false)
	changed := run(true)
	// Find the flagged batch and compare to the same-ID batch in the
	// plain run: the difference must be >= the setup cost (executor count
	// differs slightly too, but 5s dominates).
	var found bool
	for i, b := range changed {
		if b.FirstAfterReconfig && i < len(plain) {
			found = true
			delta := b.ProcessingTime - plain[i].ProcessingTime
			if delta < 4*time.Second {
				t.Fatalf("setup cost not charged: delta %v", delta)
			}
		}
	}
	if !found {
		t.Fatal("no flagged batch found")
	}
}

func TestIntervalOnlyChangeDoesNotChargeSetup(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.ReconfigSetup = 20 * time.Second
	})
	clock.At(sim.Time(sec(7)), func() {
		_ = e.Reconfigure(Config{BatchInterval: 6 * time.Second, Executors: 8})
	})
	clock.RunUntil(sim.Time(sec(60)))
	for _, b := range e.History() {
		if b.ProcessingTime > 10*time.Second {
			t.Fatalf("interval-only change charged setup: batch %d took %v", b.ID, b.ProcessingTime)
		}
	}
}

func TestReconfigureValidation(t *testing.T) {
	clock := sim.NewClock()
	e, err := New(clock, Options{
		Workload: workload.NewWordCount(),
		Trace:    ratetrace.Constant{Rate: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reconfigure(DefaultConfig()); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("pre-start Reconfigure err=%v", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Reconfigure(Config{BatchInterval: time.Hour, Executors: 2}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds Reconfigure err=%v", err)
	}
	if err := e.Reconfigure(e.Config()); err != nil {
		t.Fatalf("no-op Reconfigure err=%v", err)
	}
	if e.Reconfigs() != 0 {
		t.Fatal("no-op reconfigure counted")
	}
}

func TestMoreExecutorsProcessFaster(t *testing.T) {
	mean := func(executors int) float64 {
		clock, e := newEngine(t, func(o *Options) {
			o.Workload = workload.NewLogisticRegression()
			o.Trace = ratetrace.Constant{Rate: 10000}
			o.Initial = Config{BatchInterval: 20 * time.Second, Executors: executors}
		})
		clock.RunUntil(sim.Time(sec(400)))
		var sum float64
		var n int
		for _, b := range e.History() {
			sum += b.ProcessingTime.Seconds()
			n++
		}
		return sum / float64(n)
	}
	few := mean(3)
	many := mean(12)
	if many >= few {
		t.Fatalf("12 executors (%.2fs) not faster than 3 (%.2fs)", many, few)
	}
}

func TestPayloadPathProducesSemanticResults(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.PayloadsPerTick = 5
	})
	clock.RunUntil(sim.Time(sec(30)))
	h := e.History()
	if len(h) == 0 {
		t.Fatal("no batches")
	}
	var withSemantic int
	for _, b := range h {
		if b.Semantic.Records > 0 {
			withSemantic++
			if b.Semantic.Output["tokens"] <= 0 {
				t.Fatalf("semantic result missing tokens: %+v", b.Semantic)
			}
		}
	}
	if withSemantic == 0 {
		t.Fatal("no batch carried semantic results")
	}
}

func TestNoPayloadsByDefault(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(20)))
	for _, b := range e.History() {
		if b.Semantic.Records != 0 {
			t.Fatal("payloads present without PayloadsPerTick")
		}
	}
}

func TestRecentRateTracksTrace(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.RunUntil(sim.Time(sec(60)))
	if m := e.RecentRateMean(); m < 950 || m > 1050 {
		t.Fatalf("RecentRateMean=%v, want ≈1000", m)
	}
	if s := e.RecentRateStd(); s > 10 {
		t.Fatalf("RecentRateStd=%v for constant trace", s)
	}
}

func TestRecentRateStdDetectsSurge(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.Trace = ratetrace.Surge{Base: 1000, Peak: 5000, Start: sim.Time(sec(60)), Duration: 60 * time.Second}
	})
	clock.RunUntil(sim.Time(sec(55)))
	before := e.RecentRateStd()
	clock.RunUntil(sim.Time(sec(75)))
	during := e.RecentRateStd()
	if during < 100 || during <= before*5 {
		t.Fatalf("surge not visible in rate std: before %v during %v", before, during)
	}
}

func TestIngestCapLimitsLag(t *testing.T) {
	clock, e := newEngine(t, func(o *Options) {
		o.Trace = ratetrace.Constant{Rate: 10000}
		o.IngestCap = 2000
	})
	clock.RunUntil(sim.Time(sec(60)))
	if e.DroppedByCap() < int64(60*7000) {
		t.Fatalf("dropped %d, want ≈480000", e.DroppedByCap())
	}
	// Accepted rate ≈ 2000/s: each 5s batch ≈ 10000 records.
	for _, b := range e.History()[1:] {
		if b.Records > 10500 {
			t.Fatalf("batch %d has %d records despite cap", b.ID, b.Records)
		}
	}
}

func TestListenersNotified(t *testing.T) {
	clock, e := newEngine(t, nil)
	var got []int64
	e.AddListener(ListenerFunc(func(bs BatchStats) { got = append(got, bs.ID) }))
	clock.RunUntil(sim.Time(sec(30)))
	if len(got) != len(e.History()) {
		t.Fatalf("listener saw %d batches, history has %d", len(got), len(e.History()))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("batch completion order broken: %v", got)
		}
	}
}

func TestStopHaltsEngine(t *testing.T) {
	clock, e := newEngine(t, nil)
	clock.At(sim.Time(sec(12)), e.Stop)
	clock.RunUntil(sim.Time(sec(100)))
	n := len(e.History())
	if n > 3 {
		t.Fatalf("%d batches after Stop at 12s", n)
	}
	if e.TotalRecords() > 13*1000 {
		t.Fatalf("producer kept running after Stop: %d records", e.TotalRecords())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []BatchStats {
		clock, e := newEngine(t, func(o *Options) {
			o.Workload = workload.NewLogisticRegression()
			o.Trace = ratetrace.NewUniformBand(7000, 13000, 5*time.Second, rng.New(42))
			o.Initial = Config{BatchInterval: 10 * time.Second, Executors: 10}
			o.Seed = rng.New(42)
		})
		clock.RunUntil(sim.Time(sec(300)))
		return e.History()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Records != b[i].Records || a[i].ProcessingTime != b[i].ProcessingTime || a[i].DoneAt != b[i].DoneAt {
			t.Fatalf("run diverged at batch %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := DefaultBounds()
	clamped := b.Clamp(Config{BatchInterval: time.Hour, Executors: -3})
	if clamped.BatchInterval != b.MaxInterval || clamped.Executors != b.MinExecutors {
		t.Fatalf("Clamp=%v", clamped)
	}
	if !b.Contains(Config{BatchInterval: 10 * time.Second, Executors: 10}) {
		t.Error("Contains rejected interior point")
	}
	if b.Contains(Config{BatchInterval: 50 * time.Second, Executors: 10}) {
		t.Error("Contains accepted exterior point")
	}
}

func TestParallelismCappedByPartitions(t *testing.T) {
	// With 2 partitions, 16 executors must not process faster than ~2-way
	// parallelism allows.
	clock, e := newEngine(t, func(o *Options) {
		o.Partitions = 2
		o.Workload = workload.NewLogisticRegression()
		o.Trace = ratetrace.Constant{Rate: 2000}
		o.Initial = Config{BatchInterval: 30 * time.Second, Executors: 16}
	})
	clock.RunUntil(sim.Time(sec(200)))
	h := e.History()
	if len(h) == 0 {
		t.Fatal("no batches")
	}
	// Work per batch ≈ 2000·30·0.0004·iter ≈ 24-48 ref-sec; at parallelism
	// 2 the work term alone is ≥ 12s. With 16-way it would be ~1.5-3s.
	if h[0].ProcessingTime < 10*time.Second {
		t.Fatalf("partition cap not applied: %v", h[0].ProcessingTime)
	}
}
