package engine

import (
	"testing"

	"nostop/internal/broker"
	"nostop/internal/metrics"
)

// TestAllocsObservation pins the metrics-only observability configuration
// (registry attached, tracer absent): the traceOn guard in obsState must
// keep every broker.Observer callback from building trace payloads, so the
// per-record observation path stays allocation-free. Referenced by the
// traceOn field comment in observe.go.
func TestAllocsObservation(t *testing.T) {
	o := newObsState(metrics.NewRegistry(), nil)
	if o == nil {
		t.Fatal("newObsState returned nil with a live registry")
	}
	if o.traceOn {
		t.Fatal("traceOn set without a tracer")
	}
	ranges := []broker.OffsetRange{{Partition: 0, From: 0, To: 10}}
	allocs := testing.AllocsPerRun(1000, func() {
		o.OnAppend("in", 0, 5)
		o.OnFetch("in", 10, ranges)
		o.OnCommit("in", 10, ranges)
		o.OnRewind("in", 0, 3)
		o.OnOutage("in", 0, true)
		o.OnOutage("in", 0, false)
	})
	if allocs != 0 {
		t.Fatalf("metrics-only observer callbacks allocate %.1f/op, want 0", allocs)
	}
}
