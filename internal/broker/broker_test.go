package broker

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestBus(t *testing.T, partitions, sampleCap int) (*Bus, *Topic) {
	t.Helper()
	bus, err := NewBus([]int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	topic, err := bus.CreateTopic("events", partitions, sampleCap)
	if err != nil {
		t.Fatal(err)
	}
	return bus, topic
}

func TestNewBusValidation(t *testing.T) {
	if _, err := NewBus(nil); !errors.Is(err, ErrNoBrokers) {
		t.Fatalf("err=%v", err)
	}
}

func TestCreateTopicValidation(t *testing.T) {
	bus, _ := NewBus([]int{1})
	if _, err := bus.CreateTopic("t", 0, 0); !errors.Is(err, ErrBadPartitions) {
		t.Fatalf("err=%v", err)
	}
	if _, err := bus.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTopic("t", 2, 0); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("err=%v", err)
	}
	if _, err := bus.Topic("missing"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err=%v", err)
	}
}

func TestPartitionsSpreadAcrossBrokers(t *testing.T) {
	bus, topic := newTestBus(t, 30, 0)
	if len(topic.Partitions) != 30 {
		t.Fatalf("partitions=%d", len(topic.Partitions))
	}
	perBroker := map[int]int{}
	for _, p := range topic.Partitions {
		perBroker[p.Broker.ID]++
	}
	for id, n := range perBroker {
		if n != 6 {
			t.Fatalf("broker %d hosts %d partitions, want 6", id, n)
		}
	}
	for _, br := range bus.Brokers() {
		if len(br.Partitions()) != 6 {
			t.Fatalf("broker view has %d partitions", len(br.Partitions()))
		}
	}
}

func TestSendAssignsRoundRobinOffsets(t *testing.T) {
	bus, _ := newTestBus(t, 3, 10)
	prod, err := bus.NewProducer("events")
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 7; i++ {
		recs = append(recs, prod.Send("k", fmt.Sprintf("v%d", i), 0))
	}
	wantPart := []int{0, 1, 2, 0, 1, 2, 0}
	for i, r := range recs {
		if r.Partition != wantPart[i] {
			t.Fatalf("record %d on partition %d, want %d", i, r.Partition, wantPart[i])
		}
	}
	if recs[0].Offset != 0 || recs[3].Offset != 1 || recs[6].Offset != 2 {
		t.Fatalf("offsets wrong: %+v", recs)
	}
}

func TestSendCountSpreadsEvenly(t *testing.T) {
	bus, topic := newTestBus(t, 4, 0)
	prod, _ := bus.NewProducer("events")
	prod.SendCount(10) // 3,3,2,2
	ends := []int64{}
	for _, p := range topic.Partitions {
		ends = append(ends, p.End())
	}
	var total int64
	for _, e := range ends {
		total += e
		if e < 2 || e > 3 {
			t.Fatalf("uneven spread: %v", ends)
		}
	}
	if total != 10 {
		t.Fatalf("total %d, want 10", total)
	}
	if topic.TotalEnd() != 10 {
		t.Fatalf("TotalEnd=%d", topic.TotalEnd())
	}
}

func TestSendCountNonPositiveNoop(t *testing.T) {
	bus, topic := newTestBus(t, 2, 0)
	prod, _ := bus.NewProducer("events")
	prod.SendCount(0)
	prod.SendCount(-5)
	if topic.TotalEnd() != 0 {
		t.Fatal("non-positive SendCount produced records")
	}
}

func TestSendCountConservesTotalProperty(t *testing.T) {
	f := func(counts []uint16, partsRaw uint8) bool {
		parts := int(partsRaw%16) + 1
		bus, _ := NewBus([]int{1, 2})
		topic, _ := bus.CreateTopic("t", parts, 0)
		prod, _ := bus.NewProducer("t")
		var want int64
		for _, c := range counts {
			prod.SendCount(int64(c))
			want += int64(c)
		}
		if topic.TotalEnd() != want {
			return false
		}
		// Skew check: partitions differ by at most len(counts) records.
		var min, max int64 = 1 << 62, -1
		for _, p := range topic.Partitions {
			if p.End() < min {
				min = p.End()
			}
			if p.End() > max {
				max = p.End()
			}
		}
		return max-min <= int64(len(counts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConsumerGroupPollAndLag(t *testing.T) {
	bus, _ := newTestBus(t, 3, 0)
	prod, _ := bus.NewProducer("events")
	group, err := bus.NewConsumerGroup("events")
	if err != nil {
		t.Fatal(err)
	}
	if group.Lag() != 0 {
		t.Fatal("fresh group has lag")
	}
	prod.SendCount(100)
	if group.Lag() != 100 {
		t.Fatalf("Lag=%d, want 100", group.Lag())
	}
	n, _ := group.Poll(30)
	if n != 30 {
		t.Fatalf("Poll consumed %d, want 30", n)
	}
	if group.Lag() != 70 {
		t.Fatalf("Lag=%d after partial poll, want 70", group.Lag())
	}
	n, _ = group.Poll(0) // drain
	if n != 70 || group.Lag() != 0 {
		t.Fatalf("drain consumed %d, lag %d", n, group.Lag())
	}
	n, _ = group.Poll(10)
	if n != 0 {
		t.Fatalf("empty poll consumed %d", n)
	}
}

func TestConsumerGroupIndependentGroups(t *testing.T) {
	bus, _ := newTestBus(t, 2, 0)
	prod, _ := bus.NewProducer("events")
	g1, _ := bus.NewConsumerGroup("events")
	prod.SendCount(50)
	g2, _ := bus.NewConsumerGroup("events")
	g1.Poll(0)
	if g1.Lag() != 0 {
		t.Fatal("g1 lag after drain")
	}
	// g2 started at begin offsets (0), so still sees everything.
	if g2.Lag() != 50 {
		t.Fatalf("g2 lag=%d, want 50", g2.Lag())
	}
}

func TestPollDeliversRetainedPayloads(t *testing.T) {
	bus, _ := newTestBus(t, 2, 100)
	prod, _ := bus.NewProducer("events")
	group, _ := bus.NewConsumerGroup("events")
	for i := 0; i < 10; i++ {
		prod.Send("user", fmt.Sprintf("click-%d", i), 0)
	}
	n, payloads := group.Poll(0)
	if n != 10 {
		t.Fatalf("consumed %d, want 10", n)
	}
	if len(payloads) != 10 {
		t.Fatalf("payloads=%d, want 10", len(payloads))
	}
	seen := map[string]bool{}
	for _, r := range payloads {
		seen[r.Value] = true
	}
	for i := 0; i < 10; i++ {
		if !seen[fmt.Sprintf("click-%d", i)] {
			t.Fatalf("missing payload click-%d", i)
		}
	}
}

func TestPollDoesNotRedeliverPayloads(t *testing.T) {
	bus, _ := newTestBus(t, 1, 100)
	prod, _ := bus.NewProducer("events")
	group, _ := bus.NewConsumerGroup("events")
	prod.Send("k", "a", 0)
	group.Poll(0)
	prod.Send("k", "b", 0)
	_, payloads := group.Poll(0)
	if len(payloads) != 1 || payloads[0].Value != "b" {
		t.Fatalf("redelivered payloads: %+v", payloads)
	}
}

func TestSampleRingEviction(t *testing.T) {
	bus, topic := newTestBus(t, 1, 3)
	prod, _ := bus.NewProducer("events")
	for i := 0; i < 5; i++ {
		prod.Send("k", fmt.Sprintf("v%d", i), 0)
	}
	tail := topic.Partitions[0].SampleTail(0)
	if len(tail) != 3 {
		t.Fatalf("tail len=%d, want 3", len(tail))
	}
	for i, want := range []string{"v2", "v3", "v4"} {
		if tail[i].Value != want {
			t.Fatalf("tail=%v", tail)
		}
	}
	limited := topic.Partitions[0].SampleTail(2)
	if len(limited) != 2 || limited[0].Value != "v3" {
		t.Fatalf("limited tail=%v", limited)
	}
}

func TestSampleCapZeroRetainsNothing(t *testing.T) {
	bus, topic := newTestBus(t, 1, 0)
	prod, _ := bus.NewProducer("events")
	prod.Send("k", "v", 0)
	if len(topic.Partitions[0].SampleTail(0)) != 0 {
		t.Fatal("sampleCap=0 retained payloads")
	}
}

func TestMixedCountAndPayloadOffsets(t *testing.T) {
	bus, topic := newTestBus(t, 1, 10)
	prod, _ := bus.NewProducer("events")
	prod.SendCount(5)
	rec := prod.Send("k", "real", 0)
	if rec.Offset != 5 {
		t.Fatalf("payload offset %d after 5 counted records, want 5", rec.Offset)
	}
	if topic.TotalEnd() != 6 {
		t.Fatalf("TotalEnd=%d", topic.TotalEnd())
	}
}

func TestPollConservationProperty(t *testing.T) {
	// Property: total consumed over arbitrary produce/poll interleavings
	// equals total produced minus final lag.
	f := func(ops []uint16) bool {
		bus, topic := func() (*Bus, *Topic) {
			b, _ := NewBus([]int{1, 2, 3})
			tp, _ := b.CreateTopic("t", 7, 0)
			return b, tp
		}()
		prod, _ := bus.NewProducer("t")
		group, _ := bus.NewConsumerGroup("t")
		var consumed int64
		for i, op := range ops {
			if i%2 == 0 {
				prod.SendCount(int64(op % 1000))
			} else {
				n, _ := group.Poll(int64(op % 500))
				consumed += n
			}
		}
		return consumed+group.Lag() == topic.TotalEnd()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCommittedTracksPolls(t *testing.T) {
	bus, _ := newTestBus(t, 2, 0)
	prod, _ := bus.NewProducer("events")
	group, _ := bus.NewConsumerGroup("events")
	prod.SendCount(10) // 5 per partition
	group.Poll(0)
	if group.Committed(0) != 5 || group.Committed(1) != 5 {
		t.Fatalf("committed=(%d,%d), want (5,5)", group.Committed(0), group.Committed(1))
	}
}
