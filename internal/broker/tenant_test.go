package broker

import (
	"testing"

	"nostop/internal/sim"
)

// Tenant accounting must track produced/fetched/committed/redelivered
// incrementally and exactly, aggregated across all the tenant's topics.
func TestTenantAccounting(t *testing.T) {
	bus, err := NewBus([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTenantTopic("orders", "acme", 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTenantTopic("clicks", "acme", 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTenantTopic("logs", "globex", 2, 8); err != nil {
		t.Fatal(err)
	}

	orders, _ := bus.NewProducer("orders")
	clicks, _ := bus.NewProducer("clicks")
	logs, _ := bus.NewProducer("logs")
	for i := 0; i < 10; i++ {
		orders.Send("k", "v", sim.Time(i))
	}
	clicks.SendCount(5)
	logs.SendCount(3)

	acme := bus.TenantAccount("acme")
	if acme == nil {
		t.Fatal("acme account missing")
	}
	if acme.Produced != 15 {
		t.Fatalf("acme produced %d, want 15 (aggregated across topics)", acme.Produced)
	}
	if g := bus.TenantAccount("globex"); g == nil || g.Produced != 3 {
		t.Fatalf("globex account = %+v, want produced 3", g)
	}
	if acme.Lag() != 15 || acme.CommittedLag() != 15 {
		t.Fatalf("pre-fetch lag = %d/%d, want 15/15", acme.Lag(), acme.CommittedLag())
	}

	group, err := bus.NewConsumerGroup("orders")
	if err != nil {
		t.Fatal(err)
	}
	n, _, ranges := group.Fetch(6)
	if n != 6 {
		t.Fatalf("fetched %d, want 6", n)
	}
	if acme.Fetched != 6 {
		t.Fatalf("acme fetched %d, want 6", acme.Fetched)
	}
	if acme.Lag() != 9 {
		t.Fatalf("post-fetch lag %d, want 9", acme.Lag())
	}
	group.Commit(ranges)
	if acme.Committed != 6 {
		t.Fatalf("acme committed %d, want 6", acme.Committed)
	}
	if acme.CommittedLag() != 9 {
		t.Fatalf("committed lag %d, want 9", acme.CommittedLag())
	}
}

// A partition rewind (outage redelivery) must tick the tenant's Redelivered
// and keep Lag consistent with the group's own accounting.
func TestTenantAccountingRedelivery(t *testing.T) {
	bus, err := NewBus([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTenantTopic("in", "acme", 1, 8); err != nil {
		t.Fatal(err)
	}
	prod, _ := bus.NewProducer("in")
	prod.SendCount(8)
	group, _ := bus.NewConsumerGroup("in")
	if n, _, _ := group.Fetch(8); n != 8 {
		t.Fatal("fetch failed")
	}

	redelivered := group.Rewind(0) // uncommitted records re-queued
	acme := bus.TenantAccount("acme")
	if acme.Redelivered != redelivered || redelivered != 8 {
		t.Fatalf("account redelivered %d, group rewound %d, want 8", acme.Redelivered, redelivered)
	}
	if acme.Lag() != group.Lag() {
		t.Fatalf("account lag %d != group lag %d", acme.Lag(), group.Lag())
	}
}

// TenantAccounts iterates deterministically: sorted by tenant name.
func TestTenantAccountsSorted(t *testing.T) {
	bus, err := NewBus([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := bus.CreateTenantTopic("t-"+name, name, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	accounts := bus.TenantAccounts()
	want := []string{"alpha", "mid", "zeta"}
	if len(accounts) != len(want) {
		t.Fatalf("%d accounts, want %d", len(accounts), len(want))
	}
	for i, a := range accounts {
		if a.Tenant != want[i] {
			t.Fatalf("accounts[%d] = %q, want %q", i, a.Tenant, want[i])
		}
	}
	// Untenanted topics mint no account.
	if _, err := bus.CreateTopic("plain", 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := len(bus.TenantAccounts()); got != 3 {
		t.Fatalf("plain topic minted an account: %d accounts", got)
	}
}

// The per-tenant accounting rides the hot produce/fetch/commit path and must
// stay allocation-free — the PR-7 hotalloc contract extended to tenancy.
func TestAllocsTenantAccounting(t *testing.T) {
	bus, err := NewBus([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTenantTopic("in", "acme", 2, 8); err != nil {
		t.Fatal(err)
	}
	prod, _ := bus.NewProducer("in")
	group, _ := bus.NewConsumerGroup("in")
	// Warm rings, chunk pool, and slice capacities.
	for i := 0; i < 32; i++ {
		prod.Send("k", "v", sim.Time(i))
	}
	for i := 0; i < 4; i++ {
		if c := group.FetchChunk(0); c != nil {
			group.Commit(c.Ranges)
			group.Release(c)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		prod.Send("k", "v", sim.Time(50))
		prod.SendCount(3)
		c := group.FetchChunk(0)
		if c == nil {
			t.Fatal("FetchChunk returned nil with records pending")
		}
		group.Commit(c.Ranges)
		group.Release(c)
	})
	if allocs != 0 {
		t.Fatalf("tenant-accounted produce/fetch/commit cycle allocates %.1f/op, want 0", allocs)
	}
}
