package broker

import (
	"testing"

	"nostop/internal/sim"
)

// Per-record ingest is the hottest broker path: once the sample ring is
// full, Send must overwrite in place and allocate nothing.
func TestAllocsSendFullRing(t *testing.T) {
	bus, err := NewBus([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTopic("in", 2, 8); err != nil {
		t.Fatal(err)
	}
	prod, err := bus.NewProducer("in")
	if err != nil {
		t.Fatal(err)
	}
	// Fill every partition's sample ring so append switches to overwrite.
	for i := 0; i < 32; i++ {
		prod.Send("k", "v", sim.Time(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		prod.Send("k", "v", sim.Time(99))
	})
	if allocs != 0 {
		t.Fatalf("Send with full ring allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		prod.SendCount(10)
	})
	if allocs != 0 {
		t.Fatalf("SendCount allocates %.1f/op, want 0", allocs)
	}
}

// The pooled fetch/commit/release cycle must be allocation-free once the
// chunk free list and slice capacities are warm.
func TestAllocsFetchChunkCycle(t *testing.T) {
	bus, err := NewBus([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.CreateTopic("in", 2, 8); err != nil {
		t.Fatal(err)
	}
	prod, err := bus.NewProducer("in")
	if err != nil {
		t.Fatal(err)
	}
	group, err := bus.NewConsumerGroup("in")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the chunk pool and its slice capacities.
	for i := 0; i < 4; i++ {
		prod.Send("k", "v", sim.Time(i))
		if c := group.FetchChunk(0); c != nil {
			group.Commit(c.Ranges)
			group.Release(c)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		prod.Send("k", "v", sim.Time(50))
		prod.SendCount(3)
		c := group.FetchChunk(0)
		if c == nil {
			t.Fatal("FetchChunk returned nil with records pending")
		}
		group.Commit(c.Ranges)
		group.Release(c)
	})
	if allocs != 0 {
		t.Fatalf("fetch/commit/release cycle allocates %.1f/op, want 0", allocs)
	}
}
