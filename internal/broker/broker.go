// Package broker implements a Kafka-like message bus: named topics split
// into partitions, partitions hosted on brokers, offset-tracked produce and
// consume, and consumer groups with range assignment.
//
// The paper's testbed runs a Kafka 2.5.0 broker on every node and keeps the
// partition count above the cluster's total core count to avoid ingest
// bottlenecks (§6.1); producers spread records uniformly across brokers to
// avoid skew. This package reproduces those mechanics. Because experiment
// rates reach hundreds of thousands of records per second over hours of
// virtual time, partitions track offsets in bulk and retain only a bounded
// tail of concrete record payloads — enough for the semantic workload
// implementations to process real data — rather than materialising every
// record.
package broker

import (
	"errors"
	"fmt"
	"sort"

	"nostop/internal/sim"
)

// Record is one message with a concrete payload.
type Record struct {
	Partition int
	Offset    int64
	Key       string
	Value     string
	Time      sim.Time
}

// Observer receives notifications of broker-level log activity — the hook
// point the observability layer (internal/metrics, internal/tracing)
// attaches through. All callbacks run synchronously on the simulation
// thread in deterministic event order; implementations must not mutate
// broker state. A nil observer disables notification.
type Observer interface {
	// OnAppend fires after records are appended to a partition log.
	OnAppend(topic string, partition int, n int64)
	// OnFetch fires after a consumer-group fetch consumes n records over
	// the given offset ranges.
	OnFetch(topic string, n int64, ranges []OffsetRange)
	// OnCommit fires after ranges are durably committed; n is the number
	// of newly committed records (0 for pure re-commits).
	OnCommit(topic string, n int64, ranges []OffsetRange)
	// OnRewind fires when a partition's fetch position rewinds to its
	// committed offset; redelivered is the span that will be re-fetched.
	OnRewind(topic string, partition int, redelivered int64)
	// OnOutage fires when a partition leader goes down (down=true) or is
	// restored (down=false).
	OnOutage(topic string, partition int, down bool)
}

// Partition is an append-only offset log with a bounded sample tail.
type Partition struct {
	Topic  string
	ID     int
	Broker *Broker

	begin, end int64 // log spans offsets [begin, end)
	down       bool  // outage: the partition leader is unreachable
	obs        Observer
	top        *Topic // owning topic, for incremental aggregate accounting

	samples    []Record // ring buffer of most recent concrete payloads
	sampleHead int      // index of the oldest retained record once full
}

// SetDown marks the partition's leader unreachable (true) or restored
// (false). While down the partition accepts produce requests — the simulated
// outage models a consumer-side fetch failure, with the log itself durable —
// but consumer groups cannot fetch from it.
func (p *Partition) SetDown(down bool) {
	if down != p.down && p.top != nil {
		if down {
			p.top.downCount++
		} else {
			p.top.downCount--
		}
	}
	p.down = down
	if p.obs != nil {
		p.obs.OnOutage(p.Topic, p.ID, down)
	}
}

// Down reports whether the partition is currently in outage.
func (p *Partition) Down() bool { return p.down }

// Begin returns the first retained offset (0 in this in-memory model).
func (p *Partition) Begin() int64 { return p.begin }

// End returns the next offset to be written.
func (p *Partition) End() int64 { return p.end }

// appendCount appends n records without payloads.
//nostop:hotpath
func (p *Partition) appendCount(n int64) {
	p.end += n
	if t := p.top; t != nil {
		t.totalEnd += n
		if t.acct != nil {
			t.acct.Produced += n
		}
	}
	if p.obs != nil && n > 0 {
		p.obs.OnAppend(p.Topic, p.ID, n)
	}
}

// appendRecord appends one concrete record, retaining it in the sample ring.
func (p *Partition) appendRecord(key, value string, t sim.Time) Record {
	rec := Record{Partition: p.ID, Offset: p.end, Key: key, Value: value, Time: t}
	p.end++
	if top := p.top; top != nil {
		top.totalEnd++
		if top.acct != nil {
			top.acct.Produced++
		}
	}
	if p.obs != nil {
		p.obs.OnAppend(p.Topic, p.ID, 1)
	}
	if cap(p.samples) > 0 {
		if len(p.samples) < cap(p.samples) {
			p.samples = append(p.samples, rec)
		} else {
			p.samples[p.sampleHead] = rec
			p.sampleHead = (p.sampleHead + 1) % cap(p.samples)
		}
	}
	return rec
}

// SampleTail returns up to max of the most recently retained payload records,
// oldest first. max <= 0 returns all retained records.
func (p *Partition) SampleTail(max int) []Record {
	n := len(p.samples)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Record, 0, n)
	skip := len(p.samples) - n
	for i := skip; i < len(p.samples); i++ {
		out = append(out, p.samples[(p.sampleHead+i)%len(p.samples)])
	}
	return out
}

// Broker hosts partitions; one broker is deployed per cluster node (§6.1).
type Broker struct {
	ID         int
	NodeID     int
	partitions []*Partition
}

// Partitions returns the partitions hosted by this broker.
func (b *Broker) Partitions() []*Partition { return b.partitions }

// Bus is the broker cluster plus topic registry.
type Bus struct {
	brokers []*Broker
	topics  map[string]*Topic
	tenants map[string]*TenantAccount
}

// TenantAccount is the bus-level incremental accounting of one tenant's
// traffic across its topics. Every field is advanced by O(1) increments on
// the existing produce/fetch/commit/rewind paths — never by scanning
// partitions — so per-tenant observability at O(100) partitions per topic
// costs a handful of integer adds per operation and zero allocations
// (the PR-7 hotalloc contract extends to these paths).
type TenantAccount struct {
	Tenant      string
	Produced    int64 // records appended to the tenant's topics
	Fetched     int64 // records consumed by the tenant's receiver
	Committed   int64 // records durably processed
	Redelivered int64 // records re-fetched after outage rewinds
}

// Lag returns the tenant's consumer lag: produced but not yet fetched.
// Rewound (to-be-redelivered) spans count as lag again.
func (a *TenantAccount) Lag() int64 { return a.Produced + a.Redelivered - a.Fetched }

// CommittedLag returns records produced but not yet durably processed.
func (a *TenantAccount) CommittedLag() int64 { return a.Produced - a.Committed }

// Topic is a named set of partitions.
type Topic struct {
	Name       string
	Partitions []*Partition
	obs        Observer

	// Incremental aggregates, so the per-batch accounting paths (Lag,
	// Fetch availability, TotalEnd) are O(1) instead of rescanning every
	// partition on every batch cut.
	totalEnd  int64 // sum of partition end offsets
	downCount int   // partitions currently in outage

	// acct, when non-nil, is the owning tenant's bus-level account; the
	// produce/fetch/commit/rewind paths tick it alongside totalEnd.
	acct *TenantAccount
}

// Tenant returns the name of the topic's owning tenant ("" when the topic
// is not tenant-bound).
func (t *Topic) Tenant() string {
	if t.acct == nil {
		return ""
	}
	return t.acct.Tenant
}

// SetObserver installs (or, with nil, removes) the activity observer on the
// topic and all its partitions. Call before traffic starts; the observer is
// not retroactive.
func (t *Topic) SetObserver(o Observer) {
	t.obs = o
	for _, p := range t.Partitions {
		p.obs = o
	}
}

// Errors returned by bus operations.
var (
	ErrTopicExists   = errors.New("broker: topic already exists")
	ErrUnknownTopic  = errors.New("broker: unknown topic")
	ErrNoBrokers     = errors.New("broker: bus has no brokers")
	ErrBadPartitions = errors.New("broker: partition count must be positive")
)

// NewBus creates a bus with one broker per node ID.
func NewBus(nodeIDs []int) (*Bus, error) {
	if len(nodeIDs) == 0 {
		return nil, ErrNoBrokers
	}
	bus := &Bus{topics: make(map[string]*Topic)}
	for i, nid := range nodeIDs {
		bus.brokers = append(bus.brokers, &Broker{ID: i, NodeID: nid})
	}
	return bus, nil
}

// Brokers returns the bus's brokers.
func (b *Bus) Brokers() []*Broker { return b.brokers }

// CreateTopic registers a topic with nPartitions partitions assigned to
// brokers round-robin. sampleCap bounds the concrete payload tail retained
// per partition (0 disables payload retention).
func (b *Bus) CreateTopic(name string, nPartitions, sampleCap int) (*Topic, error) {
	return b.createTopic(name, "", nPartitions, sampleCap)
}

// CreateTenantTopic registers a topic owned by a tenant: all traffic through
// it ticks the tenant's bus-level TenantAccount. Several topics may share a
// tenant; the account aggregates across them.
func (b *Bus) CreateTenantTopic(name, tenant string, nPartitions, sampleCap int) (*Topic, error) {
	if tenant == "" {
		return nil, errors.New("broker: empty tenant name")
	}
	return b.createTopic(name, tenant, nPartitions, sampleCap)
}

func (b *Bus) createTopic(name, tenant string, nPartitions, sampleCap int) (*Topic, error) {
	if nPartitions <= 0 {
		return nil, ErrBadPartitions
	}
	if _, ok := b.topics[name]; ok {
		return nil, ErrTopicExists
	}
	t := &Topic{Name: name}
	if tenant != "" {
		if b.tenants == nil {
			b.tenants = make(map[string]*TenantAccount)
		}
		acct := b.tenants[tenant]
		if acct == nil {
			acct = &TenantAccount{Tenant: tenant}
			b.tenants[tenant] = acct
		}
		t.acct = acct
	}
	for i := 0; i < nPartitions; i++ {
		br := b.brokers[i%len(b.brokers)]
		p := &Partition{Topic: name, ID: i, Broker: br, top: t}
		if sampleCap > 0 {
			p.samples = make([]Record, 0, sampleCap)
		}
		br.partitions = append(br.partitions, p)
		t.Partitions = append(t.Partitions, p)
	}
	b.topics[name] = t
	return t, nil
}

// TenantAccount returns the accounting of one tenant, or nil when the bus
// holds no tenant-bound topic under that name.
func (b *Bus) TenantAccount(tenant string) *TenantAccount { return b.tenants[tenant] }

// TenantAccounts returns every tenant account sorted by tenant name —
// the deterministic iteration order reports and metrics snapshots use.
func (b *Bus) TenantAccounts() []*TenantAccount {
	out := make([]*TenantAccount, 0, len(b.tenants))
	for _, a := range b.tenants {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Topic looks up a topic by name.
func (b *Bus) Topic(name string) (*Topic, error) {
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// TotalEnd returns the sum of partition end offsets for a topic — the total
// number of records ever produced to it.
func (t *Topic) TotalEnd() int64 { return t.totalEnd }

// DownPartitions returns how many partitions are currently in outage — the
// O(1) any-partition-down check the engine's per-batch fault probe relies on.
func (t *Topic) DownPartitions() int { return t.downCount }

// Producer writes to one topic, spreading records uniformly across
// partitions (round-robin), which is how the paper's generator avoids skew.
type Producer struct {
	topic *Topic
	next  int
}

// NewProducer returns a producer for the named topic.
func (b *Bus) NewProducer(topic string) (*Producer, error) {
	t, err := b.Topic(topic)
	if err != nil {
		return nil, err
	}
	return &Producer{topic: t}, nil
}

// Send appends one concrete record and returns it (with partition/offset
// assigned).
//nostop:hotpath
func (p *Producer) Send(key, value string, t sim.Time) Record {
	part := p.topic.Partitions[p.next]
	p.next = (p.next + 1) % len(p.topic.Partitions)
	return part.appendRecord(key, value, t)
}

// SendCount appends n payload-less records spread as evenly as possible
// across partitions. Used for bulk rate simulation.
//nostop:hotpath
func (p *Producer) SendCount(n int64) {
	if n <= 0 {
		return
	}
	parts := int64(len(p.topic.Partitions))
	base := n / parts
	rem := n % parts
	for i := int64(0); i < parts; i++ {
		idx := (int64(p.next) + i) % parts
		cnt := base
		if i < rem {
			cnt++
		}
		p.topic.Partitions[idx].appendCount(cnt)
	}
	p.next = int((int64(p.next) + rem) % parts)
}

// OffsetRange identifies a consumed span [From, To) of one partition — the
// unit of commit and replay, mirroring Spark's direct-stream OffsetRange.
type OffsetRange struct {
	Partition int
	From, To  int64
}

// ConsumerGroup consumes a topic with two offsets per partition, matching
// Kafka consumer semantics under at-least-once processing:
//
//   - position: the next offset a fetch will read. Fetch advances it.
//   - committed: the highest offset whose records were durably processed.
//     Commit advances it; a failure rewinds position back to it, and the
//     records in between are fetched again (redelivered, never lost).
//
// A single logical consumer (the streaming receiver) owns all partitions,
// matching Spark's Kafka direct stream, which tracks offset ranges itself.
type ConsumerGroup struct {
	topic       *Topic
	position    []int64
	committed   []int64
	redelivered int64

	// Incremental mirrors of sum(position) and sum(committed), so lag
	// queries and fetch-availability checks are O(1) on the healthy path.
	posTotal       int64
	committedTotal int64

	chunkFree *Chunk // recycled fetch chunks
}

// Chunk is one fetch result: the consumed count, any retained concrete
// payloads inside the consumed spans, and the offset ranges read. Chunks are
// pooled on the consumer group — callers return them with Release once the
// batch is durably processed, and the backing slices are reused by later
// fetches, so steady-state record hand-off allocates nothing.
type Chunk struct {
	Count   int64
	Records []Record
	Ranges  []OffsetRange
	next    *Chunk
}

// NewConsumerGroup returns a group positioned at each partition's current
// begin offset.
func (b *Bus) NewConsumerGroup(topic string) (*ConsumerGroup, error) {
	t, err := b.Topic(topic)
	if err != nil {
		return nil, err
	}
	g := &ConsumerGroup{
		topic:     t,
		position:  make([]int64, len(t.Partitions)),
		committed: make([]int64, len(t.Partitions)),
	}
	for i, p := range t.Partitions {
		g.position[i] = p.Begin()
		g.committed[i] = p.Begin()
		g.posTotal += p.Begin()
		g.committedTotal += p.Begin()
	}
	return g, nil
}

// Lag returns the total unfetched records across partitions (relative to the
// consumer position, like Kafka's consumer lag).
func (g *ConsumerGroup) Lag() int64 { return g.topic.totalEnd - g.posTotal }

// CommittedLag returns records not yet durably processed — everything past
// the committed offsets, including fetched-but-uncommitted spans.
func (g *ConsumerGroup) CommittedLag() int64 { return g.topic.totalEnd - g.committedTotal }

// Committed returns the committed offset of a partition.
func (g *ConsumerGroup) Committed(partition int) int64 { return g.committed[partition] }

// Position returns the fetch position of a partition.
func (g *ConsumerGroup) Position(partition int) int64 { return g.position[partition] }

// Redelivered returns the total records re-fetched after a rewind — the
// at-least-once duplicate count.
func (g *ConsumerGroup) Redelivered() int64 { return g.redelivered }

// FullyCommitted reports whether every produced record has been committed:
// the "zero records lost" invariant once a run has drained.
func (g *ConsumerGroup) FullyCommitted() bool { return g.committedTotal >= g.topic.totalEnd }

// Fetch consumes up to max records across all live partitions (max <= 0
// means all available), advancing positions but not committed offsets. It
// returns the consumed count, any retained concrete payloads inside the
// consumed spans, and the offset ranges read — the caller commits the ranges
// once processing succeeds. Partitions in outage are skipped; their backlog
// stays fetchable after restoration.
func (g *ConsumerGroup) Fetch(max int64) (int64, []Record, []OffsetRange) {
	var c Chunk
	g.fetchInto(max, &c)
	return c.Count, c.Records, c.Ranges
}

// FetchChunk consumes like Fetch but fills a pooled Chunk whose backing
// slices are reused across fetches. Release the chunk once its ranges are
// committed (or abandoned); until then the chunk owns its payload copies, so
// replay and retry see stable data. Returns nil when nothing is available.
//nostop:hotpath
func (g *ConsumerGroup) FetchChunk(max int64) *Chunk {
	c := g.chunkFree
	if c != nil {
		g.chunkFree = c.next
		c.next = nil
		c.Count = 0
		c.Records = c.Records[:0]
		c.Ranges = c.Ranges[:0]
	} else {
		c = &Chunk{} //nostop:allow hotalloc -- pool miss: one chunk per concurrent fetch high-water mark
	}
	g.fetchInto(max, c)
	if c.Count == 0 {
		g.Release(c)
		return nil
	}
	return c
}

// Release returns a chunk to the group's pool. The chunk and its slices
// must not be used after release.
//nostop:hotpath
func (g *ConsumerGroup) Release(c *Chunk) {
	if c == nil {
		return
	}
	c.next = g.chunkFree
	g.chunkFree = c
}

// fetchInto is the fetch core shared by Fetch and FetchChunk: it appends
// consumed payloads and ranges to the chunk's slices and advances positions.
func (g *ConsumerGroup) fetchInto(max int64, c *Chunk) {
	var avail int64
	if g.topic.downCount == 0 {
		// Healthy path: no partition is down, so availability is just the
		// incremental totals — no per-partition scan.
		avail = g.topic.totalEnd - g.posTotal
	} else {
		for i, p := range g.topic.Partitions {
			if !p.down {
				avail += p.End() - g.position[i]
			}
		}
	}
	want := avail
	if max > 0 && max < want {
		want = max
	}
	if want == 0 {
		return
	}
	var consumed int64
	// Consume proportionally round-robin across partitions.
	for i, p := range g.topic.Partitions {
		if consumed >= want {
			break
		}
		if p.down {
			continue
		}
		lag := p.End() - g.position[i]
		if lag == 0 {
			continue
		}
		take := lag
		if remaining := want - consumed; take > remaining {
			take = remaining
		}
		from, to := g.position[i], g.position[i]+take
		// Scan the sample ring in place (oldest first) instead of
		// materialising a copy per fetch.
		for j := 0; j < len(p.samples); j++ {
			rec := &p.samples[(p.sampleHead+j)%len(p.samples)]
			if rec.Offset >= from && rec.Offset < to {
				//nostop:allow hotalloc -- appends into the pooled chunk's recycled backing array
				c.Records = append(c.Records, *rec)
			}
		}
		//nostop:allow hotalloc -- appends into the pooled chunk's recycled backing array
		c.Ranges = append(c.Ranges, OffsetRange{Partition: i, From: from, To: to})
		g.position[i] = to
		consumed += take
	}
	g.posTotal += consumed
	c.Count = consumed
	if a := g.topic.acct; a != nil {
		a.Fetched += consumed
	}
	if g.topic.obs != nil && consumed > 0 {
		g.topic.obs.OnFetch(g.topic.Name, consumed, c.Ranges)
	}
}

// Commit durably acknowledges processed ranges, advancing committed offsets.
// Ranges may arrive out of order (a retried batch can finish after a later
// one); committed only moves forward.
//nostop:hotpath
func (g *ConsumerGroup) Commit(ranges []OffsetRange) {
	var advanced int64
	for _, r := range ranges {
		if r.Partition < 0 || r.Partition >= len(g.committed) {
			continue
		}
		if r.To > g.committed[r.Partition] {
			advanced += r.To - g.committed[r.Partition]
			g.committed[r.Partition] = r.To
		}
	}
	g.committedTotal += advanced
	if a := g.topic.acct; a != nil {
		a.Committed += advanced
	}
	if g.topic.obs != nil && len(ranges) > 0 {
		g.topic.obs.OnCommit(g.topic.Name, advanced, ranges)
	}
}

// Rewind resets one partition's fetch position back to its committed offset
// — the consumer's reaction to a partition outage killing its in-flight
// fetch session. The span between the two offsets will be fetched again; it
// is added to the redelivery counter and returned.
//nostop:hotpath
func (g *ConsumerGroup) Rewind(partition int) int64 {
	if partition < 0 || partition >= len(g.position) {
		return 0
	}
	delta := g.position[partition] - g.committed[partition]
	if delta <= 0 {
		return 0
	}
	g.position[partition] = g.committed[partition]
	g.posTotal -= delta
	g.redelivered += delta
	if a := g.topic.acct; a != nil {
		a.Redelivered += delta
	}
	if g.topic.obs != nil {
		g.topic.obs.OnRewind(g.topic.Name, partition, delta)
	}
	return delta
}

// Poll consumes up to max records like Fetch but commits the ranges
// immediately (auto-commit) — the pre-resilience consumption path, kept for
// callers that do not participate in replay.
func (g *ConsumerGroup) Poll(max int64) (int64, []Record) {
	n, payloads, ranges := g.Fetch(max)
	g.Commit(ranges)
	return n, payloads
}
