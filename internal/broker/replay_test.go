package broker

import (
	"testing"

	"nostop/internal/sim"
)

func replayBus(t *testing.T, parts int) (*Bus, *Topic, *Producer, *ConsumerGroup) {
	t.Helper()
	bus, err := NewBus([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	topic, err := bus.CreateTopic("in", parts, 64)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := bus.NewProducer("in")
	if err != nil {
		t.Fatal(err)
	}
	group, err := bus.NewConsumerGroup("in")
	if err != nil {
		t.Fatal(err)
	}
	return bus, topic, prod, group
}

func TestFetchDoesNotCommit(t *testing.T) {
	_, _, prod, group := replayBus(t, 2)
	prod.SendCount(100)
	n, _, ranges := group.Fetch(0)
	if n != 100 {
		t.Fatalf("fetched %d, want 100", n)
	}
	if group.Lag() != 0 {
		t.Fatalf("lag %d after full fetch, want 0", group.Lag())
	}
	if group.CommittedLag() != 100 {
		t.Fatalf("committed lag %d before commit, want 100", group.CommittedLag())
	}
	group.Commit(ranges)
	if group.CommittedLag() != 0 || !group.FullyCommitted() {
		t.Fatalf("commit did not settle: committed lag %d", group.CommittedLag())
	}
}

func TestPartitionOutageReplayAtLeastOnce(t *testing.T) {
	// Fail a partition mid-poll — after records were fetched but before
	// they were committed — then restore it. No record may be lost, and
	// the re-fetched span must be counted as redelivered.
	_, topic, prod, group := replayBus(t, 2)
	for i := 0; i < 40; i++ {
		prod.Send("", "v", sim.Time(i))
	}

	// First fetch delivers everything, but nothing is committed yet.
	n, _, _ := group.Fetch(0)
	if n != 40 {
		t.Fatalf("fetched %d, want 40", n)
	}

	// Partition 0's leader dies: the in-flight fetch session is lost and
	// the consumer rewinds to the committed offset.
	p0 := topic.Partitions[0]
	p0.SetDown(true)
	if re := group.Rewind(0); re != 20 {
		t.Fatalf("rewind redelivered %d, want 20", re)
	}
	if group.Redelivered() != 20 {
		t.Fatalf("redelivered counter %d, want 20", group.Redelivered())
	}

	// While down, more records arrive on both partitions; fetch can only
	// reach the live partition.
	prod.SendCount(20) // 10 per partition
	n, _, ranges := group.Fetch(0)
	if n != 10 {
		t.Fatalf("fetched %d from live partition during outage, want 10", n)
	}
	for _, r := range ranges {
		if r.Partition == 0 {
			t.Fatalf("fetched range %+v from a down partition", r)
		}
	}
	group.Commit(ranges)

	// Restoration exposes the whole rewound backlog again.
	p0.SetDown(false)
	n, _, ranges = group.Fetch(0)
	if n != 30 { // 20 redelivered + 10 produced during the outage
		t.Fatalf("fetched %d after restore, want 30", n)
	}
	group.Commit(ranges)

	if !group.FullyCommitted() {
		t.Fatal("records lost: not every produced offset was committed")
	}
	if got, want := group.Committed(0), topic.Partitions[0].End(); got != want {
		t.Fatalf("partition 0 committed %d, want %d", got, want)
	}
}

func TestRewindWithoutUncommittedIsNoop(t *testing.T) {
	_, _, prod, group := replayBus(t, 1)
	prod.SendCount(10)
	n, _, ranges := group.Fetch(0)
	if n != 10 {
		t.Fatalf("fetched %d", n)
	}
	group.Commit(ranges)
	if re := group.Rewind(0); re != 0 {
		t.Fatalf("rewind after commit redelivered %d, want 0", re)
	}
	if group.Redelivered() != 0 {
		t.Fatalf("redelivered %d, want 0", group.Redelivered())
	}
}

func TestCommitIsMonotonic(t *testing.T) {
	// A retried batch can complete after a later batch already committed
	// past it; committing its stale range must not move offsets backwards.
	_, _, prod, group := replayBus(t, 1)
	prod.SendCount(30)
	_, _, r1 := group.Fetch(10)
	_, _, r2 := group.Fetch(20)
	group.Commit(r2)
	if group.Committed(0) != 30 {
		t.Fatalf("committed %d, want 30", group.Committed(0))
	}
	group.Commit(r1)
	if group.Committed(0) != 30 {
		t.Fatalf("stale commit moved offset to %d", group.Committed(0))
	}
}

func TestOutagePreservesPayloads(t *testing.T) {
	// Payload records fetched before an outage must be delivered again
	// after the rewind: the sample ring still holds them.
	_, topic, prod, group := replayBus(t, 1)
	for i := 0; i < 8; i++ {
		prod.Send("k", "payload", sim.Time(i))
	}
	_, payloads, _ := group.Fetch(0)
	if len(payloads) != 8 {
		t.Fatalf("first delivery %d payloads, want 8", len(payloads))
	}
	topic.Partitions[0].SetDown(true)
	group.Rewind(0)
	topic.Partitions[0].SetDown(false)
	_, payloads, ranges := group.Fetch(0)
	if len(payloads) != 8 {
		t.Fatalf("redelivery %d payloads, want 8", len(payloads))
	}
	group.Commit(ranges)
	if !group.FullyCommitted() {
		t.Fatal("redelivered records not committed")
	}
}
